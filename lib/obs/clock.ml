(* Wall clock with a monotonic clamp: gettimeofday can step backwards
   under NTP adjustment, and per-domain reads can interleave; a CAS loop
   on the last observed value keeps the reported time non-decreasing
   process-wide. *)

let last = Atomic.make 0.0

let rec clamp t =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

let now () = clamp (Unix.gettimeofday ())

let since t0 = now () -. t0
