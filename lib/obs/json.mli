(** Minimal JSON values: enough to serialize trace events without an
    external dependency, and to re-parse them so tests and tools can
    validate what the export sinks emit.

    Printing is RFC 8259-conformant: strings are escaped, and non-finite
    numbers (which JSON cannot represent) are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict parse of one JSON document (surrounding whitespace allowed);
    errors carry a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj _)] is the first binding of [key]; [None] for
    missing keys or non-objects. *)
