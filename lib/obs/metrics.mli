(** Fleet-wide metrics: a domain-sharded registry of counters, gauges,
    log-bucketed latency histograms, and SLO burn-rate windows.

    Design goals, in order:

    - {b Lock-free hot path.} Incrementing a counter or observing a
      histogram sample touches only per-domain atomic cells (the
      recording domain's id picks the cell), so worker domains never
      contend on a registry lock. The registry mutex is taken only to
      register a metric (cold) and to snapshot.
    - {b Mergeable snapshots.} A {!snapshot} is plain data; {!merge}
      sums counters, gauges, and histogram buckets pointwise, so
      per-shard snapshots fold into fleet totals and quantiles come
      from merged buckets — no raw-sample shipping. Every histogram
      shares one fixed log-bucket layout ({!n_buckets} buckets, 4 per
      octave from {!bucket_lo}), which is what makes merging exact and
      associative.
    - {b Two expositions.} {!snapshot_to_json} round-trips through
      {!snapshot_of_json} (the [metrics] control verb's wire format);
      {!to_prometheus} renders Prometheus text exposition format
      (counters as [_total], histograms as cumulative [le] buckets).

    Metric identity is [(name, labels)]; registering the same identity
    twice returns the same underlying metric. Gauges merge by {e sum}
    (the fleet reading of [queue_depth] is the total queued), so export
    only gauges for which sum is meaningful. *)

type t
(** A registry. Each server/gateway instance owns one, so in-process
    fleets (tests, benches) keep their accounting separate. *)

val create : unit -> t

(** {2 Metric handles}

    Handles are cheap to use and safe to share across domains. Names
    follow the [csched_<layer>_<what>[_total]] scheme documented in
    DESIGN.md ("Fleet telemetry"). *)

type counter
type gauge
type histogram

type slo_window
(** Deadline accounting: monotonic hit/miss totals plus rolling
    short/long burn-rate windows ({!short_window_s} / {!long_window_s}
    seconds), exposed as [<name>_hits_total], [<name>_misses_total]
    and windowed [<name>_hits]/[<name>_misses] gauges with a
    [window] label. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
val slo_window : t -> ?help:string -> ?labels:(string * string) list -> string -> slo_window
(** Register (or fetch) a metric. Raises [Invalid_argument] if the
    same [(name, labels)] is already registered as a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample (latencies are in milliseconds by convention).
    Non-finite and negative samples clamp into the underflow bucket. *)

val record_deadline : slo_window -> hit:bool -> unit

(** {2 Snapshots} *)

val n_buckets : int
val bucket_lo : float
(** Histogram layout: bucket [0] holds samples [<= bucket_lo]; bucket
    [i] (for [1 <= i <= n_buckets - 2]) holds samples in
    [(bound (i-1), bound i]] with [bound i = bucket_lo *. 2. ** (i /. 4.)];
    the last bucket is the [+Inf] overflow. *)

val bucket_bound : int -> float
(** Upper bound of bucket [i]; [infinity] for the overflow bucket. *)

type key = { name : string; labels : (string * string) list }

type histo = { counts : int array; (** per-bucket, non-cumulative *) sum : float }

type entry = Counter_v of int | Gauge_v of float | Histo_v of histo

type snapshot = (key * entry) list
(** Registration-ordered. An {!slo_window} expands into its component
    counters and gauges. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum by [key]; keys present in only one side pass
    through. Associative and commutative up to ordering (left operand's
    order wins, new keys append). *)

val merge_all : snapshot list -> snapshot

val total : histo -> int
(** Total sample count of a histogram snapshot. *)

val quantile : histo -> float -> float
(** [quantile h p] for [p] in [[0, 100]]: the estimated [p]th
    percentile, linearly interpolated inside the owning bucket. [0.]
    on an empty histogram. Accuracy is bounded by the bucket width
    (≤ ~19% relative, typically much better on dense data). *)

val find : snapshot -> ?labels:(string * string) list -> string -> entry option
(** First entry matching [name] (and exactly [labels], when given). *)

val fold_name :
  snapshot -> string -> init:'a -> f:('a -> key -> entry -> 'a) -> 'a
(** Fold over every entry named [name], across all label sets. *)

val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> (snapshot, string) result

val to_prometheus : ?help:(string -> string option) -> snapshot -> string
(** Prometheus text exposition format (version 0.0.4): one [# TYPE]
    line per metric family, histograms rendered as cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. *)

val help_of : t -> string -> string option
(** The [?help] string a metric family was registered with, for
    {!to_prometheus}. *)

val short_window_s : float
val long_window_s : float
