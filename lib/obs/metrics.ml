(* Domain-sharded metrics registry. Hot-path writes touch one atomic
   cell picked by the recording domain's id; the registry mutex guards
   only registration and snapshotting. All histograms share one fixed
   log-bucket layout so snapshots merge by pointwise sum. *)

let n_shards = 8 (* power of two; domain id is masked into a cell index *)
let shard () = (Domain.self () :> int) land (n_shards - 1)

(* --- histogram layout ---------------------------------------------- *)

let buckets_per_octave = 4.0
let bucket_lo = 1e-3 (* 1 ns when samples are milliseconds *)
let n_buckets = (4 * 32) + 2 (* underflow + 128 log buckets + overflow *)

let bucket_bound i =
  if i >= n_buckets - 1 then infinity
  else bucket_lo *. (2.0 ** (float_of_int i /. buckets_per_octave))

let bucket_index v =
  if not (Float.is_finite v) || v <= bucket_lo then
    if v > bucket_lo then n_buckets - 1 (* +inf *) else 0
  else
    let x = buckets_per_octave *. Float.log2 (v /. bucket_lo) in
    let i = int_of_float (Float.ceil x) in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i

(* --- cells --------------------------------------------------------- *)

type cells = int Atomic.t array (* one per shard *)

let cells_make () = Array.init n_shards (fun _ -> Atomic.make 0)
let cells_add cs by = ignore (Atomic.fetch_and_add cs.(shard ()) by)
let cells_total cs = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cs

type counter = cells
type gauge = int64 Atomic.t (* float bits *)

type histogram = {
  hcells : cells array; (* bucket -> per-shard counts *)
  hsums : int64 Atomic.t array; (* per-shard float-bits sums, CAS-updated *)
}

(* Rolling 1-second buckets covering the long burn window; the mutex is
   uncontended in practice (one short critical section per deadline
   job). Monotonic totals live in sharded cells outside the lock. *)
let short_window_s = 60.0
let long_window_s = 300.0
let ring_slots = 360

type slo_window = {
  w_hits : cells;
  w_misses : cells;
  w_mutex : Mutex.t;
  w_sec : int array; (* absolute second stamped into each slot *)
  w_slot_hits : int array;
  w_slot_misses : int array;
}

type registered =
  | RC of counter
  | RG of gauge
  | RH of histogram
  | RW of slo_window

type key = { name : string; labels : (string * string) list }

type t = {
  mutex : Mutex.t;
  table : (key, registered) Hashtbl.t;
  mutable order : key list; (* reverse registration order *)
  help : (string, string) Hashtbl.t;
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 64; order = [];
    help = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let canonical_key name labels =
  { name; labels = List.sort compare labels }

let kind_name = function
  | RC _ -> "counter"
  | RG _ -> "gauge"
  | RH _ -> "histogram"
  | RW _ -> "slo-window"

let register t ?help ?(labels = []) name fresh unpack =
  let key = canonical_key name labels in
  locked t (fun () ->
      Option.iter
        (fun h -> if not (Hashtbl.mem t.help name) then Hashtbl.replace t.help name h)
        help;
      match Hashtbl.find_opt t.table key with
      | Some existing ->
        (match unpack existing with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name existing)))
      | None ->
        let r = fresh () in
        Hashtbl.replace t.table key r;
        t.order <- key :: t.order;
        match unpack r with Some v -> v | None -> assert false)

let counter t ?help ?labels name =
  register t ?help ?labels name
    (fun () -> RC (cells_make ()))
    (function RC c -> Some c | _ -> None)

let gauge t ?help ?labels name =
  register t ?help ?labels name
    (fun () -> RG (Atomic.make (Int64.bits_of_float 0.0)))
    (function RG g -> Some g | _ -> None)

let histogram t ?help ?labels name =
  register t ?help ?labels name
    (fun () ->
      RH { hcells = Array.init n_buckets (fun _ -> cells_make ());
           hsums = Array.init n_shards (fun _ -> Atomic.make (Int64.bits_of_float 0.0)) })
    (function RH h -> Some h | _ -> None)

let slo_window t ?help ?labels name =
  register t ?help ?labels name
    (fun () ->
      RW { w_hits = cells_make (); w_misses = cells_make ();
           w_mutex = Mutex.create ();
           w_sec = Array.make ring_slots (-1);
           w_slot_hits = Array.make ring_slots 0;
           w_slot_misses = Array.make ring_slots 0 })
    (function RW w -> Some w | _ -> None)

(* --- hot-path updates ---------------------------------------------- *)

let incr ?(by = 1) c = cells_add c by
let counter_value = cells_total

let set g v = Atomic.set g (Int64.bits_of_float v)
let gauge_value g = Int64.float_of_bits (Atomic.get g)

let rec atomic_float_add cell v =
  let old = Atomic.get cell in
  let next = Int64.bits_of_float (Int64.float_of_bits old +. v) in
  if not (Atomic.compare_and_set cell old next) then atomic_float_add cell v

let observe h v =
  cells_add h.hcells.(bucket_index v) 1;
  atomic_float_add h.hsums.(shard ()) (if Float.is_finite v then v else 0.0)

let record_deadline w ~hit =
  cells_add (if hit then w.w_hits else w.w_misses) 1;
  let s = int_of_float (Clock.now ()) in
  let slot = s mod ring_slots in
  Mutex.lock w.w_mutex;
  if w.w_sec.(slot) <> s then begin
    w.w_sec.(slot) <- s;
    w.w_slot_hits.(slot) <- 0;
    w.w_slot_misses.(slot) <- 0
  end;
  if hit then w.w_slot_hits.(slot) <- w.w_slot_hits.(slot) + 1
  else w.w_slot_misses.(slot) <- w.w_slot_misses.(slot) + 1;
  Mutex.unlock w.w_mutex

let window_counts w ~window_s =
  let now_s = int_of_float (Clock.now ()) in
  let lo = now_s - int_of_float window_s in
  Mutex.lock w.w_mutex;
  let hits = ref 0 and misses = ref 0 in
  for i = 0 to ring_slots - 1 do
    if w.w_sec.(i) > lo && w.w_sec.(i) <= now_s then begin
      hits := !hits + w.w_slot_hits.(i);
      misses := !misses + w.w_slot_misses.(i)
    end
  done;
  Mutex.unlock w.w_mutex;
  (!hits, !misses)

(* --- snapshots ----------------------------------------------------- *)

type histo = { counts : int array; sum : float }

type entry = Counter_v of int | Gauge_v of float | Histo_v of histo

type snapshot = (key * entry) list

let window_label s = ("window", Printf.sprintf "%.0fs" s)

let snapshot_one key = function
  | RC c -> [ (key, Counter_v (cells_total c)) ]
  | RG g -> [ (key, Gauge_v (gauge_value g)) ]
  | RH h ->
    let counts = Array.map cells_total h.hcells in
    let sum =
      Array.fold_left (fun acc s -> acc +. Int64.float_of_bits (Atomic.get s)) 0.0 h.hsums
    in
    [ (key, Histo_v { counts; sum }) ]
  | RW w ->
    let sh, sm = window_counts w ~window_s:short_window_s in
    let lh, lm = window_counts w ~window_s:long_window_s in
    let sub suffix labels entry =
      ({ name = key.name ^ suffix; labels = key.labels @ labels }, entry)
    in
    [ sub "_hits_total" [] (Counter_v (cells_total w.w_hits));
      sub "_misses_total" [] (Counter_v (cells_total w.w_misses));
      sub "_hits" [ window_label short_window_s ] (Gauge_v (float_of_int sh));
      sub "_misses" [ window_label short_window_s ] (Gauge_v (float_of_int sm));
      sub "_hits" [ window_label long_window_s ] (Gauge_v (float_of_int lh));
      sub "_misses" [ window_label long_window_s ] (Gauge_v (float_of_int lm)) ]

let snapshot t =
  locked t (fun () ->
      List.concat_map
        (fun key -> snapshot_one key (Hashtbl.find t.table key))
        (List.rev t.order))

let help_of t name = locked t (fun () -> Hashtbl.find_opt t.help name)

(* --- merge --------------------------------------------------------- *)

let combine a b =
  match (a, b) with
  | Counter_v x, Counter_v y -> Counter_v (x + y)
  | Gauge_v x, Gauge_v y -> Gauge_v (x +. y)
  | Histo_v x, Histo_v y ->
    Histo_v
      { counts = Array.init n_buckets (fun i -> x.counts.(i) + y.counts.(i));
        sum = x.sum +. y.sum }
  | x, _ -> x (* kind clash across processes: keep the left reading *)

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, e) -> Hashtbl.replace tbl k e) a;
  let appended =
    List.filter_map
      (fun (k, e) ->
        match Hashtbl.find_opt tbl k with
        | None ->
          Hashtbl.replace tbl k e;
          Some k
        | Some e0 ->
          Hashtbl.replace tbl k (combine e0 e);
          None)
      b
  in
  List.map (fun (k, _) -> (k, Hashtbl.find tbl k)) a
  @ List.map (fun k -> (k, Hashtbl.find tbl k)) appended

let merge_all = function [] -> [] | s :: rest -> List.fold_left merge s rest

(* --- histogram quantiles ------------------------------------------- *)

let total h = Array.fold_left ( + ) 0 h.counts

let quantile h p =
  let n = total h in
  if n = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int n in
    let rec walk i cum =
      if i >= n_buckets then n_buckets - 1
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank && h.counts.(i) > 0 then i
        else if cum' >= n then i
        else walk (i + 1) cum'
    in
    let b = walk 0 0 in
    let before =
      let s = ref 0 in
      for i = 0 to b - 1 do
        s := !s + h.counts.(i)
      done;
      !s
    in
    let lo = if b = 0 then 0.0 else bucket_bound (b - 1) in
    let hi =
      if b >= n_buckets - 1 then bucket_bound (n_buckets - 2) (* clamp +inf *)
      else bucket_bound b
    in
    let in_bucket = h.counts.(b) in
    if in_bucket = 0 then hi
    else
      let frac = (rank -. float_of_int before) /. float_of_int in_bucket in
      let frac = Float.max 0.0 (Float.min 1.0 frac) in
      lo +. (frac *. (hi -. lo))
  end

(* --- lookup -------------------------------------------------------- *)

let find snap ?labels name =
  let matches (k, _) =
    k.name = name
    && match labels with
       | None -> true
       | Some l -> k.labels = (List.sort compare l)
  in
  Option.map snd (List.find_opt matches snap)

let fold_name snap name ~init ~f =
  List.fold_left
    (fun acc (k, e) -> if k.name = name then f acc k e else acc)
    init snap

(* --- JSON wire format ---------------------------------------------- *)

let entry_fields = function
  | Counter_v v -> [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int v)) ]
  | Gauge_v v -> [ ("type", Json.Str "gauge"); ("value", Json.Num v) ]
  | Histo_v h ->
    (* sparse [index, count] pairs: histograms ride a line protocol *)
    let pairs = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) <> 0 then
        pairs :=
          Json.List [ Json.Num (float_of_int i); Json.Num (float_of_int h.counts.(i)) ]
          :: !pairs
    done;
    [ ("type", Json.Str "histogram"); ("counts", Json.List !pairs);
      ("sum", Json.Num h.sum) ]

let snapshot_to_json snap =
  Json.Obj
    [ ( "metrics",
        Json.List
          (List.map
             (fun (k, e) ->
               Json.Obj
                 (("name", Json.Str k.name)
                 :: (if k.labels = [] then []
                     else
                       [ ( "labels",
                           Json.Obj
                             (List.map (fun (a, b) -> (a, Json.Str b)) k.labels) ) ])
                 @ entry_fields e))
             snap) ) ]

let ( let* ) = Result.bind

let entry_of_json json =
  let num k =
    match Json.member k json with Some (Json.Num n) -> Some n | _ -> None
  in
  match Json.member "type" json with
  | Some (Json.Str "counter") ->
    Ok (Counter_v (int_of_float (Option.value ~default:0.0 (num "value"))))
  | Some (Json.Str "gauge") ->
    Ok (Gauge_v (Option.value ~default:0.0 (num "value")))
  | Some (Json.Str "histogram") ->
    let counts = Array.make n_buckets 0 in
    let* () =
      match Json.member "counts" json with
      | Some (Json.List pairs) ->
        List.fold_left
          (fun acc p ->
            let* () = acc in
            match p with
            | Json.List [ Json.Num i; Json.Num n ] ->
              let i = int_of_float i in
              if i < 0 || i >= n_buckets then Error "histogram bucket out of range"
              else begin
                counts.(i) <- counts.(i) + int_of_float n;
                Ok ()
              end
            | _ -> Error "histogram counts must be [index, count] pairs")
          (Ok ()) pairs
      | _ -> Error "histogram missing counts"
    in
    Ok (Histo_v { counts; sum = Option.value ~default:0.0 (num "sum") })
  | _ -> Error "metric missing type"

let snapshot_of_json json =
  match Json.member "metrics" json with
  | Some (Json.List items) ->
    List.fold_left
      (fun acc item ->
        let* snap = acc in
        let* name =
          match Json.member "name" item with
          | Some (Json.Str s) -> Ok s
          | _ -> Error "metric missing name"
        in
        let labels =
          match Json.member "labels" item with
          | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
              fields
          | _ -> []
        in
        let* entry = entry_of_json item in
        Ok ((canonical_key name labels, entry) :: snap))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "snapshot missing metrics list"

(* --- Prometheus text exposition ------------------------------------ *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
    ^ "}"

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_prometheus ?(help = fun _ -> None) snap =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      (match help name with
      | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name h)
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (k, e) ->
      match e with
      | Counter_v v ->
        type_line k.name "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" k.name (render_labels k.labels) v)
      | Gauge_v v ->
        type_line k.name "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" k.name (render_labels k.labels) (fmt_float v))
      | Histo_v h ->
        type_line k.name "histogram";
        let cum = ref 0 in
        for i = 0 to n_buckets - 1 do
          let c = h.counts.(i) in
          cum := !cum + c;
          (* only emit populated bounds (plus +Inf below): cumulative
             semantics survive the omission and the text stays small *)
          if c <> 0 && i < n_buckets - 1 then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" k.name
                 (render_labels (k.labels @ [ ("le", fmt_float (bucket_bound i)) ]))
                 !cum)
        done;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" k.name
             (render_labels (k.labels @ [ ("le", "+Inf") ]))
             !cum);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" k.name (render_labels k.labels)
             (fmt_float h.sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" k.name (render_labels k.labels) !cum))
    snap;
  Buffer.contents buf
