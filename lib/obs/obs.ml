type value = Int of int | Float of float | Str of string | Bool of bool

type phase =
  | Begin
  | End
  | Complete of float
  | Instant
  | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  tid : int;
  args : (string * value) list;
}

(* The single flag every instrumentation site checks before doing any
   work; the buffer mutex is only ever taken when the flag is set. *)
let on = Atomic.make false
let lock = Mutex.create ()
let buffer = ref [] (* newest first *)

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let reset () =
  Mutex.lock lock;
  buffer := [];
  Mutex.unlock lock

let events () =
  Mutex.lock lock;
  let evs = List.rev !buffer in
  Mutex.unlock lock;
  evs

let tid () = (Domain.self () :> int)

let record ev =
  Mutex.lock lock;
  buffer := ev :: !buffer;
  Mutex.unlock lock

let span ?(cat = "") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now () -. t0 in
        record { name; cat; ph = Complete dur; ts = t0; tid = tid (); args })
      f
  end

let begin_span ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ph = Begin; ts = Clock.now (); tid = tid (); args }

let end_span ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ph = End; ts = Clock.now (); tid = tid (); args }

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ph = Instant; ts = Clock.now (); tid = tid (); args }

let counter ?(cat = "") name series =
  if Atomic.get on then
    record
      { name; cat; ph = Counter; ts = Clock.now (); tid = tid ();
        args = List.map (fun (k, v) -> (k, Float v)) series }
