type value = Int of int | Float of float | Str of string | Bool of bool

type phase =
  | Begin
  | End
  | Complete of float
  | Instant
  | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  tid : int;
  args : (string * value) list;
}

(* The single flag every instrumentation site checks before doing any
   work; slot mutexes are only ever taken when the flag is set. *)
let on = Atomic.make false

(* Per-domain buffer slots: a recording domain locks only its own
   slot's mutex, so worker domains never contend with each other. A
   global sequence number stamped under no lock (fetch_and_add)
   recovers the exact global recording order at drain time. *)
let n_slots = 64

type slot = { m : Mutex.t; mutable buf : (int * event) list (* newest first *) }

let slots = Array.init n_slots (fun _ -> { m = Mutex.create (); buf = [] })
let slot () = slots.((Domain.self () :> int) land (n_slots - 1))
let seq = Atomic.make 0
let size = Atomic.make 0 (* approximate total buffered events *)
let default_capacity = 262_144
let cap = Atomic.make default_capacity
let dropped_n = Atomic.make 0

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let set_capacity n = Atomic.set cap (max 1 n)
let capacity () = Atomic.get cap
let dropped () = Atomic.get dropped_n

let drain () =
  let parts =
    Array.map
      (fun s ->
        Mutex.lock s.m;
        let b = s.buf in
        s.buf <- [];
        Mutex.unlock s.m;
        b)
      slots
  in
  let n = Array.fold_left (fun acc b -> acc + List.length b) 0 parts in
  ignore (Atomic.fetch_and_add size (-n));
  parts

let reset () =
  ignore (drain ());
  Atomic.set dropped_n 0

let events () =
  let parts = drain () in
  let all = Array.fold_left (fun acc b -> List.rev_append b acc) [] parts in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) all)

let tid () = (Domain.self () :> int)

let record ev =
  if Atomic.fetch_and_add size 1 >= Atomic.get cap then begin
    ignore (Atomic.fetch_and_add size (-1));
    ignore (Atomic.fetch_and_add dropped_n 1)
  end
  else begin
    let n = Atomic.fetch_and_add seq 1 in
    let s = slot () in
    Mutex.lock s.m;
    s.buf <- (n, ev) :: s.buf;
    Mutex.unlock s.m
  end

let span ?(cat = "") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now () -. t0 in
        record { name; cat; ph = Complete dur; ts = t0; tid = tid (); args })
      f
  end

let complete ?(cat = "") ?(args = []) name ~ts ~dur =
  if Atomic.get on then
    record { name; cat; ph = Complete dur; ts; tid = tid (); args }

let begin_span ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ph = Begin; ts = Clock.now (); tid = tid (); args }

let end_span ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ph = End; ts = Clock.now (); tid = tid (); args }

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    record { name; cat; ph = Instant; ts = Clock.now (); tid = tid (); args }

let counter ?(cat = "") name series =
  if Atomic.get on then
    record
      { name; cat; ph = Counter; ts = Clock.now (); tid = tid ();
        args = List.map (fun (k, v) -> (k, Float v)) series }
