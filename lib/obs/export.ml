let value_json = function
  | Obs.Int i -> Json.Num (float_of_int i)
  | Obs.Float f -> Json.Num f
  | Obs.Str s -> Json.Str s
  | Obs.Bool b -> Json.Bool b

let phase_letter = function
  | Obs.Begin -> "B"
  | Obs.End -> "E"
  | Obs.Complete _ -> "X"
  | Obs.Instant -> "i"
  | Obs.Counter -> "C"

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, value_json v)) args)

let event_json (e : Obs.event) =
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (phase_letter e.ph));
      ("ts", Json.Num e.ts);
      ("tid", Json.Num (float_of_int e.tid)) ]
  in
  let dur = match e.ph with Obs.Complete d -> [ ("dur", Json.Num d) ] | _ -> [] in
  let args = if e.args = [] then [] else [ ("args", args_json e.args) ] in
  Json.Obj (base @ dur @ args)

let us seconds = seconds *. 1e6

let chrome_event_json ~t0 ~pid (e : Obs.event) =
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
      ("ph", Json.Str (phase_letter e.ph));
      ("ts", Json.Num (us (e.ts -. t0)));
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int e.tid)) ]
  in
  let extra =
    match e.ph with
    | Obs.Complete d -> [ ("dur", Json.Num (us d)) ]
    | Obs.Instant -> [ ("s", Json.Str "t") ]
    | _ -> []
  in
  let args = if e.args = [] then [] else [ ("args", args_json e.args) ] in
  Json.Obj (base @ extra @ args)

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (event_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let chrome events =
  let t0 =
    List.fold_left (fun acc (e : Obs.event) -> Float.min acc e.ts) infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let pid = Unix.getpid () in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List (List.map (chrome_event_json ~t0 ~pid) events));
         ("displayTimeUnit", Json.Str "ms") ])

(* Crash-safe: a killed process leaves either the previous export or
   the new one, never a truncated JSON document. *)
let write_jsonl path events = Cs_util.Fsio.write_atomic ~path (jsonl events)
let write_chrome path events = Cs_util.Fsio.write_atomic ~path (chrome events)
