let value_json = function
  | Obs.Int i -> Json.Num (float_of_int i)
  | Obs.Float f -> Json.Num f
  | Obs.Str s -> Json.Str s
  | Obs.Bool b -> Json.Bool b

let phase_letter = function
  | Obs.Begin -> "B"
  | Obs.End -> "E"
  | Obs.Complete _ -> "X"
  | Obs.Instant -> "i"
  | Obs.Counter -> "C"

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, value_json v)) args)

let event_json ?pid (e : Obs.event) =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (phase_letter e.ph));
      ("ts", Json.Num e.ts);
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int e.tid)) ]
  in
  let dur = match e.ph with Obs.Complete d -> [ ("dur", Json.Num d) ] | _ -> [] in
  let args = if e.args = [] then [] else [ ("args", args_json e.args) ] in
  Json.Obj (base @ dur @ args)

let ( let* ) = Result.bind

let value_of_json = function
  | Json.Num n -> Obs.Float n
  | Json.Str s -> Obs.Str s
  | Json.Bool b -> Obs.Bool b
  | j -> Obs.Str (Json.to_string j)

let event_of_json json =
  let str k = match Json.member k json with Some (Json.Str s) -> Some s | _ -> None in
  let num k = match Json.member k json with Some (Json.Num n) -> Some n | _ -> None in
  let* name = Option.to_result ~none:"event missing name" (str "name") in
  let cat = Option.value ~default:"" (str "cat") in
  let* ph_letter = Option.to_result ~none:"event missing ph" (str "ph") in
  let* ph =
    match ph_letter with
    | "B" -> Ok Obs.Begin
    | "E" -> Ok Obs.End
    | "X" -> Ok (Obs.Complete (Option.value ~default:0.0 (num "dur")))
    | "i" -> Ok Obs.Instant
    | "C" -> Ok Obs.Counter
    | s -> Error ("unknown event phase " ^ s)
  in
  let* ts = Option.to_result ~none:"event missing ts" (num "ts") in
  let pid = int_of_float (Option.value ~default:0.0 (num "pid")) in
  let tid = int_of_float (Option.value ~default:0.0 (num "tid")) in
  let args =
    match Json.member "args" json with
    | Some (Json.Obj fields) ->
      List.map (fun (k, v) -> (k, value_of_json v)) fields
    | _ -> []
  in
  Ok (pid, { Obs.name; cat; ph; ts; tid; args })

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc lineno =
        match In_channel.input_line ic with
        | None -> Ok (List.rev acc)
        | Some "" -> loop acc (lineno + 1)
        | Some line -> (
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
          | Ok j ->
            (match event_of_json j with
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
            | Ok ev -> loop (ev :: acc) (lineno + 1)))
      in
      loop [] 1)

let us seconds = seconds *. 1e6

let chrome_event_json ~t0 ~pid (e : Obs.event) =
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
      ("ph", Json.Str (phase_letter e.ph));
      ("ts", Json.Num (us (e.ts -. t0)));
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int e.tid)) ]
  in
  let extra =
    match e.ph with
    | Obs.Complete d -> [ ("dur", Json.Num (us d)) ]
    | Obs.Instant -> [ ("s", Json.Str "t") ]
    | _ -> []
  in
  let args = if e.args = [] then [] else [ ("args", args_json e.args) ] in
  Json.Obj (base @ extra @ args)

let jsonl events =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (event_json ~pid e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let process_name_meta ~pid name =
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num 0.0);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

(* Processes announce themselves with an [instant ~cat:"meta" "process"]
   carrying role/addr args (serve and gateway emit one at listen time);
   the merged trace turns it into the lane's display name. *)
let lane_name ~pid events =
  let described =
    List.find_opt
      (fun (e : Obs.event) -> e.cat = "meta" && e.name = "process")
      events
  in
  match described with
  | None -> Printf.sprintf "pid %d" pid
  | Some e ->
    let s k =
      match List.assoc_opt k e.args with Some (Obs.Str s) -> Some s | _ -> None
    in
    (match (s "role", s "addr") with
    | Some r, Some a -> Printf.sprintf "%s %s" r a
    | Some r, None -> r
    | None, _ -> Printf.sprintf "pid %d" pid)

let chrome_merged tagged =
  let t0 =
    List.fold_left (fun acc (_, (e : Obs.event)) -> Float.min acc e.ts) infinity tagged
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let pids =
    List.sort_uniq compare (List.map fst tagged)
  in
  let metas =
    List.map
      (fun pid ->
        let evs = List.filter_map (fun (p, e) -> if p = pid then Some e else None) tagged in
        process_name_meta ~pid (lane_name ~pid evs))
      pids
  in
  Json.to_string
    (Json.Obj
       [ ( "traceEvents",
           Json.List
             (metas
             @ List.map (fun (pid, e) -> chrome_event_json ~t0 ~pid e) tagged) );
         ("displayTimeUnit", Json.Str "ms") ])

let chrome events =
  let pid = Unix.getpid () in
  chrome_merged (List.map (fun e -> (pid, e)) events)

(* Crash-safe: a killed process leaves either the previous export or
   the new one, never a truncated JSON document. *)
let write_jsonl path events = Cs_util.Fsio.write_atomic ~path (jsonl events)
let write_chrome path events = Cs_util.Fsio.write_atomic ~path (chrome events)
