(** Structured events and metrics for the scheduling pipeline.

    A process-global sink collects timestamped events — spans (timed
    intervals), instants, and counters — from every layer: convergent
    passes ([cat = "pass"], with convergence metrics under
    [cat = "converge"]), the list scheduler ([cat = "sched"]), the
    simulator ([cat = "sim"]), and the autotuner ([cat = "tune"]).
    {!Export} renders the collected events as JSON Lines or Chrome
    Trace Event Format.

    The sink is disabled by default and every entry point checks a
    single atomic flag first, so instrumented hot paths pay one load
    and a branch when tracing is off (< 2% on the compile-time sweep).
    Recording is domain-safe {e and} domain-sharded: each domain
    appends to its own buffer slot under its own mutex (no cross-domain
    contention), a global atomic sequence number recovers total
    recording order at drain time, and timestamps come from {!Clock},
    so events from tuner worker domains interleave correctly. The
    buffer is bounded ({!set_capacity}); once full, new events are
    counted in {!dropped} instead of accumulating without limit, so a
    long-running [csched serve] cannot leak memory through tracing. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type phase =
  | Begin  (** opening half of a manually delimited span *)
  | End  (** closing half; pairs with the most recent [Begin] of the name *)
  | Complete of float  (** a finished span; the payload is its duration in seconds *)
  | Instant  (** a point event *)
  | Counter  (** numeric series sample; all [args] are [Float] *)

type event = {
  name : string;
  cat : string;  (** category: "pass", "converge", "sched", "sim", "tune", ... *)
  ph : phase;
  ts : float;  (** {!Clock.now} seconds; for [Complete], the span's start *)
  tid : int;  (** recording domain's id *)
  args : (string * value) list;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all collected events and zero the {!dropped} counter (does
    not change the enabled flag). *)

val events : unit -> event list
(** Drain: return all buffered events in global recording order and
    clear the buffers. Call once per capture window and keep the
    result — a second call returns only events recorded since. A
    [Complete] span is recorded when it finishes, so nested spans
    appear innermost-first; sort by [ts] for start order. *)

val set_capacity : int -> unit
(** Bound the total buffered event count (default 262144). Events
    recorded while the buffer is full are dropped and counted. *)

val capacity : unit -> int

val dropped : unit -> int
(** Events dropped since the last {!reset} because the buffer was
    full. *)

val span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and records a [Complete] event with its
    wall-clock duration; the event is recorded even when [f] raises.
    When the sink is disabled this is exactly [f ()]. *)

val complete :
  ?cat:string -> ?args:(string * value) list -> string -> ts:float -> dur:float -> unit
(** Record a finished span with an explicit start and duration (both
    in {!Clock} seconds) — for intervals measured outside the sink,
    e.g. a job's queue wait reconstructed from its admission stamp. *)

val begin_span : ?cat:string -> ?args:(string * value) list -> string -> unit
val end_span : ?cat:string -> ?args:(string * value) list -> string -> unit
(** Manual span halves for intervals that do not nest lexically. Every
    [begin_span] must be matched by an [end_span] of the same name on
    the same domain. *)

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit
val counter : ?cat:string -> string -> (string * float) list -> unit
(** [counter name series] samples one or more numeric series, e.g.
    [counter ~cat:"sched" "list_scheduler" [("ready_peak", 12.0)]]. *)
