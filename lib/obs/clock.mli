(** Monotonic wall-clock time.

    [Sys.time] measures CPU seconds of the whole process, which both
    undercounts a single scheduler run when other work shares the
    process and *over*counts wall time under the Domain-parallel tuner
    (all domains' CPU time accumulates). Every timestamp in this
    repository — trace events, compile-time sweeps, tuner utilization —
    goes through this module instead: wall-clock time clamped to be
    non-decreasing across all domains. *)

val now : unit -> float
(** Seconds since the Unix epoch, guaranteed non-decreasing across
    successive calls from any domain of this process. *)

val since : float -> float
(** [since t0] is [now () -. t0] (>= 0 for [t0] from {!now}). *)
