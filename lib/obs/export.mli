(** Export sinks for collected {!Obs} events.

    Two formats:

    - {b JSON Lines}: one self-contained JSON object per event, per
      line — timestamps in absolute seconds. Suited to ad-hoc analysis
      ([jq], pandas).
    - {b Chrome Trace Event Format}: a single JSON object
      [{"traceEvents": [...]}] loadable in [chrome://tracing] or
      Perfetto — timestamps in microseconds relative to the earliest
      event, durations attached to complete ("X") spans, counters as
      "C" events rendered as stacked series. *)

val event_json : Obs.event -> Json.t
(** The JSONL rendering of one event. *)

val chrome_event_json : t0:float -> pid:int -> Obs.event -> Json.t
(** The Chrome Trace rendering of one event; [t0] is the capture start
    time subtracted from every timestamp. *)

val jsonl : Obs.event list -> string
(** One line per event, each line a JSON object, trailing newline. *)

val chrome : Obs.event list -> string
(** The complete Chrome Trace JSON document. *)

val write_jsonl : string -> Obs.event list -> unit
val write_chrome : string -> Obs.event list -> unit
