(** Export sinks for collected {!Obs} events.

    Two formats:

    - {b JSON Lines}: one self-contained JSON object per event, per
      line — timestamps in absolute seconds, stamped with the writing
      process's pid. Suited to ad-hoc analysis ([jq], pandas) and to
      re-reading with {!load_jsonl} for cross-process merging.
    - {b Chrome Trace Event Format}: a single JSON object
      [{"traceEvents": [...]}] loadable in [chrome://tracing] or
      Perfetto — timestamps in microseconds relative to the earliest
      event, durations attached to complete ("X") spans, counters as
      "C" events rendered as stacked series. {!chrome_merged} builds
      one document from several processes' events, one lane (pid) per
      process, named from each process's [cat = "meta"] / ["process"]
      self-announcement instant. *)

val event_json : ?pid:int -> Obs.event -> Json.t
(** The JSONL rendering of one event. [pid] defaults to the current
    process. *)

val event_of_json : Json.t -> (int * Obs.event, string) result
(** Parse one {!event_json} line back; returns the recording pid
    ([0] for pre-pid traces) and the event. *)

val load_jsonl : string -> ((int * Obs.event) list, string) result
(** Read a JSONL trace file written by {!write_jsonl}. Blank lines
    are skipped; the first malformed line fails the whole load with
    [path:line: reason]. *)

val chrome_event_json : t0:float -> pid:int -> Obs.event -> Json.t
(** The Chrome Trace rendering of one event; [t0] is the capture start
    time subtracted from every timestamp. *)

val jsonl : Obs.event list -> string
(** One line per event, each line a JSON object, trailing newline. *)

val chrome : Obs.event list -> string
(** The complete Chrome Trace JSON document for one process. *)

val chrome_merged : (int * Obs.event) list -> string
(** The complete Chrome Trace JSON document for events gathered from
    several processes (as loaded by {!load_jsonl}), with a
    [process_name] metadata record per pid lane. *)

val write_jsonl : string -> Obs.event list -> unit
val write_chrome : string -> Obs.event list -> unit
