(** Cross-process trace context.

    A context names one causal chain through the fleet: a [trace_id]
    shared by every span the originating job touches (client submit,
    gateway dispatch, shard queue + run), a [span_id] unique to the
    current hop, and the parent hop's span id. On the wire
    ({!Cs_svc.Proto} requests) only [trace_id] and [parent_span]
    travel — each process mints its own [span_id]s — as the
    ["trace_id"]/["parent_span"] JSON fields documented in DESIGN.md
    ("Fleet telemetry").

    Ids are 16 lowercase hex digits, generated from a splitmix64
    stream seeded per-process (pid + clock), so concurrent processes
    do not collide in practice. *)

type t = {
  trace_id : string;  (** shared by the whole causal chain *)
  span_id : string;  (** this hop *)
  parent_span : string option;  (** the hop that caused this one *)
}

val fresh_id : unit -> string
(** A new 16-hex-digit id. *)

val root : unit -> t
(** Start a new trace: fresh [trace_id] and [span_id], no parent. *)

val child : t -> t
(** A new hop under [t]: same [trace_id], fresh [span_id],
    [parent_span = Some t.span_id]. *)

val make : trace_id:string -> ?parent_span:string -> unit -> t
(** Rebuild a context from wire headers, minting a fresh [span_id]
    for the receiving hop. *)

val args : t -> (string * Obs.value) list
(** The context as span args ([trace_id], [span_id], and
    [parent_span] when present) for {!Obs.span} and friends — the
    merged Chrome trace groups spans by these. *)
