type t = {
  trace_id : string;
  span_id : string;
  parent_span : string option;
}

(* splitmix64: tiny, stateless-per-step, and good enough for ids that
   only need to be unique across a fleet's worth of spans. *)
let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, logxor z (shift_right_logical z 31))

let state =
  let seed =
    Int64.logxor
      (Int64.of_int (Unix.getpid () * 0x1000193))
      (Int64.bits_of_float (Clock.now ()))
  in
  Atomic.make seed

let rec next_raw () =
  let old = Atomic.get state in
  let next, out = splitmix64 old in
  if Atomic.compare_and_set state old next then out else next_raw ()

let fresh_id () = Printf.sprintf "%016Lx" (next_raw ())

let root () = { trace_id = fresh_id (); span_id = fresh_id (); parent_span = None }

let child t =
  { trace_id = t.trace_id; span_id = fresh_id (); parent_span = Some t.span_id }

let make ~trace_id ?parent_span () = { trace_id; span_id = fresh_id (); parent_span }

let args t =
  [ ("trace_id", Obs.Str t.trace_id); ("span_id", Obs.Str t.span_id) ]
  @ match t.parent_span with
    | None -> []
    | Some p -> [ ("parent_span", Obs.Str p) ]
