(** The differential-testing oracle: runs a scenario's scheduler and
    cross-checks the result against every independent judge in the
    repository —

    - {!Cs_sched.Validator}: resource and dependence legality;
    - {!Cs_sim.Interp}: observational equivalence to program-order
      execution (the executable semantic oracle);
    - analytic bounds: makespan at or above the critical-path lower
      bound and enough issue slots for every instruction;
    - a metamorphic invariant: on symmetric (crossbar) machines with no
      preplacement, relabeling clusters preserves legality, semantics,
      and makespan.

    A scheduler crash (a typed {!Cs_resil.Error}, [Failure],
    [Invalid_argument]) is itself a reported violation, not a fuzzer
    error.

    Scenarios with a non-empty fault plan run on the degraded machine
    through {!Cs_sim.Pipeline.schedule_resilient}: a classified refusal
    is a legitimate outcome (not a violation), but any schedule the
    fallback chain does return must satisfy every judge, and symmetric-
    machine permutation is off (damage breaks the symmetry). *)

type violation = { check : string; detail : string }
(** [check] is the failing judge: ["schedule"], ["validator"],
    ["interp"], ["cpl-bound"], ["resource-bound"], or ["permute"]. *)

val build : Scenario.t -> (Cs_sched.Schedule.t option, violation) result
(** Run the scenario's scheduler {e without} the pipeline's internal
    validation, converting crashes into ["schedule"] violations.
    [Ok None] is a graceful typed refusal, possible only on degraded
    scenarios. *)

val check_schedule : Scenario.t -> Cs_sched.Schedule.t -> (unit, violation) result
(** All checks, first failure wins (ordered as listed above). *)

val run :
  ?transform:(Cs_sched.Schedule.t -> Cs_sched.Schedule.t) ->
  Scenario.t -> (unit, violation) result
(** [build] then [check_schedule]. [transform] is applied to the built
    schedule first — the bug-injection hook used by tests to prove the
    oracle and shrinker catch corrupted schedules. *)
