(* Deterministic scenario generation: one seed, one (region, machine,
   scheduler) case. All randomness flows through Cs_util.Rng, so a
   finding is replayable from its seed alone. *)

let shapes = [ "layered"; "thin"; "fat"; "trace"; "superblock"; "hyperblock" ]

(* The machine pool mirrors the paper's configurations (Raw meshes from
   1 to 16 tiles, clustered VLIWs from 1 to 8 clusters), weighted
   towards the evaluation machines. *)
let machine_pool =
  [|
    (fun () -> Cs_machine.Raw.with_tiles 2);
    (fun () -> Cs_machine.Raw.with_tiles 4);
    (fun () -> Cs_machine.Raw.with_tiles 4);
    (fun () -> Cs_machine.Raw.with_tiles 8);
    (fun () -> Cs_machine.Raw.with_tiles 16);
    (fun () -> Cs_machine.Raw.with_tiles 1);
    (fun () -> Cs_machine.Vliw.create ~n_clusters:2 ());
    (fun () -> Cs_machine.Vliw.create ~n_clusters:4 ());
    (fun () -> Cs_machine.Vliw.create ~n_clusters:4 ());
    (fun () -> Cs_machine.Vliw.create ~n_clusters:8 ());
    (fun () -> Cs_machine.Vliw.single_cluster ());
  |]

let congruence rng ~n_clusters =
  match Cs_util.Rng.int rng 3 with
  | 0 -> Cs_workloads.Congruence.interleaved ~n_banks:n_clusters
  | 1 -> Cs_workloads.Congruence.blocked ~n_banks:n_clusters ~block:(1 + Cs_util.Rng.int rng 4)
  | _ -> Cs_workloads.Congruence.unanalyzable

let layered rng ~n_clusters ~seed =
  Cs_workloads.Shapes.layered
    ~n:(12 + Cs_util.Rng.int rng 90)
    ~width:(4 + Cs_util.Rng.int rng 16)
    ~mem_fraction:(Cs_util.Rng.float rng 0.4)
    ~congruence:(congruence rng ~n_clusters)
    ~seed ()

let cfg_of rng ~n_clusters ~seed =
  Cs_cfg.Generate.acyclic
    ~segments:(2 + Cs_util.Rng.int rng 4)
    ~instrs_per_block:(2 + Cs_util.Rng.int rng 6)
    ~variables:(4 + Cs_util.Rng.int rng 6)
    ~mem_fraction:(Cs_util.Rng.float rng 0.4)
    ~banks:n_clusters ~seed ()

let pick_region rng regions ~fallback =
  match List.filter (fun r -> Cs_ddg.Region.n_instrs r > 0) regions with
  | [] -> fallback ()
  | nonempty -> List.nth nonempty (Cs_util.Rng.int rng (List.length nonempty))

(* Sweep the live-across-regions constraint: home a random subset of the
   region's live-in registers on random clusters (paper Sec. 5, values
   live across scheduling regions), unless the region already has homes. *)
let maybe_home_live_ins rng ~n_clusters region =
  let live_ins = Cs_ddg.Graph.live_in_regs region.Cs_ddg.Region.graph in
  if
    (not (Cs_ddg.Reg.Map.is_empty region.Cs_ddg.Region.live_in_homes))
    || Cs_ddg.Reg.Set.is_empty live_ins
    || Cs_util.Rng.int rng 3 > 0
  then region
  else begin
    let homes =
      Cs_ddg.Reg.Set.fold
        (fun r acc ->
          if Cs_util.Rng.bool rng then (r, Cs_util.Rng.int rng n_clusters) :: acc else acc)
        live_ins []
    in
    Cs_ddg.Region.make
      ~name:region.Cs_ddg.Region.name
      ~graph:region.Cs_ddg.Region.graph
      ~live_in_homes:homes
      ~live_outs:(Cs_ddg.Reg.Set.elements region.Cs_ddg.Region.live_outs)
      ()
  end

let region_of_shape rng shape ~n_clusters ~seed =
  let fallback () = layered rng ~n_clusters ~seed in
  match shape with
  | "layered" -> layered rng ~n_clusters ~seed
  | "thin" ->
    Cs_workloads.Shapes.thin
      ~chains:(1 + Cs_util.Rng.int rng 5)
      ~length:(3 + Cs_util.Rng.int rng 12)
      ~cross_links:(Cs_util.Rng.int rng 5)
      ~seed ()
  | "fat" ->
    Cs_workloads.Shapes.fat
      ~width:(2 + Cs_util.Rng.int rng 10)
      ~depth:(1 + Cs_util.Rng.int rng 6)
      ~seed ()
  | "trace" ->
    pick_region rng (Cs_cfg.Trace.regions (cfg_of rng ~n_clusters ~seed)) ~fallback
  | "superblock" ->
    let cfg', sbs = Cs_cfg.Superblock.form (cfg_of rng ~n_clusters ~seed) in
    pick_region rng
      (List.map (fun sb -> Cs_cfg.Trace.region_of_trace cfg' sb) sbs)
      ~fallback
  | "hyperblock" ->
    let cfg = cfg_of rng ~n_clusters ~seed in
    (try Cs_cfg.Hyperblock.region_of cfg ~entry:cfg.Cs_cfg.Cfg.entry
     with Invalid_argument _ ->
       pick_region rng (Cs_cfg.Trace.regions cfg) ~fallback)
  | _ -> fallback ()

let spec_of rng ~machine =
  match Cs_util.Rng.int rng 8 with
  | 0 -> Scenario.Baseline Cs_sim.Pipeline.Convergent
  | 1 -> Scenario.Baseline Cs_sim.Pipeline.Rawcc
  | 2 -> Scenario.Baseline Cs_sim.Pipeline.Uas
  | 3 -> Scenario.Baseline Cs_sim.Pipeline.Pcc
  | 4 -> Scenario.Baseline Cs_sim.Pipeline.Bug
  | 5 -> Scenario.Baseline Cs_sim.Pipeline.Anneal
  | _ ->
    (* Randomized convergent pass sequence drawn from the autotuner's
       validity-preserving genome space. *)
    (match Cs_tuner.Genome.to_passes (Cs_tuner.Genome.random rng machine) with
    | Ok passes -> Scenario.Passes passes
    | Error _ -> Scenario.Baseline Cs_sim.Pipeline.Convergent)

let shape_of_machine (machine : Cs_machine.Machine.t) =
  {
    Cs_resil.Fault.n_clusters = Cs_machine.Machine.n_clusters machine;
    issue_width = Cs_machine.Machine.issue_width machine;
    mesh =
      (match machine.Cs_machine.Machine.topology with
      | Cs_machine.Topology.Mesh { rows; cols; _ } -> Some (rows, cols)
      | Cs_machine.Topology.Crossbar _ -> None);
  }

(* Degraded mode draws faults (and pass corruption) from a sub-stream
   derived from the seed, after the base scenario is fully drawn: the
   degraded case is exactly the healthy case plus damage, so a finding
   on seed S can be A/B'd against the healthy seed S. *)
let maybe_faults ~seed ~machine region spec =
  let rng = Cs_util.Rng.create (seed lxor 0x0FA_0175) in
  let faults =
    if Cs_util.Rng.int rng 4 = 0 then []
    else begin
      let plan = Cs_resil.Fault.random rng ~shape:(shape_of_machine machine) in
      (* Keep the generator contract on the degraded machine too: a plan
         that strands a preplaced op (or every FU for some opcode) is
         dropped, not emitted as a guaranteed refusal. *)
      match Cs_machine.Machine.degrade machine plan with
      | degraded ->
        (match Cs_machine.Machine.validate_region degraded region with
        | Ok () -> plan
        | Error _ -> [])
      | exception Cs_resil.Error.Error _ -> []
    end
  in
  let spec =
    match spec with
    | Scenario.Passes passes when Cs_util.Rng.int rng 4 = 0 ->
      (* Sabotage the sequence with a CHAOS pass: the driver must
         quarantine it and the oracle must see no difference. *)
      let mode = Cs_util.Rng.int rng 5 in
      let at = Cs_util.Rng.int rng (List.length passes + 1) in
      let chaos = Cs_core.Chaos.pass ~mode () in
      Scenario.Passes
        (List.concat
           [ List.filteri (fun i _ -> i < at) passes; [ chaos ];
             List.filteri (fun i _ -> i >= at) passes ])
    | other -> other
  in
  (faults, spec)

let case_gen ~degraded ~seed =
  let rng = Cs_util.Rng.create seed in
  let machine = (Cs_util.Rng.choose rng machine_pool) () in
  let n_clusters = Cs_machine.Machine.n_clusters machine in
  let shape = List.nth shapes (Cs_util.Rng.int rng (List.length shapes)) in
  (* An independent sub-stream seeds the shape generator, so region
     structure does not depend on how many draws the shape used. *)
  let region_seed = seed lxor 0x2545F49 in
  let region = region_of_shape rng shape ~n_clusters ~seed:region_seed in
  let region = maybe_home_live_ins rng ~n_clusters region in
  let region, shape =
    (* Generator contract: every emitted case fits its machine. *)
    match Cs_machine.Machine.validate_region machine region with
    | Ok () -> (region, shape)
    | Error _ ->
      ( Cs_workloads.Shapes.layered ~n:30
          ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:n_clusters)
          ~seed:region_seed (),
        "layered" )
  in
  let spec = spec_of rng ~machine in
  let faults, spec =
    if degraded then maybe_faults ~seed ~machine region spec else ([], spec)
  in
  { Scenario.label = shape; seed; machine; faults; region; spec }

let case ~seed = case_gen ~degraded:false ~seed
let case_degraded ~seed = case_gen ~degraded:true ~seed
