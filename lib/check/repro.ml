type t = {
  scenario : Scenario.t;
  check : string option;
  note : string option;
}

let header_line key value = Printf.sprintf "%s %s\n" key value

(* The canonical scenario hash doubles as the repro file's integrity
   fingerprint: recorded on save, re-derived and compared on load, so a
   hand-edited or truncated repro is rejected instead of silently
   replaying a different scenario. *)
let fingerprint (scenario : Scenario.t) =
  Cs_core.Scenario.hex
    (Cs_core.Scenario.canonical_hash ~faults:scenario.Scenario.faults
       ~spec:
         (Printf.sprintf "%s seed %d"
            (Scenario.spec_to_string scenario.Scenario.spec)
            scenario.Scenario.seed)
       ~machine:scenario.Scenario.machine scenario.Scenario.region)

let to_string t =
  let b = Buffer.create 512 in
  Buffer.add_string b "cs-check-repro v1\n";
  Buffer.add_string b (header_line "machine" (Scenario.machine_name t.scenario.Scenario.machine));
  Buffer.add_string b (header_line "scheduler" (Scenario.spec_to_string t.scenario.Scenario.spec));
  Buffer.add_string b (header_line "seed" (string_of_int t.scenario.Scenario.seed));
  if t.scenario.Scenario.faults <> [] then
    Buffer.add_string b
      (header_line "faults" (Cs_resil.Fault.to_string t.scenario.Scenario.faults));
  Buffer.add_string b (header_line "label" t.scenario.Scenario.label);
  Buffer.add_string b (header_line "fingerprint" (fingerprint t.scenario));
  Option.iter (fun c -> Buffer.add_string b (header_line "check" c)) t.check;
  Option.iter (fun n -> Buffer.add_string b (header_line "note" n)) t.note;
  Buffer.add_string b "region\n";
  Buffer.add_string b (Cs_ddg.Textual.to_string t.scenario.Scenario.region);
  Buffer.contents b

let split_header line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | magic :: rest when String.trim magic = "cs-check-repro v1" ->
    let rec parse_headers machine spec seed faults label check note fp = function
      | [] -> Error "missing 'region' section"
      | line :: rest ->
        let line = String.trim line in
        if line = "" then parse_headers machine spec seed faults label check note fp rest
        else if line = "region" then begin
          let region_text = String.concat "\n" rest in
          let ( let* ) = Result.bind in
          let* machine =
            match machine with
            | Some m -> Ok m
            | None -> Error "missing 'machine' header"
          in
          let* spec =
            match spec with Some s -> Ok s | None -> Error "missing 'scheduler' header"
          in
          let* region = Cs_ddg.Textual.of_string region_text in
          let faults = Option.value ~default:[] faults in
          let* () =
            (* The plan must apply to the named machine, or the repro is
               corrupt. *)
            match Cs_machine.Machine.degrade machine faults with
            | _ -> Ok ()
            | exception Cs_resil.Error.Error e ->
              Error ("fault plan does not fit machine: " ^ Cs_resil.Error.message e)
          in
          (match Cs_machine.Machine.validate_region machine region with
          | Error msg -> Error ("region does not fit machine: " ^ msg)
          | Ok () ->
            let scenario =
              {
                Scenario.label = Option.value ~default:"repro" label;
                seed = Option.value ~default:0 seed;
                machine;
                faults;
                region;
                spec;
              }
            in
            let* () =
              match fp with
              | None -> Ok ()
              | Some recorded ->
                let actual = fingerprint scenario in
                if String.equal recorded actual then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "fingerprint mismatch: file says %s, content hashes to %s \
                        (repro edited or corrupt)"
                       recorded actual)
            in
            Ok { scenario; check; note })
        end
        else begin
          let key, value = split_header line in
          match key with
          | "machine" ->
            (match Scenario.machine_of_name value with
            | Ok m -> parse_headers (Some m) spec seed faults label check note fp rest
            | Error msg -> Error msg)
          | "scheduler" ->
            (match Scenario.spec_of_string value with
            | Ok sp -> parse_headers machine (Some sp) seed faults label check note fp rest
            | Error msg -> Error msg)
          | "seed" ->
            (match int_of_string_opt value with
            | Some n -> parse_headers machine spec (Some n) faults label check note fp rest
            | None -> Error (Printf.sprintf "bad seed %S" value))
          | "faults" ->
            (match Cs_resil.Fault.parse value with
            | Ok plan -> parse_headers machine spec seed (Some plan) label check note fp rest
            | Error msg -> Error msg)
          | "label" -> parse_headers machine spec seed faults (Some value) check note fp rest
          | "check" -> parse_headers machine spec seed faults label (Some value) note fp rest
          | "note" -> parse_headers machine spec seed faults label check (Some value) fp rest
          | "fingerprint" ->
            parse_headers machine spec seed faults label check note (Some value) rest
          | _ -> Error (Printf.sprintf "unknown header %S" key)
        end
    in
    parse_headers None None None None None None None None rest
  | _ -> Error "not a cs-check-repro file (missing magic line)"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let save ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base =
    Printf.sprintf "seed%d-%s-%s" t.scenario.Scenario.seed t.scenario.Scenario.label
      (Option.value ~default:"violation" t.check)
  in
  let rec fresh k =
    let path =
      Filename.concat dir
        (if k = 0 then base ^ ".repro" else Printf.sprintf "%s-%d.repro" base k)
    in
    if Sys.file_exists path then fresh (k + 1) else path
  in
  let path = fresh 0 in
  Cs_util.Fsio.write_atomic ~path (to_string t);
  path

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let replay t = Oracle.run t.scenario
