(* Delta-debugging minimizer for failing scenarios (Zeller-style ddmin
   over the region's instructions, then structural cleanups). Dropping
   an instruction rewires its consumers automatically: a register whose
   definition is removed becomes a region live-in, so every reduction
   step yields a well-formed region by construction. *)

type outcome = {
  scenario : Scenario.t;
  tests : int; (* predicate evaluations spent *)
}

(* Rebuild the region keeping only [keep] (sorted old instruction ids).
   Ordering (memory) edges between kept instructions survive: def-use
   edges are re-derived from operands and every other graph edge is
   passed back explicitly (Graph.of_instrs ignores duplicates). *)
let restrict_region region keep =
  let graph = region.Cs_ddg.Region.graph in
  let keep_arr = Array.of_list keep in
  let remap = Hashtbl.create (Array.length keep_arr) in
  Array.iteri (fun ni oi -> Hashtbl.add remap oi ni) keep_arr;
  let instrs =
    Array.mapi
      (fun ni oi ->
        let ins = Cs_ddg.Graph.instr graph oi in
        Cs_ddg.Instr.make ~id:ni ~op:ins.Cs_ddg.Instr.op ~dst:ins.Cs_ddg.Instr.dst
          ~srcs:ins.Cs_ddg.Instr.srcs ?preplace:ins.Cs_ddg.Instr.preplace
          ~tag:ins.Cs_ddg.Instr.tag ())
      keep_arr
  in
  let extra_edges =
    Array.to_list keep_arr
    |> List.concat_map (fun oi ->
           Cs_ddg.Graph.succs graph oi
           |> List.filter_map (fun oj ->
                  match (Hashtbl.find_opt remap oi, Hashtbl.find_opt remap oj) with
                  | Some ni, Some nj -> Some (ni, nj)
                  | _ -> None))
  in
  let graph' = Cs_ddg.Graph.of_instrs instrs ~extra_edges in
  let live_ins' = Cs_ddg.Graph.live_in_regs graph' in
  let live_in_homes =
    Cs_ddg.Reg.Map.fold
      (fun r home acc -> if Cs_ddg.Reg.Set.mem r live_ins' then (r, home) :: acc else acc)
      region.Cs_ddg.Region.live_in_homes []
  in
  let defined r = Cs_ddg.Graph.defining_instr graph' r <> None in
  let live_outs =
    Cs_ddg.Reg.Set.elements region.Cs_ddg.Region.live_outs
    |> List.filter (fun r -> defined r || Cs_ddg.Reg.Set.mem r live_ins')
  in
  Cs_ddg.Region.make ~name:region.Cs_ddg.Region.name ~graph:graph' ~live_in_homes
    ~live_outs ()

let with_region scenario region = { scenario with Scenario.region }

let try_restrict scenario keep =
  if keep = [] then None
  else
    (* Keep the surviving instructions in their original program order. *)
    let keep = List.sort_uniq Int.compare keep in
    try Some (with_region scenario (restrict_region scenario.Scenario.region keep))
    with Invalid_argument _ -> None

(* Classic ddmin on the kept-instruction list. *)
let ddmin ~test ~budget scenario =
  let tests = ref 0 in
  let check keep =
    match try_restrict scenario keep with
    | Some candidate when !tests < budget ->
      incr tests;
      if test candidate then Some candidate else None
    | _ -> None
  in
  let rec split_into k l =
    if k <= 1 then [ l ]
    else begin
      let n = List.length l in
      let size = max 1 (n / k) in
      let chunk = List.filteri (fun i _ -> i < size) l in
      let rest = List.filteri (fun i _ -> i >= size) l in
      chunk :: split_into (k - 1) rest
    end
  in
  let rec go keep k best =
    let n = List.length keep in
    if n < 2 || k > n || !tests >= budget then (keep, best)
    else begin
      let chunks = split_into k keep in
      let try_chunks candidates next_k =
        List.fold_left
          (fun acc cand ->
            match acc with
            | Some _ -> acc
            | None ->
              (match check cand with Some s -> Some (cand, s) | None -> None))
          None candidates
        |> function
        | Some (cand, s) -> go cand (max 2 next_k) s
        | None ->
          if k >= n then (keep, best) else go keep (min (2 * k) n) best
      in
      (* Prefer single chunks (fast shrinking), then complements. *)
      let complements =
        List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks)) chunks
      in
      match
        List.fold_left
          (fun acc cand ->
            match acc with
            | Some _ -> acc
            | None -> (match check cand with Some s -> Some (cand, s) | None -> None))
          None chunks
      with
      | Some (cand, s) -> go cand 2 s
      | None -> try_chunks complements (k - 1)
    end
  in
  let all = List.init (Cs_ddg.Region.n_instrs scenario.Scenario.region) (fun i -> i) in
  let keep, best = go all 2 scenario in
  (* Final sweep: drop instructions one at a time until a fixpoint. *)
  let rec sweep keep best =
    if !tests >= budget then (keep, best)
    else begin
      let rec try_each prefix = function
        | [] -> None
        | i :: rest ->
          let cand = List.rev_append prefix rest in
          (match check cand with
          | Some s -> Some (cand, s)
          | None -> try_each (i :: prefix) rest)
      in
      match try_each [] keep with
      | Some (cand, s) -> sweep cand s
      | None -> (keep, best)
    end
  in
  let _, best = sweep keep best in
  (best, !tests)

(* Structural cleanups beyond instruction deletion. *)
(* Healthy machines are simpler to reason about than degraded ones:
   try clearing the fault plan entirely, then dropping one fault at a
   time. *)
let strip_faults scenario =
  if scenario.Scenario.faults = [] then None
  else Some { scenario with Scenario.faults = [] }

let shrink_faults ~test ~budget tests scenario =
  let rec go scenario =
    let faults = scenario.Scenario.faults in
    if List.length faults <= 1 || !tests >= budget then scenario
    else begin
      let rec try_each prefix = function
        | [] -> None
        | f :: rest ->
          let cand =
            { scenario with Scenario.faults = List.rev_append prefix rest }
          in
          incr tests;
          if test cand then Some cand else try_each (f :: prefix) rest
      in
      match try_each [] faults with Some s -> go s | None -> scenario
    end
  in
  go scenario

let strip_preplacement scenario =
  let region = scenario.Scenario.region in
  let graph = region.Cs_ddg.Region.graph in
  if Cs_ddg.Graph.preplaced graph = [] then None
  else begin
    let instrs =
      Array.map
        (fun ins ->
          Cs_ddg.Instr.make ~id:ins.Cs_ddg.Instr.id ~op:ins.Cs_ddg.Instr.op
            ~dst:ins.Cs_ddg.Instr.dst ~srcs:ins.Cs_ddg.Instr.srcs
            ~tag:ins.Cs_ddg.Instr.tag ())
        (Cs_ddg.Graph.instrs graph)
    in
    let n = Array.length instrs in
    let extra_edges =
      List.init n (fun i -> List.map (fun j -> (i, j)) (Cs_ddg.Graph.succs graph i))
      |> List.concat
    in
    let graph' = Cs_ddg.Graph.of_instrs instrs ~extra_edges in
    let live_in_homes =
      Cs_ddg.Reg.Map.bindings region.Cs_ddg.Region.live_in_homes
    in
    Some
      (with_region scenario
         (Cs_ddg.Region.make ~name:region.Cs_ddg.Region.name ~graph:graph'
            ~live_in_homes
            ~live_outs:(Cs_ddg.Reg.Set.elements region.Cs_ddg.Region.live_outs)
            ()))
  end

let strip_live_in_homes scenario =
  let region = scenario.Scenario.region in
  if Cs_ddg.Reg.Map.is_empty region.Cs_ddg.Region.live_in_homes then None
  else
    Some
      (with_region scenario
         (Cs_ddg.Region.make ~name:region.Cs_ddg.Region.name
            ~graph:region.Cs_ddg.Region.graph
            ~live_outs:(Cs_ddg.Reg.Set.elements region.Cs_ddg.Region.live_outs)
            ()))

(* Shorten a custom pass sequence one pass at a time. *)
let shrink_passes ~test ~budget tests scenario =
  match scenario.Scenario.spec with
  | Scenario.Baseline _ -> scenario
  | Scenario.Passes passes ->
    let rec go passes scenario =
      if List.length passes <= 1 || !tests >= budget then scenario
      else begin
        let rec try_each prefix = function
          | [] -> None
          | p :: rest ->
            let cand =
              { scenario with Scenario.spec = Scenario.Passes (List.rev_append prefix rest) }
            in
            incr tests;
            if test cand then Some (List.rev_append prefix rest, cand)
            else try_each (p :: prefix) rest
        in
        match try_each [] passes with
        | Some (passes', scenario') -> go passes' scenario'
        | None -> scenario
      end
    in
    go passes scenario

let minimize ?(budget = 500) ~test scenario =
  let keep_if_fails tests candidate scenario =
    match candidate with
    | Some c when !tests < budget ->
      incr tests;
      if test c then c else scenario
    | _ -> scenario
  in
  let best, used = ddmin ~test ~budget scenario in
  let tests = ref used in
  let best = keep_if_fails tests (strip_faults best) best in
  let best = shrink_faults ~test ~budget tests best in
  let best = keep_if_fails tests (strip_preplacement best) best in
  let best = keep_if_fails tests (strip_live_in_homes best) best in
  let best = shrink_passes ~test ~budget tests best in
  { scenario = best; tests = !tests }
