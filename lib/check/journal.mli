(** Crash-safe fuzz-run journal for [csched fuzz --resume].

    The fuzzer's search phase records every completed seed chunk (and
    the seeds that produced violations) through
    {!Cs_util.Fsio.write_atomic}; a process killed mid-run can resume
    and skip the recorded chunks. Because scenarios are deterministic
    functions of their seed, violations are re-derived from their
    recorded seeds on resume, so the combined findings are
    bit-identical to an uninterrupted run's. *)

type t

val create : path:string -> ?degraded:bool -> seeds:int * int -> unit -> t
(** Fresh journal for the given inclusive seed range; overwrites any
    existing file at [path]. *)

val load : path:string -> (t, string) result

val resume : path:string -> ?degraded:bool -> seeds:int * int -> unit -> t
(** {!load} if the file exists and its seed range and degraded flag
    match; otherwise a fresh {!create} (a journal for a different
    configuration is not resumable). *)

val record : t -> chunk:int * int -> violations:int list -> unit
(** Mark an inclusive seed range complete and append its violation
    seeds; rewrites the journal atomically. Safe to call from multiple
    domains. *)

val is_done : t -> int -> bool
(** Seed covered by a recorded chunk. *)

val violation_seeds : t -> int list
(** Recorded violation seeds, deduplicated, ascending. *)
