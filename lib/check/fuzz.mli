(** The differential fuzzing driver: generate a scenario per seed, run
    it through {!Oracle}, minimize any violation with {!Shrink}, and
    report findings as replayable {!Repro} files plus JSON Lines.

    The search fans out across domains with the same chunked atomic
    work queue as the tuner's fitness evaluator; shrinking and
    reporting then run sequentially in seed order, so a seed range
    always produces the same findings in the same order regardless of
    [domains]. *)

type finding = {
  seed : int;
  label : string; (** generator shape ("layered", "trace", ...) *)
  check : string; (** failing oracle judge *)
  detail : string;
  n_instrs : int; (** region size as generated *)
  shrunk_instrs : int; (** region size after minimization *)
  repro_path : string option; (** where the repro was written, if anywhere *)
}

type stats = {
  cases : int;
      (** seeds covered — executed this run or restored from a resumed
          journal (≤ seed range under a time budget) *)
  violations : int;
  elapsed_s : float; (** search phase wall-clock, excluding shrinking *)
  completed : bool;
      (** every seed in the range was covered; [false] means the time
          budget expired first (report [budget_exhausted]) *)
}

val run :
  ?domains:int ->
  ?time_budget_s:float ->
  ?corpus_dir:string ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?degraded:bool ->
  ?transform:(Cs_sched.Schedule.t -> Cs_sched.Schedule.t) ->
  ?on_finding:(finding -> unit) ->
  ?journal:Journal.t ->
  seeds:int * int ->
  unit ->
  stats * finding list
(** [run ~seeds:(lo, hi) ()] fuzzes seeds [lo..hi] inclusive.
    [time_budget_s] stops workers from claiming new seeds once spent.
    [corpus_dir] writes one repro file per (minimized) finding.
    [shrink] (default true) minimizes each failing scenario against
    "the same judge still rejects". [degraded] (default false) draws
    fault-injected cases ({!Gen.case}); the oracle then accepts typed
    refusals but holds every returned schedule to the same judges.
    [transform] is the bug-injection hook forwarded to {!Oracle.run}.
    [on_finding] fires after each finding is minimized.

    [journal] makes the search phase crash-safe and resumable: every
    completed chunk is recorded (see {!Journal}), seeds the journal
    already covers are skipped, and their recorded violations are
    regenerated deterministically — a run killed mid-search and resumed
    produces findings bit-identical to an uninterrupted run. *)

val findings_jsonl : finding list -> string
(** One JSON object per line; empty string for no findings. *)
