type violation = { check : string; detail : string }

let violation check detail = { check; detail }

let build scenario =
  let { Scenario.machine; faults; region; spec; seed; _ } = scenario in
  if faults = [] then begin
    try
      Ok
        (Some
           (match spec with
           | Scenario.Baseline scheduler ->
             Cs_sim.Pipeline.schedule_raw ~seed ~scheduler ~machine region
           | Scenario.Passes passes ->
             Cs_sim.Pipeline.schedule_raw ~seed ~passes
               ~scheduler:Cs_sim.Pipeline.Convergent ~machine region))
    with
    | Cs_resil.Error.Error e ->
      Error (violation "schedule" (Cs_resil.Error.to_string e))
    | Failure msg -> Error (violation "schedule" ("failure: " ^ msg))
    | Invalid_argument msg -> Error (violation "schedule" ("invalid argument: " ^ msg))
  end
  else begin
    (* Degraded machine: the contract is schedule_resilient's — either a
       validated schedule or a classified refusal. A refusal is a
       legitimate outcome ([Ok None]); an escaped exception is not. *)
    let machine = Scenario.scheduling_machine scenario in
    try
      match spec with
      | Scenario.Baseline scheduler ->
        (match Cs_sim.Pipeline.schedule_resilient ~seed ~scheduler ~machine region with
        | Ok (sched, _) -> Ok (Some sched)
        | Error _ -> Ok None)
      | Scenario.Passes passes ->
        (match Cs_sim.Pipeline.schedule_resilient ~seed ~passes ~machine region with
        | Ok (sched, _) -> Ok (Some sched)
        | Error _ -> Ok None)
    with
    | Failure msg -> Error (violation "schedule" ("escaped failure: " ^ msg))
    | Invalid_argument msg ->
      Error (violation "schedule" ("escaped invalid argument: " ^ msg))
  end

let check_validator sched =
  match Cs_sched.Validator.check sched with
  | Ok () -> Ok ()
  | Error problems ->
    Error (violation "validator" (String.concat "; " problems))

let check_interp region sched =
  match Cs_sim.Interp.equivalent region sched with
  | Ok () -> Ok ()
  | Error msg -> Error (violation "interp" msg)

let check_bounds machine region sched =
  let n = Cs_ddg.Region.n_instrs region in
  let makespan = Cs_sched.Schedule.makespan sched in
  let analysis =
    Cs_ddg.Analysis.make
      ~latency:(Cs_machine.Machine.latency_of machine)
      region.Cs_ddg.Region.graph
  in
  let cpl = Cs_ddg.Analysis.cpl analysis in
  if n > 0 && makespan < cpl then
    Error
      (violation "cpl-bound"
         (Printf.sprintf "makespan %d below critical-path bound %d" makespan cpl))
  else begin
    let slots =
      makespan * Cs_machine.Machine.n_clusters machine
      * Cs_machine.Machine.issue_width machine
    in
    if n > 0 && slots < n then
      Error
        (violation "resource-bound"
           (Printf.sprintf "%d instructions in %d issue slots (makespan %d)" n slots
              makespan))
    else Ok ()
  end

(* Cluster-permutation metamorphic invariant: on a symmetric machine
   (identical clusters behind a crossbar) with nothing pinning a value
   to a particular cluster, relabeling the clusters of a legal schedule
   must yield another legal, semantically equivalent schedule of the
   same makespan. Catches hidden cluster-identity assumptions in the
   validator and the semantic oracle. Fault plans break the symmetry,
   so degraded scenarios are never permutable. *)
let permutable scenario =
  let { Scenario.machine; faults; region; _ } = scenario in
  faults = []
  && (not (Cs_machine.Machine.is_mesh machine))
  && Cs_machine.Machine.n_clusters machine > 1
  && Cs_ddg.Graph.preplaced region.Cs_ddg.Region.graph = []

let check_permutation scenario sched =
  if not (permutable scenario) then Ok ()
  else begin
    let { Scenario.machine; region; _ } = scenario in
    let nc = Cs_machine.Machine.n_clusters machine in
    let rotated = Cs_sched.Schedule.map_clusters (fun c -> (c + 1) mod nc) sched in
    if Cs_sched.Schedule.makespan rotated <> Cs_sched.Schedule.makespan sched then
      Error (violation "permute" "cluster rotation changed the makespan")
    else
      match Cs_sched.Validator.check rotated with
      | Error problems ->
        Error
          (violation "permute"
             ("rotated schedule rejected: " ^ String.concat "; " problems))
      | Ok () ->
        (match Cs_sim.Interp.equivalent region rotated with
        | Ok () -> Ok ()
        | Error msg -> Error (violation "permute" ("rotated schedule inequivalent: " ^ msg)))
  end

let check_schedule scenario sched =
  let { Scenario.region; _ } = scenario in
  let machine = Scenario.scheduling_machine scenario in
  let ( let* ) = Result.bind in
  let* () = check_validator sched in
  let* () = check_interp region sched in
  let* () = check_bounds machine region sched in
  check_permutation scenario sched

let run ?transform scenario =
  match build scenario with
  | Error v -> Error v
  | Ok None -> Ok ()
  | Ok (Some sched) ->
    let sched = match transform with Some f -> f sched | None -> sched in
    check_schedule scenario sched
