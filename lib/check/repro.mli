(** Replayable repro files: a minimized failing scenario serialized as
    plain text, checked into [test/corpus/] once the underlying bug is
    fixed and replayed by [dune runtest] as a permanent regression.

    Format: a [cs-check-repro v1] magic line, [key value] headers
    ([machine], [scheduler], [seed], [label], optional
    [check]/[note]/[fingerprint]), then a [region] line followed by the
    region in {!Cs_ddg.Textual} format. The [fingerprint] header is the
    {!Cs_core.Scenario.canonical_hash} of the stored scenario; when
    present it is re-derived on load and a mismatch rejects the file. *)

type t = {
  scenario : Scenario.t;
  check : string option; (** the oracle check that failed when found *)
  note : string option;
}

val fingerprint : Scenario.t -> string
(** Hex {!Cs_core.Scenario.canonical_hash} of the scenario, as written
    to the [fingerprint] header. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val of_string : string -> (t, string) result
(** Also re-validates that the region fits the machine. *)

val load : string -> (t, string) result

val save : dir:string -> t -> string
(** Writes to [dir] (created if missing) under a
    [seed<N>-<label>-<check>.repro] name, suffixed if taken; returns the
    path. *)

val load_dir : string -> (string * (t, string) result) list
(** Every [*.repro] file in [dir], sorted by name; missing directories
    yield []. *)

val replay : t -> (unit, Oracle.violation) result
(** Run the stored scenario through the full oracle. A corpus repro
    whose bug is fixed replays [Ok ()]. *)
