(* Fuzz-run journal: which seed chunks have completed and which seeds
   produced violations. Workers record each finished chunk under a
   mutex; every record rewrites the whole file crash-safely (it is a
   few hundred bytes), so a SIGKILL mid-run loses at most the chunks
   still in flight. Scenarios are deterministic functions of their
   seed, so the journal never stores regions — a resumed run
   regenerates violation scenarios from their seeds. *)

type t = {
  path : string;
  seeds : int * int;
  degraded : bool;
  mutex : Mutex.t;
  mutable chunks : (int * int) list; (* completed inclusive seed ranges *)
  mutable violations : int list; (* seeds whose oracle run rejected *)
}

let version = 1

let to_json t =
  let open Cs_obs.Json in
  let lo, hi = t.seeds in
  Obj
    [ ("version", Num (float_of_int version));
      ("kind", Str "fuzz");
      ("seeds", List [ Num (float_of_int lo); Num (float_of_int hi) ]);
      ("degraded", Bool t.degraded);
      ("chunks",
       List
         (List.rev_map
            (fun (a, b) -> List [ Num (float_of_int a); Num (float_of_int b) ])
            t.chunks));
      ("violations",
       List (List.rev_map (fun s -> Num (float_of_int s)) t.violations)) ]

let write t = Cs_util.Fsio.write_atomic ~path:t.path (Cs_obs.Json.to_string (to_json t) ^ "\n")

let create ~path ?(degraded = false) ~seeds () =
  let t = { path; seeds; degraded; mutex = Mutex.create (); chunks = []; violations = [] } in
  write t;
  t

let ( let* ) = Result.bind

let int_pair = function
  | Cs_obs.Json.List [ Cs_obs.Json.Num a; Cs_obs.Json.Num b ] ->
    Ok (int_of_float a, int_of_float b)
  | _ -> Error "journal: expected [lo, hi] pair"

let load ~path =
  match Cs_util.Fsio.read_opt path with
  | None -> Error (Printf.sprintf "journal: %s does not exist" path)
  | Some content ->
    let* json =
      match Cs_obs.Json.of_string content with
      | Ok j -> Ok j
      | Error e -> Error (Printf.sprintf "journal: %s: %s" path e)
    in
    let* () =
      match Cs_obs.Json.member "version" json with
      | Some (Cs_obs.Json.Num v) when int_of_float v = version -> Ok ()
      | _ -> Error "journal: unsupported version"
    in
    let* seeds =
      match Cs_obs.Json.member "seeds" json with
      | Some p -> int_pair p
      | None -> Error "journal: missing seeds"
    in
    let degraded =
      match Cs_obs.Json.member "degraded" json with
      | Some (Cs_obs.Json.Bool b) -> b
      | _ -> false
    in
    let* chunks =
      match Cs_obs.Json.member "chunks" json with
      | Some (Cs_obs.Json.List l) ->
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* p = int_pair c in
            Ok (p :: acc))
          (Ok []) l
      | _ -> Error "journal: missing chunks"
    in
    let* violations =
      match Cs_obs.Json.member "violations" json with
      | Some (Cs_obs.Json.List l) ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Cs_obs.Json.Num s -> Ok (int_of_float s :: acc)
            | _ -> Error "journal: non-numeric violation seed")
          (Ok []) l
      | _ -> Error "journal: missing violations"
    in
    Ok { path; seeds; degraded; mutex = Mutex.create (); chunks; violations }

let resume ~path ?(degraded = false) ~seeds () =
  match load ~path with
  | Ok t when t.seeds = seeds && t.degraded = degraded -> t
  | Ok _ | Error _ ->
    (* Mismatched parameters (or a corrupt file) cannot be resumed
       meaningfully: start a fresh journal for this configuration. *)
    create ~path ~degraded ~seeds ()

let record t ~chunk ~violations =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.chunks <- chunk :: t.chunks;
      t.violations <- List.rev_append violations t.violations;
      write t)

let is_done t seed =
  List.exists (fun (lo, hi) -> lo <= seed && seed <= hi) t.chunks

let violation_seeds t = List.sort_uniq compare t.violations
