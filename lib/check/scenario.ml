type spec =
  | Baseline of Cs_sim.Pipeline.scheduler
  | Passes of Cs_core.Pass.t list

type t = {
  label : string;
  seed : int;
  machine : Cs_machine.Machine.t;
  faults : Cs_resil.Fault.plan;
  region : Cs_ddg.Region.t;
  spec : spec;
}

let machine_name m = m.Cs_machine.Machine.name

let scheduling_machine t = Cs_machine.Machine.degrade t.machine t.faults

let machine_of_name name =
  let fail () = Error (Printf.sprintf "unknown machine %S (want raw-RxC or vliw-Nc)" name) in
  match String.split_on_char '-' (String.lowercase_ascii (String.trim name)) with
  | [ "raw"; dims ] ->
    (match String.split_on_char 'x' dims with
    | [ r; c ] ->
      (match (int_of_string_opt r, int_of_string_opt c) with
      | Some rows, Some cols when rows > 0 && cols > 0 ->
        Ok (Cs_machine.Raw.create ~rows ~cols ())
      | _ -> fail ())
    | _ -> fail ())
  | [ "vliw"; nc ] when String.length nc > 1 && nc.[String.length nc - 1] = 'c' ->
    (match int_of_string_opt (String.sub nc 0 (String.length nc - 1)) with
    | Some n when n > 0 -> Ok (Cs_machine.Vliw.create ~n_clusters:n ())
    | _ -> fail ())
  | _ -> fail ()

let spec_to_string = function
  | Baseline s -> "baseline:" ^ Cs_sim.Pipeline.scheduler_name s
  | Passes l -> "passes:" ^ String.concat "," (Cs_core.Sequence.names l)

let spec_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "malformed scheduler spec %S" s)
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
    | "baseline" ->
      (match Cs_sim.Pipeline.scheduler_of_name rest with
      | Some sch -> Ok (Baseline sch)
      | None -> Error (Printf.sprintf "unknown baseline scheduler %S" rest))
    | "passes" ->
      (match Cs_core.Sequence.of_names (String.split_on_char ',' rest) with
      | Ok passes -> Ok (Passes passes)
      | Error msg -> Error msg)
    | _ -> Error (Printf.sprintf "malformed scheduler spec %S" s))

let pp fmt t =
  Format.fprintf fmt "%s (seed %d): %d instrs on %s%s via %s" t.label t.seed
    (Cs_ddg.Region.n_instrs t.region) (machine_name t.machine)
    (if t.faults = [] then ""
     else Printf.sprintf " [%s]" (Cs_resil.Fault.to_string t.faults))
    (spec_to_string t.spec)
