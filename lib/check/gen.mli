(** Unified random-input generation for the differential fuzzer.

    One seed determines one complete scenario: a machine drawn from the
    paper's configuration space (Raw meshes 1-16 tiles, clustered VLIWs
    1-8 clusters), a region drawn from every generator family in the
    repository — layered / thin / fat DDGs ({!Cs_workloads.Shapes}, with
    congruence-class and preplacement sweeps) and full CFG → trace /
    superblock / hyperblock region formation ({!Cs_cfg.Generate}) — plus
    an optional homed-live-in sweep, and a scheduler configuration:
    any baseline pipeline or the convergent scheduler under a randomized
    pass sequence drawn from {!Cs_tuner.Genome.random}.

    Every emitted case satisfies
    [Cs_machine.Machine.validate_region machine region = Ok ()]. *)

val shapes : string list
(** The region-shape families the generator draws from. *)

val case : seed:int -> Scenario.t
(** Deterministic: equal seeds yield structurally equal scenarios. *)

val case_degraded : seed:int -> Scenario.t
(** Fault-injected variant of {!case}: a sub-stream derived from the
    seed additionally damages ~3/4 of cases with a random
    {!Cs_resil.Fault} plan (dropped again if it would strand the region,
    e.g. a preplaced op on a machine with no remote memory path) and
    splices a {!Cs_core.Chaos} pass into ~1/4 of custom pass sequences.
    The underlying (machine, region, sequence) draw is bit-identical to
    the healthy case for the same seed, so degraded findings can be
    A/B'd against their healthy twin. *)
