type finding = {
  seed : int;
  label : string;
  check : string;
  detail : string;
  n_instrs : int;
  shrunk_instrs : int;
  repro_path : string option;
}

type stats = {
  cases : int;
  violations : int;
  elapsed_s : float;
  completed : bool;
}

(* Re-run the oracle and ask whether the same judge still rejects; the
   shrinker minimizes against this predicate so a reduction cannot
   "succeed" by tripping an unrelated check. *)
let still_fails ?transform check scenario =
  match Oracle.run ?transform scenario with
  | Error v -> v.Oracle.check = check
  | Ok () -> false

let to_repro scenario violation =
  {
    Repro.scenario;
    check = Some violation.Oracle.check;
    note = Some violation.Oracle.detail;
  }

(* Chunked atomic work queue over seeds, same shape as the tuner's
   parallel fitness map: workers grab index ranges and write results by
   index, so findings come out in seed order regardless of which domain
   ran what. Workers stop taking new chunks once the time budget is
   spent; chunks already claimed run to completion.

   With a [journal], every completed chunk is recorded crash-safely
   (seed range + violation seeds), and seeds the journal already covers
   are skipped — scenarios are deterministic in their seed, so recorded
   violations are regenerated rather than stored. *)
let search ?(domains = 1) ?time_budget_s ?(degraded = false) ?transform ?journal
    ~seeds:(lo, hi) () =
  let n = max 0 (hi - lo + 1) in
  let results = Array.make n None in
  let ran = Array.make n false in
  let run_one i =
    let seed = lo + i in
    let scenario = if degraded then Gen.case_degraded ~seed else Gen.case ~seed in
    ran.(i) <- true;
    match Oracle.run ?transform scenario with
    | Ok () -> ()
    | Error v -> results.(i) <- Some (scenario, v)
  in
  (* Resume: mark journaled chunks done and regenerate their recorded
     violations before the timed search starts. *)
  (match journal with
  | None -> ()
  | Some j ->
    for i = 0 to n - 1 do
      if Journal.is_done j (lo + i) then ran.(i) <- true
    done;
    List.iter
      (fun seed -> if lo <= seed && seed <= hi then run_one (seed - lo))
      (Journal.violation_seeds j));
  let t0 = Cs_obs.Clock.now () in
  let out_of_time () =
    match time_budget_s with
    | None -> false
    | Some budget -> Cs_obs.Clock.since t0 >= budget
  in
  let run_chunk start stop =
    let violations = ref [] in
    for i = start to stop do
      if not ran.(i) then begin
        run_one i;
        if results.(i) <> None then violations := (lo + i) :: !violations
      end
    done;
    match journal with
    | None -> ()
    | Some j -> Journal.record j ~chunk:(lo + start, lo + stop) ~violations:!violations
  in
  let d = max 1 (min domains (max 1 n)) in
  if n > 0 then begin
    let next = Atomic.make 0 in
    let chunk = max 1 (n / (d * 8)) in
    let worker () =
      let rec loop () =
        if not (out_of_time ()) then begin
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            run_chunk start (min n (start + chunk) - 1);
            loop ()
          end
        end
      in
      loop ()
    in
    let others = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join others
  end;
  let cases = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 ran in
  (cases, results, Cs_obs.Clock.since t0, cases = n)

let run ?domains ?time_budget_s ?corpus_dir ?(shrink = true) ?shrink_budget
    ?degraded ?transform ?on_finding ?journal ~seeds () =
  let cases, results, search_s, completed =
    search ?domains ?time_budget_s ?degraded ?transform ?journal ~seeds ()
  in
  (* Shrinking and reporting are sequential and in seed order, so a
     given seed range always yields the same findings in the same
     order, whatever [domains] was. *)
  let findings =
    Array.to_list results
    |> List.filter_map (fun r -> r)
    |> List.map (fun (scenario, v) ->
           let n_instrs = Cs_ddg.Region.n_instrs scenario.Scenario.region in
           let minimized =
             if shrink then
               (Shrink.minimize ?budget:shrink_budget
                  ~test:(still_fails ?transform v.Oracle.check)
                  scenario)
                 .Shrink.scenario
             else scenario
           in
           let shrunk_instrs = Cs_ddg.Region.n_instrs minimized.Scenario.region in
           let repro_path =
             Option.map (fun dir -> Repro.save ~dir (to_repro minimized v)) corpus_dir
           in
           let finding =
             {
               seed = scenario.Scenario.seed;
               label = scenario.Scenario.label;
               check = v.Oracle.check;
               detail = v.Oracle.detail;
               n_instrs;
               shrunk_instrs;
               repro_path;
             }
           in
           Cs_obs.Obs.instant ~cat:"fuzz"
             ~args:
               [ ("seed", Cs_obs.Obs.Int finding.seed);
                 ("check", Cs_obs.Obs.Str finding.check);
                 ("shrunk_instrs", Cs_obs.Obs.Int finding.shrunk_instrs) ]
             "finding";
           Option.iter (fun f -> f finding) on_finding;
           finding)
  in
  Cs_obs.Obs.counter ~cat:"fuzz" "fuzz:run"
    [ ("cases", float_of_int cases);
      ("violations", float_of_int (List.length findings));
      ("completed", if completed then 1.0 else 0.0) ];
  ( { cases; violations = List.length findings; elapsed_s = search_s; completed },
    findings )

let finding_to_json f =
  let open Cs_obs.Json in
  Obj
    [ ("seed", Num (float_of_int f.seed));
      ("label", Str f.label);
      ("check", Str f.check);
      ("detail", Str f.detail);
      ("n_instrs", Num (float_of_int f.n_instrs));
      ("shrunk_instrs", Num (float_of_int f.shrunk_instrs));
      ("repro",
       match f.repro_path with None -> Null | Some p -> Str p) ]

let findings_jsonl findings =
  String.concat ""
    (List.map (fun f -> Cs_obs.Json.to_string (finding_to_json f) ^ "\n") findings)
