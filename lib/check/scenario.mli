(** One differential-fuzzing test case: a scheduling region, a target
    machine, and the scheduler configuration to run on it. Scenarios are
    deterministic values — {!Gen} derives them from a seed, {!Oracle}
    judges them, {!Shrink} minimizes them, and {!Repro} serializes them
    into the regression corpus. *)

type spec =
  | Baseline of Cs_sim.Pipeline.scheduler
      (** a whole pipeline, including [Convergent] with the machine's
          Table 1 default sequence *)
  | Passes of Cs_core.Pass.t list
      (** the convergent scheduler with an explicit (possibly evolved or
          randomized) pass sequence *)

type t = {
  label : string;  (** human-readable shape/provenance tag, e.g. ["thin"] *)
  seed : int;  (** the generator seed this case was derived from *)
  machine : Cs_machine.Machine.t;  (** the healthy machine *)
  faults : Cs_resil.Fault.plan;
      (** fault plan applied before scheduling; [[]] for a healthy run *)
  region : Cs_ddg.Region.t;
  spec : spec;
}

val scheduling_machine : t -> Cs_machine.Machine.t
(** [machine] degraded by [faults] — what the scheduler actually
    targets. Identical to [machine] when the plan is empty. *)

val machine_name : Cs_machine.Machine.t -> string
(** The machine's canonical name ([raw-RxC] / [vliw-Nc]); inverse of
    {!machine_of_name}. *)

val machine_of_name : string -> (Cs_machine.Machine.t, string) result

val spec_to_string : spec -> string
(** [baseline:<name>] or [passes:<SPEC,...>] — round-trips through
    {!spec_of_string}, parameters included. *)

val spec_of_string : string -> (spec, string) result

val pp : Format.formatter -> t -> unit
