(** Delta-debugging minimization of failing scenarios.

    The reducer is semantics-preserving at the representation level:
    dropping instructions keeps a well-formed SSA region (registers
    whose definitions are removed become live-ins; ordering edges
    between surviving instructions are preserved), so the predicate is
    always evaluated on valid inputs. Reductions applied, in order:

    - ddmin over the instruction set (chunk and complement deletion),
    - a one-instruction-at-a-time elimination sweep to a fixpoint,
    - clearing preplacements, clearing live-in homes,
    - dropping passes from an explicit pass sequence one at a time.

    Deterministic: same scenario and predicate, same result. *)

type outcome = {
  scenario : Scenario.t; (** the smallest failing scenario found *)
  tests : int; (** predicate evaluations spent *)
}

val minimize : ?budget:int -> test:(Scenario.t -> bool) -> Scenario.t -> outcome
(** [minimize ~test scenario] assumes [test scenario = true] ("still
    fails") and greedily reduces while the predicate holds, evaluating
    it at most [budget] (default 500) times. *)
