(* Durable exactly-once job journal on top of Cs_util.Wal.

   Two record kinds, one JSON object per WAL record:

     {"t":"admit","k":<journal key>,"req":<Proto request>}
     {"t":"done","k":<journal key>,"rep":<Proto reply>}

   The in-memory view is a key -> Pending request | Done reply table.
   Recovery folds the records in order; admits without a done are the
   replay set, dones feed the dedup map. *)

module Proto = Cs_svc.Proto
module Json = Cs_obs.Json
module Wal = Cs_util.Wal

type entry = Pending of Proto.request | Done of Proto.reply

type t = {
  wal : Wal.t;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  pending_order : string Queue.t;  (* admit order; lazily filtered *)
  dones_order : string Queue.t;  (* completion order, dedup horizon *)
  mutable pending_n : int;
  mutable dones_n : int;
  max_done : int;
  compact_bytes : int;
  truncated : int;
}

let encode_admit ~key req =
  Json.to_string
    (Json.Obj
       [ ("t", Json.Str "admit"); ("k", Json.Str key);
         ("req", Proto.request_to_json req) ])

let encode_done ~key reply =
  Json.to_string
    (Json.Obj
       [ ("t", Json.Str "done"); ("k", Json.Str key);
         ("rep", Proto.reply_to_json reply) ])

(* Apply one journal record to the table. Unparseable records are
   skipped: the CRC layer already guarantees they are not torn writes,
   so the only way to see one is a version skew — and dropping an
   unknown record degrades to a replay, which is safe. *)
let load_record t payload =
  match Json.of_string payload with
  | Error _ -> ()
  | Ok json ->
    let str k =
      match Json.member k json with Some (Json.Str s) -> Some s | _ -> None
    in
    (match (str "t", str "k") with
    | Some "admit", Some key ->
      (match Json.member "req" json with
      | Some req_json ->
        (match Proto.request_of_json req_json with
        | Ok req ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.replace t.table key (Pending req);
            Queue.push key t.pending_order;
            t.pending_n <- t.pending_n + 1
          end
        | Error _ -> ())
      | None -> ())
    | Some "done", Some key ->
      (match Json.member "rep" json with
      | Some rep_json ->
        (match Proto.reply_of_json rep_json with
        | Ok reply ->
          (match Hashtbl.find_opt t.table key with
          | Some (Pending _) -> t.pending_n <- t.pending_n - 1
          | Some (Done _) | None -> ());
          Hashtbl.replace t.table key (Done reply);
          Queue.push key t.dones_order;
          t.dones_n <- t.dones_n + 1
        | Error _ -> ())
      | None -> ())
    | _ -> ())

(* Bound the dedup map: forget the oldest completed keys. Their WAL
   records stay until the next compaction; reloading them just
   re-populates and re-evicts in the same order. *)
let evict_dones_locked t =
  while t.dones_n > t.max_done do
    match Queue.pop t.dones_order with
    | key ->
      t.dones_n <- t.dones_n - 1;
      (match Hashtbl.find_opt t.table key with
      | Some (Done _) -> Hashtbl.remove t.table key
      | Some (Pending _) | None -> ())
    | exception Queue.Empty -> t.dones_n <- 0
  done

let open_dir ?(segment_bytes = 1 lsl 20) ?(max_done = 4096)
    ?(compact_bytes = 4 lsl 20) ~dir ~recover () =
  let wal, recovery = Wal.open_dir ~segment_bytes ~dir () in
  let t =
    { wal; mutex = Mutex.create (); table = Hashtbl.create 64;
      pending_order = Queue.create (); dones_order = Queue.create ();
      pending_n = 0; dones_n = 0; max_done; compact_bytes;
      truncated = recovery.Wal.truncated_bytes }
  in
  if recover then begin
    List.iter (load_record t) recovery.Wal.records;
    evict_dones_locked t;
    if t.pending_n > 0 || recovery.Wal.truncated_bytes > 0 then
      Cs_obs.Obs.instant ~cat:"gateway"
        ~args:
          [ ("pending", Cs_obs.Obs.Int t.pending_n);
            ("truncated_bytes", Cs_obs.Obs.Int recovery.Wal.truncated_bytes) ]
        "journal:recovered"
  end
  else if recovery.Wal.records <> [] then
    (* no --recover: the operator asked for a fresh start *)
    Wal.reset wal;
  t

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let pending t =
  locked t (fun () ->
      Queue.fold
        (fun acc key ->
          match Hashtbl.find_opt t.table key with
          | Some (Pending req) -> (key, req) :: acc
          | _ -> acc)
        [] t.pending_order
      |> List.rev)

let lag t = locked t (fun () -> t.pending_n)
let truncated_bytes t = t.truncated

let completed t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some (Done reply) -> Some reply
      | _ -> None)

let admit t ~key req =
  let fresh =
    locked t (fun () ->
        if Hashtbl.mem t.table key then false
        else begin
          Hashtbl.replace t.table key (Pending req);
          Queue.push key t.pending_order;
          t.pending_n <- t.pending_n + 1;
          Wal.append t.wal (encode_admit ~key req);
          true
        end)
  in
  (* group commit outside the table lock: concurrent admits share one
     fsync *)
  if fresh then Wal.sync t.wal

(* Compaction: only when nothing is in flight, so the rewritten log
   needs no admit records at all — just the dedup horizon. *)
let maybe_compact_locked t =
  if t.pending_n = 0 && Wal.size_bytes t.wal > t.compact_bytes then begin
    Wal.reset t.wal;
    Queue.clear t.pending_order;
    Queue.iter
      (fun key ->
        match Hashtbl.find_opt t.table key with
        | Some (Done reply) -> Wal.append t.wal (encode_done ~key reply)
        | _ -> ())
      t.dones_order;
    Wal.sync t.wal;
    Cs_obs.Obs.instant ~cat:"gateway"
      ~args:[ ("kept_dones", Cs_obs.Obs.Int t.dones_n) ]
      "journal:compacted"
  end

let mark_done t ~key reply =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some (Pending _) -> t.pending_n <- t.pending_n - 1
      | Some (Done _) | None -> ());
      Hashtbl.replace t.table key (Done reply);
      Queue.push key t.dones_order;
      t.dones_n <- t.dones_n + 1;
      evict_dones_locked t;
      Wal.append t.wal (encode_done ~key reply);
      maybe_compact_locked t);
  Wal.sync t.wal

let close t = locked t (fun () -> Wal.close t.wal)
