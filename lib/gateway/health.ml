type state =
  | Healthy
  | Suspect of int
  | Dead of { down_at : float; retry_at : float; attempt : int }

type entry = {
  mutable st : state;
  mutable probing : bool;  (* a probation probe is outstanding *)
}

type t = {
  fail_threshold : int;
  delays : float array;  (* backoff schedule, clamped at the last step *)
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  on_transition : shard:string -> to_:string -> unit;
}

let default_backoff =
  { Cs_svc.Retry.default with
    base_delay_s = 0.5; multiplier = 2.0; jitter = 0.25; max_attempts = 8 }

(* Without a cap the doubling schedule parks a long-dead shard behind
   a probe interval of a minute or more, so a shard that comes back is
   invisible for that long. The cap bounds the re-detection window:
   however deep the burial, a probe fires within [max_delay_s]. *)
let default_max_delay_s = 10.0

let create ?(fail_threshold = 3) ?(backoff = default_backoff)
    ?(max_delay_s = default_max_delay_s)
    ?(on_transition = fun ~shard:_ ~to_:_ -> ()) names =
  if fail_threshold <= 0 then
    invalid_arg "Health.create: fail_threshold must be positive";
  if max_delay_s <= 0.0 then
    invalid_arg "Health.create: max_delay_s must be positive";
  let table = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if not (Hashtbl.mem table n) then
        Hashtbl.replace table n { st = Healthy; probing = false })
    names;
  { fail_threshold;
    delays =
      Array.of_list
        (List.map (Float.min max_delay_s) (Cs_svc.Retry.delays backoff));
    table; mutex = Mutex.create (); on_transition }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e
  | None ->
    let e = { st = Healthy; probing = false } in
    Hashtbl.replace t.table name e;
    e

let state t name = locked t (fun () -> (entry t name).st)

let backoff_delay t attempt =
  (* attempt 1 = first burial *)
  let n = Array.length t.delays in
  if n = 0 then 0.5 else t.delays.(min (attempt - 1) (n - 1))

let bury t e ~down_at ~attempt =
  let now = Cs_obs.Clock.now () in
  e.st <- Dead { down_at; retry_at = now +. backoff_delay t attempt; attempt }

let note_ok t name =
  locked t (fun () ->
      let e = entry t name in
      e.probing <- false;
      (match e.st with
      | Dead _ ->
        Cs_obs.Obs.instant ~cat:"gateway"
          ~args:[ ("shard", Cs_obs.Obs.Str name) ]
          "health:readmit";
        t.on_transition ~shard:name ~to_:"healthy"
      | _ -> ());
      e.st <- Healthy)

let note_failure t name =
  locked t (fun () ->
      let e = entry t name in
      e.probing <- false;
      match e.st with
      | Healthy | Suspect _ ->
        let failures =
          (match e.st with Suspect n -> n | _ -> 0) + 1
        in
        if failures >= t.fail_threshold then begin
          Cs_obs.Obs.instant ~cat:"gateway"
            ~args:[ ("shard", Cs_obs.Obs.Str name) ]
            "health:evict";
          t.on_transition ~shard:name ~to_:"dead";
          bury t e ~down_at:(Cs_obs.Clock.now ()) ~attempt:1
        end
        else e.st <- Suspect failures
      | Dead { down_at; attempt; _ } ->
        (* failed probation probe: next backoff step *)
        bury t e ~down_at ~attempt:(attempt + 1))

let usable t name =
  locked t (fun () ->
      match (entry t name).st with Healthy | Suspect _ -> true | Dead _ -> false)

let probe_due t name =
  locked t (fun () ->
      let e = entry t name in
      match e.st with
      | Dead { retry_at; _ }
        when (not e.probing) && Cs_obs.Clock.now () >= retry_at ->
        e.probing <- true;
        true
      | _ -> false)

let alive t names = List.filter (usable t) names
