(** Pluggable dispatch policy: given the live shards and their gossiped
    load, produce the failover-ordered candidate list for one job.

    - [Hash] — pure consistent-hash affinity: the ring owner first, then
      the clockwise successors. Maximizes shard-local warmth (a shard
      keeps seeing the same scenarios) and is the only policy whose
      assignment is stable across gateways.
    - [Least_loaded] — shards ordered by gossiped admission-queue depth
      (ties broken by ring order, so equal-load dispatch degenerates to
      hash affinity rather than herding onto one shard).
    - [Weighted_completion_time] — Smith's-rule flavour: order by
      predicted completion time [(depth + 1) * ewma_ms]; when the job
      carries a deadline, shards predicted to meet it sort before shards
      predicted to miss it. A tight-deadline job therefore prefers a
      fast shard with a short queue even when a slower shard hashes
      first.

    All policies only ever return usable shards, in an order the
    forwarder walks for exactly-once failover. *)

type t = Hash | Least_loaded | Weighted_completion_time

val to_string : t -> string
val of_string : string -> (t, string) result
(** ["hash" | "least-loaded" | "wct"] (also accepts
    ["weighted-completion-time"]). *)

type shard_view = {
  name : string;
  queue_depth : int;  (** last gossiped admission-queue depth *)
  ewma_ms : float;  (** smoothed per-job service time on that shard *)
}

val order :
  t ->
  ring:Ring.t ->
  key:int64 ->
  deadline_ms:float option ->
  shard_view list ->
  string list
(** [shard_view list] must already be filtered to usable shards; the
    result is a permutation of their names. *)
