(** Bounded LRU result cache, keyed by canonical scenario hash.

    Scheduling is a pure function of the canonical scenario
    ({!Cs_core.Scenario.canonical_hash} covers machine, faults, pass
    spec, seed and region), so a cached schedule is exactly as good as a
    recomputed one — the gateway answers repeat traffic without burning
    a shard worker. Thread-safe; all operations are O(1). *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val find : 'a t -> string -> 'a option
(** Counts a hit (and promotes the entry to most-recently-used) or a
    miss. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry when over
    capacity. *)

val stats : 'a t -> stats

val export : 'a t -> n:int -> (string * 'a) list
(** The [n] most-recently-used entries, hottest first — the working
    set worth replaying to a re-admitted shard (warm-up) or shipping
    to a peer gateway. Does not perturb recency or hit counters. *)

val import : 'a t -> (string * 'a) list -> unit
(** Install an {!export}ed slice, preserving its recency order (the
    list's head ends most-recently-used). Existing keys are
    refreshed; normal eviction applies. *)
