type t = Hash | Least_loaded | Weighted_completion_time

let to_string = function
  | Hash -> "hash"
  | Least_loaded -> "least-loaded"
  | Weighted_completion_time -> "wct"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "hash" -> Ok Hash
  | "least-loaded" | "least_loaded" -> Ok Least_loaded
  | "wct" | "weighted-completion-time" | "weighted_completion_time" ->
    Ok Weighted_completion_time
  | other ->
    Error
      (Printf.sprintf "unknown policy %S (expected hash | least-loaded | wct)" other)

type shard_view = { name : string; queue_depth : int; ewma_ms : float }

(* Ring order starting at the key's owner, restricted to the given
   shards — both the Hash policy itself and every tie-break, so dispatch
   is deterministic given (ring, key, views). *)
let ring_order ~ring ~key views =
  let present = List.map (fun v -> v.name) views in
  let in_ring =
    List.filter (fun s -> List.mem s present) (Ring.candidates ring key)
  in
  (* shards absent from the ring (never the case in practice) go last *)
  in_ring @ List.filter (fun s -> not (List.mem s in_ring)) present

(* Stable sort of ring-ordered names by a score; stability makes ring
   position the tie-break. *)
let by_score ~ring ~key views score =
  let scores = List.map (fun v -> (v.name, score v)) views in
  ring_order ~ring ~key views
  |> List.map (fun name -> (name, List.assoc name scores))
  |> List.stable_sort (fun (_, a) (_, b) -> compare (a : float) b)
  |> List.map fst

let order policy ~ring ~key ~deadline_ms views =
  match policy with
  | Hash -> ring_order ~ring ~key views
  | Least_loaded -> by_score ~ring ~key views (fun v -> float_of_int v.queue_depth)
  | Weighted_completion_time ->
    let completion v =
      float_of_int (v.queue_depth + 1) *. Float.max 1.0 v.ewma_ms
    in
    let misses_deadline v =
      match deadline_ms with Some d -> completion v > d | None -> false
    in
    by_score ~ring ~key views (fun v ->
        (* predicted-to-miss shards sort after every predicted-to-make
           shard, each group by predicted completion *)
        (if misses_deadline v then 1.0e12 else 0.0) +. completion v)
