(** Consistent-hash ring over shard names.

    Each shard owns [vnodes] points on a 64-bit ring (FNV-1a of
    ["name/i"]); a key is routed to the first point clockwise from the
    key's hash. With [V] virtual nodes per shard the load split is even
    to within a few percent, and removing one of [N] shards moves only
    the keys that shard owned — about [K/N] of [K] keys — while every
    other key keeps its shard. That bound is what makes failover cheap:
    a shard death does not reshuffle the fleet's cache affinity.

    The ring is immutable; [remove] returns a new ring, so concurrent
    routers can keep reading an old snapshot. *)

type t

val make : ?vnodes:int -> string list -> t
(** [vnodes] defaults to 64. Duplicate shard names are ignored. *)

val shards : t -> string list
(** Distinct shard names, in insertion order. *)

val remove : t -> string -> t

val route : t -> int64 -> string option
(** Owner of a key: first ring point clockwise (unsigned order) from the
    key. [None] on an empty ring. *)

val candidates : t -> int64 -> string list
(** Every distinct shard in clockwise ring order starting at the key's
    owner — the failover order: if the owner is down, the next candidate
    inherits exactly this key range. *)
