(** Per-shard health tracking: consecutive-failure eviction with
    deterministic-backoff re-admission.

    A shard starts [Healthy]; each transport failure moves it through
    [Suspect] and, after [fail_threshold] consecutive failures, to
    [Dead]. A dead shard is skipped by dispatch until its backoff
    expires, at which point exactly one probe is let through
    ({!probe_due} hands out the probation slot once per backoff window):
    success re-admits the shard as [Healthy], failure re-buries it with
    the next backoff from the {!Cs_svc.Retry.delays} schedule — so two
    gateways configured identically back off identically.

    Thread-safe: forwarders and the prober share one table. *)

type state =
  | Healthy
  | Suspect of int  (** consecutive failures so far, < threshold *)
  | Dead of { down_at : float; retry_at : float; attempt : int }

type t

val create :
  ?fail_threshold:int -> ?backoff:Cs_svc.Retry.policy -> ?max_delay_s:float ->
  ?on_transition:(shard:string -> to_:string -> unit) -> string list -> t
(** [fail_threshold] defaults to 3 consecutive failures; [backoff]
    defaults to 500 ms base, doubling, ±25% deterministic jitter.
    [max_delay_s] (default 10 s) caps every step of the schedule, so no
    matter how long a shard has been dead, a returning shard is
    re-probed — and hence re-detected — within that bound.
    [on_transition] fires on eviction ([to_ = "dead"]) and
    re-admission ([to_ = "healthy"]) — the gateway counts these on its
    metrics registry. Called with the health lock held: the callback
    must not call back into this module. *)

val state : t -> string -> state
(** Unknown shards read as [Healthy]. *)

val note_ok : t -> string -> unit
val note_failure : t -> string -> unit

val usable : t -> string -> bool
(** Dispatchable right now: [Healthy] or [Suspect]. Dead shards are
    never dispatched to directly — they re-enter via {!probe_due}. *)

val probe_due : t -> string -> bool
(** True at most once per backoff window, for a [Dead] shard whose
    [retry_at] has passed: the caller owns the probation probe and must
    follow up with {!note_ok} or {!note_failure}. *)

val alive : t -> string list -> string list
(** The {!usable} subset of the given names, in the given order. *)
