(** The gateway's durable job journal: exactly-once across gateway
    restarts, built on {!Cs_util.Wal}.

    Every job is journaled ([admit] record: journal key + full request)
    before it is dispatched to a shard, and journaled again ([done]
    record: journal key + reply) when it is answered. The journal key
    is the canonical scenario hash joined with the client's idempotency
    key (or the request id when no idempotency key was supplied).

    After a crash, {!open_dir} with [recover:true] replays the log:
    [admit] records without a matching [done] are the jobs the dead
    gateway accepted but never answered — the caller re-dispatches
    them ({!pending}); completed keys keep their replies in the dedup
    map ({!completed}), so a client retrying with the same idempotency
    key gets the journaled verdict instead of a re-execution.
    Dispatch itself stays at-least-once (a shard may have executed a
    job whose [done] record never hit the disk), which is safe because
    scheduling is a pure, deterministic computation — the replayed
    execution produces the identical verdict.

    The log self-compacts: whenever nothing is in flight and the log
    has grown past a threshold, segments are reset and only the most
    recent [max_done] completed records are rewritten, bounding both
    disk use and the dedup horizon.

    Thread-safe; forwarder domains share one journal. *)

type t

val open_dir :
  ?segment_bytes:int -> ?max_done:int -> ?compact_bytes:int ->
  dir:string -> recover:bool -> unit -> t
(** Open (creating [dir] if needed). With [recover:false] any existing
    journal is discarded — a fresh start; with [recover:true] the log
    is scanned (torn tails truncated by the WAL layer) and its state
    loaded. [max_done] (default 4096) bounds the dedup map;
    [compact_bytes] (default 4 MiB) triggers compaction. *)

val pending : t -> (string * Cs_svc.Proto.request) list
(** Jobs admitted but not answered, oldest first — after a recovering
    open, the replay set. *)

val lag : t -> int
(** In-flight journaled jobs ([admit] without [done]) — the admission
    watermark input. *)

val completed : t -> string -> Cs_svc.Proto.reply option
(** Dedup lookup: the journaled reply for a finished key, within the
    dedup horizon. *)

val truncated_bytes : t -> int
(** Bytes the recovery scan cut off a torn tail (0 on a clean open). *)

val admit : t -> key:string -> Cs_svc.Proto.request -> unit
(** Durably record the job before dispatch (append + group-commit
    fsync). Idempotent per key: re-admitting an in-flight or finished
    key is a no-op. *)

val mark_done : t -> key:string -> Cs_svc.Proto.reply -> unit
(** Durably record the answer; moves the key into the dedup map and
    may trigger compaction. *)

val close : t -> unit
