(** The scheduling-fleet gateway: one front door over N [csched serve]
    shards.

    Speaks the same JSON-lines protocol as a single server, so existing
    clients ([csched submit], {!Cs_svc.Client}) point at the gateway
    unchanged. For every job request the gateway

    + computes the job's canonical scenario hash
      ({!Cs_core.Scenario.canonical_hash} over the resolved machine,
      region, scheduler/pass spec and seed),
    + answers from a bounded LRU {!Cache} when the same scenario was
      already scheduled ([cached = true] on the reply, no shard hop),
    + otherwise walks the {!Policy}-ordered candidate shards and
      forwards over a one-shot connection; transport failure (connect
      refused, or the shard died before replying) buries progress on
      that shard in {!Health} and replays the job on the next candidate
      — each client request is answered exactly once, and replay is safe
      because scheduling is a pure, deterministic computation;
    + feeds the load-aware policies from queue-depth gossip piggybacked
      on every shard reply, refreshed between jobs by a background
      prober that pings every shard each [probe_period_s] (the same
      probe re-admits dead shards after their {!Health} backoff);
    + warms re-admitted shards instead of dropping them straight into
      full traffic: the hottest [warm_entries] cached scenarios are
      replayed to the shard as batch-class jobs, and for [warmup_s]
      seconds the shard serves only a linearly growing slice of the
      keyspace (it remains the fallback of last resort throughout).

    Control verbs ([ping] / [stats]) are answered inline by the gateway
    itself; the stats pong carries fleet-level counters (cache hits,
    replays, live shard count) in [extra]. *)

type config = {
  listen_addr : Cs_svc.Transport.addr;
  shards : Cs_svc.Transport.addr list;
  policy : Policy.t;
  cache_capacity : int;
  vnodes : int;
  forwarders : int;  (** concurrent forwarding workers *)
  queue_capacity : int;  (** gateway admission queue bound *)
  probe_period_s : float;
  fail_threshold : int;  (** consecutive failures before eviction *)
  shard_timeout_s : float;  (** per-read timeout on shard connections *)
  journal_dir : string option;
      (** durable job journal directory; [None] = no journaling *)
  recover : bool;
      (** load an existing journal at startup: replay unacked jobs and
          restore the dedup map. Without it an existing journal is
          discarded. *)
  shed_watermark : float;
      (** adaptive admission: shed when the queue depth exceeds
          [shed_watermark * queue_capacity * alive/total] *)
  journal_lag_limit : int;
      (** shed when this many journaled jobs are in flight *)
  breaker : Breaker.settings;  (** per-shard circuit breakers *)
  warmup_s : float;
      (** admission-ramp length for a re-admitted shard: it serves a
          linearly growing slice of the keyspace over this many seconds
          instead of full traffic on a cold cache *)
  warm_entries : int;
      (** hottest cache entries replayed (as batch-class jobs) to a
          re-admitted shard before the ramp fills *)
}

val config :
  ?policy:Policy.t ->
  ?cache_capacity:int ->
  ?vnodes:int ->
  ?forwarders:int ->
  ?queue_capacity:int ->
  ?probe_period_s:float ->
  ?fail_threshold:int ->
  ?shard_timeout_s:float ->
  ?journal_dir:string ->
  ?recover:bool ->
  ?shed_watermark:float ->
  ?journal_lag_limit:int ->
  ?breaker:Breaker.settings ->
  ?warmup_s:float ->
  ?warm_entries:int ->
  shards:string list ->
  string ->
  config
(** [config ~shards listen]: addresses in {!Cs_svc.Transport.parse}
    grammar. Defaults: hash policy, 256-entry cache, 64 vnodes,
    4 forwarders, queue 64, 1 s probe period, threshold 3, 30 s shard
    timeout, no journal, watermark 0.85, lag limit 512, default
    breaker settings, 5 s warm-up ramp replaying 16 cache entries.
    Raises [Invalid_argument] on a bad address or an empty shard
    list. *)

type t

val create : config -> t
(** Binds the listen address (raises [Unix.Unix_error] if unusable). *)

val address : t -> Cs_svc.Transport.addr
(** Concrete bound address (resolves TCP port 0). *)

val run : t -> unit
(** Accept loop; returns after {!stop} once in-flight jobs are
    answered. *)

val stop : t -> unit
(** Graceful drain; idempotent, callable from any domain or signal
    handler. *)

type stats = {
  admitted : int;
  completed : int;  (** answered with a schedule (cache hits included) *)
  refused : int;  (** answered with a typed refusal *)
  shed : int;  (** shed by the gateway's own admission queue *)
  forwarded : int;  (** jobs answered by a shard *)
  replayed : int;  (** re-sends after a shard died with the job in flight *)
  rerouted : int;  (** re-sends after a shard shed the job (overloaded) *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  journal_hits : int;  (** retries answered from the durable journal *)
  journal_replays : int;  (** unacked jobs re-dispatched after recovery *)
  journal_pending : int;  (** journaled jobs currently in flight *)
  admission_shed : int;  (** sheds by the adaptive admission watermark *)
  heartbeats : int;  (** push heartbeats received from shards *)
  breaker_open : int;  (** shards with a tripped circuit breaker *)
  warm_replays : int;
      (** cache entries replayed to re-admitted shards for warm-up *)
}

val stats : t -> stats

val shard_states : t -> (string * Health.state) list
(** Health snapshot, in configuration order. *)

val server_stats : t -> Cs_svc.Proto.server_stats
(** The stats pong the gateway answers on the wire; fleet counters ride
    in [extra]. *)

val meters : t -> Cs_svc.Meters.t
(** The gateway's metrics registry (served by the [metrics] control
    verb): the shared job/latency families plus gateway-specific ones —
    per-shard [csched_gateway_forwarded_total] /
    [csched_gateway_shard_failures_total], replay/reroute counters,
    cache hit/miss/eviction counters, per-shard depth and EWMA gauges,
    and [csched_health_transitions_total{shard,to}]. *)
