type t = {
  points : (int64 * string) array;  (* sorted by unsigned point hash *)
  names : string list;  (* distinct, insertion order *)
  vnodes : int;
}

let point_hash shard i = Cs_core.Scenario.fnv1a (Printf.sprintf "%s/%d" shard i)

let dedup names =
  List.rev
    (List.fold_left
       (fun acc n -> if List.mem n acc then acc else n :: acc)
       [] names)

let compare_points (h1, n1) (h2, n2) =
  match Int64.unsigned_compare h1 h2 with
  | 0 -> String.compare n1 n2  (* total order even on hash collision *)
  | c -> c

let make ?(vnodes = 64) names =
  if vnodes <= 0 then invalid_arg "Ring.make: vnodes must be positive";
  let names = dedup names in
  let points =
    List.concat_map
      (fun shard -> List.init vnodes (fun i -> (point_hash shard i, shard)))
      names
    |> Array.of_list
  in
  Array.sort compare_points points;
  { points; names; vnodes }

let shards t = t.names
let remove t name = make ~vnodes:t.vnodes (List.filter (( <> ) name) t.names)

(* Index of the first point with hash >= key (unsigned), wrapping to 0
   past the last point. *)
let successor_index t key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref n in
    (* invariant: points.(i) < key for i < lo; points.(i) >= key for i >= hi *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) key < 0 then lo := mid + 1
      else hi := mid
    done;
    Some (if !lo = n then 0 else !lo)
  end

let route t key =
  Option.map (fun i -> snd t.points.(i)) (successor_index t key)

let candidates t key =
  match successor_index t key with
  | None -> []
  | Some start ->
    let n = Array.length t.points in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    for off = 0 to n - 1 do
      let shard = snd t.points.((start + off) mod n) in
      if not (Hashtbl.mem seen shard) then begin
        Hashtbl.replace seen shard ();
        out := shard :: !out
      end
    done;
    List.rev !out
