(* Hash table over an intrusive doubly-linked recency list; [lru] is the
   eviction end, [mru] the promotion end. *)
type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards mru *)
  mutable next : 'a node option;  (* towards lru *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); mru = None; lru = None;
    hits = 0; misses = 0; evictions = 0; mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_mru t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_mru t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let put t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some node ->
        node.value <- value;
        unlink t node;
        push_mru t node
      | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_mru t node);
      if Hashtbl.length t.table > t.capacity then
        match t.lru with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key;
          t.evictions <- t.evictions + 1
        | None -> ())

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        size = Hashtbl.length t.table; capacity = t.capacity })

(* Walk from the MRU end so the hottest entries come first — the
   slice worth replaying to a cold shard or shipping to a peer
   gateway. *)
let export t ~n =
  locked t (fun () ->
      let rec go acc k node =
        if k = 0 then acc
        else
          match node with
          | None -> acc
          | Some nd -> go ((nd.key, nd.value) :: acc) (k - 1) nd.next
      in
      List.rev (go [] (max 0 n) t.mru))

(* Insert coldest-first so the list's head ends up most-recently-used,
   preserving the exporter's recency order. *)
let import t entries =
  List.iter (fun (key, value) -> put t key value) (List.rev entries)
