(** Per-shard circuit breakers: Closed / Open / Half-open, driven by
    the failure rate over a sliding outcome window plus a slow-call
    (timeout) criterion.

    {!Health} evicts a shard after {e consecutive} transport failures;
    the breaker catches the complementary failure mode — a shard that
    keeps answering often enough to reset the consecutive-failure
    counter but is failing or timing out a large {e fraction} of its
    calls. Every dispatch outcome lands in a per-shard sliding window;
    once the window holds at least [min_calls] outcomes and the
    failure fraction (transport failures plus calls slower than
    [slow_ms]) reaches [failure_rate], the breaker opens and the shard
    is skipped by dispatch. After [cooldown_s] it half-opens:
    [half_open_probes] trial calls are let through, and the breaker
    closes again only when all of them succeed — one failure re-opens
    it for another cooldown.

    Thread-safe; forwarder domains share one table. *)

type settings = {
  window : int;  (** sliding window size, in outcomes *)
  min_calls : int;  (** minimum outcomes before the rate is judged *)
  failure_rate : float;  (** trip threshold in [0..1] *)
  slow_ms : float;  (** calls slower than this count as failures *)
  cooldown_s : float;  (** open duration before half-open *)
  half_open_probes : int;  (** trial calls allowed while half-open *)
}

val default_settings : settings
(** window 32, min_calls 8, failure_rate 0.5, slow_ms 30 000,
    cooldown 5 s, 1 half-open probe. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed" | "open" | "half-open"] — label values for metrics. *)

type t

val create :
  ?settings:settings ->
  ?on_transition:(shard:string -> to_:string -> unit) ->
  string list -> t
(** [on_transition] fires on every state change with the
    {!state_name} of the new state; called outside the internal lock's
    critical path requirements — it must not call back into this
    module. Raises [Invalid_argument] on nonsensical settings. *)

val allow : t -> string -> bool
(** May this shard receive a call right now? [Closed] and unknown
    shards: yes. [Open]: no, until the cooldown expires — at which
    point the breaker half-opens and this call takes a probe slot.
    [Half_open]: yes while probe slots remain. A granted probe {e must}
    be followed by {!record}. *)

val record : t -> string -> ok:bool -> elapsed_ms:float -> unit
(** One dispatch outcome. [ok = false], or [ok = true] with
    [elapsed_ms > slow_ms], counts toward the failure rate. *)

val state : t -> string -> state

val open_count : t -> int
(** Shards currently [Open] or [Half_open] — the "tripped" gauge. *)
