(* Sliding-window circuit breaker. Health handles consecutive
   transport failures; this module trips on the failure *rate* —
   including slow calls — so a shard that answers just often enough to
   dodge eviction still gets benched, cools down, and must pass its
   half-open probes before taking full traffic again. *)

type settings = {
  window : int;
  min_calls : int;
  failure_rate : float;
  slow_ms : float;
  cooldown_s : float;
  half_open_probes : int;
}

let default_settings =
  { window = 32; min_calls = 8; failure_rate = 0.5; slow_ms = 30_000.0;
    cooldown_s = 5.0; half_open_probes = 1 }

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type phase =
  | P_closed
  | P_open of { until : float }
  | P_half of { granted : int; successes : int }

type entry = {
  outcomes : bool array;  (* ring buffer: true = failure *)
  mutable widx : int;
  mutable count : int;  (* outcomes recorded, saturates at window *)
  mutable phase : phase;
}

type t = {
  s : settings;
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  on_transition : shard:string -> to_:string -> unit;
}

let create ?(settings = default_settings)
    ?(on_transition = fun ~shard:_ ~to_:_ -> ()) names =
  if settings.window <= 0 then invalid_arg "Breaker.create: window must be positive";
  if settings.min_calls <= 0 || settings.min_calls > settings.window then
    invalid_arg "Breaker.create: min_calls must be in 1..window";
  if not (settings.failure_rate > 0.0 && settings.failure_rate <= 1.0) then
    invalid_arg "Breaker.create: failure_rate must be in (0..1]";
  if settings.half_open_probes <= 0 then
    invalid_arg "Breaker.create: half_open_probes must be positive";
  let table = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if not (Hashtbl.mem table n) then
        Hashtbl.replace table n
          { outcomes = Array.make settings.window false; widx = 0; count = 0;
            phase = P_closed })
    names;
  { s = settings; table; mutex = Mutex.create (); on_transition }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e
  | None ->
    let e =
      { outcomes = Array.make t.s.window false; widx = 0; count = 0;
        phase = P_closed }
    in
    Hashtbl.replace t.table name e;
    e

let reset_window e =
  Array.fill e.outcomes 0 (Array.length e.outcomes) false;
  e.widx <- 0;
  e.count <- 0

let transition t name e phase =
  e.phase <- phase;
  let to_ =
    state_name
      (match phase with P_closed -> Closed | P_open _ -> Open | P_half _ -> Half_open)
  in
  Cs_obs.Obs.instant ~cat:"gateway"
    ~args:[ ("shard", Cs_obs.Obs.Str name); ("to", Cs_obs.Obs.Str to_) ]
    "breaker:transition";
  t.on_transition ~shard:name ~to_

let failure_fraction e =
  let fails = ref 0 in
  for i = 0 to e.count - 1 do
    if e.outcomes.(i) then incr fails
  done;
  float_of_int !fails /. float_of_int (max 1 e.count)

let allow t name =
  locked t (fun () ->
      let e = entry t name in
      match e.phase with
      | P_closed -> true
      | P_open { until } ->
        if Cs_obs.Clock.now () >= until then begin
          (* cooldown over: half-open, and this caller takes probe #1 *)
          transition t name e (P_half { granted = 1; successes = 0 });
          true
        end
        else false
      | P_half { granted; successes } ->
        if granted < t.s.half_open_probes then begin
          e.phase <- P_half { granted = granted + 1; successes };
          true
        end
        else false)

let record t name ~ok ~elapsed_ms =
  locked t (fun () ->
      let e = entry t name in
      let failed = (not ok) || elapsed_ms > t.s.slow_ms in
      match e.phase with
      | P_half { granted; successes } ->
        if failed then begin
          (* one bad probe re-opens for a full cooldown *)
          reset_window e;
          transition t name e
            (P_open { until = Cs_obs.Clock.now () +. t.s.cooldown_s })
        end
        else begin
          let successes = successes + 1 in
          if successes >= t.s.half_open_probes then begin
            reset_window e;
            transition t name e P_closed
          end
          else e.phase <- P_half { granted; successes }
        end
      | P_open _ ->
        (* a straggler from before the trip; the window restarts when
           the breaker closes, so discard it *)
        ()
      | P_closed ->
        e.outcomes.(e.widx) <- failed;
        e.widx <- (e.widx + 1) mod t.s.window;
        e.count <- min t.s.window (e.count + 1);
        if e.count >= t.s.min_calls && failure_fraction e >= t.s.failure_rate
        then begin
          reset_window e;
          transition t name e
            (P_open { until = Cs_obs.Clock.now () +. t.s.cooldown_s })
        end)

let state t name =
  locked t (fun () ->
      match (entry t name).phase with
      | P_closed -> Closed
      | P_open _ -> Open
      | P_half _ -> Half_open)

let open_count t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc -> match e.phase with P_closed -> acc | _ -> acc + 1)
        t.table 0)
