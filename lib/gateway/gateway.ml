module Transport = Cs_svc.Transport
module Proto = Cs_svc.Proto
module Squeue = Cs_svc.Squeue
module Meters = Cs_svc.Meters
module Metrics = Cs_obs.Metrics

type config = {
  listen_addr : Transport.addr;
  shards : Transport.addr list;
  policy : Policy.t;
  cache_capacity : int;
  vnodes : int;
  forwarders : int;
  queue_capacity : int;
  probe_period_s : float;
  fail_threshold : int;
  shard_timeout_s : float;
  journal_dir : string option;
  recover : bool;
  shed_watermark : float;
  journal_lag_limit : int;
  breaker : Breaker.settings;
  warmup_s : float;
  warm_entries : int;
}

let config ?(policy = Policy.Hash) ?(cache_capacity = 256) ?(vnodes = 64)
    ?(forwarders = 4) ?(queue_capacity = 64) ?(probe_period_s = 1.0)
    ?(fail_threshold = 3) ?(shard_timeout_s = 30.0) ?journal_dir
    ?(recover = false) ?(shed_watermark = 0.85) ?(journal_lag_limit = 512)
    ?(breaker = Breaker.default_settings) ?(warmup_s = 5.0)
    ?(warm_entries = 16) ~shards listen =
  if shards = [] then invalid_arg "Gateway.config: at least one shard required";
  if forwarders <= 0 then invalid_arg "Gateway.config: forwarders must be positive";
  if not (shed_watermark > 0.0 && shed_watermark <= 1.0) then
    invalid_arg "Gateway.config: shed_watermark must be in (0..1]";
  { listen_addr = Transport.parse_exn listen;
    shards = List.map Transport.parse_exn shards;
    policy; cache_capacity; vnodes; forwarders; queue_capacity; probe_period_s;
    fail_threshold; shard_timeout_s; journal_dir; recover; shed_watermark;
    journal_lag_limit; breaker; warmup_s; warm_entries }

(* One backend shard and the load signals gossiped back from it. *)
type shard = {
  sname : string;
  saddr : Transport.addr;
  depth : int Atomic.t;  (* last gossiped admission-queue depth *)
  ewma_bits : int64 Atomic.t;  (* Int64 bits of the service-time EWMA, ms *)
  last_hb_bits : int64 Atomic.t;  (* Clock.now of the last push heartbeat *)
  needs_warm : bool Atomic.t;
      (* set on a health transition back to healthy; the prober performs
         the warm-up replay and clears it *)
  warm_start_bits : int64 Atomic.t;
      (* Clock.now when the admission ramp started; 0 = not warming *)
}

let shard_last_hb sh = Int64.float_of_bits (Atomic.get sh.last_hb_bits)

let shard_ewma sh = Int64.float_of_bits (Atomic.get sh.ewma_bits)

let shard_note_reply sh (reply : Proto.reply) =
  Option.iter (fun d -> Atomic.set sh.depth d) reply.Proto.queue_depth;
  let prev = shard_ewma sh in
  let next =
    if prev <= 0.0 then reply.Proto.elapsed_ms
    else (0.8 *. prev) +. (0.2 *. reply.Proto.elapsed_ms)
  in
  Atomic.set sh.ewma_bits (Int64.bits_of_float next)

(* Same per-connection bookkeeping as {!Cs_svc.Server}: several
   forwarder domains answer into one socket, so writes serialize on
   [out_mutex], and the fd closes on the last of (reader EOF, final
   pending reply). *)
type conn = {
  fd : Unix.file_descr;
  out_mutex : Mutex.t;
  mutable pending : int;
  mutable reader_done : bool;
  mutable conn_closed : bool;
  mutable is_hb : bool;
      (* a shard's persistent heartbeat connection: severed on stop so
         its reader domain can be joined *)
}

type work = { request : Proto.request; on : conn; arrival : float }

(* Cache entries carry the request alongside the reply: the reply
   answers repeat traffic, the request is what gets replayed to a
   re-admitted shard so it warms up on the live working set instead of
   taking full traffic on a cold start. *)
type centry = { creq : Proto.request; crep : Proto.reply }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Transport.addr;
  ring : Ring.t;
  health : Health.t;
  breaker : Breaker.t;
  cache : centry Cache.t;
  journal : Journal.t option;
  shards : shard list;
  queue : work Squeue.t;
  stopping : bool Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  meters : Meters.t;
  m_replayed : Metrics.counter;
  m_rerouted : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_cache_evictions : Metrics.counter;
  m_cache_size : Metrics.gauge;
  m_shards_alive : Metrics.gauge;
  m_journal_hits : Metrics.counter;
  m_journal_replays : Metrics.counter;
  m_journal_pending : Metrics.gauge;
  m_admission_shed : Metrics.counter;
  m_heartbeats : Metrics.counter;
  m_breaker_open : Metrics.gauge;
  m_warm_replays : Metrics.counter;
  m_warming : Metrics.gauge;
  n_busy : int Atomic.t;
  last_evictions : int Atomic.t; (* Cache.stats watermark already counted *)
}

(* Per-shard labeled families; registration is idempotent, so fetching
   the handle at use sites is a hashtable lookup. *)
let fwd_counter t shard =
  Metrics.counter t.meters.Meters.registry ~labels:[ ("shard", shard) ]
    ~help:"Jobs forwarded to a shard" "csched_gateway_forwarded_total"

let shard_fail_counter t shard =
  Metrics.counter t.meters.Meters.registry ~labels:[ ("shard", shard) ]
    ~help:"Transport failures talking to a shard"
    "csched_gateway_shard_failures_total"

let shard_depth_gauge t shard =
  Metrics.gauge t.meters.Meters.registry ~labels:[ ("shard", shard) ]
    ~help:"Last gossiped shard admission-queue depth" "csched_shard_queue_depth"

let shard_ewma_gauge t shard =
  Metrics.gauge t.meters.Meters.registry ~labels:[ ("shard", shard) ]
    ~help:"Shard service-time EWMA (ms)" "csched_shard_ewma_ms"

(* 0 = closed, 1 = half-open, 2 = open *)
let breaker_state_gauge t shard =
  Metrics.gauge t.meters.Meters.registry ~labels:[ ("shard", shard) ]
    ~help:"Circuit-breaker state (0 closed, 1 half-open, 2 open)"
    "csched_breaker_state"

let create (cfg : config) =
  let shards =
    List.map
      (fun saddr ->
        { sname = Transport.to_string saddr; saddr;
          depth = Atomic.make 0; ewma_bits = Atomic.make (Int64.bits_of_float 0.0);
          last_hb_bits = Atomic.make (Int64.bits_of_float 0.0);
          needs_warm = Atomic.make false;
          warm_start_bits = Atomic.make 0L })
      cfg.shards
  in
  let names = List.map (fun s -> s.sname) shards in
  let listen_fd = Transport.listen cfg.listen_addr in
  let meters = Meters.create () in
  Metrics.set meters.Meters.workers (float_of_int cfg.forwarders);
  let counter = Metrics.counter meters.Meters.registry in
  let gauge = Metrics.gauge meters.Meters.registry in
  let on_transition ~shard ~to_ =
    Metrics.incr
      (counter ~labels:[ ("shard", shard); ("to", to_) ]
         ~help:"Shard health-state transitions" "csched_health_transitions_total");
    (* A shard coming back is cache-cold: flag it for the warm-up
       replay + admission ramp. Flag only — this callback runs with the
       health lock held, so the prober does the actual work. *)
    if to_ = "healthy" then
      List.iter
        (fun sh -> if sh.sname = shard then Atomic.set sh.needs_warm true)
        shards
  in
  let on_breaker_transition ~shard ~to_ =
    Metrics.incr
      (counter ~labels:[ ("shard", shard); ("to", to_) ]
         ~help:"Circuit-breaker state transitions"
         "csched_breaker_transitions_total")
  in
  let journal =
    Option.map
      (fun dir -> Journal.open_dir ~dir ~recover:cfg.recover ())
      cfg.journal_dir
  in
  { cfg; listen_fd; bound = Transport.bound_addr listen_fd cfg.listen_addr;
    ring = Ring.make ~vnodes:cfg.vnodes names;
    health = Health.create ~fail_threshold:cfg.fail_threshold ~on_transition names;
    breaker =
      Breaker.create ~settings:cfg.breaker ~on_transition:on_breaker_transition
        names;
    cache = Cache.create ~capacity:cfg.cache_capacity;
    journal;
    shards;
    queue = Squeue.create ~capacity:cfg.queue_capacity;
    stopping = Atomic.make false;
    conns_mutex = Mutex.create ();
    conns = [];
    meters;
    m_replayed = counter ~help:"Jobs replayed on another shard after a transport failure"
        "csched_gateway_replayed_total";
    m_rerouted = counter ~help:"Jobs rerouted after an overload refusal"
        "csched_gateway_rerouted_total";
    m_cache_hits = counter ~help:"Result-cache hits" "csched_cache_hits_total";
    m_cache_misses = counter ~help:"Result-cache misses" "csched_cache_misses_total";
    m_cache_evictions = counter ~help:"Result-cache LRU evictions"
        "csched_cache_evictions_total";
    m_cache_size = gauge ~help:"Result-cache resident entries" "csched_cache_size";
    m_shards_alive = gauge ~help:"Shards currently dispatchable" "csched_shards_alive";
    m_journal_hits = counter ~help:"Retries answered from the durable journal"
        "csched_journal_hits_total";
    m_journal_replays = counter
        ~help:"Unacked journaled jobs re-dispatched after recovery"
        "csched_journal_replays_total";
    m_journal_pending = gauge ~help:"Journaled jobs admitted but not yet answered"
        "csched_journal_pending";
    m_admission_shed = counter
        ~help:"Jobs shed by the adaptive admission watermark"
        "csched_gateway_admission_shed_total";
    m_heartbeats = counter ~help:"Push heartbeats received from shards"
        "csched_heartbeats_total";
    m_breaker_open = gauge ~help:"Shards with a tripped circuit breaker"
        "csched_breaker_open";
    m_warm_replays = counter
        ~help:"Cache entries replayed to re-admitted shards for warm-up"
        "csched_gateway_warm_replays_total";
    m_warming = gauge ~help:"Shards currently inside their admission ramp"
        "csched_gateway_warming_shards";
    n_busy = Atomic.make 0; last_evictions = Atomic.make 0 }

let address t = t.bound
let meters t = t.meters

let alive_count t =
  List.length (Health.alive t.health (List.map (fun sh -> sh.sname) t.shards))

(* Admission-ramp position for a warming shard: 0 just re-admitted,
   1 fully ramped. Lazily clears the warming flag once the ramp
   completes, so the hot path stays lock-free. *)
let warm_frac t sh =
  let bits = Atomic.get sh.warm_start_bits in
  if bits = 0L then 1.0
  else begin
    let frac =
      (Cs_obs.Clock.now () -. Int64.float_of_bits bits)
      /. Float.max 1e-9 t.cfg.warmup_s
    in
    if frac >= 1.0 then begin
      ignore (Atomic.compare_and_set sh.warm_start_bits bits 0L);
      1.0
    end
    else Float.max 0.0 frac
  end

let warming_count t =
  List.length (List.filter (fun sh -> warm_frac t sh < 1.0) t.shards)

(* Mirror live values into registry gauges so snapshots carry them. *)
let sync_gauges t =
  Metrics.set t.meters.Meters.queue_depth (float_of_int (Squeue.length t.queue));
  Metrics.set t.meters.Meters.busy (float_of_int (Atomic.get t.n_busy));
  Metrics.set t.m_shards_alive (float_of_int (alive_count t));
  Metrics.set t.m_cache_size (float_of_int (Cache.stats t.cache).Cache.size);
  Metrics.set t.m_journal_pending
    (float_of_int (match t.journal with Some j -> Journal.lag j | None -> 0));
  Metrics.set t.m_breaker_open (float_of_int (Breaker.open_count t.breaker));
  Metrics.set t.m_warming (float_of_int (warming_count t));
  List.iter
    (fun sh ->
      Metrics.set (shard_depth_gauge t sh.sname) (float_of_int (Atomic.get sh.depth));
      Metrics.set (shard_ewma_gauge t sh.sname) (shard_ewma sh);
      Metrics.set (breaker_state_gauge t sh.sname)
        (match Breaker.state t.breaker sh.sname with
        | Breaker.Closed -> 0.0
        | Breaker.Half_open -> 1.0
        | Breaker.Open -> 2.0))
    t.shards

(* The cache counts evictions internally; fold the delta into the
   monotone registry counter exactly once even with racing forwarders. *)
let note_evictions t =
  let total = (Cache.stats t.cache).Cache.evictions in
  let rec claim () =
    let seen = Atomic.get t.last_evictions in
    if total > seen then
      if Atomic.compare_and_set t.last_evictions seen total then
        Metrics.incr ~by:(total - seen) t.m_cache_evictions
      else claim ()
  in
  claim ()

type stats = {
  admitted : int;
  completed : int;
  refused : int;
  shed : int;
  forwarded : int;
  replayed : int;
  rerouted : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  journal_hits : int;
  journal_replays : int;
  journal_pending : int;
  admission_shed : int;
  heartbeats : int;
  breaker_open : int;
  warm_replays : int;
}

let stats t =
  let c = Cache.stats t.cache in
  { admitted = Metrics.counter_value t.meters.Meters.admitted;
    completed = Metrics.counter_value t.meters.Meters.completed;
    refused = Metrics.counter_value t.meters.Meters.refused;
    shed = Metrics.counter_value t.meters.Meters.shed;
    forwarded =
      List.fold_left
        (fun acc sh -> acc + Metrics.counter_value (fwd_counter t sh.sname))
        0 t.shards;
    replayed = Metrics.counter_value t.m_replayed;
    rerouted = Metrics.counter_value t.m_rerouted;
    cache_hits = c.Cache.hits;
    cache_misses = c.Cache.misses;
    cache_evictions = c.Cache.evictions;
    journal_hits = Metrics.counter_value t.m_journal_hits;
    journal_replays = Metrics.counter_value t.m_journal_replays;
    journal_pending = (match t.journal with Some j -> Journal.lag j | None -> 0);
    admission_shed = Metrics.counter_value t.m_admission_shed;
    heartbeats = Metrics.counter_value t.m_heartbeats;
    breaker_open = Breaker.open_count t.breaker;
    warm_replays = Metrics.counter_value t.m_warm_replays }

let shard_states t =
  List.map (fun sh -> (sh.sname, Health.state t.health sh.sname)) t.shards

let server_stats t =
  let s = stats t in
  let c = Cache.stats t.cache in
  let alive = alive_count t in
  { Proto.queue_depth = Squeue.length t.queue;
    workers = t.cfg.forwarders;
    busy = Atomic.get t.n_busy;
    admitted = s.admitted;
    completed = s.completed;
    shed = s.shed;
    refusals = s.refused;
    extra =
      [ ("cache_hits", float_of_int s.cache_hits);
        ("cache_misses", float_of_int s.cache_misses);
        ("cache_evictions", float_of_int s.cache_evictions);
        ("cache_size", float_of_int c.Cache.size);
        ("forwarded", float_of_int s.forwarded);
        ("replayed", float_of_int s.replayed);
        ("rerouted", float_of_int s.rerouted);
        ("shards_alive", float_of_int alive);
        ("shards_total", float_of_int (List.length t.shards));
        ("journal_hits", float_of_int s.journal_hits);
        ("journal_replays", float_of_int s.journal_replays);
        ("journal_pending", float_of_int s.journal_pending);
        ("admission_shed", float_of_int s.admission_shed);
        ("heartbeats", float_of_int s.heartbeats);
        ("breaker_open", float_of_int s.breaker_open);
        ("warm_replays", float_of_int s.warm_replays);
        ("warming_shards", float_of_int (warming_count t)) ] }

(* --- wire plumbing (mirrors Cs_svc.Server) ------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let send_line conn line =
  Mutex.lock conn.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_mutex)
    (fun () ->
      if not conn.conn_closed then
        try write_all conn.fd (line ^ "\n") with Unix.Unix_error _ -> ())

let send_reply conn reply = send_line conn (Proto.reply_to_line reply)

let finish_edge conn ~job_done =
  Mutex.lock conn.out_mutex;
  let close_now =
    if job_done then conn.pending <- conn.pending - 1 else conn.reader_done <- true;
    conn.reader_done && conn.pending = 0 && not conn.conn_closed
  in
  if close_now then conn.conn_closed <- true;
  Mutex.unlock conn.out_mutex;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* --- cache key ----------------------------------------------------- *)

(* The cache key is the canonical scenario identity, not the request
   text: two requests naming the same machine through different aliases,
   or carrying different ids/deadlines, resolve to the same key. A
   request that does not resolve gets a typed local refusal — no shard
   hop for garbage. *)
let scenario_key (r : Proto.request) =
  let ( let* ) = Result.bind in
  let* machine =
    Proto.machine_of_name r.Proto.machine
    |> Result.map_error (fun e -> Cs_resil.Error.Invalid_input e)
  in
  let* entry =
    match Cs_workloads.Suite.find r.Proto.bench with
    | Some e -> Ok e
    | None ->
      Error
        (Cs_resil.Error.Invalid_input
           (Printf.sprintf "unknown benchmark %S" r.Proto.bench))
  in
  let region =
    entry.Cs_workloads.Suite.generate ~scale:r.Proto.scale
      ~clusters:(Cs_machine.Machine.n_clusters machine) ()
  in
  let spec =
    Printf.sprintf "scheduler %s passes %s seed %s" r.Proto.scheduler
      (Option.value ~default:"default" r.Proto.passes)
      (match r.Proto.seed with Some s -> string_of_int s | None -> "-")
  in
  Ok (Cs_core.Scenario.hex (Cs_core.Scenario.canonical_hash ~spec ~machine region))

(* Only full-quality schedules are cached: an anytime early exit or a
   refusal is a property of that moment's load, not of the scenario. *)
let cacheable (reply : Proto.reply) =
  match reply.Proto.verdict with
  | Proto.Scheduled s -> not s.timed_out
  | Proto.Refused _ -> false

(* --- forwarding ---------------------------------------------------- *)

type attempt_outcome =
  | Answered of Proto.reply
  | Shard_overloaded of Proto.reply
  | Transport_failure of string

(* One-shot connection: send the one job, wait for its one reply. EOF
   before the reply means the shard died (or aborted) with the job in
   flight — a transport failure, distinct from a shed job, which is a
   well-formed [overloaded] refusal. *)
let forward_once t sh (r : Proto.request) =
  match
    Cs_svc.Client.submit ~timeout_s:t.cfg.shard_timeout_s ~addr:sh.saddr [ r ]
  with
  | Error e -> Transport_failure e
  | Ok [] -> Transport_failure "shard closed the connection before replying"
  | Ok (reply :: _) ->
    shard_note_reply sh reply;
    (match reply.Proto.verdict with
    | Proto.Refused { kind; _ } when kind = "overloaded" -> Shard_overloaded reply
    | _ -> Answered reply)

let views t names =
  List.filter_map
    (fun sh ->
      if List.mem sh.sname names then
        Some
          { Policy.name = sh.sname; queue_depth = Atomic.get sh.depth;
            ewma_ms = shard_ewma sh }
      else None)
    t.shards

let shard_by_name t name = List.find (fun sh -> sh.sname = name) t.shards

(* Walk the policy-ordered candidates until one answers. Transport
   failures feed the health tracker and replay the job on the next
   candidate; overload refusals reroute without a health penalty (the
   shard is alive, just full). The last overload refusal is kept as the
   answer of record in case every live shard is saturated.

   The circuit breaker gates each attempt: an open breaker skips the
   shard without a connection attempt, and every granted attempt —
   including half-open probes — reports its outcome back so the breaker
   state machine advances. Health and the breaker are complementary:
   health evicts on consecutive transport failures, the breaker on a
   bad failure *rate* (a shard can keep resetting the consecutive
   counter while failing half its calls). *)
let dispatch t (r : Proto.request) ~key =
  let usable = Health.alive t.health (List.map (fun sh -> sh.sname) t.shards) in
  let khash = Cs_core.Scenario.fnv1a key in
  let order =
    Policy.order t.cfg.policy ~ring:t.ring ~key:khash
      ~deadline_ms:r.Proto.deadline_ms (views t usable)
  in
  (* Admission ramp: a warming shard serves only a deterministic,
     growing slice of the keyspace — demoted (not removed) for the
     rest, so it still catches jobs no other shard can take. The slice
     is keyed on the scenario hash, so a given scenario flips from
     "elsewhere" to "warming shard" exactly once during the ramp. *)
  let order =
    let full, ramped =
      List.partition
        (fun name ->
          let frac = warm_frac t (shard_by_name t name) in
          frac >= 1.0
          || Int64.to_int khash land 1023 < int_of_float (frac *. 1024.0))
        order
    in
    full @ ramped
  in
  let breaker_skips = ref 0 in
  let rec walk ~replaying ~last_overload = function
    | [] ->
      (match last_overload with
      | Some reply -> reply
      | None ->
        Proto.refused ~id:r.Proto.id
          (Cs_resil.Error.Overloaded
             (if order = [] then "no live shards"
              else if !breaker_skips = List.length order then
                "every live shard's circuit breaker is open"
              else "every live shard failed while handling the job")))
    | name :: rest ->
      if not (Breaker.allow t.breaker name) then begin
        incr breaker_skips;
        walk ~replaying ~last_overload rest
      end
      else begin
        let sh = shard_by_name t name in
        if replaying then begin
          Metrics.incr t.m_replayed;
          Cs_obs.Obs.instant ~cat:"gateway"
            ~args:
              [ ("job", Cs_obs.Obs.Str r.Proto.id); ("shard", Cs_obs.Obs.Str name) ]
            "gateway:replay"
        end;
        match forward_once t sh r with
        | Answered reply ->
          Health.note_ok t.health name;
          Breaker.record t.breaker name ~ok:true ~elapsed_ms:reply.Proto.elapsed_ms;
          Metrics.incr (fwd_counter t name);
          reply
        | Shard_overloaded reply ->
          Health.note_ok t.health name;
          Breaker.record t.breaker name ~ok:true ~elapsed_ms:0.0;
          if rest <> [] then Metrics.incr t.m_rerouted;
          walk ~replaying:false ~last_overload:(Some reply) rest
        | Transport_failure why ->
          Health.note_failure t.health name;
          Breaker.record t.breaker name ~ok:false ~elapsed_ms:0.0;
          Metrics.incr (shard_fail_counter t name);
          Cs_obs.Obs.instant ~cat:"gateway"
            ~args:
              [ ("shard", Cs_obs.Obs.Str name); ("error", Cs_obs.Obs.Str why) ]
            "gateway:shard-failure";
          walk ~replaying:true ~last_overload rest
      end
  in
  walk ~replaying:false ~last_overload:None order

(* The journal key: canonical scenario identity joined with the
   client's idempotency key. Without an idempotency key the request id
   stands in — enough to pair this journal's admit/done records for
   replay, but dedup across retries is only promised to keyed jobs
   (two distinct keyless submissions may legitimately share an id). *)
let journal_key ~key (r : Proto.request) =
  key ^ "#"
  ^ (match r.Proto.idem_key with
    | Some k -> "i:" ^ k
    | None -> "r:" ^ r.Proto.id)

let handle_job t (r : Proto.request) ~arrival ~send =
  let t0 = Cs_obs.Clock.now () in
  (* This gateway hop's trace context: adopt the client's trace when
     the request carries one, otherwise start the trace here — either
     way the shard sees this hop as its parent span. *)
  let ctx =
    match Proto.trace_of_request r with
    | Some c -> c
    | None -> Cs_obs.Tracectx.root ()
  in
  let job_args = ("id", Cs_obs.Obs.Str r.Proto.id) :: Cs_obs.Tracectx.args ctx in
  let answer reply =
    (match reply.Proto.verdict with
    | Proto.Scheduled _ ->
      Metrics.incr t.meters.Meters.completed;
      if r.Proto.deadline_ms <> None then
        Metrics.record_deadline t.meters.Meters.deadline ~hit:true
    | Proto.Refused e ->
      Metrics.incr t.meters.Meters.refused;
      if e.kind = "deadline-exceeded" then
        Metrics.record_deadline t.meters.Meters.deadline ~hit:false);
    Metrics.observe t.meters.Meters.latency_ms
      ((Cs_obs.Clock.now () -. arrival) *. 1000.0);
    (* gateway-level gossip, mirroring what shards do for the gateway *)
    send
      { reply with
        Proto.reply_id = r.Proto.id;
        queue_depth = Some (Squeue.length t.queue) }
  in
  match scenario_key r with
  | Error err -> answer (Proto.refused ~id:r.Proto.id err)
  | Ok key ->
    let jkey = journal_key ~key r in
    let journal_hit =
      match t.journal with
      | Some j when r.Proto.idem_key <> None -> Journal.completed j jkey
      | _ -> None
    in
    (match journal_hit with
    | Some reply ->
      (* a retry of a job this gateway (or its predecessor) already
         answered: serve the journaled verdict, no re-execution *)
      Metrics.incr t.m_journal_hits;
      Cs_obs.Obs.instant ~cat:"gateway" ~args:job_args "gateway:journal-hit";
      answer
        { reply with
          Proto.reply_id = r.Proto.id;
          elapsed_ms = (Cs_obs.Clock.now () -. t0) *. 1000.0;
          cached = true }
    | None ->
      (match Cache.find t.cache key with
      | Some { crep = cached; _ } ->
        Metrics.incr t.m_cache_hits;
        Cs_obs.Obs.instant ~cat:"gateway" ~args:job_args "gateway:cache-hit";
        answer
          { cached with
            Proto.reply_id = r.Proto.id;
            elapsed_ms = (Cs_obs.Clock.now () -. t0) *. 1000.0;
            cached = true }
      | None ->
        Metrics.incr t.m_cache_misses;
        (* durable admit *before* the shard can see the job: a gateway
           death from here on leaves a replayable record *)
        Option.iter (fun j -> Journal.admit j ~key:jkey r) t.journal;
        let reply =
          Cs_obs.Obs.span ~cat:"gateway" ~args:job_args "job:dispatch" (fun () ->
              dispatch t (Proto.with_trace ~ctx r) ~key)
        in
        Option.iter (fun j -> Journal.mark_done j ~key:jkey reply) t.journal;
        if cacheable reply then begin
          Cache.put t.cache key { creq = r; crep = reply };
          note_evictions t
        end;
        answer reply))

let forwarder t () =
  let rec loop () =
    match Squeue.pop t.queue with
    | None -> ()
    | Some { request; on; arrival } ->
      Atomic.incr t.n_busy;
      let wait_s = Cs_obs.Clock.now () -. arrival in
      Metrics.observe t.meters.Meters.queue_wait_ms (wait_s *. 1000.0);
      Cs_obs.Obs.complete ~cat:"gateway"
        ~args:[ ("id", Cs_obs.Obs.Str request.Proto.id) ]
        "job:queue" ~ts:arrival ~dur:wait_s;
      (try handle_job t request ~arrival ~send:(fun reply -> send_reply on reply)
       with e ->
         send_reply on
           (Proto.refused ~id:request.Proto.id
              (Cs_resil.Error.Pass_failure (Printexc.to_string e))));
      Atomic.decr t.n_busy;
      sync_gauges t;
      finish_edge on ~job_done:true;
      loop ()
  in
  loop ()

(* Recovery replay: the jobs a dead gateway admitted but never
   answered. Their clients are gone, so replies go nowhere — the point
   is to finish the work, journal the verdicts, and warm the dedup map
   and cache so client retries carrying the same idempotency keys get
   the journaled answer instead of a second execution. *)
let replay_pending t =
  match t.journal with
  | None -> ()
  | Some j ->
    List.iter
      (fun (jkey, request) ->
        if not (Atomic.get t.stopping) then begin
          Metrics.incr t.m_journal_replays;
          Cs_obs.Obs.instant ~cat:"gateway"
            ~args:
              [ ("key", Cs_obs.Obs.Str jkey);
                ("id", Cs_obs.Obs.Str request.Proto.id) ]
            "journal:replay";
          try handle_job t request ~arrival:(Cs_obs.Clock.now ()) ~send:ignore
          with _ -> ()
        end)
      (Journal.pending j)

(* --- health prober ------------------------------------------------- *)

(* Periodic ping against every shard: refreshes queue-depth gossip
   between jobs, detects silent deaths before a job trips over them, and
   carries the probation probe that re-admits a dead shard once its
   backoff expires. A shard whose push heartbeat arrived within the
   last two periods is skipped — its load vector is already fresher
   than a probe would make it, so heartbeating fleets idle without
   polling round trips. *)
let prober t () =
  let probe_timeout = Float.min 2.0 (Float.max 0.2 t.cfg.probe_period_s) in
  let hb_fresh sh =
    let last = shard_last_hb sh in
    last > 0.0 && Cs_obs.Clock.now () -. last < 2.0 *. t.cfg.probe_period_s
  in
  let probe sh =
    match
      Cs_svc.Client.fetch_stats ~timeout_s:probe_timeout ~addr:sh.saddr ()
    with
    | Ok st ->
      Atomic.set sh.depth st.Proto.queue_depth;
      Health.note_ok t.health sh.sname
    | Error _ -> Health.note_failure t.health sh.sname
  in
  (* Warm-up replay for a shard just re-admitted by health: start its
     admission ramp, then feed it the hottest cached scenarios as
     batch-class jobs (no deadline, no idempotency key — these are
     throwaway warmers, not client traffic). Runs inline on the prober
     domain; the ramp in [dispatch] keeps real traffic mostly elsewhere
     while this drains. *)
  let warm sh =
    if Atomic.exchange sh.needs_warm false then begin
      Atomic.set sh.warm_start_bits (Int64.bits_of_float (Cs_obs.Clock.now ()));
      let entries = Cache.export t.cache ~n:t.cfg.warm_entries in
      Cs_obs.Obs.instant ~cat:"gateway"
        ~args:
          [ ("shard", Cs_obs.Obs.Str sh.sname);
            ("entries", Cs_obs.Obs.Int (List.length entries)) ]
        "gateway:warm-replay";
      List.iter
        (fun (_, e) ->
          if not (Atomic.get t.stopping) then
            let r =
              { e.creq with
                Proto.id = e.creq.Proto.id ^ "#warm";
                deadline_ms = None;
                idem_key = None;
                job_class = Some "batch" }
            in
            match
              Cs_svc.Client.submit ~timeout_s:t.cfg.shard_timeout_s
                ~addr:sh.saddr [ r ]
            with
            | Ok _ -> Metrics.incr t.m_warm_replays
            | Error _ -> ())
        entries
    end
  in
  let rec sleep_ticks remaining =
    if remaining > 0.0 && not (Atomic.get t.stopping) then begin
      let tick = Float.min 0.05 remaining in
      Unix.sleepf tick;
      sleep_ticks (remaining -. tick)
    end
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      List.iter
        (fun sh ->
          if not (Atomic.get t.stopping) then
            if Health.usable t.health sh.sname then begin
              if not (hb_fresh sh) then probe sh;
              warm sh
            end
            else if Health.probe_due t.health sh.sname then probe sh)
        t.shards;
      sleep_ticks t.cfg.probe_period_s;
      loop ()
    end
  in
  loop ()

(* --- adaptive admission -------------------------------------------- *)

(* Shed before queueing when the fleet can't plausibly absorb the
   backlog. The watermark scales with the live fraction of the fleet:
   with every shard up it sits at [shed_watermark * queue_capacity];
   when shards die it drops proportionally, so the gateway starts
   refusing early instead of letting jobs time out in its own queue.
   Journal lag (journaled admits not yet answered) sheds for the same
   reason on the durability axis: an unbounded pending set is a
   recovery-time bomb. *)
let admission_shed_reason t =
  let depth = Squeue.length t.queue in
  let total = List.length t.shards in
  let alive = alive_count t in
  let watermark =
    max 1
      (int_of_float
         (float_of_int t.cfg.queue_capacity *. t.cfg.shed_watermark
         *. float_of_int (max 1 alive) /. float_of_int total))
  in
  if depth >= watermark then
    Some
      (Printf.sprintf
         "gateway admission watermark: queue depth %d >= %d (%d/%d shards \
          alive)"
         depth watermark alive total)
  else
    match t.journal with
    | Some j when Journal.lag j >= t.cfg.journal_lag_limit ->
      Some
        (Printf.sprintf "gateway journal lag %d >= %d" (Journal.lag j)
           t.cfg.journal_lag_limit)
    | _ -> None

(* --- accept loop --------------------------------------------------- *)

let serve_conn t conn =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let handle_line line =
    let line = String.trim line in
    if line <> "" then begin
      match Proto.incoming_of_line line with
      | Error e ->
        Metrics.incr t.meters.Meters.refused;
        send_reply conn (Proto.refused ~id:"" (Cs_resil.Error.Invalid_input e))
      | Ok (Proto.Control { op = Proto.Metrics_query format; id }) ->
        sync_gauges t;
        send_line conn
          (Proto.metrics_reply_to_line ~id (Meters.metrics_payload t.meters format))
      | Ok (Proto.Control { op; id }) ->
        let s = server_stats t in
        (match op with
        | Proto.Stats_query ->
          Cs_obs.Obs.counter ~cat:"gateway" "gateway:stats"
            (("queue_depth", float_of_int s.Proto.queue_depth)
            :: ("busy", float_of_int s.Proto.busy)
            :: s.Proto.extra)
        | Proto.Ping | Proto.Metrics_query _ -> ());
        send_line conn (Proto.pong_to_line ~id s)
      | Ok (Proto.Heartbeat hb) ->
        conn.is_hb <- true;
        (match
           List.find_opt (fun sh -> sh.sname = hb.Proto.hb_shard) t.shards
         with
        | Some sh ->
          Atomic.set sh.depth hb.Proto.hb_depth;
          Atomic.set sh.last_hb_bits (Int64.bits_of_float (Cs_obs.Clock.now ()));
          Metrics.incr t.m_heartbeats;
          (* a heartbeat is proof of life: it re-admits a buried shard
             without waiting for the prober's probation slot *)
          Health.note_ok t.health sh.sname
        | None ->
          (* unknown shard name: not ours to track, and no reply to
             send — heartbeats are one-way *)
          ())
      | Ok (Proto.Job_request request) ->
        Mutex.lock conn.out_mutex;
        conn.pending <- conn.pending + 1;
        Mutex.unlock conn.out_mutex;
        let shed_reason =
          if Atomic.get t.stopping then Some "gateway is draining"
          else
            match admission_shed_reason t with
            | Some reason ->
              Metrics.incr t.m_admission_shed;
              Some reason
            | None ->
              if
                Squeue.try_push t.queue
                  { request; on = conn; arrival = Cs_obs.Clock.now () }
              then None
              else
                Some
                  (Printf.sprintf "gateway admission queue full (%d jobs)"
                     t.cfg.queue_capacity)
        in
        (match shed_reason with
        | Some reason ->
          Metrics.incr t.meters.Meters.shed;
          send_reply conn
            (Proto.refused ~id:request.Proto.id (Cs_resil.Error.Overloaded reason));
          finish_edge conn ~job_done:true
        | None -> Metrics.incr t.meters.Meters.admitted)
    end
  in
  let rec drain_lines () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | None -> ()
    | Some i ->
      let all = Buffer.contents buf in
      let line = String.sub all 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
      handle_line line;
      drain_lines ()
  in
  let rec read_loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain_lines ();
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  handle_line (Buffer.contents buf);
  finish_edge conn ~job_done:false

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Cs_obs.Obs.instant ~cat:"gateway" "gateway:stop";
    (* Sever shard heartbeat connections: they are persistent by
       design, so their reader domains would otherwise block the
       drain's join forever. Client connections are left alone — the
       graceful drain finishes answering them. *)
    Mutex.lock t.conns_mutex;
    let conns = t.conns in
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun conn ->
        if conn.is_hb then begin
          Mutex.lock conn.out_mutex;
          (if not conn.conn_closed then
             try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          Mutex.unlock conn.out_mutex
        end)
      conns;
    match Transport.connect t.bound with
    | exception Unix.Unix_error _ -> ()
    | fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  end

let run t =
  let forwarders = List.init t.cfg.forwarders (fun _ -> Domain.spawn (forwarder t)) in
  let prober_d = Domain.spawn (prober t) in
  let replayer_d = Domain.spawn (fun () -> replay_pending t) in
  let readers = ref [] in
  let prune () =
    let live, finished =
      List.partition (fun (done_flag, _) -> not (Atomic.get done_flag)) !readers
    in
    List.iter (fun (_, d) -> Domain.join d) finished;
    readers := live
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then accept_loop ()
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Transport.accepted t.bound fd;
          let conn =
            { fd; out_mutex = Mutex.create (); pending = 0; reader_done = false;
              conn_closed = false; is_hb = false }
          in
          Mutex.lock t.conns_mutex;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.conns_mutex;
          let done_flag = Atomic.make false in
          let d =
            Domain.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> Atomic.set done_flag true)
                  (fun () -> serve_conn t conn))
          in
          readers := (done_flag, d) :: !readers;
          prune ();
          accept_loop ()
        end
    end
  in
  Cs_obs.Obs.instant ~cat:"gateway"
    ~args:
      [ ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound));
        ("shards", Cs_obs.Obs.Int (List.length t.shards));
        ("policy", Cs_obs.Obs.Str (Policy.to_string t.cfg.policy)) ]
    "gateway:listen";
  Cs_obs.Obs.instant ~cat:"meta"
    ~args:
      [ ("role", Cs_obs.Obs.Str "gateway");
        ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound)) ]
    "process";
  accept_loop ();
  List.iter (fun (_, d) -> Domain.join d) !readers;
  Squeue.close t.queue;
  List.iter Domain.join forwarders;
  Domain.join prober_d;
  Domain.join replayer_d;
  Option.iter Journal.close t.journal;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Transport.cleanup t.bound;
  let s = stats t in
  Cs_obs.Obs.counter ~cat:"gateway" "gateway:drained"
    [ ("admitted", float_of_int s.admitted);
      ("completed", float_of_int s.completed);
      ("refused", float_of_int s.refused);
      ("shed", float_of_int s.shed);
      ("forwarded", float_of_int s.forwarded);
      ("replayed", float_of_int s.replayed);
      ("cache_hits", float_of_int s.cache_hits) ]
