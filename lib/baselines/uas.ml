let schedule ~machine region =
  let graph = region.Cs_ddg.Region.graph in
  let n = Cs_ddg.Graph.n graph in
  let analysis = Estimator.analysis_for ~machine region in
  let nc = Cs_machine.Machine.n_clusters machine in
  let fu_res =
    Array.init nc (fun c ->
        Array.init (Array.length machine.Cs_machine.Machine.fus.(c)) (fun _ ->
            Cs_sched.Reservation.create ()))
  in
  let comm = Cs_sched.Comm.create machine in
  let finish = Array.make n (-1) in
  let assignment = Array.make n (-1) in
  let entries =
    Array.make n { Cs_sched.Schedule.cluster = -1; fu = -1; start = -1; finish = -1 }
  in
  let load = Array.make nc 0 in
  let priority = Cs_sched.Priority.alap analysis in
  let cmp =
    Cs_sched.Priority.compare_with_tiebreak ~priority
      ~height:(Cs_ddg.Analysis.height analysis)
  in
  let ready = Cs_util.Heap.create ~cmp in
  let pending = Array.make n 0 in
  for i = 0 to n - 1 do
    pending.(i) <- List.length (Cs_ddg.Graph.preds graph i);
    if pending.(i) = 0 then Cs_util.Heap.push ready i
  done;
  (* Estimated completion of [i] on [c]: operand arrivals assuming an
     uncontended network, then the first free compatible unit. *)
  let estimate i c =
    let ins = Cs_ddg.Graph.instr graph i in
    match Cs_machine.Machine.fus_for machine ~cluster:c ins.Cs_ddg.Instr.op with
    | [] -> None
    | candidates ->
      let est_operands =
        List.fold_left
          (fun acc p ->
            let arrive =
              finish.(p) + Cs_machine.Machine.comm_latency machine ~src:assignment.(p) ~dst:c
            in
            max acc arrive)
          0 (Cs_ddg.Graph.preds graph i)
      in
      let start =
        List.fold_left
          (fun acc u -> min acc (Cs_sched.Reservation.first_free_from fu_res.(c).(u) est_operands))
          max_int candidates
      in
      Some (start + Cs_sched.List_scheduler.effective_latency ~machine ~cluster:c ins)
  in
  let cluster_order i =
    let ins = Cs_ddg.Graph.instr graph i in
    match ins.Cs_ddg.Instr.preplace with
    | Some home when machine.Cs_machine.Machine.remote_mem_penalty = 0 -> [ home ]
    | Some home ->
      (* Home cluster first, the rest by estimated completion. *)
      let rest = List.filter (fun c -> c <> home) (List.init nc (fun c -> c)) in
      home :: List.sort (fun a b -> compare (estimate i a, load.(a), a) (estimate i b, load.(b), b)) rest
    | None ->
      List.sort
        (fun a b -> compare (estimate i a, load.(a), a) (estimate i b, load.(b), b))
        (List.init nc (fun c -> c))
  in
  let live_in_homes = region.Cs_ddg.Region.live_in_homes in
  let live_in_avail i c =
    List.fold_left
      (fun acc r ->
        match Cs_ddg.Graph.defining_instr graph r with
        | Some _ -> acc
        | None ->
          (match Cs_ddg.Reg.Map.find_opt r live_in_homes with
          | Some home when home <> c ->
            max acc
              (Cs_sched.Comm.deliver comm
                 ~producer:(Cs_sched.Schedule.live_in_producer r) ~src:home ~dst:c ~ready:0)
          | Some _ | None -> acc))
      0
      (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.srcs
  in
  let commit i c =
    let ins = Cs_ddg.Graph.instr graph i in
    assignment.(i) <- c;
    let est =
      List.fold_left
        (fun acc p ->
          let avail =
            if assignment.(p) = c then finish.(p)
            else
              Cs_sched.Comm.deliver comm ~producer:p ~src:assignment.(p) ~dst:c
                ~ready:finish.(p)
          in
          max acc avail)
        (live_in_avail i c)
        (Cs_ddg.Graph.preds graph i)
    in
    let candidates = Cs_machine.Machine.fus_for machine ~cluster:c ins.Cs_ddg.Instr.op in
    let cycle, fu =
      List.fold_left
        (fun (bc, bu) u ->
          let cy = Cs_sched.Reservation.first_free_from fu_res.(c).(u) est in
          if cy < bc then (cy, u) else (bc, bu))
        (max_int, -1) candidates
    in
    Cs_sched.Reservation.book fu_res.(c).(fu) cycle;
    let lat = Cs_sched.List_scheduler.effective_latency ~machine ~cluster:c ins in
    finish.(i) <- cycle + lat;
    load.(c) <- load.(c) + lat;
    entries.(i) <- { Cs_sched.Schedule.cluster = c; fu; start = cycle; finish = finish.(i) }
  in
  let rec drain () =
    match Cs_util.Heap.pop ready with
    | None -> ()
    | Some i ->
      let ins = Cs_ddg.Graph.instr graph i in
      let viable =
        List.filter
          (fun c -> Cs_machine.Machine.can_execute machine ~cluster:c ins.Cs_ddg.Instr.op)
          (cluster_order i)
      in
      (match viable with
      | [] ->
        Cs_resil.Error.infeasible
          (Printf.sprintf "UAS: no cluster can execute instr %d" i)
      | c :: _ -> commit i c);
      List.iter
        (fun s ->
          pending.(s) <- pending.(s) - 1;
          if pending.(s) = 0 then Cs_util.Heap.push ready s)
        (Cs_ddg.Graph.succs graph i);
      drain ()
  in
  drain ();
  Cs_sched.Schedule.make ~machine ~graph ~live_in_homes ~entries
    ~comms:(Cs_sched.Comm.bookings comm) ()

let assign ~machine region = Cs_sched.Schedule.assignment (schedule ~machine region)
