(* Bottom-up phase: each instruction inherits the majority preplacement
   desire of its successors (its own preplacement dominates). *)
let desires ~machine graph =
  let n = Cs_ddg.Graph.n graph in
  let nc = Cs_machine.Machine.n_clusters machine in
  let desire = Array.make n None in
  let topo = Cs_ddg.Graph.topo_order graph in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    match (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.preplace with
    | Some c -> desire.(i) <- Some c
    | None ->
      let votes = Array.make nc 0 in
      List.iter
        (fun s -> match desire.(s) with Some c -> votes.(c) <- votes.(c) + 1 | None -> ())
        (Cs_ddg.Graph.succs graph i);
      let best = ref (-1) and best_votes = ref 0 in
      for c = 0 to nc - 1 do
        if votes.(c) > !best_votes then begin
          best := c;
          best_votes := votes.(c)
        end
      done;
      if !best >= 0 then desire.(i) <- Some !best
  done;
  desire

let assign ~machine region =
  let graph = region.Cs_ddg.Region.graph in
  let n = Cs_ddg.Graph.n graph in
  let nc = Cs_machine.Machine.n_clusters machine in
  let desire = desires ~machine graph in
  let fu_res =
    Array.init nc (fun c ->
        Array.init (Array.length machine.Cs_machine.Machine.fus.(c)) (fun _ ->
            Cs_sched.Reservation.create ()))
  in
  let assignment = Array.make n (-1) in
  let finish = Array.make n 0 in
  let load = Array.make nc 0 in
  Array.iter
    (fun i ->
      let ins = Cs_ddg.Graph.instr graph i in
      let candidates =
        match ins.Cs_ddg.Instr.preplace with
        | Some home when machine.Cs_machine.Machine.remote_mem_penalty = 0 -> [ home ]
        | Some _ | None ->
          List.filter
            (fun c -> Cs_machine.Machine.can_execute machine ~cluster:c ins.Cs_ddg.Instr.op)
            (List.init nc (fun c -> c))
      in
      let evaluate c =
        let est =
          List.fold_left
            (fun acc p ->
              max acc
                (finish.(p)
                + Cs_machine.Machine.comm_latency machine ~src:assignment.(p) ~dst:c))
            0 (Cs_ddg.Graph.preds graph i)
        in
        let units = Cs_machine.Machine.fus_for machine ~cluster:c ins.Cs_ddg.Instr.op in
        let start =
          List.fold_left
            (fun acc u -> min acc (Cs_sched.Reservation.first_free_from fu_res.(c).(u) est))
            max_int units
        in
        start + Cs_sched.List_scheduler.effective_latency ~machine ~cluster:c ins
      in
      let ranked =
        List.sort
          (fun a b ->
            let c = Int.compare (evaluate a) (evaluate b) in
            if c <> 0 then c
            else
              let bonus cl = if desire.(i) = Some cl then 0 else 1 in
              let c = Int.compare (bonus a) (bonus b) in
              if c <> 0 then c
              else
                let c = Int.compare load.(a) load.(b) in
                if c <> 0 then c else Int.compare a b)
          candidates
      in
      match ranked with
      | [] ->
        Cs_resil.Error.infeasible
          (Printf.sprintf "BUG: no cluster can execute instr %d" i)
      | c :: _ ->
        assignment.(i) <- c;
        let est =
          List.fold_left
            (fun acc p ->
              max acc
                (finish.(p)
                + Cs_machine.Machine.comm_latency machine ~src:assignment.(p) ~dst:c))
            0 (Cs_ddg.Graph.preds graph i)
        in
        let units = Cs_machine.Machine.fus_for machine ~cluster:c ins.Cs_ddg.Instr.op in
        let cycle, fu =
          List.fold_left
            (fun (bc, bu) u ->
              let cy = Cs_sched.Reservation.first_free_from fu_res.(c).(u) est in
              if cy < bc then (cy, u) else (bc, bu))
            (max_int, -1) units
        in
        Cs_sched.Reservation.book fu_res.(c).(fu) cycle;
        let lat = Cs_sched.List_scheduler.effective_latency ~machine ~cluster:c ins in
        finish.(i) <- cycle + lat;
        load.(c) <- load.(c) + lat)
    (Cs_ddg.Graph.topo_order graph);
  assignment

let schedule ~machine region =
  let analysis = Estimator.analysis_for ~machine region in
  let assignment = assign ~machine region in
  let priority = Cs_sched.Priority.alap analysis in
  Cs_sched.List_scheduler.run ~machine ~assignment ~priority ~analysis region
