(** A convergent-scheduling pass: an independent heuristic that reads
    the context and edits the preference matrix (paper Sec. 2). Passes
    never communicate except through the matrix. The driver normalizes
    after every pass, so passes may leave rows unnormalized. *)

type kind =
  | Space (** edits cluster preferences — tracked by Figs. 7/9 *)
  | Time (** edits only temporal preferences *)
  | Spacetime

type t = {
  name : string;
  kind : kind;
  params : (string * float) list;
  (** the numeric parameters this instance was built with, in the
      constructor's declaration order. Booleans are encoded 0/1,
      integers exactly. [Sequence.names] uses these to serialize a
      tuned pass so it can be replayed from the command line. *)
  apply : Context.t -> Weights.t -> unit;
}

val make :
  ?params:(string * float) list -> name:string -> kind:kind ->
  (Context.t -> Weights.t -> unit) -> t

val param_names : t -> string list
val param : t -> string -> float option
val kind_to_string : kind -> string
