type t = {
  region : Cs_ddg.Region.t;
  machine : Cs_machine.Machine.t;
  analysis : Cs_ddg.Analysis.t;
  rng : Cs_util.Rng.t;
  nt : int;
  preplaced_on : int list array;
}

let graph t = t.region.Cs_ddg.Region.graph
let n_instrs t = Cs_ddg.Graph.n (graph t)
let n_clusters t = Cs_machine.Machine.n_clusters t.machine

let make ?(seed = 42) ?(nt_cap = 512) ~machine region =
  (match Cs_machine.Machine.validate_region machine region with
  | Ok () -> ()
  | Error msg -> Cs_resil.Error.invalid_input ("Context.make: " ^ msg));
  let graph = region.Cs_ddg.Region.graph in
  let analysis =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine) graph
  in
  let nt = max 1 (min (Cs_ddg.Analysis.cpl analysis) nt_cap) in
  let preplaced_on = Array.make (Cs_machine.Machine.n_clusters machine) [] in
  List.iter
    (fun (i, c) -> preplaced_on.(c) <- i :: preplaced_on.(c))
    (List.rev (Cs_ddg.Graph.preplaced graph));
  { region; machine; analysis; rng = Cs_util.Rng.create seed; nt; preplaced_on }

let clamp_slot t slot = max 0 (min (t.nt - 1) slot)

let home_of t i =
  let ins = Cs_ddg.Graph.instr (graph t) i in
  match ins.Cs_ddg.Instr.preplace with
  | Some c -> Some c
  | None ->
    (* A consumer of a homed live-in is softly anchored to that home. *)
    let live_in_homes = t.region.Cs_ddg.Region.live_in_homes in
    List.find_map
      (fun r ->
        match Cs_ddg.Graph.defining_instr (graph t) r with
        | Some _ -> None
        | None -> Cs_ddg.Reg.Map.find_opt r live_in_homes)
      ins.Cs_ddg.Instr.srcs

let any_preplacement t = Array.exists (fun l -> l <> []) t.preplaced_on
