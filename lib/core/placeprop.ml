type mode =
  | Nearest
  | Weighted

let apply ~mode ctx w =
  let a = ctx.Context.analysis in
  let graph = Context.graph ctx in
  let far = Cs_ddg.Graph.n graph + 1 in
  (* With no preplacement at all the pass carries no information; with
     some, a cluster that owns no anchors behaves as if its closest
     anchor were infinitely far (the paper's 1/dist with dist = inf),
     which we clamp to [far]. *)
  if Context.any_preplacement ctx then begin
    let n = Weights.n w and nc = Weights.nc w in
    (* Gather every per-(instruction, cluster) factor first, then write
       each row once with a single fused sweep instead of touching it
       [nc] times from inside the cluster loop. *)
    let factors = Array.make_matrix n nc 1.0 in
    Array.iteri
      (fun c sources ->
        match mode with
        | Nearest ->
          let dist =
            if sources = [] then Array.make n max_int
            else Cs_ddg.Analysis.multi_source_distance a ~sources
          in
          for i = 0 to n - 1 do
            let d = if dist.(i) = max_int then far else max 1 dist.(i) in
            factors.(i).(c) <- 1.0 /. float_of_int d
          done
        | Weighted ->
          (* Sum of 1/d^2 over all of c's anchors: an instruction
             surrounded by several bank-c anchors is pulled harder than
             one merely adjacent to a single anchor, so stencil interior
             nodes follow the majority bank instead of tying. *)
          let pull = Array.make n 0.0 in
          List.iter
            (fun anchor ->
              let row = Cs_ddg.Analysis.distance_row a anchor in
              for i = 0 to n - 1 do
                let d = if row.(i) = max_int then far else max 1 row.(i) in
                pull.(i) <- pull.(i) +. (1.0 /. float_of_int (d * d))
              done)
            sources;
          for i = 0 to n - 1 do
            factors.(i).(c) <- 1e-6 +. pull.(i)
          done)
      ctx.Context.preplaced_on;
    for i = 0 to n - 1 do
      if not (Cs_ddg.Instr.is_preplaced (Cs_ddg.Graph.instr graph i)) then
        Weights.scale_clusters w i factors.(i)
    done
  end

let pass ?(mode = Nearest) () =
  Pass.make
    ~params:[ ("weighted", match mode with Nearest -> 0.0 | Weighted -> 1.0) ]
    ~name:"PLACEPROP" ~kind:Pass.Space (apply ~mode)
