type kind = Space | Time | Spacetime

type t = {
  name : string;
  kind : kind;
  params : (string * float) list;
  apply : Context.t -> Weights.t -> unit;
}

let make ?(params = []) ~name ~kind apply = { name; kind; params; apply }

let param_names t = List.map fst t.params

let param t key = List.assoc_opt key t.params

let kind_to_string = function
  | Space -> "space"
  | Time -> "time"
  | Spacetime -> "space+time"
