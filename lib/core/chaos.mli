(** CHAOS — a deliberately misbehaving pass for fault-injection tests
    and fuzzing. Never part of a default or tuned sequence; it exists to
    exercise the driver's pass quarantine. Modes ([mode] parameter,
    default 4):

    - [0] writes NaN into the matrix (raises inside the pass)
    - [1] writes a negative weight (raises inside the pass)
    - [2] squashes every row to zero (soft: normalization recovers)
    - [3] clobbers preplaced rows' home-cluster weights (invariant
      violation detected after the pass)
    - [4] raises [Failure] outright
    - [5] burns [delay_ms] of wall clock without touching the matrix —
      the slow-pass mode used to exercise the driver's per-pass time
      budget ([Pass_timeout] quarantine) and service deadlines

    Anything else behaves like [4]. *)

val default_mode : int

val default_delay_ms : float
(** 100 ms. *)

val pass : ?mode:int -> ?delay_ms:float -> unit -> Pass.t

val slow_pass : ?delay_ms:float -> unit -> Pass.t
(** [pass ~mode:5 ~delay_ms ()]. *)
