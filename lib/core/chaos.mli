(** CHAOS — a deliberately misbehaving pass for fault-injection tests
    and fuzzing. Never part of a default or tuned sequence; it exists to
    exercise the driver's pass quarantine. Modes ([mode] parameter,
    default 4):

    - [0] writes NaN into the matrix (raises inside the pass)
    - [1] writes a negative weight (raises inside the pass)
    - [2] squashes every row to zero (soft: normalization recovers)
    - [3] clobbers preplaced rows' home-cluster weights (invariant
      violation detected after the pass)
    - [4] (and anything else) raises [Failure] outright *)

val default_mode : int

val pass : ?mode:int -> unit -> Pass.t
