type result = {
  assignment : int array;
  preferred_slot : int array;
  trace : Trace.t;
  weights : Weights.t;
  context : Context.t;
}

let assignment_of_weights ?(cap_factor = 1.1) ctx w =
  let n = Weights.n w and nc = Weights.nc w in
  let assignment = Array.make n (-1) in
  let load = Array.make nc 0 in
  (* Hard constraints first: preplaced instructions go home and count
     toward their cluster's load. *)
  let movable = ref [] in
  for i = n - 1 downto 0 do
    match (Cs_ddg.Graph.instr (Context.graph ctx) i).Cs_ddg.Instr.preplace with
    | Some c ->
      assignment.(i) <- c;
      load.(c) <- load.(c) + 1
    | None -> movable := i :: !movable
  done;
  (* Balanced extraction: most-confident instructions claim their
     preferred cluster first; once a cluster is at capacity the next
     preference is used. This keeps the final schedule occupancy-bound
     rather than letting one popular cluster serialize the region. *)
  (* No schedule can beat max(n / clusters, CPL) cycles, so clusters may
     hold up to ~CPL instructions of a serial region without cost; only
     beyond that does a popular cluster become the bottleneck. *)
  let floor_bound =
    max
      (float_of_int n /. float_of_int nc)
      (float_of_int (Cs_ddg.Analysis.cpl ctx.Context.analysis))
  in
  let cap = max 1 (int_of_float (ceil (cap_factor *. floor_bound))) in
  let by_confidence =
    List.sort
      (fun a b -> Float.compare (Weights.confidence w b) (Weights.confidence w a))
      !movable
  in
  List.iter
    (fun i ->
      let ranked =
        List.sort
          (fun a b -> Float.compare (Weights.cluster_weight w i b) (Weights.cluster_weight w i a))
          (List.init nc (fun c -> c))
      in
      let chosen =
        match List.find_opt (fun c -> load.(c) < cap) ranked with
        | Some c -> c
        | None -> Weights.preferred_cluster w i
      in
      assignment.(i) <- chosen;
      load.(chosen) <- load.(chosen) + 1)
    by_confidence;
  assignment

(* Shared engine: applies [passes] once over an existing matrix,
   returning the trace steps of this round (in order). When the Cs_obs
   sink is enabled, each pass is wrapped in a timed span (cat "pass")
   and followed by a convergence-metrics counter (cat "converge"); both
   are single-flag-check no-ops otherwise. *)
let apply_round ?(round = 1) ?observe ctx w passes =
  let n = Weights.n w in
  let steps = ref [] in
  let before = ref (Weights.preferred_clusters w) in
  List.iter
    (fun pass ->
      Cs_obs.Obs.span ~cat:"pass"
        ~args:[ ("round", Cs_obs.Obs.Int round) ]
        pass.Pass.name
        (fun () ->
          pass.Pass.apply ctx w;
          Weights.normalize_all w);
      let after = Weights.preferred_clusters w in
      let changed = ref 0 in
      Array.iteri (fun i c -> if c <> !before.(i) then incr changed) after;
      steps :=
        { Trace.pass_name = pass.Pass.name; pass_kind = pass.Pass.kind;
          changed = !changed; total = n }
        :: !steps;
      if Cs_obs.Obs.enabled () then
        Telemetry.emit ~round ~pass:pass.Pass.name (Telemetry.measure ~prev:!before w);
      before := after;
      match observe with None -> () | Some f -> f pass.Pass.name w)
    passes;
  List.rev !steps

let finalize ctx w trace =
  let assignment = assignment_of_weights ctx w in
  let preferred_slot = Array.init (Weights.n w) (fun i -> Weights.preferred_time w i) in
  { assignment; preferred_slot; trace; weights = w; context = ctx }

let run_iterative ?seed ?nt_cap ?observe ?(max_rounds = 5) ?(epsilon = 0.02) ~machine region
    passes =
  let ctx = Context.make ?seed ?nt_cap ~machine region in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  (* Accumulate rounds newest-first and reverse once at the end: the old
     [!trace @ round_steps] rescanned the whole prefix every round. *)
  let rev_trace = ref [] in
  let rounds = ref 0 in
  let continue_iterating = ref true in
  while !continue_iterating && !rounds < max_rounds do
    incr rounds;
    let before = Weights.preferred_clusters w in
    let steps =
      Cs_obs.Obs.span ~cat:"round"
        ~args:[ ("round", Cs_obs.Obs.Int !rounds) ]
        "round"
        (fun () -> apply_round ~round:!rounds ?observe ctx w passes)
    in
    rev_trace := List.rev_append steps !rev_trace;
    let after = Weights.preferred_clusters w in
    let changed = ref 0 in
    Array.iteri (fun i c -> if c <> before.(i) then incr changed) after;
    let fraction = if n = 0 then 0.0 else float_of_int !changed /. float_of_int n in
    if Cs_obs.Obs.enabled () then
      Cs_obs.Obs.counter ~cat:"converge" "converge:round"
        [ ("round", float_of_int !rounds);
          ("churn", float_of_int !changed);
          ("churn_fraction", fraction) ];
    if fraction < epsilon then continue_iterating := false
  done;
  (finalize ctx w (List.rev !rev_trace), !rounds)

let run ?seed ?nt_cap ?observe ~machine region passes =
  let ctx = Context.make ?seed ?nt_cap ~machine region in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  let trace = apply_round ?observe ctx w passes in
  finalize ctx w trace
