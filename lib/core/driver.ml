type quarantine = { pass_name : string; round : int; reason : string }

type result = {
  assignment : int array;
  preferred_slot : int array;
  trace : Trace.t;
  weights : Weights.t;
  quarantined : quarantine list;
  context : Context.t;
}

let assignment_of_weights ?(cap_factor = 1.1) ctx w =
  let n = Weights.n w and nc = Weights.nc w in
  let machine = ctx.Context.machine in
  let graph = Context.graph ctx in
  let assignment = Array.make n (-1) in
  let load = Array.make nc 0 in
  (* Hard constraints first: preplaced instructions go home and count
     toward their cluster's load. *)
  let movable = ref [] in
  for i = n - 1 downto 0 do
    let ins = Cs_ddg.Graph.instr graph i in
    match ins.Cs_ddg.Instr.preplace with
    | Some c
      when Cs_machine.Machine.can_execute machine ~cluster:c ins.Cs_ddg.Instr.op
           || not
                (Cs_ddg.Opcode.is_memory ins.Cs_ddg.Instr.op
                && machine.Cs_machine.Machine.remote_mem_penalty > 0) ->
      assignment.(i) <- c;
      load.(c) <- load.(c) + 1
    | Some _ ->
      (* Home cluster lost the FUs for this memory op but the machine
         supports remote access: let it claim a surviving cluster like
         a movable instruction (the scheduler charges the penalty). *)
      movable := i :: !movable
    | None -> movable := i :: !movable
  done;
  (* Balanced extraction: most-confident instructions claim their
     preferred cluster first; once a cluster is at capacity the next
     preference is used. This keeps the final schedule occupancy-bound
     rather than letting one popular cluster serialize the region. *)
  (* No schedule can beat max(n / clusters, CPL) cycles, so clusters may
     hold up to ~CPL instructions of a serial region without cost; only
     beyond that does a popular cluster become the bottleneck. The
     per-cluster floor divides by the clusters that still have live
     functional units, so a degraded machine doesn't under-cap. *)
  let usable =
    let k = ref 0 in
    for c = 0 to nc - 1 do
      if Cs_machine.Machine.is_cluster_alive machine c then incr k
    done;
    max 1 !k
  in
  let floor_bound =
    max
      (float_of_int n /. float_of_int usable)
      (float_of_int (Cs_ddg.Analysis.cpl ctx.Context.analysis))
  in
  let cap = max 1 (int_of_float (ceil (cap_factor *. floor_bound))) in
  let by_confidence =
    List.sort
      (fun a b -> Float.compare (Weights.confidence w b) (Weights.confidence w a))
      !movable
  in
  List.iter
    (fun i ->
      let op = (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.op in
      (* Feasibility is a hard constraint: a cluster whose surviving FUs
         cannot execute the opcode is never a candidate, however strong
         its weights. *)
      let feasible =
        List.filter
          (fun c -> Cs_machine.Machine.can_execute machine ~cluster:c op)
          (List.init nc (fun c -> c))
      in
      (match feasible with
      | [] ->
        Cs_resil.Error.infeasible
          (Printf.sprintf "instr %d (%s): no cluster can execute it" i
             (Cs_ddg.Opcode.to_string op))
      | _ -> ());
      let ranked =
        List.sort
          (fun a b -> Float.compare (Weights.cluster_weight w i b) (Weights.cluster_weight w i a))
          feasible
      in
      let chosen =
        match List.find_opt (fun c -> load.(c) < cap) ranked with
        | Some c -> c
        | None ->
          (* Every feasible cluster is saturated; spill onto the least
             loaded one rather than an infeasible favourite. *)
          List.fold_left
            (fun best c -> if load.(c) < load.(best) then c else best)
            (List.hd feasible) feasible
      in
      assignment.(i) <- chosen;
      load.(chosen) <- load.(chosen) + 1)
    by_confidence;
  assignment

(* Quarantine gate, run after a pass and its renormalization: the matrix
   must still be a sane preference distribution, and preplaced rows must
   keep non-zero mass on their home cluster (extraction forces them home,
   but a pass erasing that mass has destroyed the hard constraint and is
   misbehaving). *)
let weights_violation ctx w =
  match Weights.validate w with
  | Error e -> Some e
  | Ok () ->
    let bad = ref None in
    Array.iteri
      (fun home instrs ->
        if !bad = None then
          List.iter
            (fun i ->
              if !bad = None && Weights.cluster_weight w i home <= 0.0 then
                bad :=
                  Some
                    (Printf.sprintf
                       "preplaced instr %d lost all weight on home cluster %d" i
                       home))
            instrs)
      ctx.Context.preplaced_on;
    !bad

(* Shared engine: applies [passes] once over an existing matrix,
   returning the trace steps of this round (in order) and any
   quarantines. Each pass runs against a snapshot: if it raises a
   classifiable exception or leaves the matrix violating invariants, the
   snapshot is restored and the sequence continues — a misbehaving pass
   degrades quality, never correctness. When the Cs_obs sink is enabled,
   each pass is wrapped in a timed span (cat "pass") and followed by a
   convergence-metrics counter (cat "converge"); quarantines emit a
   cat "resil" instant and counter. *)
let apply_round ?(round = 1) ?observe ctx w passes =
  let n = Weights.n w in
  let steps = ref [] in
  let quarantined = ref [] in
  let snapshot = Weights.copy w in
  let before = ref (Weights.preferred_clusters w) in
  List.iter
    (fun pass ->
      Weights.blit ~src:w ~dst:snapshot;
      let outcome =
        Cs_obs.Obs.span ~cat:"pass"
          ~args:[ ("round", Cs_obs.Obs.Int round) ]
          pass.Pass.name
          (fun () ->
            match
              Cs_resil.Error.protect (fun () ->
                  pass.Pass.apply ctx w;
                  Weights.normalize_all w)
            with
            | Error e -> Some (Cs_resil.Error.to_string e)
            | Ok () -> weights_violation ctx w)
      in
      (match outcome with
      | Some reason ->
        Weights.blit ~src:snapshot ~dst:w;
        quarantined := { pass_name = pass.Pass.name; round; reason } :: !quarantined;
        if Cs_obs.Obs.enabled () then begin
          Cs_obs.Obs.instant ~cat:"resil" "quarantine"
            ~args:
              [ ("pass", Cs_obs.Obs.Str pass.Pass.name);
                ("round", Cs_obs.Obs.Int round);
                ("reason", Cs_obs.Obs.Str reason) ];
          Cs_obs.Obs.counter ~cat:"resil" "quarantine"
            [ ("quarantined", 1.0) ]
        end
      | None -> ());
      let after = Weights.preferred_clusters w in
      let changed = ref 0 in
      Array.iteri (fun i c -> if c <> !before.(i) then incr changed) after;
      steps :=
        { Trace.pass_name = pass.Pass.name; pass_kind = pass.Pass.kind;
          changed = !changed; total = n }
        :: !steps;
      if Cs_obs.Obs.enabled () then
        Telemetry.emit ~round ~pass:pass.Pass.name (Telemetry.measure ~prev:!before w);
      before := after;
      match observe with None -> () | Some f -> f pass.Pass.name w)
    passes;
  (List.rev !steps, List.rev !quarantined)

let finalize ctx w trace quarantined =
  let assignment = assignment_of_weights ctx w in
  let preferred_slot = Array.init (Weights.n w) (fun i -> Weights.preferred_time w i) in
  { assignment; preferred_slot; trace; weights = w; quarantined; context = ctx }

let run_iterative ?seed ?nt_cap ?observe ?(max_rounds = 5) ?(epsilon = 0.02) ~machine region
    passes =
  let ctx = Context.make ?seed ?nt_cap ~machine region in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  (* Accumulate rounds newest-first and reverse once at the end: the old
     [!trace @ round_steps] rescanned the whole prefix every round. *)
  let rev_trace = ref [] in
  let rev_quarantined = ref [] in
  let rounds = ref 0 in
  let continue_iterating = ref true in
  while !continue_iterating && !rounds < max_rounds do
    incr rounds;
    let before = Weights.preferred_clusters w in
    let steps, quarantines =
      Cs_obs.Obs.span ~cat:"round"
        ~args:[ ("round", Cs_obs.Obs.Int !rounds) ]
        "round"
        (fun () -> apply_round ~round:!rounds ?observe ctx w passes)
    in
    rev_trace := List.rev_append steps !rev_trace;
    rev_quarantined := List.rev_append quarantines !rev_quarantined;
    let after = Weights.preferred_clusters w in
    let changed = ref 0 in
    Array.iteri (fun i c -> if c <> before.(i) then incr changed) after;
    let fraction = if n = 0 then 0.0 else float_of_int !changed /. float_of_int n in
    if Cs_obs.Obs.enabled () then
      Cs_obs.Obs.counter ~cat:"converge" "converge:round"
        [ ("round", float_of_int !rounds);
          ("churn", float_of_int !changed);
          ("churn_fraction", fraction) ];
    if fraction < epsilon then continue_iterating := false
  done;
  (finalize ctx w (List.rev !rev_trace) (List.rev !rev_quarantined), !rounds)

let run ?seed ?nt_cap ?observe ~machine region passes =
  let ctx = Context.make ?seed ?nt_cap ~machine region in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  let trace, quarantined = apply_round ?observe ctx w passes in
  finalize ctx w trace quarantined
