type quarantine = { pass_name : string; round : int; reason : string }

type result = {
  assignment : int array;
  preferred_slot : int array;
  trace : Trace.t;
  weights : Weights.t;
  quarantined : quarantine list;
  context : Context.t;
  timed_out : bool;
}

let assignment_of_weights ?(cap_factor = 1.1) ctx w =
  let n = Weights.n w and nc = Weights.nc w in
  let machine = ctx.Context.machine in
  let graph = Context.graph ctx in
  let assignment = Array.make n (-1) in
  let load = Array.make nc 0 in
  (* Hard constraints first: preplaced instructions go home and count
     toward their cluster's load. *)
  let movable = Array.make n false in
  let n_movable = ref 0 in
  for i = n - 1 downto 0 do
    let ins = Cs_ddg.Graph.instr graph i in
    match ins.Cs_ddg.Instr.preplace with
    | Some c
      when Cs_machine.Machine.can_execute machine ~cluster:c ins.Cs_ddg.Instr.op
           || not
                (Cs_ddg.Opcode.is_memory ins.Cs_ddg.Instr.op
                && machine.Cs_machine.Machine.remote_mem_penalty > 0) ->
      assignment.(i) <- c;
      load.(c) <- load.(c) + 1
    | Some _ ->
      (* Home cluster lost the FUs for this memory op but the machine
         supports remote access: let it claim a surviving cluster like
         a movable instruction (the scheduler charges the penalty). *)
      movable.(i) <- true;
      incr n_movable
    | None ->
      movable.(i) <- true;
      incr n_movable
  done;
  (* Balanced extraction: most-confident instructions claim their
     preferred cluster first; once a cluster is at capacity the next
     preference is used. This keeps the final schedule occupancy-bound
     rather than letting one popular cluster serialize the region. *)
  (* No schedule can beat max(n / clusters, CPL) cycles, so clusters may
     hold up to ~CPL instructions of a serial region without cost; only
     beyond that does a popular cluster become the bottleneck. The
     per-cluster floor divides by the clusters that still have live
     functional units, so a degraded machine doesn't under-cap. *)
  let usable =
    let k = ref 0 in
    for c = 0 to nc - 1 do
      if Cs_machine.Machine.is_cluster_alive machine c then incr k
    done;
    max 1 !k
  in
  let floor_bound =
    max
      (float_of_int n /. float_of_int usable)
      (float_of_int (Cs_ddg.Analysis.cpl ctx.Context.analysis))
  in
  let cap = max 1 (int_of_float (ceil (cap_factor *. floor_bound))) in
  (* Flat extraction: confidences are computed once per instruction (the
     list-based path re-derived the O(nc) top-two ratio inside every
     sort comparison and allocated a fresh candidate list per
     instruction). Order is descending confidence with instruction id
     as the tie-break — the same order the stable list sort produced. *)
  let conf = Array.make n 0.0 in
  let order = Array.make !n_movable 0 in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if movable.(i) then begin
      conf.(i) <- Weights.confidence w i;
      order.(!next) <- i;
      incr next
    end
  done;
  Array.sort
    (fun a b ->
      let c = Float.compare conf.(b) conf.(a) in
      if c <> 0 then c else compare a b)
    order;
  Array.iter
    (fun i ->
      let op = (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.op in
      (* Feasibility is a hard constraint: a cluster whose surviving FUs
         cannot execute the opcode is never a candidate, however strong
         its weights. One ascending sweep keeps the old ranked-list
         semantics: among clusters with spare capacity the strongest
         cluster-marginal wins with ties to the smallest id; if all are
         saturated, spill onto the least-loaded feasible cluster. *)
      let chosen = ref (-1) in
      let chosen_w = ref neg_infinity in
      let least = ref (-1) in
      for c = 0 to nc - 1 do
        if Cs_machine.Machine.can_execute machine ~cluster:c op then begin
          if !least < 0 || load.(c) < load.(!least) then least := c;
          if load.(c) < cap then begin
            let cw = Weights.cluster_weight w i c in
            if cw > !chosen_w then begin
              chosen := c;
              chosen_w := cw
            end
          end
        end
      done;
      if !least < 0 then
        Cs_resil.Error.infeasible
          (Printf.sprintf "instr %d (%s): no cluster can execute it" i
             (Cs_ddg.Opcode.to_string op));
      let target = if !chosen >= 0 then !chosen else !least in
      assignment.(i) <- target;
      load.(target) <- load.(target) + 1)
    order;
  assignment

(* Quarantine gate, run after a pass and its renormalization: the matrix
   must still be a sane preference distribution, and preplaced rows must
   keep non-zero mass on their home cluster (extraction forces them home,
   but a pass erasing that mass has destroyed the hard constraint and is
   misbehaving). *)
(* The gate only inspects rows the pass actually wrote: untouched rows
   passed the previous gate and have not changed since (dirty-row
   tracking makes that an invariant, not an assumption). *)
let weights_violation ctx w =
  match Weights.validate_touched w with
  | Error e -> Some e
  | Ok () ->
    let bad = ref None in
    Array.iteri
      (fun home instrs ->
        if !bad = None then
          List.iter
            (fun i ->
              if
                !bad = None && Weights.is_touched w i
                && Weights.cluster_weight w i home <= 0.0
              then
                bad :=
                  Some
                    (Printf.sprintf
                       "preplaced instr %d lost all weight on home cluster %d" i
                       home))
            instrs)
      ctx.Context.preplaced_on;
    !bad

(* Shared engine: applies [passes] once over an existing matrix,
   returning the trace steps of this round (in order) and any
   quarantines. Each pass runs against a snapshot: if it raises a
   classifiable exception or leaves the matrix violating invariants, the
   snapshot is restored and the sequence continues — a misbehaving pass
   degrades quality, never correctness. When the Cs_obs sink is enabled,
   each pass is wrapped in a timed span (cat "pass") and followed by a
   convergence-metrics counter (cat "converge"); quarantines emit a
   cat "resil" instant and counter. *)
let deadline_expired = function
  | None -> false
  | Some t -> Cs_obs.Clock.now () >= t

let apply_round ?(round = 1) ?observe ?deadline ?pass_budget_s ctx w passes =
  let n = Weights.n w in
  let steps = ref [] in
  let quarantined = ref [] in
  let snapshot = Weights.copy w in
  let before = ref (Weights.preferred_clusters w) in
  let timed_out = ref false in
  let rec loop = function
    | [] -> ()
    | _ :: _ when deadline_expired deadline ->
      (* Anytime early exit: W is a valid preference matrix after every
         pass, so stopping here still yields an extractable schedule.
         The skipped suffix is simply not recorded in the trace. *)
      timed_out := true;
      if Cs_obs.Obs.enabled () then
        Cs_obs.Obs.instant ~cat:"resil" "deadline"
          ~args:[ ("round", Cs_obs.Obs.Int round) ]
    | pass :: rest ->
      (* Dirty-row protocol: [snapshot] already mirrors [w] (copied once
         above, then resynced after every pass), so instead of a full
         matrix blit per pass we clear the touched set, let the pass
         write, and afterwards move only the touched rows — snapshot→w
         on rollback, w→snapshot on commit. A pass writing k rows costs
         O(k) bookkeeping, not O(n). *)
      Weights.clear_touched w;
      let t0 = Cs_obs.Clock.now () in
      let outcome =
        Cs_obs.Obs.span ~cat:"pass"
          ~args:[ ("round", Cs_obs.Obs.Int round) ]
          pass.Pass.name
          (fun () ->
            match
              Cs_resil.Error.protect (fun () ->
                  pass.Pass.apply ctx w;
                  Weights.normalize_touched w)
            with
            | Error e -> Some (Cs_resil.Error.to_string e)
            | Ok () -> weights_violation ctx w)
      in
      let elapsed = Cs_obs.Clock.since t0 in
      let outcome =
        (* A pass cannot be preempted mid-flight, so budget enforcement
           is post-hoc: an overrun beyond the per-pass budget is treated
           exactly like a corrupting pass — rolled back and quarantined —
           so a pathologically slow heuristic degrades quality, never
           latency beyond one overrun. *)
        match (outcome, pass_budget_s) with
        | Some _, _ | _, None -> outcome
        | None, Some budget when elapsed > budget ->
          Some
            (Cs_resil.Error.to_string
               (Cs_resil.Error.Pass_timeout
                  (Printf.sprintf "%s ran %.1f ms (budget %.1f ms)" pass.Pass.name
                     (1000.0 *. elapsed) (1000.0 *. budget))))
        | None, Some _ -> None
      in
      let touched = Weights.touched_rows w in
      (match outcome with
      | Some reason ->
        Weights.sync_rows ~rows:touched ~src:snapshot ~dst:w;
        quarantined := { pass_name = pass.Pass.name; round; reason } :: !quarantined;
        if Cs_obs.Obs.enabled () then begin
          Cs_obs.Obs.instant ~cat:"resil" "quarantine"
            ~args:
              [ ("pass", Cs_obs.Obs.Str pass.Pass.name);
                ("round", Cs_obs.Obs.Int round);
                ("reason", Cs_obs.Obs.Str reason) ];
          Cs_obs.Obs.counter ~cat:"resil" "quarantine"
            [ ("quarantined", 1.0) ]
        end
      | None -> Weights.sync_rows ~rows:touched ~src:w ~dst:snapshot);
      let after = Weights.preferred_clusters w in
      let changed = ref 0 in
      Array.iteri (fun i c -> if c <> !before.(i) then incr changed) after;
      steps :=
        { Trace.pass_name = pass.Pass.name; pass_kind = pass.Pass.kind;
          changed = !changed; total = n }
        :: !steps;
      if Cs_obs.Obs.enabled () then
        Telemetry.emit ~round ~pass:pass.Pass.name (Telemetry.measure ~prev:!before w);
      before := after;
      (match observe with None -> () | Some f -> f pass.Pass.name w);
      loop rest
  in
  loop passes;
  (List.rev !steps, List.rev !quarantined, !timed_out)

let finalize ?(timed_out = false) ctx w trace quarantined =
  let assignment = assignment_of_weights ctx w in
  let preferred_slot = Array.init (Weights.n w) (fun i -> Weights.preferred_time w i) in
  { assignment; preferred_slot; trace; weights = w; quarantined; context = ctx;
    timed_out }

let run_iterative ?seed ?nt_cap ?observe ?deadline ?pass_budget_s ?(max_rounds = 5)
    ?(epsilon = 0.02) ~machine region passes =
  let ctx = Context.make ?seed ?nt_cap ~machine region in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  (* Accumulate rounds newest-first and reverse once at the end: the old
     [!trace @ round_steps] rescanned the whole prefix every round. *)
  let rev_trace = ref [] in
  let rev_quarantined = ref [] in
  let rounds = ref 0 in
  let timed_out = ref false in
  let continue_iterating = ref true in
  while !continue_iterating && !rounds < max_rounds do
    incr rounds;
    let before = Weights.preferred_clusters w in
    let steps, quarantines, round_timed_out =
      Cs_obs.Obs.span ~cat:"round"
        ~args:[ ("round", Cs_obs.Obs.Int !rounds) ]
        "round"
        (fun () ->
          apply_round ~round:!rounds ?observe ?deadline ?pass_budget_s ctx w passes)
    in
    rev_trace := List.rev_append steps !rev_trace;
    rev_quarantined := List.rev_append quarantines !rev_quarantined;
    let after = Weights.preferred_clusters w in
    let changed = ref 0 in
    Array.iteri (fun i c -> if c <> before.(i) then incr changed) after;
    let fraction = if n = 0 then 0.0 else float_of_int !changed /. float_of_int n in
    if Cs_obs.Obs.enabled () then
      Cs_obs.Obs.counter ~cat:"converge" "converge:round"
        [ ("round", float_of_int !rounds);
          ("churn", float_of_int !changed);
          ("churn_fraction", fraction) ];
    if round_timed_out then begin
      timed_out := true;
      continue_iterating := false
    end
    else if fraction < epsilon then continue_iterating := false
  done;
  ( finalize ~timed_out:!timed_out ctx w (List.rev !rev_trace)
      (List.rev !rev_quarantined),
    !rounds )

let run ?seed ?nt_cap ?observe ?deadline ?pass_budget_s ~machine region passes =
  let ctx = Context.make ?seed ?nt_cap ~machine region in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  let trace, quarantined, timed_out =
    apply_round ?observe ?deadline ?pass_budget_s ctx w passes
  in
  finalize ~timed_out ctx w trace quarantined
