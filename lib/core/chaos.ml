let default_mode = 4
let default_delay_ms = 100.0

(* Spin on the monotonic clock rather than sleeping: a blocked sleep
   can be interrupted by signals, and the point of this mode is to
   charge wall-clock time against the driver's per-pass budget. *)
let stall ms =
  let t0 = Cs_obs.Clock.now () in
  while Cs_obs.Clock.since t0 < ms /. 1000.0 do
    ignore (Sys.opaque_identity ())
  done

let apply ~mode ~delay_ms ctx w =
  match mode with
  | 0 ->
    (* Weights.set rejects non-finite values, so this dies mid-pass. *)
    Weights.set w 0 0 0 Float.nan
  | 1 -> Weights.set w 0 0 0 (-1.0)
  | 2 ->
    (* Soft corruption: squash everything to zero. Normalization resets
       the rows to uniform, so this only destroys information. *)
    for i = 0 to Weights.n w - 1 do
      for c = 0 to Weights.nc w - 1 do
        Weights.scale_cluster w i c 0.0
      done
    done
  | 3 ->
    (* Clobber preplaced rows: erase every preplaced instruction's
       preference for its home cluster, violating the pinning invariant
       the driver checks after each pass. *)
    Array.iteri
      (fun home instrs ->
        List.iter (fun i -> Weights.scale_cluster w i home 0.0) instrs)
      ctx.Context.preplaced_on
  | 5 ->
    (* Slow pass: burn [delay_ms] of wall clock without touching the
       matrix. Harmless to quality; exists to overrun the driver's
       per-pass budget and trip the Pass_timeout quarantine, and to
       stretch rounds past request deadlines in the batch service. *)
    stall delay_ms
  | _ -> failwith "CHAOS: injected pass failure"

let pass ?(mode = default_mode) ?(delay_ms = default_delay_ms) () =
  Pass.make
    ~params:[ ("mode", float_of_int mode); ("delay_ms", delay_ms) ]
    ~name:"CHAOS" ~kind:Pass.Spacetime
    (fun ctx w -> apply ~mode ~delay_ms ctx w)

let slow_pass ?(delay_ms = default_delay_ms) () = pass ~mode:5 ~delay_ms ()
