let default_mode = 4

let apply ~mode ctx w =
  match mode with
  | 0 ->
    (* Weights.set rejects non-finite values, so this dies mid-pass. *)
    Weights.set w 0 0 0 Float.nan
  | 1 -> Weights.set w 0 0 0 (-1.0)
  | 2 ->
    (* Soft corruption: squash everything to zero. Normalization resets
       the rows to uniform, so this only destroys information. *)
    for i = 0 to Weights.n w - 1 do
      for c = 0 to Weights.nc w - 1 do
        Weights.scale_cluster w i c 0.0
      done
    done
  | 3 ->
    (* Clobber preplaced rows: erase every preplaced instruction's
       preference for its home cluster, violating the pinning invariant
       the driver checks after each pass. *)
    Array.iteri
      (fun home instrs ->
        List.iter (fun i -> Weights.scale_cluster w i home 0.0) instrs)
      ctx.Context.preplaced_on
  | _ -> failwith "CHAOS: injected pass failure"

let pass ?(mode = default_mode) () =
  Pass.make
    ~params:[ ("mode", float_of_int mode) ]
    ~name:"CHAOS" ~kind:Pass.Spacetime
    (fun ctx w -> apply ~mode ctx w)
