let walk ctx w ~blend_keep ~source ~conf_source ~step_targets =
  let graph = Context.graph ctx in
  let rec go cur =
    let next =
      List.fold_left
        (fun acc s ->
          let conf_s = Weights.confidence w s in
          if conf_s < conf_source then
            match acc with
            | Some (bc, _) when bc <= conf_s -> acc
            | Some _ | None -> Some (conf_s, s)
          else acc)
        None (step_targets graph cur)
    in
    match next with
    | None -> ()
    | Some (_, s) ->
      Weights.blend w ~dst:s ~src:source ~keep:(1.0 -. blend_keep);
      go s
  in
  go source

let apply ~confidence_threshold ~blend_keep ctx w =
  (* Visit confident instructions from most to least confident.
     Rows with no runner-up report [confidence_sentinel] (the old code
     saw [infinity] and dropped them via [Float.is_finite]); excluding
     the sentinel keeps them out of the walk exactly as before. *)
  let conf = Array.init (Weights.n w) (Weights.confidence w) in
  let order =
    List.init (Weights.n w) (fun i -> i)
    |> List.filter (fun i ->
           conf.(i) >= confidence_threshold
           && conf.(i) < Weights.confidence_sentinel)
    |> List.sort (fun a b -> Float.compare conf.(b) conf.(a))
  in
  List.iter
    (fun ih ->
      let conf_source = Weights.confidence w ih in
      walk ctx w ~blend_keep ~source:ih ~conf_source ~step_targets:Cs_ddg.Graph.succs;
      walk ctx w ~blend_keep ~source:ih ~conf_source ~step_targets:Cs_ddg.Graph.preds)
    order

let pass ?(confidence_threshold = 1.5) ?(blend_keep = 0.5) () =
  Pass.make
    ~params:
      [ ("confidence_threshold", confidence_threshold); ("blend_keep", blend_keep) ]
    ~name:"PATHPROP" ~kind:Pass.Space
    (apply ~confidence_threshold ~blend_keep)
