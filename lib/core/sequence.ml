let raw_default () =
  [ Inittime.pass (); Placeprop.pass (); Load.pass (); Place.pass (); Path.pass ();
    Pathprop.pass (); Level.pass ~stride:4 (); Pathprop.pass (); Comm.pass ();
    Pathprop.pass (); Emphcp.pass () ]

let vliw_default () =
  [ Inittime.pass (); Noise.pass (); First.pass (); Path.pass (); Load.pass ();
    Comm.pass (); Place.pass (); Placeprop.pass (); Load.pass (); Comm.pass ();
    Emphcp.pass () ]

(* Builders take a parameter assignment; a missing key falls through to
   the pass module's own default, so defaults are defined in exactly one
   place. Booleans are 0/1, integers are exact floats. *)

let registry : (string * ((string * float) list -> Pass.t)) list =
  let f ps k = List.assoc_opt k ps in
  let fi ps k = Option.map int_of_float (f ps k) in
  let fb ps k = Option.map (fun v -> v <> 0.0) (f ps k) in
  [ ("INITTIME", fun _ -> Inittime.pass ());
    ("NOISE", fun ps -> Noise.pass ?amplitude:(f ps "amplitude") ());
    ("PLACE",
     fun ps -> Place.pass ?factor:(f ps "factor") ?live_in_factor:(f ps "live_in_factor") ());
    ("FIRST", fun ps -> First.pass ?factor:(f ps "factor") ());
    ("PATH",
     fun ps ->
       Path.pass ?boost:(f ps "boost") ?confidence_threshold:(f ps "confidence_threshold") ());
    ("COMM",
     fun ps ->
       Comm.pass ?eps:(f ps "eps") ?grand:(fb ps "grand") ?grand_weight:(f ps "grand_weight")
         ?per_slot:(fb ps "per_slot") ?strengthen_preferred:(f ps "strengthen_preferred") ());
    ("PLACEPROP",
     fun ps ->
       let mode =
         Option.map
           (fun w -> if w then Placeprop.Weighted else Placeprop.Nearest)
           (fb ps "weighted")
       in
       Placeprop.pass ?mode ());
    ("LOAD", fun _ -> Load.pass ());
    ("LEVEL",
     fun ps ->
       Level.pass ?stride:(fi ps "stride") ?granularity:(fi ps "granularity")
         ?confidence_threshold:(f ps "confidence_threshold") ?boost:(f ps "boost") ());
    ("PATHPROP",
     fun ps ->
       Pathprop.pass ?confidence_threshold:(f ps "confidence_threshold")
         ?blend_keep:(f ps "blend_keep") ());
    ("EMPHCP", fun ps -> Emphcp.pass ?factor:(f ps "factor") ());
    ("FEASIBLE", fun _ -> Feasible.pass ());
    ("REGPRESS",
     fun ps ->
       Regpress.pass
         ?registers_per_cluster:(fi ps "registers_per_cluster")
         ?confidence_threshold:(f ps "confidence_threshold") ());
    ("CLUSTER", fun ps -> Cluster.pass ?boost:(f ps "boost") ());
    (* Fault-injection pass; registered so repro files carrying it round
       trip, but excluded from the autotuner's search space. *)
    ("CHAOS", fun ps -> Chaos.pass ?mode:(fi ps "mode") ?delay_ms:(f ps "delay_ms") ()) ]

let available = List.map fst registry

let default_params name =
  List.assoc_opt (String.uppercase_ascii name) registry
  |> Option.map (fun build -> (build []).Pass.params)

let of_name name =
  let upper = String.uppercase_ascii name in
  List.assoc_opt upper registry |> Option.map (fun build -> build [])

(* [%.12g] keeps every parameter we produce (defaults, halvings,
   doublings, small perturbations) exact through a round trip while
   printing integers as integers. *)
let float_to_string v = Printf.sprintf "%.12g" v

let to_spec ?(full = false) pass =
  let defaults =
    match default_params pass.Pass.name with Some d -> d | None -> []
  in
  let shown =
    List.filter
      (fun (k, v) ->
        full || match List.assoc_opt k defaults with Some d -> d <> v | None -> true)
      pass.Pass.params
  in
  if shown = [] then pass.Pass.name
  else
    pass.Pass.name ^ "="
    ^ String.concat ":" (List.map (fun (k, v) -> k ^ "=" ^ float_to_string v) shown)

let of_spec spec =
  let spec = String.trim spec in
  let name, param_str =
    match String.index_opt spec '=' with
    | None -> (spec, None)
    | Some i ->
      (String.sub spec 0 i, Some (String.sub spec (i + 1) (String.length spec - i - 1)))
  in
  let upper = String.uppercase_ascii name in
  match List.assoc_opt upper registry with
  | None ->
    Error
      (Printf.sprintf "unknown pass %S (available: %s)" name (String.concat ", " available))
  | Some build ->
    let valid_keys = List.map fst (build []).Pass.params in
    let parse_param kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "%s: malformed parameter %S (want key=value)" upper kv)
      | Some i ->
        let k = String.lowercase_ascii (String.trim (String.sub kv 0 i)) in
        let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        if not (List.mem k valid_keys) then
          Error
            (Printf.sprintf "%s: unknown parameter %S (available: %s)" upper k
               (String.concat ", " valid_keys))
        else
          (match float_of_string_opt v with
          | Some fv -> Ok (k, fv)
          | None -> Error (Printf.sprintf "%s: parameter %s=%S is not a number" upper k v))
    in
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | kv :: rest ->
        (match parse_param kv with
        | Ok p -> parse_all (p :: acc) rest
        | Error _ as e -> e)
    in
    (match param_str with
    | None -> Ok (build [])
    | Some s ->
      (match parse_all [] (String.split_on_char ':' s) with
      | Ok params -> Ok (build params)
      | Error msg -> Error msg))

let of_names specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest ->
      (match of_spec spec with
      | Ok p -> go (p :: acc) rest
      | Error _ as e -> e)
  in
  go [] specs

let names passes = List.map (to_spec ~full:false) passes
