(** Convergence telemetry (the paper's Sec. 4-5 story, made measurable).

    Each convergent pass nudges the preference matrix; convergence shows
    up as the preferred assignment stabilizing (falling churn), the
    scheduler growing more certain (rising confidence), and the weight
    rows sharpening (falling entropy). {!measure} computes all three
    from a {!Weights.t} snapshot so the driver can emit a
    Fig. 4 / Fig. 7-style convergence curve per pass per round through
    {!Cs_obs}. *)

type metrics = {
  churn : int;  (** instructions whose preferred cluster changed *)
  total : int;  (** instructions measured *)
  mean_confidence : float;
  (** mean over instructions of {!Weights.confidence} (top-two cluster
      ratio), clamped at {!confidence_cap} so fully converged rows stay
      finite and exportable *)
  mean_entropy : float;
  (** mean over instructions of the Shannon entropy (bits) of the
      cluster-marginal distribution; [log2 clusters] when uniform, 0
      when fully converged *)
}

val confidence_cap : float
(** Clamp applied to per-instruction confidence (1000.0). A row with no
    runner-up reports {!Weights.confidence_sentinel} (1e9, already
    finite); the cap bounds it further so one unanimous row cannot
    drown the mean. *)

val churn_fraction : metrics -> float

val measure : prev:int array -> Weights.t -> metrics
(** [measure ~prev w] compares [w]'s current preferred clusters against
    the snapshot [prev] (from {!Weights.preferred_clusters}). *)

val mean_confidence : Weights.t -> float
val mean_row_entropy : Weights.t -> float

val emit : ?round:int -> pass:string -> metrics -> unit
(** Record the metrics as a [cat = "converge"] counter event named
    ["converge:PASS"]; a no-op when the {!Cs_obs.Obs} sink is
    disabled. *)
