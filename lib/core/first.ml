let apply ~factor (_ : Context.t) w =
  for i = 0 to Weights.n w - 1 do
    Weights.scale_cluster w i 0 factor
  done

let pass ?(factor = 1.2) () =
  Pass.make ~params:[ ("factor", factor) ] ~name:"FIRST" ~kind:Pass.Space (apply ~factor)
