let apply ctx w =
  let graph = Context.graph ctx in
  let machine = ctx.Context.machine in
  let nc = Weights.nc w in
  let factors = Array.make nc 1.0 in
  for i = 0 to Weights.n w - 1 do
    let op = (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.op in
    let any_infeasible = ref false in
    for c = 0 to nc - 1 do
      if Cs_machine.Machine.can_execute machine ~cluster:c op then
        factors.(c) <- 1.0
      else begin
        factors.(c) <- 0.0;
        any_infeasible := true
      end
    done;
    (* Rows that are feasible everywhere are skipped entirely, so the
       common all-alive machine leaves the touched set empty. *)
    if !any_infeasible then Weights.scale_clusters w i factors
  done

let pass () = Pass.make ~name:"FEASIBLE" ~kind:Pass.Space apply
