(* DSC-style chain grouping: walk in topological order and merge each
   instruction with the predecessor that determines its ASAP time (its
   critical incoming edge) — the same clustering Rawcc's first phase
   performs — refusing merges that would join different preplacement
   homes. *)
let build_groups ctx =
  let graph = Context.graph ctx in
  let a = ctx.Context.analysis in
  let n = Cs_ddg.Graph.n graph in
  let uf = Cs_util.Union_find.create n in
  let pin = Array.make n None in
  for i = 0 to n - 1 do
    pin.(i) <- Context.home_of ctx i
  done;
  let pin_of i = pin.(Cs_util.Union_find.find uf i) in
  let merge p i =
    match (pin_of p, pin_of i) with
    | Some a, Some b when a <> b -> ()
    | pa, pb ->
      let keep = match (pa, pb) with Some c, _ | _, Some c -> Some c | None, None -> None in
      let root = Cs_util.Union_find.union uf p i in
      pin.(root) <- keep
  in
  Array.iter
    (fun i ->
      let critical_pred =
        List.fold_left
          (fun acc p ->
            let arrives = Cs_ddg.Analysis.earliest a p + Cs_ddg.Analysis.latency a p in
            if arrives = Cs_ddg.Analysis.earliest a i then
              match acc with
              | Some q when Cs_ddg.Analysis.height a q >= Cs_ddg.Analysis.height a p -> acc
              | Some _ | None -> Some p
            else acc)
          None (Cs_ddg.Graph.preds graph i)
      in
      match critical_pred with Some p -> merge p i | None -> ())
    (Cs_ddg.Graph.topo_order graph);
  let tbl = Cs_util.Union_find.groups uf in
  Hashtbl.fold (fun _ members acc -> if List.length members >= 2 then members :: acc else acc)
    tbl []
  |> List.sort compare

let groups ctx = build_groups ctx

let apply ~boost ctx w =
  let nc = Weights.nc w in
  List.iter
    (fun members ->
      (* Consensus: the cluster carrying the group's summed marginal
         preference; every member is pulled there. *)
      let best = ref 0 and best_weight = ref neg_infinity in
      for c = 0 to nc - 1 do
        let total =
          List.fold_left (fun acc m -> acc +. Weights.cluster_weight w m c) 0.0 members
        in
        if total > !best_weight then begin
          best := c;
          best_weight := total
        end
      done;
      List.iter (fun m -> Weights.scale_cluster w m !best boost) members)
    (build_groups ctx)

let pass ?(boost = 2.0) () =
  Pass.make ~params:[ ("boost", boost) ] ~name:"CLUSTER" ~kind:Pass.Space (apply ~boost)
