let apply ~amplitude ctx w =
  let mean = 1.0 /. float_of_int (Weights.nc w * Weights.nt w) in
  let bound = amplitude *. mean in
  let rng = ctx.Context.rng in
  for i = 0 to Weights.n w - 1 do
    (* Only perturb feasible slots: zeroed slots stay zero so NOISE
       cannot undo INITTIME. The guard also keeps the RNG draw order
       identical to the per-element loop this kernel replaced. *)
    Weights.map_row w i (fun _ _ v ->
        if v > 0.0 then v +. Cs_util.Rng.float rng bound else v)
  done

let pass ?(amplitude = 1.0) () =
  Pass.make ~params:[ ("amplitude", amplitude) ] ~name:"NOISE" ~kind:Pass.Space
    (apply ~amplitude)
