let apply ~amplitude ctx w =
  let mean = 1.0 /. float_of_int (Weights.nc w * Weights.nt w) in
  let bound = amplitude *. mean in
  for i = 0 to Weights.n w - 1 do
    for c = 0 to Weights.nc w - 1 do
      for tt = 0 to Weights.nt w - 1 do
        (* Only perturb feasible slots: zeroed slots stay zero so NOISE
           cannot undo INITTIME. *)
        if Weights.get w i c tt > 0.0 then
          Weights.add w i c tt (Cs_util.Rng.float ctx.Context.rng bound)
      done
    done
  done

let pass ?(amplitude = 1.0) () =
  Pass.make ~params:[ ("amplitude", amplitude) ] ~name:"NOISE" ~kind:Pass.Space
    (apply ~amplitude)
