(** Named pass sequences (paper Table 1) and a by-name pass registry so
    sequences — including tuned, parameterized ones — can be described
    on a command line and round-tripped losslessly.

    The textual form of one pass is [NAME] or
    [NAME=key=value:key=value:...], e.g. [LEVEL=stride=2:boost=3.5].
    Keys are the parameter names of the pass constructor (booleans
    encoded 0/1, integers exact); omitted keys keep the constructor
    default. {!names} emits only non-default parameters, so default
    sequences still print as plain pass names. *)

val raw_default : unit -> Pass.t list
(** Table 1(a): INITTIME, PLACEPROP, LOAD, PLACE, PATH, PATHPROP, LEVEL,
    PATHPROP, COMM, PATHPROP, EMPHCP — the sequence used for the Raw
    machine. *)

val vliw_default : unit -> Pass.t list
(** Table 1(b) — INITTIME, NOISE, FIRST, PATH, COMM, PLACE, PLACEPROP,
    COMM, EMPHCP — with a LOAD inserted after PATH and after PLACEPROP.
    The paper selected its per-architecture pass parameters by
    trial-and-error (Sec. 4); without the two LOADs our FIRST bias
    snowballs through COMM and overloads cluster 0, and the paper's
    Fig. 8 margins over UAS/PCC do not reproduce. See DESIGN.md. *)

val available : string list
(** Names accepted by {!of_names}, including the extension passes
    FEASIBLE, REGPRESS, CLUSTER (the paper's suggested clustering
    integration, Sec. 5), and the fault-injection pass CHAOS. *)

val default_params : string -> (string * float) list option
(** [default_params name] is the parameter list (keys and default
    values, in declaration order) of the named pass, or [None] for an
    unknown pass. Passes without parameters return [Some []]. *)

val of_name : string -> Pass.t option
(** Case-insensitive lookup with default parameters. *)

val of_spec : string -> (Pass.t, string) result
(** Parse one [NAME] or [NAME=key=value:...] token. Errors name the
    unknown pass, unknown parameter key, or malformed value. *)

val of_names : string list -> (Pass.t list, string) result
(** All-or-nothing parse of {!of_spec} tokens; the error names the
    offending token. *)

val to_spec : ?full:bool -> Pass.t -> string
(** Serialize one pass. By default only non-default parameters are
    emitted; [~full:true] emits every parameter (canonical form used as
    the autotuner's fitness-cache key). *)

val names : Pass.t list -> string list
(** [List.map (to_spec ~full:false)] — feeding the result back through
    {!of_names} reconstructs the sequence exactly, parameters included. *)
