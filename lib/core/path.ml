let least_loaded_cluster w =
  let best = ref 0 and best_load = ref infinity in
  for c = 0 to Weights.nc w - 1 do
    let load = ref 0.0 in
    for i = 0 to Weights.n w - 1 do
      load := !load +. Weights.cluster_weight w i c
    done;
    if !load < !best_load then begin
      best := c;
      best_load := !load
    end
  done;
  !best

let apply ~boost ~confidence_threshold ctx w =
  let path = Array.of_list (Cs_ddg.Analysis.critical_path ctx.Context.analysis) in
  let len = Array.length path in
  if len > 0 then begin
    (* Anchors: positions on the path with a hard home or a confident
       existing preference. *)
    let anchors = ref [] in
    Array.iteri
      (fun pos i ->
        match Context.home_of ctx i with
        | Some c -> anchors := (pos, c) :: !anchors
        | None ->
          if Weights.confidence w i >= confidence_threshold then
            anchors := (pos, Weights.preferred_cluster w i) :: !anchors)
      path;
    let anchors = List.rev !anchors in
    let cluster_for_pos pos =
      match anchors with
      | [] -> None
      | _ ->
        (* Nearest anchor by path-position distance; earlier anchor wins ties. *)
        let best =
          List.fold_left
            (fun acc (apos, c) ->
              let d = abs (apos - pos) in
              match acc with
              | Some (bd, _) when bd <= d -> acc
              | Some _ | None -> Some (d, c))
            None anchors
        in
        Option.map snd best
    in
    let fallback = lazy (least_loaded_cluster w) in
    Array.iteri
      (fun pos i ->
        let target =
          match cluster_for_pos pos with Some c -> c | None -> Lazy.force fallback
        in
        Weights.scale_cluster w i target boost)
      path
  end

let pass ?(boost = 3.0) ?(confidence_threshold = 2.0) () =
  Pass.make
    ~params:[ ("boost", boost); ("confidence_threshold", confidence_threshold) ]
    ~name:"PATH" ~kind:Pass.Space
    (apply ~boost ~confidence_threshold)
