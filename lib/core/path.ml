let least_loaded_cluster w =
  let nc = Weights.nc w in
  (* One row-major sweep over the cluster-marginal cache (it is stored
     instr-major, so the old cluster-outer loop walked it with stride
     [nc]); per-cluster partial sums still accumulate in ascending
     instruction order, so the totals are bit-identical. *)
  let load = Array.make nc 0.0 in
  for i = 0 to Weights.n w - 1 do
    for c = 0 to nc - 1 do
      load.(c) <- load.(c) +. Weights.cluster_weight w i c
    done
  done;
  let best = ref 0 in
  for c = 1 to nc - 1 do
    if load.(c) < load.(!best) then best := c
  done;
  !best

let apply ~boost ~confidence_threshold ctx w =
  let path = Array.of_list (Cs_ddg.Analysis.critical_path ctx.Context.analysis) in
  let len = Array.length path in
  if len > 0 then begin
    (* Anchors: positions on the path with a hard home or a confident
       existing preference. *)
    let anchors = ref [] in
    Array.iteri
      (fun pos i ->
        match Context.home_of ctx i with
        | Some c -> anchors := (pos, c) :: !anchors
        | None ->
          if Weights.confidence w i >= confidence_threshold then
            anchors := (pos, Weights.preferred_cluster w i) :: !anchors)
      path;
    let anchors = List.rev !anchors in
    let cluster_for_pos pos =
      match anchors with
      | [] -> None
      | _ ->
        (* Nearest anchor by path-position distance; earlier anchor wins ties. *)
        let best =
          List.fold_left
            (fun acc (apos, c) ->
              let d = abs (apos - pos) in
              match acc with
              | Some (bd, _) when bd <= d -> acc
              | Some _ | None -> Some (d, c))
            None anchors
        in
        Option.map snd best
    in
    let fallback = lazy (least_loaded_cluster w) in
    Array.iteri
      (fun pos i ->
        let target =
          match cluster_for_pos pos with Some c -> c | None -> Lazy.force fallback
        in
        Weights.scale_cluster w i target boost)
      path
  end

let pass ?(boost = 3.0) ?(confidence_threshold = 2.0) () =
  Pass.make
    ~params:[ ("boost", boost); ("confidence_threshold", confidence_threshold) ]
    ~name:"PATH" ~kind:Pass.Space
    (apply ~boost ~confidence_threshold)
