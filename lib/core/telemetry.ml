let confidence_cap = 1000.0

type metrics = {
  churn : int;
  total : int;
  mean_confidence : float;
  mean_entropy : float;
}

let churn_fraction m =
  if m.total = 0 then 0.0 else float_of_int m.churn /. float_of_int m.total

(* [Weights.confidence] is always finite (no-competition rows report
   [Weights.confidence_sentinel] = 1e9, not [infinity]); the cap below
   still bounds them to 1000 so one unanimous row cannot drown the
   mean. *)
let mean_confidence w =
  let n = Weights.n w in
  if n = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum := !sum +. Float.min (Weights.confidence w i) confidence_cap
    done;
    !sum /. float_of_int n
  end

(* Both marginals come from the O(1) per-row caches, so a full entropy
   sweep is O(n * nc) with no per-element matrix reads. *)
let mean_row_entropy w =
  let n = Weights.n w and nc = Weights.nc w in
  if n = 0 then 0.0
  else begin
    let log2d = log 2.0 in
    let log2 x = log x /. log2d in
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      let total = Weights.row_total w i in
      if total > 0.0 then begin
        let h = ref 0.0 in
        for c = 0 to nc - 1 do
          let p = Weights.cluster_weight w i c /. total in
          if p > 0.0 then h := !h -. (p *. log2 p)
        done;
        sum := !sum +. !h
      end
    done;
    !sum /. float_of_int n
  end

let measure ~prev w =
  let after = Weights.preferred_clusters w in
  let churn = ref 0 in
  Array.iteri (fun i c -> if c <> prev.(i) then incr churn) after;
  { churn = !churn; total = Weights.n w;
    mean_confidence = mean_confidence w;
    mean_entropy = mean_row_entropy w }

let emit ?(round = 1) ~pass m =
  if Cs_obs.Obs.enabled () then
    Cs_obs.Obs.counter ~cat:"converge" ("converge:" ^ pass)
      [ ("round", float_of_int round);
        ("churn", float_of_int m.churn);
        ("churn_fraction", churn_fraction m);
        ("mean_confidence", m.mean_confidence);
        ("mean_entropy", m.mean_entropy) ]
