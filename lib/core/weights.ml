(* The preference matrix lives in one contiguous instr-major float64
   block:

     index(i, c, t) = ((i * nc) + c) * nt + t

   so one instruction's whole row is a contiguous slice of
   nc * nt doubles, a (i, c) cluster lane is a contiguous run of nt
   doubles inside it, and a (i, t) time lane is an nt-strided walk.
   The convergent passes are dense sweeps over rows, so every kernel
   below is written as a single fused loop over that layout.

   Two storages implement the same contract:

   - [Flat]: a Bigarray.Array1 of float64 driven by unsafe fused
     kernels — the production path.
   - [Legacy]: the original OCaml float array walked through the
     original bounds-checked per-element get/set chain — kept for one
     PR as the differential oracle and the benchmark baseline, behind
     the [--weights-impl] flag / CSCHED_WEIGHTS_IMPL.

   Both storages perform the *same floating-point operations in the
   same order* (fused kernels accumulate the same per-element deltas
   the per-element path does), so replaying any pass sequence through
   either implementation yields bit-identical matrices — that property
   is what test/test_differential.ml pins over the fuzz seed space.

   Marginal caches (cluster sums, time sums, row totals) are
   maintained incrementally by every write and rebuilt exactly by
   [normalize]; a per-row dirty bit records which rows changed since
   the last [clear_touched], so renormalization, the driver's
   quarantine gate, and snapshot/rollback all touch only the rows a
   pass actually wrote. *)

type impl = Flat | Legacy

let impl_name = function Flat -> "flat" | Legacy -> "legacy"

let impl_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "flat" | "bigarray" -> Ok Flat
  | "legacy" | "array" -> Ok Legacy
  | other -> Error (Printf.sprintf "unknown weights implementation %S (want flat|legacy)" other)

let default =
  ref
    (match Sys.getenv_opt "CSCHED_WEIGHTS_IMPL" with
    | Some s -> (match impl_of_string s with Ok i -> i | Error _ -> Flat)
    | None -> Flat)

let default_impl () = !default
let set_default_impl i = default := i

type ba1 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type storage =
  | Flat_s of ba1
  | Legacy_s of float array

type t = {
  n : int;
  nc : int;
  nt : int;
  storage : storage;
  cluster_sum : float array; (* n * nc *)
  time_sum : float array; (* n * nt *)
  row_total : float array; (* n *)
  dirty : Bytes.t; (* n bytes: rows written since clear_touched *)
  mutable n_dirty : int;
}

let n t = t.n
let nc t = t.nc
let nt t = t.nt
let impl t = match t.storage with Flat_s _ -> Flat | Legacy_s _ -> Legacy

let idx t i c tt = (((i * t.nc) + c) * t.nt) + tt

let create_with ~impl ~n ~nc ~nt =
  if n < 0 || nc <= 0 || nt <= 0 then invalid_arg "Weights.create: bad dimensions";
  let v = 1.0 /. float_of_int (nc * nt) in
  let storage =
    match impl with
    | Legacy -> Legacy_s (Array.make (n * nc * nt) v)
    | Flat ->
      let ba = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (n * nc * nt) in
      Bigarray.Array1.fill ba v;
      Flat_s ba
  in
  {
    n;
    nc;
    nt;
    storage;
    cluster_sum = Array.make (n * nc) (v *. float_of_int nt);
    time_sum = Array.make (n * nt) (v *. float_of_int nc);
    row_total = Array.make n (v *. float_of_int (nc * nt));
    dirty = Bytes.make (max n 1) '\000';
    n_dirty = 0;
  }

let create ~n ~nc ~nt = create_with ~impl:!default ~n ~nc ~nt

let check_index t i c tt =
  if i < 0 || i >= t.n || c < 0 || c >= t.nc || tt < 0 || tt >= t.nt then
    invalid_arg "Weights: index out of range"

let check_row t i = if i < 0 || i >= t.n then invalid_arg "Weights: index out of range"

let bad_value v = not (Float.is_finite v) || v < 0.0
let reject_value () = invalid_arg "Weights.set: weight must be finite and >= 0"

(* --- dirty-row tracking ------------------------------------------- *)

let mark_touched t i =
  if Bytes.unsafe_get t.dirty i = '\000' then begin
    Bytes.unsafe_set t.dirty i '\001';
    t.n_dirty <- t.n_dirty + 1
  end

let is_touched t i =
  check_row t i;
  Bytes.unsafe_get t.dirty i <> '\000'

let touched_count t = t.n_dirty

let touched_rows t =
  let rows = ref [] in
  for i = t.n - 1 downto 0 do
    if Bytes.unsafe_get t.dirty i <> '\000' then rows := i :: !rows
  done;
  !rows

let clear_touched t =
  if t.n_dirty > 0 then begin
    Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
    t.n_dirty <- 0
  end

(* --- element access ------------------------------------------------ *)

let raw_get t k =
  match t.storage with
  | Flat_s ba -> Bigarray.Array1.unsafe_get ba k
  | Legacy_s a -> Array.unsafe_get a k

let get t i c tt =
  check_index t i c tt;
  match t.storage with
  | Legacy_s a -> a.(idx t i c tt)
  | Flat_s ba -> Bigarray.Array1.unsafe_get ba (idx t i c tt)

(* Every write funnels its delta into all three marginal caches; fused
   kernels below replicate exactly this update sequence. A delta of 0
   (value unchanged) leaves the row clean, so no-op writes — e.g.
   FEASIBLE multiplying feasible lanes by 1.0 — do not dirty rows. *)
let apply_delta t i c tt delta =
  if delta <> 0.0 then begin
    let ci = (i * t.nc) + c and ti = (i * t.nt) + tt in
    t.cluster_sum.(ci) <- t.cluster_sum.(ci) +. delta;
    t.time_sum.(ti) <- t.time_sum.(ti) +. delta;
    t.row_total.(i) <- t.row_total.(i) +. delta;
    mark_touched t i
  end

let set t i c tt v =
  check_index t i c tt;
  if bad_value v then reject_value ();
  let k = idx t i c tt in
  match t.storage with
  | Legacy_s a ->
    (* Bounds-checked, as the original chain was — this cost is part of
       what the Legacy baseline preserves. *)
    let old = a.(k) in
    a.(k) <- v;
    apply_delta t i c tt (v -. old)
  | Flat_s ba ->
    let old = Bigarray.Array1.unsafe_get ba k in
    Bigarray.Array1.unsafe_set ba k v;
    apply_delta t i c tt (v -. old)

let add t i c tt v = set t i c tt (get t i c tt +. v)
let scale t i c tt f = set t i c tt (get t i c tt *. f)

(* --- fused row kernels ---------------------------------------------
   Each kernel dispatches on the storage once and then runs a flat
   loop. The Legacy branch deliberately goes through the per-element
   [set]/[get] chain — that *is* the legacy path being preserved as
   oracle and baseline; the Flat branch performs the identical
   arithmetic unboxed and unchecked. *)

let scale_cluster t i c f =
  if i < 0 || i >= t.n || c < 0 || c >= t.nc then invalid_arg "Weights: index out of range";
  match t.storage with
  | Legacy_s _ ->
    for tt = 0 to t.nt - 1 do
      scale t i c tt f
    done
  | Flat_s ba ->
    let nt = t.nt in
    let base = ((i * t.nc) + c) * nt in
    let ci = (i * t.nc) + c and ti = i * nt in
    let cs = t.cluster_sum and ts = t.time_sum and rt = t.row_total in
    for tt = 0 to nt - 1 do
      let k = base + tt in
      let old = Bigarray.Array1.unsafe_get ba k in
      let v = old *. f in
      if bad_value v then reject_value ();
      let delta = v -. old in
      if delta <> 0.0 then begin
        Bigarray.Array1.unsafe_set ba k v;
        Array.unsafe_set cs ci (Array.unsafe_get cs ci +. delta);
        Array.unsafe_set ts (ti + tt) (Array.unsafe_get ts (ti + tt) +. delta);
        Array.unsafe_set rt i (Array.unsafe_get rt i +. delta);
        mark_touched t i
      end
    done

let scale_time t i tt f =
  if i < 0 || i >= t.n || tt < 0 || tt >= t.nt then invalid_arg "Weights: index out of range";
  match t.storage with
  | Legacy_s _ ->
    for c = 0 to t.nc - 1 do
      scale t i c tt f
    done
  | Flat_s ba ->
    let nt = t.nt in
    let ti = (i * nt) + tt in
    let cs0 = i * t.nc in
    let cs = t.cluster_sum and ts = t.time_sum and rt = t.row_total in
    for c = 0 to t.nc - 1 do
      let k = (((i * t.nc) + c) * nt) + tt in
      let old = Bigarray.Array1.unsafe_get ba k in
      let v = old *. f in
      if bad_value v then reject_value ();
      let delta = v -. old in
      if delta <> 0.0 then begin
        Bigarray.Array1.unsafe_set ba k v;
        Array.unsafe_set cs (cs0 + c) (Array.unsafe_get cs (cs0 + c) +. delta);
        Array.unsafe_set ts ti (Array.unsafe_get ts ti +. delta);
        Array.unsafe_set rt i (Array.unsafe_get rt i +. delta);
        mark_touched t i
      end
    done

(* One factor per cluster applied to a whole row in a single sweep —
   the shape LOAD / COMM / FEASIBLE / PLACEPROP reduce to. Equivalent
   to [scale_cluster t i c factors.(c)] for every [c] in order. *)
let scale_clusters t i factors =
  check_row t i;
  if Array.length factors <> t.nc then
    invalid_arg "Weights.scale_clusters: factor count must equal nc";
  match t.storage with
  | Legacy_s _ ->
    for c = 0 to t.nc - 1 do
      scale_cluster t i c factors.(c)
    done
  | Flat_s ba ->
    let nt = t.nt in
    let cs = t.cluster_sum and ts = t.time_sum and rt = t.row_total in
    for c = 0 to t.nc - 1 do
      let f = Array.unsafe_get factors c in
      let base = ((i * t.nc) + c) * nt in
      let ci = (i * t.nc) + c and ti = i * nt in
      for tt = 0 to nt - 1 do
        let k = base + tt in
        let old = Bigarray.Array1.unsafe_get ba k in
        let v = old *. f in
        if bad_value v then reject_value ();
        let delta = v -. old in
        if delta <> 0.0 then begin
          Bigarray.Array1.unsafe_set ba k v;
          Array.unsafe_set cs ci (Array.unsafe_get cs ci +. delta);
          Array.unsafe_set ts (ti + tt) (Array.unsafe_get ts (ti + tt) +. delta);
          Array.unsafe_set rt i (Array.unsafe_get rt i +. delta);
          mark_touched t i
        end
      done
    done

(* Rewrite one row through [f c tt v], in flat (c-major) order. *)
let map_row t i f =
  check_row t i;
  match t.storage with
  | Legacy_s _ ->
    for c = 0 to t.nc - 1 do
      for tt = 0 to t.nt - 1 do
        set t i c tt (f c tt (get t i c tt))
      done
    done
  | Flat_s ba ->
    let nt = t.nt in
    let cs = t.cluster_sum and ts = t.time_sum and rt = t.row_total in
    for c = 0 to t.nc - 1 do
      let base = ((i * t.nc) + c) * nt in
      let ci = (i * t.nc) + c and ti = i * nt in
      for tt = 0 to nt - 1 do
        let k = base + tt in
        let old = Bigarray.Array1.unsafe_get ba k in
        let v = f c tt old in
        if bad_value v then reject_value ();
        let delta = v -. old in
        if delta <> 0.0 then begin
          Bigarray.Array1.unsafe_set ba k v;
          Array.unsafe_set cs ci (Array.unsafe_get cs ci +. delta);
          Array.unsafe_set ts (ti + tt) (Array.unsafe_get ts (ti + tt) +. delta);
          Array.unsafe_set rt i (Array.unsafe_get rt i +. delta);
          mark_touched t i
        end
      done
    done

(* Zero every slot outside [lo..hi] in row [i] — INITTIME's shape.
   Exactly [map_row t i (fun _ tt v -> if tt < lo || tt > hi then 0.0
   else v)]: in-window elements have delta 0 and are skipped there too,
   so only the two out-of-window stretches are visited, in the same
   ascending order map_row would reach them. *)
let mask_time_window t i ~lo ~hi =
  check_row t i;
  match t.storage with
  | Legacy_s _ -> map_row t i (fun _ tt v -> if tt < lo || tt > hi then 0.0 else v)
  | Flat_s ba ->
    let nt = t.nt in
    let cs = t.cluster_sum and ts = t.time_sum and rt = t.row_total in
    for c = 0 to t.nc - 1 do
      let base = ((i * t.nc) + c) * nt in
      let ci = (i * t.nc) + c and ti = i * nt in
      let zero tt =
        let k = base + tt in
        let old = Bigarray.Array1.unsafe_get ba k in
        let delta = 0.0 -. old in
        if delta <> 0.0 then begin
          Bigarray.Array1.unsafe_set ba k 0.0;
          Array.unsafe_set cs ci (Array.unsafe_get cs ci +. delta);
          Array.unsafe_set ts (ti + tt) (Array.unsafe_get ts (ti + tt) +. delta);
          Array.unsafe_set rt i (Array.unsafe_get rt i +. delta);
          mark_touched t i
        end
      in
      for tt = 0 to min lo nt - 1 do
        zero tt
      done;
      for tt = max (hi + 1) 0 to nt - 1 do
        zero tt
      done
    done

(* --- marginals ------------------------------------------------------ *)

let cluster_weight t i c =
  if i < 0 || i >= t.n || c < 0 || c >= t.nc then invalid_arg "Weights: index out of range";
  t.cluster_sum.((i * t.nc) + c)

let time_weight t i tt =
  if i < 0 || i >= t.n || tt < 0 || tt >= t.nt then invalid_arg "Weights: index out of range";
  t.time_sum.((i * t.nt) + tt)

let row_total t i =
  check_row t i;
  t.row_total.(i)

(* Rebuild row [i]'s marginal caches exactly from its entries: cluster
   sums in c-major order, then time sums, then the row total as the sum
   of cluster sums (the order the legacy recompute used). *)
let recompute_row t i =
  let nt = t.nt and nc = t.nc in
  (match t.storage with
  | Legacy_s a ->
    (* Seed-faithful: index recomputed per element, bounds-checked. *)
    for c = 0 to nc - 1 do
      let s = ref 0.0 in
      for tt = 0 to nt - 1 do
        s := !s +. a.(idx t i c tt)
      done;
      t.cluster_sum.((i * nc) + c) <- !s
    done;
    for tt = 0 to nt - 1 do
      let s = ref 0.0 in
      for c = 0 to nc - 1 do
        s := !s +. a.(idx t i c tt)
      done;
      t.time_sum.((i * nt) + tt) <- !s
    done
  | Flat_s ba ->
    for c = 0 to nc - 1 do
      let s = ref 0.0 in
      let base = ((i * nc) + c) * nt in
      for tt = 0 to nt - 1 do
        s := !s +. Bigarray.Array1.unsafe_get ba (base + tt)
      done;
      t.cluster_sum.((i * nc) + c) <- !s
    done;
    for tt = 0 to nt - 1 do
      let s = ref 0.0 in
      for c = 0 to nc - 1 do
        s := !s +. Bigarray.Array1.unsafe_get ba ((((i * nc) + c) * nt) + tt)
      done;
      t.time_sum.((i * nt) + tt) <- !s
    done);
  let total = ref 0.0 in
  for c = 0 to nc - 1 do
    total := !total +. t.cluster_sum.((i * nc) + c)
  done;
  t.row_total.(i) <- !total

(* --- normalization -------------------------------------------------- *)

(* Total from the entries themselves, not the incrementally maintained
   caches: floating-point drift can leave a cached total tiny-positive
   while the row has decayed to all zeros, and dividing by that would
   produce a row that still sums to ~0 (or worse, NaN). The fused
   divide is the kernel half of the driver's "apply then renormalize"
   cycle; marginals are rebuilt exactly afterwards. *)
let normalize t i =
  check_row t i;
  let nt = t.nt and nc = t.nc in
  let len = nc * nt in
  let base = i * len in
  let changed = ref false in
  match t.storage with
  | Legacy_s a ->
    (* Seed-faithful nested sweeps: index recomputed per element,
       bounds-checked reads/writes, then a full marginal recompute —
       the cost profile the flat fused path is benchmarked against. *)
    let total = ref 0.0 in
    for c = 0 to nc - 1 do
      for tt = 0 to nt - 1 do
        total := !total +. a.(idx t i c tt)
      done
    done;
    let total = !total in
    if total <= 0.0 || not (Float.is_finite total) then begin
      let v = 1.0 /. float_of_int (nc * nt) in
      for c = 0 to nc - 1 do
        for tt = 0 to nt - 1 do
          let k = idx t i c tt in
          if a.(k) <> v then changed := true;
          a.(k) <- v
        done
      done
    end
    else
      for c = 0 to nc - 1 do
        for tt = 0 to nt - 1 do
          let k = idx t i c tt in
          let v = a.(k) /. total in
          if v <> a.(k) then changed := true;
          a.(k) <- v
        done
      done;
    if !changed then mark_touched t i;
    recompute_row t i
  | Flat_s ba ->
    (* Fully fused: one sweep for the total, then a single divide sweep
       that simultaneously rebuilds all three marginal caches. The
       cache arithmetic accumulates element-by-element in exactly the
       order [recompute_row] uses (lane sums left to right, time sums
       in ascending cluster order, row total as the sum of lane sums),
       so the rebuilt caches are bit-identical to the unfused path. *)
    let nc = t.nc and nt = t.nt in
    let total = ref 0.0 in
    for k = base to base + len - 1 do
      total := !total +. Bigarray.Array1.unsafe_get ba k
    done;
    let total = !total in
    let uniform = total <= 0.0 || not (Float.is_finite total) in
    let u = 1.0 /. float_of_int len in
    let cs = t.cluster_sum and ts = t.time_sum in
    let ti = i * nt in
    for tt = 0 to nt - 1 do
      Array.unsafe_set ts (ti + tt) 0.0
    done;
    let row = ref 0.0 in
    for c = 0 to nc - 1 do
      let lane = ((i * nc) + c) * nt in
      let s = ref 0.0 in
      for tt = 0 to nt - 1 do
        let k = lane + tt in
        let old = Bigarray.Array1.unsafe_get ba k in
        let v = if uniform then u else old /. total in
        if v <> old then begin
          changed := true;
          Bigarray.Array1.unsafe_set ba k v
        end;
        s := !s +. v;
        Array.unsafe_set ts (ti + tt) (Array.unsafe_get ts (ti + tt) +. v)
      done;
      Array.unsafe_set cs ((i * nc) + c) !s;
      row := !row +. !s
    done;
    t.row_total.(i) <- !row;
    if !changed then mark_touched t i

let normalize_all t =
  for i = 0 to t.n - 1 do
    normalize t i
  done

(* The driver's fused renormalize: only rows written since the last
   [clear_touched] can have drifted off sum 1, so only they are swept.
   Rows a pass never wrote keep their exact bits (the legacy driver
   re-divided every row by a total within one ulp of 1.0 each pass,
   churning the low bits of untouched rows for nothing). *)
let normalize_touched t =
  if t.n_dirty > 0 then
    for i = 0 to t.n - 1 do
      if Bytes.unsafe_get t.dirty i <> '\000' then normalize t i
    done

(* --- preferences ---------------------------------------------------- *)

let argmax_range count value =
  let best = ref 0 and best_v = ref (value 0) in
  for k = 1 to count - 1 do
    let v = value k in
    if v > !best_v +. 1e-12 then begin
      best := k;
      best_v := v
    end
  done;
  !best

let preferred_cluster t i = argmax_range t.nc (fun c -> cluster_weight t i c)
let preferred_time t i = argmax_range t.nt (fun tt -> time_weight t i tt)

let runnerup_cluster t i =
  if t.nc < 2 then None
  else begin
    let pref = preferred_cluster t i in
    let best = ref (if pref = 0 then 1 else 0) in
    for c = 0 to t.nc - 1 do
      if c <> pref && cluster_weight t i c > cluster_weight t i !best +. 1e-12 then best := c
    done;
    Some !best
  end

(* A fully converged row has no runner-up mass, which used to make
   [confidence] return [infinity] — a value that poisons any telemetry
   mean/percentile it is averaged into (inf + x = inf, inf - inf = nan).
   It is now clamped to this documented finite sentinel; every caller
   comparing against a threshold behaves the same, and "no runner-up"
   is exactly [confidence = confidence_sentinel]. *)
let confidence_sentinel = 1e9

let confidence t i =
  match runnerup_cluster t i with
  | None -> confidence_sentinel
  | Some r ->
    let top = cluster_weight t i (preferred_cluster t i) in
    let second = cluster_weight t i r in
    if second <= 0.0 then confidence_sentinel
    else Float.min (top /. second) confidence_sentinel

let blend t ~dst ~src ~keep =
  if keep < 0.0 || keep > 1.0 then invalid_arg "Weights.blend: keep must be in [0,1]";
  check_row t dst;
  check_row t src;
  if dst = src then ()
  else begin
    let len = t.nc * t.nt in
    let bd = dst * len and bs = src * len in
    (match t.storage with
    | Legacy_s a ->
      for c = 0 to t.nc - 1 do
        for tt = 0 to t.nt - 1 do
          let kd = idx t dst c tt and ks = idx t src c tt in
          a.(kd) <- (keep *. a.(kd)) +. ((1.0 -. keep) *. a.(ks))
        done
      done
    | Flat_s ba ->
      for k = 0 to len - 1 do
        Bigarray.Array1.unsafe_set ba (bd + k)
          ((keep *. Bigarray.Array1.unsafe_get ba (bd + k))
          +. ((1.0 -. keep) *. Bigarray.Array1.unsafe_get ba (bs + k)))
      done);
    mark_touched t dst;
    recompute_row t dst
  end

let preferred_clusters t = Array.init t.n (fun i -> preferred_cluster t i)

(* --- copy / restore ------------------------------------------------- *)

let copy t =
  {
    t with
    storage =
      (match t.storage with
      | Legacy_s a -> Legacy_s (Array.copy a)
      | Flat_s ba ->
        let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Bigarray.Array1.dim ba) in
        Bigarray.Array1.blit ba b;
        Flat_s b);
    cluster_sum = Array.copy t.cluster_sum;
    time_sum = Array.copy t.time_sum;
    row_total = Array.copy t.row_total;
    dirty = Bytes.copy t.dirty;
  }

let check_compatible ~ctx src dst =
  if src.n <> dst.n || src.nc <> dst.nc || src.nt <> dst.nt then
    invalid_arg (ctx ^ ": dimension mismatch");
  match (src.storage, dst.storage) with
  | Legacy_s _, Legacy_s _ | Flat_s _, Flat_s _ -> ()
  | _ -> invalid_arg (ctx ^ ": implementation mismatch")

let blit ~src ~dst =
  check_compatible ~ctx:"Weights.blit" src dst;
  (match (src.storage, dst.storage) with
  | Legacy_s a, Legacy_s b -> Array.blit a 0 b 0 (Array.length a)
  | Flat_s a, Flat_s b -> Bigarray.Array1.blit a b
  | _ -> assert false);
  Array.blit src.cluster_sum 0 dst.cluster_sum 0 (Array.length src.cluster_sum);
  Array.blit src.time_sum 0 dst.time_sum 0 (Array.length src.time_sum);
  Array.blit src.row_total 0 dst.row_total 0 (Array.length src.row_total);
  Bytes.blit src.dirty 0 dst.dirty 0 (Bytes.length src.dirty);
  dst.n_dirty <- src.n_dirty

(* Copy only the listed rows — entries and cached marginals — from
   [src] into [dst]. With [rows = touched_rows w] this is the O(dirty)
   half of the driver's quarantine protocol: rollback restores exactly
   the rows a misbehaving pass wrote, and a successful pass refreshes
   only those rows in its snapshot. Leaves [dst]'s dirty flags alone. *)
let sync_rows ~rows ~src ~dst =
  check_compatible ~ctx:"Weights.sync_rows" src dst;
  let len = src.nc * src.nt in
  (* Consecutive rows coalesce into one block copy per run: a dense
     pass touches every row, and there a single memcpy-backed blit
     beats both a per-row loop and per-row [Array1.sub] descriptor
     allocation. [touched_rows] yields rows ascending, so dense dirty
     sets arrive as one run; short runs keep the plain loop, which is
     cheaper than two descriptor allocations. *)
  let sync_run lo hi =
    let rows_n = hi - lo + 1 in
    let base = lo * len and count = (hi - lo + 1) * len in
    (match (src.storage, dst.storage) with
    | Legacy_s a, Legacy_s b -> Array.blit a base b base count
    | Flat_s a, Flat_s b ->
      if count <= 512 then
        for k = base to base + count - 1 do
          Bigarray.Array1.unsafe_set b k (Bigarray.Array1.unsafe_get a k)
        done
      else
        Bigarray.Array1.blit
          (Bigarray.Array1.sub a base count)
          (Bigarray.Array1.sub b base count)
    | _ -> assert false);
    Array.blit src.cluster_sum (lo * src.nc) dst.cluster_sum (lo * src.nc)
      (rows_n * src.nc);
    Array.blit src.time_sum (lo * src.nt) dst.time_sum (lo * src.nt) (rows_n * src.nt);
    Array.blit src.row_total lo dst.row_total lo rows_n
  in
  let rec runs = function
    | [] -> ()
    | i :: rest ->
      check_row src i;
      let lo = i in
      let rec extend hi = function
        | j :: rest when j = hi + 1 ->
          check_row src j;
          extend j rest
        | rest -> (hi, rest)
      in
      let hi, rest = extend i rest in
      sync_run lo hi;
      runs rest
  in
  runs rows

(* --- validation ----------------------------------------------------- *)

(* Monomorphic per-storage sweeps: this runs inside the per-pass
   quarantine gate, so the per-element storage dispatch [raw_get] would
   pay for matters here. The Legacy arm keeps the seed's bounds-checked
   reads. *)
let validate_row t i err =
  let total = ref 0.0 in
  let len = t.nc * t.nt in
  let base = i * len in
  let bad v =
    if not (Float.is_finite v) then begin
      err := Some (Printf.sprintf "row %d has non-finite weight %g" i v);
      true
    end
    else if v < -.1e-9 then begin
      err := Some (Printf.sprintf "row %d has negative weight %g" i v);
      true
    end
    else false
  in
  (try
     (match t.storage with
     | Legacy_s a ->
       for k = base to base + len - 1 do
         let v = a.(k) in
         if Float.is_finite v && v >= -.1e-9 then total := !total +. v
         else if bad v then raise Exit
       done
     | Flat_s ba ->
       for k = base to base + len - 1 do
         let v = Bigarray.Array1.unsafe_get ba k in
         if Float.is_finite v && v >= -.1e-9 then total := !total +. v
         else if bad v then raise Exit
       done);
     if Float.abs (!total -. 1.0) > 1e-6 then begin
       err := Some (Printf.sprintf "row %d sums to %g, expected 1" i !total);
       raise Exit
     end
   with Exit -> ())

let validate t =
  (* Single sweep over the raw entries; cheap enough to run after every
     pass (quarantine gate), unlike the triple-pass [check_invariants]. *)
  let err = ref None in
  let i = ref 0 in
  while !err = None && !i < t.n do
    validate_row t !i err;
    incr i
  done;
  match !err with None -> Ok () | Some e -> Error e

(* Quarantine-gate variant: rows untouched since [clear_touched] were
   valid when the previous gate passed and have not changed since, so
   only dirty rows need sweeping. *)
let validate_touched t =
  let err = ref None in
  let i = ref 0 in
  while !err = None && !i < t.n do
    if Bytes.unsafe_get t.dirty !i <> '\000' then validate_row t !i err;
    incr i
  done;
  match !err with None -> Ok () | Some e -> Error e

let check_invariants t =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  for i = 0 to t.n - 1 do
    let total = ref 0.0 in
    for c = 0 to t.nc - 1 do
      for tt = 0 to t.nt - 1 do
        let v = raw_get t (idx t i c tt) in
        if v < -.1e-9 || v > 1.0 +. 1e-9 then fail "W(%d,%d,%d)=%g out of [0,1]" i c tt v;
        total := !total +. v
      done
    done;
    if Float.abs (!total -. 1.0) > 1e-6 then fail "row %d sums to %g, expected 1" i !total;
    for c = 0 to t.nc - 1 do
      let s = ref 0.0 in
      for tt = 0 to t.nt - 1 do
        s := !s +. raw_get t (idx t i c tt)
      done;
      if Float.abs (!s -. cluster_weight t i c) > 1e-6 then
        fail "stale cluster sum at (%d,%d)" i c
    done;
    for tt = 0 to t.nt - 1 do
      let s = ref 0.0 in
      for c = 0 to t.nc - 1 do
        s := !s +. raw_get t (idx t i c tt)
      done;
      if Float.abs (!s -. time_weight t i tt) > 1e-6 then fail "stale time sum at (%d,%d)" i tt
    done;
    if Float.abs (!total -. row_total t i) > 1e-6 then
      fail "stale row total at %d (%g cached vs %g)" i (row_total t i) !total
  done;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let pp_cluster_map fmt t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "instr";
  for c = 0 to t.nc - 1 do
    Format.fprintf fmt " c%-2d" c
  done;
  Format.fprintf fmt "@,";
  for i = 0 to t.n - 1 do
    Format.fprintf fmt "%5d" i;
    let top = ref 0.0 in
    for c = 0 to t.nc - 1 do
      top := max !top (cluster_weight t i c)
    done;
    for c = 0 to t.nc - 1 do
      let v = if !top <= 0.0 then 0.0 else cluster_weight t i c /. !top in
      let g = glyphs.(min 9 (int_of_float (v *. 9.0))) in
      Format.fprintf fmt "  %c " g
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
