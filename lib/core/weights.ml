type t = {
  n : int;
  nc : int;
  nt : int;
  w : float array; (* index: ((i * nc) + c) * nt + t *)
  cluster_sum : float array; (* n * nc *)
  time_sum : float array; (* n * nt *)
}

let n t = t.n
let nc t = t.nc
let nt t = t.nt

let idx t i c tt = (((i * t.nc) + c) * t.nt) + tt

let create ~n ~nc ~nt =
  if n < 0 || nc <= 0 || nt <= 0 then invalid_arg "Weights.create: bad dimensions";
  let v = 1.0 /. float_of_int (nc * nt) in
  {
    n;
    nc;
    nt;
    w = Array.make (n * nc * nt) v;
    cluster_sum = Array.make (n * nc) (v *. float_of_int nt);
    time_sum = Array.make (n * nt) (v *. float_of_int nc);
  }

let check_index t i c tt =
  if i < 0 || i >= t.n || c < 0 || c >= t.nc || tt < 0 || tt >= t.nt then
    invalid_arg "Weights: index out of range"

let get t i c tt =
  check_index t i c tt;
  t.w.(idx t i c tt)

let set t i c tt v =
  check_index t i c tt;
  if not (Float.is_finite v) || v < 0.0 then invalid_arg "Weights.set: weight must be finite and >= 0";
  let k = idx t i c tt in
  let delta = v -. t.w.(k) in
  t.w.(k) <- v;
  t.cluster_sum.((i * t.nc) + c) <- t.cluster_sum.((i * t.nc) + c) +. delta;
  t.time_sum.((i * t.nt) + tt) <- t.time_sum.((i * t.nt) + tt) +. delta

let add t i c tt v = set t i c tt (get t i c tt +. v)
let scale t i c tt f = set t i c tt (get t i c tt *. f)

let scale_cluster t i c f =
  for tt = 0 to t.nt - 1 do
    scale t i c tt f
  done

let scale_time t i tt f =
  for c = 0 to t.nc - 1 do
    scale t i c tt f
  done

let cluster_weight t i c = t.cluster_sum.((i * t.nc) + c)
let time_weight t i tt = t.time_sum.((i * t.nt) + tt)

let recompute_sums t i =
  for c = 0 to t.nc - 1 do
    let s = ref 0.0 in
    for tt = 0 to t.nt - 1 do
      s := !s +. t.w.(idx t i c tt)
    done;
    t.cluster_sum.((i * t.nc) + c) <- !s
  done;
  for tt = 0 to t.nt - 1 do
    let s = ref 0.0 in
    for c = 0 to t.nc - 1 do
      s := !s +. t.w.(idx t i c tt)
    done;
    t.time_sum.((i * t.nt) + tt) <- !s
  done

let row_total t i =
  let s = ref 0.0 in
  for c = 0 to t.nc - 1 do
    s := !s +. cluster_weight t i c
  done;
  !s

let normalize t i =
  (* Total from the entries themselves, not the incrementally maintained
     caches: floating-point drift can leave a cached total tiny-positive
     while the row has decayed to all zeros, and dividing by that would
     produce a row that still sums to ~0 (or worse, NaN). *)
  let total = ref 0.0 in
  for c = 0 to t.nc - 1 do
    for tt = 0 to t.nt - 1 do
      total := !total +. t.w.(idx t i c tt)
    done
  done;
  let total = !total in
  if total <= 0.0 || not (Float.is_finite total) then begin
    let v = 1.0 /. float_of_int (t.nc * t.nt) in
    for c = 0 to t.nc - 1 do
      for tt = 0 to t.nt - 1 do
        t.w.(idx t i c tt) <- v
      done
    done
  end
  else
    for c = 0 to t.nc - 1 do
      for tt = 0 to t.nt - 1 do
        let k = idx t i c tt in
        t.w.(k) <- t.w.(k) /. total
      done
    done;
  recompute_sums t i

let normalize_all t =
  for i = 0 to t.n - 1 do
    normalize t i
  done

let argmax_range count value =
  let best = ref 0 and best_v = ref (value 0) in
  for k = 1 to count - 1 do
    let v = value k in
    if v > !best_v +. 1e-12 then begin
      best := k;
      best_v := v
    end
  done;
  !best

let preferred_cluster t i = argmax_range t.nc (fun c -> cluster_weight t i c)
let preferred_time t i = argmax_range t.nt (fun tt -> time_weight t i tt)

let runnerup_cluster t i =
  if t.nc < 2 then None
  else begin
    let pref = preferred_cluster t i in
    let best = ref (if pref = 0 then 1 else 0) in
    for c = 0 to t.nc - 1 do
      if c <> pref && cluster_weight t i c > cluster_weight t i !best +. 1e-12 then best := c
    done;
    Some !best
  end

let confidence t i =
  match runnerup_cluster t i with
  | None -> infinity
  | Some r ->
    let top = cluster_weight t i (preferred_cluster t i) in
    let second = cluster_weight t i r in
    if second <= 0.0 then infinity else top /. second

let blend t ~dst ~src ~keep =
  if keep < 0.0 || keep > 1.0 then invalid_arg "Weights.blend: keep must be in [0,1]";
  if dst = src then ()
  else begin
    for c = 0 to t.nc - 1 do
      for tt = 0 to t.nt - 1 do
        let kd = idx t dst c tt and ks = idx t src c tt in
        t.w.(kd) <- (keep *. t.w.(kd)) +. ((1.0 -. keep) *. t.w.(ks))
      done
    done;
    recompute_sums t dst
  end

let preferred_clusters t = Array.init t.n (fun i -> preferred_cluster t i)

let copy t =
  {
    t with
    w = Array.copy t.w;
    cluster_sum = Array.copy t.cluster_sum;
    time_sum = Array.copy t.time_sum;
  }

let blit ~src ~dst =
  if src.n <> dst.n || src.nc <> dst.nc || src.nt <> dst.nt then
    invalid_arg "Weights.blit: dimension mismatch";
  Array.blit src.w 0 dst.w 0 (Array.length src.w);
  Array.blit src.cluster_sum 0 dst.cluster_sum 0 (Array.length src.cluster_sum);
  Array.blit src.time_sum 0 dst.time_sum 0 (Array.length src.time_sum)

let validate t =
  (* Single sweep over the raw entries; cheap enough to run after every
     pass (quarantine gate), unlike the triple-pass [check_invariants]. *)
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (try
     for i = 0 to t.n - 1 do
       let total = ref 0.0 in
       let base = i * t.nc * t.nt in
       for k = base to base + (t.nc * t.nt) - 1 do
         let v = t.w.(k) in
         if not (Float.is_finite v) then begin
           fail "row %d has non-finite weight %g" i v;
           raise Exit
         end;
         if v < -.1e-9 then begin
           fail "row %d has negative weight %g" i v;
           raise Exit
         end;
         total := !total +. v
       done;
       if Float.abs (!total -. 1.0) > 1e-6 then begin
         fail "row %d sums to %g, expected 1" i !total;
         raise Exit
       end
     done
   with Exit -> ());
  match !err with None -> Ok () | Some e -> Error e

let check_invariants t =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  for i = 0 to t.n - 1 do
    let total = ref 0.0 in
    for c = 0 to t.nc - 1 do
      for tt = 0 to t.nt - 1 do
        let v = t.w.(idx t i c tt) in
        if v < -.1e-9 || v > 1.0 +. 1e-9 then fail "W(%d,%d,%d)=%g out of [0,1]" i c tt v;
        total := !total +. v
      done
    done;
    if Float.abs (!total -. 1.0) > 1e-6 then fail "row %d sums to %g, expected 1" i !total;
    for c = 0 to t.nc - 1 do
      let s = ref 0.0 in
      for tt = 0 to t.nt - 1 do
        s := !s +. t.w.(idx t i c tt)
      done;
      if Float.abs (!s -. cluster_weight t i c) > 1e-6 then
        fail "stale cluster sum at (%d,%d)" i c
    done;
    for tt = 0 to t.nt - 1 do
      let s = ref 0.0 in
      for c = 0 to t.nc - 1 do
        s := !s +. t.w.(idx t i c tt)
      done;
      if Float.abs (!s -. time_weight t i tt) > 1e-6 then fail "stale time sum at (%d,%d)" i tt
    done
  done;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let pp_cluster_map fmt t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "instr";
  for c = 0 to t.nc - 1 do
    Format.fprintf fmt " c%-2d" c
  done;
  Format.fprintf fmt "@,";
  for i = 0 to t.n - 1 do
    Format.fprintf fmt "%5d" i;
    let top = ref 0.0 in
    for c = 0 to t.nc - 1 do
      top := max !top (cluster_weight t i c)
    done;
    for c = 0 to t.nc - 1 do
      let v = if !top <= 0.0 then 0.0 else cluster_weight t i c /. !top in
      let g = glyphs.(min 9 (int_of_float (v *. 9.0))) in
      Format.fprintf fmt "  %c " g
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
