let distance_to_bin a i = function
  | [] -> max_int
  | members ->
    let row = Cs_ddg.Analysis.distance_row a i in
    List.fold_left (fun acc m -> min acc row.(m)) max_int members

let distribute_group ctx w ~granularity ~confidence_threshold ~boost group =
  let a = ctx.Context.analysis in
  let nc = Weights.nc w in
  let bins = Array.make nc [] in
  let unassigned = ref [] in
  List.iter
    (fun i ->
      if Weights.confidence w i >= confidence_threshold then begin
        let c = Weights.preferred_cluster w i in
        bins.(c) <- i :: bins.(c)
      end
      else unassigned := i :: !unassigned)
    group;
  let unassigned = ref (List.rev !unassigned) in
  let closest_bin_distance i =
    let best = ref max_int in
    Array.iter
      (fun members ->
        if members <> [] then best := min !best (distance_to_bin a i members))
      bins;
    !best
  in
  let next_bin = ref 0 in
  while !unassigned <> [] do
    let b = !next_bin in
    next_bin := (!next_bin + 1) mod nc;
    (* Candidates far from every existing bin get distributed first; when
       none qualify, everything remaining is a candidate. *)
    let far = List.filter (fun i -> closest_bin_distance i > granularity) !unassigned in
    let candidates = if far = [] then !unassigned else far in
    let chosen =
      List.fold_left
        (fun acc i ->
          let d = distance_to_bin a i bins.(b) in
          match acc with
          | Some (bd, _) when bd >= d -> acc
          | Some _ | None -> Some (d, i))
        None candidates
    in
    match chosen with
    | None -> unassigned := [] (* unreachable: candidates is non-empty *)
    | Some (_, i) ->
      bins.(b) <- i :: bins.(b);
      unassigned := List.filter (fun j -> j <> i) !unassigned;
      Weights.scale_cluster w i b boost
  done

let apply ~stride ~granularity ~confidence_threshold ~boost ctx w =
  let a = ctx.Context.analysis in
  let deepest = Cs_ddg.Analysis.max_depth a in
  let lbase = ref 0 in
  while !lbase <= deepest do
    let group = ref [] in
    for i = Weights.n w - 1 downto 0 do
      let d = Cs_ddg.Analysis.depth a i in
      if d >= !lbase && d < !lbase + stride then group := i :: !group
    done;
    if !group <> [] then
      distribute_group ctx w ~granularity ~confidence_threshold ~boost !group;
    lbase := !lbase + stride
  done

let pass ?(stride = 4) ?(granularity = 2) ?(confidence_threshold = 2.0) ?(boost = 2.5) () =
  Pass.make
    ~params:
      [ ("stride", float_of_int stride); ("granularity", float_of_int granularity);
        ("confidence_threshold", confidence_threshold); ("boost", boost) ]
    ~name:"LEVEL" ~kind:Pass.Space
    (apply ~stride ~granularity ~confidence_threshold ~boost)
