let two_hop graph i =
  let direct = Cs_ddg.Graph.neighbors graph i in
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen i ();
  List.iter (fun j -> Hashtbl.replace seen j ()) direct;
  let grand = ref [] in
  List.iter
    (fun j ->
      List.iter
        (fun k ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            grand := k :: !grand
          end)
        (Cs_ddg.Graph.neighbors graph j))
    direct;
  (direct, !grand)

let apply ~eps ~grand ~grand_weight ~per_slot ~strengthen_preferred ctx w =
  let graph = Context.graph ctx in
  let snap = Weights.copy w in
  let factors = Array.make (Weights.nc w) 0.0 in
  for i = 0 to Weights.n w - 1 do
    let direct, grands =
      if grand then two_hop graph i else (Cs_ddg.Graph.neighbors graph i, [])
    in
    if direct <> [] || grands <> [] then
      if per_slot then
        (* The paper's literal formula: couple on identical (c, t) slots. *)
        for c = 0 to Weights.nc w - 1 do
          for tt = 0 to Weights.nt w - 1 do
            let pull = ref 0.0 in
            List.iter (fun j -> pull := !pull +. Weights.get snap j c tt) direct;
            List.iter
              (fun j -> pull := !pull +. (grand_weight *. Weights.get snap j c tt))
              grands;
            Weights.scale w i c tt (eps +. !pull)
          done
        done
      else
        (* Space-marginal coupling: dependent instructions execute at
           *different* times, so the spatial pull is the neighbors' whole
           cluster marginal, applied uniformly across feasible slots.
           The per-cluster pulls are gathered first (O(1) each off the
           marginal cache), then applied in one fused row sweep. *)
        begin
          for c = 0 to Weights.nc w - 1 do
            let pull = ref 0.0 in
            List.iter
              (fun j -> pull := !pull +. Weights.cluster_weight snap j c)
              direct;
            List.iter
              (fun j ->
                pull := !pull +. (grand_weight *. Weights.cluster_weight snap j c))
              grands;
            factors.(c) <- eps +. !pull
          done;
          Weights.scale_clusters w i factors
        end
  done;
  if strengthen_preferred > 1.0 then
    for i = 0 to Weights.n w - 1 do
      let pc = Weights.preferred_cluster w i and pt = Weights.preferred_time w i in
      Weights.scale w i pc pt strengthen_preferred
    done

let pass ?(eps = 1e-4) ?(grand = true) ?(grand_weight = 0.5) ?(per_slot = false)
    ?(strengthen_preferred = 2.0) () =
  Pass.make
    ~params:
      [ ("eps", eps); ("grand", if grand then 1.0 else 0.0);
        ("grand_weight", grand_weight); ("per_slot", if per_slot then 1.0 else 0.0);
        ("strengthen_preferred", strengthen_preferred) ]
    ~name:"COMM" ~kind:Pass.Space
    (apply ~eps ~grand ~grand_weight ~per_slot ~strengthen_preferred)
