(* Peak pressure estimate: a value defined by instruction [d] assigned to
   cluster [c] is live from [d]'s preferred slot until the latest preferred
   slot among its consumers; pressure(c, t) counts live values. *)
let peak_pressure ctx w =
  let graph = Context.graph ctx in
  let nc = Weights.nc w and nt = Weights.nt w in
  let pressure = Array.make_matrix nc nt 0 in
  for d = 0 to Weights.n w - 1 do
    let ins = Cs_ddg.Graph.instr graph d in
    if ins.Cs_ddg.Instr.dst <> None then begin
      let c = Weights.preferred_cluster w d in
      let birth = Weights.preferred_time w d in
      let death =
        List.fold_left
          (fun acc s -> max acc (Weights.preferred_time w s))
          birth
          (Cs_ddg.Graph.succs graph d)
      in
      for t = birth to min death (nt - 1) do
        pressure.(c).(t) <- pressure.(c).(t) + 1
      done
    end
  done;
  Array.map (fun row -> Array.fold_left max 0 row) pressure

let apply ~registers_per_cluster ~confidence_threshold ctx w =
  let peaks = peak_pressure ctx w in
  let graph = Context.graph ctx in
  let cap = float_of_int registers_per_cluster in
  Array.iteri
    (fun c peak ->
      let peak = float_of_int peak in
      if peak > cap then begin
        let relief = cap /. peak in
        for i = 0 to Weights.n w - 1 do
          let movable =
            (not (Cs_ddg.Instr.is_preplaced (Cs_ddg.Graph.instr graph i)))
            && Weights.confidence w i < confidence_threshold
          in
          if movable && Weights.preferred_cluster w i = c then
            Weights.scale_cluster w i c relief
        done
      end)
    peaks

let pass ?(registers_per_cluster = 32) ?(confidence_threshold = 2.0) () =
  Pass.make
    ~params:
      [ ("registers_per_cluster", float_of_int registers_per_cluster);
        ("confidence_threshold", confidence_threshold) ]
    ~name:"REGPRESS" ~kind:Pass.Space
    (apply ~registers_per_cluster ~confidence_threshold)
