let apply ctx w =
  let a = ctx.Context.analysis in
  let nt = Weights.nt w in
  for i = 0 to Weights.n w - 1 do
    let lo = Context.clamp_slot ctx (Cs_ddg.Analysis.earliest a i) in
    let hi = Context.clamp_slot ctx (Cs_ddg.Analysis.latest a i) in
    (* Rows whose mobility window already spans every slot are left
       untouched (and undirtied). *)
    if lo > 0 || hi < nt - 1 then Weights.mask_time_window w i ~lo ~hi
  done

let pass () = Pass.make ~name:"INITTIME" ~kind:Pass.Time apply
