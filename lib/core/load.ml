let apply (_ : Context.t) w =
  let nc = Weights.nc w in
  let load = Array.make nc 0.0 in
  for i = 0 to Weights.n w - 1 do
    for c = 0 to nc - 1 do
      load.(c) <- load.(c) +. Weights.cluster_weight w i c
    done
  done;
  let factors = Array.make nc 1.0 in
  for c = 0 to nc - 1 do
    if load.(c) > 0.0 then factors.(c) <- 1.0 /. load.(c)
  done;
  (* One fused sweep per row; unloaded clusters keep factor 1.0, which
     the kernel treats as a no-op exactly like the old skipped write. *)
  for i = 0 to Weights.n w - 1 do
    Weights.scale_clusters w i factors
  done

let pass () = Pass.make ~name:"LOAD" ~kind:Pass.Space apply
