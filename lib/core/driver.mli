(** The convergent-scheduler driver (paper Sec. 2): initializes the
    preference matrix uniformly, applies the pass sequence, normalizes
    after every pass, records the convergence trace, and extracts the
    final space-time preferences.

    The output is split exactly as in Sec. 5: a cluster assignment for
    every instruction, and a temporal preference used as the priority of
    an independent list scheduler. *)

type quarantine = {
  pass_name : string;
  round : int;  (** 1-based *)
  reason : string;
}
(** One pass application that was rolled back: it raised a classifiable
    exception or left the matrix violating invariants (non-finite or
    negative weights, rows not summing to 1, a preplaced row stripped of
    its home-cluster mass). *)

type result = {
  assignment : int array; (** instruction -> cluster *)
  preferred_slot : int array; (** instruction -> preferred time slot *)
  trace : Trace.t;
  weights : Weights.t; (** final matrix, for inspection *)
  quarantined : quarantine list;
      (** rolled-back pass applications, in execution order; a
          misbehaving pass degrades quality, never correctness *)
  context : Context.t;
  timed_out : bool;
      (** the [deadline] expired before the sequence completed; the
          result extracts the best-so-far matrix (anytime property) *)
}

val run :
  ?seed:int -> ?nt_cap:int ->
  ?observe:(string -> Weights.t -> unit) ->
  ?deadline:float -> ?pass_budget_s:float ->
  machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Pass.t list -> result
(** [observe] is called after each pass with the (normalized) matrix —
    used by the Fig. 4-style example to print map snapshots.
    Preplaced instructions are always assigned to their home cluster,
    whatever the final weights say (correctness).

    Every pass runs inside a quarantine gate: the matrix is snapshotted
    before the pass, checked after it (and its renormalization), and
    rolled back on violation; the violation is recorded in
    [quarantined] and, when the {!Cs_obs.Obs} sink is enabled, emitted
    as a [cat = "resil"] instant + counter. The rest of the sequence
    continues on the restored matrix.

    Time robustness (the driver as an anytime algorithm — W is a valid
    preference matrix after every pass):

    - [deadline] is an absolute {!Cs_obs.Clock} time. It is checked
      between passes; on expiry the remaining passes are skipped, the
      best-so-far matrix is extracted, and [timed_out] is set. The
      driver never hangs waiting for a slow sequence.
    - [pass_budget_s] is a per-pass wall-clock budget. A pass cannot be
      preempted, so enforcement is post-hoc: a pass that overruns is
      rolled back and quarantined with a [Pass_timeout] reason, feeding
      the same quarantine/telemetry machinery as a corrupting pass. *)

val run_iterative :
  ?seed:int -> ?nt_cap:int ->
  ?observe:(string -> Weights.t -> unit) ->
  ?deadline:float -> ?pass_budget_s:float ->
  ?max_rounds:int -> ?epsilon:float ->
  machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Pass.t list ->
  result * int
(** Applies the whole sequence repeatedly on the same matrix until the
    fraction of instructions changing their preferred cluster over a
    full round drops below [epsilon] (default 0.02) or [max_rounds]
    (default 5) is reached — the paper's feature 5: "the framework
    allows a heuristic to be applied multiple times, either
    independently or as part of an iterative process". [observe] fires
    once per pass per round, as in {!run}. Returns the result and the
    number of rounds executed; the trace concatenates all rounds.

    When the {!Cs_obs.Obs} sink is enabled, both entry points also
    record per-pass timed spans ([cat = "pass"], with the 1-based round
    in [args]) and per-pass convergence counters (see {!Telemetry});
    [run_iterative] additionally wraps each round in a [cat = "round"]
    span and emits a round-level churn counter. *)

val assignment_of_weights : ?cap_factor:float -> Context.t -> Weights.t -> int array
(** Extracts the assignment from the final matrix: preplaced
    instructions are forced home; the rest claim clusters in descending
    confidence order, falling back to their next-preferred cluster once
    a cluster holds more than [cap_factor * max (n / usable clusters)
    CPL] instructions (default factor 1.1) — the preference-map analogue
    of Rawcc's merging step, preventing a popular cluster from
    serializing the region while still letting serial graphs pack
    tightly. Only clusters whose surviving functional units can execute
    an instruction's opcode are candidates ([Machine.can_execute] is a
    hard constraint), which is what makes degraded machines with
    heterogeneous surviving FUs schedulable; raises
    [Cs_resil.Error.Error (Infeasible _)] if some opcode is executable
    nowhere. *)
