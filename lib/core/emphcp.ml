let apply ~factor ctx w =
  let a = ctx.Context.analysis in
  for i = 0 to Weights.n w - 1 do
    let slot = Context.clamp_slot ctx (Cs_ddg.Analysis.earliest a i) in
    Weights.scale_time w i slot factor
  done

let pass ?(factor = 1.2) () =
  Pass.make ~params:[ ("factor", factor) ] ~name:"EMPHCP" ~kind:Pass.Time (apply ~factor)
