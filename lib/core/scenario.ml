let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fnv1a ?(h = offset_basis) s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

(* Like {!Cs_ddg.Textual.to_string} but with registers renumbered by
   first appearance (live-ins in set order, then each instruction's
   destination) and live-outs sorted by that canonical numbering.
   [Textual.of_string] renames registers on load, so the raw textual
   form of a region is not stable across a serialize/parse round trip —
   this one is: any consistent renaming of the region's registers
   yields the same canonical text. *)
let canonical_region_text region =
  let graph = region.Cs_ddg.Region.graph in
  let canon = Hashtbl.create 32 in
  let next = ref 0 in
  let id_of r =
    match Hashtbl.find_opt canon r with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.replace canon r i;
      i
  in
  let b = Buffer.create 512 in
  Printf.bprintf b "region %s\n" region.Cs_ddg.Region.name;
  Cs_ddg.Reg.Set.iter
    (fun r ->
      let cid = id_of r in
      match Cs_ddg.Reg.Map.find_opt r region.Cs_ddg.Region.live_in_homes with
      | Some home -> Printf.bprintf b "livein r%d @%d\n" cid home
      | None -> Printf.bprintf b "livein r%d\n" cid)
    (Cs_ddg.Graph.live_in_regs graph);
  Array.iter
    (fun ins ->
      let dst =
        match ins.Cs_ddg.Instr.dst with
        | Some r -> Printf.sprintf "r%d" (id_of r)
        | None -> "-"
      in
      (* SSA: sources are live-ins or earlier destinations, so they are
         already numbered by the time they are read here. *)
      let srcs = List.map (fun r -> Printf.sprintf "r%d" (id_of r)) ins.Cs_ddg.Instr.srcs in
      Printf.bprintf b "%s %s" (Cs_ddg.Opcode.to_string ins.Cs_ddg.Instr.op) dst;
      if srcs <> [] then Printf.bprintf b " <- %s" (String.concat " " srcs);
      (match ins.Cs_ddg.Instr.preplace with
      | Some c -> Printf.bprintf b " @%d" c
      | None -> ());
      if ins.Cs_ddg.Instr.tag <> "" then Printf.bprintf b " # %s" ins.Cs_ddg.Instr.tag;
      Buffer.add_char b '\n')
    (Cs_ddg.Graph.instrs graph);
  let dataflow_edge src dst =
    let consumer = Cs_ddg.Graph.instr graph dst in
    List.exists
      (fun r -> Cs_ddg.Graph.defining_instr graph r = Some src)
      consumer.Cs_ddg.Instr.srcs
  in
  for i = 0 to Cs_ddg.Graph.n graph - 1 do
    List.iter
      (fun j -> if not (dataflow_edge i j) then Printf.bprintf b "edge %d %d\n" i j)
      (Cs_ddg.Graph.succs graph i)
  done;
  Cs_ddg.Reg.Set.elements region.Cs_ddg.Region.live_outs
  |> List.map id_of |> List.sort compare
  |> List.iter (fun cid -> Printf.bprintf b "liveout r%d\n" cid);
  Buffer.contents b

let canonical_form ?(faults = []) ?(spec = "") ~machine region =
  let b = Buffer.create 1024 in
  Buffer.add_string b "machine ";
  Buffer.add_string b machine.Cs_machine.Machine.name;
  Buffer.add_string b "\nfaults ";
  Buffer.add_string b (Cs_resil.Fault.to_string faults);
  Buffer.add_string b "\nspec ";
  Buffer.add_string b spec;
  Buffer.add_string b "\nregion\n";
  Buffer.add_string b (canonical_region_text region);
  Buffer.contents b

let canonical_hash ?faults ?spec ~machine region =
  fnv1a (canonical_form ?faults ?spec ~machine region)

let hex h = Printf.sprintf "%016Lx" h
