(** The convergent-scheduling preference matrix [W(i, c, t)] (paper
    Sec. 3).

    For every instruction [i], cluster [c] and time slot [t], [W(i,c,t)]
    is the scheduler's current preference for executing [i] on [c] at
    [t]. The paper's invariants are maintained after [normalize]:

    - [0 <= W(i,c,t) <= 1]
    - for each [i], the entries sum to 1.

    Marginal sums over time (per cluster) and over clusters (per time)
    are cached incrementally so preferred slots and confidences are
    O(clusters + slots), as the paper requires. *)

type t

val create : n:int -> nc:int -> nt:int -> t
(** Uniform distribution [1 / (nc * nt)] everywhere. *)

val n : t -> int
val nc : t -> int
val nt : t -> int

val get : t -> int -> int -> int -> float
(** [get w i c t]. *)

val set : t -> int -> int -> int -> float -> unit
val add : t -> int -> int -> int -> float -> unit
val scale : t -> int -> int -> int -> float -> unit
val scale_cluster : t -> int -> int -> float -> unit
(** Scale all time slots of one (instruction, cluster). *)

val scale_time : t -> int -> int -> float -> unit
(** Scale all clusters of one (instruction, slot). *)

val cluster_weight : t -> int -> int -> float
(** Marginal [sum_t W(i,c,t)]. *)

val time_weight : t -> int -> int -> float
(** Marginal [sum_c W(i,c,t)]. *)

val row_total : t -> int -> float

val normalize : t -> int -> unit
(** Rescale instruction [i]'s entries to sum to 1; a row that has been
    squashed to all zeros is reset to uniform. *)

val normalize_all : t -> unit

val preferred_cluster : t -> int -> int
(** Cluster maximizing the time-marginal; smallest id wins ties. *)

val preferred_time : t -> int -> int

val runnerup_cluster : t -> int -> int option
(** Second-best cluster; [None] on single-cluster machines. *)

val confidence : t -> int -> float
(** Ratio of the top two cluster marginals (paper Sec. 3). [infinity]
    when there is no runner-up or its weight is zero. *)

val blend : t -> dst:int -> src:int -> keep:float -> unit
(** [blend w ~dst ~src ~keep] sets [W(dst) <- keep * W(dst) +
    (1 - keep) * W(src)] pointwise — the paper's linear combination with
    [n = 2, i1 = j]. [keep] must be in [\[0, 1\]]. *)

val preferred_clusters : t -> int array
(** Snapshot of every instruction's preferred cluster. *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] in place with [src]'s contents (entries and cached
    marginals). Dimensions must match. Used to roll back a quarantined
    pass without reallocating. *)

val validate : t -> (unit, string) result
(** Fast single-sweep check used as the pass-quarantine gate: every
    entry finite and non-negative, every row summing to 1 (i.e. the
    matrix is post-normalization sane). Returns the first problem
    found. See {!check_invariants} for the exhaustive variant that also
    audits the marginal caches. *)

val check_invariants : t -> (unit, string) result
(** Verifies range, row sums (post-normalization), and cache
    consistency; used by tests and assertions. *)

val pp_cluster_map : Format.formatter -> t -> unit
(** ASCII rendering of the cluster-preference map in the style of the
    paper's Fig. 4(b-g): one row per instruction, one column per
    cluster, darker glyph = stronger preference. *)
