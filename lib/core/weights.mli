(** The convergent-scheduling preference matrix [W(i, c, t)] (paper
    Sec. 3), stored as one contiguous instr-major float64 block:

    {v index(i, c, t) = ((i * nc) + c) * nt + t v}

    For every instruction [i], cluster [c] and time slot [t], [W(i,c,t)]
    is the scheduler's current preference for executing [i] on [c] at
    [t]. The paper's invariants are maintained after [normalize]:

    - [0 <= W(i,c,t) <= 1]
    - for each [i], the entries sum to 1.

    Marginal sums over time (per cluster), over clusters (per time) and
    over the whole row are cached incrementally so preferred slots and
    confidences are O(clusters + slots), as the paper requires.

    Every write also marks its row {e touched}, so renormalization, the
    driver's quarantine gate and snapshot maintenance run in time
    proportional to the rows a pass actually wrote (see the
    [touched_*], [normalize_touched], [validate_touched] and
    [sync_rows] group below).

    Two implementations back the same interface and perform the same
    floating-point operations in the same order, so any pass sequence
    replayed through both yields bit-identical matrices:

    - {!Flat}: a [Bigarray] float64 block swept by fused unsafe
      kernels — the production path;
    - {!Legacy}: the original boxed [float array] walked through the
      original bounds-checked per-element chain — retained for one PR
      as the differential oracle and benchmark baseline. *)

type t

(** {1 Implementation selection (one-PR feature flag)} *)

type impl =
  | Flat  (** contiguous Bigarray + fused kernels (default) *)
  | Legacy  (** pre-kernel float-array representation, kept as oracle *)

val impl_name : impl -> string
val impl_of_string : string -> (impl, string) result

val default_impl : unit -> impl
(** Initial value: [Flat], or the [CSCHED_WEIGHTS_IMPL] environment
    variable ([flat] / [legacy]) when set and valid. *)

val set_default_impl : impl -> unit
(** Used by the [--weights-impl] CLI flag; affects subsequent
    {!create} calls that don't pass [?impl]. *)

val create : n:int -> nc:int -> nt:int -> t
(** Uniform distribution [1 / (nc * nt)] everywhere, backed by
    {!default_impl}. *)

val create_with : impl:impl -> n:int -> nc:int -> nt:int -> t
(** {!create} with an explicit implementation — used by the
    differential tests and the kernel benchmark. *)

val impl : t -> impl

val n : t -> int
val nc : t -> int
val nt : t -> int

(** {1 Element access} *)

val get : t -> int -> int -> int -> float
(** [get w i c t]. *)

val set : t -> int -> int -> int -> float -> unit
val add : t -> int -> int -> int -> float -> unit
val scale : t -> int -> int -> int -> float -> unit

(** {1 Fused row kernels}

    Each is a single sweep over contiguous storage; all of them reject
    a produced value that is non-finite or negative exactly as {!set}
    does, and leave a row's touched flag unset when nothing actually
    changed (e.g. scaling by 1.0). *)

val scale_cluster : t -> int -> int -> float -> unit
(** Scale all time slots of one (instruction, cluster) — one
    contiguous lane of [nt] doubles. *)

val scale_time : t -> int -> int -> float -> unit
(** Scale all clusters of one (instruction, slot) — an [nt]-strided
    walk. *)

val scale_clusters : t -> int -> float array -> unit
(** [scale_clusters w i factors] multiplies every entry [W(i,c,t)] by
    [factors.(c)] in one row sweep; [factors] must have length [nc].
    Equivalent to [scale_cluster w i c factors.(c)] for each [c] in
    order — the shape the LOAD / COMM / FEASIBLE / PLACEPROP kernels
    reduce to. *)

val map_row : t -> int -> (int -> int -> float -> float) -> unit
(** [map_row w i f] rewrites row [i] as [W(i,c,t) <- f c t W(i,c,t)],
    visiting entries in flat (cluster-major) order. *)

val mask_time_window : t -> int -> lo:int -> hi:int -> unit
(** [mask_time_window w i ~lo ~hi] zeroes every slot of row [i]
    outside the inclusive window [lo..hi] — INITTIME's shape.
    Equivalent to
    [map_row w i (fun _ t v -> if t < lo || t > hi then 0.0 else v)]
    without the per-element closure call. *)

(** {1 Cached marginals} *)

val cluster_weight : t -> int -> int -> float
(** Marginal [sum_t W(i,c,t)]; O(1) from the cache. *)

val time_weight : t -> int -> int -> float
(** Marginal [sum_c W(i,c,t)]; O(1) from the cache. *)

val row_total : t -> int -> float
(** Cached [sum_{c,t} W(i,c,t)]; O(1). *)

val normalize : t -> int -> unit
(** Rescale instruction [i]'s entries to sum to 1 and rebuild its
    marginal caches exactly; a row that has been squashed to all zeros
    is reset to uniform. *)

val normalize_all : t -> unit

val normalize_touched : t -> unit
(** {!normalize} only the rows written since the last
    {!clear_touched} — the driver's fused per-pass renormalize. Rows a
    pass never wrote keep their exact bits. *)

(** {1 Dirty-row tracking}

    A row is {e touched} once any write changes one of its entries;
    the flag set accumulates until {!clear_touched}. The driver clears
    at the start of each pass, so after the pass the touched set is
    exactly the rows that pass wrote. *)

val is_touched : t -> int -> bool
val touched_count : t -> int

val touched_rows : t -> int list
(** Ascending row ids. *)

val clear_touched : t -> unit

val sync_rows : rows:int list -> src:t -> dst:t -> unit
(** Copy the listed rows — entries and cached marginals — from [src]
    into [dst] (same dimensions and implementation required). With
    [rows = touched_rows w] this is the O(touched) half of the
    quarantine protocol: rollback restores exactly the rows a
    misbehaving pass wrote ([src] = snapshot, [dst] = w), and a clean
    pass refreshes only those rows in its snapshot ([src] = w,
    [dst] = snapshot). [dst]'s touched flags are left alone. *)

(** {1 Preferences and confidence} *)

val preferred_cluster : t -> int -> int
(** Cluster maximizing the time-marginal; smallest id wins ties. *)

val preferred_time : t -> int -> int

val runnerup_cluster : t -> int -> int option
(** Second-best cluster; [None] on single-cluster machines. *)

val confidence_sentinel : float
(** [1e9]. Finite stand-in for "no competition": returned (and used as
    a clamp) by {!confidence} where the ratio used to be [infinity],
    so telemetry means/percentiles over confidences never propagate
    [inf]/[nan]. *)

val confidence : t -> int -> float
(** Ratio of the top two cluster marginals (paper Sec. 3), clamped to
    [confidence_sentinel]; exactly [confidence_sentinel] when there is
    no runner-up or its weight is zero. Always finite. *)

val blend : t -> dst:int -> src:int -> keep:float -> unit
(** [blend w ~dst ~src ~keep] sets [W(dst) <- keep * W(dst) +
    (1 - keep) * W(src)] pointwise — the paper's linear combination with
    [n = 2, i1 = j]. [keep] must be in [\[0, 1\]]. *)

val preferred_clusters : t -> int array
(** Snapshot of every instruction's preferred cluster. *)

(** {1 Copy / restore} *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] in place with [src]'s contents (entries, cached
    marginals and touched flags). Dimensions and implementation must
    match. *)

(** {1 Validation} *)

val validate : t -> (unit, string) result
(** Fast single-sweep check over every row: every entry finite and
    non-negative, every row summing to 1 (i.e. the matrix is
    post-normalization sane). Returns the first problem found. See
    {!check_invariants} for the exhaustive variant that also audits
    the marginal caches. *)

val validate_touched : t -> (unit, string) result
(** {!validate} restricted to rows written since {!clear_touched} —
    the pass-quarantine gate. Sound because untouched rows passed the
    previous gate and have not changed since. *)

val check_invariants : t -> (unit, string) result
(** Verifies range, row sums (post-normalization), and consistency of
    all three marginal caches against freshly recomputed sums; used by
    tests and assertions. *)

val pp_cluster_map : Format.formatter -> t -> unit
(** ASCII rendering of the cluster-preference map in the style of the
    paper's Fig. 4(b-g): one row per instruction, one column per
    cluster, darker glyph = stronger preference. *)
