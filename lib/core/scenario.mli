(** Canonical scenario identity: one stable fingerprint for "schedule
    this DDG on this machine under these faults with this pass spec".

    Two requests with the same canonical hash are the same scheduling
    problem and must produce the same schedule, so the hash is usable as

    - the gateway's consistent-hash routing and result-cache key (same
      scenario ⇒ same shard ⇒ cache hit, no rescheduling), and
    - the {!Cs_check} repro-file fingerprint (a repro whose content no
      longer matches its recorded fingerprint is corrupt).

    The hash is FNV-1a (64-bit) over {!canonical_form}: a textual
    concatenation of the machine name, the canonical fault-plan string,
    the scheduler/pass spec, and the region in a register-renaming
    invariant variant of the {!Cs_ddg.Textual} format — so structurally
    equal scenarios hash identically even across a serialize/parse round
    trip (which renumbers registers). *)

val fnv1a : ?h:int64 -> string -> int64
(** 64-bit FNV-1a. [h] continues a previous hash (defaults to the FNV
    offset basis), so multi-part keys can be folded without
    concatenating strings. *)

val canonical_form :
  ?faults:Cs_resil.Fault.plan ->
  ?spec:string ->
  machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t ->
  string
(** The exact text that is hashed; stable across process runs and OCaml
    versions. [faults] defaults to the empty plan, [spec] (free-form
    scheduler + pass-sequence + seed description) to [""]. *)

val canonical_hash :
  ?faults:Cs_resil.Fault.plan ->
  ?spec:string ->
  machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t ->
  int64
(** [fnv1a (canonical_form ...)]. *)

val hex : int64 -> string
(** 16 lowercase hex digits, e.g. ["cbf29ce484222325"]. *)
