let apply ~factor ~live_in_factor ctx w =
  let graph = Context.graph ctx in
  for i = 0 to Weights.n w - 1 do
    let ins = Cs_ddg.Graph.instr graph i in
    match ins.Cs_ddg.Instr.preplace with
    | Some c -> Weights.scale_cluster w i c factor
    | None ->
      (match Context.home_of ctx i with
      | Some c -> Weights.scale_cluster w i c live_in_factor
      | None -> ())
  done

let pass ?(factor = 100.0) ?(live_in_factor = 2.0) () =
  Pass.make
    ~params:[ ("factor", factor); ("live_in_factor", live_in_factor) ]
    ~name:"PLACE" ~kind:Pass.Space
    (apply ~factor ~live_in_factor)
