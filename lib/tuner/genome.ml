type gene = { pass : string; params : (string * float) list }
type t = gene list

let min_length = 2
let max_length = 16

let gene_pool =
  (* CHAOS is the fault-injection pass: valid to parse and replay, but
     never worth searching over. *)
  List.filter (fun n -> n <> "INITTIME" && n <> "CHAOS") Cs_core.Sequence.available

let default_gene name =
  let upper = String.uppercase_ascii name in
  match Cs_core.Sequence.default_params upper with
  | Some params -> { pass = upper; params }
  | None -> invalid_arg (Printf.sprintf "Genome.default_gene: unknown pass %S" name)

let of_passes passes =
  List.map (fun p -> { pass = p.Cs_core.Pass.name; params = p.Cs_core.Pass.params }) passes

let of_machine machine =
  of_passes
    (if Cs_machine.Machine.is_mesh machine then Cs_core.Sequence.raw_default ()
     else Cs_core.Sequence.vliw_default ())

let gene_to_string g =
  if g.params = [] then g.pass
  else
    g.pass ^ "="
    ^ String.concat ":"
        (List.map (fun (k, v) -> Printf.sprintf "%s=%.12g" k v) g.params)

let to_string t = String.concat "," (List.map gene_to_string t)

let to_passes t =
  Cs_core.Sequence.of_names (List.map gene_to_string t)

let of_string s =
  let tokens = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest ->
      (match Cs_core.Sequence.of_spec tok with
      | Ok p -> go ({ pass = p.Cs_core.Pass.name; params = p.Cs_core.Pass.params } :: acc) rest
      | Error _ as e -> e)
  in
  match go [] tokens with
  | Error _ as e -> e
  | Ok genes ->
    let n = List.length genes in
    if n < min_length || n > max_length then
      Error
        (Printf.sprintf "genome length %d outside tuner bounds [%d, %d]" n min_length
           max_length)
    else Ok genes

let equal a b = to_string a = to_string b
let compare_canonical a b = String.compare (to_string a) (to_string b)

(* --- parameter tuning ranges --- *)

type range = Bool | Int of int * int | Float of float * float | Log of float * float

let range_of ~pass ~key ~default =
  match (pass, key) with
  | _, ("grand" | "per_slot" | "weighted") -> Bool
  | "LEVEL", "stride" -> Int (1, 8)
  | "LEVEL", "granularity" -> Int (1, 6)
  | "REGPRESS", "registers_per_cluster" -> Int (4, 64)
  | "COMM", "eps" -> Log (1e-6, 1e-2)
  | "PLACE", "factor" -> Float (5.0, 500.0)
  | _, "confidence_threshold" -> Float (1.0, 4.0)
  | _, "blend_keep" -> Float (0.05, 0.95)
  | _, "grand_weight" -> Float (0.1, 1.0)
  | _, "strengthen_preferred" -> Float (1.0, 4.0)
  | _, "amplitude" -> Float (0.1, 4.0)
  | _, "live_in_factor" -> Float (0.5, 8.0)
  | _, ("factor" | "boost") -> Float (1.0, 8.0)
  | _ -> Float (max 1e-6 (default /. 4.0), (default *. 4.0) +. 1e-6)

(* Quantize to 6 significant digits so canonical strings round-trip
   exactly (%.12g then prints every stored value losslessly). *)
let quantize v = float_of_string (Printf.sprintf "%.6g" v)

let clampf lo hi v = Float.min hi (Float.max lo v)

let perturb_value rng ~pass ~key ~default v =
  match range_of ~pass ~key ~default with
  | Bool -> if v <> 0.0 then 0.0 else 1.0
  | Int (lo, hi) ->
    let step = Cs_util.Rng.choose rng [| -2; -1; 1; 2 |] in
    float_of_int (max lo (min hi (int_of_float v + step)))
  | Float (lo, hi) ->
    (* multiplicative jitter in [0.6, 1.6], occasionally a fresh draw *)
    if Cs_util.Rng.float rng 1.0 < 0.15 then
      quantize (lo +. Cs_util.Rng.float rng (hi -. lo))
    else quantize (clampf lo hi (v *. (0.6 +. Cs_util.Rng.float rng 1.0)))
  | Log (lo, hi) ->
    let scale = Float.pow 10.0 (Cs_util.Rng.float rng 2.0 -. 1.0) in
    quantize (clampf lo hi (v *. scale))

let jitter_gene rng g =
  let defaults =
    match Cs_core.Sequence.default_params g.pass with Some d -> d | None -> []
  in
  let params =
    List.map
      (fun (k, v) ->
        if Cs_util.Rng.bool rng then
          let default = try List.assoc k defaults with Not_found -> v in
          (k, perturb_value rng ~pass:g.pass ~key:k ~default v)
        else (k, v))
      g.params
  in
  { g with params }

let random_gene rng =
  let name = Cs_util.Rng.choose rng (Array.of_list gene_pool) in
  jitter_gene rng (default_gene name)

(* --- mutation --- *)

(* The leading INITTIME (when present) is pinned: every Table 1 sequence
   starts with it and removing it leaves the time axis unconverged. *)
let head_start t = match t with { pass = "INITTIME"; _ } :: _ -> 1 | _ -> 0

let mutate rng t =
  let arr = Array.of_list t in
  let n = Array.length arr in
  let start = head_start t in
  let movable = n - start in
  let with_params =
    List.filter (fun i -> arr.(i).params <> []) (List.init movable (fun i -> i + start))
  in
  let ops =
    List.concat
      [ (if with_params <> [] then [ `Perturb ] else []);
        (if n < max_length then [ `Insert ] else []);
        (if movable > 1 && n > min_length then [ `Delete ] else []);
        (if movable > 1 then [ `Swap ] else []) ]
  in
  if ops = [] then t
  else
    match Cs_util.Rng.choose rng (Array.of_list ops) with
    | `Perturb ->
      let i = List.nth with_params (Cs_util.Rng.int rng (List.length with_params)) in
      let g = arr.(i) in
      let pi = Cs_util.Rng.int rng (List.length g.params) in
      let defaults =
        match Cs_core.Sequence.default_params g.pass with Some d -> d | None -> []
      in
      let params =
        List.mapi
          (fun j (k, v) ->
            if j = pi then
              let default = try List.assoc k defaults with Not_found -> v in
              (k, perturb_value rng ~pass:g.pass ~key:k ~default v)
            else (k, v))
          g.params
      in
      arr.(i) <- { g with params };
      Array.to_list arr
    | `Insert ->
      let pos = start + Cs_util.Rng.int rng (movable + 1) in
      let g = random_gene rng in
      let l = Array.to_list arr in
      let rec ins i = function
        | rest when i = 0 -> g :: rest
        | x :: rest -> x :: ins (i - 1) rest
        | [] -> [ g ]
      in
      ins pos l
    | `Delete ->
      let pos = start + Cs_util.Rng.int rng movable in
      List.filteri (fun i _ -> i <> pos) (Array.to_list arr)
    | `Swap ->
      let i = start + Cs_util.Rng.int rng movable in
      let j = start + Cs_util.Rng.int rng movable in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      Array.to_list arr

(* --- crossover --- *)

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

let crossover rng a b =
  let la = List.length a and lb = List.length b in
  let start = max (head_start a) (head_start b) in
  if la <= start || lb <= start then a
  else
    let rec attempt tries =
      if tries = 0 then a
      else
        let cut1 = start + Cs_util.Rng.int rng (la - start + 1) in
        let cut2 = start + Cs_util.Rng.int rng (lb - start + 1) in
        let len = cut1 + (lb - cut2) in
        if len >= min_length && len <= max_length then take cut1 a @ drop cut2 b
        else attempt (tries - 1)
    in
    attempt 8

(* --- random genomes (fuzzing) --- *)

let random ?(max_mutations = 8) rng machine =
  let g = ref (of_machine machine) in
  for _ = 1 to Cs_util.Rng.int rng (max_mutations + 1) do
    g := mutate rng !g
  done;
  !g
