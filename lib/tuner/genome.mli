(** Genome representation for pass-sequence autotuning.

    A genome is a list of genes; a gene is a pass name plus a full
    assignment of that pass's numeric parameters. The search space is
    exactly what {!Cs_core.Sequence.of_names} can parse, so any genome
    — evolved or hand-written — can be replayed with
    [csched run -p <string>].

    All operators are validity-preserving: they only produce genomes
    that {!of_string} accepts, with length within [min_length] /
    [max_length] and every parameter inside its tuning range. *)

type gene = {
  pass : string; (** registry name, uppercase *)
  params : (string * float) list; (** full assignment, declaration order *)
}

type t = gene list

val min_length : int
val max_length : int

val gene_pool : string list
(** Pass names the tuner may insert — {!Cs_core.Sequence.available}
    minus INITTIME, which is pinned as every genome's first gene (the
    paper's sequences all start by initializing temporal preferences,
    and without it the time axis never converges). *)

val default_gene : string -> gene
(** Gene with the registry's default parameters.
    Raises [Invalid_argument] on an unknown pass. *)

val of_passes : Cs_core.Pass.t list -> t
(** Lift an instantiated sequence (e.g. [Sequence.vliw_default ()]) into
    a genome. *)

val of_machine : Cs_machine.Machine.t -> t
(** The machine's Table 1 default sequence as a genome — the seed
    individual and the baseline the tuner must beat. *)

val to_passes : t -> (Cs_core.Pass.t list, string) result

val to_string : t -> string
(** Canonical form: genes joined with [","], every parameter emitted
    ([NAME=k=v:...]), floats printed with enough digits to round-trip.
    Used as the fitness-cache key; equal genomes have equal strings. *)

val of_string : string -> (t, string) result
(** Parses anything {!Cs_core.Sequence.of_names} accepts, including
    partial parameter lists (missing keys take defaults). Enforces the
    tuner's length bounds. [of_string (to_string g) = Ok g]. *)

val mutate : Cs_util.Rng.t -> t -> t
(** One of: insert a random gene (params jittered around defaults),
    delete a gene, swap two genes, or perturb one parameter of one
    gene. Respects length bounds and parameter ranges; never touches
    the leading INITTIME. *)

val crossover : Cs_util.Rng.t -> t -> t -> t
(** One-point crossover with independent cut points (so lengths can
    drift); cut points are resampled until the child's length is in
    bounds, falling back to the first parent. *)

val equal : t -> t -> bool
val compare_canonical : t -> t -> int
(** Total order on canonical strings — deterministic tie-breaking. *)

val random : ?max_mutations:int -> Cs_util.Rng.t -> Cs_machine.Machine.t -> t
(** The machine's default genome after 0..[max_mutations] (default 8)
    random {!mutate} steps — a validity-preserving sample of the pass
    sequence space centered on Table 1. Used by the differential fuzzer
    to draw randomized convergent pass sequences. *)
