(** Crash-safe serialization of {!Ga.snapshot}.

    [csched tune --checkpoint FILE] saves a snapshot after every
    generation through {!Cs_util.Fsio.write_atomic}, so a SIGKILL at
    any moment leaves either the previous complete checkpoint or the
    new one. [csched tune --resume] reloads it and continues the run
    bit-identically (see {!Ga.run}).

    Floats round-trip exactly (hex float literals) and the RNG state is
    carried as a full 64-bit value, which is what makes resumed best
    genomes and fitnesses equal to an uninterrupted run's, bit for
    bit. *)

val save : path:string -> Ga.snapshot -> unit

val load : string -> (Ga.snapshot, string) result
(** Parse errors and missing files are reported as [Error _], never
    raised. *)
