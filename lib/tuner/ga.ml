type params = {
  population : int;
  generations : int;
  elite : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
  seed : int;
  domains : int;
}

let default_params =
  { population = 16; generations = 10; elite = 2; tournament = 3;
    crossover_rate = 0.7; mutation_rate = 0.9; seed = 42; domains = 1 }

type progress = {
  generation : int;
  gen_best : Genome.t;
  gen_best_fitness : float;
  evaluations : int;
  cache_hits : int;
}

type snapshot = {
  gen_done : int;
  rng_state : int64;
  population : Genome.t array;
  snap_best : Genome.t;
  snap_best_fitness : float;
  snap_default_fitness : float;
  history_prefix : float array;
}

type outcome = {
  best : Genome.t;
  best_fitness : float;
  default_genome : Genome.t;
  default_fitness : float;
  history : float array;
  evaluations : int;
  cache_hits : int;
  generations_run : int;
  completed : bool;
}

(* Higher fitness first; canonical-string order breaks ties so the
   ranking never depends on evaluation or insertion order. *)
let better (fa, ga) (fb, gb) =
  if fa <> fb then fa > fb else Genome.compare_canonical ga gb < 0

let rank pop fitness =
  let idx = Array.init (Array.length pop) Fun.id in
  Array.sort
    (fun i j ->
      if fitness.(i) <> fitness.(j) then compare fitness.(j) fitness.(i)
      else Genome.compare_canonical pop.(i) pop.(j))
    idx;
  idx

let tournament_pick rng ~size pop fitness =
  let n = Array.length pop in
  let best = ref (Cs_util.Rng.int rng n) in
  for _ = 2 to size do
    let c = Cs_util.Rng.int rng n in
    if better (fitness.(c), pop.(c)) (fitness.(!best), pop.(!best)) then best := c
  done;
  pop.(!best)

let run ?on_generation ?checkpoint ?resume ?deadline (p : params) fit =
  if p.population <= 0 then invalid_arg "Ga.run: population must be positive";
  if p.generations <= 0 then invalid_arg "Ga.run: generations must be positive";
  (match resume with
  | Some s when Array.length s.population <> p.population ->
    invalid_arg "Ga.run: snapshot population size does not match params"
  | _ -> ());
  let default_genome = Genome.of_machine (Fitness.machine fit) in
  (* All stochastic state lives in one generator; a snapshot therefore
     needs only its 64-bit state plus the population to continue
     bit-identically. *)
  let rng, pop, best, best_fitness, default_fitness, history, start_gen =
    match resume with
    | Some s ->
      let history = Array.make p.generations 0.0 in
      Array.blit s.history_prefix 0 history 0
        (min (Array.length s.history_prefix) p.generations);
      ( Cs_util.Rng.of_state s.rng_state,
        Array.copy s.population,
        ref s.snap_best,
        ref s.snap_best_fitness,
        ref s.snap_default_fitness,
        history,
        min s.gen_done p.generations )
    | None ->
      let rng = Cs_util.Rng.create p.seed in
      let seed_variant () =
        let g = ref default_genome in
        for _ = 1 to 1 + Cs_util.Rng.int rng 3 do
          g := Genome.mutate rng !g
        done;
        !g
      in
      let pop =
        Array.init p.population (fun i ->
            if i = 0 then default_genome else seed_variant ())
      in
      ( rng, pop, ref default_genome, ref neg_infinity, ref nan,
        Array.make p.generations 0.0, 0 )
  in
  let gen = ref start_gen in
  let out_of_time () =
    (* Budget enforcement between generations: at least one generation
       beyond the resume point always runs, so a tight budget still
       makes progress instead of spinning on zero-generation runs. *)
    match deadline with
    | None -> false
    | Some t -> !gen > start_gen && Cs_obs.Clock.now () >= t
  in
  while !gen < p.generations && not (out_of_time ()) do
    let g = !gen in
    let fitness =
      Cs_obs.Obs.span ~cat:"tune"
        ~args:[ ("generation", Cs_obs.Obs.Int g) ]
        "ga:generation"
        (fun () -> Fitness.eval ~domains:p.domains fit (Array.to_list pop))
    in
    if Float.is_nan !default_fitness then
      (* generation 0 always contains the untouched default at index 0 *)
      default_fitness := fitness.(0);
    let order = rank pop fitness in
    let top = order.(0) in
    if better (fitness.(top), pop.(top)) (!best_fitness, !best) then begin
      best := pop.(top);
      best_fitness := fitness.(top)
    end;
    history.(g) <- !best_fitness;
    if Cs_obs.Obs.enabled () then begin
      let mean =
        Array.fold_left ( +. ) 0.0 fitness /. float_of_int (Array.length fitness)
      in
      Cs_obs.Obs.counter ~cat:"tune" "ga:fitness"
        [ ("generation", float_of_int g);
          ("gen_best", fitness.(top));
          ("gen_mean", mean);
          ("best_so_far", !best_fitness);
          ("evaluations", float_of_int (Fitness.evaluations fit));
          ("cache_hits", float_of_int (Fitness.cache_hits fit)) ]
    end;
    Option.iter
      (fun f ->
        f
          { generation = g; gen_best = pop.(top); gen_best_fitness = fitness.(top);
            evaluations = Fitness.evaluations fit; cache_hits = Fitness.cache_hits fit })
      on_generation;
    if g < p.generations - 1 then begin
      let next = Array.make p.population default_genome in
      let elite = min p.elite p.population in
      for i = 0 to elite - 1 do
        next.(i) <- pop.(order.(i))
      done;
      for i = elite to p.population - 1 do
        let a = tournament_pick rng ~size:p.tournament pop fitness in
        let child =
          if Cs_util.Rng.float rng 1.0 < p.crossover_rate then
            Genome.crossover rng a (tournament_pick rng ~size:p.tournament pop fitness)
          else a
        in
        let child =
          if Cs_util.Rng.float rng 1.0 < p.mutation_rate then Genome.mutate rng child
          else child
        in
        next.(i) <- child
      done;
      Array.blit next 0 pop 0 p.population
    end;
    incr gen;
    (* The snapshot is taken after breeding, so [population] is the
       generation the resumed run evaluates first and the RNG state has
       already consumed this generation's draws — continuation is
       bit-identical to never having stopped. *)
    Option.iter
      (fun f ->
        f
          { gen_done = !gen; rng_state = Cs_util.Rng.state rng;
            population = Array.copy pop; snap_best = !best;
            snap_best_fitness = !best_fitness;
            snap_default_fitness = !default_fitness;
            history_prefix = Array.sub history 0 !gen })
      checkpoint
  done;
  { best = !best; best_fitness = !best_fitness;
    default_genome; default_fitness = !default_fitness;
    history = Array.sub history 0 !gen;
    evaluations = Fitness.evaluations fit;
    cache_hits = Fitness.cache_hits fit;
    generations_run = !gen;
    completed = !gen >= p.generations }
