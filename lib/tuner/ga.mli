(** Deterministic, seeded genetic algorithm over pass-sequence genomes.

    Tournament selection with elitism. The initial population is the
    machine's Table 1 default plus mutated variants of it, and elites
    survive unchanged, so the final best is never worse than the
    hand-tuned default on the training suite.

    Determinism: all stochastic choices flow through one
    {!Cs_util.Rng.t} seeded from [params.seed], fitness evaluation is
    order-independent (see {!Fitness.eval}), and every ranking
    tie-break falls back to the canonical genome string — so the same
    seed yields the same best genome regardless of [domains]. *)

type params = {
  population : int;
  generations : int;
  elite : int; (** individuals copied unchanged each generation *)
  tournament : int; (** tournament size for parent selection *)
  crossover_rate : float;
  mutation_rate : float;
  seed : int;
  domains : int; (** worker domains for fitness evaluation *)
}

val default_params : params
(** population 16, generations 10, elite 2, tournament 3,
    crossover 0.7, mutation 0.9, seed 42, domains 1. *)

type progress = {
  generation : int;
  gen_best : Genome.t;
  gen_best_fitness : float;
  evaluations : int;
  cache_hits : int;
}

type snapshot = {
  gen_done : int; (** generations fully completed (evaluation + breeding) *)
  rng_state : int64; (** {!Cs_util.Rng.state} after this generation's draws *)
  population : Genome.t array; (** the population the next generation evaluates *)
  snap_best : Genome.t;
  snap_best_fitness : float;
  snap_default_fitness : float;
  history_prefix : float array; (** best-so-far after each completed generation *)
}
(** Everything needed to continue a run bit-identically: all stochastic
    state flows through one {!Cs_util.Rng.t}, and fitness evaluation is
    a pure function of the genome, so state + population + bests fully
    determine the remainder of the run. Serialized by
    {!Checkpoint.save}. *)

type outcome = {
  best : Genome.t;
  best_fitness : float;
  default_genome : Genome.t;
  default_fitness : float;
  history : float array;
      (** best-so-far fitness after each generation actually run *)
  evaluations : int; (** simulated candidates (cache misses) *)
  cache_hits : int;
  generations_run : int;
  completed : bool;
      (** [false] iff the [deadline] budget expired before
          [params.generations] generations ran *)
}

val run :
  ?on_generation:(progress -> unit) ->
  ?checkpoint:(snapshot -> unit) ->
  ?resume:snapshot ->
  ?deadline:float ->
  params -> Fitness.t -> outcome
(** Raises [Invalid_argument] on a non-positive population or
    generation count, or a [resume] snapshot whose population size
    disagrees with [params].

    [checkpoint] fires after every completed generation with a snapshot
    that, passed back as [resume] with the same [params] (and a fitness
    function over the same suite), continues the run bit-identically —
    the final best genome and fitness equal those of an uninterrupted
    run. [deadline] (absolute {!Cs_obs.Clock} time) stops the run
    between generations once it expires; at least one generation beyond
    the start/resume point always runs. Resumed runs restart the
    {!Fitness.evaluations} / {!Fitness.cache_hits} counters (the cache
    itself is process-local), which affects reporting only, never the
    search trajectory. *)
