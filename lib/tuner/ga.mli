(** Deterministic, seeded genetic algorithm over pass-sequence genomes.

    Tournament selection with elitism. The initial population is the
    machine's Table 1 default plus mutated variants of it, and elites
    survive unchanged, so the final best is never worse than the
    hand-tuned default on the training suite.

    Determinism: all stochastic choices flow through one
    {!Cs_util.Rng.t} seeded from [params.seed], fitness evaluation is
    order-independent (see {!Fitness.eval}), and every ranking
    tie-break falls back to the canonical genome string — so the same
    seed yields the same best genome regardless of [domains]. *)

type params = {
  population : int;
  generations : int;
  elite : int; (** individuals copied unchanged each generation *)
  tournament : int; (** tournament size for parent selection *)
  crossover_rate : float;
  mutation_rate : float;
  seed : int;
  domains : int; (** worker domains for fitness evaluation *)
}

val default_params : params
(** population 16, generations 10, elite 2, tournament 3,
    crossover 0.7, mutation 0.9, seed 42, domains 1. *)

type progress = {
  generation : int;
  gen_best : Genome.t;
  gen_best_fitness : float;
  evaluations : int;
  cache_hits : int;
}

type outcome = {
  best : Genome.t;
  best_fitness : float;
  default_genome : Genome.t;
  default_fitness : float;
  history : float array; (** best-so-far fitness after each generation *)
  evaluations : int; (** simulated candidates (cache misses) *)
  cache_hits : int;
}

val run : ?on_generation:(progress -> unit) -> params -> Fitness.t -> outcome
(** Raises [Invalid_argument] on a non-positive population or
    generation count. *)
