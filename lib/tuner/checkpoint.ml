(* GA checkpoint files: one JSON object, written crash-safely.

   Floats are serialized as hex float literals ("%h") rather than JSON
   numbers: resume must be bit-identical, and a decimal round-trip
   through the JSON printer could perturb the carried best fitness.
   The RNG state is a decimal int64 string for the same reason (JSON
   numbers are doubles; 64-bit states do not fit). *)

let version = 1

let float_str f = Printf.sprintf "%h" f
let genome_str g = Genome.to_string g

let to_json (s : Ga.snapshot) =
  let open Cs_obs.Json in
  Obj
    [ ("version", Num (float_of_int version));
      ("kind", Str "ga");
      ("gen_done", Num (float_of_int s.Ga.gen_done));
      ("rng_state", Str (Int64.to_string s.Ga.rng_state));
      ("population",
       List (Array.to_list (Array.map (fun g -> Str (genome_str g)) s.Ga.population)));
      ("best", Str (genome_str s.Ga.snap_best));
      ("best_fitness", Str (float_str s.Ga.snap_best_fitness));
      ("default_fitness", Str (float_str s.Ga.snap_default_fitness));
      ("history",
       List (Array.to_list (Array.map (fun f -> Str (float_str f)) s.Ga.history_prefix)))
    ]

let ( let* ) = Result.bind

let str_member key json =
  match Cs_obs.Json.member key json with
  | Some (Cs_obs.Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: missing string field %S" key)

let int_member key json =
  match Cs_obs.Json.member key json with
  | Some (Cs_obs.Json.Num n) -> Ok (int_of_float n)
  | _ -> Error (Printf.sprintf "checkpoint: missing numeric field %S" key)

let float_of_hex key s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "checkpoint: bad float in %S: %s" key s)

let genome_of_str s =
  match Genome.of_string s with
  | Ok g -> Ok g
  | Error e -> Error (Printf.sprintf "checkpoint: bad genome %S: %s" s e)

let list_member key json =
  match Cs_obs.Json.member key json with
  | Some (Cs_obs.Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: missing list field %S" key)

let strings_of key l =
  List.fold_left
    (fun acc v ->
      let* acc = acc in
      match v with
      | Cs_obs.Json.Str s -> Ok (s :: acc)
      | _ -> Error (Printf.sprintf "checkpoint: non-string entry in %S" key))
    (Ok []) l
  |> Result.map List.rev

let of_json json =
  let* v = int_member "version" json in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "checkpoint: unsupported version %d" v)
  in
  let* gen_done = int_member "gen_done" json in
  let* rng_str = str_member "rng_state" json in
  let* rng_state =
    match Int64.of_string_opt rng_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "checkpoint: bad rng_state %S" rng_str)
  in
  let* pop_json = list_member "population" json in
  let* pop_strs = strings_of "population" pop_json in
  let* population =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* g = genome_of_str s in
        Ok (g :: acc))
      (Ok []) pop_strs
    |> Result.map (fun l -> Array.of_list (List.rev l))
  in
  let* best_str = str_member "best" json in
  let* snap_best = genome_of_str best_str in
  let* bf_str = str_member "best_fitness" json in
  let* snap_best_fitness = float_of_hex "best_fitness" bf_str in
  let* df_str = str_member "default_fitness" json in
  let* snap_default_fitness = float_of_hex "default_fitness" df_str in
  let* hist_json = list_member "history" json in
  let* hist_strs = strings_of "history" hist_json in
  let* history =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* f = float_of_hex "history" s in
        Ok (f :: acc))
      (Ok []) hist_strs
    |> Result.map (fun l -> Array.of_list (List.rev l))
  in
  Ok
    { Ga.gen_done; rng_state; population; snap_best; snap_best_fitness;
      snap_default_fitness; history_prefix = history }

let save ~path s =
  Cs_util.Fsio.write_atomic ~path (Cs_obs.Json.to_string (to_json s) ^ "\n")

let load path =
  match Cs_util.Fsio.read_opt path with
  | None -> Error (Printf.sprintf "checkpoint: %s does not exist" path)
  | Some content ->
    let* json =
      match Cs_obs.Json.of_string content with
      | Ok j -> Ok j
      | Error e -> Error (Printf.sprintf "checkpoint: %s: %s" path e)
    in
    of_json json
