type t = {
  machine : Cs_machine.Machine.t;
  seed : int;
  cases : (string * Cs_ddg.Region.t * int) array; (* name, region, baseline cycles *)
  tbl : (string, float) Hashtbl.t;
  mutable evals : int;
  mutable hits : int;
}

let make ?(scale = 1) ?(seed = 0) ~machine suite =
  let baseline_machine =
    if Cs_machine.Machine.is_mesh machine then Cs_machine.Raw.with_tiles 1
    else Cs_machine.Vliw.single_cluster ()
  in
  let n_clusters = Cs_machine.Machine.n_clusters machine in
  let cases =
    List.map
      (fun entry ->
        let region = entry.Cs_workloads.Suite.generate ~scale ~clusters:n_clusters () in
        let baseline_region = entry.Cs_workloads.Suite.generate ~scale ~clusters:1 () in
        let baseline_sched =
          Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Rawcc
            ~machine:baseline_machine baseline_region
        in
        ( entry.Cs_workloads.Suite.name,
          region,
          Cs_sched.Schedule.makespan baseline_sched ))
      suite
  in
  { machine; seed; cases = Array.of_list cases;
    tbl = Hashtbl.create 256; evals = 0; hits = 0 }

let machine t = t.machine
let n_cases t = Array.length t.cases
let evaluations t = t.evals
let cache_hits t = t.hits

let fitness_of_passes t passes =
  let ratios =
    Array.to_list t.cases
    |> List.map (fun (_, region, baseline) ->
           match
             Cs_sim.Pipeline.convergent ~seed:t.seed ~passes ~machine:t.machine region
           with
           | sched, _ ->
             float_of_int baseline /. float_of_int (max 1 (Cs_sched.Schedule.makespan sched))
           | exception _ -> 0.0)
  in
  if List.exists (fun r -> r <= 0.0) ratios then 0.0 else Cs_util.Stats.geomean ratios

let fitness_of_genome t genome =
  match Genome.to_passes genome with
  | Error _ -> 0.0
  | Ok passes -> fitness_of_passes t passes

(* Chunked work queue over domains: workers grab index ranges with an
   atomic counter and write results by index, so the output (unlike the
   completion order) is deterministic. When the Cs_obs sink is enabled,
   each worker accumulates its busy time per chunk and a per-domain
   utilization counter (busy / wall) is emitted after the join. *)
let parallel_map ~domains f jobs =
  let n = Array.length jobs in
  let results = Array.make n 0.0 in
  let d = max 1 (min domains n) in
  let obs = Cs_obs.Obs.enabled () in
  let wall0 = if obs then Cs_obs.Clock.now () else 0.0 in
  let busy = Array.make d 0.0 in
  let completed = Array.make d 0 in
  if d = 1 then begin
    Array.iteri (fun i j -> results.(i) <- f j) jobs;
    if obs then begin
      busy.(0) <- Cs_obs.Clock.since wall0;
      completed.(0) <- n
    end
  end
  else begin
    let next = Atomic.make 0 in
    let chunk = max 1 (n / (d * 4)) in
    let worker k () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let t0 = if obs then Cs_obs.Clock.now () else 0.0 in
          let stop = min n (start + chunk) - 1 in
          for i = start to stop do
            results.(i) <- f jobs.(i)
          done;
          if obs then begin
            busy.(k) <- busy.(k) +. Cs_obs.Clock.since t0;
            completed.(k) <- completed.(k) + (stop - start + 1)
          end;
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join others
  end;
  if obs && n > 0 then begin
    let wall = Float.max (Cs_obs.Clock.since wall0) 1e-9 in
    Array.iteri
      (fun k b ->
        Cs_obs.Obs.counter ~cat:"tune"
          (Printf.sprintf "tuner:domain%d" k)
          [ ("busy_s", b);
            ("utilization", if d = 1 then 1.0 else b /. wall);
            ("jobs", float_of_int completed.(k)) ])
      busy
  end;
  results

let eval ?(domains = 1) t genomes =
  let keyed = List.map (fun g -> (Genome.to_string g, g)) genomes in
  (* unique cache misses, first-occurrence order *)
  let seen = Hashtbl.create 64 in
  let misses =
    List.filter
      (fun (key, _) ->
        if Hashtbl.mem t.tbl key || Hashtbl.mem seen key then false
        else (Hashtbl.add seen key (); true))
      keyed
  in
  let miss_arr = Array.of_list misses in
  let results = parallel_map ~domains (fun (_, g) -> fitness_of_genome t g) miss_arr in
  Array.iteri (fun i (key, _) -> Hashtbl.replace t.tbl key results.(i)) miss_arr;
  t.evals <- t.evals + Array.length miss_arr;
  t.hits <- t.hits + (List.length keyed - Array.length miss_arr);
  Array.of_list (List.map (fun (key, _) -> Hashtbl.find t.tbl key) keyed)
