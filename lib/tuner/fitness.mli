(** Fitness evaluation for the autotuner: geomean speedup of a pass
    sequence over a workload suite, evaluated through the real
    {!Cs_sim.Pipeline} (schedules are validator-checked, so fitness
    can't be gamed by illegal schedules — a candidate whose pipeline
    raises scores 0).

    Evaluation is batched: duplicates within a batch and across
    generations are served from a memoized cache keyed by the genome's
    canonical string, and cache misses fan out over OCaml 5 [Domain]s
    with a chunked work queue. Results are written by index, so the
    returned fitnesses — and everything the GA derives from them — are
    independent of the domain count. *)

type t

val make :
  ?scale:int -> ?seed:int -> machine:Cs_machine.Machine.t ->
  Cs_workloads.Suite.entry list -> t
(** Pre-generates every benchmark region (shared read-only across
    domains; regions are immutable once built) and the single-cluster
    baseline cycles that speedups are measured against — the same
    baseline as {!Cs_sim.Speedup}. [seed] seeds the pipeline so fitness
    is deterministic. *)

val machine : t -> Cs_machine.Machine.t
val n_cases : t -> int

val evaluations : t -> int
(** Number of genomes actually simulated (cache misses) so far. *)

val cache_hits : t -> int
(** Number of genome lookups served from the cache. *)

val fitness_of_passes : t -> Cs_core.Pass.t list -> float
(** Uncached single evaluation — geomean over the suite of
    [baseline_cycles / cycles]. Used for the default sequence's
    reference score. *)

val eval : ?domains:int -> t -> Genome.t list -> float array
(** Fitness of each genome, in order. [domains] (default 1) caps the
    worker domains spawned for the cache-miss batch. *)
