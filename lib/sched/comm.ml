type t = {
  machine : Cs_machine.Machine.t;
  xfer_units : Reservation.t array array; (* crossbar: per cluster, per transfer unit *)
  links : (Cs_machine.Topology.link, Reservation.t) Hashtbl.t; (* mesh *)
  memo : (int * int, int) Hashtbl.t; (* (producer, dst) -> arrival *)
  mutable booked : Schedule.comm list;
}

let transfer_unit_count machine cluster =
  Array.fold_left
    (fun acc fu -> if fu = Cs_machine.Fu.Transfer_unit then acc + 1 else acc)
    0 machine.Cs_machine.Machine.fus.(cluster)

(* Transfer units the cluster was built with, dead or alive. A cluster
   that *had* transfer units but lost them all to a fault plan cannot
   send at all -- unlike a Raw tile that never had any, whose sends are
   register-mapped and free. *)
let built_transfer_unit_count machine cluster =
  Array.fold_left
    (fun acc fu ->
      if Cs_machine.Fu.base_kind fu = Cs_machine.Fu.Transfer_unit then acc + 1
      else acc)
    0 machine.Cs_machine.Machine.fus.(cluster)

let sends_impossible machine cluster =
  transfer_unit_count machine cluster = 0
  && built_transfer_unit_count machine cluster > 0

let create machine =
  let nc = Cs_machine.Machine.n_clusters machine in
  let xfer_units =
    Array.init nc (fun c ->
        (* Raw tiles have no transfer units; sends are register-mapped and
           free. Model that as unlimited capacity (empty array = skip). *)
        Array.init (transfer_unit_count machine c) (fun _ -> Reservation.create ()))
  in
  { machine; xfer_units; links = Hashtbl.create 64; memo = Hashtbl.create 64; booked = [] }

let link_table t link =
  match Hashtbl.find_opt t.links link with
  | Some r -> r
  | None ->
    let r = Reservation.create () in
    Hashtbl.add t.links link r;
    r

(* Earliest depart >= ready with all route links free wormhole-style. *)
let mesh_depart t route ready =
  let rec try_at d =
    let ok =
      List.for_all2
        (fun link k -> Reservation.is_free (link_table t link) (d + k))
        route
        (List.init (List.length route) (fun k -> k))
    in
    if ok then d else try_at (d + 1)
  in
  try_at ready

let crossbar_depart t src ready =
  match t.xfer_units.(src) with
  | [||] when sends_impossible t.machine src ->
    Cs_resil.Error.infeasible
      (Printf.sprintf "cluster %d cannot send: all transfer units dead" src)
  | [||] ->
    (* Never had a transfer unit to contend for (Raw-like): depart as
       soon as ready. *)
    (ready, None)
  | units ->
    let best = ref (Reservation.first_free_from units.(0) ready) in
    let best_u = ref 0 in
    Array.iteri
      (fun u res ->
        let c = Reservation.first_free_from res ready in
        if c < !best then begin
          best := c;
          best_u := u
        end)
      units;
    (!best, Some !best_u)

(* Finds the earliest transfer departing at or after [ready]; commits the
   booking (and memoizes) only when [accept arrive] holds. *)
let attempt t ~producer ~src ~dst ~ready ~accept =
  let latency = Cs_machine.Machine.comm_latency t.machine ~src ~dst in
  let plan =
    match t.machine.Cs_machine.Machine.topology with
    | Cs_machine.Topology.Crossbar _ ->
      let d, unit_idx = crossbar_depart t src ready in
      let commit () =
        match unit_idx with
        | Some u -> Reservation.book t.xfer_units.(src).(u) d
        | None -> ()
      in
      (d, commit)
    | Cs_machine.Topology.Mesh _ ->
      let route = Cs_machine.Topology.route t.machine.Cs_machine.Machine.topology ~src ~dst in
      let d = mesh_depart t route ready in
      let commit () =
        List.iteri (fun k link -> Reservation.book (link_table t link) (d + k)) route
      in
      (d, commit)
  in
  let depart, commit = plan in
  let arrive = depart + latency in
  if accept arrive then begin
    commit ();
    Hashtbl.add t.memo (producer, dst) arrive;
    t.booked <- { Schedule.producer; src; dst; depart; arrive } :: t.booked;
    Some arrive
  end
  else None

let deliver t ~producer ~src ~dst ~ready =
  if src = dst then ready
  else
    match Hashtbl.find_opt t.memo (producer, dst) with
    | Some arrival -> arrival
    | None ->
      (match attempt t ~producer ~src ~dst ~ready ~accept:(fun _ -> true) with
      | Some arrive -> arrive
      | None -> assert false)

let deliver_by t ~producer ~src ~dst ~ready ~deadline =
  if src = dst then if ready <= deadline then Some ready else None
  else
    match Hashtbl.find_opt t.memo (producer, dst) with
    | Some arrival -> if arrival <= deadline then Some arrival else None
    | None -> attempt t ~producer ~src ~dst ~ready ~accept:(fun arrive -> arrive <= deadline)

let bookings t = t.booked

let link_conflicts machine comms =
  let problems = ref [] in
  (match machine.Cs_machine.Machine.topology with
  | Cs_machine.Topology.Crossbar _ ->
    (* Transfers departing a cluster the same cycle must not exceed its
       transfer units (unlimited when it has none, e.g. Raw-like). *)
    let usage = Hashtbl.create 64 in
    List.iter
      (fun cm ->
        let key = (cm.Schedule.src, cm.Schedule.depart) in
        Hashtbl.replace usage key
          (1 + Option.value ~default:0 (Hashtbl.find_opt usage key)))
      comms;
    Hashtbl.iter
      (fun (src, depart) count ->
        let cap = transfer_unit_count machine src in
        if sends_impossible machine src then
          problems :=
            Printf.sprintf
              "cluster %d issues %d transfers at cycle %d but all its transfer units are dead"
              src count depart
            :: !problems
        else if cap > 0 && count > cap then
          problems :=
            Printf.sprintf "cluster %d issues %d transfers at cycle %d (capacity %d)" src
              count depart cap
            :: !problems)
      usage
  | Cs_machine.Topology.Mesh _ ->
    let usage = Hashtbl.create 256 in
    List.iter
      (fun cm ->
        (* A corrupt schedule may record transfers with no surviving
           route; report rather than crash (the validator must be total). *)
        match
          Cs_resil.Error.protect (fun () ->
              Cs_machine.Topology.route machine.Cs_machine.Machine.topology
                ~src:cm.Schedule.src ~dst:cm.Schedule.dst)
        with
        | Error e ->
          problems :=
            Printf.sprintf "transfer of i%d (%d->%d) has no route: %s"
              cm.Schedule.producer cm.Schedule.src cm.Schedule.dst
              (Cs_resil.Error.to_string e)
            :: !problems
        | Ok route ->
          List.iteri
            (fun k link ->
              let key = (link, cm.Schedule.depart + k) in
              match Hashtbl.find_opt usage key with
              | Some other ->
                problems :=
                  Printf.sprintf
                    "link %d->%d used at cycle %d by values of i%d and i%d"
                    link.Cs_machine.Topology.from_node link.Cs_machine.Topology.to_node
                    (cm.Schedule.depart + k) other cm.Schedule.producer
                  :: !problems
              | None -> Hashtbl.add usage key cm.Schedule.producer)
            route)
      comms);
  !problems
