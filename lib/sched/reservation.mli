(** A growable one-slot-per-cycle reservation table: the scheduler books
    functional units and network links cycle by cycle. *)

type t

val create : unit -> t
val is_free : t -> int -> bool
val book : t -> int -> unit
(** Raises [Cs_resil.Error.Error (Resource_conflict _)] when the cycle
    is already booked and [Error (Invalid_input _)] when it is
    negative, so recovery code can classify instead of dying. *)

val first_free_from : t -> int -> int
(** Earliest free cycle at or after the given cycle. *)

val booked_cycles : t -> int list
(** Ascending; for tests and utilization reporting. *)

val n_booked : t -> int
