let check sched =
  let machine = sched.Schedule.machine in
  let graph = sched.Schedule.graph in
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* Total even on degraded meshes: a corrupt schedule may pair
     unreachable clusters, which must become a reported problem, not a
     raised [Unreachable]. *)
  let latency_between ~what ~src ~dst =
    match
      Cs_resil.Error.protect (fun () ->
          Cs_machine.Machine.comm_latency machine ~src ~dst)
    with
    | Ok lat -> Some lat
    | Error e ->
      fail "%s %d->%d has no route: %s" what src dst (Cs_resil.Error.to_string e);
      None
  in
  let nc = Cs_machine.Machine.n_clusters machine in
  (* Per-entry legality. *)
  Array.iteri
    (fun i (e : Schedule.entry) ->
      let ins = Cs_ddg.Graph.instr graph i in
      if e.cluster < 0 || e.cluster >= nc then fail "i%d on invalid cluster %d" i e.cluster
      else begin
        let fus = machine.Cs_machine.Machine.fus.(e.cluster) in
        if e.fu < 0 || e.fu >= Array.length fus then fail "i%d on invalid unit %d" i e.fu
        else if not (Cs_machine.Fu.can_execute fus.(e.fu) (Cs_ddg.Opcode.cls ins.Cs_ddg.Instr.op))
        then
          fail "i%d (%s) on incompatible unit %s" i
            (Cs_ddg.Opcode.to_string ins.Cs_ddg.Instr.op)
            (Cs_machine.Fu.to_string fus.(e.fu));
        if e.start < 0 then fail "i%d starts at negative cycle %d" i e.start;
        let lat = List_scheduler.effective_latency ~machine ~cluster:e.cluster ins in
        if e.finish <> e.start + lat then
          fail "i%d finish %d inconsistent with start %d + latency %d" i e.finish e.start lat;
        match ins.Cs_ddg.Instr.preplace with
        | Some home when home <> e.cluster ->
          let remote_ok =
            Cs_ddg.Opcode.is_memory ins.Cs_ddg.Instr.op
            && machine.Cs_machine.Machine.remote_mem_penalty > 0
          in
          if not remote_ok then fail "preplaced i%d ran on cluster %d, home %d" i e.cluster home
        | Some _ | None -> ()
      end)
    sched.Schedule.entries;
  (* Issue-slot conflicts. *)
  let slots = Hashtbl.create 256 in
  Array.iteri
    (fun i (e : Schedule.entry) ->
      let key = (e.cluster, e.fu, e.start) in
      (match Hashtbl.find_opt slots key with
      | Some other ->
        fail "i%d and i%d both issue on cluster %d unit %d at cycle %d" other i e.cluster e.fu
          e.start
      | None -> ());
      Hashtbl.replace slots key i)
    sched.Schedule.entries;
  (* Dependences. *)
  for p = 0 to Cs_ddg.Graph.n graph - 1 do
    let ep = sched.Schedule.entries.(p) in
    List.iter
      (fun s ->
        let es = sched.Schedule.entries.(s) in
        if ep.cluster = es.cluster then begin
          if es.start < ep.finish then
            fail "i%d starts at %d before producer i%d finishes at %d" s es.start p ep.finish
        end
        else begin
          match Schedule.comms_for sched ~producer:p ~dst:es.cluster with
          | None -> fail "no transfer feeds i%d (cluster %d) with value of i%d" s es.cluster p
          | Some cm ->
            if cm.src <> ep.cluster then
              fail "transfer of i%d departs cluster %d, producer on %d" p cm.src ep.cluster;
            if cm.depart < ep.finish then
              fail "transfer of i%d departs at %d before producer finishes at %d" p cm.depart
                ep.finish;
            (match latency_between ~what:"transfer" ~src:cm.src ~dst:cm.dst with
            | Some lat when cm.arrive <> cm.depart + lat ->
              fail "transfer of i%d has latency %d, topology says %d" p (cm.arrive - cm.depart)
                lat
            | Some _ | None -> ());
            if es.start < cm.arrive then
              fail "i%d starts at %d before value of i%d arrives at %d" s es.start p cm.arrive
        end)
      (Cs_ddg.Graph.succs graph p)
  done;
  (* Homed live-ins consumed off their home cluster need a recorded,
     timely delivery. *)
  Array.iter
    (fun ins ->
      let i = ins.Cs_ddg.Instr.id in
      let ei = sched.Schedule.entries.(i) in
      List.iter
        (fun r ->
          match Cs_ddg.Graph.defining_instr graph r with
          | Some _ -> ()
          | None ->
            (match Cs_ddg.Reg.Map.find_opt r sched.Schedule.live_in_homes with
            | Some home when home <> ei.cluster ->
              let pseudo = Schedule.live_in_producer r in
              (match
                 List.find_opt
                   (fun (cm : Schedule.comm) ->
                     cm.producer = pseudo && cm.dst = ei.cluster)
                   sched.Schedule.comms
               with
              | None ->
                fail "no transfer delivers live-in %s to i%d on cluster %d"
                  (Cs_ddg.Reg.to_string r) i ei.cluster
              | Some cm ->
                if cm.src <> home then
                  fail "live-in %s departs cluster %d, home is %d" (Cs_ddg.Reg.to_string r)
                    cm.src home;
                if cm.depart < 0 then fail "live-in %s departs before cycle 0" (Cs_ddg.Reg.to_string r);
                (match latency_between ~what:"live-in transfer" ~src:cm.src ~dst:cm.dst with
                | Some lat when cm.arrive <> cm.depart + lat ->
                  fail "live-in %s transfer latency %d, topology says %d"
                    (Cs_ddg.Reg.to_string r) (cm.arrive - cm.depart) lat
                | Some _ | None -> ());
                if ei.start < cm.arrive then
                  fail "i%d reads live-in %s at %d before it arrives at %d" i
                    (Cs_ddg.Reg.to_string r) ei.start cm.arrive)
            | Some _ | None -> ()))
        ins.Cs_ddg.Instr.srcs)
    (Cs_ddg.Graph.instrs graph);
  (* Communication resource conflicts. *)
  List.iter (fun p -> problems := p :: !problems)
    (Comm.link_conflicts machine sched.Schedule.comms);
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

let check_exn sched =
  match check sched with
  | Ok () -> ()
  | Error ps -> failwith (String.concat "\n" ps)
