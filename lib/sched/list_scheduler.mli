(** The space-time list scheduler shared by the convergent scheduler and
    all baselines (paper Sec. 5: both Rawcc and Chorus run an
    independent list scheduler after assignment).

    Given a cluster assignment and a priority vector it produces a
    validated, resource-accurate schedule: functional units are booked
    per cycle, inter-cluster operands are moved by synthesized transfers
    (transfer-unit bookings on a VLIW, wormhole link reservations on a
    Raw mesh), and remote-memory penalties are applied on machines that
    have them. *)

val run :
  machine:Cs_machine.Machine.t ->
  assignment:int array ->
  priority:int array ->
  ?analysis:Cs_ddg.Analysis.t ->
  Cs_ddg.Region.t ->
  Schedule.t
(** Raises [Cs_resil.Error.Error (Infeasible _)] when an instruction's
    assigned cluster cannot execute it, or when a preplaced instruction
    is assigned away from its home on a machine without remote memory
    access; [Error (Invalid_input _)] on malformed inputs (wrong array
    sizes, out-of-range clusters); and [Error (Unreachable _)] when a
    degraded mesh has no route for a required transfer.
    [analysis] (used for tie-breaking heights and effective latencies)
    is rebuilt from the machine's latency model when not supplied.

    When the {!Cs_obs.Obs} sink is enabled the run is wrapped in a
    [cat = "sched"] span and emits a ["list_scheduler"] counter event:
    instructions scheduled, peak ready-queue length, functional-unit
    stalls (issue delayed past operand readiness by FU contention),
    operand waits (cross-cluster operand deliveries requested), comm
    ops inserted, and the resulting makespan. *)

val effective_latency :
  machine:Cs_machine.Machine.t -> cluster:int -> Cs_ddg.Instr.t -> int
(** Machine latency plus the remote-memory penalty when a memory
    operation executes away from its home bank. *)
