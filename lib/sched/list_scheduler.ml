let effective_latency ~machine ~cluster ins =
  let base = Cs_machine.Machine.latency_of machine ins in
  match ins.Cs_ddg.Instr.preplace with
  | Some home
    when home <> cluster
         && Cs_ddg.Opcode.is_memory ins.Cs_ddg.Instr.op
         && machine.Cs_machine.Machine.remote_mem_penalty > 0 ->
    base + machine.Cs_machine.Machine.remote_mem_penalty
  | Some _ | None -> base

let check_placement ~machine ~assignment graph =
  Array.iter
    (fun ins ->
      let i = ins.Cs_ddg.Instr.id in
      let c = assignment.(i) in
      if c < 0 || c >= Cs_machine.Machine.n_clusters machine then
        Cs_resil.Error.invalid_input
          (Printf.sprintf "instr %d assigned to invalid cluster %d" i c);
      if not (Cs_machine.Machine.can_execute machine ~cluster:c ins.Cs_ddg.Instr.op) then
        Cs_resil.Error.infeasible
          (Printf.sprintf "instr %d (%s) cannot execute on cluster %d" i
             (Cs_ddg.Opcode.to_string ins.Cs_ddg.Instr.op)
             c);
      match ins.Cs_ddg.Instr.preplace with
      | Some home
        when home <> c && machine.Cs_machine.Machine.remote_mem_penalty = 0 ->
        Cs_resil.Error.infeasible
          (Printf.sprintf "preplaced instr %d must run on cluster %d, assigned %d" i home c)
      | Some _ | None -> ())
    (Cs_ddg.Graph.instrs graph)

let schedule_region ~machine ~assignment ~priority ?analysis region =
  let graph = region.Cs_ddg.Region.graph in
  let n = Cs_ddg.Graph.n graph in
  if Array.length assignment <> n then
    Cs_resil.Error.invalid_input "List_scheduler.run: assignment size";
  if Array.length priority <> n then
    Cs_resil.Error.invalid_input "List_scheduler.run: priority size";
  check_placement ~machine ~assignment graph;
  let analysis =
    match analysis with
    | Some a -> a
    | None -> Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine) graph
  in
  let fu_res =
    Array.init (Cs_machine.Machine.n_clusters machine) (fun c ->
        Array.init (Array.length machine.Cs_machine.Machine.fus.(c)) (fun _ ->
            Reservation.create ()))
  in
  let comm = Comm.create machine in
  let finish = Array.make n (-1) in
  let entries =
    Array.make n { Schedule.cluster = -1; fu = -1; start = -1; finish = -1 }
  in
  let cmp =
    Priority.compare_with_tiebreak ~priority ~height:(Cs_ddg.Analysis.height analysis)
  in
  let ready = Cs_util.Heap.create ~cmp in
  let pending = Array.make n 0 in
  for i = 0 to n - 1 do
    pending.(i) <- List.length (Cs_ddg.Graph.preds graph i);
    if pending.(i) = 0 then Cs_util.Heap.push ready i
  done;
  (* Counters are only tracked when the sink is enabled; the flag is
     read once so the drain loop stays branch-predictable. *)
  let obs = Cs_obs.Obs.enabled () in
  let ready_peak = ref (if obs then Cs_util.Heap.length ready else 0) in
  let fu_stalls = ref 0 in
  let operand_waits = ref 0 in
  let scheduled = ref 0 in
  let live_in_homes = region.Cs_ddg.Region.live_in_homes in
  (* A homed live-in read away from its home costs a real transfer. *)
  let live_in_avail i c =
    List.fold_left
      (fun acc r ->
        match Cs_ddg.Graph.defining_instr graph r with
        | Some _ -> acc
        | None ->
          (match Cs_ddg.Reg.Map.find_opt r live_in_homes with
          | Some home when home <> c ->
            max acc
              (Comm.deliver comm ~producer:(Schedule.live_in_producer r) ~src:home ~dst:c
                 ~ready:0)
          | Some _ | None -> acc))
      0
      (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.srcs
  in
  let rec drain () =
    match Cs_util.Heap.pop ready with
    | None -> ()
    | Some i ->
      let ins = Cs_ddg.Graph.instr graph i in
      let c = assignment.(i) in
      (* Operand availability, synthesizing transfers as needed. *)
      let est =
        List.fold_left
          (fun acc p ->
            let avail =
              if assignment.(p) = c then finish.(p)
              else begin
                if obs then incr operand_waits;
                Comm.deliver comm ~producer:p ~src:assignment.(p) ~dst:c ~ready:finish.(p)
              end
            in
            max acc avail)
          (live_in_avail i c)
          (Cs_ddg.Graph.preds graph i)
      in
      (* Earliest issue slot on a compatible functional unit. *)
      let candidates = Cs_machine.Machine.fus_for machine ~cluster:c ins.Cs_ddg.Instr.op in
      let cycle, fu =
        List.fold_left
          (fun (best_cycle, best_fu) u ->
            let cy = Reservation.first_free_from fu_res.(c).(u) est in
            if cy < best_cycle then (cy, u) else (best_cycle, best_fu))
          (max_int, -1) candidates
      in
      Reservation.book fu_res.(c).(fu) cycle;
      if obs && cycle > est then incr fu_stalls;
      let lat = effective_latency ~machine ~cluster:c ins in
      finish.(i) <- cycle + lat;
      entries.(i) <- { Schedule.cluster = c; fu; start = cycle; finish = finish.(i) };
      incr scheduled;
      List.iter
        (fun s ->
          pending.(s) <- pending.(s) - 1;
          if pending.(s) = 0 then Cs_util.Heap.push ready s)
        (Cs_ddg.Graph.succs graph i);
      if obs then ready_peak := max !ready_peak (Cs_util.Heap.length ready);
      drain ()
  in
  drain ();
  assert (!scheduled = n);
  let comms = Comm.bookings comm in
  let sched = Schedule.make ~machine ~graph ~live_in_homes ~entries ~comms () in
  if obs then
    Cs_obs.Obs.counter ~cat:"sched" "list_scheduler"
      [ ("instructions", float_of_int n);
        ("ready_peak", float_of_int !ready_peak);
        ("fu_stalls", float_of_int !fu_stalls);
        ("operand_waits", float_of_int !operand_waits);
        ("comms_inserted", float_of_int (List.length comms));
        ("makespan", float_of_int (Schedule.makespan sched)) ];
  sched

let run ~machine ~assignment ~priority ?analysis region =
  Cs_obs.Obs.span ~cat:"sched" "list_scheduler" (fun () ->
      schedule_region ~machine ~assignment ~priority ?analysis region)
