(** A space-time schedule: the final product of every scheduler in this
    repository. Records, per instruction, the cluster, functional unit
    and issue cycle, plus every synthesized inter-cluster value
    transfer. Cycle counts reported in the experiments are schedule
    makespans. *)

type entry = {
  cluster : int;
  fu : int;
  start : int; (** issue cycle *)
  finish : int; (** [start + effective latency]; result available then *)
}

type comm = {
  producer : int;
  (** instruction id whose value is moved; negative for region live-ins
      (see {!live_in_producer}) *)
  src : int;
  dst : int;
  depart : int; (** cycle the value leaves [src] *)
  arrive : int; (** cycle the value is usable on [dst] *)
}

val live_in_producer : Cs_ddg.Reg.t -> int
(** The pseudo-producer id used in {!comm} records for moving a homed
    live-in register off its home cluster: [-1 - reg]. *)

type t = {
  machine : Cs_machine.Machine.t;
  graph : Cs_ddg.Graph.t;
  live_in_homes : int Cs_ddg.Reg.Map.t;
  (** home cluster of live-in registers; values start the region there *)
  entries : entry array; (** indexed by instruction id *)
  comms : comm list;
  makespan : int;
}

val make :
  machine:Cs_machine.Machine.t -> graph:Cs_ddg.Graph.t ->
  ?live_in_homes:int Cs_ddg.Reg.Map.t ->
  entries:entry array -> comms:comm list -> unit -> t
(** Computes the makespan (max finish / arrival). *)

val makespan : t -> int
val n_comms : t -> int

val assignment : t -> int array
(** Cluster of each instruction. *)

val cluster_occupancy : t -> int array
(** Instructions issued per cluster. *)

val utilization : t -> float
(** Issued instructions / (clusters * issue width * makespan). *)

val comms_for : t -> producer:int -> dst:int -> comm option

val map_clusters : (int -> int) -> t -> t
(** Relabel clusters everywhere a cluster id appears: entries, transfer
    endpoints, and live-in homes. Functional-unit indices and cycles are
    untouched, so the result is only meaningful under a permutation of
    identical clusters (e.g. the symmetric crossbar VLIW) — used by the
    fuzzing oracle's cluster-permutation metamorphic check. *)

val pp : Format.formatter -> t -> unit
(** Per-cluster timeline rendering. *)
