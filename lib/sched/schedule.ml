type entry = {
  cluster : int;
  fu : int;
  start : int;
  finish : int;
}

type comm = {
  producer : int;
  src : int;
  dst : int;
  depart : int;
  arrive : int;
}

let live_in_producer r = -1 - r

type t = {
  machine : Cs_machine.Machine.t;
  graph : Cs_ddg.Graph.t;
  live_in_homes : int Cs_ddg.Reg.Map.t;
  entries : entry array;
  comms : comm list;
  makespan : int;
}

let make ~machine ~graph ?(live_in_homes = Cs_ddg.Reg.Map.empty) ~entries ~comms () =
  let makespan =
    Array.fold_left (fun acc e -> max acc e.finish) 0 entries
    |> fun m -> List.fold_left (fun acc c -> max acc c.arrive) m comms
  in
  { machine; graph; live_in_homes; entries; comms; makespan }

let makespan t = t.makespan
let n_comms t = List.length t.comms
let assignment t = Array.map (fun e -> e.cluster) t.entries

let cluster_occupancy t =
  let occ = Array.make (Cs_machine.Machine.n_clusters t.machine) 0 in
  Array.iter (fun e -> occ.(e.cluster) <- occ.(e.cluster) + 1) t.entries;
  occ

let utilization t =
  let slots =
    Cs_machine.Machine.n_clusters t.machine
    * Cs_machine.Machine.issue_width t.machine
    * max 1 t.makespan
  in
  float_of_int (Array.length t.entries) /. float_of_int slots

let comms_for t ~producer ~dst =
  List.find_opt (fun c -> c.producer = producer && c.dst = dst) t.comms

let map_clusters f t =
  {
    t with
    entries = Array.map (fun e -> { e with cluster = f e.cluster }) t.entries;
    comms = List.map (fun c -> { c with src = f c.src; dst = f c.dst }) t.comms;
    live_in_homes = Cs_ddg.Reg.Map.map f t.live_in_homes;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule on %s: makespan %d, %d comms@,"
    t.machine.Cs_machine.Machine.name t.makespan (n_comms t);
  for c = 0 to Cs_machine.Machine.n_clusters t.machine - 1 do
    Format.fprintf fmt "cluster %d:@," c;
    let mine =
      Array.to_list t.entries
      |> List.mapi (fun i e -> (i, e))
      |> List.filter (fun (_, e) -> e.cluster = c)
      |> List.sort (fun (_, a) (_, b) -> Int.compare a.start b.start)
    in
    List.iter
      (fun (i, e) ->
        let ins = Cs_ddg.Graph.instr t.graph i in
        Format.fprintf fmt "  [%4d-%4d] fu%d %s@," e.start e.finish e.fu
          (Cs_ddg.Instr.to_string ins))
      mine
  done;
  List.iter
    (fun cm ->
      Format.fprintf fmt "  comm: i%d value %d->%d depart %d arrive %d@," cm.producer
        cm.src cm.dst cm.depart cm.arrive)
    (List.sort (fun a b -> Int.compare a.depart b.depart) t.comms);
  Format.fprintf fmt "@]"
