type t = {
  mutable busy : Bytes.t; (* one byte per cycle; grown on demand *)
  mutable horizon : int; (* max booked cycle + 1 *)
}

let create () = { busy = Bytes.make 64 '\000'; horizon = 0 }

let ensure t cycle =
  let len = Bytes.length t.busy in
  if cycle >= len then begin
    let grown = Bytes.make (max (cycle + 1) (2 * len)) '\000' in
    Bytes.blit t.busy 0 grown 0 len;
    t.busy <- grown
  end

let is_free t cycle =
  if cycle < 0 then
    Cs_resil.Error.invalid_input "Reservation: negative cycle";
  cycle >= Bytes.length t.busy || Bytes.get t.busy cycle = '\000'

let book t cycle =
  if cycle < 0 then
    Cs_resil.Error.invalid_input "Reservation: negative cycle";
  ensure t cycle;
  if Bytes.get t.busy cycle <> '\000' then
    Cs_resil.Error.resource_conflict
      (Printf.sprintf "Reservation.book: cycle %d already booked" cycle);
  Bytes.set t.busy cycle '\001';
  t.horizon <- max t.horizon (cycle + 1)

let first_free_from t cycle =
  let cycle = max 0 cycle in
  let rec go c = if is_free t c then c else go (c + 1) in
  go cycle

let booked_cycles t =
  let acc = ref [] in
  for c = t.horizon - 1 downto 0 do
    if not (is_free t c) then acc := c :: !acc
  done;
  !acc

let n_booked t = List.length (booked_cycles t)
