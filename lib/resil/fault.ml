type fault =
  | Dead_tile of int
  | Dead_fu of { cluster : int; fu : int }
  | Dead_link of int * int
  | Slow_link of { a : int; b : int; factor : int }

type plan = fault list

let norm_link a b = if a <= b then (a, b) else (b, a)

let fault_to_string = function
  | Dead_tile c -> Printf.sprintf "tile=%d" c
  | Dead_fu { cluster; fu } -> Printf.sprintf "fu=%d:%d" cluster fu
  | Dead_link (a, b) -> Printf.sprintf "link=%d-%d" a b
  | Slow_link { a; b; factor } -> Printf.sprintf "slow-link=%d-%d:x%d" a b factor

let to_string plan = String.concat "," (List.map fault_to_string plan)
let is_empty plan = plan = []

let int_of ~what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "bad %s %S (expected a non-negative integer)" what s)

let ( let* ) = Result.bind

let parse_fault item =
  match String.index_opt item '=' with
  | None -> Error (Printf.sprintf "bad fault %S (expected key=value)" item)
  | Some i -> (
    let key = String.trim (String.sub item 0 i) in
    let v = String.sub item (i + 1) (String.length item - i - 1) in
    let pair ~what sep s =
      match String.split_on_char sep s with
      | [ a; b ] ->
        let* a = int_of ~what a in
        let* b = int_of ~what b in
        Ok (a, b)
      | _ -> Error (Printf.sprintf "bad %s %S" what s)
    in
    match key with
    | "tile" ->
      let* c = int_of ~what:"tile" v in
      Ok (Dead_tile c)
    | "fu" ->
      let* cluster, fu = pair ~what:"fu spec" ':' v in
      Ok (Dead_fu { cluster; fu })
    | "link" ->
      let* a, b = pair ~what:"link" '-' v in
      if a = b then Error (Printf.sprintf "bad link %S (self-loop)" v)
      else
        let a, b = norm_link a b in
        Ok (Dead_link (a, b))
    | "slow-link" -> (
      match String.split_on_char ':' v with
      | [ ends; f ] ->
        let* a, b = pair ~what:"slow-link" '-' ends in
        if a = b then Error (Printf.sprintf "bad slow-link %S (self-loop)" v)
        else
          let a, b = norm_link a b in
          let f = String.trim f in
          let* factor =
            if String.length f >= 2 && f.[0] = 'x' then
              int_of ~what:"slow-link factor"
                (String.sub f 1 (String.length f - 1))
            else Error (Printf.sprintf "bad slow-link factor %S (expected xN)" f)
          in
          if factor < 2 then
            Error
              (Printf.sprintf "bad slow-link factor x%d (must be >= 2)" factor)
          else Ok (Slow_link { a; b; factor })
      | _ -> Error (Printf.sprintf "bad slow-link %S (expected A-B:xN)" v))
    | _ -> Error (Printf.sprintf "unknown fault kind %S" key))

let parse s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      match parse_fault item with
      | Error _ as e -> e
      | Ok f -> go (if List.mem f acc then acc else f :: acc) rest)
  in
  go [] items

let parse_exn s =
  match parse s with
  | Ok p -> p
  | Error msg -> Error.invalid_input (Printf.sprintf "fault plan: %s" msg)

type shape = {
  n_clusters : int;
  issue_width : int;
  mesh : (int * int) option;
}

let random rng ~shape =
  let n = max 1 shape.n_clusters in
  let count = 1 + Cs_util.Rng.int rng 3 in
  let adjacent rows cols =
    (* pick a random mesh edge between adjacent nodes *)
    let node = Cs_util.Rng.int rng (rows * cols) in
    let r = node / cols and c = node mod cols in
    let neighbours =
      List.filter_map
        (fun (dr, dc) ->
          let r' = r + dr and c' = c + dc in
          if r' >= 0 && r' < rows && c' >= 0 && c' < cols then
            Some ((r' * cols) + c')
          else None)
        [ (0, 1); (1, 0); (0, -1); (-1, 0) ]
    in
    match neighbours with
    | [] -> None
    | l -> Some (norm_link node (List.nth l (Cs_util.Rng.int rng (List.length l))))
  in
  let draw () =
    match shape.mesh with
    | Some (rows, cols) when Cs_util.Rng.int rng 3 > 0 -> (
      match adjacent rows cols with
      | Some (a, b) ->
        if Cs_util.Rng.bool rng then Some (Dead_link (a, b))
        else Some (Slow_link { a; b; factor = 2 + Cs_util.Rng.int rng 3 })
      | None -> None)
    | _ ->
      if shape.issue_width > 1 && Cs_util.Rng.bool rng then
        Some
          (Dead_fu
             {
               cluster = Cs_util.Rng.int rng n;
               fu = Cs_util.Rng.int rng shape.issue_width;
             })
      else if n > 1 then Some (Dead_tile (Cs_util.Rng.int rng n))
      else None
  in
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match draw () with
      | None -> go acc (k - 1)
      | Some f ->
        let acc = if List.mem f acc then acc else f :: acc in
        (* never kill every cluster *)
        let dead =
          List.fold_left
            (fun s -> function Dead_tile _ -> s + 1 | _ -> s)
            0 acc
        in
        let acc = if dead >= n then List.tl acc else acc in
        go acc (k - 1)
  in
  go [] count
