type t =
  | Invalid_input of string
  | Infeasible of string
  | Resource_conflict of string
  | Unreachable of { src : int; dst : int }
  | Invalid_schedule of string
  | Pass_failure of string
  | Pass_timeout of string
  | Deadline_exceeded of string
  | Overloaded of string
  | Quota_exceeded of string

exception Error of t

let error e = raise (Error e)
let invalid_input msg = error (Invalid_input msg)
let infeasible msg = error (Infeasible msg)
let resource_conflict msg = error (Resource_conflict msg)
let unreachable ~src ~dst = error (Unreachable { src; dst })
let deadline_exceeded msg = error (Deadline_exceeded msg)
let overloaded msg = error (Overloaded msg)
let quota_exceeded msg = error (Quota_exceeded msg)

let kind = function
  | Invalid_input _ -> "invalid-input"
  | Infeasible _ -> "infeasible"
  | Resource_conflict _ -> "resource-conflict"
  | Unreachable _ -> "unreachable"
  | Invalid_schedule _ -> "invalid-schedule"
  | Pass_failure _ -> "pass-failure"
  | Pass_timeout _ -> "pass-timeout"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Overloaded _ -> "overloaded"
  | Quota_exceeded _ -> "quota-exceeded"

let message = function
  | Invalid_input m | Infeasible m | Resource_conflict m
  | Invalid_schedule m | Pass_failure m | Pass_timeout m
  | Deadline_exceeded m | Overloaded m | Quota_exceeded m ->
    m
  | Unreachable { src; dst } -> Printf.sprintf "no route from %d to %d" src dst

let to_string e = Printf.sprintf "%s: %s" (kind e) (message e)

let of_exn = function
  | Error e -> Some e
  | Invalid_argument m -> Some (Invalid_input m)
  | Failure m -> Some (Invalid_input m)
  | Division_by_zero -> Some (Invalid_input "division by zero")
  | Not_found -> Some (Invalid_input "not found")
  | _ -> None

let protect f =
  try Ok (f ())
  with e -> ( match of_exn e with Some t -> Result.Error t | None -> raise e)
