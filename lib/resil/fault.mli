(** Deterministic, string-round-trippable hardware fault plans.

    A plan is a list of faults applied to a healthy machine by
    [Machine.degrade]. The concrete grammar (comma-separated, spaces
    ignored):

    {v
      tile=5            cluster 5 is dead (all FUs, and its mesh node)
      fu=1:0            FU 0 of cluster 1 is dead
      link=2-3          mesh link between nodes 2 and 3 is dead
      slow-link=4-8:x3  mesh link 4-8 takes 3x the per-hop latency
    v}

    Links are undirected and normalised to [lo-hi]. Parsing is strict:
    unknown keys, malformed numbers, or a slow factor < 2 are
    [Error.Invalid_input]. [to_string] of a parsed plan re-parses to the
    same plan (canonical order preserved, duplicates removed). *)

type fault =
  | Dead_tile of int
  | Dead_fu of { cluster : int; fu : int }
  | Dead_link of int * int  (** normalised: first < second *)
  | Slow_link of { a : int; b : int; factor : int }
      (** normalised: [a < b]; [factor >= 2] multiplies per-hop cost *)

type plan = fault list

val fault_to_string : fault -> string

val to_string : plan -> string
(** Canonical comma-separated form; [""] for the empty plan. *)

val parse : string -> (plan, string) result
(** Parse the grammar above. Whitespace around items is ignored; the
    empty string (or only whitespace) is the empty plan. Duplicate
    faults are collapsed. *)

val parse_exn : string -> plan
(** Like {!parse} but raises [Error.Error (Invalid_input _)]. *)

val is_empty : plan -> bool

type shape = {
  n_clusters : int;
  issue_width : int;  (** max FUs per cluster *)
  mesh : (int * int) option;  (** [Some (rows, cols)] for meshes *)
}
(** Just enough machine geometry to draw random faults without a
    dependency on [Cs_machine]. *)

val random : Cs_util.Rng.t -> shape:shape -> plan
(** Draw a small random plan valid for [shape]: 1-3 faults, never
    killing every cluster, links only on meshes and only between
    adjacent nodes. Deterministic in the generator state. *)
