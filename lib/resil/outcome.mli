(** Record of how a resilient scheduling attempt was satisfied. *)

type rung =
  | Requested  (** the scheduler the caller asked for worked *)
  | Default_sequence  (** fell back to the default convergent sequence *)
  | Single_cluster  (** last resort: critical-path list schedule on one cluster *)

type t = {
  rung : rung;  (** the rung that produced the returned schedule *)
  attempts : (rung * string * Error.t) list;
      (** failed rungs before the winner, in order, with a label for the
          attempt and the classified error *)
  quarantined : (string * string) list;
      (** passes quarantined while producing the winning schedule:
          [(pass name, reason)] *)
  timed_out : bool;
      (** the winning schedule was extracted by an anytime early exit:
          the request deadline expired mid-sequence and the driver
          returned the best-so-far matrix *)
}

val rung_to_string : rung -> string
val healthy : t -> bool
(** [true] iff the requested scheduler won with no quarantines and no
    anytime early exit. *)

val to_string : t -> string
(** One-line summary for logs. *)
