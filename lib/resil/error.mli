(** Typed error taxonomy for the scheduling hot path.

    Historically the scheduler escaped through ad-hoc [invalid_arg] /
    [failwith] calls, which made it impossible for a fallback chain to
    distinguish "the caller handed us garbage" from "this machine cannot
    run this program" from "two bookings collided". This module gives
    every failure mode a constructor so recovery code can catch and
    classify instead of dying. *)

type t =
  | Invalid_input of string
      (** Caller-supplied data is malformed (bad sizes, bad plan syntax,
          negative cycle, out-of-range cluster...). *)
  | Infeasible of string
      (** The program cannot be scheduled on this machine at all (no
          surviving FU can execute an opcode, a dead cluster holds a
          preplaced instruction, a dead transfer unit must send...). *)
  | Resource_conflict of string
      (** Two reservations collided on the same resource and cycle. *)
  | Unreachable of { src : int; dst : int }
      (** No route between two clusters: the fault plan partitioned the
          mesh. *)
  | Invalid_schedule of string
      (** A produced schedule failed validation. *)
  | Pass_failure of string
      (** A weight pass crashed or corrupted the weight matrix. *)
  | Pass_timeout of string
      (** A weight pass overran its per-pass time budget; its effect was
          rolled back and the pass quarantined. *)
  | Deadline_exceeded of string
      (** A request's absolute deadline expired before any fallback rung
          produced a schedule — a typed refusal, never a hang. *)
  | Overloaded of string
      (** The batch service's bounded admission queue was full and the
          job was shed instead of being queued unboundedly. *)
  | Quota_exceeded of string
      (** One tenant exhausted its fair-admission quota while the
          service as a whole still had headroom — the hot tenant is
          refused, everyone else keeps flowing. *)

exception Error of t
(** The single exception carrying typed scheduling errors. *)

val error : t -> 'a
(** [error e] raises {!Error}[ e]. *)

val invalid_input : string -> 'a
val infeasible : string -> 'a
val resource_conflict : string -> 'a
val unreachable : src:int -> dst:int -> 'a
val deadline_exceeded : string -> 'a
val overloaded : string -> 'a
val quota_exceeded : string -> 'a

val kind : t -> string
(** Short stable tag, e.g. ["infeasible"]; used in telemetry/JSONL. *)

val message : t -> string
(** Human-readable payload without the kind tag. *)

val to_string : t -> string
(** ["kind: message"]. *)

val of_exn : exn -> t option
(** Map legacy escape hatches ([Invalid_argument], [Failure],
    [Division_by_zero], [Not_found]) and {!Error} itself onto the
    taxonomy. Returns [None] for exceptions that must not be swallowed
    ([Stack_overflow], [Out_of_memory], ...). *)

val protect : (unit -> 'a) -> ('a, t) result
(** [protect f] runs [f], converting any exception recognised by
    {!of_exn} into [Error _]. Unrecognised exceptions propagate. *)
