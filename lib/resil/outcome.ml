type rung = Requested | Default_sequence | Single_cluster

type t = {
  rung : rung;
  attempts : (rung * string * Error.t) list;
  quarantined : (string * string) list;
  timed_out : bool;
}

let rung_to_string = function
  | Requested -> "requested"
  | Default_sequence -> "default-sequence"
  | Single_cluster -> "single-cluster"

let healthy t =
  t.rung = Requested && t.attempts = [] && t.quarantined = [] && not t.timed_out

let to_string t =
  let b = Buffer.create 64 in
  Buffer.add_string b ("rung=" ^ rung_to_string t.rung);
  if t.timed_out then Buffer.add_string b " anytime-early-exit";
  List.iter
    (fun (r, label, e) ->
      Buffer.add_string b
        (Printf.sprintf " failed[%s/%s: %s]" (rung_to_string r) label
           (Error.to_string e)))
    t.attempts;
  List.iter
    (fun (pass, reason) ->
      Buffer.add_string b (Printf.sprintf " quarantined[%s: %s]" pass reason))
    t.quarantined;
  Buffer.contents b
