(* Crash-safe file writes: write to a sibling temp file, fsync it, then
   rename over the destination. POSIX rename is atomic within a
   filesystem, so readers — and a process restarted after SIGKILL —
   observe either the previous complete file or the new complete file,
   never a truncated mixture. The fsync before the rename closes the
   window where the rename is durable but the data is not. *)

let temp_path path =
  Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

(* A crash between creating the temp file and renaming it leaves an
   orphan [path.tmp.<pid>] behind. The next writer to the same target
   sweeps them: temp names embed the writer's pid, so anything with a
   different pid is either a dead writer's leftover or a concurrent
   writer we'd race with anyway (last rename wins either way). *)
let sweep_orphans path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".tmp." in
  let plen = String.length prefix in
  let own = Filename.basename (temp_path path) in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        if
          String.length name > plen
          && String.sub name 0 plen = prefix
          && name <> own
          && String.for_all
               (fun c -> c >= '0' && c <= '9')
               (String.sub name plen (String.length name - plen))
        then try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      entries

(* fsync the directory so the rename itself (the name -> inode edge)
   survives a crash, not just the file contents. Best effort: some
   filesystems refuse to fsync a directory fd. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_atomic ~path content =
  sweep_orphans path;
  let tmp = temp_path path in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     let rec write_all pos len =
       if len > 0 then begin
         let n = Unix.write_substring fd content pos len in
         write_all (pos + n) (len - n)
       end
     in
     write_all 0 (String.length content);
     Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
    (try Unix.close fd with _ -> ());
    (try Sys.remove tmp with _ -> ());
    raise e);
  (try Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with _ -> ());
     raise e);
  fsync_dir (Filename.dirname path)

let read_opt path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None
