(* Crash-safe file writes: write to a sibling temp file, fsync it, then
   rename over the destination. POSIX rename is atomic within a
   filesystem, so readers — and a process restarted after SIGKILL —
   observe either the previous complete file or the new complete file,
   never a truncated mixture. The fsync before the rename closes the
   window where the rename is durable but the data is not. *)

let temp_path path =
  Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let write_atomic ~path content =
  let tmp = temp_path path in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     let rec write_all pos len =
       if len > 0 then begin
         let n = Unix.write_substring fd content pos len in
         write_all (pos + n) (len - n)
       end
     in
     write_all 0 (String.length content);
     Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
    (try Unix.close fd with _ -> ());
    (try Sys.remove tmp with _ -> ());
    raise e);
  (try Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with _ -> ());
     raise e)

let read_opt path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None
