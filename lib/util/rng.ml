type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }
let state t = t.state
let of_state s = { state = s }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine for our non-cryptographic needs, but we
     mask to 62 bits first to stay non-negative as an OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo + int t (hi - lo + 1)

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
