(* Append-only write-ahead log. Records are framed
   [magic | u32 length | u32 crc32 | payload] inside numbered segment
   files; a crash mid-append leaves a torn record only at the tail, and
   the recovery scan truncates it away. fsyncs are group-committed:
   every append buffers, and one flusher at a time writes the whole
   batch and fsyncs once for everyone waiting. *)

let magic = "CSW1"
let header_bytes = 12

(* --- CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven ------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- segment files -------------------------------------------------- *)

let seg_name i = Printf.sprintf "wal-%06d.log" i
let seg_path dir i = Filename.concat dir (seg_name i)

let seg_index_of_name name =
  if
    String.length name = 14
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 6)
  else None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun n ->
         Option.map (fun i -> (i, n)) (seg_index_of_name n))
  |> List.sort compare

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- framing -------------------------------------------------------- *)

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int n);
  Bytes.set_int32_le b 8 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

(* Parse records out of one segment's bytes. Returns the intact
   payloads and the offset of the first tear ([None] when the whole
   file parses). *)
let scan_segment data =
  let len = String.length data in
  let records = ref [] in
  let rec go off =
    if off = len then None
    else if len - off < header_bytes then Some off
    else if String.sub data off 4 <> magic then Some off
    else
      let reclen =
        Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string data) (off + 4))
      in
      let crc =
        Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string data) (off + 8))
        land 0xFFFFFFFF
      in
      if reclen < 0 || off + header_bytes + reclen > len then Some off
      else
        let payload = String.sub data (off + header_bytes) reclen in
        if crc32 payload <> crc then Some off
        else begin
          records := payload :: !records;
          go (off + header_bytes + reclen)
        end
  in
  let tear = go 0 in
  (List.rev !records, tear)

(* --- log handle ----------------------------------------------------- *)

type t = {
  dir : string;
  segment_bytes : int;
  mutex : Mutex.t;
  cond : Condition.t;
  buf : Buffer.t;  (* encoded records awaiting flush *)
  mutable appended : int;  (* generation of the last buffered record *)
  mutable synced : int;  (* generation made durable *)
  mutable flushing : bool;
  mutable fd : Unix.file_descr;  (* current segment, O_APPEND *)
  mutable seg_index : int;
  mutable seg_size : int;
  mutable total_size : int;  (* durable bytes across live segments *)
  mutable closed : bool;
}

type recovery = {
  records : string list;
  truncated_bytes : int;
  segments : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let open_segment dir i =
  Unix.openfile (seg_path dir i)
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let file_size path = (Unix.stat path).Unix.st_size

let truncate_file path off =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> Unix.ftruncate fd off; Unix.fsync fd)

let open_dir ?(segment_bytes = 1 lsl 20) ~dir () =
  if segment_bytes <= header_bytes then
    invalid_arg "Wal.open_dir: segment_bytes too small";
  mkdir_p dir;
  let segments = list_segments dir in
  let n_segments = List.length segments in
  let records = ref [] in
  let truncated = ref 0 in
  (* Scan in order; the first tear truncates its segment there and
     discards every later segment — the log is only trustworthy up to
     its first bad record. *)
  let rec scan = function
    | [] -> ()
    | (i, name) :: rest ->
      let path = Filename.concat dir name in
      let data = In_channel.with_open_bin path In_channel.input_all in
      let recs, tear = scan_segment data in
      records := List.rev_append recs !records;
      ignore i;
      (match tear with
      | None -> scan rest
      | Some off ->
        truncated := String.length data - off;
        truncate_file path off;
        List.iter
          (fun (_, n) ->
            let p = Filename.concat dir n in
            truncated := !truncated + file_size p;
            Sys.remove p)
          rest;
        fsync_dir dir)
  in
  scan segments;
  let live = list_segments dir in
  let seg_index =
    match List.rev live with (i, _) :: _ -> i | [] -> 0
  in
  let fresh = live = [] in
  let fd = open_segment dir seg_index in
  if fresh then fsync_dir dir;
  let seg_size = file_size (seg_path dir seg_index) in
  let total_size =
    List.fold_left
      (fun acc (_, n) -> acc + file_size (Filename.concat dir n))
      0 (list_segments dir)
  in
  let t =
    { dir; segment_bytes; mutex = Mutex.create (); cond = Condition.create ();
      buf = Buffer.create 4096; appended = 0; synced = 0; flushing = false;
      fd; seg_index; seg_size; total_size; closed = false }
  in
  ( t,
    { records = List.rev !records;
      truncated_bytes = !truncated;
      segments = n_segments } )

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let rotate_locked t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.seg_index <- t.seg_index + 1;
  t.fd <- open_segment t.dir t.seg_index;
  t.seg_size <- 0;
  fsync_dir t.dir

let append t payload =
  locked t (fun () ->
      if t.closed then invalid_arg "Wal.append: log is closed";
      Buffer.add_string t.buf (encode payload);
      t.appended <- t.appended + 1)

let sync t =
  Mutex.lock t.mutex;
  let target = t.appended in
  let rec wait () =
    if t.synced >= target then Mutex.unlock t.mutex
    else if t.flushing then begin
      (* someone else's flush will cover us, or wake us to take over *)
      Condition.wait t.cond t.mutex;
      wait ()
    end
    else begin
      t.flushing <- true;
      let data = Buffer.contents t.buf in
      Buffer.clear t.buf;
      let gen = t.appended in
      let fd = t.fd in
      Mutex.unlock t.mutex;
      (* the batched write + single fsync, outside the lock *)
      (match
         write_all fd data;
         Unix.fsync fd
       with
      | () ->
        (* re-enter [wait] with the lock held — it owns the unlock *)
        Mutex.lock t.mutex;
        t.seg_size <- t.seg_size + String.length data;
        t.total_size <- t.total_size + String.length data;
        t.synced <- gen;
        if t.seg_size >= t.segment_bytes then rotate_locked t;
        t.flushing <- false;
        Condition.broadcast t.cond
      | exception e ->
        Mutex.lock t.mutex;
        t.flushing <- false;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        raise e);
      wait ()
    end
  in
  wait ()

let append_sync t payload =
  append t payload;
  sync t

let size_bytes t = locked t (fun () -> t.total_size)

let reset t =
  Mutex.lock t.mutex;
  while t.flushing do
    Condition.wait t.cond t.mutex
  done;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.closed then invalid_arg "Wal.reset: log is closed";
      (try Unix.close t.fd with Unix.Unix_error _ -> ());
      List.iter
        (fun (_, n) -> try Sys.remove (Filename.concat t.dir n) with Sys_error _ -> ())
        (list_segments t.dir);
      Buffer.clear t.buf;
      t.synced <- t.appended;
      t.seg_index <- 0;
      t.fd <- open_segment t.dir 0;
      t.seg_size <- 0;
      t.total_size <- 0;
      fsync_dir t.dir)

let close t =
  sync t;
  Mutex.lock t.mutex;
  while t.flushing do
    Condition.wait t.cond t.mutex
  done;
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock t.mutex
