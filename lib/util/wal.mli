(** Append-only write-ahead record log: CRC-checksummed framing,
    group-committed fsyncs, segment rotation, and a recovery scan that
    truncates torn tails.

    A log lives in a directory of numbered segment files. Each record
    is framed as [magic | length | crc32(payload) | payload], so a
    process killed mid-append leaves at most one torn record at the
    tail of the last segment — {!open_dir} detects it by length or
    checksum, truncates the file back to the last whole record, and
    the log is writable again. Corruption {e before} the tail (a bad
    record followed by good ones, or a damaged earlier segment) also
    truncates at the first bad record and discards everything after
    it: a write-ahead log is only trustworthy up to its first tear.

    Durability is group-committed: {!append} buffers, {!sync} writes
    the batch and issues one [fsync] for every record appended before
    it — concurrent committers coalesce onto a single in-flight flush
    instead of queueing one fsync each. Segment files are rotated once
    they pass [segment_bytes]; the directory is fsynced whenever the
    segment set changes, so the file set itself survives a crash. *)

type t

type recovery = {
  records : string list;  (** every intact payload, append order *)
  truncated_bytes : int;
      (** bytes discarded by tail truncation (0 on a clean log) *)
  segments : int;  (** segment files found on disk *)
}

val open_dir : ?segment_bytes:int -> dir:string -> unit -> t * recovery
(** Open (creating [dir] if needed) and run the recovery scan.
    [segment_bytes] (default 1 MiB) bounds a segment before rotation.
    Raises [Unix.Unix_error] / [Sys_error] when the directory is
    unusable. *)

val append : t -> string -> unit
(** Buffer one record (any bytes, including newlines). Thread-safe.
    Not durable until the next {!sync}. *)

val sync : t -> unit
(** Flush every buffered record and fsync. Returns once all records
    appended before this call are durable; concurrent syncs share
    flushes. *)

val append_sync : t -> string -> unit
(** [append] + [sync] — the one-call durable append. *)

val size_bytes : t -> int
(** Durable bytes across all live segments (excludes the unsynced
    buffer). *)

val reset : t -> unit
(** Compaction primitive: delete every segment and start an empty
    one. The caller decides when the log's contents are dead (e.g. no
    in-flight entries). *)

val close : t -> unit
(** Final sync, then close. Further appends raise. *)
