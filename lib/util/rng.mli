(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every experiment is reproducible from a seed. The generator is
    splitmix64, which is fast, has a 64-bit state, and supports cheap
    splitting for independent sub-streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val state : t -> int64
(** The raw 64-bit state, for checkpointing. *)

val of_state : int64 -> t
(** Rebuild a generator from {!state} output; the stream continues
    exactly where the saved generator left off. *)

val split : t -> t
(** [split t] derives an independent generator; advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. [lo <= hi]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)
