let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median = function
  | [] -> 0.0
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percentile p = function
  | [] -> 0.0
  | xs ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    (* linear interpolation between closest ranks *)
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left max x xs

let percent_change ~baseline v =
  if baseline = 0.0 then invalid_arg "Stats.percent_change: zero baseline";
  (v -. baseline) /. baseline *. 100.0

let ratio_summary pairs =
  mean
    (List.map
       (fun (a, b) ->
         if b = 0.0 then invalid_arg "Stats.ratio_summary: zero denominator";
         a /. b)
       pairs)
