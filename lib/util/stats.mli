(** Small statistics helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. All inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists of length < 2. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0, 100], linearly interpolated
    between closest ranks ([percentile 50.0] = {!median}); 0 on the
    empty list. Used for the latency-SLO report (p50/p95/p99). *)

val minimum : float list -> float
val maximum : float list -> float

val percent_change : baseline:float -> float -> float
(** [percent_change ~baseline v] is [(v - baseline) / baseline * 100]. *)

val ratio_summary : (float * float) list -> float
(** Average of [a /. b] over pairs [(a, b)] — used for "average
    improvement" numbers quoted in the paper. *)
