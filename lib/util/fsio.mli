(** Crash-safe file writes.

    Every durable artifact in the repository — JSONL exports, fuzz
    findings and repro files, tuner checkpoints, benchmark reports —
    goes through {!write_atomic} so a process killed mid-write never
    leaves a truncated file behind: the content is written to a sibling
    temp file, fsynced, and renamed over the destination (atomic on
    POSIX within one filesystem). *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path content] atomically replaces [path] with
    [content]. On failure the temp file is removed and the previous
    [path] (if any) is untouched. Before writing, orphaned
    [path.tmp.<pid>] files left by writers that crashed between create
    and rename are swept; after the rename the containing directory is
    fsynced so the new name itself is durable. *)

val read_opt : string -> string option
(** Whole-file read, [None] if [path] does not exist. *)
