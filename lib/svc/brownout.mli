(** Hysteretic brownout controller for the service tier.

    Feeds on per-job queue-wait samples (the overload burn-rate
    signal) and exposes a degradation level [0 .. max_level]. Level 0
    is normal service; each higher level halves the effective pass
    budget handed to the anytime scheduler, trading schedule quality
    for drain rate {e before} any load is shed. Escalation is
    immediate on crossing [high_ms]; recovery needs the EWMA below
    [low_ms] {e and} [dwell_s] elapsed since the last transition, so
    the level doesn't flap on bursts. Thread-safe. *)

type settings = {
  high_ms : float;  (** escalate when the wait EWMA crosses this *)
  low_ms : float;  (** recover when below this for [dwell_s] *)
  alpha : float;  (** EWMA smoothing factor per observation *)
  dwell_s : float;  (** minimum seconds at a level before stepping down *)
  cap_ms : float;  (** synthetic job budget at level 1; halves per level *)
  max_level : int;
}

val default : settings
(** 50 ms high / 10 ms low watermarks, alpha 0.2, 1 s dwell, 250 ms
    level-1 budget cap, 3 levels. *)

type t

val create : settings -> t

val observe : ?now:float -> t -> wait_ms:float -> unit
(** Fold one queue-wait sample (ms) into the EWMA and apply the
    transition rules. [?now] injects a clock for tests. *)

val level : t -> int
val ewma_ms : t -> float
val escalations : t -> int
(** Total upward transitions since creation. *)

val scale : t -> float
(** Pass-budget multiplier: [2 ** -level] — [1.0] at level 0. *)

val budget_ms : t -> float option
(** Synthetic per-job budget for jobs that carry none of their own:
    [None] at level 0 (no cap), [Some (cap_ms / 2^(level-1))] above. *)
