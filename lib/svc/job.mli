(** One admitted service job: a parsed request stamped with its arrival
    time and absolute deadline. Shared by the socket server and the SLO
    benchmark, which runs jobs in-process. *)

type t = {
  request : Proto.request;
  arrival : float;  (** {!Cs_obs.Clock} time of admission *)
  deadline : float option;  (** absolute; [arrival + deadline_ms] *)
}

val admit : ?default_deadline_ms:float -> Proto.request -> t
(** Stamp a request at the current clock. The request's own
    [deadline_ms] wins over [default_deadline_ms]. *)

val run :
  ?retry_policy:Retry.policy ->
  ?extra_passes:Cs_core.Pass.t list ->
  ?pass_budget_s:float ->
  t ->
  Proto.reply
(** Execute the job end to end and always produce a reply:

    - a deadline that expired while the job sat in the queue refuses
      immediately with [Deadline_exceeded] (running it cannot help);
    - unknown benchmark / machine / scheduler / passes refuse with
      [Invalid_input];
    - otherwise {!Cs_sim.Pipeline.schedule_resilient} runs with the
      job's absolute deadline, optionally wrapped in {!Retry.run}
      (transient errors only, and never once the deadline has expired);
    - [extra_passes] are appended to convergent sequences — the serve
      command uses this to inject a CHAOS slow pass for SLO drills.

    Never raises on classifiable scheduler failures. *)
