(** The batch service's JSON-lines wire protocol.

    One request per line, one reply per line, matched by [id]. The codec
    reuses {!Cs_obs.Json}; unknown request fields are ignored so clients
    can be newer than servers. *)

type request = {
  id : string;  (** echoed on the reply; opaque to the server *)
  bench : string;  (** workload name, looked up in {!Cs_workloads.Suite} *)
  machine : string;  (** e.g. ["raw16"], ["raw4"], ["vliw4"] *)
  scheduler : string;  (** {!Cs_sim.Pipeline.scheduler_of_name} name *)
  scale : int;  (** workload scale factor, [>= 1] *)
  deadline_ms : float option;
      (** per-job budget, measured from admission; [None] = no deadline *)
  passes : string option;  (** comma-separated pass spec overriding the default *)
  seed : int option;
  idem_key : string option;
      (** client-chosen idempotency key: a gateway running a durable
          journal answers a retry carrying the same key from the
          journal instead of re-executing — the client-visible half of
          the exactly-once contract across gateway restarts *)
  trace_id : string option;
      (** cross-process trace context (see {!Cs_obs.Tracectx}): the
          causal chain's id, stamped by the submitting client or the
          gateway and echoed into every span the job produces *)
  parent_span : string option;
      (** span id of the hop that forwarded this request *)
  tenant : string option;
      (** fair-admission identity: jobs are queued and quota'd per
          tenant, so one hot tenant degrades only itself; [None] maps
          to the ["default"] tenant *)
  job_class : string option;
      (** wire field ["class"]: ["interactive"] or ["batch"] pins the
          priority lane; [None] infers it — a deadline marks the job
          interactive, no deadline means batch *)
}

val request :
  ?id:string -> ?machine:string -> ?scheduler:string -> ?scale:int ->
  ?deadline_ms:float -> ?passes:string -> ?seed:int -> ?idem_key:string ->
  ?trace_id:string -> ?parent_span:string -> ?tenant:string ->
  ?job_class:string -> string -> request
(** [request bench] with defaults mirroring the CLI ([raw16],
    [convergent], scale 1, no deadline, no trace context). *)

val with_trace : ctx:Cs_obs.Tracectx.t -> request -> request
(** Stamp [ctx] onto a request: the wire carries [ctx.trace_id] and
    [ctx.span_id] as the receiving hop's parent. *)

val trace_of_request : request -> Cs_obs.Tracectx.t option
(** Rebuild the receiving hop's context (fresh span id, parented on
    the sender's span); [None] when the request carries no trace. *)

type verdict =
  | Scheduled of {
      cycles : int;
      transfers : int;
      rung : string;  (** fallback rung that produced the schedule *)
      timed_out : bool;  (** anytime early exit extracted best-so-far *)
      quarantined : int;  (** passes rolled back while scheduling *)
    }
  | Refused of { kind : string; message : string }
      (** typed refusal; [kind] is a {!Cs_resil.Error.kind} tag such as
          ["deadline-exceeded"] or ["overloaded"] *)

type reply = {
  reply_id : string;
  elapsed_ms : float;
  verdict : verdict;
  queue_depth : int option;
      (** load gossip: the answering shard's admission-queue depth at
          reply time; the gateway's least-loaded and
          weighted-completion-time policies feed on it *)
  cached : bool;  (** served from the gateway's result cache *)
}

val reply :
  ?queue_depth:int -> ?cached:bool -> id:string -> elapsed_ms:float -> verdict -> reply

val refused : ?elapsed_ms:float -> id:string -> Cs_resil.Error.t -> reply

val machine_of_name : string -> (Cs_machine.Machine.t, string) result
(** Same grammar as the [csched] CLI: [rawN], [vliwN], [vliw]. *)

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val reply_to_line : reply -> string
val reply_of_line : string -> (reply, string) result

(** JSON-value forms of the same codecs, for embedding requests and
    replies inside larger documents (e.g. the gateway's journal
    records) without double-encoding. *)

val request_to_json : request -> Cs_obs.Json.t
val request_of_json : Cs_obs.Json.t -> (request, string) result
val reply_to_json : reply -> Cs_obs.Json.t
val reply_of_json : Cs_obs.Json.t -> (reply, string) result

(** {2 Control verbs}

    Besides job requests, a service socket answers three control
    lines: [{"op":"ping"}] (liveness probe), [{"op":"stats"}] (live
    counters), and [{"op":"metrics","format":"json"|"prometheus"}]
    (the full metrics registry). All are answered inline — never
    queued — so a health checker's probe cannot be starved by a full
    admission queue. *)

type metrics_format = Metrics_json | Metrics_prometheus

type control = Ping | Stats_query | Metrics_query of metrics_format

type heartbeat = {
  hb_shard : string;
      (** the address the gateway was configured with for this shard —
          the shard's [--advertise] name, not whatever the kernel says
          about the connection *)
  hb_depth : int;  (** admission-queue depth *)
  hb_busy : int;
  hb_workers : int;
  hb_completed : int;
}
(** Push heartbeat: one line per period from shard to gateway on a
    persistent connection, carrying the shard's load vector. One-way —
    the gateway sends no reply — so idle-fleet load signals no longer
    depend on reply-piggybacked gossip or prober round trips. *)

type incoming =
  | Job_request of request
  | Control of { op : control; id : string }
  | Heartbeat of heartbeat

val ping_line : ?id:string -> unit -> string
val stats_line : ?id:string -> unit -> string
val metrics_line : ?format:metrics_format -> ?id:string -> unit -> string
val heartbeat_line : heartbeat -> string

type metrics_payload =
  | Snapshot of Cs_obs.Metrics.snapshot
      (** mergeable registry snapshot; fold shard answers with
          {!Cs_obs.Metrics.merge_all} for fleet totals *)
  | Prom_text of string  (** Prometheus text exposition, pre-rendered *)

val metrics_reply_to_line : id:string -> metrics_payload -> string
val metrics_reply_of_line : string -> (string * metrics_payload, string) result
(** [(id, payload)]; errors on anything that is not a metrics reply. *)

val incoming_of_line : string -> (incoming, string) result
(** Classify one wire line: a control line (has an ["op"] member) or a
    job request. *)

type server_stats = {
  queue_depth : int;  (** jobs waiting in the admission queue *)
  workers : int;
  busy : int;  (** workers currently executing a job *)
  admitted : int;
  completed : int;
  shed : int;
  refusals : int;
  extra : (string * float) list;
      (** layer-specific series (e.g. gateway cache counters),
          round-tripped verbatim *)
}

val pong_to_line : id:string -> server_stats -> string
val pong_of_line : string -> (string * server_stats, string) result
(** [(id, stats)]; errors on anything that is not a pong. *)
