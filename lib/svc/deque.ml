(* Bounded single-owner work-stealing deque (Chase–Lev shape).

   The owner pushes and pops at the bottom (LIFO, cache-hot splits run
   first); thieves steal from the top (FIFO, the oldest — usually
   biggest — item migrates). Capacity is fixed: a full deque refuses
   the push and the caller overflows to the global queue, which keeps
   the memory bound explicit instead of hiding it in a resize.

   Slots are [Atomic.t]s rather than plain array cells: OCaml's memory
   model makes racy plain reads return stale values (not crashes), and
   a stale slot read would hand a thief the wrong job. Atomic slots
   cost a little on the owner's fast path and buy exactly-once
   delivery under contention. *)

type 'a t = {
  buf : 'a option Atomic.t array;
  mask : int;
  top : int Atomic.t;  (* next index thieves steal from *)
  bottom : int Atomic.t;  (* next index the owner pushes to *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Array.init !cap (fun _ -> Atomic.make None);
    mask = !cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0 }

let capacity t = t.mask + 1

let length t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

(* Owner only. *)
let push t x =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  if b - tp >= capacity t then false
  else begin
    Atomic.set t.buf.(b land t.mask) (Some x);
    Atomic.set t.bottom (b + 1);
    true
  end

(* Owner only: LIFO. On the last element the owner races thieves with
   a CAS on [top]; whoever wins takes it, the loser sees empty. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then Atomic.get t.buf.(b land t.mask)
  else begin
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Atomic.get t.buf.(b land t.mask) else None
  end

(* Any domain: FIFO. The slot is read before the CAS; the CAS
   succeeding proves [top] had not moved, and the bounded-capacity
   push refuses to overwrite a slot whose index [top] has not passed,
   so the read value is the committed one. *)
let steal t =
  let rec go () =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if tp >= b then None
    else begin
      let x = Atomic.get t.buf.(tp land t.mask) in
      if Atomic.compare_and_set t.top tp (tp + 1) then x else go ()
    end
  in
  go ()
