type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable peak : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Squeue.create: capacity must be positive";
  { capacity; items = Queue.create (); mutex = Mutex.create ();
    nonempty = Condition.create (); closed = false; peak = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        let depth = Queue.length t.items in
        if depth > t.peak then t.peak <- depth;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let try_pop t =
  with_lock t (fun () ->
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.items)
let peak t = with_lock t (fun () -> t.peak)
