(** The fleet-wide metric families every serving process exposes.

    One {!t} per server/gateway instance (never a process global, so
    in-process fleets in tests and benches keep separate accounting).
    The names are shared across layers on purpose: merging shard and
    gateway snapshots with {!Cs_obs.Metrics.merge_all} yields fleet
    totals per family. Layer-specific families (gateway cache, health
    transitions, ...) are registered on the same {!registry} by their
    owners. *)

type t = {
  registry : Cs_obs.Metrics.t;
  admitted : Cs_obs.Metrics.counter;  (** [csched_jobs_admitted_total] *)
  completed : Cs_obs.Metrics.counter;  (** [csched_jobs_completed_total] *)
  refused : Cs_obs.Metrics.counter;  (** [csched_jobs_refused_total] *)
  shed : Cs_obs.Metrics.counter;  (** [csched_jobs_shed_total] *)
  queue_depth : Cs_obs.Metrics.gauge;  (** [csched_queue_depth] *)
  busy : Cs_obs.Metrics.gauge;  (** [csched_workers_busy] *)
  workers : Cs_obs.Metrics.gauge;  (** [csched_workers] *)
  latency_ms : Cs_obs.Metrics.histogram;  (** [csched_job_latency_ms] *)
  queue_wait_ms : Cs_obs.Metrics.histogram;  (** [csched_queue_wait_ms] *)
  deadline : Cs_obs.Metrics.slo_window;  (** [csched_deadline] *)
  queue_depth_peak : Cs_obs.Metrics.gauge;
      (** [csched_queue_depth_peak] — high-watermark queue depth, for
          post-hoc overload forensics without live polling *)
  brownout_level : Cs_obs.Metrics.gauge;  (** [csched_brownout_level] *)
  steals : Cs_obs.Metrics.counter;  (** [csched_steals_total] *)
  splits : Cs_obs.Metrics.counter;  (** [csched_splits_total] *)
  overflowed : Cs_obs.Metrics.counter;  (** [csched_overflow_total] *)
}

val create : unit -> t

val tenant_counter :
  t -> tenant:string -> outcome:string -> Cs_obs.Metrics.counter
(** The [csched_tenant_jobs_total{tenant,outcome}] family ([outcome]
    in [admitted]/[completed]/[shed]/[quota]). Idempotent per label
    set — safe to call on the hot path. *)

val lane_counter : t -> lane:string -> Cs_obs.Metrics.counter
(** The [csched_lane_admitted_total{lane}] family. *)

val snapshot : t -> Cs_obs.Metrics.snapshot

val metrics_payload : t -> Proto.metrics_format -> Proto.metrics_payload
(** The answer to a [metrics] control verb, in the requested format
    (Prometheus text rendered with the registry's help strings). *)
