(** The fleet-wide metric families every serving process exposes.

    One {!t} per server/gateway instance (never a process global, so
    in-process fleets in tests and benches keep separate accounting).
    The names are shared across layers on purpose: merging shard and
    gateway snapshots with {!Cs_obs.Metrics.merge_all} yields fleet
    totals per family. Layer-specific families (gateway cache, health
    transitions, ...) are registered on the same {!registry} by their
    owners. *)

type t = {
  registry : Cs_obs.Metrics.t;
  admitted : Cs_obs.Metrics.counter;  (** [csched_jobs_admitted_total] *)
  completed : Cs_obs.Metrics.counter;  (** [csched_jobs_completed_total] *)
  refused : Cs_obs.Metrics.counter;  (** [csched_jobs_refused_total] *)
  shed : Cs_obs.Metrics.counter;  (** [csched_jobs_shed_total] *)
  queue_depth : Cs_obs.Metrics.gauge;  (** [csched_queue_depth] *)
  busy : Cs_obs.Metrics.gauge;  (** [csched_workers_busy] *)
  workers : Cs_obs.Metrics.gauge;  (** [csched_workers] *)
  latency_ms : Cs_obs.Metrics.histogram;  (** [csched_job_latency_ms] *)
  queue_wait_ms : Cs_obs.Metrics.histogram;  (** [csched_queue_wait_ms] *)
  deadline : Cs_obs.Metrics.slo_window;  (** [csched_deadline] *)
}

val create : unit -> t

val snapshot : t -> Cs_obs.Metrics.snapshot

val metrics_payload : t -> Proto.metrics_format -> Proto.metrics_payload
(** The answer to a [metrics] control verb, in the requested format
    (Prometheus text rendered with the registry's help strings). *)
