type config = {
  listen_addr : Transport.addr;
  workers : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  pass_budget_s : float option;
  chaos_slow_ms : float option;
  retry : Retry.policy option;
  heartbeat_addr : Transport.addr option;
  heartbeat_period_s : float;
  advertise : string option;
}

let config ?(workers = 2) ?(queue_capacity = 16) ?default_deadline_ms
    ?pass_budget_s ?chaos_slow_ms ?retry ?heartbeat ?(heartbeat_period_s = 1.0)
    ?advertise addr =
  { listen_addr = Transport.parse_exn addr; workers; queue_capacity;
    default_deadline_ms; pass_budget_s; chaos_slow_ms; retry;
    heartbeat_addr = Option.map Transport.parse_exn heartbeat;
    heartbeat_period_s; advertise }

type stats = {
  admitted : int;
  completed : int;
  shed : int;
  refused : int;
}

(* Replies for one connection may come from several worker domains, so
   writes go through a per-connection mutex; the connection closes only
   after its reader has seen EOF *and* every admitted job has replied,
   whichever happens last. *)
type conn = {
  fd : Unix.file_descr;
  out_mutex : Mutex.t;
  mutable pending : int;
  mutable reader_done : bool;
  mutable conn_closed : bool;
}

type work = { job : Job.t; on : conn }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Transport.addr;
  queue : work Squeue.t;
  stopping : bool Atomic.t;
  aborted : bool Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  meters : Meters.t;
  n_busy : int Atomic.t;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let send_line conn line =
  Mutex.lock conn.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_mutex)
    (fun () ->
      if not conn.conn_closed then
        try write_all conn.fd (line ^ "\n")
        with Unix.Unix_error _ -> () (* client went away; nothing to tell it *))

let send_reply conn reply = send_line conn (Proto.reply_to_line reply)

(* Called with one of the two completion edges (a job replied / the
   reader hit EOF); closes the socket on the last edge. *)
let finish_edge conn ~job_done =
  Mutex.lock conn.out_mutex;
  let close_now =
    if job_done then conn.pending <- conn.pending - 1 else conn.reader_done <- true;
    conn.reader_done && conn.pending = 0 && not conn.conn_closed
  in
  if close_now then conn.conn_closed <- true;
  Mutex.unlock conn.out_mutex;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let create cfg =
  if cfg.workers <= 0 then invalid_arg "Server.create: workers must be positive";
  let listen_fd = Transport.listen cfg.listen_addr in
  let meters = Meters.create () in
  Cs_obs.Metrics.set meters.Meters.workers (float_of_int cfg.workers);
  { cfg; listen_fd; bound = Transport.bound_addr listen_fd cfg.listen_addr;
    queue = Squeue.create ~capacity:cfg.queue_capacity;
    stopping = Atomic.make false; aborted = Atomic.make false;
    conns_mutex = Mutex.create (); conns = []; meters; n_busy = Atomic.make 0 }

let address t = t.bound
let meters t = t.meters

(* Live values mirror into registry gauges at the moments they change
   (or are read), so metrics snapshots and the stats verb agree. *)
let sync_gauges t =
  Cs_obs.Metrics.set t.meters.Meters.queue_depth
    (float_of_int (Squeue.length t.queue));
  Cs_obs.Metrics.set t.meters.Meters.busy (float_of_int (Atomic.get t.n_busy))

let stats t =
  { admitted = Cs_obs.Metrics.counter_value t.meters.Meters.admitted;
    completed = Cs_obs.Metrics.counter_value t.meters.Meters.completed;
    shed = Cs_obs.Metrics.counter_value t.meters.Meters.shed;
    refused = Cs_obs.Metrics.counter_value t.meters.Meters.refused }

let server_stats t =
  { Proto.queue_depth = Squeue.length t.queue;
    workers = t.cfg.workers;
    busy = Atomic.get t.n_busy;
    admitted = Cs_obs.Metrics.counter_value t.meters.Meters.admitted;
    completed = Cs_obs.Metrics.counter_value t.meters.Meters.completed;
    shed = Cs_obs.Metrics.counter_value t.meters.Meters.shed;
    refusals = Cs_obs.Metrics.counter_value t.meters.Meters.refused;
    extra = [] }

let worker t () =
  let extra_passes =
    Option.map
      (fun ms -> [ Cs_core.Chaos.slow_pass ~delay_ms:ms () ])
      t.cfg.chaos_slow_ms
  in
  let rec loop () =
    match Squeue.pop t.queue with
    | None -> () (* closed and drained *)
    | Some { job; on } ->
      (* After an abort the connections are gone; burning worker time on
         jobs whose replies nobody can receive would only delay
         teardown. *)
      if Atomic.get t.aborted then begin
        finish_edge on ~job_done:true;
        loop ()
      end
      else begin
        Atomic.incr t.n_busy;
        sync_gauges t;
        let r = job.Job.request in
        (* The receiving hop of the request's trace: a fresh span id
           parented on whoever forwarded the job (gateway or client). *)
        let ctx = Proto.trace_of_request r in
        let ctx_args =
          match ctx with None -> [] | Some c -> Cs_obs.Tracectx.args c
        in
        let job_args = ("id", Cs_obs.Obs.Str r.Proto.id) :: ctx_args in
        let wait_s = Cs_obs.Clock.now () -. job.Job.arrival in
        Cs_obs.Metrics.observe t.meters.Meters.queue_wait_ms (wait_s *. 1000.0);
        Cs_obs.Obs.complete ~cat:"svc" ~args:job_args "job:queue"
          ~ts:job.Job.arrival ~dur:wait_s;
        let reply =
          Cs_obs.Obs.span ~cat:"svc" ~args:job_args "job:run" (fun () ->
              try
                Job.run ?retry_policy:t.cfg.retry ?extra_passes
                  ?pass_budget_s:t.cfg.pass_budget_s job
              with e ->
                (* last-ditch: a bug in the job runner must not kill the
                   worker — the client is owed a reply either way *)
                Proto.refused ~id:r.Proto.id
                  (Cs_resil.Error.Pass_failure (Printexc.to_string e)))
        in
        Atomic.decr t.n_busy;
        Cs_obs.Metrics.observe t.meters.Meters.latency_ms
          ((Cs_obs.Clock.now () -. job.Job.arrival) *. 1000.0);
        (match reply.Proto.verdict with
        | Proto.Scheduled _ ->
          Cs_obs.Metrics.incr t.meters.Meters.completed;
          if job.Job.deadline <> None then
            Cs_obs.Metrics.record_deadline t.meters.Meters.deadline ~hit:true
        | Proto.Refused e ->
          Cs_obs.Metrics.incr t.meters.Meters.refused;
          if e.kind = "deadline-exceeded" then
            Cs_obs.Metrics.record_deadline t.meters.Meters.deadline ~hit:false);
        (* Piggyback the current queue depth so dispatchers upstream can
           run load-aware policies without extra round trips. *)
        send_reply on { reply with Proto.queue_depth = Some (Squeue.length t.queue) };
        sync_gauges t;
        finish_edge on ~job_done:true;
        loop ()
      end
  in
  loop ()

(* Read newline-terminated requests from one client until EOF. Requests
   are admitted (or shed) as they arrive; the reader never waits for
   replies, so a client can pipeline a whole batch. Control lines (ping
   and stats) are answered inline, bypassing the queue: a health probe
   must get through even when the admission queue is full. *)
let serve_conn t conn =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let handle_line line =
    let line = String.trim line in
    if line <> "" then begin
      match Proto.incoming_of_line line with
      | Error e ->
        Cs_obs.Metrics.incr t.meters.Meters.refused;
        send_reply conn
          (Proto.refused ~id:"" (Cs_resil.Error.Invalid_input e))
      | Ok (Proto.Control { op = Proto.Metrics_query format; id }) ->
        sync_gauges t;
        send_line conn
          (Proto.metrics_reply_to_line ~id (Meters.metrics_payload t.meters format))
      | Ok (Proto.Control { op; id }) ->
        let s = server_stats t in
        (match op with
        | Proto.Stats_query ->
          Cs_obs.Obs.counter ~cat:"svc" "server:stats"
            [ ("queue_depth", float_of_int s.Proto.queue_depth);
              ("busy", float_of_int s.Proto.busy);
              ("admitted", float_of_int s.Proto.admitted);
              ("completed", float_of_int s.Proto.completed);
              ("shed", float_of_int s.Proto.shed);
              ("refusals", float_of_int s.Proto.refusals) ]
        | Proto.Ping | Proto.Metrics_query _ -> ());
        send_line conn (Proto.pong_to_line ~id s)
      | Ok (Proto.Heartbeat _) ->
        (* shards push heartbeats, they don't receive them; tolerate
           and ignore so a misdirected sender can't wedge the reader *)
        ()
      | Ok (Proto.Job_request request) ->
        let job = Job.admit ?default_deadline_ms:t.cfg.default_deadline_ms request in
        Mutex.lock conn.out_mutex;
        conn.pending <- conn.pending + 1;
        Mutex.unlock conn.out_mutex;
        if Atomic.get t.stopping || not (Squeue.try_push t.queue { job; on = conn })
        then begin
          Cs_obs.Metrics.incr t.meters.Meters.shed;
          send_reply conn
            (Proto.refused ~id:request.Proto.id
               (Cs_resil.Error.Overloaded
                  (if Atomic.get t.stopping then "server is draining"
                   else
                     Printf.sprintf "admission queue full (%d jobs)"
                       t.cfg.queue_capacity)));
          finish_edge conn ~job_done:true
        end
        else begin
          Cs_obs.Metrics.incr t.meters.Meters.admitted;
          sync_gauges t
        end
    end
  in
  let rec drain_lines () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | None -> ()
    | Some i ->
      let all = Buffer.contents buf in
      let line = String.sub all 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
      handle_line line;
      drain_lines ()
  in
  let rec read_loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain_lines ();
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  handle_line (Buffer.contents buf);
  finish_edge conn ~job_done:false

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Cs_obs.Obs.instant ~cat:"svc" "server:stop";
    (* The accept loop may be blocked in [accept]; a throwaway
       connection wakes it so it can observe the flag. Signals also
       interrupt accept with EINTR, but the self-connect makes [stop]
       reliable when called from another thread or domain. *)
    match Transport.connect t.bound with
    | exception Unix.Unix_error _ -> ()
    | fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let abort t =
  if not (Atomic.exchange t.aborted true) then begin
    Cs_obs.Obs.instant ~cat:"svc" "server:abort";
    (* Crash simulation for chaos drills: sever every open connection
       without replying (in-flight jobs vanish from the clients' point
       of view, exactly like a SIGKILL), discard queued work, and tear
       down. [shutdown], not [close]: reader domains blocked in [read]
       wake immediately, and the fd is closed exactly once by the
       connection's normal last-edge path. *)
    Mutex.lock t.conns_mutex;
    let conns = t.conns in
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun conn ->
        Mutex.lock conn.out_mutex;
        (if not conn.conn_closed then
           try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        Mutex.unlock conn.out_mutex)
      conns;
    stop t
  end

(* Push heartbeats: a persistent connection to the gateway carrying
   this shard's load vector once per period. The line names the shard
   by its advertised address (what the gateway was configured with),
   not the connection's source address. Fire-and-forget: no replies to
   read, and a dead gateway just means reconnect attempts once per
   period until it returns. *)
let heartbeat_loop t addr =
  let name =
    match t.cfg.advertise with
    | Some n -> n
    | None -> Transport.to_string t.bound
  in
  let period = Float.max 0.05 t.cfg.heartbeat_period_s in
  let rec sleep_ticks remaining =
    if remaining > 0.0 && not (Atomic.get t.stopping) then begin
      let tick = Float.min 0.05 remaining in
      Unix.sleepf tick;
      sleep_ticks (remaining -. tick)
    end
  in
  let line () =
    Proto.heartbeat_line
      { Proto.hb_shard = name;
        hb_depth = Squeue.length t.queue;
        hb_busy = Atomic.get t.n_busy;
        hb_workers = t.cfg.workers;
        hb_completed = Cs_obs.Metrics.counter_value t.meters.Meters.completed }
  in
  let rec connected fd =
    if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
    else
      match write_all fd (line () ^ "\n") with
      | () ->
        sleep_ticks period;
        connected fd
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        sleep_ticks period;
        reconnect ()
  and reconnect () =
    if not (Atomic.get t.stopping) then
      match Transport.connect addr with
      | fd -> connected fd
      | exception Unix.Unix_error _ ->
        sleep_ticks period;
        reconnect ()
  in
  reconnect ()

let run t =
  let workers = List.init t.cfg.workers (fun _ -> Domain.spawn (worker t)) in
  let heartbeater =
    Option.map
      (fun addr -> Domain.spawn (fun () -> heartbeat_loop t addr))
      t.cfg.heartbeat_addr
  in
  (* Connection readers are lightweight (parse + enqueue), so plain
     threads would do; domains keep the implementation to one
     concurrency primitive. Each reader finishes quickly after client
     EOF, and the list is pruned as readers complete. *)
  let readers = ref [] in
  let prune () =
    let live, finished =
      List.partition (fun (done_flag, _) -> not (Atomic.get done_flag)) !readers
    in
    List.iter (fun (_, d) -> Domain.join d) finished;
    readers := live
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then accept_loop ()
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Transport.accepted t.bound fd;
          let conn =
            { fd; out_mutex = Mutex.create (); pending = 0; reader_done = false;
              conn_closed = false }
          in
          Mutex.lock t.conns_mutex;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.conns_mutex;
          let done_flag = Atomic.make false in
          let d =
            Domain.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> Atomic.set done_flag true)
                  (fun () -> serve_conn t conn))
          in
          readers := (done_flag, d) :: !readers;
          prune ();
          accept_loop ()
        end
    end
  in
  Cs_obs.Obs.instant ~cat:"svc"
    ~args:
      [ ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound));
        ("workers", Cs_obs.Obs.Int t.cfg.workers);
        ("queue", Cs_obs.Obs.Int t.cfg.queue_capacity) ]
    "server:listen";
  (* Self-announcement for merged traces: Export.chrome_merged names
     this process's lane from it. *)
  Cs_obs.Obs.instant ~cat:"meta"
    ~args:
      [ ("role", Cs_obs.Obs.Str "shard");
        ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound)) ]
    "process";
  accept_loop ();
  (* Graceful drain: no new connections, finish reading the open ones,
     answer every admitted job, then tear down. (After [abort] the
     readers exit on their severed sockets and queued jobs are
     discarded unanswered instead.) *)
  List.iter (fun (_, d) -> Domain.join d) !readers;
  Squeue.close t.queue;
  List.iter Domain.join workers;
  Option.iter Domain.join heartbeater;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Transport.cleanup t.bound;
  let s = stats t in
  Cs_obs.Obs.counter ~cat:"svc" "server:drained"
    [ ("admitted", float_of_int s.admitted);
      ("completed", float_of_int s.completed);
      ("shed", float_of_int s.shed);
      ("refused", float_of_int s.refused) ]
