type config = {
  listen_addr : Transport.addr;
  workers : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  pass_budget_s : float option;
  chaos_slow_ms : float option;
  retry : Retry.policy option;
}

let config ?(workers = 2) ?(queue_capacity = 16) ?default_deadline_ms
    ?pass_budget_s ?chaos_slow_ms ?retry addr =
  { listen_addr = Transport.parse_exn addr; workers; queue_capacity;
    default_deadline_ms; pass_budget_s; chaos_slow_ms; retry }

type stats = {
  admitted : int;
  completed : int;
  shed : int;
  refused : int;
}

(* Replies for one connection may come from several worker domains, so
   writes go through a per-connection mutex; the connection closes only
   after its reader has seen EOF *and* every admitted job has replied,
   whichever happens last. *)
type conn = {
  fd : Unix.file_descr;
  out_mutex : Mutex.t;
  mutable pending : int;
  mutable reader_done : bool;
  mutable conn_closed : bool;
}

type work = { job : Job.t; on : conn }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Transport.addr;
  queue : work Squeue.t;
  stopping : bool Atomic.t;
  aborted : bool Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  n_admitted : int Atomic.t;
  n_completed : int Atomic.t;
  n_shed : int Atomic.t;
  n_refused : int Atomic.t;
  n_busy : int Atomic.t;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let send_line conn line =
  Mutex.lock conn.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_mutex)
    (fun () ->
      if not conn.conn_closed then
        try write_all conn.fd (line ^ "\n")
        with Unix.Unix_error _ -> () (* client went away; nothing to tell it *))

let send_reply conn reply = send_line conn (Proto.reply_to_line reply)

(* Called with one of the two completion edges (a job replied / the
   reader hit EOF); closes the socket on the last edge. *)
let finish_edge conn ~job_done =
  Mutex.lock conn.out_mutex;
  let close_now =
    if job_done then conn.pending <- conn.pending - 1 else conn.reader_done <- true;
    conn.reader_done && conn.pending = 0 && not conn.conn_closed
  in
  if close_now then conn.conn_closed <- true;
  Mutex.unlock conn.out_mutex;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let create cfg =
  if cfg.workers <= 0 then invalid_arg "Server.create: workers must be positive";
  let listen_fd = Transport.listen cfg.listen_addr in
  { cfg; listen_fd; bound = Transport.bound_addr listen_fd cfg.listen_addr;
    queue = Squeue.create ~capacity:cfg.queue_capacity;
    stopping = Atomic.make false; aborted = Atomic.make false;
    conns_mutex = Mutex.create (); conns = [];
    n_admitted = Atomic.make 0; n_completed = Atomic.make 0;
    n_shed = Atomic.make 0; n_refused = Atomic.make 0; n_busy = Atomic.make 0 }

let address t = t.bound

let stats t =
  { admitted = Atomic.get t.n_admitted;
    completed = Atomic.get t.n_completed;
    shed = Atomic.get t.n_shed;
    refused = Atomic.get t.n_refused }

let server_stats t =
  { Proto.queue_depth = Squeue.length t.queue;
    workers = t.cfg.workers;
    busy = Atomic.get t.n_busy;
    admitted = Atomic.get t.n_admitted;
    completed = Atomic.get t.n_completed;
    shed = Atomic.get t.n_shed;
    refusals = Atomic.get t.n_refused;
    extra = [] }

let worker t () =
  let extra_passes =
    Option.map
      (fun ms -> [ Cs_core.Chaos.slow_pass ~delay_ms:ms () ])
      t.cfg.chaos_slow_ms
  in
  let rec loop () =
    match Squeue.pop t.queue with
    | None -> () (* closed and drained *)
    | Some { job; on } ->
      (* After an abort the connections are gone; burning worker time on
         jobs whose replies nobody can receive would only delay
         teardown. *)
      if Atomic.get t.aborted then begin
        finish_edge on ~job_done:true;
        loop ()
      end
      else begin
        Atomic.incr t.n_busy;
        let reply =
          try
            Job.run ?retry_policy:t.cfg.retry ?extra_passes
              ?pass_budget_s:t.cfg.pass_budget_s job
          with e ->
            (* last-ditch: a bug in the job runner must not kill the
               worker — the client is owed a reply either way *)
            Proto.refused ~id:job.Job.request.Proto.id
              (Cs_resil.Error.Pass_failure (Printexc.to_string e))
        in
        Atomic.decr t.n_busy;
        (match reply.Proto.verdict with
        | Proto.Scheduled _ -> Atomic.incr t.n_completed
        | Proto.Refused _ -> Atomic.incr t.n_refused);
        (* Piggyback the current queue depth so dispatchers upstream can
           run load-aware policies without extra round trips. *)
        send_reply on { reply with Proto.queue_depth = Some (Squeue.length t.queue) };
        finish_edge on ~job_done:true;
        loop ()
      end
  in
  loop ()

(* Read newline-terminated requests from one client until EOF. Requests
   are admitted (or shed) as they arrive; the reader never waits for
   replies, so a client can pipeline a whole batch. Control lines (ping
   and stats) are answered inline, bypassing the queue: a health probe
   must get through even when the admission queue is full. *)
let serve_conn t conn =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let handle_line line =
    let line = String.trim line in
    if line <> "" then begin
      match Proto.incoming_of_line line with
      | Error e ->
        Atomic.incr t.n_refused;
        send_reply conn
          (Proto.refused ~id:"" (Cs_resil.Error.Invalid_input e))
      | Ok (Proto.Control { op; id }) ->
        let s = server_stats t in
        (match op with
        | Proto.Stats_query ->
          Cs_obs.Obs.counter ~cat:"svc" "server:stats"
            [ ("queue_depth", float_of_int s.Proto.queue_depth);
              ("busy", float_of_int s.Proto.busy);
              ("admitted", float_of_int s.Proto.admitted);
              ("completed", float_of_int s.Proto.completed);
              ("shed", float_of_int s.Proto.shed);
              ("refusals", float_of_int s.Proto.refusals) ]
        | Proto.Ping -> ());
        send_line conn (Proto.pong_to_line ~id s)
      | Ok (Proto.Job_request request) ->
        let job = Job.admit ?default_deadline_ms:t.cfg.default_deadline_ms request in
        Mutex.lock conn.out_mutex;
        conn.pending <- conn.pending + 1;
        Mutex.unlock conn.out_mutex;
        if Atomic.get t.stopping || not (Squeue.try_push t.queue { job; on = conn })
        then begin
          Atomic.incr t.n_shed;
          send_reply conn
            (Proto.refused ~id:request.Proto.id
               (Cs_resil.Error.Overloaded
                  (if Atomic.get t.stopping then "server is draining"
                   else
                     Printf.sprintf "admission queue full (%d jobs)"
                       t.cfg.queue_capacity)));
          finish_edge conn ~job_done:true
        end
        else Atomic.incr t.n_admitted
    end
  in
  let rec drain_lines () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | None -> ()
    | Some i ->
      let all = Buffer.contents buf in
      let line = String.sub all 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
      handle_line line;
      drain_lines ()
  in
  let rec read_loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain_lines ();
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  handle_line (Buffer.contents buf);
  finish_edge conn ~job_done:false

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Cs_obs.Obs.instant ~cat:"svc" "server:stop";
    (* The accept loop may be blocked in [accept]; a throwaway
       connection wakes it so it can observe the flag. Signals also
       interrupt accept with EINTR, but the self-connect makes [stop]
       reliable when called from another thread or domain. *)
    match Transport.connect t.bound with
    | exception Unix.Unix_error _ -> ()
    | fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let abort t =
  if not (Atomic.exchange t.aborted true) then begin
    Cs_obs.Obs.instant ~cat:"svc" "server:abort";
    (* Crash simulation for chaos drills: sever every open connection
       without replying (in-flight jobs vanish from the clients' point
       of view, exactly like a SIGKILL), discard queued work, and tear
       down. [shutdown], not [close]: reader domains blocked in [read]
       wake immediately, and the fd is closed exactly once by the
       connection's normal last-edge path. *)
    Mutex.lock t.conns_mutex;
    let conns = t.conns in
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun conn ->
        Mutex.lock conn.out_mutex;
        (if not conn.conn_closed then
           try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        Mutex.unlock conn.out_mutex)
      conns;
    stop t
  end

let run t =
  let workers = List.init t.cfg.workers (fun _ -> Domain.spawn (worker t)) in
  (* Connection readers are lightweight (parse + enqueue), so plain
     threads would do; domains keep the implementation to one
     concurrency primitive. Each reader finishes quickly after client
     EOF, and the list is pruned as readers complete. *)
  let readers = ref [] in
  let prune () =
    let live, finished =
      List.partition (fun (done_flag, _) -> not (Atomic.get done_flag)) !readers
    in
    List.iter (fun (_, d) -> Domain.join d) finished;
    readers := live
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then accept_loop ()
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Transport.accepted t.bound fd;
          let conn =
            { fd; out_mutex = Mutex.create (); pending = 0; reader_done = false;
              conn_closed = false }
          in
          Mutex.lock t.conns_mutex;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.conns_mutex;
          let done_flag = Atomic.make false in
          let d =
            Domain.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> Atomic.set done_flag true)
                  (fun () -> serve_conn t conn))
          in
          readers := (done_flag, d) :: !readers;
          prune ();
          accept_loop ()
        end
    end
  in
  Cs_obs.Obs.instant ~cat:"svc"
    ~args:
      [ ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound));
        ("workers", Cs_obs.Obs.Int t.cfg.workers);
        ("queue", Cs_obs.Obs.Int t.cfg.queue_capacity) ]
    "server:listen";
  accept_loop ();
  (* Graceful drain: no new connections, finish reading the open ones,
     answer every admitted job, then tear down. (After [abort] the
     readers exit on their severed sockets and queued jobs are
     discarded unanswered instead.) *)
  List.iter (fun (_, d) -> Domain.join d) !readers;
  Squeue.close t.queue;
  List.iter Domain.join workers;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Transport.cleanup t.bound;
  let s = stats t in
  Cs_obs.Obs.counter ~cat:"svc" "server:drained"
    [ ("admitted", float_of_int s.admitted);
      ("completed", float_of_int s.completed);
      ("shed", float_of_int s.shed);
      ("refused", float_of_int s.refused) ]
