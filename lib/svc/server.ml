type engine = Single_queue | Lanes

type config = {
  listen_addr : Transport.addr;
  workers : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  pass_budget_s : float option;
  chaos_slow_ms : float option;
  retry : Retry.policy option;
  heartbeat_addr : Transport.addr option;
  heartbeat_period_s : float;
  advertise : string option;
  engine : engine;
  split_threshold : int;
  tenant_quota : int;
  tenant_weights : (string * int) list;
  batch_share : int;
  brownout : Brownout.settings option;
}

let config ?(workers = 2) ?(queue_capacity = 16) ?default_deadline_ms
    ?pass_budget_s ?chaos_slow_ms ?retry ?heartbeat ?(heartbeat_period_s = 1.0)
    ?advertise ?(engine = Lanes) ?(split_threshold = 16) ?(tenant_quota = 0)
    ?(tenant_weights = []) ?(batch_share = 4) ?brownout addr =
  { listen_addr = Transport.parse_exn addr; workers; queue_capacity;
    default_deadline_ms; pass_budget_s; chaos_slow_ms; retry;
    heartbeat_addr = Option.map Transport.parse_exn heartbeat;
    heartbeat_period_s; advertise; engine; split_threshold; tenant_quota;
    tenant_weights; batch_share; brownout }

type stats = {
  admitted : int;
  completed : int;
  shed : int;
  refused : int;
  quota_refused : int;
}

(* Replies for one connection may come from several worker domains, so
   writes go through a per-connection mutex; the connection closes only
   after its reader has seen EOF *and* every admitted job has replied,
   whichever happens last. *)
type conn = {
  fd : Unix.file_descr;
  out_mutex : Mutex.t;
  mutable pending : int;
  mutable reader_done : bool;
  mutable conn_closed : bool;
}

(* Fan-in state for a job split into stealable parts: each part folds
   its verdict in under the mutex; whoever folds the last part builds
   and sends the aggregate reply. Sequential-composition semantics:
   cycles and transfers sum, the worst fallback rung wins, timed_out
   is sticky, and the first refusal (if any) refuses the whole job. *)
type agg = {
  a_mutex : Mutex.t;
  orig : Job.t;  (* the whole job, for ids/deadline/latency accounting *)
  mutable a_left : int;
  mutable a_cycles : int;
  mutable a_transfers : int;
  mutable a_rung_rank : int;
  mutable a_timed_out : bool;
  mutable a_quarantined : int;
  mutable a_elapsed_ms : float;
  mutable a_refusal : (string * string) option;
}

type work = {
  job : Job.t;  (* for a split part, [request.scale] is the part's share *)
  on : conn;
  agg : agg option;  (* [None] = whole, unsplit job *)
}

type queueing =
  | Q_single of work Squeue.t
  | Q_lanes of {
      fairq : work Fairq.t;
      deques : work Deque.t array;  (* one per worker domain *)
      overflow : work Squeue.t;  (* split parts that found their deque full *)
    }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Transport.addr;
  queueing : queueing;
  brownout : Brownout.t option;
  stopping : bool Atomic.t;
  aborted : bool Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  meters : Meters.t;
  quota_meter : Cs_obs.Metrics.counter;
  n_busy : int Atomic.t;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let send_line conn line =
  Mutex.lock conn.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_mutex)
    (fun () ->
      if not conn.conn_closed then
        try write_all conn.fd (line ^ "\n")
        with Unix.Unix_error _ -> () (* client went away; nothing to tell it *))

let send_reply conn reply = send_line conn (Proto.reply_to_line reply)

(* Called with one of the two completion edges (a job replied / the
   reader hit EOF); closes the socket on the last edge. *)
let finish_edge conn ~job_done =
  Mutex.lock conn.out_mutex;
  let close_now =
    if job_done then conn.pending <- conn.pending - 1 else conn.reader_done <- true;
    conn.reader_done && conn.pending = 0 && not conn.conn_closed
  in
  if close_now then conn.conn_closed <- true;
  Mutex.unlock conn.out_mutex;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let create cfg =
  if cfg.workers <= 0 then invalid_arg "Server.create: workers must be positive";
  let listen_fd = Transport.listen cfg.listen_addr in
  let meters = Meters.create () in
  Cs_obs.Metrics.set meters.Meters.workers (float_of_int cfg.workers);
  let queueing =
    match cfg.engine with
    | Single_queue -> Q_single (Squeue.create ~capacity:cfg.queue_capacity)
    | Lanes ->
      Q_lanes
        { fairq =
            Fairq.create ~tenant_quota:cfg.tenant_quota
              ~weights:cfg.tenant_weights ~batch_share:cfg.batch_share
              ~capacity:cfg.queue_capacity ();
          (* Per-worker deques hold split parts; size them to a few
             splits' worth so overflow-to-global stays the exception. *)
          deques =
            Array.init cfg.workers (fun _ -> Deque.create ~capacity:32);
          overflow =
            Squeue.create ~capacity:(max 64 (4 * cfg.queue_capacity)) }
  in
  { cfg; listen_fd; bound = Transport.bound_addr listen_fd cfg.listen_addr;
    queueing;
    brownout = Option.map Brownout.create cfg.brownout;
    stopping = Atomic.make false; aborted = Atomic.make false;
    conns_mutex = Mutex.create (); conns = []; meters;
    quota_meter =
      Cs_obs.Metrics.counter meters.Meters.registry
        ~help:"Jobs refused because their tenant was over quota"
        "csched_jobs_quota_refused_total";
    n_busy = Atomic.make 0 }

let address t = t.bound
let meters t = t.meters

(* Waiting work across every structure: the admission queue plus (for
   lanes) split parts parked on worker deques or the overflow queue. *)
let queue_depth t =
  match t.queueing with
  | Q_single q -> Squeue.length q
  | Q_lanes { fairq; deques; overflow } ->
    Fairq.length fairq + Squeue.length overflow
    + Array.fold_left (fun acc d -> acc + Deque.length d) 0 deques

let queue_peak t =
  match t.queueing with
  | Q_single q -> Squeue.peak q
  | Q_lanes { fairq; _ } -> Fairq.peak fairq

(* Live values mirror into registry gauges at the moments they change
   (or are read), so metrics snapshots and the stats verb agree. *)
let sync_gauges t =
  Cs_obs.Metrics.set t.meters.Meters.queue_depth (float_of_int (queue_depth t));
  Cs_obs.Metrics.set t.meters.Meters.queue_depth_peak
    (float_of_int (queue_peak t));
  Cs_obs.Metrics.set t.meters.Meters.busy (float_of_int (Atomic.get t.n_busy));
  match t.brownout with
  | None -> ()
  | Some bo ->
    Cs_obs.Metrics.set t.meters.Meters.brownout_level
      (float_of_int (Brownout.level bo))

let stats t =
  { admitted = Cs_obs.Metrics.counter_value t.meters.Meters.admitted;
    completed = Cs_obs.Metrics.counter_value t.meters.Meters.completed;
    shed = Cs_obs.Metrics.counter_value t.meters.Meters.shed;
    refused = Cs_obs.Metrics.counter_value t.meters.Meters.refused;
    quota_refused = Cs_obs.Metrics.counter_value t.quota_meter }

let server_stats t =
  let extra =
    [ ("quota_refused",
       float_of_int (Cs_obs.Metrics.counter_value t.quota_meter));
      ("queue_depth_peak", float_of_int (queue_peak t));
      ("steals",
       float_of_int (Cs_obs.Metrics.counter_value t.meters.Meters.steals));
      ("splits",
       float_of_int (Cs_obs.Metrics.counter_value t.meters.Meters.splits)) ]
    @
    match t.brownout with
    | None -> []
    | Some bo -> [ ("brownout_level", float_of_int (Brownout.level bo)) ]
  in
  { Proto.queue_depth = queue_depth t;
    workers = t.cfg.workers;
    busy = Atomic.get t.n_busy;
    admitted = Cs_obs.Metrics.counter_value t.meters.Meters.admitted;
    completed = Cs_obs.Metrics.counter_value t.meters.Meters.completed;
    shed = Cs_obs.Metrics.counter_value t.meters.Meters.shed;
    refusals = Cs_obs.Metrics.counter_value t.meters.Meters.refused;
    extra }

(* --- job classification -------------------------------------------- *)

let tenant_of (r : Proto.request) =
  match r.Proto.tenant with Some s when s <> "" -> s | _ -> "default"

(* Explicit class wins; otherwise a deadline marks the job interactive
   (someone is waiting on it) and no deadline means batch. *)
let lane_of (job : Job.t) =
  match job.Job.request.Proto.job_class with
  | Some "interactive" -> Fairq.Interactive
  | Some "batch" -> Fairq.Batch
  | _ -> if job.Job.deadline <> None then Fairq.Interactive else Fairq.Batch

let rung_rank = function
  | "requested" -> 0
  | "default-sequence" -> 1
  | "single-cluster" -> 2
  | _ -> 3

let rung_of_rank = function
  | 0 -> "requested"
  | 1 -> "default-sequence"
  | 2 -> "single-cluster"
  | _ -> "unknown"

(* --- execution ----------------------------------------------------- *)

(* Run one (part of a) job under the current brownout level: each
   degradation level halves the effective pass budget, and levels > 0
   impose a synthetic budget on jobs that carry none — quality traded
   for drain rate before anything is shed. *)
let run_job t job =
  let extra_passes =
    Option.map
      (fun ms -> [ Cs_core.Chaos.slow_pass ~delay_ms:ms () ])
      t.cfg.chaos_slow_ms
  in
  let pass_budget_s =
    match t.brownout with
    | None -> t.cfg.pass_budget_s
    | Some bo ->
      (match t.cfg.pass_budget_s with
      | Some b -> Some (b *. Brownout.scale bo)
      | None -> Option.map (fun ms -> ms /. 1000.0) (Brownout.budget_ms bo))
  in
  let r = job.Job.request in
  let ctx = Proto.trace_of_request r in
  let ctx_args = match ctx with None -> [] | Some c -> Cs_obs.Tracectx.args c in
  let job_args = ("id", Cs_obs.Obs.Str r.Proto.id) :: ctx_args in
  Cs_obs.Obs.span ~cat:"svc" ~args:job_args "job:run" (fun () ->
      try Job.run ?retry_policy:t.cfg.retry ?extra_passes ?pass_budget_s job
      with e ->
        (* last-ditch: a bug in the job runner must not kill the
           worker — the client is owed a reply either way *)
        Proto.refused ~id:r.Proto.id
          (Cs_resil.Error.Pass_failure (Printexc.to_string e)))

(* The tail every job shares, whole or reassembled from parts: final
   counters, SLO accounting, the reply (with queue-depth gossip
   piggybacked), and the connection's job-done edge. After an abort
   the connections are severed and nobody can receive the reply, so
   only the edge bookkeeping runs. *)
let finalize t on (job : Job.t) (reply : Proto.reply) =
  if not (Atomic.get t.aborted) then begin
    Cs_obs.Metrics.observe t.meters.Meters.latency_ms
      ((Cs_obs.Clock.now () -. job.Job.arrival) *. 1000.0);
    (match reply.Proto.verdict with
    | Proto.Scheduled _ ->
      Cs_obs.Metrics.incr t.meters.Meters.completed;
      Cs_obs.Metrics.incr
        (Meters.tenant_counter t.meters ~tenant:(tenant_of job.Job.request)
           ~outcome:"completed");
      if job.Job.deadline <> None then
        Cs_obs.Metrics.record_deadline t.meters.Meters.deadline ~hit:true
    | Proto.Refused e ->
      Cs_obs.Metrics.incr t.meters.Meters.refused;
      if e.kind = "deadline-exceeded" then
        Cs_obs.Metrics.record_deadline t.meters.Meters.deadline ~hit:false);
    (* Piggyback the current queue depth so dispatchers upstream can
       run load-aware policies without extra round trips. *)
    send_reply on { reply with Proto.queue_depth = Some (queue_depth t) };
    sync_gauges t
  end;
  finish_edge on ~job_done:true

(* Fold one part's verdict into the fan-in record; the last part
   reassembles and sends the whole job's reply. *)
let complete_part t w (reply : Proto.reply) =
  match w.agg with
  | None -> finalize t w.on w.job reply
  | Some a ->
    Mutex.lock a.a_mutex;
    (match reply.Proto.verdict with
    | Proto.Scheduled s ->
      a.a_cycles <- a.a_cycles + s.cycles;
      a.a_transfers <- a.a_transfers + s.transfers;
      a.a_rung_rank <- max a.a_rung_rank (rung_rank s.rung);
      a.a_timed_out <- a.a_timed_out || s.timed_out;
      a.a_quarantined <- a.a_quarantined + s.quarantined
    | Proto.Refused e ->
      if a.a_refusal = None then a.a_refusal <- Some (e.kind, e.message));
    a.a_elapsed_ms <- a.a_elapsed_ms +. reply.Proto.elapsed_ms;
    a.a_left <- a.a_left - 1;
    let last = a.a_left = 0 in
    Mutex.unlock a.a_mutex;
    if last then begin
      let id = a.orig.Job.request.Proto.id in
      let whole =
        match a.a_refusal with
        | Some (kind, message) ->
          { Proto.reply_id = id; elapsed_ms = a.a_elapsed_ms;
            verdict = Proto.Refused { kind; message };
            queue_depth = None; cached = false }
        | None ->
          Proto.reply ~id ~elapsed_ms:a.a_elapsed_ms
            (Proto.Scheduled
               { cycles = a.a_cycles;
                 transfers = a.a_transfers;
                 rung = rung_of_rank a.a_rung_rank;
                 timed_out = a.a_timed_out;
                 quarantined = a.a_quarantined })
      in
      finalize t w.on a.orig whole
    end

(* First dequeue of a whole job: queue-wait accounting (feeds the
   brownout signal) and the trace's queue span. Parts skip this — the
   wait was already charged to the whole job. *)
let observe_dequeue t (job : Job.t) =
  let r = job.Job.request in
  let ctx = Proto.trace_of_request r in
  let ctx_args = match ctx with None -> [] | Some c -> Cs_obs.Tracectx.args c in
  let job_args = ("id", Cs_obs.Obs.Str r.Proto.id) :: ctx_args in
  let wait_s = Cs_obs.Clock.now () -. job.Job.arrival in
  let wait_ms = wait_s *. 1000.0 in
  Cs_obs.Metrics.observe t.meters.Meters.queue_wait_ms wait_ms;
  Option.iter (fun bo -> Brownout.observe bo ~wait_ms) t.brownout;
  Cs_obs.Obs.complete ~cat:"svc" ~args:job_args "job:queue" ~ts:job.Job.arrival
    ~dur:wait_s

(* Oversized jobs become k stealable parts (scale splits as evenly as
   possible) so one huge DDG occupies one worker per part instead of
   head-of-line-blocking the pool. All but the first part go to the
   owner's deque — thieves migrate them — with the bounded global
   queue as overflow; anything even that refuses runs inline. *)
let maybe_split t ~deque ~kick w =
  let scale = w.job.Job.request.Proto.scale in
  let thr = t.cfg.split_threshold in
  match deque with
  | Some dq when w.agg = None && thr > 0 && scale > thr ->
    let k = (scale + thr - 1) / thr in
    let q = scale / k and rem = scale mod k in
    let a =
      { a_mutex = Mutex.create (); orig = w.job; a_left = k; a_cycles = 0;
        a_transfers = 0; a_rung_rank = 0; a_timed_out = false;
        a_quarantined = 0; a_elapsed_ms = 0.0; a_refusal = None }
    in
    let part i =
      let part_scale = if i < rem then q + 1 else q in
      { job =
          { w.job with
            Job.request = { w.job.Job.request with Proto.scale = part_scale } };
        on = w.on;
        agg = Some a }
    in
    Cs_obs.Metrics.incr t.meters.Meters.splits;
    let inline = ref [ part 0 ] in
    for i = k - 1 downto 1 do
      let p = part i in
      if not (Deque.push dq p) then begin
        Cs_obs.Metrics.incr t.meters.Meters.overflowed;
        match t.queueing with
        | Q_lanes { overflow; _ } when Squeue.try_push overflow p ->
          ()
        | _ -> inline := p :: !inline
      end
    done;
    kick ();
    !inline
  | _ -> [ w ]

let execute t ~deque ~kick w =
  (* burning worker time on jobs whose replies nobody can receive
     would only delay teardown *)
  let discard w =
    complete_part t w
      (Proto.refused ~id:w.job.Job.request.Proto.id
         (Cs_resil.Error.Overloaded "server aborted"))
  in
  if Atomic.get t.aborted then discard w
  else begin
    let parts =
      if w.agg = None then begin
        observe_dequeue t w.job;
        maybe_split t ~deque ~kick w
      end
      else [ w ]
    in
    List.iter
      (fun w ->
        if Atomic.get t.aborted then discard w
        else begin
          Atomic.incr t.n_busy;
          sync_gauges t;
          let reply = run_job t w.job in
          Atomic.decr t.n_busy;
          complete_part t w reply
        end)
      parts
  end

(* --- worker loops -------------------------------------------------- *)

let worker_single t q () =
  let rec loop () =
    match Squeue.pop q with
    | None -> () (* closed and drained *)
    | Some w ->
      execute t ~deque:None ~kick:(fun () -> ()) w;
      loop ()
  in
  loop ()

(* Lanes worker: own deque first (cache-hot split parts, LIFO), then
   the overflow queue, then fair admission, then stealing from
   siblings. Finding nothing, it parks on the fair queue's stamp —
   re-scanning whenever anything arrives anywhere — and exits once the
   queue is closed and a full scan comes up empty. *)
let worker_lanes t ~fairq ~deques ~overflow wid () =
  let mine = deques.(wid) in
  let kick () = Fairq.kick fairq in
  let n = Array.length deques in
  let steal_round () =
    let rec go i =
      if i >= n - 1 then None
      else
        match Deque.steal deques.((wid + 1 + i) mod n) with
        | Some w ->
          Cs_obs.Metrics.incr t.meters.Meters.steals;
          Some w
        | None -> go (i + 1)
    in
    go 0
  in
  let next () =
    match Deque.pop mine with
    | Some w -> Some w
    | None ->
      (match Squeue.try_pop overflow with
      | Some w -> Some w
      | None ->
        (match Fairq.try_pull fairq with
        | Some w -> Some w
        | None -> steal_round ()))
  in
  let rec loop () =
    let seen = Fairq.stamp fairq in
    match next () with
    | Some w ->
      execute t ~deque:(Some mine) ~kick w;
      loop ()
    | None ->
      if Fairq.closed fairq then ()
      else begin
        Fairq.wait fairq ~seen;
        loop ()
      end
  in
  loop ()

(* Read newline-terminated requests from one client until EOF. Requests
   are admitted (or shed) as they arrive; the reader never waits for
   replies, so a client can pipeline a whole batch. Control lines (ping
   and stats) are answered inline, bypassing the queue: a health probe
   must get through even when the admission queue is full. *)
let serve_conn t conn =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let shed_reply conn (request : Proto.request) reason =
    Cs_obs.Metrics.incr t.meters.Meters.shed;
    Cs_obs.Metrics.incr
      (Meters.tenant_counter t.meters ~tenant:(tenant_of request)
         ~outcome:"shed");
    send_reply conn
      (Proto.refused ~id:request.Proto.id (Cs_resil.Error.Overloaded reason));
    finish_edge conn ~job_done:true
  in
  let admit_ok (request : Proto.request) lane =
    Cs_obs.Metrics.incr t.meters.Meters.admitted;
    Cs_obs.Metrics.incr
      (Meters.tenant_counter t.meters ~tenant:(tenant_of request)
         ~outcome:"admitted");
    Cs_obs.Metrics.incr
      (Meters.lane_counter t.meters ~lane:(Fairq.lane_name lane));
    sync_gauges t
  in
  let handle_line line =
    let line = String.trim line in
    if line <> "" then begin
      match Proto.incoming_of_line line with
      | Error e ->
        Cs_obs.Metrics.incr t.meters.Meters.refused;
        send_reply conn
          (Proto.refused ~id:"" (Cs_resil.Error.Invalid_input e))
      | Ok (Proto.Control { op = Proto.Metrics_query format; id }) ->
        sync_gauges t;
        send_line conn
          (Proto.metrics_reply_to_line ~id (Meters.metrics_payload t.meters format))
      | Ok (Proto.Control { op; id }) ->
        let s = server_stats t in
        (match op with
        | Proto.Stats_query ->
          Cs_obs.Obs.counter ~cat:"svc" "server:stats"
            [ ("queue_depth", float_of_int s.Proto.queue_depth);
              ("busy", float_of_int s.Proto.busy);
              ("admitted", float_of_int s.Proto.admitted);
              ("completed", float_of_int s.Proto.completed);
              ("shed", float_of_int s.Proto.shed);
              ("refusals", float_of_int s.Proto.refusals) ]
        | Proto.Ping | Proto.Metrics_query _ -> ());
        send_line conn (Proto.pong_to_line ~id s)
      | Ok (Proto.Heartbeat _) ->
        (* shards push heartbeats, they don't receive them; tolerate
           and ignore so a misdirected sender can't wedge the reader *)
        ()
      | Ok (Proto.Job_request request) ->
        let job = Job.admit ?default_deadline_ms:t.cfg.default_deadline_ms request in
        Mutex.lock conn.out_mutex;
        conn.pending <- conn.pending + 1;
        Mutex.unlock conn.out_mutex;
        let w = { job; on = conn; agg = None } in
        if Atomic.get t.stopping then
          shed_reply conn request "server is draining"
        else begin
          match t.queueing with
          | Q_single q ->
            if Squeue.try_push q w then admit_ok request (lane_of job)
            else
              shed_reply conn request
                (Printf.sprintf "admission queue full (%d jobs)"
                   t.cfg.queue_capacity)
          | Q_lanes { fairq; _ } ->
            let tenant = tenant_of request and lane = lane_of job in
            (match Fairq.admit fairq ~tenant ~lane w with
            | Fairq.Admitted -> admit_ok request lane
            | Fairq.Queue_full ->
              shed_reply conn request
                (Printf.sprintf "admission queue full (%d jobs)"
                   t.cfg.queue_capacity)
            | Fairq.Over_quota ->
              Cs_obs.Metrics.incr t.quota_meter;
              Cs_obs.Metrics.incr t.meters.Meters.refused;
              Cs_obs.Metrics.incr
                (Meters.tenant_counter t.meters ~tenant ~outcome:"quota");
              send_reply conn
                (Proto.refused ~id:request.Proto.id
                   (Cs_resil.Error.Quota_exceeded
                      (Printf.sprintf
                         "tenant %S is over its admission quota (%d queued jobs)"
                         tenant
                         (if t.cfg.tenant_quota > 0 then t.cfg.tenant_quota
                          else t.cfg.queue_capacity))));
              finish_edge conn ~job_done:true)
        end
    end
  in
  let rec drain_lines () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | None -> ()
    | Some i ->
      let all = Buffer.contents buf in
      let line = String.sub all 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
      handle_line line;
      drain_lines ()
  in
  let rec read_loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain_lines ();
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  handle_line (Buffer.contents buf);
  finish_edge conn ~job_done:false

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Cs_obs.Obs.instant ~cat:"svc" "server:stop";
    (* The accept loop may be blocked in [accept]; a throwaway
       connection wakes it so it can observe the flag. Signals also
       interrupt accept with EINTR, but the self-connect makes [stop]
       reliable when called from another thread or domain. *)
    match Transport.connect t.bound with
    | exception Unix.Unix_error _ -> ()
    | fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let abort t =
  if not (Atomic.exchange t.aborted true) then begin
    Cs_obs.Obs.instant ~cat:"svc" "server:abort";
    (* Crash simulation for chaos drills: sever every open connection
       without replying (in-flight jobs vanish from the clients' point
       of view, exactly like a SIGKILL), discard queued work, and tear
       down. [shutdown], not [close]: reader domains blocked in [read]
       wake immediately, and the fd is closed exactly once by the
       connection's normal last-edge path. *)
    Mutex.lock t.conns_mutex;
    let conns = t.conns in
    Mutex.unlock t.conns_mutex;
    List.iter
      (fun conn ->
        Mutex.lock conn.out_mutex;
        (if not conn.conn_closed then
           try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        Mutex.unlock conn.out_mutex)
      conns;
    stop t
  end

(* Push heartbeats: a persistent connection to the gateway carrying
   this shard's load vector once per period. The line names the shard
   by its advertised address (what the gateway was configured with),
   not the connection's source address. Fire-and-forget: no replies to
   read, and a dead gateway just means reconnect attempts once per
   period until it returns. *)
let heartbeat_loop t addr =
  let name =
    match t.cfg.advertise with
    | Some n -> n
    | None -> Transport.to_string t.bound
  in
  let period = Float.max 0.05 t.cfg.heartbeat_period_s in
  let rec sleep_ticks remaining =
    if remaining > 0.0 && not (Atomic.get t.stopping) then begin
      let tick = Float.min 0.05 remaining in
      Unix.sleepf tick;
      sleep_ticks (remaining -. tick)
    end
  in
  let line () =
    Proto.heartbeat_line
      { Proto.hb_shard = name;
        hb_depth = queue_depth t;
        hb_busy = Atomic.get t.n_busy;
        hb_workers = t.cfg.workers;
        hb_completed = Cs_obs.Metrics.counter_value t.meters.Meters.completed }
  in
  let rec connected fd =
    if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
    else
      match write_all fd (line () ^ "\n") with
      | () ->
        sleep_ticks period;
        connected fd
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        sleep_ticks period;
        reconnect ()
  and reconnect () =
    if not (Atomic.get t.stopping) then
      match Transport.connect addr with
      | fd -> connected fd
      | exception Unix.Unix_error _ ->
        sleep_ticks period;
        reconnect ()
  in
  reconnect ()

let run t =
  let workers =
    match t.queueing with
    | Q_single q ->
      List.init t.cfg.workers (fun _ -> Domain.spawn (worker_single t q))
    | Q_lanes { fairq; deques; overflow } ->
      List.init t.cfg.workers (fun wid ->
          Domain.spawn (worker_lanes t ~fairq ~deques ~overflow wid))
  in
  let heartbeater =
    Option.map
      (fun addr -> Domain.spawn (fun () -> heartbeat_loop t addr))
      t.cfg.heartbeat_addr
  in
  (* Connection readers are lightweight (parse + enqueue), so plain
     threads would do; domains keep the implementation to one
     concurrency primitive. Each reader finishes quickly after client
     EOF, and the list is pruned as readers complete. *)
  let readers = ref [] in
  let prune () =
    let live, finished =
      List.partition (fun (done_flag, _) -> not (Atomic.get done_flag)) !readers
    in
    List.iter (fun (_, d) -> Domain.join d) finished;
    readers := live
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then accept_loop ()
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Transport.accepted t.bound fd;
          let conn =
            { fd; out_mutex = Mutex.create (); pending = 0; reader_done = false;
              conn_closed = false }
          in
          Mutex.lock t.conns_mutex;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.conns_mutex;
          let done_flag = Atomic.make false in
          let d =
            Domain.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> Atomic.set done_flag true)
                  (fun () -> serve_conn t conn))
          in
          readers := (done_flag, d) :: !readers;
          prune ();
          accept_loop ()
        end
    end
  in
  Cs_obs.Obs.instant ~cat:"svc"
    ~args:
      [ ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound));
        ("workers", Cs_obs.Obs.Int t.cfg.workers);
        ("queue", Cs_obs.Obs.Int t.cfg.queue_capacity);
        ( "engine",
          Cs_obs.Obs.Str
            (match t.cfg.engine with
            | Single_queue -> "single-queue"
            | Lanes -> "lanes") ) ]
    "server:listen";
  (* Self-announcement for merged traces: Export.chrome_merged names
     this process's lane from it. *)
  Cs_obs.Obs.instant ~cat:"meta"
    ~args:
      [ ("role", Cs_obs.Obs.Str "shard");
        ("addr", Cs_obs.Obs.Str (Transport.to_string t.bound)) ]
    "process";
  accept_loop ();
  (* Graceful drain: no new connections, finish reading the open ones,
     answer every admitted job, then tear down. (After [abort] the
     readers exit on their severed sockets and queued jobs are
     discarded unanswered instead.) *)
  List.iter (fun (_, d) -> Domain.join d) !readers;
  (match t.queueing with
  | Q_single q -> Squeue.close q
  | Q_lanes { fairq; overflow; _ } ->
    Squeue.close overflow;
    Fairq.close fairq);
  List.iter Domain.join workers;
  Option.iter Domain.join heartbeater;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Transport.cleanup t.bound;
  let s = stats t in
  Cs_obs.Obs.counter ~cat:"svc" "server:drained"
    [ ("admitted", float_of_int s.admitted);
      ("completed", float_of_int s.completed);
      ("shed", float_of_int s.shed);
      ("refused", float_of_int s.refused) ]
