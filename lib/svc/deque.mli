(** Bounded single-owner work-stealing deque (Chase–Lev shape).

    One domain — the owner — pushes and pops at the bottom in LIFO
    order, keeping freshly split work cache-hot; any other domain
    steals from the top in FIFO order, migrating the oldest item.
    Capacity is fixed (rounded up to a power of two): a full deque
    refuses the push so the caller can overflow to a global queue
    instead of growing unboundedly.

    Safety contract: exactly one of [push]/[pop] runs at a time (the
    owner); [steal] may run concurrently from any number of domains.
    Every pushed item is returned by exactly one [pop] or [steal]. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : 'a t -> int
(** Actual capacity (power of two [>= capacity] requested). *)

val push : 'a t -> 'a -> bool
(** Owner only. [false] when full — overflow to the global queue. *)

val pop : 'a t -> 'a option
(** Owner only. Most recently pushed item (LIFO), or [None] when
    empty or a thief won the race for the last item. *)

val steal : 'a t -> 'a option
(** Any domain. Oldest item (FIFO), or [None] when empty or the race
    was lost. *)

val length : 'a t -> int
(** Racy snapshot of the current size; exact when quiescent. *)
