type t = {
  registry : Cs_obs.Metrics.t;
  admitted : Cs_obs.Metrics.counter;
  completed : Cs_obs.Metrics.counter;
  refused : Cs_obs.Metrics.counter;
  shed : Cs_obs.Metrics.counter;
  queue_depth : Cs_obs.Metrics.gauge;
  busy : Cs_obs.Metrics.gauge;
  workers : Cs_obs.Metrics.gauge;
  latency_ms : Cs_obs.Metrics.histogram;
  queue_wait_ms : Cs_obs.Metrics.histogram;
  deadline : Cs_obs.Metrics.slo_window;
}

let create () =
  let registry = Cs_obs.Metrics.create () in
  let counter = Cs_obs.Metrics.counter registry in
  let gauge = Cs_obs.Metrics.gauge registry in
  let histogram = Cs_obs.Metrics.histogram registry in
  { registry;
    admitted = counter ~help:"Jobs accepted into the admission queue"
        "csched_jobs_admitted_total";
    completed = counter ~help:"Jobs answered with a schedule"
        "csched_jobs_completed_total";
    refused = counter ~help:"Jobs answered with a typed refusal"
        "csched_jobs_refused_total";
    shed = counter ~help:"Jobs shed by the admission queue" "csched_jobs_shed_total";
    queue_depth = gauge ~help:"Jobs waiting in the admission queue"
        "csched_queue_depth";
    busy = gauge ~help:"Workers currently executing a job" "csched_workers_busy";
    workers = gauge ~help:"Worker pool size" "csched_workers";
    latency_ms = histogram ~help:"Admission-to-reply latency (ms)"
        "csched_job_latency_ms";
    queue_wait_ms = histogram ~help:"Admission-to-dequeue wait (ms)"
        "csched_queue_wait_ms";
    deadline = Cs_obs.Metrics.slo_window registry
        ~help:"Deadline outcomes of deadline-carrying jobs" "csched_deadline" }

let snapshot t = Cs_obs.Metrics.snapshot t.registry

let metrics_payload t format =
  match format with
  | Proto.Metrics_json -> Proto.Snapshot (snapshot t)
  | Proto.Metrics_prometheus ->
    Proto.Prom_text
      (Cs_obs.Metrics.to_prometheus ~help:(Cs_obs.Metrics.help_of t.registry)
         (snapshot t))
