type t = {
  registry : Cs_obs.Metrics.t;
  admitted : Cs_obs.Metrics.counter;
  completed : Cs_obs.Metrics.counter;
  refused : Cs_obs.Metrics.counter;
  shed : Cs_obs.Metrics.counter;
  queue_depth : Cs_obs.Metrics.gauge;
  busy : Cs_obs.Metrics.gauge;
  workers : Cs_obs.Metrics.gauge;
  latency_ms : Cs_obs.Metrics.histogram;
  queue_wait_ms : Cs_obs.Metrics.histogram;
  deadline : Cs_obs.Metrics.slo_window;
  queue_depth_peak : Cs_obs.Metrics.gauge;
  brownout_level : Cs_obs.Metrics.gauge;
  steals : Cs_obs.Metrics.counter;
  splits : Cs_obs.Metrics.counter;
  overflowed : Cs_obs.Metrics.counter;
}

let create () =
  let registry = Cs_obs.Metrics.create () in
  let counter = Cs_obs.Metrics.counter registry in
  let gauge = Cs_obs.Metrics.gauge registry in
  let histogram = Cs_obs.Metrics.histogram registry in
  { registry;
    admitted = counter ~help:"Jobs accepted into the admission queue"
        "csched_jobs_admitted_total";
    completed = counter ~help:"Jobs answered with a schedule"
        "csched_jobs_completed_total";
    refused = counter ~help:"Jobs answered with a typed refusal"
        "csched_jobs_refused_total";
    shed = counter ~help:"Jobs shed by the admission queue" "csched_jobs_shed_total";
    queue_depth = gauge ~help:"Jobs waiting in the admission queue"
        "csched_queue_depth";
    busy = gauge ~help:"Workers currently executing a job" "csched_workers_busy";
    workers = gauge ~help:"Worker pool size" "csched_workers";
    latency_ms = histogram ~help:"Admission-to-reply latency (ms)"
        "csched_job_latency_ms";
    queue_wait_ms = histogram ~help:"Admission-to-dequeue wait (ms)"
        "csched_queue_wait_ms";
    deadline = Cs_obs.Metrics.slo_window registry
        ~help:"Deadline outcomes of deadline-carrying jobs" "csched_deadline";
    queue_depth_peak = gauge
        ~help:"High-watermark admission-queue depth since start"
        "csched_queue_depth_peak";
    brownout_level = gauge
        ~help:"Brownout degradation level (0 = normal service)"
        "csched_brownout_level";
    steals = counter ~help:"Work items stolen between worker deques"
        "csched_steals_total";
    splits = counter ~help:"Oversized jobs split into stealable parts"
        "csched_splits_total";
    overflowed = counter
        ~help:"Split parts that overflowed a full deque to the global queue"
        "csched_overflow_total" }

(* Per-tenant admission outcomes, labelled by tenant and outcome so
   `csched top` can fold one family into a fairness table.
   Registration is idempotent: (name, labels) identity means repeated
   calls return the same underlying series. *)
let tenant_counter t ~tenant ~outcome =
  Cs_obs.Metrics.counter t.registry
    ~labels:[ ("tenant", tenant); ("outcome", outcome) ]
    ~help:"Per-tenant admission outcomes" "csched_tenant_jobs_total"

(* Per-lane admissions: interactive vs batch traffic mix. *)
let lane_counter t ~lane =
  Cs_obs.Metrics.counter t.registry
    ~labels:[ ("lane", lane) ]
    ~help:"Jobs admitted per priority lane" "csched_lane_admitted_total"

let snapshot t = Cs_obs.Metrics.snapshot t.registry

let metrics_payload t format =
  match format with
  | Proto.Metrics_json -> Proto.Snapshot (snapshot t)
  | Proto.Metrics_prometheus ->
    Proto.Prom_text
      (Cs_obs.Metrics.to_prometheus ~help:(Cs_obs.Metrics.help_of t.registry)
         (snapshot t))
