(* Brownout degradation controller.

   Tracks an EWMA of per-job queue wait — the burn-rate signal for
   "work is arriving faster than it drains" — and maps it onto a small
   ladder of degradation levels. Each level halves the effective pass
   budget handed to the anytime scheduler, so under overload the
   server first trades schedule quality for throughput (best-so-far
   extraction still returns a valid schedule) and only sheds once even
   degraded service can't keep up.

   Transitions are hysteretic: escalation is immediate when the EWMA
   crosses the high watermark, but recovery requires the EWMA below
   the low watermark for a dwell period — otherwise a draining queue
   would flap the level on every burst. *)

type settings = {
  high_ms : float;  (* escalate when wait EWMA crosses this *)
  low_ms : float;  (* recover when below this for dwell_s *)
  alpha : float;  (* EWMA smoothing per observation *)
  dwell_s : float;  (* minimum time at a level before stepping down *)
  cap_ms : float;  (* level-1 synthetic job budget; halves per level *)
  max_level : int;
}

let default =
  { high_ms = 50.0; low_ms = 10.0; alpha = 0.2; dwell_s = 1.0;
    cap_ms = 250.0; max_level = 3 }

type t = {
  settings : settings;
  mutex : Mutex.t;
  mutable lvl : int;
  mutable wait_ewma : float;
  mutable changed_at : float;
  mutable escalations : int;
}

let create settings =
  { settings;
    mutex = Mutex.create ();
    lvl = 0;
    wait_ewma = 0.0;
    changed_at = Unix.gettimeofday ();
    escalations = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let observe ?now t ~wait_ms =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  with_lock t (fun () ->
      let s = t.settings in
      t.wait_ewma <-
        ((1.0 -. s.alpha) *. t.wait_ewma) +. (s.alpha *. wait_ms);
      if t.wait_ewma > s.high_ms && t.lvl < s.max_level then begin
        t.lvl <- t.lvl + 1;
        t.escalations <- t.escalations + 1;
        t.changed_at <- now;
        (* escalating resets the signal midway so one hot sample
           doesn't ratchet straight to max_level *)
        t.wait_ewma <- (s.high_ms +. s.low_ms) /. 2.0
      end
      else if
        t.wait_ewma < s.low_ms && t.lvl > 0
        && now -. t.changed_at >= s.dwell_s
      then begin
        t.lvl <- t.lvl - 1;
        t.changed_at <- now
      end)

let level t = with_lock t (fun () -> t.lvl)
let ewma_ms t = with_lock t (fun () -> t.wait_ewma)
let escalations t = with_lock t (fun () -> t.escalations)

let scale_of_level lvl = 1.0 /. float_of_int (1 lsl lvl)

let scale t = with_lock t (fun () -> scale_of_level t.lvl)

(* At level L > 0, jobs without their own budget get a synthetic one:
   cap_ms at level 1, halving per further level. Jobs that already
   carry a pass budget get it multiplied by [scale] instead. *)
let budget_ms t =
  with_lock t (fun () ->
      if t.lvl = 0 then None
      else Some (t.settings.cap_ms *. scale_of_level (t.lvl - 1)))
