(** Bounded retry with exponential backoff and deterministic jitter.

    The jitter sequence is a pure function of the policy (drawn from a
    {!Cs_util.Rng} seeded by [policy.seed]), so two services configured
    identically back off identically — and tests can assert the exact
    sleep schedule instead of mocking time. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_s : float;  (** wait before the second attempt *)
  multiplier : float;  (** backoff growth per retry *)
  jitter : float;  (** each wait is scaled by [1 ± jitter] *)
  max_delay_s : float;
  (** pre-jitter backoff ceiling — the exponential saturates here
      instead of overflowing at high attempt counts *)
  seed : int;  (** jitter RNG seed *)
}

val default : policy
(** 3 attempts, 10 ms base, doubling, ±50% jitter, 30 s ceiling. *)

val transient : Cs_resil.Error.t -> bool
(** The default retry predicate: [Pass_failure], [Pass_timeout] and
    [Resource_conflict] are worth a second try (quarantine may bench the
    offender); the rest of the taxonomy is deterministic in the input. *)

val delays : policy -> float list
(** The exact waits (seconds) between attempts, length
    [max_attempts - 1]. Pure: same policy, same list. Each wait is at
    most [max_delay_s *. (1. +. jitter)]; the unjittered backoff is
    monotone non-decreasing and saturates at [max_delay_s]. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?retryable:(Cs_resil.Error.t -> bool) ->
  (attempt:int -> ('a, Cs_resil.Error.t) result) ->
  ('a, Cs_resil.Error.t) result
(** [run f] calls [f ~attempt:1], retrying on [Error e] while
    [retryable e] and attempts remain, sleeping the {!delays} schedule
    in between ([sleep] defaults to [Unix.sleepf]; inject a recorder in
    tests). Returns the first [Ok] or the last [Error]. Each retry
    emits a [cat = "svc"] instant. *)
