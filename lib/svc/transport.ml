type addr =
  | Unix_path of string
  | Tcp of { host : string; port : int }

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_path s)
    | Some i ->
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port_s with
      | Some port when 0 <= port && port <= 65535 -> Ok (Tcp { host; port })
      | Some port -> Error (Printf.sprintf "port %d out of range in %S" port s)
      | None ->
        (* a colon without a numeric port is not TCP; it is also not a
           sane socket path, so reject instead of guessing *)
        Error (Printf.sprintf "bad address %S (want host:port or a socket path)" s))

let parse_exn s =
  match parse s with Ok a -> a | Error msg -> invalid_arg ("Transport.parse: " ^ msg)

let to_string = function
  | Unix_path p -> p
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let inet_addr_of_host ~for_listen host =
  if host = "" then if for_listen then Unix.inet_addr_any else Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ ->
      (match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise (Unix.Unix_error (EHOSTUNREACH, "gethostbyname", host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found -> raise (Unix.Unix_error (EHOSTUNREACH, "gethostbyname", host)))

let listen ?(backlog = 64) addr =
  match addr with
  | Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (try
       Unix.bind fd (ADDR_UNIX path);
       Unix.listen fd backlog
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  | Tcp { host; port } ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd SO_REUSEADDR true;
       Unix.bind fd (ADDR_INET (inet_addr_of_host ~for_listen:true host, port));
       Unix.listen fd backlog
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd

let bound_addr fd addr =
  match addr with
  | Unix_path _ -> addr
  | Tcp { host; _ } ->
    (match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) ->
      Tcp { host = (if host = "" then "127.0.0.1" else host); port }
    | _ -> addr)

let connect addr =
  match addr with
  | Unix_path path ->
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (try Unix.connect fd (ADDR_UNIX path)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  | Tcp { host; port } ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try
       Unix.connect fd (ADDR_INET (inet_addr_of_host ~for_listen:false host, port));
       Unix.setsockopt fd TCP_NODELAY true
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd

let accepted addr fd =
  match addr with
  | Unix_path _ -> ()
  | Tcp _ -> (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ())

let cleanup = function
  | Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()
