(** Per-tenant fair admission queue with two priority lanes.

    The service-tier replacement for a single bounded FIFO: each lane
    (interactive / batch) holds one FIFO per tenant, serviced by
    deficit-weighted round-robin so a backlogged tenant drains in
    proportion to its weight instead of in proportion to how fast it
    floods the socket. Two bounds apply at admission — a global
    capacity (shed, [Overloaded]) and a per-tenant quota that binds
    first ([Quota_exceeded]) so a hot tenant degrades only itself.

    Interactive is serviced ahead of batch, but every [batch_share]-th
    pull gives batch the front of the line: a bandwidth guarantee
    against starvation, not a strict priority inversion.

    The queue also serves as the worker pool's parking lot: the
    [stamp]/[wait]/[kick] triple is a lost-wakeup-free sleep covering
    work that arrives {e anywhere} (this queue or a sibling's deque). *)

type lane = Interactive | Batch

val lane_name : lane -> string

type admit_result =
  | Admitted
  | Queue_full  (** global capacity reached (or queue closed) — shed *)
  | Over_quota  (** this tenant's quota reached — typed refusal *)

type 'a t

val create :
  ?tenant_quota:int ->
  ?weights:(string * int) list ->
  ?batch_share:int ->
  capacity:int ->
  unit ->
  'a t
(** [tenant_quota <= 0] (the default) means "no per-tenant bound
    tighter than [capacity]". [weights] assigns DRR weights to named
    tenants (default 1). [batch_share = n] guarantees batch one pull
    in [n] (default 4; [0] disables the guarantee). Raises
    [Invalid_argument] when [capacity <= 0]. *)

val admit : 'a t -> tenant:string -> lane:lane -> 'a -> admit_result

val try_pull : 'a t -> 'a option
(** Non-blocking DRR pull honouring lane priority and the batch
    share. [None] when empty. *)

val length : 'a t -> int
val peak : 'a t -> int
(** High-watermark total depth since creation. *)

val tenants : 'a t -> (string * int) list
(** Currently queued jobs per tenant (both lanes), unordered. *)

val close : 'a t -> unit
(** Refuse further admissions and wake all waiters. Idempotent. *)

val closed : 'a t -> bool

(** {2 Parking lot}

    Worker protocol: [let seen = stamp q] {e before} scanning all work
    sources; if every source was empty, [wait q ~seen] blocks until the
    stamp moves (any admission, [kick], or [close]). Producers that
    place work outside this queue (e.g. split parts pushed onto a
    worker deque) must call [kick]. *)

val stamp : 'a t -> int
val kick : 'a t -> unit
val wait : 'a t -> seen:int -> unit
