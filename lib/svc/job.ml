type t = {
  request : Proto.request;
  arrival : float;
  deadline : float option;
}

let admit ?default_deadline_ms (request : Proto.request) =
  let arrival = Cs_obs.Clock.now () in
  let budget_ms =
    match request.deadline_ms with Some d -> Some d | None -> default_deadline_ms
  in
  let deadline = Option.map (fun ms -> arrival +. (ms /. 1000.0)) budget_ms in
  { request; arrival; deadline }

let ( let* ) = Result.bind

let parse_passes spec =
  Cs_core.Sequence.of_names (String.split_on_char ',' spec)
  |> Result.map_error (fun e -> Cs_resil.Error.Invalid_input e)

(* Resolve the request's named pieces against the registries. All
   failures come back as typed [Invalid_input] so the service replies
   with a refusal instead of tearing down the worker. *)
let resolve (r : Proto.request) =
  let* machine =
    Proto.machine_of_name r.machine
    |> Result.map_error (fun e -> Cs_resil.Error.Invalid_input e)
  in
  let* entry =
    match Cs_workloads.Suite.find r.bench with
    | Some e -> Ok e
    | None -> Error (Cs_resil.Error.Invalid_input (Printf.sprintf "unknown benchmark %S" r.bench))
  in
  let* scheduler =
    match Cs_sim.Pipeline.scheduler_of_name r.scheduler with
    | Some s -> Ok s
    | None ->
      Error (Cs_resil.Error.Invalid_input (Printf.sprintf "unknown scheduler %S" r.scheduler))
  in
  let* passes =
    match r.passes with
    | None -> Ok None
    | Some spec -> Result.map Option.some (parse_passes spec)
  in
  Ok (machine, entry, scheduler, passes)

let run ?retry_policy ?extra_passes ?pass_budget_s job =
  let r = job.request in
  let t0 = Cs_obs.Clock.now () in
  let elapsed_ms () = (Cs_obs.Clock.now () -. t0) *. 1000.0 in
  let refuse err = Proto.refused ~elapsed_ms:(elapsed_ms ()) ~id:r.id err in
  let expired () =
    match job.deadline with Some d -> Cs_obs.Clock.now () >= d | None -> false
  in
  (* A job whose deadline already expired while queued gets the typed
     refusal up front: running it cannot possibly satisfy the caller,
     and the worker's time belongs to jobs that can still make it. *)
  if expired () then
    refuse
      (Cs_resil.Error.Deadline_exceeded
         (Printf.sprintf "deadline expired %.1f ms before the job was dequeued"
            ((Cs_obs.Clock.now () -. Option.get job.deadline) *. 1000.0)))
  else
    match resolve r with
    | Error err -> refuse err
    | Ok (machine, entry, scheduler, passes) ->
      let region =
        entry.Cs_workloads.Suite.generate ~scale:r.scale
          ~clusters:(Cs_machine.Machine.n_clusters machine) ()
      in
      let passes =
        (* Injected chaos (e.g. a slow pass for SLO drills) applies only
           to convergent sequences — the other schedulers have no pass
           pipeline to perturb. *)
        match (extra_passes, scheduler) with
        | Some extra, Cs_sim.Pipeline.Convergent ->
          let base =
            match passes with
            | Some ps -> ps
            | None -> Cs_sim.Pipeline.default_passes ~machine
          in
          Some (base @ extra)
        | _ -> passes
      in
      let attempt ~attempt:_ =
        Cs_sim.Pipeline.schedule_resilient ?seed:r.seed ?passes
          ?deadline:job.deadline ?pass_budget_s ~scheduler ~machine region
      in
      let result =
        match retry_policy with
        | None -> attempt ~attempt:1
        | Some policy ->
          (* Retrying past the deadline would answer late; stop as soon
             as the budget is gone even if attempts remain. *)
          Retry.run ~policy
            ~retryable:(fun e -> Retry.transient e && not (expired ()))
            attempt
      in
      (match result with
      | Error err -> refuse err
      | Ok (sched, outcome) ->
        Proto.reply ~id:r.id ~elapsed_ms:(elapsed_ms ())
          (Proto.Scheduled
             { cycles = Cs_sched.Schedule.makespan sched;
               transfers = Cs_sched.Schedule.n_comms sched;
               rung = Cs_resil.Outcome.rung_to_string outcome.Cs_resil.Outcome.rung;
               timed_out = outcome.Cs_resil.Outcome.timed_out;
               quarantined = List.length outcome.Cs_resil.Outcome.quarantined }))
