(** Bounded multi-producer multi-consumer queue — the service's
    admission queue.

    Pushes never block: a full (or closed) queue refuses immediately so
    the acceptor can shed load with a typed [Overloaded] reply instead
    of queueing unboundedly. Pops block until an item arrives or the
    queue is closed and drained, which is exactly the worker-shutdown
    protocol: [close] then join. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed — the caller sheds. *)

val pop : 'a t -> 'a option
(** Blocks for the next item. [None] once the queue is closed {e and}
    empty, so a worker loop drains every admitted item before exiting. *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop: [None] when currently empty. Keeps draining
    after [close] until empty, like {!pop}. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked poppers. Idempotent. *)

val length : 'a t -> int

val peak : 'a t -> int
(** High-watermark depth since creation — how close admission came to
    shedding, without having to poll [length] live. *)
