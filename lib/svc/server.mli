(** The batch scheduling service: a socket server (Unix-domain or TCP,
    see {!Transport}) running {!Job}s on a [Domain] worker pool behind a
    fair, bounded admission stage.

    Robustness contract:

    - every request read from a client gets exactly one reply — a
      schedule, a typed refusal, [Overloaded] when admission sheds it,
      or [Quota_exceeded] when only its tenant is over budget; the
      server never queues unboundedly and never leaves a client
      hanging;
    - control lines (ping / stats, see {!Proto.incoming}) are answered
      inline, bypassing the queue, so health probes get through even
      under overload; job replies piggyback the live queue depth for
      load-aware dispatchers;
    - per-job deadlines are absolute from admission; expired jobs
      refuse instead of running, live ones thread the deadline into the
      anytime driver;
    - under the {!Lanes} engine, admitted jobs flow through per-tenant
      deficit-weighted round-robin queues in two priority lanes
      (interactive ahead of batch, batch guaranteed a share), workers
      run per-domain work-stealing deques, and oversized jobs split
      into stealable parts so one huge DDG cannot head-of-line-block
      the pool;
    - when configured with a {!Brownout} controller, rising queue-wait
      burn progressively tightens effective pass budgets (anytime
      best-so-far) before anything is shed, and recovers hysteretically;
    - {!stop} drains gracefully: no new connections, every admitted job
      is answered, workers are joined, a Unix socket file is removed;
    - {!abort} simulates a crash for chaos drills: connections are
      severed without replies and queued work is discarded. *)

type engine =
  | Single_queue
      (** the legacy core: one bounded MPMC queue feeding all workers —
          kept selectable as the benchmark baseline *)
  | Lanes
      (** fair admission + per-domain work-stealing deques (default) *)

type config = {
  listen_addr : Transport.addr;
  workers : int;  (** worker domains executing jobs *)
  queue_capacity : int;  (** admission queue bound; overflow sheds *)
  default_deadline_ms : float option;  (** applied when a job carries none *)
  pass_budget_s : float option;  (** per-pass budget inside the driver *)
  chaos_slow_ms : float option;
      (** inject a CHAOS slow pass of this many ms into every convergent
          job — the latency-SLO drill switch *)
  retry : Retry.policy option;  (** retry transient job failures *)
  heartbeat_addr : Transport.addr option;
      (** push {!Proto.heartbeat} lines to this gateway address *)
  heartbeat_period_s : float;
  advertise : string option;
      (** shard name carried on heartbeats — must match the address the
          gateway was configured with; defaults to the bound address *)
  engine : engine;
  split_threshold : int;
      (** split jobs whose [scale] exceeds this into stealable parts
          of at most this scale ({!Lanes} only); [0] disables *)
  tenant_quota : int;
      (** max queued jobs per tenant; [<= 0] means no bound tighter
          than [queue_capacity] *)
  tenant_weights : (string * int) list;
      (** DRR weights for named tenants (default weight 1) *)
  batch_share : int;
      (** the batch lane is guaranteed one admission pull in this many
          (default 4); [0] starves batch under interactive pressure *)
  brownout : Brownout.settings option;  (** [None] = no degradation *)
}

val config :
  ?workers:int -> ?queue_capacity:int -> ?default_deadline_ms:float ->
  ?pass_budget_s:float -> ?chaos_slow_ms:float -> ?retry:Retry.policy ->
  ?heartbeat:string -> ?heartbeat_period_s:float -> ?advertise:string ->
  ?engine:engine -> ?split_threshold:int -> ?tenant_quota:int ->
  ?tenant_weights:(string * int) list -> ?batch_share:int ->
  ?brownout:Brownout.settings -> string -> config
(** [config addr] with 2 workers, a 16-job queue, no deadlines, no
    chaos, no retry, no heartbeats ([heartbeat_period_s] defaults to
    1 s), the {!Lanes} engine, split threshold 16, no tenant quota and
    no brownout. [addr] uses the {!Transport} grammar ([host:port] for
    TCP, otherwise a Unix socket path); raises [Invalid_argument] when
    it parses to neither. *)

type stats = {
  admitted : int;
  completed : int;  (** replies carrying a schedule *)
  shed : int;  (** [Overloaded] refusals from the admission queue *)
  refused : int;  (** worker-side refusals, parse errors and quota *)
  quota_refused : int;  (** [Quota_exceeded] refusals at admission *)
}

type t

val create : config -> t
(** Bind and listen (an existing Unix socket file is replaced; TCP
    listeners set [SO_REUSEADDR]). Raises [Unix.Unix_error] when the
    address is unusable and [Invalid_argument] on a non-positive worker
    count. *)

val address : t -> Transport.addr
(** The concrete listening address — for TCP port 0, the actual
    kernel-assigned port, so in-process tests can serve on an ephemeral
    port. *)

val run : t -> unit
(** Accept and serve until {!stop}, then drain and tear down. Blocks;
    run it on the main thread with {!stop} wired to SIGTERM/SIGINT, or
    in a background thread for in-process tests. *)

val stop : t -> unit
(** Request graceful shutdown from any thread, domain, or signal
    handler. Idempotent; wakes a blocked accept via a throwaway
    self-connection. *)

val abort : t -> unit
(** Crash the server from the clients' point of view: sever every open
    connection without replying (like a SIGKILL would), discard queued
    jobs, and tear down. In-flight requests are lost — which is the
    point: failover layers above must detect and replay them. The
    chaos-drill counterpart of {!stop}. Idempotent. *)

val stats : t -> stats

val server_stats : t -> Proto.server_stats
(** The live counters served by the stats control verb. [extra]
    carries the lanes-engine series: [quota_refused],
    [queue_depth_peak], [steals], [splits] and (when configured)
    [brownout_level]. *)

val meters : t -> Meters.t
(** This instance's metrics registry (also served by the [metrics]
    control verb): job counters, latency/queue-wait histograms, and
    the [csched_deadline] SLO window. *)
