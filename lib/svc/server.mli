(** The batch scheduling service: a Unix-domain-socket server running
    {!Job}s on a [Domain] worker pool behind a bounded admission queue.

    Robustness contract:

    - every request read from a client gets exactly one reply — a
      schedule, a typed refusal, or [Overloaded] when the admission
      queue sheds it; the server never queues unboundedly and never
      leaves a client hanging;
    - per-job deadlines are absolute from admission; expired jobs
      refuse instead of running, live ones thread the deadline into the
      anytime driver;
    - {!stop} drains gracefully: no new connections, every admitted job
      is answered, workers are joined, the socket file is removed. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains executing jobs *)
  queue_capacity : int;  (** admission queue bound; overflow sheds *)
  default_deadline_ms : float option;  (** applied when a job carries none *)
  pass_budget_s : float option;  (** per-pass budget inside the driver *)
  chaos_slow_ms : float option;
      (** inject a CHAOS slow pass of this many ms into every convergent
          job — the latency-SLO drill switch *)
  retry : Retry.policy option;  (** retry transient job failures *)
}

val config :
  ?workers:int -> ?queue_capacity:int -> ?default_deadline_ms:float ->
  ?pass_budget_s:float -> ?chaos_slow_ms:float -> ?retry:Retry.policy ->
  string -> config
(** [config socket_path] with 2 workers, a 16-job queue, no deadlines,
    no chaos, no retry. *)

type stats = {
  admitted : int;
  completed : int;  (** replies carrying a schedule *)
  shed : int;  (** [Overloaded] refusals from the admission queue *)
  refused : int;  (** all refusals, including shed and parse errors *)
}

type t

val create : config -> t
(** Bind and listen on [socket_path] (an existing socket file is
    replaced). Raises [Unix.Unix_error] when the path is unusable and
    [Invalid_argument] on a non-positive worker count. *)

val run : t -> unit
(** Accept and serve until {!stop}, then drain and tear down. Blocks;
    run it on the main thread with {!stop} wired to SIGTERM/SIGINT, or
    in a background thread for in-process tests. *)

val stop : t -> unit
(** Request graceful shutdown from any thread, domain, or signal
    handler. Idempotent; wakes a blocked accept via a throwaway
    self-connection. *)

val stats : t -> stats
