(** Client side of the batch service protocol — the engine behind
    [csched submit], and the building block the gateway dispatches
    with. Works over any {!Transport.addr} (Unix socket or TCP). *)

val submit :
  ?timeout_s:float ->
  ?on_reply:(Proto.reply -> unit) ->
  addr:Transport.addr ->
  Proto.request list ->
  (Proto.reply list, string) result
(** Connect, pipeline all requests, half-close, and collect one reply
    per request (the server closes after answering everything).
    Replies come back in completion order — match by [reply_id].
    [on_reply] streams each reply as it lands. [timeout_s] bounds each
    read so a dead server cannot hang the client. Errors are transport
    problems; scheduling failures arrive as {!Proto.Refused} replies. *)

val fetch_stats :
  ?timeout_s:float -> addr:Transport.addr -> unit -> (Proto.server_stats, string) result
(** One stats round trip against a serve or gateway socket ([timeout_s]
    defaults to 5 s). Errors are transport problems or a non-pong
    reply. *)

val fetch_metrics :
  ?timeout_s:float -> ?format:Proto.metrics_format -> addr:Transport.addr -> unit ->
  (Proto.metrics_payload, string) result
(** One metrics round trip ([format] defaults to the mergeable JSON
    snapshot; ask for {!Proto.Metrics_prometheus} to get the rendered
    text exposition instead). *)
