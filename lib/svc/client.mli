(** Client side of the batch service protocol — the engine behind
    [csched submit]. *)

val submit :
  ?timeout_s:float ->
  ?on_reply:(Proto.reply -> unit) ->
  socket_path:string ->
  Proto.request list ->
  (Proto.reply list, string) result
(** Connect, pipeline all requests, half-close, and collect one reply
    per request (the server closes after answering everything).
    Replies come back in completion order — match by [reply_id].
    [on_reply] streams each reply as it lands. [timeout_s] bounds each
    read so a dead server cannot hang the client. Errors are transport
    problems; scheduling failures arrive as {!Proto.Refused} replies. *)
