(* Per-tenant fair admission with two priority lanes.

   Each lane (interactive / batch) keeps a FIFO per tenant plus a
   service ring walked deficit-weighted-round-robin style: a visit
   tops a tenant's deficit up by its weight, and the tenant at the
   front of the ring pays one deficit per dequeued job — so a tenant
   with weight 2 drains twice as fast as a weight-1 tenant when both
   are backlogged, and an idle tenant accumulates nothing.

   Admission applies two independent bounds: a global capacity (full
   queue sheds with [Overloaded], same contract as the old single
   Squeue) and a per-tenant quota that binds first while the queue
   still has headroom, producing a typed [Quota_exceeded] refusal so a
   hot tenant degrades only itself.

   Lane scheduling: interactive is serviced first, except that every
   [batch_share]-th pull offers batch the front of the line — a
   bandwidth guarantee that keeps batch from starving under a flood of
   interactive traffic while interactive latency stays first-class.

   The queue doubles as the workers' parking lot: [stamp]/[wait]/[kick]
   implement a lost-wakeup-free sleep so a worker that found every
   deque empty can block until *any* new work (admitted here or split
   onto a sibling's deque) arrives. *)

type lane = Interactive | Batch

let lane_name = function Interactive -> "interactive" | Batch -> "batch"

type admit_result = Admitted | Queue_full | Over_quota

type 'a tq = {
  items : 'a Queue.t;
  mutable deficit : float;
  weight : float;
}

type 'a lane_state = {
  tenants : (string, 'a tq) Hashtbl.t;
  ring : string Queue.t;  (* tenants with queued items, service order *)
}

type 'a t = {
  capacity : int;
  tenant_quota : int;
  weights : (string * int) list;
  batch_share : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  interactive : 'a lane_state;
  batch : 'a lane_state;
  counts : (string, int) Hashtbl.t;  (* queued per tenant, both lanes *)
  mutable total : int;
  mutable peak : int;
  mutable pulls : int;
  mutable stamp_v : int;
  mutable closed : bool;
}

let fresh_lane () = { tenants = Hashtbl.create 8; ring = Queue.create () }

let create ?(tenant_quota = 0) ?(weights = []) ?(batch_share = 4) ~capacity ()
    =
  if capacity <= 0 then invalid_arg "Fairq.create: capacity must be positive";
  { capacity;
    tenant_quota = (if tenant_quota <= 0 then capacity else tenant_quota);
    weights;
    batch_share = max 0 batch_share;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    interactive = fresh_lane ();
    batch = fresh_lane ();
    counts = Hashtbl.create 8;
    total = 0;
    peak = 0;
    pulls = 0;
    stamp_v = 0;
    closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let signal_locked t =
  t.stamp_v <- t.stamp_v + 1;
  Condition.broadcast t.nonempty

let tenant_count t tenant =
  match Hashtbl.find_opt t.counts tenant with Some n -> n | None -> 0

let admit t ~tenant ~lane x =
  with_lock t (fun () ->
      if t.closed || t.total >= t.capacity then Queue_full
      else if tenant_count t tenant >= t.tenant_quota then Over_quota
      else begin
        let ls = match lane with Interactive -> t.interactive | Batch -> t.batch in
        let tq =
          match Hashtbl.find_opt ls.tenants tenant with
          | Some tq -> tq
          | None ->
            let weight =
              match List.assoc_opt tenant t.weights with
              | Some w when w > 0 -> float_of_int w
              | _ -> 1.0
            in
            let tq = { items = Queue.create (); deficit = 0.0; weight } in
            Hashtbl.replace ls.tenants tenant tq;
            tq
        in
        if Queue.is_empty tq.items then Queue.push tenant ls.ring;
        Queue.push x tq.items;
        Hashtbl.replace t.counts tenant (tenant_count t tenant + 1);
        t.total <- t.total + 1;
        if t.total > t.peak then t.peak <- t.total;
        signal_locked t;
        Admitted
      end)

(* One DRR step inside a lane. The front tenant pays one deficit per
   job and keeps the front while solvent (weighted burst); a broke
   tenant gets topped up by its weight and rotates to the back. *)
let pull_lane ls =
  let budget = ref ((2 * Queue.length ls.ring) + 2) in
  let rec go () =
    if Queue.is_empty ls.ring || !budget <= 0 then None
    else begin
      decr budget;
      let name = Queue.peek ls.ring in
      match Hashtbl.find_opt ls.tenants name with
      | None ->
        ignore (Queue.pop ls.ring);
        go ()
      | Some tq ->
        if Queue.is_empty tq.items then begin
          ignore (Queue.pop ls.ring);
          tq.deficit <- 0.0;
          go ()
        end
        else if tq.deficit >= 1.0 then begin
          tq.deficit <- tq.deficit -. 1.0;
          let x = Queue.pop tq.items in
          if Queue.is_empty tq.items then begin
            ignore (Queue.pop ls.ring);
            tq.deficit <- 0.0
          end;
          Some (name, x)
        end
        else begin
          tq.deficit <- tq.deficit +. tq.weight;
          ignore (Queue.pop ls.ring);
          Queue.push name ls.ring;
          go ()
        end
    end
  in
  go ()

let try_pull t =
  with_lock t (fun () ->
      if t.total = 0 then None
      else begin
        t.pulls <- t.pulls + 1;
        let prefer_batch =
          t.batch_share > 0 && t.pulls mod t.batch_share = 0
        in
        let order =
          if prefer_batch then [ t.batch; t.interactive ]
          else [ t.interactive; t.batch ]
        in
        let rec first = function
          | [] -> None
          | ls :: rest ->
            (match pull_lane ls with Some _ as r -> r | None -> first rest)
        in
        match first order with
        | None -> None
        | Some (tenant, x) ->
          let n = tenant_count t tenant - 1 in
          if n <= 0 then Hashtbl.remove t.counts tenant
          else Hashtbl.replace t.counts tenant n;
          t.total <- t.total - 1;
          Some x
      end)

let length t = with_lock t (fun () -> t.total)
let peak t = with_lock t (fun () -> t.peak)
let closed t = with_lock t (fun () -> t.closed)

let tenants t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.counts [])

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      signal_locked t)

let stamp t = with_lock t (fun () -> t.stamp_v)

let kick t = with_lock t (fun () -> signal_locked t)

let wait t ~seen =
  with_lock t (fun () ->
      while t.stamp_v = seen && not t.closed do
        Condition.wait t.nonempty t.mutex
      done)
