type policy = {
  max_attempts : int;
  base_delay_s : float;
  multiplier : float;
  jitter : float;
  seed : int;
}

let default =
  { max_attempts = 3; base_delay_s = 0.01; multiplier = 2.0; jitter = 0.5;
    seed = 0x5e77 }

(* A pass crash is worth retrying: the driver reseeds nothing between
   attempts but quarantine state and fallback rungs can differ once a
   flaky pass is benched. Everything else in the taxonomy is
   deterministic in the input (bad request, infeasible machine, expired
   deadline), so retrying would only burn the caller's budget. *)
let transient = function
  | Cs_resil.Error.Pass_failure _ | Cs_resil.Error.Pass_timeout _
  | Cs_resil.Error.Resource_conflict _ -> true
  | _ -> false

let delays policy =
  if policy.max_attempts <= 1 then []
  else begin
    let rng = Cs_util.Rng.create policy.seed in
    List.init (policy.max_attempts - 1) (fun i ->
        let backoff = policy.base_delay_s *. (policy.multiplier ** float_of_int i) in
        (* jitter in [1-j, 1+j], deterministic in the policy seed *)
        let factor = 1.0 +. policy.jitter *. (Cs_util.Rng.float rng 2.0 -. 1.0) in
        Float.max 0.0 (backoff *. factor))
  end

let run ?(policy = default) ?(sleep = Unix.sleepf) ?(retryable = transient) f =
  let waits = delays policy in
  let rec go attempt waits =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
      (match waits with
      | w :: rest when retryable e ->
        Cs_obs.Obs.instant ~cat:"svc"
          ~args:
            [ ("attempt", Cs_obs.Obs.Int attempt);
              ("delay_s", Cs_obs.Obs.Float w);
              ("error", Cs_obs.Obs.Str (Cs_resil.Error.kind e)) ]
          "retry";
        sleep w;
        go (attempt + 1) rest
      | _ -> err)
  in
  go 1 waits
