type policy = {
  max_attempts : int;
  base_delay_s : float;
  multiplier : float;
  jitter : float;
  max_delay_s : float;
  seed : int;
}

let default =
  { max_attempts = 3; base_delay_s = 0.01; multiplier = 2.0; jitter = 0.5;
    max_delay_s = 30.0; seed = 0x5e77 }

(* A pass crash is worth retrying: the driver reseeds nothing between
   attempts but quarantine state and fallback rungs can differ once a
   flaky pass is benched. Everything else in the taxonomy is
   deterministic in the input (bad request, infeasible machine, expired
   deadline), so retrying would only burn the caller's budget. *)
let transient = function
  | Cs_resil.Error.Pass_failure _ | Cs_resil.Error.Pass_timeout _
  | Cs_resil.Error.Resource_conflict _ -> true
  | _ -> false

let delays policy =
  if policy.max_attempts <= 1 then []
  else begin
    let rng = Cs_util.Rng.create policy.seed in
    let cap = Float.max 0.0 policy.max_delay_s in
    (* Grow the backoff by repeated multiplication, saturating at the
       cap: [multiplier ** i] overflows to [infinity] (or collapses to
       [nan] in edge cases) for large attempt counts, which used to
       produce non-monotone or unusable schedules. Once the running
       backoff saturates it stays saturated, so the unjittered schedule
       is monotone by construction. *)
    let backoff = ref (Float.min cap policy.base_delay_s) in
    List.init (policy.max_attempts - 1) (fun i ->
        if i > 0 then begin
          let next = !backoff *. policy.multiplier in
          backoff :=
            if Float.is_nan next then cap else Float.min cap next
        end;
        (* jitter in [1-j, 1+j], deterministic in the policy seed *)
        let factor = 1.0 +. policy.jitter *. (Cs_util.Rng.float rng 2.0 -. 1.0) in
        Float.max 0.0 (!backoff *. factor))
  end

let run ?(policy = default) ?(sleep = Unix.sleepf) ?(retryable = transient) f =
  let waits = delays policy in
  let rec go attempt waits =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
      (match waits with
      | w :: rest when retryable e ->
        Cs_obs.Obs.instant ~cat:"svc"
          ~args:
            [ ("attempt", Cs_obs.Obs.Int attempt);
              ("delay_s", Cs_obs.Obs.Float w);
              ("error", Cs_obs.Obs.Str (Cs_resil.Error.kind e)) ]
          "retry";
        sleep w;
        go (attempt + 1) rest
      | _ -> err)
  in
  go 1 waits
