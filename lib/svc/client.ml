let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Connect, run [f fd], always close. *)
let with_conn ?timeout_s addr f =
  match Transport.connect addr with
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Printf.sprintf "connect %s: %s (%s)" (Transport.to_string addr)
         (Unix.error_message e) fn)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Option.iter (fun t -> Unix.setsockopt_float fd SO_RCVTIMEO t) timeout_s;
        f fd)

(* Read newline-separated lines until EOF, feeding [handle_line]. *)
let read_lines fd handle_line =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain_lines () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | None -> ()
    | Some i ->
      let all = Buffer.contents buf in
      handle_line (String.sub all 0 i);
      Buffer.clear buf;
      Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
      drain_lines ()
  in
  let rec read_loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Ok ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain_lines ();
      read_loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      Error "timed out waiting for replies"
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "recv: %s" (Unix.error_message e))
  in
  match read_loop () with
  | Error _ as e -> e
  | Ok () ->
    handle_line (Buffer.contents buf);
    Ok ()

(* Batch submit: pipeline every request, half-close the write side so
   the server sees EOF, then read replies until the server closes —
   which it does only after answering every request. Replies arrive in
   completion order, not submission order; match them by id. *)
let submit ?timeout_s ?on_reply ~addr requests =
  with_conn ?timeout_s addr (fun fd ->
      match
        List.iter
          (fun r -> write_all fd (Proto.request_to_line r ^ "\n"))
          requests;
        Unix.shutdown fd SHUTDOWN_SEND
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "send: %s" (Unix.error_message e))
      | () ->
        let replies = ref [] in
        let bad = ref None in
        let handle_line line =
          let line = String.trim line in
          if line <> "" then
            match Proto.reply_of_line line with
            | Ok reply ->
              Option.iter (fun f -> f reply) on_reply;
              replies := reply :: !replies
            | Error e -> if !bad = None then bad := Some e
        in
        (match read_lines fd handle_line with
        | Error _ as e -> e
        | Ok () ->
          (match !bad with
          | Some e -> Error (Printf.sprintf "bad reply line: %s" e)
          | None -> Ok (List.rev !replies))))

(* One control round trip: a ping or stats probe against a serve or
   gateway socket. One line out, one line back. *)
let fetch_stats ?(timeout_s = 5.0) ~addr () =
  with_conn ~timeout_s addr (fun fd ->
      match
        write_all fd (Proto.stats_line () ^ "\n");
        Unix.shutdown fd SHUTDOWN_SEND
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "send: %s" (Unix.error_message e))
      | () ->
        let result = ref (Error "no pong before EOF") in
        let handle_line line =
          let line = String.trim line in
          if line <> "" then
            match (!result, Proto.pong_of_line line) with
            | Error _, Ok (_, stats) -> result := Ok stats
            | Error _, Error e -> result := Error e
            | Ok _, _ -> ()
        in
        (match read_lines fd handle_line with
        | Error e -> Error e
        | Ok () -> !result))

(* One metrics round trip: the registry snapshot (or Prometheus text)
   of a serve or gateway socket. *)
let fetch_metrics ?(timeout_s = 5.0) ?(format = Proto.Metrics_json) ~addr () =
  with_conn ~timeout_s addr (fun fd ->
      match
        write_all fd (Proto.metrics_line ~format () ^ "\n");
        Unix.shutdown fd SHUTDOWN_SEND
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "send: %s" (Unix.error_message e))
      | () ->
        let result = ref (Error "no metrics reply before EOF") in
        let handle_line line =
          let line = String.trim line in
          if line <> "" then
            match (!result, Proto.metrics_reply_of_line line) with
            | Error _, Ok (_, payload) -> result := Ok payload
            | Error _, Error e -> result := Error e
            | Ok _, _ -> ()
        in
        (match read_lines fd handle_line with
        | Error e -> Error e
        | Ok () -> !result))
