let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Batch submit: pipeline every request, half-close the write side so
   the server sees EOF, then read replies until the server closes —
   which it does only after answering every request. Replies arrive in
   completion order, not submission order; match them by id. *)
let submit ?timeout_s ?on_reply ~socket_path requests =
  match Unix.socket PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match
          Option.iter (fun t -> Unix.setsockopt_float fd SO_RCVTIMEO t) timeout_s;
          Unix.connect fd (ADDR_UNIX socket_path)
        with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect %s: %s" socket_path (Unix.error_message e))
        | () ->
          (match
             List.iter
               (fun r -> write_all fd (Proto.request_to_line r ^ "\n"))
               requests;
             Unix.shutdown fd SHUTDOWN_SEND
           with
          | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "send: %s" (Unix.error_message e))
          | () ->
            let buf = Buffer.create 256 in
            let chunk = Bytes.create 4096 in
            let replies = ref [] in
            let bad = ref None in
            let handle_line line =
              let line = String.trim line in
              if line <> "" then
                match Proto.reply_of_line line with
                | Ok reply ->
                  Option.iter (fun f -> f reply) on_reply;
                  replies := reply :: !replies
                | Error e -> if !bad = None then bad := Some e
            in
            let rec drain_lines () =
              match String.index_opt (Buffer.contents buf) '\n' with
              | None -> ()
              | Some i ->
                let all = Buffer.contents buf in
                handle_line (String.sub all 0 i);
                Buffer.clear buf;
                Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
                drain_lines ()
            in
            let rec read_loop () =
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Ok ()
              | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain_lines ();
                read_loop ()
              | exception Unix.Unix_error (EINTR, _, _) -> read_loop ()
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                Error "timed out waiting for replies"
              | exception Unix.Unix_error (e, _, _) ->
                Error (Printf.sprintf "recv: %s" (Unix.error_message e))
            in
            (match read_loop () with
            | Error _ as e -> e
            | Ok () ->
              handle_line (Buffer.contents buf);
              (match !bad with
              | Some e -> Error (Printf.sprintf "bad reply line: %s" e)
              | None -> Ok (List.rev !replies)))))
