(** Stream transports for the batch service and the gateway fleet.

    One address grammar is shared by [csched serve], [csched submit],
    and [csched gateway]:

    {v
      host:port      TCP (e.g. 127.0.0.1:7100, :7100 = all interfaces)
      anything else  Unix-domain socket path (e.g. /tmp/csched.sock)
    v}

    TCP listeners set [SO_REUSEADDR] so a restarted shard can rebind
    immediately; TCP streams set [TCP_NODELAY] so one-line requests and
    replies are not Nagle-delayed — the protocol is strictly
    line-per-message and latency-bound, never throughput-bound. *)

type addr =
  | Unix_path of string
  | Tcp of { host : string; port : int }

val parse : string -> (addr, string) result
(** [host:port] (port in 0..65535; empty host means all interfaces for
    listeners and loopback for connectors) is TCP, anything else is a
    Unix socket path. The empty string is an error. *)

val parse_exn : string -> addr
(** Like {!parse} but raises [Invalid_argument]. *)

val to_string : addr -> string
(** Round-trips through {!parse}. *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bind and listen. An existing Unix socket file is replaced; TCP
    sockets get [SO_REUSEADDR]. Raises [Unix.Unix_error] when the
    address is unusable. *)

val bound_addr : Unix.file_descr -> addr -> addr
(** The concrete address of a listening socket: resolves TCP port 0 to
    the kernel-assigned port so tests and benches can listen on an
    ephemeral port and learn where to connect. *)

val connect : addr -> Unix.file_descr
(** Connect a stream socket ([TCP_NODELAY] on TCP). Raises
    [Unix.Unix_error] when the peer is unreachable — a dead shard fails
    fast instead of hanging. *)

val accepted : addr -> Unix.file_descr -> unit
(** Per-connection socket options for a freshly accepted fd
    ([TCP_NODELAY] on TCP listeners; no-op on Unix sockets). *)

val cleanup : addr -> unit
(** Remove a Unix socket file after the listener is closed; no-op for
    TCP. Never raises. *)
