type request = {
  id : string;
  bench : string;
  machine : string;
  scheduler : string;
  scale : int;
  deadline_ms : float option;
  passes : string option;
  seed : int option;
  idem_key : string option;
  trace_id : string option;
  parent_span : string option;
  tenant : string option;
  job_class : string option;  (* wire field "class": interactive | batch *)
}

let request ?(id = "") ?(machine = "raw16") ?(scheduler = "convergent") ?(scale = 1)
    ?deadline_ms ?passes ?seed ?idem_key ?trace_id ?parent_span ?tenant
    ?job_class bench =
  { id; bench; machine; scheduler; scale; deadline_ms; passes; seed; idem_key;
    trace_id; parent_span; tenant; job_class }

let with_trace ~(ctx : Cs_obs.Tracectx.t) r =
  { r with trace_id = Some ctx.trace_id; parent_span = Some ctx.span_id }

let trace_of_request r =
  match r.trace_id with
  | None -> None
  | Some trace_id -> Some (Cs_obs.Tracectx.make ~trace_id ?parent_span:r.parent_span ())

type verdict =
  | Scheduled of {
      cycles : int;
      transfers : int;
      rung : string;
      timed_out : bool;
      quarantined : int;
    }
  | Refused of { kind : string; message : string }

type reply = {
  reply_id : string;
  elapsed_ms : float;
  verdict : verdict;
  queue_depth : int option;
  cached : bool;
}

let reply ?queue_depth ?(cached = false) ~id ~elapsed_ms verdict =
  { reply_id = id; elapsed_ms; verdict; queue_depth; cached }

let refused ?(elapsed_ms = 0.0) ~id error =
  { reply_id = id; elapsed_ms;
    verdict =
      Refused
        { kind = Cs_resil.Error.kind error; message = Cs_resil.Error.message error };
    queue_depth = None; cached = false }

(* --- machine names (mirrors the csched CLI grammar) ---------------- *)

let machine_of_name s =
  match String.lowercase_ascii s with
  | "vliw" | "vliw4" -> Ok (Cs_machine.Vliw.create ~n_clusters:4 ())
  | "vliw1" -> Ok (Cs_machine.Vliw.single_cluster ())
  | other ->
    let parse_int prefix =
      let plen = String.length prefix in
      if String.length other > plen && String.sub other 0 plen = prefix then
        int_of_string_opt (String.sub other plen (String.length other - plen))
      else None
    in
    (match (parse_int "raw", parse_int "vliw") with
    | Some n, _ when n > 0 -> Ok (Cs_machine.Raw.with_tiles n)
    | _, Some n when n > 0 -> Ok (Cs_machine.Vliw.create ~n_clusters:n ())
    | _ -> Error (Printf.sprintf "unknown machine %S (try raw16, raw4, vliw4)" s))

(* --- JSON line codec ----------------------------------------------- *)

let opt field v = match v with None -> [] | Some x -> [ (field, x) ]

let request_to_json r =
  let open Cs_obs.Json in
  Obj
    ([ ("id", Str r.id);
       ("bench", Str r.bench);
       ("machine", Str r.machine);
       ("scheduler", Str r.scheduler);
       ("scale", Num (float_of_int r.scale)) ]
    @ opt "deadline_ms" (Option.map (fun d -> Num d) r.deadline_ms)
    @ opt "passes" (Option.map (fun p -> Str p) r.passes)
    @ opt "seed" (Option.map (fun s -> Num (float_of_int s)) r.seed)
    @ opt "idem_key" (Option.map (fun k -> Str k) r.idem_key)
    @ opt "trace_id" (Option.map (fun t -> Str t) r.trace_id)
    @ opt "parent_span" (Option.map (fun p -> Str p) r.parent_span)
    @ opt "tenant" (Option.map (fun t -> Str t) r.tenant)
    @ opt "class" (Option.map (fun c -> Str c) r.job_class))

let str_member ?default key json =
  match (Cs_obs.Json.member key json, default) with
  | Some (Cs_obs.Json.Str s), _ -> Ok s
  | None, Some d -> Ok d
  | _ -> Error (Printf.sprintf "missing string field %S" key)

let num_member key json =
  match Cs_obs.Json.member key json with
  | Some (Cs_obs.Json.Num n) -> Some n
  | _ -> None

let ( let* ) = Result.bind

let request_of_json json =
  let* bench = str_member "bench" json in
  let* id = str_member ~default:"" "id" json in
  let* machine = str_member ~default:"raw16" "machine" json in
  let* scheduler = str_member ~default:"convergent" "scheduler" json in
  let scale =
    match num_member "scale" json with Some n -> max 1 (int_of_float n) | None -> 1
  in
  let deadline_ms = num_member "deadline_ms" json in
  let passes =
    match Cs_obs.Json.member "passes" json with
    | Some (Cs_obs.Json.Str p) -> Some p
    | _ -> None
  in
  let seed = Option.map int_of_float (num_member "seed" json) in
  let opt_str k =
    match Cs_obs.Json.member k json with
    | Some (Cs_obs.Json.Str s) -> Some s
    | _ -> None
  in
  Ok
    { id; bench; machine; scheduler; scale; deadline_ms; passes; seed;
      idem_key = opt_str "idem_key";
      trace_id = opt_str "trace_id"; parent_span = opt_str "parent_span";
      tenant = opt_str "tenant"; job_class = opt_str "class" }

let reply_to_json r =
  let open Cs_obs.Json in
  let verdict_fields =
    match r.verdict with
    | Scheduled s ->
      [ ("status", Str "ok");
        ("cycles", Num (float_of_int s.cycles));
        ("transfers", Num (float_of_int s.transfers));
        ("rung", Str s.rung);
        ("timed_out", Bool s.timed_out);
        ("quarantined", Num (float_of_int s.quarantined)) ]
    | Refused e -> [ ("status", Str "refused"); ("kind", Str e.kind); ("message", Str e.message) ]
  in
  Obj
    ([ ("id", Str r.reply_id); ("elapsed_ms", Num r.elapsed_ms) ]
    @ opt "queue_depth"
        (Option.map (fun d -> Num (float_of_int d)) r.queue_depth)
    @ (if r.cached then [ ("cached", Bool true) ] else [])
    @ verdict_fields)

let reply_of_json json =
  let* reply_id = str_member ~default:"" "id" json in
  let elapsed_ms = Option.value ~default:0.0 (num_member "elapsed_ms" json) in
  let* status = str_member "status" json in
  let* verdict =
    match status with
    | "ok" ->
      let get k =
        match num_member k json with Some n -> int_of_float n | None -> 0
      in
      let timed_out =
        match Cs_obs.Json.member "timed_out" json with
        | Some (Cs_obs.Json.Bool b) -> b
        | _ -> false
      in
      let* rung = str_member ~default:"requested" "rung" json in
      Ok
        (Scheduled
           { cycles = get "cycles"; transfers = get "transfers"; rung; timed_out;
             quarantined = get "quarantined" })
    | "refused" ->
      let* kind = str_member ~default:"invalid-input" "kind" json in
      let* message = str_member ~default:"" "message" json in
      Ok (Refused { kind; message })
    | other -> Error (Printf.sprintf "unknown reply status %S" other)
  in
  let queue_depth = Option.map int_of_float (num_member "queue_depth" json) in
  let cached =
    match Cs_obs.Json.member "cached" json with
    | Some (Cs_obs.Json.Bool b) -> b
    | _ -> false
  in
  Ok { reply_id; elapsed_ms; verdict; queue_depth; cached }

(* --- control verbs (ping / stats / metrics) ------------------------ *)

type metrics_format = Metrics_json | Metrics_prometheus

type control = Ping | Stats_query | Metrics_query of metrics_format

(* Push heartbeat: a shard announces itself and its load vector to the
   gateway on a persistent connection. Fire-and-forget — no reply line,
   so an idle fleet costs one small line per shard per period. *)
type heartbeat = {
  hb_shard : string;  (* the address the gateway knows the shard by *)
  hb_depth : int;
  hb_busy : int;
  hb_workers : int;
  hb_completed : int;
}

type incoming =
  | Job_request of request
  | Control of { op : control; id : string }
  | Heartbeat of heartbeat

let control_line ~op ?(id = "") () =
  Cs_obs.Json.to_string
    (Cs_obs.Json.Obj [ ("op", Cs_obs.Json.Str op); ("id", Cs_obs.Json.Str id) ])

let ping_line = control_line ~op:"ping"
let stats_line = control_line ~op:"stats"

let heartbeat_line hb =
  Cs_obs.Json.to_string
    (Cs_obs.Json.Obj
       [ ("op", Cs_obs.Json.Str "heartbeat");
         ("shard", Cs_obs.Json.Str hb.hb_shard);
         ("queue_depth", Cs_obs.Json.Num (float_of_int hb.hb_depth));
         ("busy", Cs_obs.Json.Num (float_of_int hb.hb_busy));
         ("workers", Cs_obs.Json.Num (float_of_int hb.hb_workers));
         ("completed", Cs_obs.Json.Num (float_of_int hb.hb_completed)) ])

let metrics_line ?(format = Metrics_json) ?(id = "") () =
  Cs_obs.Json.to_string
    (Cs_obs.Json.Obj
       [ ("op", Cs_obs.Json.Str "metrics");
         ( "format",
           Cs_obs.Json.Str
             (match format with
             | Metrics_json -> "json"
             | Metrics_prometheus -> "prometheus") );
         ("id", Cs_obs.Json.Str id) ])

let incoming_of_json json =
  match Cs_obs.Json.member "op" json with
  | Some (Cs_obs.Json.Str op) ->
    let* id = str_member ~default:"" "id" json in
    (match op with
    | "ping" -> Ok (Control { op = Ping; id })
    | "stats" -> Ok (Control { op = Stats_query; id })
    | "metrics" ->
      let* format =
        match Cs_obs.Json.member "format" json with
        | Some (Cs_obs.Json.Str "prometheus") -> Ok Metrics_prometheus
        | Some (Cs_obs.Json.Str "json") | None -> Ok Metrics_json
        | _ -> Error "metrics format must be \"json\" or \"prometheus\""
      in
      Ok (Control { op = Metrics_query format; id })
    | "heartbeat" ->
      let* hb_shard = str_member "shard" json in
      let get k =
        match num_member k json with Some n -> int_of_float n | None -> 0
      in
      Ok
        (Heartbeat
           { hb_shard; hb_depth = get "queue_depth"; hb_busy = get "busy";
             hb_workers = get "workers"; hb_completed = get "completed" })
    | other -> Error (Printf.sprintf "unknown op %S" other))
  | Some _ -> Error "op must be a string"
  | None -> Result.map (fun r -> Job_request r) (request_of_json json)

(* A metrics answer line: either the mergeable JSON snapshot or the
   rendered Prometheus text (as one JSON string field), so both ride
   the same one-line-per-reply framing as everything else. *)
type metrics_payload =
  | Snapshot of Cs_obs.Metrics.snapshot
  | Prom_text of string

let metrics_reply_to_line ~id payload =
  let open Cs_obs.Json in
  let fields =
    match payload with
    | Snapshot snap ->
      [ ("format", Str "json");
        ("snapshot", Cs_obs.Metrics.snapshot_to_json snap) ]
    | Prom_text text -> [ ("format", Str "prometheus"); ("text", Str text) ]
  in
  to_string (Obj ([ ("id", Str id); ("status", Str "metrics") ] @ fields))

let metrics_reply_of_json json =
  let* status = str_member "status" json in
  if status <> "metrics" then
    Error (Printf.sprintf "expected a metrics reply, got status %S" status)
  else
    let* id = str_member ~default:"" "id" json in
    let* format = str_member ~default:"json" "format" json in
    match format with
    | "json" ->
      (match Cs_obs.Json.member "snapshot" json with
      | Some snap_json ->
        let* snap = Cs_obs.Metrics.snapshot_of_json snap_json in
        Ok (id, Snapshot snap)
      | None -> Error "metrics reply missing snapshot")
    | "prometheus" ->
      let* text = str_member ~default:"" "text" json in
      Ok (id, Prom_text text)
    | other -> Error (Printf.sprintf "unknown metrics format %S" other)

type server_stats = {
  queue_depth : int;
  workers : int;
  busy : int;
  admitted : int;
  completed : int;
  shed : int;
  refusals : int;
  extra : (string * float) list;
      (** layer-specific series, e.g. the gateway's cache counters;
          round-trip verbatim so consumers can evolve independently *)
}

let stats_known_keys =
  [ "queue_depth"; "workers"; "busy"; "admitted"; "completed"; "shed"; "refusals" ]

let pong_to_json ~id s =
  let open Cs_obs.Json in
  Obj
    ([ ("id", Str id); ("status", Str "pong");
       ("queue_depth", Num (float_of_int s.queue_depth));
       ("workers", Num (float_of_int s.workers));
       ("busy", Num (float_of_int s.busy));
       ("admitted", Num (float_of_int s.admitted));
       ("completed", Num (float_of_int s.completed));
       ("shed", Num (float_of_int s.shed));
       ("refusals", Num (float_of_int s.refusals)) ]
    @ List.map (fun (k, v) -> (k, Num v)) s.extra)

let pong_of_json json =
  let* status = str_member "status" json in
  if status <> "pong" then Error (Printf.sprintf "expected a pong, got status %S" status)
  else
    let* id = str_member ~default:"" "id" json in
    let get k = match num_member k json with Some n -> int_of_float n | None -> 0 in
    let extra =
      match json with
      | Cs_obs.Json.Obj fields ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Cs_obs.Json.Num n
              when (not (List.mem k stats_known_keys)) && k <> "id" ->
              Some (k, n)
            | _ -> None)
          fields
      | _ -> []
    in
    Ok
      ( id,
        { queue_depth = get "queue_depth"; workers = get "workers"; busy = get "busy";
          admitted = get "admitted"; completed = get "completed"; shed = get "shed";
          refusals = get "refusals"; extra } )

let line_of to_json v = Cs_obs.Json.to_string (to_json v)

let of_line of_json line =
  match Cs_obs.Json.of_string line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok json -> of_json json

let request_to_line = line_of request_to_json
let request_of_line = of_line request_of_json
let reply_to_line = line_of reply_to_json
let reply_of_line = of_line reply_of_json
let incoming_of_line = of_line incoming_of_json
let pong_to_line ~id s = Cs_obs.Json.to_string (pong_to_json ~id s)
let pong_of_line = of_line pong_of_json
let metrics_reply_of_line = of_line metrics_reply_of_json
