type t = {
  name : string;
  n_clusters : int;
  fus : Fu.kind array array;
  topology : Topology.t;
  latency : Cs_ddg.Opcode.t -> int;
  remote_mem_penalty : int;
}

let make ~name ~fus ~topology ?(latency = Latency.r4000) ?(remote_mem_penalty = 0) () =
  let n_clusters = Array.length fus in
  if n_clusters = 0 then invalid_arg "Machine.make: no clusters";
  (match topology with
  | Topology.Mesh { rows; cols; _ } ->
    if rows * cols <> n_clusters then
      invalid_arg "Machine.make: mesh size disagrees with cluster count"
  | Topology.Crossbar _ -> ());
  { name; n_clusters; fus; topology; latency; remote_mem_penalty }

let n_clusters t = t.n_clusters
let issue_width t = Array.length t.fus.(0)

let latency_of t ins = t.latency ins.Cs_ddg.Instr.op

let fus_for t ~cluster op =
  let cls = Cs_ddg.Opcode.cls op in
  let units = t.fus.(cluster) in
  let acc = ref [] in
  for u = Array.length units - 1 downto 0 do
    if Fu.can_execute units.(u) cls then acc := u :: !acc
  done;
  !acc

let can_execute t ~cluster op = fus_for t ~cluster op <> []

let comm_latency t ~src ~dst = Topology.comm_latency t.topology ~src ~dst
let hops t a b = Topology.hops t.topology a b

let is_mesh t =
  match t.topology with Topology.Mesh _ -> true | Topology.Crossbar _ -> false

let is_cluster_alive t c =
  c >= 0 && c < t.n_clusters && Array.exists (fun u -> not (Fu.is_dead u)) t.fus.(c)

let is_degraded t =
  Topology.is_degraded t.topology
  || Array.exists (fun units -> Array.exists Fu.is_dead units) t.fus

let degrade t plan =
  if Cs_resil.Fault.is_empty plan then t
  else begin
    let fus = Array.map Array.copy t.fus in
    let check_cluster what c =
      if c < 0 || c >= t.n_clusters then
        Cs_resil.Error.invalid_input
          (Printf.sprintf "fault plan: %s %d out of range (machine has %d clusters)"
             what c t.n_clusters)
    in
    let dead_tiles = ref [] in
    let dead_links = ref [] in
    let slow_links = ref [] in
    List.iter
      (fun f ->
        match (f : Cs_resil.Fault.fault) with
        | Dead_tile c ->
          check_cluster "tile" c;
          dead_tiles := c :: !dead_tiles;
          fus.(c) <- Array.map Fu.kill fus.(c)
        | Dead_fu { cluster; fu } ->
          check_cluster "fu cluster" cluster;
          if fu < 0 || fu >= Array.length fus.(cluster) then
            Cs_resil.Error.invalid_input
              (Printf.sprintf "fault plan: fu %d:%d out of range (cluster has %d units)"
                 cluster fu
                 (Array.length fus.(cluster)));
          fus.(cluster).(fu) <- Fu.kill fus.(cluster).(fu)
        | Dead_link (a, b) ->
          if not (is_mesh t) then
            Cs_resil.Error.invalid_input
              (Printf.sprintf "fault plan: link=%d-%d needs a mesh topology" a b);
          dead_links := (a, b) :: !dead_links
        | Slow_link { a; b; factor } ->
          if not (is_mesh t) then
            Cs_resil.Error.invalid_input
              (Printf.sprintf "fault plan: slow-link=%d-%d needs a mesh topology" a b);
          slow_links := ((a, b), factor) :: !slow_links)
      plan;
    if not (Array.exists (fun units -> Array.exists (fun u -> not (Fu.is_dead u)) units) fus)
    then Cs_resil.Error.invalid_input "fault plan kills every cluster";
    let topology =
      match t.topology with
      | Topology.Crossbar _ as cb -> cb
      | Topology.Mesh m -> (
        match
          Topology.mesh ~rows:m.rows ~cols:m.cols ~base_latency:m.base_latency
            ~per_hop:m.per_hop
            ~dead_nodes:(m.dead_nodes @ !dead_tiles)
            ~dead_links:(m.dead_links @ !dead_links)
            ~slow_links:(m.slow_links @ !slow_links)
            ()
        with
        | topo -> topo
        | exception Invalid_argument msg -> Cs_resil.Error.invalid_input msg)
    in
    {
      t with
      name = Printf.sprintf "%s!%s" t.name (Cs_resil.Fault.to_string plan);
      fus;
      topology;
    }
  end

let validate_region t region =
  let graph = region.Cs_ddg.Region.graph in
  let problems = ref [] in
  Array.iter
    (fun ins ->
      (match ins.Cs_ddg.Instr.preplace with
      | Some c when c < 0 || c >= t.n_clusters ->
        problems :=
          Printf.sprintf "instr %d preplaced on cluster %d (machine has %d)"
            ins.Cs_ddg.Instr.id c t.n_clusters
          :: !problems
      | Some c
        when (not (can_execute t ~cluster:c ins.Cs_ddg.Instr.op))
             && not
                  (Cs_ddg.Opcode.is_memory ins.Cs_ddg.Instr.op
                  && t.remote_mem_penalty > 0) ->
        (* A dead home cluster is tolerable for memory ops on machines
           with remote memory access; anything else is stuck. *)
        problems :=
          Printf.sprintf
            "instr %d preplaced on cluster %d which cannot execute %s"
            ins.Cs_ddg.Instr.id c
            (Cs_ddg.Opcode.to_string ins.Cs_ddg.Instr.op)
          :: !problems
      | Some _ | None -> ());
      let executable =
        let rec any c = c < t.n_clusters && (can_execute t ~cluster:c ins.Cs_ddg.Instr.op || any (c + 1)) in
        any 0
      in
      if not executable then
        problems :=
          Printf.sprintf "opcode %s of instr %d not executable anywhere"
            (Cs_ddg.Opcode.to_string ins.Cs_ddg.Instr.op)
            ins.Cs_ddg.Instr.id
          :: !problems)
    (Cs_ddg.Graph.instrs graph);
  Cs_ddg.Reg.Map.iter
    (fun r c ->
      if c < 0 || c >= t.n_clusters then
        problems :=
          Printf.sprintf "live-in %s homed on cluster %d (machine has %d)"
            (Cs_ddg.Reg.to_string r) c t.n_clusters
          :: !problems)
    region.Cs_ddg.Region.live_in_homes;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let pp fmt t =
  Format.fprintf fmt "%s: %d clusters x %d FUs, %a" t.name t.n_clusters (issue_width t)
    Topology.pp t.topology
