type t =
  | Mesh of {
      rows : int;
      cols : int;
      base_latency : int;
      per_hop : int;
      dead_nodes : int list;
      dead_links : (int * int) list;
      slow_links : ((int * int) * int) list;
    }
  | Crossbar of { latency : int }

type link = { from_node : int; to_node : int }

let norm a b = if a <= b then (a, b) else (b, a)

let mesh ~rows ~cols ?(base_latency = 3) ?(per_hop = 1) ?(dead_nodes = [])
    ?(dead_links = []) ?(slow_links = []) () =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.mesh: empty mesh";
  let n = rows * cols in
  let adjacent (a, b) =
    a >= 0 && b < n
    && ((b - a = cols) || (b - a = 1 && b mod cols <> 0))
  in
  let check_link what (a, b) =
    if not (adjacent (norm a b)) then
      invalid_arg
        (Printf.sprintf "Topology.mesh: %s %d-%d is not a mesh edge" what a b)
  in
  List.iter
    (fun d ->
      if d < 0 || d >= n then
        invalid_arg (Printf.sprintf "Topology.mesh: dead node %d out of range" d))
    dead_nodes;
  List.iter (check_link "dead link") dead_links;
  List.iter
    (fun (l, f) ->
      check_link "slow link" l;
      if f < 2 then
        invalid_arg (Printf.sprintf "Topology.mesh: slow factor %d < 2" f))
    slow_links;
  let dead_nodes = List.sort_uniq compare dead_nodes in
  let dead_links =
    List.sort_uniq compare (List.map (fun (a, b) -> norm a b) dead_links)
  in
  let slow_links =
    List.filter
      (fun (l, _) -> not (List.mem l dead_links))
      (List.sort_uniq compare
         (List.map (fun ((a, b), f) -> (norm a b, f)) slow_links))
  in
  Mesh { rows; cols; base_latency; per_hop; dead_nodes; dead_links; slow_links }

let is_degraded = function
  | Mesh { dead_nodes; dead_links; slow_links; _ } ->
    dead_nodes <> [] || dead_links <> [] || slow_links <> []
  | Crossbar _ -> false

let n_nodes = function
  | Mesh { rows; cols; _ } -> rows * cols
  | Crossbar _ -> max_int (* unconstrained; the machine bounds clusters *)

let coords t id =
  match t with
  | Mesh { cols; _ } -> (id / cols, id mod cols)
  | Crossbar _ -> invalid_arg "Topology.coords: not a mesh"

(* Weight of traversing the (undirected) edge [a]-[b]; [None] if dead. *)
let edge_weight ~dead_links ~slow_links a b =
  let e = norm a b in
  if List.mem e dead_links then None
  else
    match List.assoc_opt e slow_links with
    | Some f -> Some f
    | None -> Some 1

(* Deterministic Dijkstra over the surviving grid. Returns the weight
   and the hop path of the min-weight route, ties broken toward the
   path found first when scanning nodes in increasing id and
   neighbours in a fixed order. *)
let shortest ~rows ~cols ~dead_nodes ~dead_links ~slow_links src dst =
  let n = rows * cols in
  let alive v = not (List.mem v dead_nodes) in
  if (not (alive src)) || not (alive dst) then None
  else if src = dst then Some (0, [])
  else begin
    let dist = Array.make n max_int in
    let prev = Array.make n (-1) in
    let done_ = Array.make n false in
    dist.(src) <- 0;
    let neighbours v =
      let r = v / cols and c = v mod cols in
      List.filter_map
        (fun (dr, dc) ->
          let r' = r + dr and c' = c + dc in
          if r' >= 0 && r' < rows && c' >= 0 && c' < cols then
            Some ((r' * cols) + c')
          else None)
        [ (-1, 0); (0, -1); (0, 1); (1, 0) ]
    in
    let exception Done in
    (try
       for _ = 0 to n - 1 do
         (* pick the unfinished alive node with the smallest distance;
            ties go to the lowest id *)
         let u = ref (-1) in
         for v = n - 1 downto 0 do
           if (not done_.(v)) && alive v && dist.(v) < max_int
              && (!u = -1 || dist.(v) <= dist.(!u))
           then u := v
         done;
         if !u = -1 then raise Done;
         let u = !u in
         if u = dst then raise Done;
         done_.(u) <- true;
         List.iter
           (fun v ->
             if (not done_.(v)) && alive v then
               match edge_weight ~dead_links ~slow_links u v with
               | None -> ()
               | Some w ->
                 if dist.(u) + w < dist.(v) then begin
                   dist.(v) <- dist.(u) + w;
                   prev.(v) <- u
                 end)
           (neighbours u)
       done
     with Done -> ());
    if dist.(dst) = max_int then None
    else begin
      let path = ref [] in
      let cur = ref dst in
      while !cur <> src do
        let p = prev.(!cur) in
        path := { from_node = p; to_node = !cur } :: !path;
        cur := p
      done;
      Some (dist.(dst), !path)
    end
  end

let shortest_of t src dst =
  match t with
  | Crossbar _ -> invalid_arg "Topology.shortest: not a mesh"
  | Mesh { rows; cols; dead_nodes; dead_links; slow_links; _ } ->
    shortest ~rows ~cols ~dead_nodes ~dead_links ~slow_links src dst

let reachable t a b =
  match t with
  | Crossbar _ -> true
  | Mesh _ when not (is_degraded t) -> true
  | Mesh _ -> shortest_of t a b <> None

let hops t a b =
  if a = b then 0
  else
    match t with
    | Crossbar _ -> 1
    | Mesh { cols; _ } when not (is_degraded t) ->
      let ra = a / cols and ca = a mod cols in
      let rb = b / cols and cb = b mod cols in
      abs (ra - rb) + abs (ca - cb)
    | Mesh _ -> (
      match shortest_of t a b with
      | Some (_, path) -> List.length path
      | None -> Cs_resil.Error.unreachable ~src:a ~dst:b)

(* Total path weight: hop count with slow links counted [factor] times. *)
let path_weight t a b =
  if a = b then 0
  else
    match t with
    | Crossbar _ -> 1
    | Mesh _ when not (is_degraded t) -> hops t a b
    | Mesh _ -> (
      match shortest_of t a b with
      | Some (w, _) -> w
      | None -> Cs_resil.Error.unreachable ~src:a ~dst:b)

let comm_latency t ~src ~dst =
  if src = dst then 0
  else
    match t with
    | Crossbar { latency } -> latency
    | Mesh { base_latency; per_hop; _ } ->
      base_latency + (per_hop * (path_weight t src dst - 1))

let route t ~src ~dst =
  if src = dst then []
  else
    match t with
    | Crossbar _ -> []
    | Mesh { cols; _ } when not (is_degraded t) ->
      (* X (column) first, then Y (row). *)
      let acc = ref [] in
      let cur = ref src in
      let step next =
        acc := { from_node = !cur; to_node = next } :: !acc;
        cur := next
      in
      let target_col = dst mod cols and target_row = dst / cols in
      while !cur mod cols <> target_col do
        let col = !cur mod cols in
        let next_col = if col < target_col then col + 1 else col - 1 in
        step ((!cur / cols * cols) + next_col)
      done;
      while !cur / cols <> target_row do
        let row = !cur / cols in
        let next_row = if row < target_row then row + 1 else row - 1 in
        step ((next_row * cols) + (!cur mod cols))
      done;
      List.rev !acc
    | Mesh _ -> (
      match shortest_of t src dst with
      | Some (_, path) -> path
      | None -> Cs_resil.Error.unreachable ~src ~dst)

let pp fmt = function
  | Mesh { rows; cols; base_latency; per_hop; dead_nodes; dead_links; slow_links }
    ->
    Format.fprintf fmt "mesh %dx%d (lat %d + %d/hop)" rows cols base_latency
      per_hop;
    if dead_nodes <> [] then
      Format.fprintf fmt " dead-nodes[%s]"
        (String.concat "," (List.map string_of_int dead_nodes));
    if dead_links <> [] then
      Format.fprintf fmt " dead-links[%s]"
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) dead_links));
    if slow_links <> [] then
      Format.fprintf fmt " slow-links[%s]"
        (String.concat ","
           (List.map
              (fun ((a, b), f) -> Printf.sprintf "%d-%d:x%d" a b f)
              slow_links))
  | Crossbar { latency } -> Format.fprintf fmt "crossbar (lat %d)" latency
