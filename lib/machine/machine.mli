(** A complete spatial-machine description: clusters with functional
    units, an interconnect, a latency model, and a memory model. Both
    target machines of the paper (Raw, clustered VLIW) and their
    single-cluster baselines are instances. *)

type t = {
  name : string;
  n_clusters : int;
  fus : Fu.kind array array; (** functional units of each cluster *)
  topology : Topology.t;
  latency : Cs_ddg.Opcode.t -> int;
  remote_mem_penalty : int;
  (** extra cycles when a memory op's home bank is a different cluster
      (clustered VLIW interleaved memory, paper Sec. 5) *)
}

val make :
  name:string -> fus:Fu.kind array array -> topology:Topology.t ->
  ?latency:(Cs_ddg.Opcode.t -> int) -> ?remote_mem_penalty:int -> unit -> t
(** Default latency model is {!Latency.r4000}; default penalty 0.
    Raises [Invalid_argument] if a mesh topology size disagrees with the
    number of clusters. *)

val n_clusters : t -> int
val issue_width : t -> int
(** Functional units per cluster (uniform machines only; all ours are). *)

val latency_of : t -> Cs_ddg.Instr.t -> int

val can_execute : t -> cluster:int -> Cs_ddg.Opcode.t -> bool
(** Some functional unit of [cluster] accepts the opcode. *)

val fus_for : t -> cluster:int -> Cs_ddg.Opcode.t -> int list
(** Indices (within the cluster) of units that accept the opcode. *)

val comm_latency : t -> src:int -> dst:int -> int
val hops : t -> int -> int -> int
val is_mesh : t -> bool

val degrade : t -> Cs_resil.Fault.plan -> t
(** [degrade t plan] applies a fault plan: dead tiles lose all their
    functional units (wrapped in {!Fu.Dead}) and, on a mesh, their
    routing node; dead FUs are masked individually; dead/slow links
    reshape mesh routing (see {!Topology}). Array shapes and
    [n_clusters] are preserved so cluster ids stay stable. The name is
    suffixed with ["!<plan>"]. Degrading an already-degraded machine
    composes. Raises [Cs_resil.Error.Error (Invalid_input _)] on plans
    that do not fit the machine (out-of-range ids, link faults on a
    crossbar, non-adjacent mesh links, or a plan killing every
    cluster). The empty plan returns [t] unchanged. *)

val is_degraded : t -> bool
(** Any dead FU or degraded topology. *)

val is_cluster_alive : t -> int -> bool
(** In-range and at least one surviving functional unit. *)

val validate_region : t -> Cs_ddg.Region.t -> (unit, string) result
(** Checks every preplacement and live-in home fits this machine and
    every opcode is executable somewhere. *)

val pp : Format.formatter -> t -> unit
