let create ?(rows = 4) ?(cols = 4) () =
  let n = rows * cols in
  Machine.make
    ~name:(Printf.sprintf "raw-%dx%d" rows cols)
    ~fus:(Array.make n [| Fu.Universal |])
    ~topology:(Topology.mesh ~rows ~cols ())
    ()

let with_tiles n =
  if n <= 0 then invalid_arg "Raw.with_tiles: need a positive tile count";
  (* Squarest factorization r * c = n with r <= c. *)
  let rec best r = if r < 1 then invalid_arg "Raw.with_tiles" else if n mod r = 0 then r else best (r - 1) in
  let r = best (int_of_float (sqrt (float_of_int n))) in
  create ~rows:r ~cols:(n / r) ()
