type kind =
  | Universal
  | Int_alu
  | Int_mem
  | Float_unit
  | Transfer_unit
  | Dead of kind

let rec base_kind = function Dead k -> base_kind k | k -> k
let is_dead = function Dead _ -> true | _ -> false
let kill k = if is_dead k then k else Dead k

let can_execute kind cls =
  match (kind, cls) with
  | Dead _, _ -> false
  | Universal, _ -> true
  | Int_alu, (Cs_ddg.Opcode.Int_op | Mul_op | Move_op) -> true
  | Int_alu, (Mem_op | Float_op | Fdiv_op | Comm_op) -> false
  | Int_mem, (Cs_ddg.Opcode.Int_op | Mem_op | Move_op) -> true
  | Int_mem, (Mul_op | Float_op | Fdiv_op | Comm_op) -> false
  | Float_unit, (Cs_ddg.Opcode.Float_op | Fdiv_op) -> true
  | Float_unit, (Int_op | Mul_op | Mem_op | Move_op | Comm_op) -> false
  | Transfer_unit, Cs_ddg.Opcode.Comm_op -> true
  | Transfer_unit, (Int_op | Mul_op | Mem_op | Float_op | Fdiv_op | Move_op) -> false

let rec to_string = function
  | Universal -> "universal"
  | Int_alu -> "int-alu"
  | Int_mem -> "int-mem"
  | Float_unit -> "fpu"
  | Transfer_unit -> "xfer"
  | Dead k -> "dead:" ^ to_string (base_kind k)

let pp fmt k = Format.pp_print_string fmt (to_string k)
