(** Interconnect models.

    [Mesh] is Raw's compiler-routed static network: register-mapped
    ports, three cycles of latency between neighboring tiles and one
    extra cycle per additional hop (paper Sec. 5). On a healthy mesh
    routes are dimension ordered (X then Y); a degraded mesh (dead
    nodes, dead links, slowed links from a fault plan) routes around
    the damage with deterministic shortest paths. Each hop occupies a
    directed link for one cycle, which the scheduler books in a
    reservation table.

    [Crossbar] is the clustered-VLIW copy network: any-to-any, fixed
    latency, bandwidth limited by each cluster's transfer unit rather
    than by links. *)

type t =
  | Mesh of {
      rows : int;
      cols : int;
      base_latency : int;
      per_hop : int;
      dead_nodes : int list;  (** sorted; these tiles route nothing *)
      dead_links : (int * int) list;  (** normalised [lo, hi], adjacent *)
      slow_links : ((int * int) * int) list;
          (** normalised link -> factor >= 2 multiplying per-hop cost *)
    }
  | Crossbar of { latency : int }

val mesh :
  rows:int ->
  cols:int ->
  ?base_latency:int ->
  ?per_hop:int ->
  ?dead_nodes:int list ->
  ?dead_links:(int * int) list ->
  ?slow_links:((int * int) * int) list ->
  unit ->
  t
(** Smart constructor: validates ranges and adjacency, normalises link
    endpoints, sorts and dedups. Defaults: [base_latency 3], [per_hop 1]
    (Raw's static network), no damage. Raises [Invalid_argument] on
    out-of-range nodes, non-adjacent links, or slow factors < 2. *)

val is_degraded : t -> bool
(** A mesh with any dead node, dead link, or slow link. *)

val n_nodes : t -> int

val coords : t -> int -> int * int
(** Mesh only: [row, col] of a node id. *)

val reachable : t -> int -> int -> bool
(** Whether any route survives between two nodes. Always [true] on a
    crossbar or healthy mesh. *)

val hops : t -> int -> int -> int
(** Number of network hops between two nodes (0 when equal; 1 for any
    distinct pair on a crossbar; Manhattan distance on a healthy mesh;
    length of the surviving shortest path on a degraded mesh). Raises
    [Cs_resil.Error.Error (Unreachable _)] when no route survives. *)

val comm_latency : t -> src:int -> dst:int -> int
(** End-to-end latency of moving a register value; 0 when [src = dst].
    On a degraded mesh this is [base + per_hop * (weight - 1)] where
    [weight] counts each slow link [factor] times. Raises
    [Cs_resil.Error.Error (Unreachable _)] when no route survives. *)

type link = { from_node : int; to_node : int }
(** A directed mesh link between adjacent tiles. *)

val route : t -> src:int -> dst:int -> link list
(** Route as a list of directed links; empty when [src = dst] or on a
    crossbar. Dimension-ordered (X then Y) on a healthy mesh;
    deterministic min-weight path avoiding dead nodes/links on a
    degraded one. Raises [Cs_resil.Error.Error (Unreachable _)] when no
    route survives. *)

val pp : Format.formatter -> t -> unit
