(** Functional-unit kinds.

    Raw tiles have a single in-order pipeline that executes everything
    ([Universal]). The Chorus-style clustered VLIW has four units per
    cluster (paper Sec. 5): one integer ALU, one integer ALU that can
    also issue memory operations, one floating-point unit, and one
    transfer unit that copies registers between clusters. *)

type kind =
  | Universal
  | Int_alu
  | Int_mem
  | Float_unit
  | Transfer_unit
  | Dead of kind
      (** A unit killed by a fault plan. Remembers what it used to be so
          consumers can distinguish, e.g., a cluster whose transfer unit
          died (sends impossible) from a Raw tile that never had one
          (sends free). Executes nothing. *)

val base_kind : kind -> kind
(** Strip any [Dead] wrapper. *)

val is_dead : kind -> bool

val kill : kind -> kind
(** Wrap in [Dead] (idempotent). *)

val can_execute : kind -> Cs_ddg.Opcode.cls -> bool
val to_string : kind -> string
val pp : Format.formatter -> kind -> unit
