type point = {
  n_instrs : int;
  seconds : float;
}

let raw_schedule ~scheduler ~machine region =
  (* Unvalidated on purpose: we time the scheduler, not the checker. *)
  match scheduler with
  | Pipeline.Convergent ->
    let passes = Pipeline.default_passes ~machine in
    let result = Cs_core.Driver.run ~machine region passes in
    let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
    let priority = Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot in
    ignore
      (Cs_sched.List_scheduler.run ~machine
         ~assignment:result.Cs_core.Driver.assignment ~priority ~analysis region)
  | Pipeline.Rawcc -> ignore (Cs_baselines.Rawcc.schedule ~machine region)
  | Pipeline.Uas -> ignore (Cs_baselines.Uas.schedule ~machine region)
  | Pipeline.Pcc -> ignore (Cs_baselines.Pcc.schedule ~machine region)
  | Pipeline.Bug -> ignore (Cs_baselines.Bug.schedule ~machine region)
  | Pipeline.Anneal -> ignore (Cs_baselines.Anneal.schedule ~machine region)

(* Monotonic wall clock, not [Sys.time]: CPU time accumulates across
   all domains (so it overcounts under the Domain-parallel tuner) and
   undercounts any wait time in a sweep. *)
let time_scheduler ~scheduler ~machine region =
  let t0 = Cs_obs.Clock.now () in
  raw_schedule ~scheduler ~machine region;
  Cs_obs.Clock.since t0

let default_sizes = [ 50; 100; 200; 400; 800; 1200; 1600; 2000 ]

let sweep ?(sizes = default_sizes) ?(seed = 11) ~scheduler ~machine () =
  let congruence =
    Cs_workloads.Congruence.interleaved
      ~n_banks:(Cs_machine.Machine.n_clusters machine)
  in
  List.map
    (fun n ->
      let region = Cs_workloads.Shapes.layered ~n ~congruence ~seed:(seed + n) () in
      let seconds = time_scheduler ~scheduler ~machine region in
      { n_instrs = Cs_ddg.Region.n_instrs region; seconds })
    sizes
