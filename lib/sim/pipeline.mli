(** End-to-end scheduling pipelines: region in, validated schedule out.
    One entry point per scheduler compared in the paper's evaluation.

    Every schedule returned by this module has passed
    {!Cs_sched.Validator}, so experiment cycle counts are legality-
    checked, not trusted. *)

type scheduler =
  | Convergent (** the paper's contribution, with the machine's default sequence *)
  | Rawcc (** the Rawcc-style three-phase baseline (Table 2 "Base") *)
  | Uas (** unified assign-and-schedule (Fig. 8) *)
  | Pcc (** partial component clustering (Fig. 8) *)
  | Bug (** the Bulldog assigner (extra baseline) *)
  | Anneal (** Leupers-style simulated annealing (extra baseline) *)

val all_schedulers : scheduler list
val scheduler_name : scheduler -> string
val scheduler_of_name : string -> scheduler option

val schedule :
  ?seed:int -> scheduler:scheduler -> machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t -> Cs_sched.Schedule.t
(** Runs the chosen pipeline and validates the result. For [Convergent],
    the pass sequence is the machine's default (Table 1) and — mirroring
    Sec. 5 — the list-scheduling priority is the convergent temporal
    preference on clustered VLIWs but the native ALAP priority on Raw
    meshes (Rawcc "computes temporal assignments independently"). *)

val convergent :
  ?seed:int -> ?passes:Cs_core.Pass.t list -> machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t -> Cs_sched.Schedule.t * Cs_core.Trace.t
(** Convergent pipeline that also returns the convergence trace
    (Figs. 7/9) and accepts a custom pass sequence (ablations). *)

val schedule_raw :
  ?seed:int -> ?passes:Cs_core.Pass.t list -> scheduler:scheduler ->
  machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_sched.Schedule.t
(** Like {!schedule}, but the result is returned {e without} passing
    through {!Cs_sched.Validator} (and without emitting simulator
    counters). This is the entry point for the differential-fuzzing
    oracle in [lib/check], which must observe illegal schedules rather
    than die on the pipeline's internal [check_exn]; everything else
    should use {!schedule}. [passes] is only meaningful for
    [Convergent]. *)

val default_passes : machine:Cs_machine.Machine.t -> Cs_core.Pass.t list
