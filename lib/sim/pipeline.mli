(** End-to-end scheduling pipelines: region in, validated schedule out.
    One entry point per scheduler compared in the paper's evaluation.

    Every schedule returned by this module has passed
    {!Cs_sched.Validator}, so experiment cycle counts are legality-
    checked, not trusted. *)

type scheduler =
  | Convergent (** the paper's contribution, with the machine's default sequence *)
  | Rawcc (** the Rawcc-style three-phase baseline (Table 2 "Base") *)
  | Uas (** unified assign-and-schedule (Fig. 8) *)
  | Pcc (** partial component clustering (Fig. 8) *)
  | Bug (** the Bulldog assigner (extra baseline) *)
  | Anneal (** Leupers-style simulated annealing (extra baseline) *)

val all_schedulers : scheduler list
val scheduler_name : scheduler -> string
val scheduler_of_name : string -> scheduler option

val schedule :
  ?seed:int -> scheduler:scheduler -> machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t -> Cs_sched.Schedule.t
(** Runs the chosen pipeline and validates the result. For [Convergent],
    the pass sequence is the machine's default (Table 1) and — mirroring
    Sec. 5 — the list-scheduling priority is the convergent temporal
    preference on clustered VLIWs but the native ALAP priority on Raw
    meshes (Rawcc "computes temporal assignments independently"). *)

val convergent :
  ?seed:int -> ?passes:Cs_core.Pass.t list -> machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t -> Cs_sched.Schedule.t * Cs_core.Trace.t
(** Convergent pipeline that also returns the convergence trace
    (Figs. 7/9) and accepts a custom pass sequence (ablations). *)

val schedule_raw :
  ?seed:int -> ?passes:Cs_core.Pass.t list -> scheduler:scheduler ->
  machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_sched.Schedule.t
(** Like {!schedule}, but the result is returned {e without} passing
    through {!Cs_sched.Validator} (and without emitting simulator
    counters). This is the entry point for the differential-fuzzing
    oracle in [lib/check], which must observe illegal schedules rather
    than die on the pipeline's internal [check_exn]; everything else
    should use {!schedule}. [passes] is only meaningful for
    [Convergent]. *)

val default_passes : machine:Cs_machine.Machine.t -> Cs_core.Pass.t list

val schedule_resilient :
  ?seed:int ->
  ?passes:Cs_core.Pass.t list ->
  ?deadline:float ->
  ?pass_budget_s:float ->
  ?scheduler:scheduler ->
  machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t ->
  (Cs_sched.Schedule.t * Cs_resil.Outcome.t, Cs_resil.Error.t) result
(** Graceful-degradation entry point: climbs a fallback chain until a
    rung produces a schedule that passes {!Cs_sched.Validator}:

    + the requested [scheduler] (default [Convergent]; [passes] applies
      to a convergent request);
    + the machine's default convergent sequence (skipped when that is
      exactly what rung 1 ran);
    + a single-cluster critical-path list schedule, trying each
      surviving cluster in order — no transfers, so it validates on any
      machine with one cluster able to execute every opcode.

    The returned {!Cs_resil.Outcome.t} names the winning rung, the
    classified error of every rung that failed before it, and any pass
    quarantines recorded while producing the winning schedule. All
    rungs failing returns the last error. Rung failures and fallbacks
    are emitted as [cat = "resil"] events when the {!Cs_obs.Obs} sink
    is enabled. Never raises on scheduler failures classifiable by
    {!Cs_resil.Error.of_exn}.

    [deadline] (absolute {!Cs_obs.Clock} time) and [pass_budget_s] are
    threaded into the convergent driver (see {!Cs_core.Driver.run}):
    the driver stops between passes on expiry and the best-so-far
    matrix is list-scheduled, so a convergent rung answers even under
    an expired deadline (the outcome records [timed_out]). Once the
    deadline has expired, no {e further} rung is started after a
    failure — the chain refuses with a typed
    [Cs_resil.Error.Deadline_exceeded] instead. The first rung always
    runs, so a request with an already-expired deadline still gets the
    anytime best-effort answer rather than an unconditional refusal. *)
