type scheduler = Convergent | Rawcc | Uas | Pcc | Bug | Anneal

let all_schedulers = [ Convergent; Rawcc; Uas; Pcc; Bug; Anneal ]

let scheduler_name = function
  | Convergent -> "convergent"
  | Rawcc -> "rawcc"
  | Uas -> "uas"
  | Pcc -> "pcc"
  | Bug -> "bug"
  | Anneal -> "anneal"

let scheduler_of_name name =
  match String.lowercase_ascii name with
  | "convergent" -> Some Convergent
  | "rawcc" -> Some Rawcc
  | "uas" -> Some Uas
  | "pcc" -> Some Pcc
  | "bug" -> Some Bug
  | "anneal" | "sa" -> Some Anneal
  | _ -> None

let default_passes ~machine =
  if Cs_machine.Machine.is_mesh machine then Cs_core.Sequence.raw_default ()
  else Cs_core.Sequence.vliw_default ()

let validated sched =
  Cs_sched.Validator.check_exn sched;
  sched

(* Simulator-level counters: the cycles and transfers the machine model
   charges a finished schedule. One event per scheduling run. *)
let emit_sim_counters ~scheduler sched =
  if Cs_obs.Obs.enabled () then
    Cs_obs.Obs.counter ~cat:"sim" ("sim:" ^ scheduler_name scheduler)
      [ ("cycles", float_of_int (Cs_sched.Schedule.makespan sched));
        ("transfers", float_of_int (Cs_sched.Schedule.n_comms sched));
        ("utilization", Cs_sched.Schedule.utilization sched) ]

let convergent_traced ?seed ?passes ~machine region =
  let passes = match passes with Some p -> p | None -> default_passes ~machine in
  let result = Cs_core.Driver.run ?seed ~machine region passes in
  let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
  let priority =
    if Cs_machine.Machine.is_mesh machine then Cs_sched.Priority.alap analysis
    else Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine
      ~assignment:result.Cs_core.Driver.assignment ~priority ~analysis region
  in
  (sched, result.Cs_core.Driver.trace)

let convergent ?seed ?passes ~machine region =
  let sched, trace = convergent_traced ?seed ?passes ~machine region in
  emit_sim_counters ~scheduler:Convergent sched;
  (validated sched, trace)

let schedule_raw ?seed ?passes ~scheduler ~machine region =
  match scheduler with
  | Convergent -> fst (convergent_traced ?seed ?passes ~machine region)
  | _ ->
    Cs_obs.Obs.span ~cat:"sim" ("schedule:" ^ scheduler_name scheduler) (fun () ->
        match scheduler with
        | Convergent -> assert false
        | Rawcc -> Cs_baselines.Rawcc.schedule ~machine region
        | Uas -> Cs_baselines.Uas.schedule ~machine region
        | Pcc -> Cs_baselines.Pcc.schedule ~machine region
        | Bug -> Cs_baselines.Bug.schedule ~machine region
        | Anneal -> Cs_baselines.Anneal.schedule ?seed ~machine region)

let schedule ?seed ~scheduler ~machine region =
  match scheduler with
  | Convergent -> fst (convergent ?seed ~machine region)
  | _ ->
    let sched = schedule_raw ?seed ~scheduler ~machine region in
    emit_sim_counters ~scheduler sched;
    validated sched
