type scheduler = Convergent | Rawcc | Uas | Pcc | Bug | Anneal

let all_schedulers = [ Convergent; Rawcc; Uas; Pcc; Bug; Anneal ]

let scheduler_name = function
  | Convergent -> "convergent"
  | Rawcc -> "rawcc"
  | Uas -> "uas"
  | Pcc -> "pcc"
  | Bug -> "bug"
  | Anneal -> "anneal"

let scheduler_of_name name =
  match String.lowercase_ascii name with
  | "convergent" -> Some Convergent
  | "rawcc" -> Some Rawcc
  | "uas" -> Some Uas
  | "pcc" -> Some Pcc
  | "bug" -> Some Bug
  | "anneal" | "sa" -> Some Anneal
  | _ -> None

let default_passes ~machine =
  if Cs_machine.Machine.is_mesh machine then Cs_core.Sequence.raw_default ()
  else Cs_core.Sequence.vliw_default ()

let validated sched =
  Cs_sched.Validator.check_exn sched;
  sched

(* Simulator-level counters: the cycles and transfers the machine model
   charges a finished schedule. One event per scheduling run. *)
let emit_sim_counters ~scheduler sched =
  if Cs_obs.Obs.enabled () then
    Cs_obs.Obs.counter ~cat:"sim" ("sim:" ^ scheduler_name scheduler)
      [ ("cycles", float_of_int (Cs_sched.Schedule.makespan sched));
        ("transfers", float_of_int (Cs_sched.Schedule.n_comms sched));
        ("utilization", Cs_sched.Schedule.utilization sched) ]

let convergent_traced ?seed ?passes ~machine region =
  let passes = match passes with Some p -> p | None -> default_passes ~machine in
  let result = Cs_core.Driver.run ?seed ~machine region passes in
  let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
  let priority =
    if Cs_machine.Machine.is_mesh machine then Cs_sched.Priority.alap analysis
    else Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine
      ~assignment:result.Cs_core.Driver.assignment ~priority ~analysis region
  in
  (sched, result.Cs_core.Driver.trace)

let convergent ?seed ?passes ~machine region =
  let sched, trace = convergent_traced ?seed ?passes ~machine region in
  emit_sim_counters ~scheduler:Convergent sched;
  (validated sched, trace)

let schedule_raw ?seed ?passes ~scheduler ~machine region =
  match scheduler with
  | Convergent -> fst (convergent_traced ?seed ?passes ~machine region)
  | _ ->
    Cs_obs.Obs.span ~cat:"sim" ("schedule:" ^ scheduler_name scheduler) (fun () ->
        match scheduler with
        | Convergent -> assert false
        | Rawcc -> Cs_baselines.Rawcc.schedule ~machine region
        | Uas -> Cs_baselines.Uas.schedule ~machine region
        | Pcc -> Cs_baselines.Pcc.schedule ~machine region
        | Bug -> Cs_baselines.Bug.schedule ~machine region
        | Anneal -> Cs_baselines.Anneal.schedule ?seed ~machine region)

let schedule ?seed ~scheduler ~machine region =
  match scheduler with
  | Convergent -> fst (convergent ?seed ~machine region)
  | _ ->
    let sched = schedule_raw ?seed ~scheduler ~machine region in
    emit_sim_counters ~scheduler sched;
    validated sched

(* ---- Resilient fallback chain ------------------------------------- *)

(* Like [convergent_traced] but surfacing the driver result, so the
   fallback chain can report pass quarantines and anytime early exits. *)
let convergent_with_result ?seed ?passes ?deadline ?pass_budget_s ~machine region =
  let passes = match passes with Some p -> p | None -> default_passes ~machine in
  let result = Cs_core.Driver.run ?seed ?deadline ?pass_budget_s ~machine region passes in
  let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
  let priority =
    if Cs_machine.Machine.is_mesh machine then Cs_sched.Priority.alap analysis
    else Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine
      ~assignment:result.Cs_core.Driver.assignment ~priority ~analysis region
  in
  (sched, result)

(* Last-resort rung: the whole region on one surviving cluster, ALAP
   critical-path priority. With no inter-cluster dependences there are
   no transfers to route, so this validates on any machine that still
   has one cluster able to execute every opcode (and hosts or can
   remotely serve every preplacement). Clusters are tried in order. *)
let single_cluster ~machine region =
  let nc = Cs_machine.Machine.n_clusters machine in
  let n = Cs_ddg.Region.n_instrs region in
  let analysis =
    Cs_ddg.Analysis.make
      ~latency:(Cs_machine.Machine.latency_of machine)
      region.Cs_ddg.Region.graph
  in
  let priority = Cs_sched.Priority.alap analysis in
  let rec try_cluster c last_err =
    if c >= nc then
      Error
        (Option.value last_err
           ~default:
             (Cs_resil.Error.Infeasible "no cluster can host the whole region"))
    else if not (Cs_machine.Machine.is_cluster_alive machine c) then
      try_cluster (c + 1) last_err
    else
      match
        Cs_resil.Error.protect (fun () ->
            Cs_sched.List_scheduler.run ~machine ~assignment:(Array.make n c)
              ~priority ~analysis region)
      with
      | Ok sched -> Ok sched
      | Error e -> try_cluster (c + 1) (Some e)
  in
  try_cluster 0 None

let schedule_resilient ?seed ?passes ?deadline ?pass_budget_s ?(scheduler = Convergent)
    ~machine region =
  let deadline_expired () =
    match deadline with None -> false | Some t -> Cs_obs.Clock.now () >= t
  in
  let try_build label build =
    match Cs_resil.Error.protect build with
    | Error e -> Error e
    | Ok (sched, quarantined, timed_out) -> (
      match Cs_sched.Validator.check sched with
      | Ok () -> Ok (sched, quarantined, timed_out)
      | Error problems ->
        Error
          (Cs_resil.Error.Invalid_schedule
             (Printf.sprintf "%s: %s" label (String.concat "; " problems))))
  in
  let quarantines_of result =
    List.map
      (fun (q : Cs_core.Driver.quarantine) -> (q.pass_name, q.reason))
      result.Cs_core.Driver.quarantined
  in
  let rungs =
    [ ( Cs_resil.Outcome.Requested,
        scheduler_name scheduler,
        fun () ->
          match scheduler with
          | Convergent ->
            let sched, result =
              convergent_with_result ?seed ?passes ?deadline ?pass_budget_s ~machine
                region
            in
            (sched, quarantines_of result, result.Cs_core.Driver.timed_out)
          | _ -> (schedule_raw ?seed ~scheduler ~machine region, [], false) ) ]
    @ (* Rung 2 adds nothing when rung 1 already was the default
         convergent sequence. *)
    (if scheduler = Convergent && passes = None then []
     else
       [ ( Cs_resil.Outcome.Default_sequence,
           "convergent-default",
           fun () ->
             let sched, result =
               convergent_with_result ?seed ?deadline ?pass_budget_s ~machine region
             in
             (sched, quarantines_of result, result.Cs_core.Driver.timed_out) ) ])
    @ [ ( Cs_resil.Outcome.Single_cluster,
          "single-cluster",
          fun () ->
            match single_cluster ~machine region with
            | Ok sched -> (sched, [], false)
            | Error e -> Cs_resil.Error.error e ) ]
  in
  let rec climb attempts = function
    | [] -> (
      match attempts with
      | (_, _, e) :: _ -> Error e
      | [] -> Error (Cs_resil.Error.Infeasible "no fallback rung available"))
    | _ :: _ when attempts <> [] && deadline_expired () ->
      (* The deadline expired while earlier rungs burned the budget:
         refuse with a typed error rather than climbing on. A rung
         already in flight is never abandoned — the convergent rungs cut
         themselves short via the driver's anytime exit — so the caller
         gets either a validated schedule or this refusal, never a
         hang. The first rung always gets a chance to run. *)
      Error
        (Cs_resil.Error.Deadline_exceeded
           (Printf.sprintf "deadline expired after %d failed rung%s"
              (List.length attempts)
              (if List.length attempts = 1 then "" else "s")))
    | (rung, label, build) :: rest -> (
      match try_build label build with
      | Ok (sched, quarantined, timed_out) ->
        let outcome =
          { Cs_resil.Outcome.rung; attempts = List.rev attempts; quarantined;
            timed_out }
        in
        if Cs_obs.Obs.enabled () && rung <> Cs_resil.Outcome.Requested then
          Cs_obs.Obs.instant ~cat:"resil" "fallback"
            ~args:
              [ ("rung", Cs_obs.Obs.Str (Cs_resil.Outcome.rung_to_string rung));
                ("attempts", Cs_obs.Obs.Int (List.length outcome.attempts)) ];
        emit_sim_counters ~scheduler sched;
        Ok (sched, outcome)
      | Error e ->
        if Cs_obs.Obs.enabled () then
          Cs_obs.Obs.instant ~cat:"resil" "rung-failed"
            ~args:
              [ ("rung", Cs_obs.Obs.Str (Cs_resil.Outcome.rung_to_string rung));
                ("label", Cs_obs.Obs.Str label);
                ("error", Cs_obs.Obs.Str (Cs_resil.Error.to_string e)) ];
        climb ((rung, label, e) :: attempts) rest)
  in
  Cs_obs.Obs.span ~cat:"resil" "schedule_resilient" (fun () -> climb [] rungs)
