(** Compile-time scalability measurement (paper Fig. 10): wall-clock
    scheduling time as a function of region size, for convergent
    scheduling, UAS, and PCC, on the clustered VLIW. Timing includes the
    post-assignment list scheduler for convergent and PCC, as in the
    paper ("our measurements include time spent in the scheduler"). *)

type point = {
  n_instrs : int;
  seconds : float;
}

val time_scheduler :
  scheduler:Pipeline.scheduler -> machine:Cs_machine.Machine.t ->
  Cs_ddg.Region.t -> float
(** Monotonic wall-clock seconds ({!Cs_obs.Clock}) for one scheduling
    run (no validation overhead). *)

val sweep :
  ?sizes:int list -> ?seed:int -> scheduler:Pipeline.scheduler ->
  machine:Cs_machine.Machine.t -> unit -> point list
(** Times random layered regions of the given sizes
    (default 50-2000, mem-banked for the machine's cluster count). *)
