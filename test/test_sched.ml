(* Tests for the list scheduler, reservations, priorities, comm. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vliw2 = Cs_machine.Vliw.create ~n_clusters:2 ()
let raw22 = Cs_machine.Raw.create ~rows:2 ~cols:2 ()

(* --- Reservation --- *)

let test_reservation_basics () =
  let r = Cs_sched.Reservation.create () in
  check_bool "free initially" true (Cs_sched.Reservation.is_free r 5);
  Cs_sched.Reservation.book r 5;
  check_bool "booked" false (Cs_sched.Reservation.is_free r 5);
  check_int "first free skips" 6 (Cs_sched.Reservation.first_free_from r 5);
  check_int "before untouched" 4 (Cs_sched.Reservation.first_free_from r 4)

let test_reservation_double_book () =
  let r = Cs_sched.Reservation.create () in
  Cs_sched.Reservation.book r 2;
  check_bool "double raises resource conflict" true
    (try
       Cs_sched.Reservation.book r 2;
       false
     with Cs_resil.Error.Error (Cs_resil.Error.Resource_conflict _) -> true)

let test_reservation_growth () =
  let r = Cs_sched.Reservation.create () in
  Cs_sched.Reservation.book r 1000;
  check_bool "far cycle booked" false (Cs_sched.Reservation.is_free r 1000);
  Alcotest.(check (list int)) "booked cycles" [ 1000 ] (Cs_sched.Reservation.booked_cycles r)

let test_reservation_negative () =
  let r = Cs_sched.Reservation.create () in
  check_bool "negative raises invalid input" true
    (try
       Cs_sched.Reservation.book r (-1);
       false
     with Cs_resil.Error.Error (Cs_resil.Error.Invalid_input _) -> true)

(* --- Comm.deliver_by --- *)

let test_deliver_by_meets_deadline () =
  let comm = Cs_sched.Comm.create vliw2 in
  (* Crossbar latency 1: ready at 3 -> arrives at 4. *)
  check_bool "meets" true
    (Cs_sched.Comm.deliver_by comm ~producer:0 ~src:0 ~dst:1 ~ready:3 ~deadline:4 = Some 4)

let test_deliver_by_rejects_tight_deadline () =
  let comm = Cs_sched.Comm.create vliw2 in
  check_bool "rejected" true
    (Cs_sched.Comm.deliver_by comm ~producer:0 ~src:0 ~dst:1 ~ready:3 ~deadline:3 = None);
  (* Rejection must not book anything: the same transfer still works. *)
  check_bool "nothing booked" true
    (Cs_sched.Comm.deliver_by comm ~producer:0 ~src:0 ~dst:1 ~ready:3 ~deadline:4 = Some 4);
  check_int "one booking" 1 (List.length (Cs_sched.Comm.bookings comm))

let test_deliver_by_same_cluster () =
  let comm = Cs_sched.Comm.create vliw2 in
  check_bool "local now" true
    (Cs_sched.Comm.deliver_by comm ~producer:0 ~src:1 ~dst:1 ~ready:2 ~deadline:2 = Some 2);
  check_bool "local late" true
    (Cs_sched.Comm.deliver_by comm ~producer:0 ~src:1 ~dst:1 ~ready:5 ~deadline:2 = None)

let test_deliver_by_memo_hit () =
  let comm = Cs_sched.Comm.create vliw2 in
  let first = Cs_sched.Comm.deliver comm ~producer:7 ~src:0 ~dst:1 ~ready:0 in
  check_bool "memo respects deadline" true
    (Cs_sched.Comm.deliver_by comm ~producer:7 ~src:0 ~dst:1 ~ready:0 ~deadline:first
    = Some first);
  check_bool "memo too late" true
    (Cs_sched.Comm.deliver_by comm ~producer:7 ~src:0 ~dst:1 ~ready:0 ~deadline:(first - 1)
    = None)

(* --- Priority --- *)

let test_priority_alap_orders_critical_first () =
  let b = Cs_ddg.Builder.create ~name:"p" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let long = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fdiv k in
  let _j = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd long (Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Mov k) in
  let region = Cs_ddg.Builder.finish b in
  let a = Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw2) region.Cs_ddg.Region.graph in
  let alap = Cs_sched.Priority.alap a in
  check_bool "fdiv before mov" true (alap.(1) < alap.(2))

let test_priority_tiebreak_by_height () =
  let priority = [| 0; 0 |] in
  let height = function 0 -> 1 | _ -> 5 in
  check_bool "taller first" true
    (Cs_sched.Priority.compare_with_tiebreak ~priority ~height 1 0 < 0)

let test_priority_tiebreak_by_id () =
  let priority = [| 0; 0 |] in
  let height _ = 3 in
  check_bool "lower id first" true
    (Cs_sched.Priority.compare_with_tiebreak ~priority ~height 0 1 < 0)

(* --- List scheduler on hand graphs --- *)

let serial_chain n =
  let b = Cs_ddg.Builder.create ~name:"chain" () in
  let cur = ref (Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const) in
  for _ = 2 to n do
    cur := Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add !cur
  done;
  Cs_ddg.Builder.finish b

let schedule ?assignment machine region =
  let a =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine)
      region.Cs_ddg.Region.graph
  in
  let n = Cs_ddg.Graph.n region.Cs_ddg.Region.graph in
  let assignment = match assignment with Some x -> x | None -> Array.make n 0 in
  Cs_sched.List_scheduler.run ~machine ~assignment ~priority:(Cs_sched.Priority.alap a)
    ~analysis:a region

let test_serial_chain_makespan () =
  let region = serial_chain 5 in
  let sched = schedule vliw2 region in
  (* const(1) + 4 adds(1) = 5 cycles, no gaps. *)
  check_int "makespan 5" 5 (Cs_sched.Schedule.makespan sched);
  Cs_sched.Validator.check_exn sched

let test_parallel_on_two_clusters () =
  let b = Cs_ddg.Builder.create ~name:"par" () in
  (* Two independent fp chains; on two clusters they overlap fully. *)
  let mk () =
    let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
    ignore (Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k)
  in
  mk (); mk ();
  let region = Cs_ddg.Builder.finish b in
  let together = schedule vliw2 region in
  let spread = schedule ~assignment:[| 0; 0; 1; 1 |] vliw2 region in
  check_int "spread overlaps" 5 (Cs_sched.Schedule.makespan spread);
  check_bool "split no worse" true
    (Cs_sched.Schedule.makespan spread <= Cs_sched.Schedule.makespan together);
  Cs_sched.Validator.check_exn spread

let cross_cluster_pair machine =
  let b = Cs_ddg.Builder.create ~name:"x" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _c = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let region = Cs_ddg.Builder.finish b in
  schedule ~assignment:[| 0; 1 |] machine region

let test_crossbar_transfer_latency () =
  let sched = cross_cluster_pair vliw2 in
  (* const finishes at 1; transfer departs 1, arrives 2; add starts 2. *)
  check_int "consumer start" 2 sched.Cs_sched.Schedule.entries.(1).Cs_sched.Schedule.start;
  check_int "one transfer" 1 (Cs_sched.Schedule.n_comms sched);
  Cs_sched.Validator.check_exn sched

let test_mesh_transfer_latency () =
  let sched = cross_cluster_pair raw22 in
  (* Neighbor latency 3: const finish 1, arrive 4. *)
  check_int "consumer start" 4 sched.Cs_sched.Schedule.entries.(1).Cs_sched.Schedule.start;
  Cs_sched.Validator.check_exn sched

let test_transfer_memoized () =
  let b = Cs_ddg.Builder.create ~name:"fanout" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _u1 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let _u2 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let region = Cs_ddg.Builder.finish b in
  let sched = schedule ~assignment:[| 0; 1; 1 |] vliw2 region in
  check_int "value moved once" 1 (Cs_sched.Schedule.n_comms sched);
  Cs_sched.Validator.check_exn sched

let test_remote_memory_penalty () =
  let b = Cs_ddg.Builder.create ~name:"remote" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _l = Cs_ddg.Builder.load b ~preplace:1 addr in
  let region = Cs_ddg.Builder.finish b in
  let local = schedule ~assignment:[| 1; 1 |] vliw2 region in
  let remote = schedule ~assignment:[| 0; 0 |] vliw2 region in
  let lat c sched =
    sched.Cs_sched.Schedule.entries.(c).Cs_sched.Schedule.finish
    - sched.Cs_sched.Schedule.entries.(c).Cs_sched.Schedule.start
  in
  check_int "local load 2" 2 (lat 1 local);
  check_int "remote load 3" 3 (lat 1 remote);
  Cs_sched.Validator.check_exn remote

let test_unschedulable_preplaced_off_home_on_mesh () =
  let b = Cs_ddg.Builder.create ~name:"bad" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _l = Cs_ddg.Builder.load b ~preplace:1 addr in
  let region = Cs_ddg.Builder.finish b in
  check_bool "raises" true
    (try
       ignore (schedule ~assignment:[| 0; 0 |] raw22 region);
       false
     with Cs_resil.Error.Error (Cs_resil.Error.Infeasible _) -> true)

let test_unschedulable_incapable_cluster () =
  let machine =
    Cs_machine.Machine.make ~name:"intonly"
      ~fus:[| [| Cs_machine.Fu.Int_alu |] |]
      ~topology:(Cs_machine.Topology.Crossbar { latency = 1 })
      ()
  in
  let b = Cs_ddg.Builder.create ~name:"fp" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _f = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k in
  let region = Cs_ddg.Builder.finish b in
  check_bool "raises" true
    (try
       ignore (schedule machine region);
       false
     with Cs_resil.Error.Error (Cs_resil.Error.Infeasible _) -> true)

let test_issue_width_respected () =
  (* Five independent consts on one Raw tile (1 FU): five cycles. *)
  let b = Cs_ddg.Builder.create ~name:"five" () in
  for _ = 1 to 5 do
    ignore (Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const)
  done;
  let region = Cs_ddg.Builder.finish b in
  let sched = schedule (Cs_machine.Raw.with_tiles 1) region in
  check_int "serialized" 5 (Cs_sched.Schedule.makespan sched)

let test_transfer_unit_contention () =
  (* Two producers on cluster 0 feeding cluster 1 the same cycle: the
     single transfer unit serializes departures. *)
  let b = Cs_ddg.Builder.create ~name:"xcontend" () in
  let k1 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let k2 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _u = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Add k1 k2 in
  let region = Cs_ddg.Builder.finish b in
  let sched = schedule ~assignment:[| 0; 0; 1 |] vliw2 region in
  let departs =
    List.sort Int.compare (List.map (fun c -> c.Cs_sched.Schedule.depart) sched.Cs_sched.Schedule.comms)
  in
  check_int "two transfers" 2 (List.length departs);
  check_bool "serialized departures" true (List.nth departs 0 <> List.nth departs 1);
  Cs_sched.Validator.check_exn sched

let test_mesh_link_wormhole () =
  (* On a 1x4 mesh, two values crossing the same middle link contend. *)
  let machine = Cs_machine.Raw.create ~rows:1 ~cols:4 () in
  let b = Cs_ddg.Builder.create ~name:"links" () in
  let k1 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let k2 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _u1 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k1 in
  let _u2 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k2 in
  let region = Cs_ddg.Builder.finish b in
  let sched = schedule ~assignment:[| 0; 1; 3; 3 |] machine region in
  Cs_sched.Validator.check_exn sched;
  check_int "two transfers" 2 (Cs_sched.Schedule.n_comms sched)

let test_schedule_stats () =
  let region = serial_chain 4 in
  let sched = schedule vliw2 region in
  let occ = Cs_sched.Schedule.cluster_occupancy sched in
  check_int "all on cluster 0" 4 occ.(0);
  check_int "none on cluster 1" 0 occ.(1);
  check_bool "utilization in (0,1]" true
    (Cs_sched.Schedule.utilization sched > 0.0 && Cs_sched.Schedule.utilization sched <= 1.0)

let test_schedule_pp_renders () =
  let sched = schedule vliw2 (serial_chain 3) in
  let s = Format.asprintf "%a" Cs_sched.Schedule.pp sched in
  check_bool "mentions makespan" true (String.length s > 20)

let () =
  Alcotest.run "cs_sched"
    [
      ( "reservation",
        [
          Alcotest.test_case "basics" `Quick test_reservation_basics;
          Alcotest.test_case "double book" `Quick test_reservation_double_book;
          Alcotest.test_case "growth" `Quick test_reservation_growth;
          Alcotest.test_case "negative" `Quick test_reservation_negative;
        ] );
      ( "comm",
        [
          Alcotest.test_case "deliver_by meets" `Quick test_deliver_by_meets_deadline;
          Alcotest.test_case "deliver_by rejects" `Quick test_deliver_by_rejects_tight_deadline;
          Alcotest.test_case "deliver_by local" `Quick test_deliver_by_same_cluster;
          Alcotest.test_case "deliver_by memo" `Quick test_deliver_by_memo_hit;
        ] );
      ( "priority",
        [
          Alcotest.test_case "alap critical first" `Quick test_priority_alap_orders_critical_first;
          Alcotest.test_case "tiebreak height" `Quick test_priority_tiebreak_by_height;
          Alcotest.test_case "tiebreak id" `Quick test_priority_tiebreak_by_id;
        ] );
      ( "list_scheduler",
        [
          Alcotest.test_case "serial chain" `Quick test_serial_chain_makespan;
          Alcotest.test_case "parallel split" `Quick test_parallel_on_two_clusters;
          Alcotest.test_case "crossbar latency" `Quick test_crossbar_transfer_latency;
          Alcotest.test_case "mesh latency" `Quick test_mesh_transfer_latency;
          Alcotest.test_case "transfer memoized" `Quick test_transfer_memoized;
          Alcotest.test_case "remote mem penalty" `Quick test_remote_memory_penalty;
          Alcotest.test_case "preplaced off home" `Quick test_unschedulable_preplaced_off_home_on_mesh;
          Alcotest.test_case "incapable cluster" `Quick test_unschedulable_incapable_cluster;
          Alcotest.test_case "issue width" `Quick test_issue_width_respected;
          Alcotest.test_case "transfer contention" `Quick test_transfer_unit_contention;
          Alcotest.test_case "mesh wormhole" `Quick test_mesh_link_wormhole;
          Alcotest.test_case "stats" `Quick test_schedule_stats;
          Alcotest.test_case "pp renders" `Quick test_schedule_pp_renders;
        ] );
    ]
