(* Tests for the preference matrix, including qcheck invariants. *)

(* Seed QCheck's Random.State from Cs_util.Rng so `dune runtest` is
   bit-reproducible (to_alcotest's default state is self_init'd). *)
let to_alcotest test =
  let rng = Cs_util.Rng.create 0xB17_5EED in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make (Array.init 8 (fun _ -> Cs_util.Rng.int rng 0x3FFFFFFF)))
    test

open Cs_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let ok_invariants w =
  match Weights.check_invariants w with
  | Ok () -> true
  | Error msg ->
    Printf.eprintf "invariant failure: %s\n" msg;
    false

let test_create_uniform () =
  let w = Weights.create ~n:2 ~nc:3 ~nt:4 in
  check_float "uniform entry" (1.0 /. 12.0) (Weights.get w 0 1 2);
  check_float "cluster marginal" (1.0 /. 3.0) (Weights.cluster_weight w 0 0);
  check_float "time marginal" (1.0 /. 4.0) (Weights.time_weight w 1 3);
  check_bool "invariants" true (ok_invariants w)

let test_set_updates_marginals () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Weights.set w 0 1 0 0.5;
  check_float "cluster sum" 0.75 (Weights.cluster_weight w 0 1);
  check_float "time sum" 0.75 (Weights.time_weight w 0 0)

let test_set_rejects_negative () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Weights.set: weight must be finite and >= 0") (fun () ->
      Weights.set w 0 0 0 (-0.1))

let test_index_bounds () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Alcotest.check_raises "oob" (Invalid_argument "Weights: index out of range") (fun () ->
      ignore (Weights.get w 0 2 0))

let test_scale_cluster () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:3 in
  Weights.scale_cluster w 0 1 2.0;
  Weights.normalize w 0;
  check_bool "cluster 1 preferred" true (Weights.preferred_cluster w 0 = 1);
  check_bool "invariants" true (ok_invariants w)

let test_scale_time () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:3 in
  Weights.scale_time w 0 2 3.0;
  Weights.normalize w 0;
  check_int "slot 2 preferred" 2 (Weights.preferred_time w 0)

let test_normalize_restores_sum () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Weights.scale w 0 0 0 7.0;
  Weights.normalize w 0;
  check_bool "invariants" true (ok_invariants w);
  check_float "total 1" 1.0 (Weights.row_total w 0)

let test_normalize_zero_row_resets_uniform () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  for c = 0 to 1 do
    for t = 0 to 1 do
      Weights.set w 0 c t 0.0
    done
  done;
  Weights.normalize w 0;
  check_float "uniform again" 0.25 (Weights.get w 0 1 1);
  check_bool "invariants" true (ok_invariants w)

let test_preferred_tie_break () =
  let w = Weights.create ~n:1 ~nc:3 ~nt:1 in
  check_int "smallest cluster on tie" 0 (Weights.preferred_cluster w 0);
  check_int "smallest slot on tie" 0 (Weights.preferred_time w 0)

let test_runnerup () =
  let w = Weights.create ~n:1 ~nc:3 ~nt:1 in
  Weights.set w 0 0 0 0.5;
  Weights.set w 0 1 0 0.3;
  Weights.set w 0 2 0 0.2;
  check_bool "runner-up is 1" true (Weights.runnerup_cluster w 0 = Some 1);
  let single = Weights.create ~n:1 ~nc:1 ~nt:2 in
  check_bool "no runner-up" true (Weights.runnerup_cluster single 0 = None)

let test_confidence () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  Weights.set w 0 0 0 0.8;
  Weights.set w 0 1 0 0.2;
  check_float "ratio 4" 4.0 (Weights.confidence w 0);
  Weights.set w 0 1 0 0.0;
  check_bool "infinite when runner-up zero" true (Weights.confidence w 0 = infinity)

let test_blend () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:1 in
  Weights.set w 0 0 0 1.0;
  Weights.set w 0 1 0 0.0;
  Weights.set w 1 0 0 0.0;
  Weights.set w 1 1 0 1.0;
  Weights.blend w ~dst:1 ~src:0 ~keep:0.25;
  check_float "blended" 0.75 (Weights.get w 1 0 0);
  check_float "blended other" 0.25 (Weights.get w 1 1 0);
  check_bool "src untouched" true (Weights.get w 0 0 0 = 1.0)

let test_blend_self_noop () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  Weights.blend w ~dst:0 ~src:0 ~keep:0.5;
  check_float "unchanged" 0.5 (Weights.get w 0 0 0)

let test_blend_rejects_bad_keep () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:1 in
  Alcotest.check_raises "keep > 1" (Invalid_argument "Weights.blend: keep must be in [0,1]")
    (fun () -> Weights.blend w ~dst:0 ~src:1 ~keep:1.5)

let test_copy_is_deep () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  let c = Weights.copy w in
  Weights.set w 0 0 0 0.9;
  check_float "copy unchanged" 0.5 (Weights.get c 0 0 0)

let test_blit_restores () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:2 in
  Weights.scale_cluster w 0 1 4.0;
  Weights.normalize_all w;
  let snapshot = Weights.copy w in
  Weights.scale_cluster w 0 0 9.0;
  Weights.normalize_all w;
  Weights.blit ~src:snapshot ~dst:w;
  check_float "entry restored" (Weights.get snapshot 0 1 0) (Weights.get w 0 1 0);
  check_int "preference restored" 1 (Weights.preferred_cluster w 0);
  check_bool "caches restored too" true (ok_invariants w);
  let small = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Weights.blit: dimension mismatch") (fun () ->
      Weights.blit ~src:small ~dst:w)

let test_validate_gate () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:2 in
  check_bool "fresh matrix sane" true (Weights.validate w = Ok ());
  (* An un-normalized row is exactly what a misbehaving pass leaves. *)
  Weights.set w 0 0 0 5.0;
  check_bool "row sum off" true (Result.is_error (Weights.validate w));
  Weights.normalize w 0;
  check_bool "normalize repairs" true (Weights.validate w = Ok ());
  (* Non-finite weights cannot enter through the API at all; validate's
     finiteness arm is defense in depth behind this gate. *)
  Alcotest.check_raises "set rejects nan"
    (Invalid_argument "Weights.set: weight must be finite and >= 0") (fun () ->
      Weights.set w 1 0 0 Float.nan)

let test_preferred_clusters_snapshot () =
  let w = Weights.create ~n:3 ~nc:2 ~nt:1 in
  Weights.set w 1 1 0 0.9;
  Alcotest.(check (array int)) "snapshot" [| 0; 1; 0 |] (Weights.preferred_clusters w)

let test_pp_cluster_map () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:1 in
  let s = Format.asprintf "%a" Weights.pp_cluster_map w in
  check_bool "non-empty" true (String.length s > 10)

(* qcheck: random edit sequences + normalize preserve invariants. *)
let edit_gen =
  QCheck.Gen.(
    list_size (int_bound 60)
      (tup4 (int_bound 3) (int_bound 2) (int_bound 4) (float_bound_inclusive 5.0)))

let test_random_edits_qcheck =
  let prop =
    QCheck.Test.make ~count:300 ~name:"edits + normalize keep invariants"
      (QCheck.make edit_gen)
      (fun edits ->
        let w = Weights.create ~n:4 ~nc:3 ~nt:5 in
        List.iter
          (fun (i, c, t, v) ->
            match (i + c + t) mod 3 with
            | 0 -> Weights.set w i c t v
            | 1 -> Weights.add w i c t v
            | _ -> Weights.scale w i c t v)
          edits;
        Weights.normalize_all w;
        match Weights.check_invariants w with Ok () -> true | Error _ -> false)
  in
  to_alcotest prop

let test_random_blends_qcheck =
  let gen = QCheck.Gen.(list_size (int_bound 40) (tup3 (int_bound 3) (int_bound 3) (float_bound_inclusive 1.0))) in
  let prop =
    QCheck.Test.make ~count:200 ~name:"blends keep invariants" (QCheck.make gen)
      (fun blends ->
        let w = Weights.create ~n:4 ~nc:2 ~nt:3 in
        List.iter (fun (d, s, keep) -> Weights.blend w ~dst:d ~src:s ~keep) blends;
        Weights.normalize_all w;
        match Weights.check_invariants w with Ok () -> true | Error _ -> false)
  in
  to_alcotest prop

let test_marginal_consistency_qcheck =
  let prop =
    QCheck.Test.make ~count:200 ~name:"preferred cluster maximizes marginal"
      (QCheck.make edit_gen)
      (fun edits ->
        let w = Weights.create ~n:4 ~nc:3 ~nt:5 in
        List.iter (fun (i, c, t, v) -> Weights.set w i c t v) edits;
        Weights.normalize_all w;
        let ok = ref true in
        for i = 0 to 3 do
          let p = Weights.preferred_cluster w i in
          for c = 0 to 2 do
            if Weights.cluster_weight w i c > Weights.cluster_weight w i p +. 1e-9 then
              ok := false
          done
        done;
        !ok)
  in
  to_alcotest prop

let () =
  Alcotest.run "cs_core.weights"
    [
      ( "weights",
        [
          Alcotest.test_case "create uniform" `Quick test_create_uniform;
          Alcotest.test_case "set updates marginals" `Quick test_set_updates_marginals;
          Alcotest.test_case "set rejects negative" `Quick test_set_rejects_negative;
          Alcotest.test_case "index bounds" `Quick test_index_bounds;
          Alcotest.test_case "scale cluster" `Quick test_scale_cluster;
          Alcotest.test_case "scale time" `Quick test_scale_time;
          Alcotest.test_case "normalize" `Quick test_normalize_restores_sum;
          Alcotest.test_case "normalize zero row" `Quick test_normalize_zero_row_resets_uniform;
          Alcotest.test_case "tie break" `Quick test_preferred_tie_break;
          Alcotest.test_case "runner-up" `Quick test_runnerup;
          Alcotest.test_case "confidence" `Quick test_confidence;
          Alcotest.test_case "blend" `Quick test_blend;
          Alcotest.test_case "blend self noop" `Quick test_blend_self_noop;
          Alcotest.test_case "blend bad keep" `Quick test_blend_rejects_bad_keep;
          Alcotest.test_case "copy deep" `Quick test_copy_is_deep;
          Alcotest.test_case "blit restores" `Quick test_blit_restores;
          Alcotest.test_case "validate gate" `Quick test_validate_gate;
          Alcotest.test_case "snapshot" `Quick test_preferred_clusters_snapshot;
          Alcotest.test_case "cluster map render" `Quick test_pp_cluster_map;
        ] );
      ( "properties",
        [ test_random_edits_qcheck; test_random_blends_qcheck; test_marginal_consistency_qcheck ] );
    ]
