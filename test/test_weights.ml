(* Tests for the preference matrix, including qcheck invariants. *)

(* Seed QCheck's Random.State from Cs_util.Rng so `dune runtest` is
   bit-reproducible (to_alcotest's default state is self_init'd). *)
let to_alcotest test =
  let rng = Cs_util.Rng.create 0xB17_5EED in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make (Array.init 8 (fun _ -> Cs_util.Rng.int rng 0x3FFFFFFF)))
    test

open Cs_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let ok_invariants w =
  match Weights.check_invariants w with
  | Ok () -> true
  | Error msg ->
    Printf.eprintf "invariant failure: %s\n" msg;
    false

let test_create_uniform () =
  let w = Weights.create ~n:2 ~nc:3 ~nt:4 in
  check_float "uniform entry" (1.0 /. 12.0) (Weights.get w 0 1 2);
  check_float "cluster marginal" (1.0 /. 3.0) (Weights.cluster_weight w 0 0);
  check_float "time marginal" (1.0 /. 4.0) (Weights.time_weight w 1 3);
  check_bool "invariants" true (ok_invariants w)

let test_set_updates_marginals () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Weights.set w 0 1 0 0.5;
  check_float "cluster sum" 0.75 (Weights.cluster_weight w 0 1);
  check_float "time sum" 0.75 (Weights.time_weight w 0 0)

let test_set_rejects_negative () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Weights.set: weight must be finite and >= 0") (fun () ->
      Weights.set w 0 0 0 (-0.1))

let test_index_bounds () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Alcotest.check_raises "oob" (Invalid_argument "Weights: index out of range") (fun () ->
      ignore (Weights.get w 0 2 0))

let test_scale_cluster () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:3 in
  Weights.scale_cluster w 0 1 2.0;
  Weights.normalize w 0;
  check_bool "cluster 1 preferred" true (Weights.preferred_cluster w 0 = 1);
  check_bool "invariants" true (ok_invariants w)

let test_scale_time () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:3 in
  Weights.scale_time w 0 2 3.0;
  Weights.normalize w 0;
  check_int "slot 2 preferred" 2 (Weights.preferred_time w 0)

let test_normalize_restores_sum () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Weights.scale w 0 0 0 7.0;
  Weights.normalize w 0;
  check_bool "invariants" true (ok_invariants w);
  check_float "total 1" 1.0 (Weights.row_total w 0)

let test_normalize_zero_row_resets_uniform () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:2 in
  for c = 0 to 1 do
    for t = 0 to 1 do
      Weights.set w 0 c t 0.0
    done
  done;
  Weights.normalize w 0;
  check_float "uniform again" 0.25 (Weights.get w 0 1 1);
  check_bool "invariants" true (ok_invariants w)

let test_preferred_tie_break () =
  let w = Weights.create ~n:1 ~nc:3 ~nt:1 in
  check_int "smallest cluster on tie" 0 (Weights.preferred_cluster w 0);
  check_int "smallest slot on tie" 0 (Weights.preferred_time w 0)

let test_runnerup () =
  let w = Weights.create ~n:1 ~nc:3 ~nt:1 in
  Weights.set w 0 0 0 0.5;
  Weights.set w 0 1 0 0.3;
  Weights.set w 0 2 0 0.2;
  check_bool "runner-up is 1" true (Weights.runnerup_cluster w 0 = Some 1);
  let single = Weights.create ~n:1 ~nc:1 ~nt:2 in
  check_bool "no runner-up" true (Weights.runnerup_cluster single 0 = None)

let test_confidence () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  Weights.set w 0 0 0 0.8;
  Weights.set w 0 1 0 0.2;
  check_float "ratio 4" 4.0 (Weights.confidence w 0);
  Weights.set w 0 1 0 0.0;
  check_float "sentinel when runner-up zero" Weights.confidence_sentinel
    (Weights.confidence w 0)

(* Regression for the old behavior where a zero runner-up returned
   [infinity] and poisoned telemetry means downstream. *)
let test_confidence_sentinel () =
  check_bool "sentinel is finite" true (Float.is_finite Weights.confidence_sentinel);
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  Weights.set w 0 1 0 0.0;
  check_bool "always finite" true (Float.is_finite (Weights.confidence w 0));
  (* Single-cluster machines have no runner-up at all. *)
  let solo = Weights.create ~n:1 ~nc:1 ~nt:3 in
  check_float "no runner-up" Weights.confidence_sentinel (Weights.confidence solo 0);
  (* A huge-but-finite ratio is clamped to the sentinel, so the sentinel
     is a true upper bound, not just a replacement for inf. *)
  let skew = Weights.create ~n:1 ~nc:2 ~nt:1 in
  Weights.set skew 0 0 0 1.0;
  Weights.set skew 0 1 0 1e-12;
  check_float "clamped" Weights.confidence_sentinel (Weights.confidence skew 0);
  (* And telemetry aggregation over such rows stays finite. *)
  check_bool "mean confidence finite" true
    (Float.is_finite (Telemetry.mean_confidence w))

let test_blend () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:1 in
  Weights.set w 0 0 0 1.0;
  Weights.set w 0 1 0 0.0;
  Weights.set w 1 0 0 0.0;
  Weights.set w 1 1 0 1.0;
  Weights.blend w ~dst:1 ~src:0 ~keep:0.25;
  check_float "blended" 0.75 (Weights.get w 1 0 0);
  check_float "blended other" 0.25 (Weights.get w 1 1 0);
  check_bool "src untouched" true (Weights.get w 0 0 0 = 1.0)

let test_blend_self_noop () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  Weights.blend w ~dst:0 ~src:0 ~keep:0.5;
  check_float "unchanged" 0.5 (Weights.get w 0 0 0)

let test_blend_rejects_bad_keep () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:1 in
  Alcotest.check_raises "keep > 1" (Invalid_argument "Weights.blend: keep must be in [0,1]")
    (fun () -> Weights.blend w ~dst:0 ~src:1 ~keep:1.5)

let test_copy_is_deep () =
  let w = Weights.create ~n:1 ~nc:2 ~nt:1 in
  let c = Weights.copy w in
  Weights.set w 0 0 0 0.9;
  check_float "copy unchanged" 0.5 (Weights.get c 0 0 0)

let test_blit_restores () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:2 in
  Weights.scale_cluster w 0 1 4.0;
  Weights.normalize_all w;
  let snapshot = Weights.copy w in
  Weights.scale_cluster w 0 0 9.0;
  Weights.normalize_all w;
  Weights.blit ~src:snapshot ~dst:w;
  check_float "entry restored" (Weights.get snapshot 0 1 0) (Weights.get w 0 1 0);
  check_int "preference restored" 1 (Weights.preferred_cluster w 0);
  check_bool "caches restored too" true (ok_invariants w);
  let small = Weights.create ~n:1 ~nc:2 ~nt:2 in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Weights.blit: dimension mismatch") (fun () ->
      Weights.blit ~src:small ~dst:w)

let test_validate_gate () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:2 in
  check_bool "fresh matrix sane" true (Weights.validate w = Ok ());
  (* An un-normalized row is exactly what a misbehaving pass leaves. *)
  Weights.set w 0 0 0 5.0;
  check_bool "row sum off" true (Result.is_error (Weights.validate w));
  Weights.normalize w 0;
  check_bool "normalize repairs" true (Weights.validate w = Ok ());
  (* Non-finite weights cannot enter through the API at all; validate's
     finiteness arm is defense in depth behind this gate. *)
  Alcotest.check_raises "set rejects nan"
    (Invalid_argument "Weights.set: weight must be finite and >= 0") (fun () ->
      Weights.set w 1 0 0 Float.nan)

let test_preferred_clusters_snapshot () =
  let w = Weights.create ~n:3 ~nc:2 ~nt:1 in
  Weights.set w 1 1 0 0.9;
  Alcotest.(check (array int)) "snapshot" [| 0; 1; 0 |] (Weights.preferred_clusters w)

let test_pp_cluster_map () =
  let w = Weights.create ~n:2 ~nc:2 ~nt:1 in
  let s = Format.asprintf "%a" Weights.pp_cluster_map w in
  check_bool "non-empty" true (String.length s > 10)

(* --- Dirty-row tracking ------------------------------------------- *)

let test_fresh_matrix_untouched () =
  let w = Weights.create ~n:5 ~nc:2 ~nt:2 in
  check_int "nothing touched" 0 (Weights.touched_count w);
  check_bool "row 0 clean" false (Weights.is_touched w 0)

let test_touched_marks_exactly_written_rows () =
  let w = Weights.create ~n:6 ~nc:2 ~nt:2 in
  Weights.set w 1 0 0 0.9;
  Weights.set w 4 1 1 0.9;
  Weights.set w 1 0 1 0.1;
  (* second write to row 1 *)
  check_int "two rows dirty" 2 (Weights.touched_count w);
  Alcotest.(check (list int)) "ascending ids" [ 1; 4 ] (Weights.touched_rows w);
  check_bool "row 0 clean" false (Weights.is_touched w 0);
  check_bool "row 1 dirty" true (Weights.is_touched w 1);
  Weights.clear_touched w;
  check_int "cleared" 0 (Weights.touched_count w);
  Alcotest.(check (list int)) "empty" [] (Weights.touched_rows w)

let test_noop_writes_do_not_dirty () =
  let w = Weights.create ~n:3 ~nc:2 ~nt:2 in
  (* Writing the value already there, scaling by 1.0 and adding 0.0 are
     all no-ops and must not dirty the row — this is what lets FEASIBLE
     / LOAD leave the touched set empty on healthy machines. *)
  Weights.set w 0 0 0 (Weights.get w 0 0 0);
  Weights.scale w 1 0 0 1.0;
  Weights.scale_cluster w 1 1 1.0;
  Weights.scale_clusters w 2 [| 1.0; 1.0 |];
  Weights.add w 2 1 1 0.0;
  Weights.map_row w 2 (fun _ _ v -> v);
  check_int "no dirty rows" 0 (Weights.touched_count w)

let test_normalize_touched_only_touched () =
  let w = Weights.create ~n:3 ~nc:2 ~nt:2 in
  Weights.scale w 1 0 0 3.0;
  Weights.normalize_touched w;
  check_float "touched row renormalized" 1.0 (Weights.row_total w 1);
  check_bool "invariants" true (ok_invariants w)

let test_sync_rows_restores_exact_rows () =
  let w = Weights.create ~n:4 ~nc:2 ~nt:2 in
  Weights.scale_cluster w 0 1 4.0;
  Weights.scale_cluster w 2 0 7.0;
  Weights.normalize_all w;
  let snapshot = Weights.copy w in
  Weights.clear_touched w;
  Weights.scale_cluster w 1 0 9.0;
  Weights.scale_cluster w 3 1 5.0;
  Weights.normalize_touched w;
  Alcotest.(check (list int)) "pass wrote rows 1,3" [ 1; 3 ] (Weights.touched_rows w);
  (* Rollback: only the touched rows come back from the snapshot. *)
  Weights.sync_rows ~rows:(Weights.touched_rows w) ~src:snapshot ~dst:w;
  for i = 0 to 3 do
    for c = 0 to 1 do
      for t = 0 to 1 do
        check_bool "entry bit-identical" true
          (Weights.get w i c t = Weights.get snapshot i c t)
      done;
      check_bool "marginal bit-identical" true
        (Weights.cluster_weight w i c = Weights.cluster_weight snapshot i c)
    done
  done;
  check_bool "caches consistent" true (ok_invariants w)

(* --- Property suites, run against both implementations ------------- *)

(* One generated op per kernel in the public API; every produced value
   stays finite and non-negative so the sequence is always legal. *)
type op =
  | Set of int * int * int * float
  | Add of int * int * int * float
  | Scale of int * int * int * float
  | Scale_cluster of int * int * float
  | Scale_time of int * int * float
  | Scale_clusters of int * float array
  | Map_row of int * float
  | Blend of int * int * float
  | Normalize of int
  | Normalize_all

let pn = 4
let pnc = 3
let pnt = 5

let op_gen =
  QCheck.Gen.(
    let i = int_bound (pn - 1) and c = int_bound (pnc - 1) and t = int_bound (pnt - 1) in
    let v = float_bound_inclusive 5.0 in
    frequency
      [
        (3, map (fun (i, c, t, v) -> Set (i, c, t, v)) (tup4 i c t v));
        (3, map (fun (i, c, t, v) -> Add (i, c, t, v)) (tup4 i c t v));
        (3, map (fun (i, c, t, v) -> Scale (i, c, t, v)) (tup4 i c t v));
        (2, map (fun (i, c, v) -> Scale_cluster (i, c, v)) (tup3 i c v));
        (2, map (fun (i, t, v) -> Scale_time (i, t, v)) (tup3 i t v));
        ( 2,
          map
            (fun (i, fs) -> Scale_clusters (i, Array.of_list fs))
            (tup2 i (list_repeat pnc v)) );
        (2, map (fun (i, f) -> Map_row (i, f)) (tup2 i v));
        ( 2,
          map (fun (d, s, k) -> Blend (d, s, k)) (tup3 i i (float_bound_inclusive 1.0))
        );
        (1, map (fun i -> Normalize i) i);
        (1, return Normalize_all);
      ])

let ops_gen = QCheck.Gen.(list_size (int_bound 60) op_gen)

let apply_op w = function
  | Set (i, c, t, v) -> Weights.set w i c t v
  | Add (i, c, t, v) -> Weights.add w i c t v
  | Scale (i, c, t, v) -> Weights.scale w i c t v
  | Scale_cluster (i, c, v) -> Weights.scale_cluster w i c v
  | Scale_time (i, t, v) -> Weights.scale_time w i t v
  | Scale_clusters (i, fs) -> Weights.scale_clusters w i fs
  | Map_row (i, f) -> Weights.map_row w i (fun _ _ v -> v *. f)
  | Blend (d, s, k) -> Weights.blend w ~dst:d ~src:s ~keep:k
  | Normalize i -> Weights.normalize w i
  | Normalize_all -> Weights.normalize_all w

let run_ops impl ops =
  let w = Weights.create_with ~impl ~n:pn ~nc:pnc ~nt:pnt in
  List.iter (apply_op w) ops;
  w

(* ISSUE invariants, checked directly (not only via check_invariants):
   rows sum to 1 within 1e-9, entries in [0,1], and each cached
   marginal equals its freshly recomputed sum. *)
let holds_invariants w =
  let ok = ref true in
  for i = 0 to pn - 1 do
    let row_sum = ref 0.0 in
    for c = 0 to pnc - 1 do
      let csum = ref 0.0 in
      for t = 0 to pnt - 1 do
        let v = Weights.get w i c t in
        if not (v >= 0.0 && v <= 1.0 +. 1e-9) then ok := false;
        csum := !csum +. v;
        row_sum := !row_sum +. v
      done;
      if Float.abs (!csum -. Weights.cluster_weight w i c) > 1e-9 then ok := false
    done;
    for t = 0 to pnt - 1 do
      let tsum = ref 0.0 in
      for c = 0 to pnc - 1 do
        tsum := !tsum +. Weights.get w i c t
      done;
      if Float.abs (!tsum -. Weights.time_weight w i t) > 1e-9 then ok := false
    done;
    if Float.abs (!row_sum -. 1.0) > 1e-9 then ok := false;
    if Float.abs (!row_sum -. Weights.row_total w i) > 1e-9 then ok := false
  done;
  !ok && ok_invariants w

let test_ops_invariants_qcheck impl =
  let prop =
    QCheck.Test.make ~count:300
      ~name:
        (Printf.sprintf "op sequences keep invariants (%s)" (Weights.impl_name impl))
      (QCheck.make ops_gen)
      (fun ops ->
        let w = run_ops impl ops in
        Weights.normalize_all w;
        holds_invariants w)
  in
  to_alcotest prop

(* The bit-compatibility contract at the unit level: both storages
   perform the same FP ops in the same order, so every entry, marginal
   and dirty flag must be *bit*-identical after any op sequence (no
   epsilon anywhere). *)
let test_ops_bit_compat_qcheck =
  let prop =
    QCheck.Test.make ~count:300 ~name:"flat = legacy, bit for bit"
      (QCheck.make ops_gen)
      (fun ops ->
        let wf = run_ops Weights.Flat ops in
        let wl = run_ops Weights.Legacy ops in
        let ok = ref true in
        for i = 0 to pn - 1 do
          if Weights.is_touched wf i <> Weights.is_touched wl i then ok := false;
          if Weights.row_total wf i <> Weights.row_total wl i then ok := false;
          if Weights.confidence wf i <> Weights.confidence wl i then ok := false;
          if Weights.preferred_cluster wf i <> Weights.preferred_cluster wl i then
            ok := false;
          if Weights.preferred_time wf i <> Weights.preferred_time wl i then
            ok := false;
          for c = 0 to pnc - 1 do
            if Weights.cluster_weight wf i c <> Weights.cluster_weight wl i c then
              ok := false;
            for t = 0 to pnt - 1 do
              if Weights.get wf i c t <> Weights.get wl i c t then ok := false
            done
          done;
          for t = 0 to pnt - 1 do
            if Weights.time_weight wf i t <> Weights.time_weight wl i t then
              ok := false
          done
        done;
        !ok)
  in
  to_alcotest prop

let test_ops_dirty_exact_qcheck =
  let prop =
    QCheck.Test.make ~count:300 ~name:"touched set = exactly the written rows"
      (QCheck.make ops_gen)
      (fun ops ->
        let w = Weights.create_with ~impl:Weights.Flat ~n:pn ~nc:pnc ~nt:pnt in
        let before = Weights.copy w in
        List.iter (apply_op w) ops;
        (* Every changed row must be flagged: an unflagged row must hold
           exactly its original bits (flagged-but-unchanged is fine — a
           write can overwrite a value with itself, e.g. add x then
           subtract nothing; the flag records intent-to-write that
           changed the row at some point). *)
        let ok = ref true in
        for i = 0 to pn - 1 do
          if not (Weights.is_touched w i) then
            for c = 0 to pnc - 1 do
              for t = 0 to pnt - 1 do
                if Weights.get w i c t <> Weights.get before i c t then ok := false
              done
            done
        done;
        !ok)
  in
  to_alcotest prop

(* qcheck: random edit sequences + normalize preserve invariants. *)
let edit_gen =
  QCheck.Gen.(
    list_size (int_bound 60)
      (tup4 (int_bound 3) (int_bound 2) (int_bound 4) (float_bound_inclusive 5.0)))

let test_random_edits_qcheck =
  let prop =
    QCheck.Test.make ~count:300 ~name:"edits + normalize keep invariants"
      (QCheck.make edit_gen)
      (fun edits ->
        let w = Weights.create ~n:4 ~nc:3 ~nt:5 in
        List.iter
          (fun (i, c, t, v) ->
            match (i + c + t) mod 3 with
            | 0 -> Weights.set w i c t v
            | 1 -> Weights.add w i c t v
            | _ -> Weights.scale w i c t v)
          edits;
        Weights.normalize_all w;
        match Weights.check_invariants w with Ok () -> true | Error _ -> false)
  in
  to_alcotest prop

let test_random_blends_qcheck =
  let gen = QCheck.Gen.(list_size (int_bound 40) (tup3 (int_bound 3) (int_bound 3) (float_bound_inclusive 1.0))) in
  let prop =
    QCheck.Test.make ~count:200 ~name:"blends keep invariants" (QCheck.make gen)
      (fun blends ->
        let w = Weights.create ~n:4 ~nc:2 ~nt:3 in
        List.iter (fun (d, s, keep) -> Weights.blend w ~dst:d ~src:s ~keep) blends;
        Weights.normalize_all w;
        match Weights.check_invariants w with Ok () -> true | Error _ -> false)
  in
  to_alcotest prop

let test_marginal_consistency_qcheck =
  let prop =
    QCheck.Test.make ~count:200 ~name:"preferred cluster maximizes marginal"
      (QCheck.make edit_gen)
      (fun edits ->
        let w = Weights.create ~n:4 ~nc:3 ~nt:5 in
        List.iter (fun (i, c, t, v) -> Weights.set w i c t v) edits;
        Weights.normalize_all w;
        let ok = ref true in
        for i = 0 to 3 do
          let p = Weights.preferred_cluster w i in
          for c = 0 to 2 do
            if Weights.cluster_weight w i c > Weights.cluster_weight w i p +. 1e-9 then
              ok := false
          done
        done;
        !ok)
  in
  to_alcotest prop

let () =
  Alcotest.run "cs_core.weights"
    [
      ( "weights",
        [
          Alcotest.test_case "create uniform" `Quick test_create_uniform;
          Alcotest.test_case "set updates marginals" `Quick test_set_updates_marginals;
          Alcotest.test_case "set rejects negative" `Quick test_set_rejects_negative;
          Alcotest.test_case "index bounds" `Quick test_index_bounds;
          Alcotest.test_case "scale cluster" `Quick test_scale_cluster;
          Alcotest.test_case "scale time" `Quick test_scale_time;
          Alcotest.test_case "normalize" `Quick test_normalize_restores_sum;
          Alcotest.test_case "normalize zero row" `Quick test_normalize_zero_row_resets_uniform;
          Alcotest.test_case "tie break" `Quick test_preferred_tie_break;
          Alcotest.test_case "runner-up" `Quick test_runnerup;
          Alcotest.test_case "confidence" `Quick test_confidence;
          Alcotest.test_case "confidence sentinel" `Quick test_confidence_sentinel;
          Alcotest.test_case "blend" `Quick test_blend;
          Alcotest.test_case "blend self noop" `Quick test_blend_self_noop;
          Alcotest.test_case "blend bad keep" `Quick test_blend_rejects_bad_keep;
          Alcotest.test_case "copy deep" `Quick test_copy_is_deep;
          Alcotest.test_case "blit restores" `Quick test_blit_restores;
          Alcotest.test_case "validate gate" `Quick test_validate_gate;
          Alcotest.test_case "snapshot" `Quick test_preferred_clusters_snapshot;
          Alcotest.test_case "cluster map render" `Quick test_pp_cluster_map;
        ] );
      ( "dirty",
        [
          Alcotest.test_case "fresh matrix untouched" `Quick test_fresh_matrix_untouched;
          Alcotest.test_case "marks written rows" `Quick
            test_touched_marks_exactly_written_rows;
          Alcotest.test_case "no-op writes stay clean" `Quick
            test_noop_writes_do_not_dirty;
          Alcotest.test_case "normalize touched" `Quick
            test_normalize_touched_only_touched;
          Alcotest.test_case "sync_rows restores" `Quick
            test_sync_rows_restores_exact_rows;
        ] );
      ( "properties",
        [
          test_random_edits_qcheck; test_random_blends_qcheck;
          test_marginal_consistency_qcheck;
          test_ops_invariants_qcheck Weights.Flat;
          test_ops_invariants_qcheck Weights.Legacy;
          test_ops_bit_compat_qcheck; test_ops_dirty_exact_qcheck;
        ] );
    ]
