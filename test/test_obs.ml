(* Tests for the observability layer: disabled-sink no-ops, span
   nesting, export well-formedness, clock monotonicity, and determinism
   of the convergence telemetry. *)

open Cs_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_sink f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) f

(* --- disabled sink --- *)

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  let r =
    Obs.span "outer" (fun () ->
        Obs.instant "i";
        Obs.counter "c" [ ("v", 1.0) ];
        Obs.begin_span "manual";
        Obs.end_span "manual";
        42)
  in
  check_int "span returns f ()" 42 r;
  check_int "nothing recorded" 0 (List.length (Obs.events ()));
  check_bool "still disabled" false (Obs.enabled ())

(* --- spans --- *)

let test_span_nesting_balances () =
  with_sink (fun () ->
      Obs.begin_span "outer";
      Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.begin_span "deep";
      Obs.end_span "deep";
      Obs.end_span "outer";
      let evs = Obs.events () in
      let count p = List.length (List.filter p evs) in
      check_int "begins match ends"
        (count (fun e -> e.Obs.ph = Obs.Begin))
        (count (fun e -> e.Obs.ph = Obs.End));
      (* the functional span is contained in the manual outer one *)
      let ts_of name ph =
        (List.find (fun e -> e.Obs.name = name && e.Obs.ph = ph) evs).Obs.ts
      in
      let inner =
        List.find
          (fun e -> match e.Obs.ph with Obs.Complete _ -> e.Obs.name = "inner" | _ -> false)
          evs
      in
      let inner_dur = match inner.Obs.ph with Obs.Complete d -> d | _ -> 0.0 in
      check_bool "inner starts after outer begins" true (inner.Obs.ts >= ts_of "outer" Obs.Begin);
      check_bool "inner ends before outer ends" true
        (inner.Obs.ts +. inner_dur <= ts_of "outer" Obs.End);
      check_bool "duration non-negative" true (inner_dur >= 0.0))

let test_span_records_on_exception () =
  with_sink (fun () ->
      (try Obs.span "boom" (fun () -> failwith "no") with Failure _ -> ());
      check_int "span recorded despite raise" 1 (List.length (Obs.events ())))

let test_events_drains () =
  with_sink (fun () ->
      Obs.instant "a";
      Obs.instant "b";
      check_int "first drain sees both" 2 (List.length (Obs.events ()));
      check_int "second drain is empty" 0 (List.length (Obs.events ()));
      Obs.instant "c";
      check_int "recording resumes after drain" 1 (List.length (Obs.events ())))

let test_events_preserve_recording_order () =
  with_sink (fun () ->
      for i = 1 to 100 do
        Obs.instant (string_of_int i)
      done;
      let names = List.map (fun e -> e.Obs.name) (Obs.events ()) in
      check_bool "drained in recording order" true
        (names = List.init 100 (fun i -> string_of_int (i + 1))))

let test_bounded_capacity_counts_drops () =
  let saved = Obs.capacity () in
  Obs.reset ();
  Obs.set_capacity 100;
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_capacity saved)
    (fun () ->
      for _ = 1 to 250 do
        Obs.instant "tick"
      done;
      check_int "kept at most capacity" 100 (List.length (Obs.events ()));
      check_int "excess counted as dropped" 150 (Obs.dropped ());
      Obs.reset ();
      check_int "reset clears the drop counter" 0 (Obs.dropped ()))

let test_multi_domain_recording_loses_nothing () =
  with_sink (fun () ->
      let per_domain = 2_000 in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  Obs.instant ~args:[ ("i", Obs.Int i) ] (Printf.sprintf "d%d" d)
                done))
      in
      List.iter Domain.join domains;
      let evs = Obs.events () in
      check_int "every domain's events captured" (4 * per_domain) (List.length evs);
      (* within one domain, recording order is preserved by the merge *)
      let d0 =
        List.filter_map
          (fun e ->
            if e.Obs.name = "d0" then
              match e.Obs.args with [ ("i", Obs.Int i) ] -> Some i | _ -> None
            else None)
          evs
      in
      check_bool "per-domain order intact" true
        (d0 = List.init per_domain (fun i -> i + 1)))

(* --- export --- *)

let sample_events () =
  with_sink (fun () ->
      Obs.span ~cat:"pass" ~args:[ ("round", Obs.Int 1) ] "PLACE" (fun () -> ());
      Obs.instant ~cat:"misc" ~args:[ ("note", Obs.Str "quo\"te\nline") ] "marker";
      Obs.counter ~cat:"converge" "converge:PLACE"
        [ ("churn", 3.0); ("mean_entropy", 1.25) ];
      Obs.events ())

let test_jsonl_well_formed () =
  let out = Export.jsonl (sample_events ()) in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  check_int "one line per event" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
        check_bool "has name" true (List.mem_assoc "name" fields);
        check_bool "has ts" true (List.mem_assoc "ts" fields);
        check_bool "has ph" true (List.mem_assoc "ph" fields)
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.fail ("unparseable line: " ^ e))
    lines

let test_chrome_well_formed () =
  let evs = sample_events () in
  match Json.of_string (Export.chrome evs) with
  | Error e -> Alcotest.fail ("unparseable document: " ^ e)
  | Ok doc ->
    (match Json.member "traceEvents" doc with
    | Some (Json.List items) ->
      let metas, events =
        List.partition (fun i -> Json.member "ph" i = Some (Json.Str "M")) items
      in
      check_int "every event exported" (List.length evs) (List.length events);
      check_int "one process_name lane record" 1 (List.length metas);
      List.iter
        (fun item ->
          List.iter
            (fun key -> check_bool key true (Json.member key item <> None))
            [ "name"; "ph"; "ts"; "pid"; "tid" ];
          match Json.member "ph" item with
          | Some (Json.Str "X") ->
            check_bool "X has dur" true (Json.member "dur" item <> None)
          | _ -> ())
        events
    | _ -> Alcotest.fail "traceEvents missing")

let test_json_roundtrip_escapes () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd\te\r\x01");
        ("n", Json.Num 1.5);
        ("i", Json.Num 12345.0);
        ("l", Json.List [ Json.Bool true; Json.Null ]) ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> check_bool "roundtrips" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_nonfinite_is_null () =
  check_bool "inf -> null" true (Json.to_string (Json.Num infinity) = "null");
  check_bool "nan -> null" true (Json.to_string (Json.Num Float.nan) = "null")

(* --- clock --- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Clock.now () in
    check_bool "non-decreasing" true (t >= !prev);
    prev := t
  done;
  check_bool "since non-negative" true (Clock.since !prev >= 0.0)

(* --- convergence telemetry --- *)

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()

let jacobi4 =
  (Option.get (Cs_workloads.Suite.find "jacobi")).Cs_workloads.Suite.generate ~clusters:4 ()

let converge_series () =
  with_sink (fun () ->
      ignore
        (Cs_core.Driver.run_iterative ~seed:7 ~max_rounds:2 ~epsilon:0.0 ~machine:vliw4
           jacobi4
           (Cs_core.Sequence.vliw_default ()));
      List.filter_map
        (fun e ->
          if e.Obs.cat = "converge" then
            Some
              ( e.Obs.name,
                List.map
                  (fun (k, v) ->
                    (k, match v with Obs.Float f -> f | _ -> Float.nan))
                  e.Obs.args )
          else None)
        (Obs.events ()))

let test_convergence_metrics_deterministic () =
  let a = converge_series () in
  let b = converge_series () in
  check_int "per-pass metrics for every pass of every round"
    (2 * (List.length (Cs_core.Sequence.vliw_default ()) + 1))
    (List.length a);
  check_bool "identical across runs" true (a = b);
  List.iter
    (fun (name, args) ->
      if name <> "converge:round" then begin
        check_bool (name ^ " has churn") true (List.mem_assoc "churn" args);
        check_bool (name ^ " has confidence") true (List.mem_assoc "mean_confidence" args);
        check_bool (name ^ " has entropy") true (List.mem_assoc "mean_entropy" args);
        check_bool (name ^ " confidence finite") true
          (Float.is_finite (List.assoc "mean_confidence" args))
      end)
    a

let test_telemetry_entropy_bounds () =
  let w = Cs_core.Weights.create ~n:8 ~nc:4 ~nt:3 in
  let h = Cs_core.Telemetry.mean_row_entropy w in
  check_bool "uniform rows have log2 nc bits" true (Float.abs (h -. 2.0) < 1e-9);
  for i = 0 to 7 do
    Cs_core.Weights.scale_cluster w i 0 1000.0
  done;
  Cs_core.Weights.normalize_all w;
  check_bool "sharpened rows lose entropy" true (Cs_core.Telemetry.mean_row_entropy w < 2.0)

let () =
  Alcotest.run "cs_obs"
    [
      ( "sink",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "span nesting balances" `Quick test_span_nesting_balances;
          Alcotest.test_case "span survives exceptions" `Quick test_span_records_on_exception;
          Alcotest.test_case "events() drains" `Quick test_events_drains;
          Alcotest.test_case "drain preserves order" `Quick
            test_events_preserve_recording_order;
          Alcotest.test_case "bounded capacity counts drops" `Quick
            test_bounded_capacity_counts_drops;
          Alcotest.test_case "multi-domain loses nothing" `Quick
            test_multi_domain_recording_loses_nothing;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl_well_formed;
          Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_well_formed;
          Alcotest.test_case "json escape roundtrip" `Quick test_json_roundtrip_escapes;
          Alcotest.test_case "non-finite numbers" `Quick test_json_nonfinite_is_null;
        ] );
      ( "clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "telemetry",
        [
          Alcotest.test_case "deterministic for fixed seed" `Quick
            test_convergence_metrics_deterministic;
          Alcotest.test_case "entropy bounds" `Quick test_telemetry_entropy_bounds;
        ] );
    ]
