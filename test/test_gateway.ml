(* Gateway fleet tests: consistent-hash rebalance bounds, LRU cache
   accounting, health eviction/re-admission, dispatch policies, canonical
   scenario hashing (collision sweep + round-trip stability + repro
   fingerprint), and an in-process gateway + 2 shards over loopback TCP
   with a mid-batch shard kill — zero lost, zero duplicated jobs. *)

module Ring = Cs_gateway.Ring
module Cache = Cs_gateway.Cache
module Health = Cs_gateway.Health
module Policy = Cs_gateway.Policy
module Breaker = Cs_gateway.Breaker
module Journal = Cs_gateway.Journal
module Gateway = Cs_gateway.Gateway
module Proto = Cs_svc.Proto
module Transport = Cs_svc.Transport

(* --- consistent-hash ring ------------------------------------------ *)

let key_of i = Cs_core.Scenario.fnv1a (Printf.sprintf "key-%d" i)

let test_ring_route_stable () =
  let ring = Ring.make [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check (list string)) "shards" [ "a"; "b"; "c"; "d" ] (Ring.shards ring);
  for i = 0 to 99 do
    let k = key_of i in
    (match Ring.candidates ring k with
    | first :: rest ->
      Alcotest.(check (option string)) "route = first candidate" (Some first)
        (Ring.route ring k);
      Alcotest.(check int) "candidates cover every shard" 3 (List.length rest)
    | [] -> Alcotest.fail "no candidates");
    Alcotest.(check (option string)) "routing is deterministic"
      (Ring.route ring k) (Ring.route ring k)
  done

let test_ring_rebalance_bound () =
  let n_keys = 2000 in
  let shards = [ "a"; "b"; "c"; "d" ] in
  let ring = Ring.make shards in
  let before = Array.init n_keys (fun i -> Option.get (Ring.route ring (key_of i))) in
  let removed = "c" in
  let ring' = Ring.remove ring removed in
  let moved = ref 0 and owned = ref 0 in
  Array.iteri
    (fun i owner ->
      let owner' = Option.get (Ring.route ring' (key_of i)) in
      if owner = removed then begin
        incr owned;
        Alcotest.(check bool) "moved key lands on a survivor" true (owner' <> removed)
      end
      else
        (* the defining property: only the dead shard's keys move *)
        Alcotest.(check string) "surviving keys keep their shard" owner owner';
      if owner' <> owner then incr moved)
    before;
  Alcotest.(check int) "exactly the dead shard's keys move" !owned !moved;
  let share = float_of_int !moved /. float_of_int n_keys in
  Alcotest.(check bool)
    (Printf.sprintf "moved share %.3f within 2x of K/N" share)
    true
    (share > 0.05 && share < 2.0 /. float_of_int (List.length shards))

(* --- LRU cache ----------------------------------------------------- *)

let test_cache_lru_accounting () =
  let c = Cache.create ~capacity:2 in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  Cache.put c "c" 3;
  (* "b" was least recently used ("a" was promoted by the hit) *)
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 3 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "size" 2 s.Cache.size

(* --- health -------------------------------------------------------- *)

let test_health_evict_and_readmit () =
  let backoff =
    { Cs_svc.Retry.default with base_delay_s = 0.05; multiplier = 2.0; jitter = 0.0 }
  in
  let h = Health.create ~fail_threshold:2 ~backoff [ "s1"; "s2" ] in
  Alcotest.(check bool) "starts usable" true (Health.usable h "s1");
  Health.note_failure h "s1";
  (match Health.state h "s1" with
  | Health.Suspect 1 -> ()
  | _ -> Alcotest.fail "one failure should be Suspect 1");
  Alcotest.(check bool) "suspect still usable" true (Health.usable h "s1");
  Health.note_failure h "s1";
  (match Health.state h "s1" with
  | Health.Dead _ -> ()
  | _ -> Alcotest.fail "threshold failures should bury the shard");
  Alcotest.(check bool) "dead not usable" false (Health.usable h "s1");
  Alcotest.(check bool) "no probe before backoff" false (Health.probe_due h "s1");
  Unix.sleepf 0.06;
  Alcotest.(check bool) "probe due after backoff" true (Health.probe_due h "s1");
  Alcotest.(check bool) "probation slot handed out once" false (Health.probe_due h "s1");
  Health.note_failure h "s1";
  (match Health.state h "s1" with
  | Health.Dead { attempt = 2; _ } -> ()
  | _ -> Alcotest.fail "failed probe should take the next backoff step");
  Unix.sleepf 0.11;
  Alcotest.(check bool) "second probe due" true (Health.probe_due h "s1");
  Health.note_ok h "s1";
  Alcotest.(check bool) "re-admitted" true (Health.usable h "s1");
  Alcotest.(check (list string)) "alive filters" [ "s1"; "s2" ]
    (Health.alive h [ "s1"; "s2" ]);
  Alcotest.(check bool) "unknown shards read healthy" true (Health.usable h "s3")

let test_health_backoff_capped () =
  (* an aggressive multiplier would park attempt 4 at 0.05 * 8^3 =
     25.6 s; the cap must clamp every step so a returning shard is
     re-probed within max_delay_s no matter how deep the burial *)
  let backoff =
    { Cs_svc.Retry.default with
      base_delay_s = 0.05; multiplier = 8.0; jitter = 0.0; max_attempts = 8 }
  in
  let cap = 0.1 in
  let h = Health.create ~fail_threshold:1 ~backoff ~max_delay_s:cap [ "s1" ] in
  Health.note_failure h "s1";
  for burial = 1 to 5 do
    (match Health.state h "s1" with
    | Health.Dead { retry_at; attempt; _ } ->
      Alcotest.(check int) "attempt advances" burial attempt;
      let delay = retry_at -. Cs_obs.Clock.now () in
      Alcotest.(check bool)
        (Printf.sprintf "burial %d delay %.3fs within cap" burial delay)
        true
        (delay <= cap +. 0.02)
    | _ -> Alcotest.fail "shard should be dead");
    Unix.sleepf (cap +. 0.03);
    Alcotest.(check bool)
      (Printf.sprintf "probe due within the cap after burial %d" burial)
      true (Health.probe_due h "s1");
    (* failed probe: next (deeper) backoff step, still capped *)
    Health.note_failure h "s1"
  done

(* --- circuit breaker ----------------------------------------------- *)

let breaker_settings =
  { Breaker.window = 8; min_calls = 4; failure_rate = 0.5; slow_ms = 10.0;
    cooldown_s = 0.05; half_open_probes = 1 }

let test_breaker_trips_on_failure_rate () =
  let transitions = ref [] in
  let b =
    Breaker.create ~settings:breaker_settings
      ~on_transition:(fun ~shard:_ ~to_ -> transitions := to_ :: !transitions)
      [ "s1"; "s2" ]
  in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b "s1");
  for _ = 1 to 3 do
    Breaker.record b "s1" ~ok:false ~elapsed_ms:0.0
  done;
  (* 3 failures but min_calls is 4: the rate is not judged yet *)
  Alcotest.(check bool) "below min_calls stays closed" true
    (Breaker.state b "s1" = Breaker.Closed);
  Breaker.record b "s1" ~ok:false ~elapsed_ms:0.0;
  Alcotest.(check bool) "trips at min_calls + rate" true
    (Breaker.state b "s1" = Breaker.Open);
  Alcotest.(check bool) "open refuses" false (Breaker.allow b "s1");
  Alcotest.(check bool) "other shard unaffected" true (Breaker.allow b "s2");
  Alcotest.(check int) "tripped gauge" 1 (Breaker.open_count b);
  (* cooldown -> half-open: exactly one probe slot *)
  Unix.sleepf 0.06;
  Alcotest.(check bool) "cooldown grants a probe" true (Breaker.allow b "s1");
  Alcotest.(check bool) "half-open" true (Breaker.state b "s1" = Breaker.Half_open);
  Alcotest.(check bool) "no second probe" false (Breaker.allow b "s1");
  Breaker.record b "s1" ~ok:true ~elapsed_ms:1.0;
  Alcotest.(check bool) "good probe closes" true
    (Breaker.state b "s1" = Breaker.Closed);
  Alcotest.(check bool) "closed again allows" true (Breaker.allow b "s1");
  Alcotest.(check (list string)) "transition trail"
    [ "closed"; "half-open"; "open" ] !transitions

let test_breaker_slow_calls_and_failed_probe () =
  let b = Breaker.create ~settings:breaker_settings [ "s1" ] in
  (* nominally-successful calls above slow_ms count toward the rate *)
  for _ = 1 to 4 do
    Breaker.record b "s1" ~ok:true ~elapsed_ms:50.0
  done;
  Alcotest.(check bool) "slow calls trip the breaker" true
    (Breaker.state b "s1" = Breaker.Open);
  Unix.sleepf 0.06;
  Alcotest.(check bool) "probe granted" true (Breaker.allow b "s1");
  Breaker.record b "s1" ~ok:false ~elapsed_ms:0.0;
  Alcotest.(check bool) "failed probe re-opens" true
    (Breaker.state b "s1" = Breaker.Open);
  Alcotest.(check bool) "re-opened refuses" false (Breaker.allow b "s1")

(* --- durable journal ----------------------------------------------- *)

let journal_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cs_journal_%s_%d_%d" name (Unix.getpid ()) !n)

let test_journal_recovery_and_dedup () =
  let dir = journal_dir "unit" in
  let req = Proto.request ~id:"a" ~idem_key:"retry-a" ~machine:"raw4" "fir" in
  let j = Journal.open_dir ~dir ~recover:false () in
  Journal.admit j ~key:"K1" req;
  Alcotest.(check int) "admit counts as lag" 1 (Journal.lag j);
  Alcotest.(check bool) "not completed yet" true (Journal.completed j "K1" = None);
  Journal.close j;
  (* crash before the done record: recovery must replay the admit *)
  let j2 = Journal.open_dir ~dir ~recover:true () in
  (match Journal.pending j2 with
  | [ (key, req') ] ->
    Alcotest.(check string) "pending key" "K1" key;
    Alcotest.(check string) "request survives the log" req.Proto.id req'.Proto.id;
    Alcotest.(check (option string)) "idem key survives the log"
      req.Proto.idem_key req'.Proto.idem_key
  | l -> Alcotest.failf "expected one pending job, got %d" (List.length l));
  let reply =
    Proto.reply ~id:"a" ~elapsed_ms:2.0
      (Proto.Scheduled
         { cycles = 17; transfers = 3; rung = "requested"; timed_out = false;
           quarantined = 0 })
  in
  Journal.mark_done j2 ~key:"K1" reply;
  Alcotest.(check int) "done clears lag" 0 (Journal.lag j2);
  Journal.close j2;
  (* after the done record, recovery feeds the dedup map instead *)
  let j3 = Journal.open_dir ~dir ~recover:true () in
  Alcotest.(check int) "nothing pending" 0 (List.length (Journal.pending j3));
  (match Journal.completed j3 "K1" with
  | Some r -> Alcotest.(check bool) "verdict preserved" true (r.Proto.verdict = reply.Proto.verdict)
  | None -> Alcotest.fail "done key must be in the dedup map");
  Journal.close j3;
  (* recover:false is an explicit fresh start *)
  let j4 = Journal.open_dir ~dir ~recover:false () in
  Alcotest.(check bool) "journal discarded without recover" true
    (Journal.completed j4 "K1" = None);
  Journal.close j4

(* --- dispatch policy ----------------------------------------------- *)

let test_policy_orderings () =
  let ring = Ring.make [ "a"; "b"; "c" ] in
  let key = key_of 7 in
  let views depths_ewmas =
    List.map
      (fun (name, queue_depth, ewma_ms) -> { Policy.name; queue_depth; ewma_ms })
      depths_ewmas
  in
  let all = views [ ("a", 5, 100.0); ("b", 0, 100.0); ("c", 2, 100.0) ] in
  Alcotest.(check (list string)) "hash = ring order"
    (Ring.candidates ring key)
    (Policy.order Policy.Hash ~ring ~key ~deadline_ms:None all);
  (match Policy.order Policy.Least_loaded ~ring ~key ~deadline_ms:None all with
  | first :: _ -> Alcotest.(check string) "least-loaded picks empty queue" "b" first
  | [] -> Alcotest.fail "no candidates");
  (* WCT: a fast shard with a short queue beats a slow shard, and a
     deadline deprioritizes shards predicted to miss it. *)
  let skewed = views [ ("a", 0, 1000.0); ("b", 2, 10.0); ("c", 9, 10.0) ] in
  (match Policy.order Policy.Weighted_completion_time ~ring ~key ~deadline_ms:(Some 50.0) skewed with
  | first :: _ -> Alcotest.(check string) "wct prefers predicted-to-make shard" "b" first
  | [] -> Alcotest.fail "no candidates");
  Alcotest.(check int) "policies permute, never drop" 3
    (List.length (Policy.order Policy.Weighted_completion_time ~ring ~key ~deadline_ms:None all))

(* --- canonical scenario hash --------------------------------------- *)

let scenario_hash (sc : Cs_check.Scenario.t) =
  Cs_core.Scenario.canonical_hash ~faults:sc.Cs_check.Scenario.faults
    ~spec:(Cs_check.Scenario.spec_to_string sc.Cs_check.Scenario.spec)
    ~machine:sc.Cs_check.Scenario.machine sc.Cs_check.Scenario.region

let scenario_form (sc : Cs_check.Scenario.t) =
  Cs_core.Scenario.canonical_form ~faults:sc.Cs_check.Scenario.faults
    ~spec:(Cs_check.Scenario.spec_to_string sc.Cs_check.Scenario.spec)
    ~machine:sc.Cs_check.Scenario.machine sc.Cs_check.Scenario.region

let test_hash_collision_sweep () =
  (* Sweep the fuzz generator's seed space: distinct canonical forms must
     hash distinctly. (Equal forms — the generator's space is finite —
     are legitimately equal scenarios, not collisions.) *)
  let seen = Hashtbl.create 256 in
  let distinct = ref 0 in
  for seed = 0 to 149 do
    let sc = Cs_check.Gen.case ~seed in
    let form = scenario_form sc in
    let h = scenario_hash sc in
    match Hashtbl.find_opt seen h with
    | None ->
      Hashtbl.replace seen h form;
      incr distinct
    | Some prior ->
      if not (String.equal prior form) then
        Alcotest.failf "hash collision at seed %d: %Lx" seed h
  done;
  Alcotest.(check bool) "sweep exercised many distinct scenarios" true (!distinct > 100)

let test_hash_roundtrip_stable () =
  (* The hash must survive serialize/parse: Textual.of_string renumbers
     registers, so this exercises the renaming-invariant canonical
     form. *)
  for seed = 0 to 19 do
    let sc = Cs_check.Gen.case ~seed in
    let region = sc.Cs_check.Scenario.region in
    match Cs_ddg.Textual.of_string (Cs_ddg.Textual.to_string region) with
    | Error e -> Alcotest.failf "seed %d: reparse failed: %s" seed e
    | Ok region' ->
      let machine = sc.Cs_check.Scenario.machine in
      Alcotest.(check string)
        (Printf.sprintf "seed %d hash stable across round trip" seed)
        (Cs_core.Scenario.hex (Cs_core.Scenario.canonical_hash ~machine region))
        (Cs_core.Scenario.hex (Cs_core.Scenario.canonical_hash ~machine region'))
  done

let test_repro_fingerprint () =
  let sc = Cs_check.Gen.case ~seed:5 in
  let t = { Cs_check.Repro.scenario = sc; check = Some "validator"; note = None } in
  let text = Cs_check.Repro.to_string t in
  Alcotest.(check bool) "fingerprint header present" true
    (List.exists
       (fun l -> String.length l > 12 && String.sub l 0 12 = "fingerprint ")
       (String.split_on_char '\n' text));
  (match Cs_check.Repro.of_string text with
  | Ok t' ->
    Alcotest.(check string) "round-trips with fingerprint"
      (Cs_check.Repro.fingerprint sc)
      (Cs_check.Repro.fingerprint t'.Cs_check.Repro.scenario)
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (* Tamper with a hashed field: the load must be rejected. *)
  let tampered =
    String.concat "\n"
      (List.map
         (fun l ->
           if String.length l > 5 && String.sub l 0 5 = "seed " then "seed 424242"
           else l)
         (String.split_on_char '\n' text))
  in
  match Cs_check.Repro.of_string tampered with
  | Error e ->
    Alcotest.(check bool) "error names the fingerprint" true
      (String.length e >= 11 && String.sub e 0 11 = "fingerprint")
  | Ok _ -> Alcotest.fail "tampered repro must be rejected"

(* --- transport + pong codecs --------------------------------------- *)

let test_transport_parse () =
  (match Transport.parse "127.0.0.1:7100" with
  | Ok (Transport.Tcp { host = "127.0.0.1"; port = 7100 }) -> ()
  | _ -> Alcotest.fail "host:port should parse as TCP");
  (match Transport.parse ":7100" with
  | Ok (Transport.Tcp { host = ""; port = 7100 }) -> ()
  | _ -> Alcotest.fail ":port should parse as TCP on all interfaces");
  (match Transport.parse "/tmp/x.sock" with
  | Ok (Transport.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "path should parse as Unix socket");
  (match Transport.parse "host:notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric port must error");
  (match Transport.parse "host:70000" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range port must error");
  (match Transport.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty address must error");
  List.iter
    (fun s ->
      match Transport.parse s with
      | Ok addr -> Alcotest.(check string) "to_string round trip" s (Transport.to_string addr)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    [ "127.0.0.1:7100"; "/tmp/csched.sock" ]

let test_pong_roundtrip () =
  let s =
    { Proto.queue_depth = 4; workers = 2; busy = 1; admitted = 10; completed = 7;
      shed = 2; refusals = 1;
      extra = [ ("cache_hits", 5.0); ("shards_alive", 2.0) ] }
  in
  match Proto.pong_of_line (Proto.pong_to_line ~id:"probe" s) with
  | Error e -> Alcotest.failf "pong round trip failed: %s" e
  | Ok (id, s') ->
    Alcotest.(check string) "id" "probe" id;
    Alcotest.(check int) "queue_depth" s.Proto.queue_depth s'.Proto.queue_depth;
    Alcotest.(check int) "busy" s.Proto.busy s'.Proto.busy;
    let sorted l = List.sort compare l in
    Alcotest.(check (list (pair string (float 0.0)))) "extra round-trips"
      (sorted s.Proto.extra) (sorted s'.Proto.extra)

(* --- in-process fleet ---------------------------------------------- *)

let with_server ?chaos_slow_ms ?(workers = 2) spec f =
  let cfg = Cs_svc.Server.config ~workers ?chaos_slow_ms spec in
  let server = Cs_svc.Server.create cfg in
  let d = Domain.spawn (fun () -> Cs_svc.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Cs_svc.Server.stop server;
      Domain.join d)
    (fun () -> f server)

let with_gateway cfg f =
  let gw = Gateway.create cfg in
  let d = Domain.spawn (fun () -> Gateway.run gw) in
  Fun.protect
    ~finally:(fun () ->
      Gateway.stop gw;
      Domain.join d)
    (fun () -> f gw)

let shard_spec server = Transport.to_string (Cs_svc.Server.address server)

let test_gateway_journal_exactly_once_across_restart () =
  with_server "127.0.0.1:0" @@ fun s1 ->
  let dir = journal_dir "e2e" in
  let cfg recover =
    Gateway.config ~forwarders:2 ~probe_period_s:0.2 ~journal_dir:dir ~recover
      ~shards:[ shard_spec s1 ] "127.0.0.1:0"
  in
  let jobs =
    List.init 4 (fun i ->
        Proto.request
          ~id:(Printf.sprintf "job-%d" i)
          ~idem_key:(Printf.sprintf "key-%d" i)
          ~machine:"raw4" ~seed:i "fir")
  in
  let cycles_of replies =
    List.map
      (fun r ->
        match r.Proto.verdict with
        | Proto.Scheduled { cycles; _ } -> (r.Proto.reply_id, cycles)
        | Proto.Refused e ->
          Alcotest.failf "job %s refused: %s" r.Proto.reply_id e.message)
      (List.sort (fun a b -> compare a.Proto.reply_id b.Proto.reply_id) replies)
  in
  let first =
    with_gateway (cfg false) @@ fun gw ->
    match Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Gateway.address gw) jobs with
    | Error e -> Alcotest.failf "first submit failed: %s" e
    | Ok replies -> cycles_of replies
  in
  (* a new gateway over the same journal dir = restart with --recover;
     the same idempotency keys must be answered from the journal with
     the identical verdicts, no shard hop *)
  with_gateway (cfg true) @@ fun gw2 ->
  match Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Gateway.address gw2) jobs with
  | Error e -> Alcotest.failf "post-recovery submit failed: %s" e
  | Ok replies ->
    Alcotest.(check (list (pair string int))) "verdicts identical across restart"
      first (cycles_of replies);
    List.iter
      (fun r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s served from the journal" r.Proto.reply_id)
          true r.Proto.cached)
      replies;
    let st = Gateway.stats gw2 in
    Alcotest.(check int) "every retry was a journal hit" (List.length jobs)
      st.Gateway.journal_hits;
    Alcotest.(check int) "no job re-dispatched to a shard" 0 st.Gateway.forwarded;
    Alcotest.(check int) "journal fully drained" 0 st.Gateway.journal_pending

let test_gateway_cache_accounting () =
  with_server "127.0.0.1:0" @@ fun s1 ->
  let cfg =
    Gateway.config ~cache_capacity:16 ~forwarders:2 ~probe_period_s:0.2
      ~shards:[ shard_spec s1 ] "127.0.0.1:0"
  in
  with_gateway cfg @@ fun gw ->
  let addr = Gateway.address gw in
  let jobs =
    List.init 3 (fun i ->
        Proto.request ~id:(Printf.sprintf "w%d" i) ~machine:"raw4" ~seed:i "fir")
  in
  (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr jobs with
  | Error e -> Alcotest.failf "warm wave failed: %s" e
  | Ok replies ->
    Alcotest.(check int) "warm wave answered" 3 (List.length replies);
    List.iter
      (fun r -> Alcotest.(check bool) "warm wave not cached" false r.Proto.cached)
      replies);
  (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr jobs with
  | Error e -> Alcotest.failf "repeat wave failed: %s" e
  | Ok replies ->
    Alcotest.(check int) "repeat wave answered" 3 (List.length replies);
    List.iter
      (fun r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s served from cache" r.Proto.reply_id)
          true r.Proto.cached;
        match r.Proto.verdict with
        | Proto.Scheduled s -> Alcotest.(check bool) "real schedule" true (s.cycles > 0)
        | Proto.Refused e -> Alcotest.failf "cached job refused: %s" e.message)
      replies);
  let st = Gateway.stats gw in
  Alcotest.(check int) "3 hits" 3 st.Gateway.cache_hits;
  Alcotest.(check int) "3 misses" 3 st.Gateway.cache_misses;
  Alcotest.(check int) "only the misses hit a shard" 3 st.Gateway.forwarded;
  (* refusals are never cached: an impossible deadline on a fresh
     scenario misses twice and leaves the cache untouched *)
  let doomed i =
    [ Proto.request ~id:(Printf.sprintf "d%d" i) ~machine:"raw4" ~seed:77
        ~deadline_ms:0.0 "fir" ]
  in
  (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr (doomed 0) with
  | Ok [ r ] -> (
    match r.Proto.verdict with
    | Proto.Refused e -> Alcotest.(check string) "typed refusal" "deadline-exceeded" e.kind
    | _ -> Alcotest.fail "impossible deadline must refuse")
  | Ok _ | Error _ -> Alcotest.fail "doomed job must get one reply");
  (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr (doomed 1) with
  | Ok [ r ] -> Alcotest.(check bool) "refusal was not cached" false r.Proto.cached
  | Ok _ | Error _ -> Alcotest.fail "doomed job must get one reply");
  let st = Gateway.stats gw in
  Alcotest.(check int) "refusal wave added two misses" 5 st.Gateway.cache_misses;
  Alcotest.(check int) "refusal wave added no hits" 3 st.Gateway.cache_hits

let test_gateway_failover_exactly_once () =
  (* 2 shards on loopback TCP, every job slowed so the batch is still in
     flight when one shard is SIGKILL-equivalently severed mid-batch:
     every job must be answered exactly once, the in-flight jobs of the
     dead shard replayed on the survivor. *)
  with_server ~chaos_slow_ms:250.0 "127.0.0.1:0" @@ fun s1 ->
  with_server ~chaos_slow_ms:250.0 "127.0.0.1:0" @@ fun s2 ->
  let cfg =
    Gateway.config ~forwarders:4 ~probe_period_s:0.15
      ~shards:[ shard_spec s1; shard_spec s2 ]
      "127.0.0.1:0"
  in
  with_gateway cfg @@ fun gw ->
  let n_jobs = 8 in
  let jobs =
    List.init n_jobs (fun i ->
        Proto.request ~id:(Printf.sprintf "job%d" i) ~machine:"raw4" ~seed:i "fir")
  in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.12;
        (* kill whichever shard actually holds jobs *)
        let victim =
          if (Cs_svc.Server.stats s1).Cs_svc.Server.admitted > 0 then s1 else s2
        in
        Cs_svc.Server.abort victim;
        Transport.to_string (Cs_svc.Server.address victim))
  in
  let replies =
    match Cs_svc.Client.submit ~timeout_s:120.0 ~addr:(Gateway.address gw) jobs with
    | Error e -> Alcotest.failf "submit through gateway failed: %s" e
    | Ok replies -> replies
  in
  let victim_name = Domain.join killer in
  Alcotest.(check int) "zero lost jobs" n_jobs (List.length replies);
  List.iter
    (fun (job : Proto.request) ->
      let matching =
        List.filter (fun r -> r.Proto.reply_id = job.Proto.id) replies
      in
      Alcotest.(check int)
        (Printf.sprintf "%s answered exactly once" job.Proto.id)
        1 (List.length matching);
      match (List.hd matching).Proto.verdict with
      | Proto.Scheduled s ->
        Alcotest.(check bool) "replayed job got a real schedule" true (s.cycles > 0)
      | Proto.Refused e ->
        Alcotest.failf "%s refused after failover: %s %s" job.Proto.id e.kind e.message)
    jobs;
  let st = Gateway.stats gw in
  Alcotest.(check bool)
    (Printf.sprintf "in-flight jobs were replayed (%d)" st.Gateway.replayed)
    true (st.Gateway.replayed >= 1);
  (match List.assoc_opt victim_name (Gateway.shard_states gw) with
  | Some Health.Healthy -> Alcotest.fail "dead shard still marked healthy"
  | Some _ -> ()
  | None -> Alcotest.fail "victim missing from health table");
  (* the fleet keeps serving on the survivor *)
  match
    Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Gateway.address gw)
      [ Proto.request ~id:"after" ~machine:"raw4" ~seed:99 "fir" ]
  with
  | Ok [ r ] -> (
    match r.Proto.verdict with
    | Proto.Scheduled _ -> ()
    | Proto.Refused e -> Alcotest.failf "post-failover job refused: %s" e.message)
  | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)
  | Error e -> Alcotest.failf "post-failover submit failed: %s" e

let test_gateway_stats_verb () =
  with_server "127.0.0.1:0" @@ fun s1 ->
  let cfg = Gateway.config ~shards:[ shard_spec s1 ] "127.0.0.1:0" in
  with_gateway cfg @@ fun gw ->
  (* shard-level stats verb *)
  (match Cs_svc.Client.fetch_stats ~addr:(Cs_svc.Server.address s1) () with
  | Error e -> Alcotest.failf "shard stats failed: %s" e
  | Ok s ->
    Alcotest.(check int) "shard workers" 2 s.Proto.workers;
    Alcotest.(check int) "shard queue empty" 0 s.Proto.queue_depth);
  (* gateway-level stats verb carries fleet counters *)
  (match
     Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Gateway.address gw)
       [ Proto.request ~id:"one" ~machine:"raw4" "fir" ]
   with
  | Ok [ _ ] -> ()
  | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)
  | Error e -> Alcotest.failf "submit failed: %s" e);
  match Cs_svc.Client.fetch_stats ~addr:(Gateway.address gw) () with
  | Error e -> Alcotest.failf "gateway stats failed: %s" e
  | Ok s ->
    Alcotest.(check int) "gateway completed" 1 s.Proto.completed;
    let extra k = List.assoc_opt k s.Proto.extra in
    Alcotest.(check (option (float 0.0))) "shards_total" (Some 1.0) (extra "shards_total");
    Alcotest.(check (option (float 0.0))) "shards_alive" (Some 1.0) (extra "shards_alive");
    Alcotest.(check (option (float 0.0))) "forwarded" (Some 1.0) (extra "forwarded");
    Alcotest.(check bool) "cache counters present" true
      (extra "cache_hits" <> None && extra "cache_misses" <> None)

let test_gateway_metrics_verb_accounts_every_job () =
  let module M = Cs_obs.Metrics in
  with_server "127.0.0.1:0" @@ fun s1 ->
  with_server "127.0.0.1:0" @@ fun s2 ->
  let cfg =
    Gateway.config ~forwarders:2 ~probe_period_s:0.2
      ~shards:[ shard_spec s1; shard_spec s2 ]
      "127.0.0.1:0"
  in
  with_gateway cfg @@ fun gw ->
  let n = 6 in
  let jobs =
    List.init n (fun i ->
        Proto.request ~id:(Printf.sprintf "m%d" i) ~machine:"raw4" ~seed:i "fir")
  in
  (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Gateway.address gw) jobs with
  | Ok rs -> Alcotest.(check int) "all answered" n (List.length rs)
  | Error e -> Alcotest.failf "submit failed: %s" e);
  let snap_of addr =
    match Cs_svc.Client.fetch_metrics ~addr () with
    | Ok (Proto.Snapshot snap) -> snap
    | Ok (Proto.Prom_text _) -> Alcotest.fail "asked for json, got prometheus"
    | Error e -> Alcotest.failf "metrics verb failed: %s" e
  in
  let counter snap name =
    match M.find snap name with Some (M.Counter_v v) -> v | _ -> 0
  in
  let gw_snap = snap_of (Gateway.address gw) in
  let s1_snap = snap_of (Cs_svc.Server.address s1) in
  let s2_snap = snap_of (Cs_svc.Server.address s2) in
  Alcotest.(check int) "gateway admitted every client job" n
    (counter gw_snap "csched_jobs_admitted_total");
  Alcotest.(check int) "shard admissions account for every forwarded job" n
    (counter s1_snap "csched_jobs_admitted_total"
    + counter s2_snap "csched_jobs_admitted_total"
    + counter gw_snap "csched_cache_hits_total");
  let forwarded_by_label =
    M.fold_name gw_snap "csched_gateway_forwarded_total" ~init:0 ~f:(fun acc _ e ->
        match e with M.Counter_v v -> acc + v | _ -> acc)
  in
  Alcotest.(check int) "per-shard forwarded counters sum to the batch" n
    forwarded_by_label;
  (* merged fleet snapshot: job latency histogram holds every observation *)
  let merged = M.merge_all [ gw_snap; s1_snap; s2_snap ] in
  (match M.find merged "csched_job_latency_ms" with
  | Some (M.Histo_v h) ->
    Alcotest.(check int) "merged latency histogram sees gateway + shard samples"
      (2 * n) (M.total h)
  | _ -> Alcotest.fail "merged latency histogram missing");
  (* the Prometheus rendering of the same registry parses line by line *)
  match Cs_svc.Client.fetch_metrics ~format:Proto.Metrics_prometheus
          ~addr:(Gateway.address gw) ()
  with
  | Ok (Proto.Prom_text text) ->
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           if line <> "" && line.[0] <> '#' then
             match String.rindex_opt line ' ' with
             | None -> Alcotest.failf "unparseable sample: %s" line
             | Some i ->
               if
                 float_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1))
                 = None
               then Alcotest.failf "non-numeric value: %s" line)
  | Ok (Proto.Snapshot _) -> Alcotest.fail "asked for prometheus, got json"
  | Error e -> Alcotest.failf "prometheus fetch failed: %s" e

let test_gateway_trace_propagation () =
  (* In-process gateway + shard share one Obs sink, so one traced job
     leaves both halves of the cross-process story in a single capture:
     the gateway's dispatch span parented on the client's root span, and
     the shard's run span parented on the gateway's dispatch span, all
     under one trace id. *)
  let module Obs = Cs_obs.Obs in
  with_server "127.0.0.1:0" @@ fun s1 ->
  let cfg = Gateway.config ~shards:[ shard_spec s1 ] "127.0.0.1:0" in
  with_gateway cfg @@ fun gw ->
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ())
  @@ fun () ->
  let ctx = Cs_obs.Tracectx.root () in
  let r =
    Proto.with_trace ~ctx (Proto.request ~id:"traced" ~machine:"raw4" "fir")
  in
  (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Gateway.address gw) [ r ] with
  | Ok [ _ ] -> ()
  | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)
  | Error e -> Alcotest.failf "submit failed: %s" e);
  Obs.disable ();
  let evs = Obs.events () in
  let arg_str key e =
    List.fold_left
      (fun acc (k, v) ->
        match v with Obs.Str s when k = key -> Some s | _ -> acc)
      None e.Obs.args
  in
  let find_span name =
    match
      List.find_opt
        (fun e -> e.Obs.name = name && arg_str "trace_id" e = Some ctx.Cs_obs.Tracectx.trace_id)
        evs
    with
    | Some e -> e
    | None -> Alcotest.failf "no %s span carrying the trace id" name
  in
  let dispatch = find_span "job:dispatch" in
  let run = find_span "job:run" in
  Alcotest.(check (option string)) "dispatch parented on the client root span"
    (Some ctx.Cs_obs.Tracectx.span_id)
    (arg_str "parent_span" dispatch);
  Alcotest.(check (option string)) "shard run parented on the dispatch span"
    (arg_str "span_id" dispatch)
    (arg_str "parent_span" run);
  Alcotest.(check bool) "hops mint distinct span ids" false
    (arg_str "span_id" dispatch = arg_str "span_id" run)

let () =
  (* aborted shards close sockets mid-write; surface that as EPIPE, not
     a process kill *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "gateway"
    [
      ( "ring",
        [
          Alcotest.test_case "route stable + candidates" `Quick test_ring_route_stable;
          Alcotest.test_case "rebalance bound on shard loss" `Quick
            test_ring_rebalance_bound;
        ] );
      ("cache", [ Alcotest.test_case "lru accounting" `Quick test_cache_lru_accounting ]);
      ( "health",
        [
          Alcotest.test_case "evict + backoff readmit" `Quick test_health_evict_and_readmit;
          Alcotest.test_case "backoff capped at max interval" `Quick
            test_health_backoff_capped;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips on failure rate" `Quick
            test_breaker_trips_on_failure_rate;
          Alcotest.test_case "slow calls + failed probe" `Quick
            test_breaker_slow_calls_and_failed_probe;
        ] );
      ( "journal",
        [
          Alcotest.test_case "recovery + dedup" `Quick test_journal_recovery_and_dedup;
        ] );
      ("policy", [ Alcotest.test_case "orderings" `Quick test_policy_orderings ]);
      ( "scenario-hash",
        [
          Alcotest.test_case "collision sweep over fuzz seeds" `Slow
            test_hash_collision_sweep;
          Alcotest.test_case "stable across textual round trip" `Quick
            test_hash_roundtrip_stable;
          Alcotest.test_case "repro fingerprint" `Quick test_repro_fingerprint;
        ] );
      ( "codec",
        [
          Alcotest.test_case "transport parse" `Quick test_transport_parse;
          Alcotest.test_case "pong roundtrip" `Quick test_pong_roundtrip;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "cache hit/miss accounting" `Slow
            test_gateway_cache_accounting;
          Alcotest.test_case "mid-batch shard kill: exactly once" `Slow
            test_gateway_failover_exactly_once;
          Alcotest.test_case "journal: exactly once across restart" `Slow
            test_gateway_journal_exactly_once_across_restart;
          Alcotest.test_case "stats verb" `Slow test_gateway_stats_verb;
          Alcotest.test_case "metrics verb accounts every job" `Slow
            test_gateway_metrics_verb_accounts_every_job;
          Alcotest.test_case "trace propagation gateway -> shard" `Slow
            test_gateway_trace_propagation;
        ] );
    ]
