(* Unit tests for Cs_machine: units, topologies, machine models. *)

open Cs_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Fu --- *)

let test_fu_universal () =
  List.iter
    (fun op -> check_bool "universal runs all" true (Fu.can_execute Fu.Universal (Cs_ddg.Opcode.cls op)))
    Cs_ddg.Opcode.all

let test_fu_int_alu () =
  check_bool "alu add" true (Fu.can_execute Fu.Int_alu Cs_ddg.Opcode.Int_op);
  check_bool "alu mul" true (Fu.can_execute Fu.Int_alu Cs_ddg.Opcode.Mul_op);
  check_bool "alu no load" false (Fu.can_execute Fu.Int_alu Cs_ddg.Opcode.Mem_op);
  check_bool "alu no fp" false (Fu.can_execute Fu.Int_alu Cs_ddg.Opcode.Float_op)

let test_fu_int_mem () =
  check_bool "mem load" true (Fu.can_execute Fu.Int_mem Cs_ddg.Opcode.Mem_op);
  check_bool "mem add" true (Fu.can_execute Fu.Int_mem Cs_ddg.Opcode.Int_op);
  check_bool "mem no mul" false (Fu.can_execute Fu.Int_mem Cs_ddg.Opcode.Mul_op)

let test_fu_float () =
  check_bool "fpu fadd" true (Fu.can_execute Fu.Float_unit Cs_ddg.Opcode.Float_op);
  check_bool "fpu fdiv" true (Fu.can_execute Fu.Float_unit Cs_ddg.Opcode.Fdiv_op);
  check_bool "fpu no int" false (Fu.can_execute Fu.Float_unit Cs_ddg.Opcode.Int_op)

let test_fu_transfer () =
  check_bool "xfer comm" true (Fu.can_execute Fu.Transfer_unit Cs_ddg.Opcode.Comm_op);
  check_bool "xfer nothing else" false (Fu.can_execute Fu.Transfer_unit Cs_ddg.Opcode.Int_op)

(* --- Topology --- *)

let mesh44 = Topology.mesh ~rows:4 ~cols:4 ()
let xbar = Topology.Crossbar { latency = 1 }

let test_mesh_hops () =
  check_int "self" 0 (Topology.hops mesh44 5 5);
  check_int "neighbor" 1 (Topology.hops mesh44 0 1);
  check_int "row hop" 1 (Topology.hops mesh44 0 4);
  check_int "corner to corner" 6 (Topology.hops mesh44 0 15);
  check_int "manhattan" 3 (Topology.hops mesh44 0 6)

let test_mesh_latency () =
  check_int "same tile" 0 (Topology.comm_latency mesh44 ~src:2 ~dst:2);
  check_int "neighbor 3 cycles" 3 (Topology.comm_latency mesh44 ~src:0 ~dst:1);
  check_int "+1 per extra hop" 8 (Topology.comm_latency mesh44 ~src:0 ~dst:15)

let test_mesh_route_xy () =
  let route = Topology.route mesh44 ~src:0 ~dst:5 in
  (* X first: 0 -> 1, then Y: 1 -> 5. *)
  check_int "two links" 2 (List.length route);
  let l1 = List.nth route 0 and l2 = List.nth route 1 in
  check_int "first from" 0 l1.Topology.from_node;
  check_int "first to" 1 l1.Topology.to_node;
  check_int "second from" 1 l2.Topology.from_node;
  check_int "second to" 5 l2.Topology.to_node

let test_mesh_route_length_equals_hops () =
  for src = 0 to 15 do
    for dst = 0 to 15 do
      check_int "route = hops"
        (Topology.hops mesh44 src dst)
        (List.length (Topology.route mesh44 ~src ~dst))
    done
  done

let test_mesh_route_contiguous () =
  let route = Topology.route mesh44 ~src:12 ~dst:3 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      check_int "contiguous" a.Topology.to_node b.Topology.from_node;
      walk rest
    | _ -> ()
  in
  walk route

let test_crossbar () =
  check_int "xbar hop" 1 (Topology.hops xbar 0 3);
  check_int "xbar latency" 1 (Topology.comm_latency xbar ~src:0 ~dst:3);
  check_int "xbar self" 0 (Topology.comm_latency xbar ~src:1 ~dst:1);
  check_int "xbar route empty" 0 (List.length (Topology.route xbar ~src:0 ~dst:3))

let test_mesh_coords () =
  check_bool "coords of 5" true (Topology.coords mesh44 5 = (1, 1));
  Alcotest.check_raises "crossbar coords" (Invalid_argument "Topology.coords: not a mesh")
    (fun () -> ignore (Topology.coords xbar 0))

(* --- Machine --- *)

let test_raw_defaults () =
  let m = Raw.create () in
  check_int "16 tiles" 16 (Machine.n_clusters m);
  check_int "1 fu" 1 (Machine.issue_width m);
  check_bool "is mesh" true (Machine.is_mesh m);
  check_int "neighbor latency" 3 (Machine.comm_latency m ~src:0 ~dst:1)

let test_raw_with_tiles () =
  check_int "2 tiles" 2 (Machine.n_clusters (Raw.with_tiles 2));
  check_int "8 tiles" 8 (Machine.n_clusters (Raw.with_tiles 8));
  check_int "1 tile" 1 (Machine.n_clusters (Raw.with_tiles 1))

let test_vliw_defaults () =
  let m = Vliw.create () in
  check_int "4 clusters" 4 (Machine.n_clusters m);
  check_int "4 fus" 4 (Machine.issue_width m);
  check_bool "not mesh" false (Machine.is_mesh m);
  check_int "1 cycle copy" 1 (Machine.comm_latency m ~src:0 ~dst:3);
  check_int "remote penalty" 1 m.Machine.remote_mem_penalty

let test_vliw_fus_for () =
  let m = Vliw.create () in
  check_int "2 int units" 2 (List.length (Machine.fus_for m ~cluster:0 Cs_ddg.Opcode.Add));
  check_int "1 mem unit" 1 (List.length (Machine.fus_for m ~cluster:0 Cs_ddg.Opcode.Load));
  check_int "1 fpu" 1 (List.length (Machine.fus_for m ~cluster:0 Cs_ddg.Opcode.Fadd));
  check_int "1 mul unit" 1 (List.length (Machine.fus_for m ~cluster:0 Cs_ddg.Opcode.Mul))

let test_raw_can_execute_everything () =
  let m = Raw.with_tiles 4 in
  List.iter
    (fun op -> check_bool "tile executes" true (Machine.can_execute m ~cluster:0 op))
    Cs_ddg.Opcode.all

let test_machine_rejects_bad_mesh () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Machine.make: mesh size disagrees with cluster count") (fun () ->
      ignore
        (Machine.make ~name:"bad" ~fus:(Array.make 3 [| Fu.Universal |])
           ~topology:(Topology.mesh ~rows:2 ~cols:2 ())
           ()))

let test_latency_model () =
  check_int "add 1" 1 (Latency.r4000 Cs_ddg.Opcode.Add);
  check_int "load 2" 2 (Latency.r4000 Cs_ddg.Opcode.Load);
  check_int "fadd 4" 4 (Latency.r4000 Cs_ddg.Opcode.Fadd);
  check_int "fdiv 12" 12 (Latency.r4000 Cs_ddg.Opcode.Fdiv);
  List.iter
    (fun op -> check_bool "latency positive" true (Latency.r4000 op >= 1))
    Cs_ddg.Opcode.all;
  List.iter
    (fun op -> check_int "unit" 1 (Latency.unit_latency op))
    Cs_ddg.Opcode.all

let test_validate_region_preplacement () =
  let b = Cs_ddg.Builder.create ~name:"v" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _l = Cs_ddg.Builder.load b ~preplace:9 addr in
  let region = Cs_ddg.Builder.finish b in
  let m = Vliw.create () in
  check_bool "rejects bank 9 on 4 clusters" true
    (match Machine.validate_region m region with Error _ -> true | Ok () -> false);
  let m16 = Raw.with_tiles 16 in
  check_bool "accepts on 16 tiles" true
    (match Machine.validate_region m16 region with Ok () -> true | Error _ -> false)

let test_validate_region_live_in_home () =
  let b = Cs_ddg.Builder.create ~name:"vh" () in
  let x = Cs_ddg.Builder.live_in ~home:7 b in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  let region = Cs_ddg.Builder.finish b in
  check_bool "rejects home 7 on 4 clusters" true
    (match Machine.validate_region (Vliw.create ()) region with Error _ -> true | Ok () -> false)

let () =
  Alcotest.run "cs_machine"
    [
      ( "fu",
        [
          Alcotest.test_case "universal" `Quick test_fu_universal;
          Alcotest.test_case "int alu" `Quick test_fu_int_alu;
          Alcotest.test_case "int mem" `Quick test_fu_int_mem;
          Alcotest.test_case "float" `Quick test_fu_float;
          Alcotest.test_case "transfer" `Quick test_fu_transfer;
        ] );
      ( "topology",
        [
          Alcotest.test_case "mesh hops" `Quick test_mesh_hops;
          Alcotest.test_case "mesh latency" `Quick test_mesh_latency;
          Alcotest.test_case "route xy" `Quick test_mesh_route_xy;
          Alcotest.test_case "route length" `Quick test_mesh_route_length_equals_hops;
          Alcotest.test_case "route contiguous" `Quick test_mesh_route_contiguous;
          Alcotest.test_case "crossbar" `Quick test_crossbar;
          Alcotest.test_case "coords" `Quick test_mesh_coords;
        ] );
      ( "machine",
        [
          Alcotest.test_case "raw defaults" `Quick test_raw_defaults;
          Alcotest.test_case "raw with_tiles" `Quick test_raw_with_tiles;
          Alcotest.test_case "vliw defaults" `Quick test_vliw_defaults;
          Alcotest.test_case "vliw fus_for" `Quick test_vliw_fus_for;
          Alcotest.test_case "raw executes all" `Quick test_raw_can_execute_everything;
          Alcotest.test_case "rejects bad mesh" `Quick test_machine_rejects_bad_mesh;
          Alcotest.test_case "latency model" `Quick test_latency_model;
          Alcotest.test_case "validate preplacement" `Quick test_validate_region_preplacement;
          Alcotest.test_case "validate live-in home" `Quick test_validate_region_live_in_home;
        ] );
    ]
