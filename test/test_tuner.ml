(* Autotuner tests: genome operators preserve validity (qcheck), the GA
   is deterministic regardless of the domain count, the fitness cache
   prevents re-simulation, and parameterized sequences round-trip
   through their textual form. *)

(* Seed QCheck's Random.State from Cs_util.Rng so `dune runtest` is
   bit-reproducible (to_alcotest's default state is self_init'd). *)
let to_alcotest test =
  let rng = Cs_util.Rng.create 0xB17_5EED in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make (Array.init 8 (fun _ -> Cs_util.Rng.int rng 0x3FFFFFFF)))
    test

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()
let raw4 = Cs_machine.Raw.with_tiles 4

(* --- sequence serialization (satellite: of_name dropped parameters) --- *)

let test_sequence_param_roundtrip () =
  let spec = "LEVEL=stride=2:boost=3.5" in
  match Cs_core.Sequence.of_names [ spec ] with
  | Error msg -> Alcotest.fail msg
  | Ok passes ->
    check_string "non-default params re-emitted" spec
      (String.concat "," (Cs_core.Sequence.names passes));
    let p = List.hd passes in
    Alcotest.(check (option (float 1e-9))) "stride stored" (Some 2.0)
      (Cs_core.Pass.param p "stride");
    Alcotest.(check (option (float 1e-9))) "boost stored" (Some 3.5)
      (Cs_core.Pass.param p "boost")

let test_sequence_default_emits_bare_names () =
  let emitted = Cs_core.Sequence.names (Cs_core.Sequence.vliw_default ()) in
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "%s has no params" name) false (String.contains name '='))
    emitted;
  (* defaults parse back to themselves *)
  match Cs_core.Sequence.of_names emitted with
  | Error msg -> Alcotest.fail msg
  | Ok passes ->
    Alcotest.(check (list string)) "round trip" emitted (Cs_core.Sequence.names passes)

let test_sequence_rejects_bad_specs () =
  let is_error = function Error _ -> true | Ok _ -> false in
  check_bool "unknown pass" true (is_error (Cs_core.Sequence.of_spec "NOPASS"));
  check_bool "unknown key" true (is_error (Cs_core.Sequence.of_spec "LEVEL=frob=1"));
  check_bool "bad value" true (is_error (Cs_core.Sequence.of_spec "LEVEL=stride=abc"));
  check_bool "case-insensitive ok" false (is_error (Cs_core.Sequence.of_spec "level=stride=2"))

(* --- genome validity under mutation/crossover (qcheck) --- *)

let genome_gen =
  QCheck.Gen.(
    map3
      (fun seed n_mut on_raw -> (seed, n_mut, on_raw))
      (int_bound 100_000) (int_bound 25) bool)

let materialize (seed, n_mut, on_raw) =
  let rng = Cs_util.Rng.create seed in
  let g = ref (Cs_tuner.Genome.of_machine (if on_raw then raw4 else vliw4)) in
  for _ = 1 to n_mut do
    g := Cs_tuner.Genome.mutate rng !g
  done;
  (rng, !g)

let print_genome (seed, n_mut, on_raw) =
  Printf.sprintf "seed=%d n_mut=%d machine=%s" seed n_mut (if on_raw then "raw" else "vliw")

let arbitrary_genome = QCheck.make ~print:print_genome genome_gen

let valid g =
  let n = List.length g in
  n >= Cs_tuner.Genome.min_length
  && n <= Cs_tuner.Genome.max_length
  &&
  match Cs_core.Sequence.of_names (String.split_on_char ',' (Cs_tuner.Genome.to_string g)) with
  | Ok _ -> true
  | Error _ -> false

let prop_mutation_valid =
  QCheck.Test.make ~count:200 ~name:"mutated genomes stay parseable and in bounds"
    arbitrary_genome (fun params ->
      let _, g = materialize params in
      valid g)

let prop_crossover_valid =
  QCheck.Test.make ~count:200 ~name:"crossover yields parseable genomes in bounds"
    arbitrary_genome (fun params ->
      let rng, a = materialize params in
      let b = ref a in
      for _ = 1 to 5 do
        b := Cs_tuner.Genome.mutate rng !b
      done;
      valid (Cs_tuner.Genome.crossover rng a !b))

let prop_genome_string_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_string (to_string g) = Ok g" arbitrary_genome
    (fun params ->
      let _, g = materialize params in
      match Cs_tuner.Genome.of_string (Cs_tuner.Genome.to_string g) with
      | Ok g' -> Cs_tuner.Genome.equal g g'
      | Error _ -> false)

(* --- fitness cache --- *)

let tiny_suite () =
  List.filter_map Cs_workloads.Suite.find [ "vvmul"; "fir" ]

let test_cache_prevents_reevaluation () =
  let fit = Cs_tuner.Fitness.make ~machine:vliw4 (tiny_suite ()) in
  let g1 = Cs_tuner.Genome.of_machine vliw4 in
  let rng = Cs_util.Rng.create 1 in
  let g2 = Cs_tuner.Genome.mutate rng g1 in
  (* duplicates inside one batch are simulated once *)
  let f = Cs_tuner.Fitness.eval fit [ g1; g2; g1; g1 ] in
  check_int "two unique genomes simulated" 2 (Cs_tuner.Fitness.evaluations fit);
  check_int "duplicates in batch served from cache" 2 (Cs_tuner.Fitness.cache_hits fit);
  Alcotest.(check (float 1e-12)) "duplicates agree" f.(0) f.(2);
  (* a later batch re-simulates nothing *)
  let f' = Cs_tuner.Fitness.eval fit [ g2; g1 ] in
  check_int "no new evaluations" 2 (Cs_tuner.Fitness.evaluations fit);
  check_int "all hits" 4 (Cs_tuner.Fitness.cache_hits fit);
  Alcotest.(check (float 1e-12)) "cached value stable" f.(1) f'.(0)

let test_fitness_positive_for_default () =
  let fit = Cs_tuner.Fitness.make ~machine:vliw4 (tiny_suite ()) in
  let f = Cs_tuner.Fitness.eval fit [ Cs_tuner.Genome.of_machine vliw4 ] in
  check_bool "default sequence has positive fitness" true (f.(0) > 0.0)

(* --- GA determinism across domain counts --- *)

let small_params domains =
  { Cs_tuner.Ga.default_params with population = 4; generations = 2; seed = 11; domains }

let run_ga domains =
  let fit = Cs_tuner.Fitness.make ~machine:vliw4 (tiny_suite ()) in
  Cs_tuner.Ga.run (small_params domains) fit

let test_ga_deterministic_across_domains () =
  let a = run_ga 1 and b = run_ga 3 in
  check_string "same best genome regardless of domain count"
    (Cs_tuner.Genome.to_string a.Cs_tuner.Ga.best)
    (Cs_tuner.Genome.to_string b.Cs_tuner.Ga.best);
  Alcotest.(check (float 1e-12)) "same best fitness" a.Cs_tuner.Ga.best_fitness
    b.Cs_tuner.Ga.best_fitness;
  check_int "same number of simulations" a.Cs_tuner.Ga.evaluations b.Cs_tuner.Ga.evaluations

let test_ga_never_worse_than_default () =
  let o = run_ga 1 in
  check_bool "elitism keeps the seeded default's score" true
    (o.Cs_tuner.Ga.best_fitness >= o.Cs_tuner.Ga.default_fitness)

let () =
  Alcotest.run "tuner"
    [
      ( "sequence",
        [ Alcotest.test_case "param round-trip" `Quick test_sequence_param_roundtrip;
          Alcotest.test_case "defaults emit bare names" `Quick
            test_sequence_default_emits_bare_names;
          Alcotest.test_case "bad specs rejected" `Quick test_sequence_rejects_bad_specs ] );
      ( "genome",
        List.map to_alcotest
          [ prop_mutation_valid; prop_crossover_valid; prop_genome_string_roundtrip ] );
      ( "fitness",
        [ Alcotest.test_case "cache prevents re-evaluation" `Quick
            test_cache_prevents_reevaluation;
          Alcotest.test_case "default fitness positive" `Quick
            test_fitness_positive_for_default ] );
      ( "ga",
        [ Alcotest.test_case "deterministic across domains" `Slow
            test_ga_deterministic_across_domains;
          Alcotest.test_case "never worse than default" `Slow
            test_ga_never_worse_than_default ] );
    ]
