(* Tests for the convergent driver, sequences and traces. *)

open Cs_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()
let raw16 = Cs_machine.Raw.with_tiles 16

let jacobi4 = (Option.get (Cs_workloads.Suite.find "jacobi")).Cs_workloads.Suite.generate ~clusters:4 ()

let test_trace_matches_passes () =
  let passes = Sequence.vliw_default () in
  let result = Driver.run ~machine:vliw4 jacobi4 passes in
  check_int "one step per pass" (List.length passes) (List.length result.Driver.trace);
  List.iter2
    (fun p s -> Alcotest.(check string) "names line up" p.Pass.name s.Trace.pass_name)
    passes result.Driver.trace

let test_preplaced_forced_home () =
  let result = Driver.run ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  List.iter
    (fun (i, home) -> check_int "home" home result.Driver.assignment.(i))
    (Cs_ddg.Graph.preplaced jacobi4.Cs_ddg.Region.graph)

let test_assignment_in_range () =
  let result = Driver.run ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  Array.iter (fun c -> check_bool "cluster valid" true (c >= 0 && c < 4)) result.Driver.assignment

let test_preferred_slot_in_range () =
  let result = Driver.run ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  Array.iter
    (fun t -> check_bool "slot valid" true (t >= 0 && t < result.Driver.context.Context.nt))
    result.Driver.preferred_slot

let test_deterministic_same_seed () =
  let r1 = Driver.run ~seed:17 ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  let r2 = Driver.run ~seed:17 ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  Alcotest.(check (array int)) "same assignment" r1.Driver.assignment r2.Driver.assignment

let test_weights_normalized_at_end () =
  let result = Driver.run ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  check_bool "invariants hold" true (Weights.check_invariants result.Driver.weights = Ok ())

let test_observe_called_per_pass () =
  let count = ref 0 in
  let passes = Sequence.vliw_default () in
  ignore (Driver.run ~observe:(fun _ _ -> incr count) ~machine:vliw4 jacobi4 passes);
  check_int "observe per pass" (List.length passes) !count

let test_cap_bounds_occupancy () =
  let result = Driver.run ~machine:raw16 (Cs_workloads.Life.generate ~clusters:16 ())
      (Sequence.raw_default ()) in
  let n = Array.length result.Driver.assignment in
  let cpl = Cs_ddg.Analysis.cpl result.Driver.context.Context.analysis in
  let cap =
    int_of_float (ceil (1.1 *. max (float_of_int n /. 16.0) (float_of_int cpl)))
  in
  let occ = Array.make 16 0 in
  Array.iter (fun c -> occ.(c) <- occ.(c) + 1) result.Driver.assignment;
  (* Preplaced instructions are exempt from the cap; bound is cap plus
     the largest per-cluster preplacement count. *)
  let pre = Array.make 16 0 in
  List.iter (fun (_, c) -> pre.(c) <- pre.(c) + 1)
    (Cs_ddg.Graph.preplaced (Cs_ddg.Analysis.graph result.Driver.context.Context.analysis));
  Array.iteri
    (fun c o -> check_bool "occupancy bounded" true (o <= cap + pre.(c)))
    occ

let test_iterative_observe_fires_per_pass_per_round () =
  let count = ref 0 in
  let passes = Sequence.vliw_default () in
  let _, rounds =
    Driver.run_iterative
      ~observe:(fun _ _ -> incr count)
      ~max_rounds:3 ~epsilon:0.0 ~machine:vliw4 jacobi4 passes
  in
  check_int "epsilon 0 never converges early" 3 rounds;
  check_int "observe once per pass per round" (3 * List.length passes) !count

let test_iterative_trace_concatenates_rounds_in_order () =
  let passes = Sequence.vliw_default () in
  let result, rounds =
    Driver.run_iterative ~max_rounds:3 ~epsilon:0.0 ~machine:vliw4 jacobi4 passes
  in
  let names = List.map (fun p -> p.Pass.name) passes in
  check_int "trace covers every round" (rounds * List.length passes)
    (List.length result.Driver.trace);
  List.iteri
    (fun k s ->
      Alcotest.(check string) "round-major pass order"
        (List.nth names (k mod List.length names))
        s.Trace.pass_name)
    result.Driver.trace

let test_empty_pass_list () =
  let result = Driver.run ~machine:vliw4 jacobi4 [] in
  check_int "no trace" 0 (List.length result.Driver.trace);
  check_int "assignment sized" (Cs_ddg.Region.n_instrs jacobi4)
    (Array.length result.Driver.assignment)

(* --- Pass quarantine --- *)

let quarantine_names result =
  List.map (fun (q : Driver.quarantine) -> q.Driver.pass_name) result.Driver.quarantined

let test_quarantine_raising_pass () =
  (* CHAOS mode 4 raises Failure mid-sequence: the driver must roll the
     matrix back, record the quarantine, and finish the run as if the
     pass had never existed. *)
  let clean = Driver.run ~seed:3 ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  let passes = Sequence.vliw_default () @ [ Chaos.pass ~mode:4 () ] in
  let result = Driver.run ~seed:3 ~machine:vliw4 jacobi4 passes in
  Alcotest.(check (list string)) "one quarantine" [ "CHAOS" ] (quarantine_names result);
  check_int "trace still covers every pass" (List.length passes)
    (List.length result.Driver.trace);
  Alcotest.(check (array int)) "assignment as if absent" clean.Driver.assignment
    result.Driver.assignment

let test_quarantine_invariant_violation () =
  (* Mode 3 clobbers preplaced rows' home-cluster mass: it returns
     normally but the post-pass gate must catch and roll it back. *)
  let passes = Sequence.vliw_default () @ [ Chaos.pass ~mode:3 () ] in
  let result = Driver.run ~machine:vliw4 jacobi4 passes in
  (match result.Driver.quarantined with
  | [ q ] ->
    Alcotest.(check string) "pass name" "CHAOS" q.Driver.pass_name;
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    check_bool "reason names the broken invariant" true
      (contains q.Driver.reason "preplaced")
  | qs -> Alcotest.failf "expected one quarantine, got %d" (List.length qs));
  (* The hard constraint survived the attack. *)
  List.iter
    (fun (i, c) -> check_int "preplaced home" c result.Driver.assignment.(i))
    (Cs_ddg.Graph.preplaced jacobi4.Cs_ddg.Region.graph)

let test_quarantine_soft_corruption_recovers () =
  (* Mode 2 zeroes every row: normalization resets rows to uniform, so
     the matrix stays valid and no quarantine fires — corruption that
     renormalization absorbs is degradation, not misbehavior. *)
  let passes = [ Chaos.pass ~mode:2 () ] in
  let result = Driver.run ~machine:vliw4 jacobi4 passes in
  check_int "no quarantine" 0 (List.length result.Driver.quarantined);
  check_bool "matrix valid" true (Weights.validate result.Driver.weights = Ok ())

let test_quarantine_per_round () =
  let passes = Sequence.vliw_default () @ [ Chaos.pass ~mode:0 () ] in
  let result, rounds =
    Driver.run_iterative ~max_rounds:3 ~epsilon:0.0 ~machine:vliw4 jacobi4 passes
  in
  check_int "one quarantine per round" rounds (List.length result.Driver.quarantined);
  List.iteri
    (fun k (q : Driver.quarantine) -> check_int "round recorded" (k + 1) q.Driver.round)
    result.Driver.quarantined

let test_rollback_restores_exact_bits () =
  (* The dirty-row rollback must leave the matrix *bit*-identical to a
     run where the quarantined pass never existed — across every CHAOS
     flavor: raise-before-write (4), raise-mid-write (0, 1), and
     return-normally-but-corrupt (3). *)
  let clean = Driver.run ~seed:3 ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  let wc = clean.Driver.weights in
  List.iter
    (fun mode ->
      let result =
        Driver.run ~seed:3 ~machine:vliw4 jacobi4
          (Sequence.vliw_default () @ [ Chaos.pass ~mode () ])
      in
      check_int (Printf.sprintf "mode %d quarantined" mode) 1
        (List.length result.Driver.quarantined);
      let wr = result.Driver.weights in
      for i = 0 to Weights.n wc - 1 do
        for c = 0 to Weights.nc wc - 1 do
          for t = 0 to Weights.nt wc - 1 do
            check_bool
              (Printf.sprintf "mode %d entry (%d,%d,%d) bit-identical" mode i c t)
              true
              (Weights.get wr i c t = Weights.get wc i c t)
          done
        done
      done)
    [ 0; 1; 3; 4 ]

let test_pass_dirties_exactly_written_rows () =
  let ctx = Context.make ~machine:vliw4 jacobi4 in
  let n = Context.n_instrs ctx in
  let w = Weights.create ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt in
  (* FIRST scales cluster 0 of every row: n rows written, n rows dirty. *)
  (First.pass ()).Pass.apply ctx w;
  check_int "FIRST dirties every row" n (Weights.touched_count w);
  Weights.clear_touched w;
  (* ... but a factor of 1.0 writes nothing, so nothing is dirty. *)
  (First.pass ~factor:1.0 ()).Pass.apply ctx w;
  check_int "no-op FIRST dirties none" 0 (Weights.touched_count w);
  (* PLACE writes exactly the preplaced + live-in-home rows. *)
  let k = ref 0 in
  for i = 0 to n - 1 do
    if Context.home_of ctx i <> None then incr k
  done;
  (Place.pass ()).Pass.apply ctx w;
  check_int "PLACE dirties exactly the anchored rows" !k (Weights.touched_count w)

let test_no_quarantines_on_default_sequences () =
  let r1 = Driver.run ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  let r2 = Driver.run ~machine:raw16 (Cs_workloads.Life.generate ~clusters:16 ())
      (Sequence.raw_default ()) in
  check_int "vliw clean" 0 (List.length r1.Driver.quarantined);
  check_int "raw clean" 0 (List.length r2.Driver.quarantined)

let test_context_rejects_invalid_region () =
  let b = Cs_ddg.Builder.create ~name:"bad" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _l = Cs_ddg.Builder.load b ~preplace:11 addr in
  let region = Cs_ddg.Builder.finish b in
  check_bool "raises" true
    (try
       ignore (Context.make ~machine:vliw4 region);
       false
     with Cs_resil.Error.Error (Cs_resil.Error.Invalid_input _) -> true)

let test_context_nt_is_cpl () =
  let ctx = Context.make ~machine:vliw4 jacobi4 in
  check_int "nt = min cpl cap" (min (Cs_ddg.Analysis.cpl ctx.Context.analysis) 512)
    ctx.Context.nt

let test_context_nt_cap () =
  let region = Cs_workloads.Sha.generate ~scale:4 ~clusters:4 () in
  let ctx = Context.make ~nt_cap:64 ~machine:vliw4 region in
  check_int "capped" 64 ctx.Context.nt

let test_trace_space_steps_filter () =
  let result = Driver.run ~machine:vliw4 jacobi4 (Sequence.vliw_default ()) in
  let space = Trace.space_steps result.Driver.trace in
  check_bool "fewer than all" true (List.length space < List.length result.Driver.trace);
  List.iter
    (fun s -> check_bool "no time-only" true (s.Trace.pass_kind <> Pass.Time))
    space

(* --- Sequence registry --- *)

let test_sequence_raw_default_names () =
  Alcotest.(check (list string)) "Table 1a"
    [ "INITTIME"; "PLACEPROP"; "LOAD"; "PLACE"; "PATH"; "PATHPROP"; "LEVEL"; "PATHPROP";
      "COMM"; "PATHPROP"; "EMPHCP" ]
    (Sequence.names (Sequence.raw_default ()))

let test_sequence_vliw_default_names () =
  Alcotest.(check (list string)) "Table 1b + LOADs"
    [ "INITTIME"; "NOISE"; "FIRST"; "PATH"; "LOAD"; "COMM"; "PLACE"; "PLACEPROP"; "LOAD";
      "COMM"; "EMPHCP" ]
    (Sequence.names (Sequence.vliw_default ()))

let test_sequence_of_names_roundtrip () =
  match Sequence.of_names [ "inittime"; "Place"; "COMM" ] with
  | Ok passes ->
    Alcotest.(check (list string)) "parsed" [ "INITTIME"; "PLACE"; "COMM" ]
      (Sequence.names passes)
  | Error e -> Alcotest.fail e

let test_sequence_of_names_unknown () =
  check_bool "unknown rejected" true
    (match Sequence.of_names [ "BOGUS" ] with Error _ -> true | Ok _ -> false)

let test_sequence_available_covers_registry () =
  List.iter
    (fun name -> check_bool name true (Sequence.of_name name <> None))
    Sequence.available

let () =
  Alcotest.run "cs_core.driver"
    [
      ( "driver",
        [
          Alcotest.test_case "trace matches passes" `Quick test_trace_matches_passes;
          Alcotest.test_case "preplaced forced" `Quick test_preplaced_forced_home;
          Alcotest.test_case "assignment range" `Quick test_assignment_in_range;
          Alcotest.test_case "slot range" `Quick test_preferred_slot_in_range;
          Alcotest.test_case "deterministic" `Quick test_deterministic_same_seed;
          Alcotest.test_case "normalized at end" `Quick test_weights_normalized_at_end;
          Alcotest.test_case "observe hook" `Quick test_observe_called_per_pass;
          Alcotest.test_case "iterative observe hook" `Quick
            test_iterative_observe_fires_per_pass_per_round;
          Alcotest.test_case "iterative trace order" `Quick
            test_iterative_trace_concatenates_rounds_in_order;
          Alcotest.test_case "cap bounds occupancy" `Quick test_cap_bounds_occupancy;
          Alcotest.test_case "empty pass list" `Quick test_empty_pass_list;
          Alcotest.test_case "quarantine raising pass" `Quick test_quarantine_raising_pass;
          Alcotest.test_case "quarantine invariant violation" `Quick
            test_quarantine_invariant_violation;
          Alcotest.test_case "soft corruption recovers" `Quick
            test_quarantine_soft_corruption_recovers;
          Alcotest.test_case "quarantine per round" `Quick test_quarantine_per_round;
          Alcotest.test_case "rollback bit-exact" `Quick test_rollback_restores_exact_bits;
          Alcotest.test_case "pass dirties written rows" `Quick
            test_pass_dirties_exactly_written_rows;
          Alcotest.test_case "defaults never quarantined" `Quick
            test_no_quarantines_on_default_sequences;
        ] );
      ( "context",
        [
          Alcotest.test_case "rejects invalid region" `Quick test_context_rejects_invalid_region;
          Alcotest.test_case "nt = cpl" `Quick test_context_nt_is_cpl;
          Alcotest.test_case "nt cap" `Quick test_context_nt_cap;
        ] );
      ( "trace",
        [ Alcotest.test_case "space filter" `Quick test_trace_space_steps_filter ] );
      ( "sequence",
        [
          Alcotest.test_case "raw names" `Quick test_sequence_raw_default_names;
          Alcotest.test_case "vliw names" `Quick test_sequence_vliw_default_names;
          Alcotest.test_case "of_names roundtrip" `Quick test_sequence_of_names_roundtrip;
          Alcotest.test_case "of_names unknown" `Quick test_sequence_of_names_unknown;
          Alcotest.test_case "available consistent" `Quick test_sequence_available_covers_registry;
        ] );
    ]
