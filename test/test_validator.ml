(* Tests for the schedule validator: a known-good schedule passes; each
   kind of corruption is caught. *)

let check_bool = Alcotest.(check bool)

let vliw2 = Cs_machine.Vliw.create ~n_clusters:2 ()

let base_region () =
  let b = Cs_ddg.Builder.create ~name:"v" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  Cs_ddg.Builder.finish b

let good_schedule ?(assignment = [| 0; 0; 1 |]) () =
  let region = base_region () in
  let a =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw2)
      region.Cs_ddg.Region.graph
  in
  Cs_sched.List_scheduler.run ~machine:vliw2 ~assignment
    ~priority:(Cs_sched.Priority.alap a) ~analysis:a region

let rejects what tamper =
  let sched = good_schedule () in
  let entries = Array.copy sched.Cs_sched.Schedule.entries in
  let comms = ref sched.Cs_sched.Schedule.comms in
  tamper entries comms;
  let bad = { sched with Cs_sched.Schedule.entries; comms = !comms } in
  check_bool what true (match Cs_sched.Validator.check bad with Error _ -> true | Ok () -> false)

let test_good_passes () =
  check_bool "valid" true (Cs_sched.Validator.check (good_schedule ()) = Ok ())

let test_good_single_cluster_passes () =
  check_bool "valid" true
    (Cs_sched.Validator.check (good_schedule ~assignment:[| 0; 0; 0 |] ()) = Ok ())

let test_rejects_bad_cluster () =
  rejects "cluster out of range" (fun entries _ ->
      entries.(0) <- { entries.(0) with Cs_sched.Schedule.cluster = 7 })

let test_rejects_incompatible_unit () =
  rejects "fadd on int alu" (fun entries _ ->
      (* Unit 0 is Int_alu on the VLIW; instruction 2 is Fadd. *)
      entries.(2) <- { entries.(2) with Cs_sched.Schedule.fu = 0 })

let test_rejects_negative_start () =
  rejects "negative start" (fun entries _ ->
      entries.(0) <- { entries.(0) with Cs_sched.Schedule.start = -1; finish = 0 })

let test_rejects_wrong_latency () =
  rejects "finish != start + latency" (fun entries _ ->
      entries.(1) <- { entries.(1) with Cs_sched.Schedule.finish = entries.(1).Cs_sched.Schedule.finish + 3 })

let test_rejects_issue_conflict () =
  rejects "same slot twice" (fun entries _ ->
      entries.(1) <-
        { entries.(0) with Cs_sched.Schedule.finish = entries.(0).Cs_sched.Schedule.finish })

let test_rejects_dependence_violation () =
  rejects "consumer before producer" (fun entries _ ->
      entries.(1) <- { entries.(1) with Cs_sched.Schedule.start = 0; finish = 1 })

let test_rejects_missing_transfer () =
  rejects "no transfer" (fun _ comms -> comms := [])

let test_rejects_transfer_wrong_latency () =
  rejects "transfer latency" (fun _ comms ->
      comms := List.map (fun c -> { c with Cs_sched.Schedule.arrive = c.Cs_sched.Schedule.arrive + 1 }) !comms)

let test_rejects_transfer_before_producer () =
  rejects "early departure" (fun _ comms ->
      comms :=
        List.map
          (fun c -> { c with Cs_sched.Schedule.depart = 0; arrive = Cs_machine.Machine.comm_latency vliw2 ~src:c.Cs_sched.Schedule.src ~dst:c.Cs_sched.Schedule.dst }) !comms)

let test_rejects_preplaced_nonmem_off_home () =
  (* A preplaced *load* may run remotely on the VLIW, but check the mesh
     rule: any preplaced instruction off home is rejected. *)
  let machine = Cs_machine.Raw.create ~rows:1 ~cols:2 () in
  let b = Cs_ddg.Builder.create ~name:"pre" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _l = Cs_ddg.Builder.load b ~preplace:1 addr in
  let region = Cs_ddg.Builder.finish b in
  let a =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine)
      region.Cs_ddg.Region.graph
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine ~assignment:[| 1; 1 |]
      ~priority:(Cs_sched.Priority.alap a) ~analysis:a region
  in
  let entries = Array.copy sched.Cs_sched.Schedule.entries in
  entries.(1) <- { entries.(1) with Cs_sched.Schedule.cluster = 0 };
  let bad = { sched with Cs_sched.Schedule.entries } in
  check_bool "off-home rejected" true
    (match Cs_sched.Validator.check bad with Error _ -> true | Ok () -> false)

(* Mesh route corruption: producer chain on tile 0 of a 1x4 Raw row,
   consumer on tile 3, so the good schedule carries one multi-hop
   transfer whose route the validator re-derives and re-times. *)
let raw1x4 = Cs_machine.Raw.create ~rows:1 ~cols:4 ()

let mesh_schedule () =
  let region = base_region () in
  let a =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of raw1x4)
      region.Cs_ddg.Region.graph
  in
  Cs_sched.List_scheduler.run ~machine:raw1x4 ~assignment:[| 0; 0; 3 |]
    ~priority:(Cs_sched.Priority.alap a) ~analysis:a region

let mesh_rejects what tamper =
  let sched = mesh_schedule () in
  let bad = { sched with Cs_sched.Schedule.comms = tamper sched.Cs_sched.Schedule.comms } in
  check_bool what true
    (match Cs_sched.Validator.check bad with Error _ -> true | Ok () -> false)

let test_mesh_good_passes () =
  check_bool "valid" true (Cs_sched.Validator.check (mesh_schedule ()) = Ok ())

let test_mesh_rejects_skipped_hop () =
  (* Arriving one cycle early is exactly a route with one hop dropped. *)
  mesh_rejects "skipped hop" (fun comms ->
      List.map
        (fun c -> { c with Cs_sched.Schedule.arrive = c.Cs_sched.Schedule.arrive - 1 })
        comms)

let test_mesh_rejects_wrong_direction () =
  (* The transfer claims to run 3 -> 0: its source is no longer the
     producer's tile. *)
  mesh_rejects "wrong direction" (fun comms ->
      List.map
        (fun c ->
          { c with Cs_sched.Schedule.src = c.Cs_sched.Schedule.dst;
            dst = c.Cs_sched.Schedule.src })
        comms)

let test_mesh_rejects_wrong_destination () =
  (* Rerouting the value to tile 1 leaves the consumer on tile 3 with no
     delivery. *)
  mesh_rejects "wrong destination" (fun comms ->
      List.map (fun c -> { c with Cs_sched.Schedule.dst = 1 }) comms)

let test_mesh_rejects_link_collision () =
  (* A second, otherwise-legal transfer that grabs the 0->1 link on the
     cycle the real transfer's head flit occupies it. *)
  mesh_rejects "link collision" (fun comms ->
      match comms with
      | main :: _ ->
        { Cs_sched.Schedule.producer = 0; src = 0; dst = 1;
          depart = main.Cs_sched.Schedule.depart;
          arrive =
            main.Cs_sched.Schedule.depart
            + Cs_machine.Machine.comm_latency raw1x4 ~src:0 ~dst:1 }
        :: comms
      | [] -> Alcotest.fail "mesh schedule has no transfer")

let test_check_exn_raises () =
  let sched = good_schedule () in
  let entries = Array.copy sched.Cs_sched.Schedule.entries in
  entries.(0) <- { entries.(0) with Cs_sched.Schedule.cluster = 9 };
  let bad = { sched with Cs_sched.Schedule.entries } in
  check_bool "raises Failure" true
    (try
       Cs_sched.Validator.check_exn bad;
       false
     with Failure _ -> true)

let test_error_messages_name_instruction () =
  let sched = good_schedule () in
  let entries = Array.copy sched.Cs_sched.Schedule.entries in
  entries.(1) <- { entries.(1) with Cs_sched.Schedule.start = 0; finish = 1 } ;
  let bad = { sched with Cs_sched.Schedule.entries } in
  match Cs_sched.Validator.check bad with
  | Ok () -> Alcotest.fail "should reject"
  | Error msgs ->
    check_bool "mentions i1" true
      (List.exists
         (fun m ->
           let rec has i =
             i + 2 <= String.length m && (String.sub m i 2 = "i1" || has (i + 1))
           in
           has 0)
         msgs)

let () =
  Alcotest.run "cs_sched.validator"
    [
      ( "validator",
        [
          Alcotest.test_case "good passes" `Quick test_good_passes;
          Alcotest.test_case "single cluster passes" `Quick test_good_single_cluster_passes;
          Alcotest.test_case "bad cluster" `Quick test_rejects_bad_cluster;
          Alcotest.test_case "incompatible unit" `Quick test_rejects_incompatible_unit;
          Alcotest.test_case "negative start" `Quick test_rejects_negative_start;
          Alcotest.test_case "wrong latency" `Quick test_rejects_wrong_latency;
          Alcotest.test_case "issue conflict" `Quick test_rejects_issue_conflict;
          Alcotest.test_case "dependence violation" `Quick test_rejects_dependence_violation;
          Alcotest.test_case "missing transfer" `Quick test_rejects_missing_transfer;
          Alcotest.test_case "transfer latency" `Quick test_rejects_transfer_wrong_latency;
          Alcotest.test_case "early departure" `Quick test_rejects_transfer_before_producer;
          Alcotest.test_case "preplaced off home" `Quick test_rejects_preplaced_nonmem_off_home;
          Alcotest.test_case "mesh good passes" `Quick test_mesh_good_passes;
          Alcotest.test_case "mesh skipped hop" `Quick test_mesh_rejects_skipped_hop;
          Alcotest.test_case "mesh wrong direction" `Quick test_mesh_rejects_wrong_direction;
          Alcotest.test_case "mesh wrong destination" `Quick test_mesh_rejects_wrong_destination;
          Alcotest.test_case "mesh link collision" `Quick test_mesh_rejects_link_collision;
          Alcotest.test_case "check_exn raises" `Quick test_check_exn_raises;
          Alcotest.test_case "messages name instr" `Quick test_error_messages_name_instruction;
        ] );
    ]
