(* Tests for the mergeable metrics registry: registration identity,
   multi-domain exactness on the lock-free hot path, merge algebra,
   bucketed quantile accuracy against the exact estimator, SLO windows,
   and the two expositions (Prometheus text, JSON round trip). *)

module M = Cs_obs.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- registration --- *)

let test_registration_identity () =
  let reg = M.create () in
  let a = M.counter reg "x_total" in
  let b = M.counter reg "x_total" in
  M.incr a;
  M.incr ~by:2 b;
  check_int "same underlying cell" 3 (M.counter_value a);
  let la = M.counter reg ~labels:[ ("shard", "a") ] "labeled_total" in
  let lb = M.counter reg ~labels:[ ("shard", "b") ] "labeled_total" in
  M.incr la;
  check_int "distinct label sets are distinct metrics" 0 (M.counter_value lb);
  check_bool "kind mismatch rejected" true
    (try
       ignore (M.gauge reg "x_total");
       false
     with Invalid_argument _ -> true)

(* --- multi-domain exactness --- *)

let test_multi_domain_exact () =
  let reg = M.create () in
  let c = M.counter reg "hits_total" in
  let h = M.histogram reg "lat_ms" in
  let per_domain = 50_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              M.incr c;
              M.observe h (float_of_int (((d * per_domain) + i) land 255))
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost increments" (4 * per_domain) (M.counter_value c);
  match M.find (M.snapshot reg) "lat_ms" with
  | Some (M.Histo_v histo) ->
    check_int "no lost observations" (4 * per_domain) (M.total histo)
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* --- merge algebra --- *)

let snap_of specs =
  (* specs: (counter name, int) + every registry also observes integer
     latencies so float sums stay exact and merge stays associative *)
  let reg = M.create () in
  List.iter
    (fun (name, n, samples) ->
      let c = M.counter reg name in
      M.incr ~by:n c;
      let h = M.histogram reg (name ^ "_ms") in
      List.iter (fun s -> M.observe h (float_of_int s)) samples)
    specs;
  M.snapshot reg

let canonical snap = List.sort compare snap

let test_merge_associative_commutative () =
  let a = snap_of [ ("jobs_total", 3, [ 1; 5; 9 ]); ("shed_total", 1, []) ] in
  let b = snap_of [ ("jobs_total", 4, [ 2; 5 ]); ("extra_total", 7, [ 100 ]) ] in
  let c = snap_of [ ("shed_total", 2, [ 1 ]); ("jobs_total", 1, []) ] in
  let l = M.merge (M.merge a b) c in
  let r = M.merge a (M.merge b c) in
  check_bool "associative" true (canonical l = canonical r);
  check_bool "commutative" true (canonical (M.merge a b) = canonical (M.merge b a));
  (match M.find l "jobs_total" with
  | Some (M.Counter_v n) -> check_int "counters sum" 8 n
  | _ -> Alcotest.fail "merged counter missing");
  match M.find l "jobs_total_ms" with
  | Some (M.Histo_v h) ->
    check_int "histogram counts sum" 5 (M.total h);
    check_bool "histogram sums add" true (h.M.sum = 22.0)
  | _ -> Alcotest.fail "merged histogram missing"

let test_merge_identity () =
  let a = snap_of [ ("jobs_total", 5, [ 3; 4 ]) ] in
  check_bool "empty right identity" true (canonical (M.merge a []) = canonical a);
  check_bool "empty left identity" true (canonical (M.merge [] a) = canonical a)

(* --- quantiles --- *)

let test_quantile_accuracy_vs_exact () =
  let samples = List.init 500 (fun i -> float_of_int (i + 1)) in
  let reg = M.create () in
  let h = M.histogram reg "lat_ms" in
  List.iter (M.observe h) samples;
  let histo =
    match M.find (M.snapshot reg) "lat_ms" with
    | Some (M.Histo_v h) -> h
    | _ -> Alcotest.fail "histogram missing"
  in
  List.iter
    (fun p ->
      let exact = Cs_util.Stats.percentile p samples in
      let est = M.quantile histo p in
      let rel = Float.abs (est -. exact) /. exact in
      check_bool
        (Printf.sprintf "p%.0f within bucket error (exact %.1f, est %.1f)" p exact est)
        true (rel <= 0.20))
    [ 50.0; 90.0; 95.0; 99.0 ];
  let empty =
    match M.find (snap_of [ ("none_total", 0, []) ]) "none_total_ms" with
    | Some (M.Histo_v h) -> h
    | _ -> Alcotest.fail "empty histogram missing"
  in
  check_bool "empty histogram quantile is 0" true (M.quantile empty 99.0 = 0.0)

(* --- SLO windows --- *)

let test_slo_window_expansion () =
  let reg = M.create () in
  let w = M.slo_window reg "csched_deadline" in
  for _ = 1 to 7 do
    M.record_deadline w ~hit:true
  done;
  for _ = 1 to 3 do
    M.record_deadline w ~hit:false
  done;
  let snap = M.snapshot reg in
  (match M.find snap "csched_deadline_hits_total" with
  | Some (M.Counter_v n) -> check_int "hits total" 7 n
  | _ -> Alcotest.fail "hits_total missing");
  (match M.find snap "csched_deadline_misses_total" with
  | Some (M.Counter_v n) -> check_int "misses total" 3 n
  | _ -> Alcotest.fail "misses_total missing");
  match M.find snap ~labels:[ ("window", "60s") ] "csched_deadline_misses" with
  | Some (M.Gauge_v v) -> check_bool "recent misses in short window" true (v = 3.0)
  | _ -> Alcotest.fail "windowed miss gauge missing"

(* --- expositions --- *)

let sample_snapshot () =
  let reg = M.create () in
  M.incr ~by:41 (M.counter reg ~help:"total jobs" "csched_jobs_admitted_total");
  M.incr ~by:2 (M.counter reg ~labels:[ ("shard", "s\"1\n") ] "csched_fwd_total");
  M.set (M.gauge reg "csched_queue_depth") 5.0;
  let h = M.histogram reg ~help:"latency" "csched_job_latency_ms" in
  List.iter (M.observe h) [ 0.5; 3.0; 3.1; 250.0 ];
  (reg, M.snapshot reg)

let test_prometheus_text_parses () =
  let reg, snap = sample_snapshot () in
  let text = M.to_prometheus ~help:(M.help_of reg) snap in
  check_bool "ends with newline" true (String.length text > 0 && text.[String.length text - 1] = '\n');
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let metric_lines = List.filter (fun l -> l.[0] <> '#') lines in
  check_bool "has samples" true (metric_lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "unparseable sample line: %s" line
      | Some i ->
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        (match float_of_string_opt v with
        | Some _ -> ()
        | None -> Alcotest.failf "non-numeric value in: %s" line))
    metric_lines;
  check_bool "help emitted" true
    (List.exists (fun l -> l = "# HELP csched_jobs_admitted_total total jobs") lines);
  (* cumulative buckets end at +Inf = _count *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 30
           && String.sub l 0 30 = "csched_job_latency_ms_bucket{l"
        then String.rindex_opt l ' ' |> Option.map (fun i ->
                 int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      metric_lines
  in
  check_bool "buckets cumulative" true
    (bucket_counts = List.sort compare bucket_counts);
  check_int "+Inf bucket is the count" 4 (List.nth bucket_counts (List.length bucket_counts - 1))

let test_json_roundtrip () =
  let _, snap = sample_snapshot () in
  match M.snapshot_of_json (M.snapshot_to_json snap) with
  | Ok snap' -> check_bool "round-trips exactly" true (snap = snap')
  | Error e -> Alcotest.failf "snapshot_of_json: %s" e

let test_fold_name_sums_label_sets () =
  let reg = M.create () in
  List.iter
    (fun (s, n) -> M.incr ~by:n (M.counter reg ~labels:[ ("shard", s) ] "fwd_total"))
    [ ("a", 2); ("b", 3); ("c", 5) ];
  let total =
    M.fold_name (M.snapshot reg) "fwd_total" ~init:0 ~f:(fun acc _ e ->
        match e with M.Counter_v n -> acc + n | _ -> acc)
  in
  check_int "fold over label sets" 10 total

let () =
  Alcotest.run "cs_metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "registration identity" `Quick test_registration_identity;
          Alcotest.test_case "multi-domain exact" `Quick test_multi_domain_exact;
        ] );
      ( "merge",
        [
          Alcotest.test_case "associative + commutative" `Quick
            test_merge_associative_commutative;
          Alcotest.test_case "empty identity" `Quick test_merge_identity;
        ] );
      ( "quantile",
        [ Alcotest.test_case "accuracy vs exact percentile" `Quick
            test_quantile_accuracy_vs_exact ] );
      ("slo", [ Alcotest.test_case "window expansion" `Quick test_slo_window_expansion ]);
      ( "exposition",
        [
          Alcotest.test_case "prometheus text parses" `Quick test_prometheus_text_parses;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "fold_name" `Quick test_fold_name_sums_label_sets;
        ] );
    ]
