(* Differential bit-compatibility oracle for the two Weights storages.

   The Flat (Bigarray, fused kernels) and Legacy (boxed float array,
   per-element chain) implementations are specified to perform the same
   floating-point operations in the same order, so any scheduling
   scenario replayed through both must be indistinguishable: the
   emitted schedule hashes identically and every per-pass telemetry
   sample (churn, mean confidence, mean entropy) matches bit for bit.

   This replays the fuzzer's seed space 0..200 plus the checked-in
   regression corpus — the same inputs the differential fuzzer uses to
   judge schedulers against each other, here judging one storage
   against the other. The Legacy path (and this whole test) is deleted
   together with the --weights-impl flag next PR. *)

open Cs_core

let corpus_dir = "corpus"
let seed_lo = 0
let seed_hi = 200

(* Per-pass telemetry fingerprint, floats captured as raw bits so the
   comparison is exact equality, never epsilon. *)
type sample = {
  pass : string;
  churn : int;
  confidence_bits : int64;
  entropy_bits : int64;
}

let passes_of_scenario (sc : Cs_check.Scenario.t) machine =
  match sc.Cs_check.Scenario.spec with
  | Cs_check.Scenario.Passes ps -> Some ps
  | Cs_check.Scenario.Baseline Cs_sim.Pipeline.Convergent ->
    Some (Cs_sim.Pipeline.default_passes ~machine)
  | Cs_check.Scenario.Baseline _ -> None (* weights never touched *)

(* One full run under [impl]: the driver with a telemetry observer,
   then the unvalidated pipeline for the schedule text. *)
let run_under impl (sc : Cs_check.Scenario.t) passes machine =
  Weights.set_default_impl impl;
  let samples = ref [] in
  let prev = ref [||] in
  let observe name w =
    let p = if Array.length !prev = 0 then Weights.preferred_clusters w else !prev in
    let m = Telemetry.measure ~prev:p w in
    prev := Weights.preferred_clusters w;
    samples :=
      {
        pass = name;
        churn = m.Telemetry.churn;
        confidence_bits = Int64.bits_of_float m.Telemetry.mean_confidence;
        entropy_bits = Int64.bits_of_float m.Telemetry.mean_entropy;
      }
      :: !samples
  in
  let driver_result =
    Driver.run ~seed:sc.Cs_check.Scenario.seed ~observe ~machine
      sc.Cs_check.Scenario.region passes
  in
  let sched =
    Cs_sim.Pipeline.schedule_raw ~seed:sc.Cs_check.Scenario.seed ~passes
      ~scheduler:Cs_sim.Pipeline.Convergent ~machine sc.Cs_check.Scenario.region
  in
  let sched_text = Format.asprintf "%a" Cs_sched.Schedule.pp sched in
  ( Scenario.fnv1a sched_text,
    driver_result.Driver.assignment,
    driver_result.Driver.preferred_slot,
    List.rev !samples )

let check_scenario label (sc : Cs_check.Scenario.t) =
  let machine = Cs_check.Scenario.scheduling_machine sc in
  match passes_of_scenario sc machine with
  | None -> ()
  | Some passes ->
    let hash_f, asg_f, slots_f, tel_f = run_under Weights.Flat sc passes machine in
    let hash_l, asg_l, slots_l, tel_l = run_under Weights.Legacy sc passes machine in
    Alcotest.(check int64)
      (Printf.sprintf "%s: schedule hash" label)
      hash_l hash_f;
    Alcotest.(check (array int)) (Printf.sprintf "%s: assignment" label) asg_l asg_f;
    Alcotest.(check (array int)) (Printf.sprintf "%s: slots" label) slots_l slots_f;
    Alcotest.(check int)
      (Printf.sprintf "%s: telemetry sample count" label)
      (List.length tel_l) (List.length tel_f);
    List.iter2
      (fun (f : sample) (l : sample) ->
        Alcotest.(check string)
          (Printf.sprintf "%s: pass order" label)
          l.pass f.pass;
        Alcotest.(check int) (Printf.sprintf "%s/%s: churn" label f.pass) l.churn f.churn;
        Alcotest.(check int64)
          (Printf.sprintf "%s/%s: mean confidence bits" label f.pass)
          l.confidence_bits f.confidence_bits;
        Alcotest.(check int64)
          (Printf.sprintf "%s/%s: mean entropy bits" label f.pass)
          l.entropy_bits f.entropy_bits)
      tel_f tel_l

let restore_default f () =
  let saved = Weights.default_impl () in
  Fun.protect ~finally:(fun () -> Weights.set_default_impl saved) f

let fuzz_seed_cases =
  (* One Alcotest case per block of seeds keeps the output readable
     while still naming the failing seed via the check label. *)
  let block = 25 in
  let rec blocks lo acc =
    if lo > seed_hi then List.rev acc
    else
      let hi = min seed_hi (lo + block - 1) in
      let case =
        Alcotest.test_case (Printf.sprintf "seeds %d..%d" lo hi) `Quick
          (restore_default (fun () ->
               for seed = lo to hi do
                 let sc = Cs_check.Gen.case ~seed in
                 check_scenario
                   (Printf.sprintf "seed %d (%s)" seed sc.Cs_check.Scenario.label)
                   sc
               done))
      in
      blocks (hi + 1) (case :: acc)
  in
  blocks seed_lo []

let corpus_cases =
  List.filter_map
    (fun (path, loaded) ->
      match loaded with
      | Error _ -> None (* test_corpus.ml reports parse failures *)
      | Ok r ->
        Some
          (Alcotest.test_case (Filename.basename path) `Quick
             (restore_default (fun () ->
                  check_scenario (Filename.basename path)
                    r.Cs_check.Repro.scenario))))
    (Cs_check.Repro.load_dir corpus_dir)

let () =
  Alcotest.run "cs_core.weights-differential"
    [ ("fuzz-seeds", fuzz_seed_cases); ("corpus", corpus_cases) ]
