(* Tests for lib/resil: fault plans, degraded machines, rerouting,
   the typed error taxonomy, and the fallback chain. *)

open Cs_resil

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Fault plans --- *)

let test_plan_round_trip () =
  let spec = "tile=5,link=2-3,fu=1:0,slow-link=4-8:x3" in
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    check_string "canonical" spec (Fault.to_string plan);
    (match Fault.parse (Fault.to_string plan) with
    | Ok plan2 -> check_bool "round trips" true (plan = plan2)
    | Error e -> Alcotest.failf "re-parse failed: %s" e)

let test_plan_normalizes_links () =
  match Fault.parse "link=3-2, slow-link=8-4:x2" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan -> check_string "lo-hi order" "link=2-3,slow-link=4-8:x2" (Fault.to_string plan)

let test_plan_dedups () =
  match Fault.parse "tile=1,tile=1,link=0-1,link=1-0" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan -> check_int "two faults" 2 (List.length plan)

let test_plan_empty () =
  check_bool "empty string" true (Fault.parse "" = Ok []);
  check_bool "whitespace" true (Fault.parse "  " = Ok []);
  check_string "prints empty" "" (Fault.to_string [])

let test_plan_rejects_garbage () =
  let bad s = match Fault.parse s with Error _ -> true | Ok _ -> false in
  check_bool "unknown key" true (bad "core=3");
  check_bool "no value" true (bad "tile");
  check_bool "negative" true (bad "tile=-1");
  check_bool "self loop" true (bad "link=2-2");
  check_bool "slow factor 1" true (bad "slow-link=0-1:x1");
  check_bool "slow factor junk" true (bad "slow-link=0-1:fast");
  check_bool "parse_exn raises typed" true
    (try
       ignore (Fault.parse_exn "core=3");
       false
     with Error.Error (Error.Invalid_input _) -> true)

let test_plan_random_valid () =
  (* Random plans for a raw4x4 shape parse back and apply cleanly. *)
  let machine = Cs_machine.Raw.create ~rows:4 ~cols:4 () in
  let shape = { Fault.n_clusters = 16; issue_width = 1; mesh = Some (4, 4) } in
  let rng = Cs_util.Rng.create 7 in
  for _ = 1 to 50 do
    let plan = Fault.random rng ~shape in
    (match Fault.parse (Fault.to_string plan) with
    | Ok p -> check_bool "round trips" true (p = plan)
    | Error e -> Alcotest.failf "random plan %S: %s" (Fault.to_string plan) e);
    ignore (Cs_machine.Machine.degrade machine plan)
  done

(* --- Machine.degrade --- *)

let raw22 () = Cs_machine.Raw.create ~rows:2 ~cols:2 ()
let vliw4 () = Cs_machine.Vliw.create ~n_clusters:4 ()

let test_degrade_dead_tile () =
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "tile=1") in
  check_bool "degraded" true (Cs_machine.Machine.is_degraded m);
  check_bool "tile 1 dead" false (Cs_machine.Machine.is_cluster_alive m 1);
  check_bool "tile 0 alive" true (Cs_machine.Machine.is_cluster_alive m 0);
  check_int "cluster count stable" 4 (Cs_machine.Machine.n_clusters m);
  check_int "issue width stable" 1 (Cs_machine.Machine.issue_width m);
  check_bool "cannot execute" false
    (Cs_machine.Machine.can_execute m ~cluster:1 Cs_ddg.Opcode.Add);
  check_string "name suffixed" "raw-2x2!tile=1" m.Cs_machine.Machine.name

let test_degrade_dead_fu () =
  (* Kill the VLIW cluster 0 transfer unit: the cluster stays alive but
     can no longer execute communication ops. *)
  let m = Cs_machine.Machine.degrade (vliw4 ()) (Fault.parse_exn "fu=0:3") in
  check_bool "cluster alive" true (Cs_machine.Machine.is_cluster_alive m 0);
  check_bool "no comm op" false
    (Cs_machine.Machine.can_execute m ~cluster:0 Cs_ddg.Opcode.Transfer);
  check_bool "still adds" true
    (Cs_machine.Machine.can_execute m ~cluster:0 Cs_ddg.Opcode.Add)

let test_degrade_empty_plan_is_identity () =
  let m = raw22 () in
  check_bool "same machine" true (Cs_machine.Machine.degrade m [] == m)

let test_degrade_rejects_bad_plans () =
  let typed f =
    try
      ignore (f ());
      false
    with Error.Error (Error.Invalid_input _) -> true
  in
  check_bool "tile out of range" true
    (typed (fun () ->
         Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "tile=9")));
  check_bool "link on crossbar" true
    (typed (fun () ->
         Cs_machine.Machine.degrade (vliw4 ()) (Fault.parse_exn "link=0-1")));
  check_bool "non-adjacent link" true
    (typed (fun () ->
         Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "link=0-3")));
  check_bool "killing every tile" true
    (typed (fun () ->
         Cs_machine.Machine.degrade (raw22 ())
           (Fault.parse_exn "tile=0,tile=1,tile=2,tile=3")))

let test_degrade_composes () =
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "tile=1") in
  let m2 = Cs_machine.Machine.degrade m (Fault.parse_exn "link=2-3") in
  check_bool "tile still dead" false (Cs_machine.Machine.is_cluster_alive m2 1);
  check_bool "now unreachable" false
    (Cs_machine.Topology.reachable m2.Cs_machine.Machine.topology 2 3)

(* --- Degraded-mesh routing --- *)

(* 2x2 mesh: nodes 0 1 / 2 3. *)

let test_reroute_around_dead_link () =
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "link=0-1") in
  (* 0 -> 1 must detour 0 -> 2 -> 3 -> 1. *)
  check_int "hops" 3 (Cs_machine.Machine.hops m 0 1);
  check_int "latency" 5 (Cs_machine.Machine.comm_latency m ~src:0 ~dst:1);
  let route = Cs_machine.Topology.route m.Cs_machine.Machine.topology ~src:0 ~dst:1 in
  check_bool "detour route" true
    (List.map
       (fun (l : Cs_machine.Topology.link) -> (l.from_node, l.to_node))
       route
    = [ (0, 2); (2, 3); (3, 1) ]);
  (* Unaffected pairs keep the healthy closed form. *)
  check_int "other pair" 3 (Cs_machine.Machine.comm_latency m ~src:2 ~dst:3)

let test_reroute_around_dead_node () =
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "tile=0") in
  (* 1 -> 2 cannot cut through dead node 0: go 1 -> 3 -> 2. *)
  check_int "hops" 2 (Cs_machine.Machine.hops m 1 2);
  check_int "latency" 4 (Cs_machine.Machine.comm_latency m ~src:1 ~dst:2)

let test_slow_link_latency () =
  (* Direct link at x3 costs weight 3, same as the 3-hop detour; the
     direct route wins the tie deterministically. *)
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "slow-link=0-1:x3") in
  check_int "hops still direct" 1 (Cs_machine.Machine.hops m 0 1);
  check_int "latency x3" 5 (Cs_machine.Machine.comm_latency m ~src:0 ~dst:1);
  let m2 = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "slow-link=0-1:x2") in
  check_int "latency x2" 4 (Cs_machine.Machine.comm_latency m2 ~src:0 ~dst:1);
  (* Occupancy model is unchanged: slow links only add latency. *)
  check_int "reverse symmetric" 4 (Cs_machine.Machine.comm_latency m2 ~src:1 ~dst:0)

let test_partition_is_typed_unreachable () =
  (* Cutting 0-1 and 2-3 separates {0,2} from {1,3}. *)
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "link=0-1,link=2-3") in
  let topo = m.Cs_machine.Machine.topology in
  check_bool "same side ok" true (Cs_machine.Topology.reachable topo 0 2);
  check_bool "cross side dead" false (Cs_machine.Topology.reachable topo 0 1);
  check_bool "raises typed" true
    (try
       ignore (Cs_machine.Machine.comm_latency m ~src:0 ~dst:1);
       false
     with Error.Error (Error.Unreachable { src = 0; dst = 1 }) -> true)

let test_degraded_routing_deterministic () =
  let m =
    Cs_machine.Machine.degrade
      (Cs_machine.Raw.create ~rows:4 ~cols:4 ())
      (Fault.parse_exn "link=5-6,tile=10,slow-link=1-2:x2")
  in
  let topo = m.Cs_machine.Machine.topology in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      if
        src <> dst && src <> 10 && dst <> 10
        && Cs_machine.Topology.reachable topo src dst
      then begin
        let r1 = Cs_machine.Topology.route topo ~src ~dst in
        let r2 = Cs_machine.Topology.route topo ~src ~dst in
        check_bool "stable route" true (r1 = r2);
        check_int "route length is hops"
          (Cs_machine.Topology.hops topo src dst)
          (List.length r1);
        (* Each hop is a real surviving mesh edge. *)
        List.iter
          (fun (l : Cs_machine.Topology.link) ->
            let a = l.from_node and b = l.to_node in
            check_bool "adjacent" true (abs (a - b) = 1 || abs (a - b) = 4);
            check_bool "avoids dead node" true (a <> 10 && b <> 10);
            check_bool "avoids dead link" true
              (not ((min a b, max a b) = (5, 6))))
          r1
      end
    done
  done

(* --- End-to-end on degraded machines --- *)

let reduce_region ~name k =
  let b = Cs_ddg.Builder.create ~name () in
  let leaves = List.init k (fun _ -> Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const) in
  ignore (Cs_workloads.Prog.reduce b Cs_ddg.Opcode.Add leaves);
  Cs_ddg.Builder.finish b

let test_degraded_mesh_schedule_validates () =
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "tile=2") in
  let region = reduce_region ~name:"reduce16" 16 in
  (* Pipeline.schedule runs the validator internally (check_exn). *)
  let sched = Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Convergent ~machine:m region in
  check_bool "nonempty" true (Cs_sched.Schedule.makespan sched > 0);
  Array.iter
    (fun (e : Cs_sched.Schedule.entry) -> check_bool "off dead tile" true (e.cluster <> 2))
    sched.Cs_sched.Schedule.entries

(* --- Fallback chain --- *)

let test_resilient_requested_rung_on_healthy_machine () =
  let region = reduce_region ~name:"reduce16" 16 in
  match Cs_sim.Pipeline.schedule_resilient ~machine:(vliw4 ()) region with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Error.to_string e)
  | Ok (sched, outcome) ->
    check_bool "requested rung" true (outcome.Outcome.rung = Outcome.Requested);
    check_bool "healthy" true (Outcome.healthy outcome);
    check_bool "validates" true (Cs_sched.Validator.check sched = Ok ())

let test_resilient_falls_back_to_default_sequence () =
  (* Rawcc places by affinity with no feasibility check, so a dead tile
     sinks rung 1 deterministically; the default convergent sequence
     (feasibility-aware since the claiming fix) wins rung 2. *)
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "tile=0") in
  let region = reduce_region ~name:"reduce16" 16 in
  match Cs_sim.Pipeline.schedule_resilient ~scheduler:Cs_sim.Pipeline.Rawcc ~machine:m region with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Error.to_string e)
  | Ok (sched, outcome) ->
    check_bool "default rung" true (outcome.Outcome.rung = Outcome.Default_sequence);
    (match outcome.Outcome.attempts with
    | [ (Outcome.Requested, "rawcc", _) ] -> ()
    | _ -> Alcotest.fail "unexpected attempt record");
    check_bool "validates" true (Cs_sched.Validator.check sched = Ok ())

let test_resilient_falls_back_to_single_cluster () =
  (* A partitioned mesh: the convergent driver's balanced extraction
     spreads a 31-instruction reduction over all four tiles (per-cluster
     cap), so some tree edge crosses the cut and scheduling hits a typed
     Unreachable; only the single-cluster rung survives. *)
  let m = Cs_machine.Machine.degrade (raw22 ()) (Fault.parse_exn "link=0-1,link=2-3") in
  let region = reduce_region ~name:"reduce16" 16 in
  match Cs_sim.Pipeline.schedule_resilient ~machine:m region with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Error.to_string e)
  | Ok (sched, outcome) ->
    check_bool "single-cluster rung" true (outcome.Outcome.rung = Outcome.Single_cluster);
    check_bool "validates" true (Cs_sched.Validator.check sched = Ok ());
    check_int "no transfers" 0 (Cs_sched.Schedule.n_comms sched);
    let c0 = sched.Cs_sched.Schedule.entries.(0).Cs_sched.Schedule.cluster in
    Array.iter
      (fun (e : Cs_sched.Schedule.entry) -> check_int "one cluster" c0 e.cluster)
      sched.Cs_sched.Schedule.entries

let test_resilient_reports_chaos_quarantine () =
  let region = reduce_region ~name:"reduce16" 16 in
  let passes = Cs_core.Sequence.vliw_default () @ [ Cs_core.Chaos.pass ~mode:4 () ] in
  match Cs_sim.Pipeline.schedule_resilient ~passes ~machine:(vliw4 ()) region with
  | Error e -> Alcotest.failf "unexpected failure: %s" (Error.to_string e)
  | Ok (_, outcome) ->
    check_bool "requested rung still wins" true (outcome.Outcome.rung = Outcome.Requested);
    check_bool "not healthy" false (Outcome.healthy outcome);
    (match outcome.Outcome.quarantined with
    | [ ("CHAOS", _) ] -> ()
    | q -> Alcotest.failf "expected one CHAOS quarantine, got %d" (List.length q))

let test_resilient_error_when_nothing_fits () =
  (* A float op on a machine whose surviving FUs are integer-only. *)
  let m =
    Cs_machine.Machine.make ~name:"intfp"
      ~fus:[| [| Cs_machine.Fu.Int_alu |]; [| Cs_machine.Fu.Float_unit |] |]
      ~topology:(Cs_machine.Topology.Crossbar { latency = 1 })
      ()
  in
  let m = Cs_machine.Machine.degrade m (Fault.parse_exn "tile=1") in
  let b = Cs_ddg.Builder.create ~name:"fp" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  ignore (Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k);
  let region = Cs_ddg.Builder.finish b in
  match Cs_sim.Pipeline.schedule_resilient ~machine:m region with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

(* --- Fault sweep: the acceptance-criteria grid --- *)

let raw_plans =
  [ "tile=5"; "link=1-2"; "slow-link=4-8:x3"; "fu=0:0"; "tile=0,tile=15";
    "link=0-1,link=4-5"; "slow-link=0-4:x2,slow-link=1-5:x4";
    "tile=5,link=9-10,slow-link=2-6:x3" ]

let vliw_plans =
  [ "tile=1"; "fu=0:3"; "fu=0:0,fu=0:1"; "tile=2,tile=3"; "fu=1:2";
    "tile=0,fu=1:3"; "fu=3:0,fu=3:1,fu=3:2,fu=3:3"; "tile=1,tile=2" ]

let test_fault_sweep_always_schedules () =
  let region = reduce_region ~name:"reduce32" 32 in
  let machines =
    [ (Cs_machine.Raw.create ~rows:4 ~cols:4 (), raw_plans);
      (Cs_machine.Vliw.create ~n_clusters:4 (), vliw_plans) ]
  in
  List.iter
    (fun ((machine : Cs_machine.Machine.t), plans) ->
      List.iter
        (fun spec ->
          let m = Cs_machine.Machine.degrade machine (Fault.parse_exn spec) in
          match Cs_sim.Pipeline.schedule_resilient ~machine:m region with
          | Error e ->
            Alcotest.failf "%s + %s: %s" machine.name spec (Error.to_string e)
          | Ok (sched, _) ->
            (match Cs_sched.Validator.check sched with
            | Ok () -> ()
            | Error problems ->
              Alcotest.failf "%s + %s: invalid schedule: %s" machine.name spec
                (String.concat "; " problems)))
        plans)
    machines

let () =
  Alcotest.run "cs_resil"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "round trip" `Quick test_plan_round_trip;
          Alcotest.test_case "normalizes links" `Quick test_plan_normalizes_links;
          Alcotest.test_case "dedups" `Quick test_plan_dedups;
          Alcotest.test_case "empty" `Quick test_plan_empty;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
          Alcotest.test_case "random plans valid" `Quick test_plan_random_valid;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "dead tile" `Quick test_degrade_dead_tile;
          Alcotest.test_case "dead fu" `Quick test_degrade_dead_fu;
          Alcotest.test_case "empty plan" `Quick test_degrade_empty_plan_is_identity;
          Alcotest.test_case "rejects bad plans" `Quick test_degrade_rejects_bad_plans;
          Alcotest.test_case "composes" `Quick test_degrade_composes;
        ] );
      ( "routing",
        [
          Alcotest.test_case "dead link detour" `Quick test_reroute_around_dead_link;
          Alcotest.test_case "dead node detour" `Quick test_reroute_around_dead_node;
          Alcotest.test_case "slow link" `Quick test_slow_link_latency;
          Alcotest.test_case "partition typed" `Quick test_partition_is_typed_unreachable;
          Alcotest.test_case "deterministic" `Quick test_degraded_routing_deterministic;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "degraded mesh validates" `Quick
            test_degraded_mesh_schedule_validates;
          Alcotest.test_case "requested rung" `Quick
            test_resilient_requested_rung_on_healthy_machine;
          Alcotest.test_case "default-sequence rung" `Quick
            test_resilient_falls_back_to_default_sequence;
          Alcotest.test_case "single-cluster rung" `Quick
            test_resilient_falls_back_to_single_cluster;
          Alcotest.test_case "chaos quarantine surfaces" `Quick
            test_resilient_reports_chaos_quarantine;
          Alcotest.test_case "typed error when stuck" `Quick
            test_resilient_error_when_nothing_fits;
          Alcotest.test_case "fault sweep" `Quick test_fault_sweep_always_schedules;
        ] );
    ]
