(* Work-stealing deque: single-owner LIFO pop, thief FIFO steal, and
   the exactly-once delivery contract under real 4-domain contention.
   Everything is bounded — no test may hang runtest. *)

module Deque = Cs_svc.Deque
module Squeue = Cs_svc.Squeue

let test_capacity_rounds_to_power_of_two () =
  Alcotest.(check int) "5 rounds to 8" 8 (Deque.capacity (Deque.create ~capacity:5));
  Alcotest.(check int) "8 stays 8" 8 (Deque.capacity (Deque.create ~capacity:8));
  Alcotest.(check int) "1 stays 1" 1 (Deque.capacity (Deque.create ~capacity:1));
  match Deque.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must raise"

let test_owner_pop_is_lifo () =
  let d = Deque.create ~capacity:8 in
  List.iter (fun i -> Alcotest.(check bool) "push" true (Deque.push d i)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "lifo order" (Some expect) (Deque.pop d))
    [ 4; 3; 2; 1 ];
  Alcotest.(check (option int)) "empty pops None" None (Deque.pop d)

let test_steal_is_fifo () =
  let d = Deque.create ~capacity:8 in
  List.iter (fun i -> ignore (Deque.push d i)) [ 1; 2; 3; 4 ];
  (* thieves migrate the oldest item; the owner keeps the newest *)
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "fifo order" (Some expect) (Deque.steal d))
    [ 1; 2 ];
  Alcotest.(check (option int)) "owner still pops newest" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "last item by steal" (Some 3) (Deque.steal d);
  Alcotest.(check (option int)) "drained" None (Deque.steal d)

let test_full_deque_refuses_push () =
  let d = Deque.create ~capacity:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) "push under capacity" true (Deque.push d i)
  done;
  Alcotest.(check bool) "push at capacity refused" false (Deque.push d 99);
  ignore (Deque.steal d);
  Alcotest.(check bool) "slot freed by steal" true (Deque.push d 100)

(* The core safety contract under genuine 4-domain contention: one
   owner interleaving pushes and pops, three thieves stealing
   concurrently. Every pushed item must come out exactly once, across
   all four domains, with none lost and none duplicated. *)
let test_exactly_once_under_contention () =
  let total = 20_000 in
  let d = Deque.create ~capacity:64 in
  let seen = Array.make total (Atomic.make 0) in
  for i = 0 to total - 1 do
    seen.(i) <- Atomic.make 0
  done;
  let claim i = Atomic.incr seen.(i) in
  let done_pushing = Atomic.make false in
  let thieves =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Deque.steal d with
              | Some i ->
                claim i;
                loop ()
              | None ->
                if not (Atomic.get done_pushing) || Deque.length d > 0 then begin
                  Domain.cpu_relax ();
                  loop ()
                end
            in
            loop ()))
  in
  (* owner: push each item (retrying while thieves make room), popping
     a few of its own along the way — the LIFO half of the contract *)
  for i = 0 to total - 1 do
    let rec push () =
      if not (Deque.push d i) then begin
        (match Deque.pop d with Some j -> claim j | None -> ());
        push ()
      end
    in
    push ();
    if i land 7 = 0 then match Deque.pop d with Some j -> claim j | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some j ->
      claim j;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_pushing true;
  List.iter Domain.join thieves;
  let lost = ref 0 and duplicated = ref 0 in
  Array.iter
    (fun a ->
      match Atomic.get a with
      | 1 -> ()
      | 0 -> incr lost
      | _ -> incr duplicated)
    seen;
  Alcotest.(check int) "no item lost" 0 !lost;
  Alcotest.(check int) "no item duplicated" 0 !duplicated

(* The overflow protocol the lanes engine uses: a refused push lands in
   a global Squeue, and consumers scan deque-then-overflow. Together
   the two structures must still deliver every item exactly once. *)
let test_overflow_to_global_roundtrip () =
  let total = 5_000 in
  let d = Deque.create ~capacity:8 in
  let overflow = Squeue.create ~capacity:total in
  let produced_via_overflow = ref 0 in
  let seen = Atomic.make 0 in
  let stop = Atomic.make false in
  let consumers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Deque.steal d with
              | Some _ ->
                Atomic.incr seen;
                loop ()
              | None ->
                (match Squeue.try_pop overflow with
                | Some _ ->
                  Atomic.incr seen;
                  loop ()
                | None ->
                  if not (Atomic.get stop) then begin
                    Domain.cpu_relax ();
                    loop ()
                  end)
            in
            loop ()))
  in
  for i = 0 to total - 1 do
    if not (Deque.push d i) then begin
      Alcotest.(check bool) "overflow accepts" true (Squeue.try_push overflow i);
      incr produced_via_overflow
    end
  done;
  (* wait (bounded) for the consumers to drain both structures *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get seen < total && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  List.iter Domain.join consumers;
  Alcotest.(check bool) "tiny deque actually overflowed" true
    (!produced_via_overflow > 0);
  Alcotest.(check int) "every item delivered exactly once" total (Atomic.get seen)

let () =
  Alcotest.run "deque"
    [
      ( "deque",
        [
          Alcotest.test_case "capacity power of two" `Quick
            test_capacity_rounds_to_power_of_two;
          Alcotest.test_case "owner pop LIFO" `Quick test_owner_pop_is_lifo;
          Alcotest.test_case "steal FIFO" `Quick test_steal_is_fifo;
          Alcotest.test_case "full refuses push" `Quick test_full_deque_refuses_push;
          Alcotest.test_case "exactly-once under 4-domain contention" `Slow
            test_exactly_once_under_contention;
          Alcotest.test_case "overflow-to-global roundtrip" `Slow
            test_overflow_to_global_roundtrip;
        ] );
    ]
