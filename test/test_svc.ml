(* Time robustness and the batch service: anytime early exit,
   per-pass budgets, retry/backoff determinism, checkpoint/resume
   bit-identity, crash-safe writes, and an in-process serve/submit
   loopback. Everything here is bounded — no test may hang runtest. *)

let raw4 = Cs_machine.Raw.with_tiles 4
let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()

let region_of machine name =
  match Cs_workloads.Suite.find name with
  | Some e ->
    e.Cs_workloads.Suite.generate ~scale:1
      ~clusters:(Cs_machine.Machine.n_clusters machine) ()
  | None -> Alcotest.failf "missing benchmark %s" name

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- anytime driver ------------------------------------------------ *)

let test_expired_deadline_still_answers () =
  let region = region_of raw4 "jacobi" in
  let deadline = Cs_obs.Clock.now () -. 1.0 in
  match Cs_sim.Pipeline.schedule_resilient ~deadline ~machine:raw4 region with
  | Error e -> Alcotest.failf "expected anytime schedule, got %s" (Cs_resil.Error.to_string e)
  | Ok (sched, outcome) ->
    Alcotest.(check bool) "timed_out recorded" true outcome.Cs_resil.Outcome.timed_out;
    Alcotest.(check bool) "not healthy" false (Cs_resil.Outcome.healthy outcome);
    Alcotest.(check bool) "non-empty schedule" true
      (Cs_sched.Schedule.makespan sched > 0)

let test_expired_deadline_matches_first_pass_only () =
  (* The anytime exit truncates the sequence between passes; with an
     already-expired deadline exactly one pass runs, so the result must
     equal the one-pass run's. *)
  let region = region_of vliw4 "vvmul" in
  let passes = Cs_sim.Pipeline.default_passes ~machine:vliw4 in
  let full =
    Cs_core.Driver.run ~deadline:(Cs_obs.Clock.now () -. 1.0) ~machine:vliw4 region
      passes
  in
  Alcotest.(check bool) "timed_out" true full.Cs_core.Driver.timed_out;
  let one = Cs_core.Driver.run ~machine:vliw4 region [ List.hd passes ] in
  Alcotest.(check (array int)) "assignment = one-pass assignment"
    one.Cs_core.Driver.assignment full.Cs_core.Driver.assignment

let test_no_deadline_never_times_out () =
  let region = region_of raw4 "life" in
  let result =
    Cs_core.Driver.run ~machine:raw4 region (Cs_sim.Pipeline.default_passes ~machine:raw4)
  in
  Alcotest.(check bool) "timed_out" false result.Cs_core.Driver.timed_out

let test_pass_timeout_quarantined () =
  let region = region_of raw4 "sha" in
  let passes =
    Cs_sim.Pipeline.default_passes ~machine:raw4
    @ [ Cs_core.Chaos.slow_pass ~delay_ms:30.0 () ]
  in
  let result =
    Cs_core.Driver.run ~pass_budget_s:0.005 ~machine:raw4 region passes
  in
  let timeouts =
    List.filter
      (fun q ->
        q.Cs_core.Driver.pass_name = "CHAOS"
        && contains q.Cs_core.Driver.reason "pass-timeout")
      result.Cs_core.Driver.quarantined
  in
  Alcotest.(check int) "slow pass quarantined once" 1 (List.length timeouts);
  Alcotest.(check bool) "a budget overrun is not an anytime exit" false
    result.Cs_core.Driver.timed_out

let test_pass_timeout_surfaces_in_outcome () =
  let region = region_of raw4 "sha" in
  let passes =
    Cs_sim.Pipeline.default_passes ~machine:raw4
    @ [ Cs_core.Chaos.slow_pass ~delay_ms:30.0 () ]
  in
  match
    Cs_sim.Pipeline.schedule_resilient ~passes ~pass_budget_s:0.005 ~machine:raw4 region
  with
  | Error e -> Alcotest.failf "expected schedule, got %s" (Cs_resil.Error.to_string e)
  | Ok (_, outcome) ->
    Alcotest.(check bool) "quarantine visible to caller" true
      (List.exists
         (fun (name, reason) ->
           name = "CHAOS" && contains reason "pass-timeout")
         outcome.Cs_resil.Outcome.quarantined)

(* --- retry --------------------------------------------------------- *)

let test_retry_delays_deterministic () =
  let policy = { Cs_svc.Retry.default with max_attempts = 5; seed = 99 } in
  let a = Cs_svc.Retry.delays policy and b = Cs_svc.Retry.delays policy in
  Alcotest.(check int) "n delays" 4 (List.length a);
  Alcotest.(check (list (float 0.0))) "same policy, same schedule" a b;
  List.iteri
    (fun i d ->
      Alcotest.(check bool) (Printf.sprintf "delay %d in jitter band" i) true
        (let base = policy.base_delay_s *. (policy.multiplier ** float_of_int i) in
         d >= base *. 0.5 -. 1e-9 && d <= base *. 1.5 +. 1e-9))
    a

let test_retry_sleeps_recorded_schedule () =
  let policy = { Cs_svc.Retry.default with max_attempts = 3 } in
  let slept = ref [] in
  let calls = ref 0 in
  let result =
    Cs_svc.Retry.run ~policy
      ~sleep:(fun d -> slept := d :: !slept)
      (fun ~attempt ->
        incr calls;
        if attempt < 3 then Error (Cs_resil.Error.Pass_failure "flaky") else Ok attempt)
  in
  Alcotest.(check int) "three attempts" 3 !calls;
  Alcotest.(check (list (float 0.0))) "slept the published schedule"
    (Cs_svc.Retry.delays policy) (List.rev !slept);
  match result with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "expected Ok on third attempt"

let test_retry_gives_up_and_skips_permanent () =
  let policy = { Cs_svc.Retry.default with max_attempts = 3 } in
  let no_sleep _ = () in
  let calls = ref 0 in
  (match
     Cs_svc.Retry.run ~policy ~sleep:no_sleep (fun ~attempt:_ ->
         incr calls;
         Error (Cs_resil.Error.Pass_failure "always"))
   with
  | Error (Cs_resil.Error.Pass_failure _) -> ()
  | _ -> Alcotest.fail "expected the last error back");
  Alcotest.(check int) "transient retried to exhaustion" 3 !calls;
  calls := 0;
  (match
     Cs_svc.Retry.run ~policy ~sleep:no_sleep (fun ~attempt:_ ->
         incr calls;
         Error (Cs_resil.Error.Infeasible "permanent"))
   with
  | Error (Cs_resil.Error.Infeasible _) -> ()
  | _ -> Alcotest.fail "expected the permanent error back");
  Alcotest.(check int) "permanent not retried" 1 !calls

(* --- crash-safe writes --------------------------------------------- *)

let test_fsio_atomic_write_roundtrip () =
  let path = tmp_path "cs_svc_fsio_test.txt" in
  Cs_util.Fsio.write_atomic ~path "first\n";
  Alcotest.(check (option string)) "written" (Some "first\n") (Cs_util.Fsio.read_opt path);
  Cs_util.Fsio.write_atomic ~path "second\n";
  Alcotest.(check (option string)) "overwritten" (Some "second\n")
    (Cs_util.Fsio.read_opt path);
  let dir = Filename.dirname path and base = Filename.basename path in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> f <> base && contains f base)
  in
  Alcotest.(check (list string)) "no temp files left behind" [] leftovers;
  Sys.remove path;
  Alcotest.(check (option string)) "missing file reads None" None
    (Cs_util.Fsio.read_opt path)

(* --- GA checkpoint/resume ------------------------------------------ *)

let small_params =
  { Cs_tuner.Ga.default_params with population = 6; generations = 4; seed = 11 }

let small_fit () =
  match Cs_workloads.Suite.find "vvmul" with
  | Some e -> Cs_tuner.Fitness.make ~scale:1 ~machine:vliw4 [ e ]
  | None -> Alcotest.fail "vvmul missing"

let test_ga_resume_bit_identical () =
  let straight = Cs_tuner.Ga.run small_params (small_fit ()) in
  let snap = ref None in
  let _interrupted =
    (* capture the snapshot after generation 2, as a crash would *)
    Cs_tuner.Ga.run
      ~checkpoint:(fun s -> if s.Cs_tuner.Ga.gen_done = 2 then snap := Some s)
      small_params (small_fit ())
  in
  match !snap with
  | None -> Alcotest.fail "checkpoint callback never fired"
  | Some s ->
    let resumed = Cs_tuner.Ga.run ~resume:s small_params (small_fit ()) in
    Alcotest.(check string) "best genome bit-identical"
      (Cs_tuner.Genome.to_string straight.Cs_tuner.Ga.best)
      (Cs_tuner.Genome.to_string resumed.Cs_tuner.Ga.best);
    Alcotest.(check bool) "best fitness bit-identical" true
      (straight.Cs_tuner.Ga.best_fitness = resumed.Cs_tuner.Ga.best_fitness);
    Alcotest.(check (array (float 0.0))) "history bit-identical"
      straight.Cs_tuner.Ga.history resumed.Cs_tuner.Ga.history;
    Alcotest.(check bool) "resumed run completed" true resumed.Cs_tuner.Ga.completed

let test_ga_checkpoint_file_roundtrip () =
  let snap = ref None in
  let _ =
    Cs_tuner.Ga.run
      ~checkpoint:(fun s -> if s.Cs_tuner.Ga.gen_done = 2 then snap := Some s)
      small_params (small_fit ())
  in
  let s = Option.get !snap in
  let path = tmp_path "cs_svc_ga_ck.json" in
  Cs_tuner.Checkpoint.save ~path s;
  (match Cs_tuner.Checkpoint.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok s' ->
    Alcotest.(check int) "gen_done" s.Cs_tuner.Ga.gen_done s'.Cs_tuner.Ga.gen_done;
    Alcotest.(check bool) "rng state exact" true
      (Int64.equal s.Cs_tuner.Ga.rng_state s'.Cs_tuner.Ga.rng_state);
    Alcotest.(check bool) "best fitness exact" true
      (s.Cs_tuner.Ga.snap_best_fitness = s'.Cs_tuner.Ga.snap_best_fitness);
    Alcotest.(check (array string)) "population exact"
      (Array.map Cs_tuner.Genome.to_string s.Cs_tuner.Ga.population)
      (Array.map Cs_tuner.Genome.to_string s'.Cs_tuner.Ga.population);
    (* the loaded snapshot must continue exactly like the in-memory one *)
    let a = Cs_tuner.Ga.run ~resume:s small_params (small_fit ()) in
    let b = Cs_tuner.Ga.run ~resume:s' small_params (small_fit ()) in
    Alcotest.(check string) "continuations agree"
      (Cs_tuner.Genome.to_string a.Cs_tuner.Ga.best)
      (Cs_tuner.Genome.to_string b.Cs_tuner.Ga.best));
  Sys.remove path

let test_ga_deadline_reports_budget_exhausted () =
  let outcome =
    Cs_tuner.Ga.run ~deadline:(Cs_obs.Clock.now ()) small_params (small_fit ())
  in
  Alcotest.(check bool) "stopped early" true
    (outcome.Cs_tuner.Ga.generations_run < small_params.Cs_tuner.Ga.generations);
  Alcotest.(check bool) "not completed" false outcome.Cs_tuner.Ga.completed;
  Alcotest.(check bool) "still made progress" true
    (outcome.Cs_tuner.Ga.generations_run >= 1)

(* --- fuzz journal resume ------------------------------------------- *)

(* Sabotage every schedule so the oracle reliably produces findings. *)
let break_schedule s = Cs_sched.Schedule.map_clusters (fun _ -> 0) s

let test_fuzz_journal_resume_identical () =
  let seeds = (0, 30) in
  let path = tmp_path "cs_svc_fuzz_journal.json" in
  let run journal =
    Cs_check.Fuzz.run ~shrink:false ~transform:break_schedule ?journal ~seeds ()
  in
  let stats_fresh, found_fresh = run None in
  Alcotest.(check bool) "transform produces findings" true (found_fresh <> []);
  (* First journaled run covers everything; resuming it replays the
     journal without re-searching and must reproduce the findings. *)
  let j = Cs_check.Journal.create ~path ~seeds () in
  let stats_j, found_j = run (Some j) in
  Alcotest.(check int) "journaled run sees all cases" stats_fresh.Cs_check.Fuzz.cases
    stats_j.Cs_check.Fuzz.cases;
  let resumed = Cs_check.Journal.resume ~path ~seeds () in
  let stats_r, found_r = run (Some resumed) in
  Alcotest.(check int) "resumed covers all cases" stats_fresh.Cs_check.Fuzz.cases
    stats_r.Cs_check.Fuzz.cases;
  Alcotest.(check bool) "resumed run completed" true stats_r.Cs_check.Fuzz.completed;
  let sig_of f =
    Printf.sprintf "%d/%s/%s" f.Cs_check.Fuzz.seed f.Cs_check.Fuzz.label
      f.Cs_check.Fuzz.check
  in
  Alcotest.(check (list string)) "journaled findings identical"
    (List.map sig_of found_fresh) (List.map sig_of found_j);
  Alcotest.(check (list string)) "resumed findings identical"
    (List.map sig_of found_fresh) (List.map sig_of found_r);
  Sys.remove path

let test_fuzz_journal_mismatch_starts_fresh () =
  let path = tmp_path "cs_svc_fuzz_journal2.json" in
  let j = Cs_check.Journal.create ~path ~seeds:(0, 10) () in
  Cs_check.Journal.record j ~chunk:(0, 10) ~violations:[];
  (* different seed range -> the old journal must not poison the run *)
  let j' = Cs_check.Journal.resume ~path ~seeds:(0, 20) () in
  Alcotest.(check bool) "mismatched journal discarded" false
    (Cs_check.Journal.is_done j' 5);
  Sys.remove path

(* --- bounded queue ------------------------------------------------- *)

let test_squeue_bounds_and_order () =
  let q = Cs_svc.Squeue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Cs_svc.Squeue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Cs_svc.Squeue.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Cs_svc.Squeue.try_push q 3);
  Alcotest.(check (option int)) "fifo" (Some 1) (Cs_svc.Squeue.pop q);
  Alcotest.(check bool) "slot freed" true (Cs_svc.Squeue.try_push q 4);
  Cs_svc.Squeue.close q;
  Alcotest.(check bool) "closed refuses" false (Cs_svc.Squeue.try_push q 5);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Cs_svc.Squeue.pop q);
  Alcotest.(check (option int)) "drain 4" (Some 4) (Cs_svc.Squeue.pop q);
  Alcotest.(check (option int)) "closed+empty ends" None (Cs_svc.Squeue.pop q)

let test_squeue_concurrent_producers_consumers () =
  let q = Cs_svc.Squeue.create ~capacity:4 in
  let produced = 200 in
  let seen = Atomic.make 0 in
  let consumers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Cs_svc.Squeue.pop q with
              | Some _ ->
                Atomic.incr seen;
                loop ()
              | None -> ()
            in
            loop ()))
  in
  let rec push n =
    if n > 0 then
      if Cs_svc.Squeue.try_push q n then push (n - 1)
      else begin
        Domain.cpu_relax ();
        push n
      end
  in
  push produced;
  Cs_svc.Squeue.close q;
  List.iter Domain.join consumers;
  Alcotest.(check int) "every item consumed exactly once" produced (Atomic.get seen)

(* The shed bound must hold exactly under racing producers: with no
   consumer, precisely [capacity] of the competing pushes may win, no
   matter how the domains interleave. *)
let test_squeue_sheds_at_exact_capacity_concurrently () =
  let capacity = 8 in
  let producers = 4 and per_producer = 50 in
  let q = Cs_svc.Squeue.create ~capacity in
  let accepted = Atomic.make 0 in
  let go = Atomic.make false in
  let domains =
    List.init producers (fun d ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            for i = 0 to per_producer - 1 do
              if Cs_svc.Squeue.try_push q ((d * per_producer) + i) then
                Atomic.incr accepted
            done))
  in
  Atomic.set go true;
  List.iter Domain.join domains;
  Alcotest.(check int) "exactly capacity pushes won" capacity (Atomic.get accepted);
  Alcotest.(check int) "queue holds exactly capacity" capacity (Cs_svc.Squeue.length q);
  Cs_svc.Squeue.close q;
  let drained = ref 0 in
  let rec drain () =
    match Cs_svc.Squeue.pop q with
    | Some _ ->
      incr drained;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "winners all drain back out" capacity !drained

(* --- transport addresses ------------------------------------------- *)

let test_transport_parse_edge_cases () =
  (* a colon without a numeric port is neither TCP nor a sane path *)
  (match Cs_svc.Transport.parse "host:" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing colon with no port must error");
  (match Cs_svc.Transport.parse "host:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative port must error");
  (* the LAST colon splits host from port, so colon-bearing hosts work *)
  (match Cs_svc.Transport.parse "::1:7100" with
  | Ok (Cs_svc.Transport.Tcp { host = "::1"; port = 7100 }) -> ()
  | _ -> Alcotest.fail "IPv6-ish host should split on the last colon");
  (* surrounding whitespace is operator noise, not address *)
  (match Cs_svc.Transport.parse "  127.0.0.1:7100  " with
  | Ok (Cs_svc.Transport.Tcp { host = "127.0.0.1"; port = 7100 }) -> ()
  | _ -> Alcotest.fail "whitespace should be trimmed");
  (match Cs_svc.Transport.parse "   " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-whitespace address must error")

let test_transport_port_zero_resolves () =
  (* port 0 asks the kernel for an ephemeral port; bound_addr must
     report the real one so clients can actually connect *)
  let addr = Cs_svc.Transport.parse_exn "127.0.0.1:0" in
  let fd = Cs_svc.Transport.listen addr in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      match Cs_svc.Transport.bound_addr fd addr with
      | Cs_svc.Transport.Tcp { port; _ } ->
        Alcotest.(check bool) "kernel-assigned port" true (port > 0)
      | Cs_svc.Transport.Unix_path _ -> Alcotest.fail "TCP bind stayed TCP")

(* --- protocol ------------------------------------------------------ *)

let test_proto_request_roundtrip () =
  let r =
    Cs_svc.Proto.request ~id:"j1" ~machine:"vliw4" ~scheduler:"uas" ~scale:2
      ~deadline_ms:50.0 ~passes:"INITTIME,PLACE" ~seed:7 "mxm"
  in
  match Cs_svc.Proto.request_of_line (Cs_svc.Proto.request_to_line r) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check string) "id" r.Cs_svc.Proto.id r'.Cs_svc.Proto.id;
    Alcotest.(check string) "bench" r.Cs_svc.Proto.bench r'.Cs_svc.Proto.bench;
    Alcotest.(check string) "machine" r.Cs_svc.Proto.machine r'.Cs_svc.Proto.machine;
    Alcotest.(check int) "scale" r.Cs_svc.Proto.scale r'.Cs_svc.Proto.scale;
    Alcotest.(check (option (float 0.0))) "deadline" r.Cs_svc.Proto.deadline_ms
      r'.Cs_svc.Proto.deadline_ms;
    Alcotest.(check (option string)) "passes" r.Cs_svc.Proto.passes r'.Cs_svc.Proto.passes;
    Alcotest.(check (option int)) "seed" r.Cs_svc.Proto.seed r'.Cs_svc.Proto.seed

let test_proto_reply_roundtrip () =
  let ok =
    { Cs_svc.Proto.reply_id = "j1"; elapsed_ms = 12.5;
      verdict =
        Cs_svc.Proto.Scheduled
          { cycles = 42; transfers = 7; rung = "requested"; timed_out = true;
            quarantined = 1 };
      queue_depth = Some 3; cached = true }
  in
  (match Cs_svc.Proto.reply_of_line (Cs_svc.Proto.reply_to_line ok) with
  | Ok r when r = ok -> ()
  | Ok _ -> Alcotest.fail "ok reply mutated in roundtrip"
  | Error e -> Alcotest.failf "ok roundtrip failed: %s" e);
  let refused =
    Cs_svc.Proto.refused ~elapsed_ms:1.0 ~id:"j2"
      (Cs_resil.Error.Deadline_exceeded "too slow")
  in
  match Cs_svc.Proto.reply_of_line (Cs_svc.Proto.reply_to_line refused) with
  | Ok r when r = refused -> ()
  | Ok _ -> Alcotest.fail "refused reply mutated in roundtrip"
  | Error e -> Alcotest.failf "refused roundtrip failed: %s" e

let test_proto_idem_key_roundtrip () =
  let r = Cs_svc.Proto.request ~id:"j1" ~idem_key:"retry-abc" "fir" in
  (match Cs_svc.Proto.request_of_line (Cs_svc.Proto.request_to_line r) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check (option string)) "idem_key survives the wire"
      (Some "retry-abc") r'.Cs_svc.Proto.idem_key);
  match
    Cs_svc.Proto.request_of_line
      (Cs_svc.Proto.request_to_line (Cs_svc.Proto.request ~id:"j2" "fir"))
  with
  | Error e -> Alcotest.failf "keyless roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check (option string)) "absent key stays absent" None
      r'.Cs_svc.Proto.idem_key

let test_proto_heartbeat_roundtrip () =
  let hb =
    { Cs_svc.Proto.hb_shard = "127.0.0.1:7040"; hb_depth = 3; hb_busy = 2;
      hb_workers = 4; hb_completed = 99 }
  in
  (match Cs_svc.Proto.incoming_of_line (Cs_svc.Proto.heartbeat_line hb) with
  | Ok (Cs_svc.Proto.Heartbeat hb') ->
    Alcotest.(check string) "shard" hb.Cs_svc.Proto.hb_shard hb'.Cs_svc.Proto.hb_shard;
    Alcotest.(check int) "depth" hb.Cs_svc.Proto.hb_depth hb'.Cs_svc.Proto.hb_depth;
    Alcotest.(check int) "busy" hb.Cs_svc.Proto.hb_busy hb'.Cs_svc.Proto.hb_busy;
    Alcotest.(check int) "workers" hb.Cs_svc.Proto.hb_workers
      hb'.Cs_svc.Proto.hb_workers;
    Alcotest.(check int) "completed" hb.Cs_svc.Proto.hb_completed
      hb'.Cs_svc.Proto.hb_completed
  | Ok _ -> Alcotest.fail "heartbeat line classified as something else"
  | Error e -> Alcotest.failf "heartbeat roundtrip failed: %s" e);
  (* forward compat: load-vector fields are optional, the shard name is not *)
  (match
     Cs_svc.Proto.incoming_of_line "{\"op\":\"heartbeat\",\"shard\":\"s1\"}"
   with
  | Ok (Cs_svc.Proto.Heartbeat hb') ->
    Alcotest.(check int) "missing depth defaults to 0" 0 hb'.Cs_svc.Proto.hb_depth
  | _ -> Alcotest.fail "minimal heartbeat should parse");
  match Cs_svc.Proto.incoming_of_line "{\"op\":\"heartbeat\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "heartbeat without a shard name must be rejected"

let test_proto_malformed_line () =
  (match Cs_svc.Proto.request_of_line "{not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Cs_svc.Proto.request_of_line "{\"id\":\"x\"}" with
  | Error _ -> () (* bench missing *)
  | Ok _ -> Alcotest.fail "bench-less request accepted"

(* --- job runner ---------------------------------------------------- *)

let test_job_refusals_are_typed () =
  let run req = Cs_svc.Job.run (Cs_svc.Job.admit req) in
  (match (run (Cs_svc.Proto.request "no-such-bench")).Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Refused e ->
    Alcotest.(check string) "unknown bench kind" "invalid-input" e.kind
  | _ -> Alcotest.fail "unknown bench must refuse");
  (match
     (run (Cs_svc.Proto.request ~machine:"raw0" "jacobi")).Cs_svc.Proto.verdict
   with
  | Cs_svc.Proto.Refused e ->
    Alcotest.(check string) "unknown machine kind" "invalid-input" e.kind
  | _ -> Alcotest.fail "unknown machine must refuse");
  match
    (Cs_svc.Job.run (Cs_svc.Job.admit (Cs_svc.Proto.request ~deadline_ms:0.0 "jacobi")))
      .Cs_svc.Proto.verdict
  with
  | Cs_svc.Proto.Refused e ->
    Alcotest.(check string) "expired-in-queue kind" "deadline-exceeded"
      e.kind
  | _ -> Alcotest.fail "expired deadline must refuse"

let test_job_schedules_with_deadline () =
  let req = Cs_svc.Proto.request ~id:"ok" ~machine:"raw4" ~deadline_ms:10_000.0 "sha" in
  match (Cs_svc.Job.run (Cs_svc.Job.admit req)).Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Scheduled s ->
    Alcotest.(check bool) "cycles positive" true (s.cycles > 0)
  | Cs_svc.Proto.Refused e ->
    Alcotest.failf "healthy job refused: %s %s" e.kind e.message

(* --- serve/submit loopback ----------------------------------------- *)

let with_server cfg f =
  let server = Cs_svc.Server.create cfg in
  let runner = Domain.spawn (fun () -> Cs_svc.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Cs_svc.Server.stop server;
      Domain.join runner)
    (fun () -> f server)

let test_serve_mixed_batch () =
  let socket = tmp_path (Printf.sprintf "cs_svc_test_%d.sock" (Unix.getpid ())) in
  let cfg = Cs_svc.Server.config ~workers:2 ~queue_capacity:8 socket in
  let replies =
    with_server cfg (fun _ ->
        let jobs =
          [ Cs_svc.Proto.request ~id:"good" ~machine:"raw4" ~deadline_ms:30_000.0 "jacobi";
            Cs_svc.Proto.request ~id:"late" ~deadline_ms:0.0 "mxm";
            Cs_svc.Proto.request ~id:"bogus" "no-such-bench" ]
        in
        match
          Cs_svc.Client.submit ~timeout_s:60.0
            ~addr:(Cs_svc.Transport.parse_exn socket) jobs
        with
        | Error e -> Alcotest.failf "submit failed: %s" e
        | Ok replies -> replies)
  in
  Alcotest.(check int) "every job answered" 3 (List.length replies);
  let find id =
    List.find (fun r -> r.Cs_svc.Proto.reply_id = id) replies
  in
  (match (find "good").Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Scheduled s ->
    Alcotest.(check bool) "scheduled" true (s.cycles > 0)
  | Cs_svc.Proto.Refused e -> Alcotest.failf "good job refused: %s" e.message);
  (match (find "late").Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Refused e ->
    Alcotest.(check string) "typed deadline refusal" "deadline-exceeded"
      e.kind
  | _ -> Alcotest.fail "impossible deadline must be refused");
  match (find "bogus").Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Refused e ->
    Alcotest.(check string) "typed invalid-input refusal" "invalid-input"
      e.kind
  | _ -> Alcotest.fail "unknown bench must be refused"

let test_serve_sheds_when_overloaded () =
  let socket = tmp_path (Printf.sprintf "cs_svc_shed_%d.sock" (Unix.getpid ())) in
  (* one worker stalled 200 ms per job behind a one-slot queue: of six
     pipelined jobs at most two can be in flight, the rest must shed *)
  let cfg =
    Cs_svc.Server.config ~workers:1 ~queue_capacity:1 ~chaos_slow_ms:200.0 socket
  in
  let replies, stats =
    with_server cfg (fun server ->
        let jobs =
          List.init 6 (fun i ->
              Cs_svc.Proto.request ~id:(Printf.sprintf "j%d" i) ~machine:"raw4"
                ~deadline_ms:30_000.0 "fir")
        in
        match
          Cs_svc.Client.submit ~timeout_s:60.0
            ~addr:(Cs_svc.Transport.parse_exn socket) jobs
        with
        | Error e -> Alcotest.failf "submit failed: %s" e
        | Ok replies -> (replies, Cs_svc.Server.stats server))
  in
  Alcotest.(check int) "every job answered" 6 (List.length replies);
  let shed =
    List.filter
      (fun r ->
        match r.Cs_svc.Proto.verdict with
        | Cs_svc.Proto.Refused e -> e.kind = "overloaded"
        | _ -> false)
      replies
  in
  Alcotest.(check bool) "bounded queue shed typed refusals" true
    (List.length shed >= 3);
  Alcotest.(check int) "stats agree with replies" (List.length shed)
    stats.Cs_svc.Server.shed

let test_serve_metrics_verb () =
  let module M = Cs_obs.Metrics in
  let socket = tmp_path (Printf.sprintf "cs_svc_metrics_%d.sock" (Unix.getpid ())) in
  let cfg = Cs_svc.Server.config ~workers:2 socket in
  with_server cfg (fun _ ->
      let addr = Cs_svc.Transport.parse_exn socket in
      let jobs =
        List.init 3 (fun i ->
            Cs_svc.Proto.request ~id:(Printf.sprintf "m%d" i) ~machine:"raw4" ~seed:i
              "fir")
      in
      (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr jobs with
      | Ok rs -> Alcotest.(check int) "all answered" 3 (List.length rs)
      | Error e -> Alcotest.failf "submit failed: %s" e);
      (match Cs_svc.Client.fetch_metrics ~addr () with
      | Error e -> Alcotest.failf "metrics verb failed: %s" e
      | Ok (Cs_svc.Proto.Prom_text _) -> Alcotest.fail "asked for json, got prometheus"
      | Ok (Cs_svc.Proto.Snapshot snap) ->
        let counter name =
          match M.find snap name with Some (M.Counter_v v) -> v | _ -> -1
        in
        Alcotest.(check int) "admitted counter" 3 (counter "csched_jobs_admitted_total");
        Alcotest.(check int) "completed counter" 3
          (counter "csched_jobs_completed_total");
        Alcotest.(check int) "no refusals" 0 (counter "csched_jobs_refused_total");
        (match M.find snap "csched_workers" with
        | Some (M.Gauge_v v) -> Alcotest.(check bool) "workers gauge" true (v = 2.0)
        | _ -> Alcotest.fail "workers gauge missing");
        match M.find snap "csched_job_latency_ms" with
        | Some (M.Histo_v h) ->
          Alcotest.(check int) "one latency sample per job" 3 (M.total h);
          Alcotest.(check bool) "p99 estimate positive" true (M.quantile h 99.0 > 0.0)
        | _ -> Alcotest.fail "latency histogram missing");
      match Cs_svc.Client.fetch_metrics ~format:Cs_svc.Proto.Metrics_prometheus ~addr ()
      with
      | Ok (Cs_svc.Proto.Prom_text text) ->
        Alcotest.(check bool) "prometheus rendering carries the counter" true
          (List.mem "csched_jobs_admitted_total 3" (String.split_on_char '\n' text))
      | Ok (Cs_svc.Proto.Snapshot _) -> Alcotest.fail "asked for prometheus, got json"
      | Error e -> Alcotest.failf "prometheus fetch failed: %s" e)

let test_serve_stop_is_clean_and_idempotent () =
  let socket = tmp_path (Printf.sprintf "cs_svc_stop_%d.sock" (Unix.getpid ())) in
  let cfg = Cs_svc.Server.config ~workers:1 socket in
  with_server cfg (fun server ->
      (* submit one job so drain has something to finish *)
      (match
         Cs_svc.Client.submit ~timeout_s:60.0 ~addr:(Cs_svc.Transport.parse_exn socket)
           [ Cs_svc.Proto.request ~id:"x" ~machine:"raw4" "life" ]
       with
      | Ok [ _ ] -> ()
      | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)
      | Error e -> Alcotest.failf "submit failed: %s" e);
      Cs_svc.Server.stop server;
      Cs_svc.Server.stop server);
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists socket)

(* --- retry backoff saturation (property) --------------------------- *)

let to_alcotest test =
  let rng = Cs_util.Rng.create 0x5E12_EED in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make (Array.init 8 (fun _ -> Cs_util.Rng.int rng 0x3FFFFFFF)))
    test

(* The bug this guards against: the naive [base *. mult ** attempt]
   overflows to infinity (or goes non-monotone through NaN) at high
   attempt counts. The fixed schedule must stay finite, saturate at
   [max_delay_s], and without jitter be monotone non-decreasing. *)
let retry_backoff_prop =
  let gen =
    QCheck.Gen.(
      map3
        (fun attempts mult seed -> (attempts, mult, seed))
        (int_range 2 400)
        (map (fun m -> 1.0 +. (float_of_int m /. 10.0)) (int_bound 90))
        (int_bound 10_000))
  in
  let print (attempts, mult, seed) =
    Printf.sprintf "attempts=%d mult=%.1f seed=%d" attempts mult seed
  in
  QCheck.Test.make ~count:60 ~name:"backoff saturates at max_delay, stays monotone"
    (QCheck.make ~print gen)
    (fun (attempts, mult, seed) ->
      let policy =
        { Cs_svc.Retry.default with
          max_attempts = attempts; multiplier = mult; seed; jitter = 0.5 }
      in
      let delays = Cs_svc.Retry.delays policy in
      let cap = policy.Cs_svc.Retry.max_delay_s *. (1.0 +. policy.Cs_svc.Retry.jitter) in
      List.iter
        (fun d ->
          if not (Float.is_finite d) then
            QCheck.Test.fail_reportf "non-finite delay %f" d;
          if d < 0.0 || d > cap +. 1e-9 then
            QCheck.Test.fail_reportf "delay %f outside [0, %f]" d cap)
        delays;
      (* without jitter the raw exponential must be monotone *)
      let bare = Cs_svc.Retry.delays { policy with jitter = 0.0 } in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      if not (monotone bare) then
        QCheck.Test.fail_reportf "unjittered schedule non-monotone";
      List.length delays = attempts - 1)

(* --- proto tenant / class ------------------------------------------ *)

let test_proto_tenant_class_roundtrip () =
  let r =
    Cs_svc.Proto.request ~id:"t1" ~tenant:"team-a" ~job_class:"interactive" "fir"
  in
  (match Cs_svc.Proto.request_of_line (Cs_svc.Proto.request_to_line r) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check (option string)) "tenant survives the wire" (Some "team-a")
      r'.Cs_svc.Proto.tenant;
    Alcotest.(check (option string)) "class survives the wire" (Some "interactive")
      r'.Cs_svc.Proto.job_class);
  match
    Cs_svc.Proto.request_of_line
      (Cs_svc.Proto.request_to_line (Cs_svc.Proto.request ~id:"t2" "fir"))
  with
  | Error e -> Alcotest.failf "bare roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check (option string)) "absent tenant stays absent" None
      r'.Cs_svc.Proto.tenant;
    Alcotest.(check (option string)) "absent class stays absent" None
      r'.Cs_svc.Proto.job_class

(* --- fair admission queue ------------------------------------------ *)

let test_fairq_quota_binds_per_tenant () =
  let q = Cs_svc.Fairq.create ~tenant_quota:2 ~capacity:10 () in
  let admit tenant x = Cs_svc.Fairq.admit q ~tenant ~lane:Cs_svc.Fairq.Batch x in
  Alcotest.(check bool) "hog 1" true (admit "hog" 1 = Cs_svc.Fairq.Admitted);
  Alcotest.(check bool) "hog 2" true (admit "hog" 2 = Cs_svc.Fairq.Admitted);
  Alcotest.(check bool) "hog over quota" true (admit "hog" 3 = Cs_svc.Fairq.Over_quota);
  Alcotest.(check bool) "other tenant unaffected" true
    (admit "quiet" 4 = Cs_svc.Fairq.Admitted);
  (* draining the hog frees its quota *)
  ignore (Cs_svc.Fairq.try_pull q);
  Alcotest.(check bool) "quota freed by drain" true
    (admit "hog" 5 = Cs_svc.Fairq.Admitted)

let test_fairq_capacity_sheds () =
  let q = Cs_svc.Fairq.create ~capacity:2 () in
  let admit tenant x = Cs_svc.Fairq.admit q ~tenant ~lane:Cs_svc.Fairq.Batch x in
  Alcotest.(check bool) "1" true (admit "a" 1 = Cs_svc.Fairq.Admitted);
  Alcotest.(check bool) "2" true (admit "b" 2 = Cs_svc.Fairq.Admitted);
  Alcotest.(check bool) "full sheds, not quota" true
    (admit "c" 3 = Cs_svc.Fairq.Queue_full);
  Cs_svc.Fairq.close q;
  Alcotest.(check bool) "closed sheds" true (admit "a" 4 = Cs_svc.Fairq.Queue_full)

let test_fairq_drr_interleaves_tenants () =
  let q = Cs_svc.Fairq.create ~capacity:16 () in
  (* tenant a floods first; b trickles in after — DRR must still
     alternate instead of draining a's backlog first *)
  for i = 0 to 3 do
    ignore (Cs_svc.Fairq.admit q ~tenant:"a" ~lane:Cs_svc.Fairq.Batch ("a", i))
  done;
  for i = 0 to 3 do
    ignore (Cs_svc.Fairq.admit q ~tenant:"b" ~lane:Cs_svc.Fairq.Batch ("b", i))
  done;
  let order = List.init 8 (fun _ -> Option.get (Cs_svc.Fairq.try_pull q)) in
  let firsts = List.filteri (fun i _ -> i < 4) order in
  Alcotest.(check int) "first four pulls: two from each tenant" 2
    (List.length (List.filter (fun (t, _) -> t = "a") firsts));
  (* per-tenant FIFO preserved *)
  Alcotest.(check (list int)) "tenant a in FIFO order" [ 0; 1; 2; 3 ]
    (List.filter_map (fun (t, i) -> if t = "a" then Some i else None) order)

let test_fairq_weights_bias_service () =
  let q = Cs_svc.Fairq.create ~weights:[ ("heavy", 2) ] ~capacity:16 () in
  for i = 0 to 5 do
    ignore (Cs_svc.Fairq.admit q ~tenant:"heavy" ~lane:Cs_svc.Fairq.Batch ("heavy", i));
    ignore (Cs_svc.Fairq.admit q ~tenant:"light" ~lane:Cs_svc.Fairq.Batch ("light", i))
  done;
  let order = List.init 6 (fun _ -> Option.get (Cs_svc.Fairq.try_pull q)) in
  Alcotest.(check int) "weight-2 tenant gets 2/3 of early service" 4
    (List.length (List.filter (fun (t, _) -> t = "heavy") order))

let test_fairq_lane_priority_and_batch_share () =
  let q = Cs_svc.Fairq.create ~batch_share:2 ~capacity:16 () in
  for i = 0 to 3 do
    ignore (Cs_svc.Fairq.admit q ~tenant:"t" ~lane:Cs_svc.Fairq.Batch ("B", i))
  done;
  for i = 0 to 1 do
    ignore (Cs_svc.Fairq.admit q ~tenant:"t" ~lane:Cs_svc.Fairq.Interactive ("I", i))
  done;
  let order = List.init 6 (fun _ -> fst (Option.get (Cs_svc.Fairq.try_pull q))) in
  (* interactive first, but batch guaranteed every 2nd pull; batch
     drains the tail once interactive is empty *)
  Alcotest.(check (list string)) "lane interleaving"
    [ "I"; "B"; "I"; "B"; "B"; "B" ] order;
  Alcotest.(check int) "drained" 0 (Cs_svc.Fairq.length q)

let test_fairq_peak_watermark () =
  let q = Cs_svc.Fairq.create ~capacity:8 () in
  for i = 0 to 4 do
    ignore (Cs_svc.Fairq.admit q ~tenant:"t" ~lane:Cs_svc.Fairq.Batch i)
  done;
  for _ = 0 to 4 do
    ignore (Cs_svc.Fairq.try_pull q)
  done;
  Alcotest.(check int) "empty now" 0 (Cs_svc.Fairq.length q);
  Alcotest.(check int) "peak remembers the high-water mark" 5 (Cs_svc.Fairq.peak q)

(* --- brownout controller ------------------------------------------- *)

let test_brownout_escalates_and_recovers_hysteretically () =
  let settings =
    { Cs_svc.Brownout.default with
      high_ms = 50.0; low_ms = 10.0; alpha = 1.0; dwell_s = 1.0; max_level = 2 }
  in
  let b = Cs_svc.Brownout.create settings in
  Alcotest.(check int) "starts at level 0" 0 (Cs_svc.Brownout.level b);
  Alcotest.(check (option (float 0.0))) "no synthetic budget at level 0" None
    (Cs_svc.Brownout.budget_ms b);
  Cs_svc.Brownout.observe ~now:0.0 b ~wait_ms:100.0;
  Alcotest.(check int) "escalates immediately" 1 (Cs_svc.Brownout.level b);
  Cs_svc.Brownout.observe ~now:0.1 b ~wait_ms:100.0;
  Alcotest.(check int) "escalates again under sustained burn" 2
    (Cs_svc.Brownout.level b);
  Alcotest.(check int) "capped at max_level" 2
    (Cs_svc.Brownout.observe ~now:0.2 b ~wait_ms:500.0;
     Cs_svc.Brownout.level b);
  Alcotest.(check (float 1e-9)) "scale halves per level" 0.25 (Cs_svc.Brownout.scale b);
  (match Cs_svc.Brownout.budget_ms b with
  | Some ms ->
    Alcotest.(check (float 1e-9)) "synthetic budget halves above level 1"
      (settings.Cs_svc.Brownout.cap_ms /. 2.0) ms
  | None -> Alcotest.fail "expected a synthetic budget above level 0");
  (* quiet signal, but inside the dwell: no recovery yet *)
  Cs_svc.Brownout.observe ~now:0.5 b ~wait_ms:0.0;
  Alcotest.(check int) "dwell blocks immediate recovery" 2 (Cs_svc.Brownout.level b);
  (* past the dwell the level steps down one at a time *)
  Cs_svc.Brownout.observe ~now:2.0 b ~wait_ms:0.0;
  Alcotest.(check int) "recovers one level after dwell" 1 (Cs_svc.Brownout.level b);
  Cs_svc.Brownout.observe ~now:4.0 b ~wait_ms:0.0;
  Alcotest.(check int) "back to normal" 0 (Cs_svc.Brownout.level b);
  Alcotest.(check int) "upward transitions counted" 2
    (Cs_svc.Brownout.escalations b)

(* --- lanes engine end-to-end --------------------------------------- *)

let test_serve_splits_oversized_job () =
  let socket = tmp_path (Printf.sprintf "cs_svc_split_%d.sock" (Unix.getpid ())) in
  let cfg =
    Cs_svc.Server.config ~workers:2 ~queue_capacity:8 ~split_threshold:2 socket
  in
  let reply, extra =
    with_server cfg (fun server ->
        match
          Cs_svc.Client.submit ~timeout_s:120.0
            ~addr:(Cs_svc.Transport.parse_exn socket)
            [ Cs_svc.Proto.request ~id:"big" ~machine:"raw4" ~scale:8 "fir" ]
        with
        | Ok [ reply ] ->
          (reply, (Cs_svc.Server.server_stats server).Cs_svc.Proto.extra)
        | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)
        | Error e -> Alcotest.failf "submit failed: %s" e)
  in
  (match reply.Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Scheduled s ->
    Alcotest.(check bool) "aggregated cycles positive" true (s.cycles > 0)
  | Cs_svc.Proto.Refused e -> Alcotest.failf "split job refused: %s" e.message);
  let get k = try List.assoc k extra with Not_found -> -1.0 in
  Alcotest.(check bool) "splits counted" true (get "splits" >= 1.0)

let test_serve_quota_refusal_is_typed () =
  let socket = tmp_path (Printf.sprintf "cs_svc_quota_%d.sock" (Unix.getpid ())) in
  (* one slow worker, roomy global queue, but a one-job tenant quota:
     the pipelined burst must draw quota-exceeded (not overloaded) *)
  let cfg =
    Cs_svc.Server.config ~workers:1 ~queue_capacity:8 ~tenant_quota:1
      ~chaos_slow_ms:300.0 socket
  in
  let replies, stats =
    with_server cfg (fun server ->
        let jobs =
          List.init 6 (fun i ->
              Cs_svc.Proto.request ~id:(Printf.sprintf "q%d" i) ~machine:"raw4"
                ~tenant:"hog" "fir")
        in
        match
          Cs_svc.Client.submit ~timeout_s:60.0
            ~addr:(Cs_svc.Transport.parse_exn socket) jobs
        with
        | Error e -> Alcotest.failf "submit failed: %s" e
        | Ok replies -> (replies, Cs_svc.Server.stats server))
  in
  Alcotest.(check int) "every job answered" 6 (List.length replies);
  let quota_refused =
    List.filter
      (fun r ->
        match r.Cs_svc.Proto.verdict with
        | Cs_svc.Proto.Refused e -> e.kind = "quota-exceeded"
        | _ -> false)
      replies
  in
  Alcotest.(check bool) "typed quota refusals" true (List.length quota_refused >= 1);
  Alcotest.(check int) "stats agree with replies" (List.length quota_refused)
    stats.Cs_svc.Server.quota_refused;
  Alcotest.(check int) "quota is not a shed (capacity never reached)" 0
    stats.Cs_svc.Server.shed

let test_serve_mixed_verdict_strict_accounting () =
  let socket = tmp_path (Printf.sprintf "cs_svc_strict_%d.sock" (Unix.getpid ())) in
  let cfg =
    Cs_svc.Server.config ~workers:1 ~queue_capacity:1 ~chaos_slow_ms:150.0 socket
  in
  let replies =
    with_server cfg (fun _ ->
        let jobs =
          List.init 6 (fun i ->
              Cs_svc.Proto.request ~id:(Printf.sprintf "s%d" i) ~machine:"raw4" "fir")
        in
        match
          Cs_svc.Client.submit ~timeout_s:60.0
            ~addr:(Cs_svc.Transport.parse_exn socket) jobs
        with
        | Error e -> Alcotest.failf "submit failed: %s" e
        | Ok replies -> replies)
  in
  (* the exact classification `csched submit --strict` exits on:
     every reply is either scheduled or refused, sheds count as both
     refused and shed, and a mixed batch must trip the strict gate *)
  let scheduled, refused, shed =
    List.fold_left
      (fun (ok, refused, shed) (r : Cs_svc.Proto.reply) ->
        match r.Cs_svc.Proto.verdict with
        | Cs_svc.Proto.Scheduled _ -> (ok + 1, refused, shed)
        | Cs_svc.Proto.Refused { kind; _ }
          when kind = "overloaded" || kind = "quota-exceeded" ->
          (ok, refused + 1, shed + 1)
        | Cs_svc.Proto.Refused _ -> (ok, refused + 1, shed))
      (0, 0, 0) replies
  in
  Alcotest.(check int) "partition covers the batch" 6 (scheduled + refused);
  Alcotest.(check bool) "mixed verdicts: some scheduled" true (scheduled >= 1);
  Alcotest.(check bool) "mixed verdicts: some shed" true (shed >= 1);
  Alcotest.(check bool) "strict gate would trip" true (refused > 0)

let test_serve_queue_depth_peak_gauge () =
  let module M = Cs_obs.Metrics in
  let socket = tmp_path (Printf.sprintf "cs_svc_peak_%d.sock" (Unix.getpid ())) in
  let cfg =
    Cs_svc.Server.config ~workers:1 ~queue_capacity:4 ~chaos_slow_ms:150.0 socket
  in
  with_server cfg (fun _ ->
      let addr = Cs_svc.Transport.parse_exn socket in
      let jobs =
        List.init 4 (fun i ->
            Cs_svc.Proto.request ~id:(Printf.sprintf "p%d" i) ~machine:"raw4" "fir")
      in
      (match Cs_svc.Client.submit ~timeout_s:60.0 ~addr jobs with
      | Ok rs -> Alcotest.(check int) "all answered" 4 (List.length rs)
      | Error e -> Alcotest.failf "submit failed: %s" e);
      match Cs_svc.Client.fetch_metrics ~addr () with
      | Error e -> Alcotest.failf "metrics verb failed: %s" e
      | Ok (Cs_svc.Proto.Prom_text _) -> Alcotest.fail "asked for json"
      | Ok (Cs_svc.Proto.Snapshot snap) ->
        (match M.find snap "csched_queue_depth_peak" with
        | Some (M.Gauge_v v) ->
          Alcotest.(check bool) "peak gauge recorded a backlog" true (v >= 1.0)
        | _ -> Alcotest.fail "csched_queue_depth_peak missing"))

let test_serve_single_queue_engine_still_works () =
  let socket = tmp_path (Printf.sprintf "cs_svc_sq_%d.sock" (Unix.getpid ())) in
  let cfg =
    Cs_svc.Server.config ~workers:2 ~engine:Cs_svc.Server.Single_queue socket
  in
  with_server cfg (fun server ->
      match
        Cs_svc.Client.submit ~timeout_s:60.0
          ~addr:(Cs_svc.Transport.parse_exn socket)
          (List.init 3 (fun i ->
               Cs_svc.Proto.request ~id:(Printf.sprintf "b%d" i) ~machine:"raw4" "fir"))
      with
      | Error e -> Alcotest.failf "submit failed: %s" e
      | Ok rs ->
        Alcotest.(check int) "all answered" 3 (List.length rs);
        List.iter
          (fun (r : Cs_svc.Proto.reply) ->
            match r.Cs_svc.Proto.verdict with
            | Cs_svc.Proto.Scheduled _ -> ()
            | Cs_svc.Proto.Refused e -> Alcotest.failf "baseline refused: %s" e.message)
          rs;
        Alcotest.(check int) "completed" 3 (Cs_svc.Server.stats server).Cs_svc.Server.completed)

let () =
  Alcotest.run "svc"
    [
      ( "anytime",
        [
          Alcotest.test_case "expired deadline answers" `Quick
            test_expired_deadline_still_answers;
          Alcotest.test_case "truncates to one pass" `Quick
            test_expired_deadline_matches_first_pass_only;
          Alcotest.test_case "no deadline no timeout" `Quick
            test_no_deadline_never_times_out;
          Alcotest.test_case "pass budget quarantines" `Quick
            test_pass_timeout_quarantined;
          Alcotest.test_case "pass timeout in outcome" `Quick
            test_pass_timeout_surfaces_in_outcome;
        ] );
      ( "retry",
        [
          Alcotest.test_case "delays deterministic" `Quick test_retry_delays_deterministic;
          Alcotest.test_case "sleeps the schedule" `Quick
            test_retry_sleeps_recorded_schedule;
          Alcotest.test_case "gives up / skips permanent" `Quick
            test_retry_gives_up_and_skips_permanent;
        ] );
      ( "fsio",
        [ Alcotest.test_case "atomic write roundtrip" `Quick test_fsio_atomic_write_roundtrip ] );
      ( "checkpoint",
        [
          Alcotest.test_case "ga resume bit-identical" `Slow test_ga_resume_bit_identical;
          Alcotest.test_case "ga checkpoint file roundtrip" `Slow
            test_ga_checkpoint_file_roundtrip;
          Alcotest.test_case "ga deadline stops early" `Quick
            test_ga_deadline_reports_budget_exhausted;
          Alcotest.test_case "fuzz journal resume identical" `Slow
            test_fuzz_journal_resume_identical;
          Alcotest.test_case "fuzz journal mismatch fresh" `Quick
            test_fuzz_journal_mismatch_starts_fresh;
        ] );
      ( "queue",
        [
          Alcotest.test_case "bounds and order" `Quick test_squeue_bounds_and_order;
          Alcotest.test_case "concurrent" `Quick test_squeue_concurrent_producers_consumers;
          Alcotest.test_case "exact-capacity shed under racing producers" `Quick
            test_squeue_sheds_at_exact_capacity_concurrently;
        ] );
      ( "transport",
        [
          Alcotest.test_case "parse edge cases" `Quick test_transport_parse_edge_cases;
          Alcotest.test_case "port 0 resolves" `Quick test_transport_port_zero_resolves;
        ] );
      ( "proto",
        [
          Alcotest.test_case "request roundtrip" `Quick test_proto_request_roundtrip;
          Alcotest.test_case "reply roundtrip" `Quick test_proto_reply_roundtrip;
          Alcotest.test_case "idem key roundtrip" `Quick test_proto_idem_key_roundtrip;
          Alcotest.test_case "heartbeat roundtrip" `Quick test_proto_heartbeat_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_proto_malformed_line;
        ] );
      ( "job",
        [
          Alcotest.test_case "typed refusals" `Quick test_job_refusals_are_typed;
          Alcotest.test_case "schedules under deadline" `Quick
            test_job_schedules_with_deadline;
        ] );
      ( "server",
        [
          Alcotest.test_case "mixed batch" `Slow test_serve_mixed_batch;
          Alcotest.test_case "sheds overload" `Slow test_serve_sheds_when_overloaded;
          Alcotest.test_case "metrics verb" `Slow test_serve_metrics_verb;
          Alcotest.test_case "clean idempotent stop" `Slow
            test_serve_stop_is_clean_and_idempotent;
        ] );
      ("backoff", [ to_alcotest retry_backoff_prop ]);
      ( "tenancy",
        [
          Alcotest.test_case "proto tenant/class roundtrip" `Quick
            test_proto_tenant_class_roundtrip;
          Alcotest.test_case "quota binds per tenant" `Quick
            test_fairq_quota_binds_per_tenant;
          Alcotest.test_case "capacity sheds" `Quick test_fairq_capacity_sheds;
          Alcotest.test_case "DRR interleaves tenants" `Quick
            test_fairq_drr_interleaves_tenants;
          Alcotest.test_case "weights bias service" `Quick
            test_fairq_weights_bias_service;
          Alcotest.test_case "lane priority + batch share" `Quick
            test_fairq_lane_priority_and_batch_share;
          Alcotest.test_case "peak watermark" `Quick test_fairq_peak_watermark;
        ] );
      ( "brownout",
        [
          Alcotest.test_case "hysteretic escalate/recover" `Quick
            test_brownout_escalates_and_recovers_hysteretically;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "splits oversized job" `Slow
            test_serve_splits_oversized_job;
          Alcotest.test_case "typed quota refusal" `Slow
            test_serve_quota_refusal_is_typed;
          Alcotest.test_case "mixed-verdict strict accounting" `Slow
            test_serve_mixed_verdict_strict_accounting;
          Alcotest.test_case "queue depth peak gauge" `Slow
            test_serve_queue_depth_peak_gauge;
          Alcotest.test_case "single-queue engine baseline" `Slow
            test_serve_single_queue_engine_still_works;
        ] );
    ]
