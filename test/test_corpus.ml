(* Regression corpus replay: every checked-in repro under test/corpus/
   is a minimized scenario that once exposed a (deliberately injected or
   since-fixed) bug. Each must parse and replay violation-free at HEAD;
   a failure here means a regression the fuzzer already knows how to
   find. Run by `dune runtest` from _build/default/test. *)

let corpus_dir = "corpus"

let () =
  let repros = Cs_check.Repro.load_dir corpus_dir in
  let cases =
    List.map
      (fun (path, loaded) ->
        Alcotest.test_case (Filename.basename path) `Quick (fun () ->
            match loaded with
            | Error msg -> Alcotest.failf "%s does not parse: %s" path msg
            | Ok r ->
              (match Cs_check.Repro.replay r with
              | Ok () -> ()
              | Error v ->
                Alcotest.failf "%s regressed: %s: %s" path v.Cs_check.Oracle.check
                  v.Cs_check.Oracle.detail)))
      repros
  in
  let cases =
    if cases <> [] then cases
    else
      [ Alcotest.test_case "corpus directory present" `Quick (fun () ->
            Alcotest.failf "no .repro files found under %s"
              (Filename.concat (Sys.getcwd ()) corpus_dir)) ]
  in
  Alcotest.run "corpus" [ ("replay", cases) ]
