(* Tests for the differential fuzzing subsystem (lib/check): the
   generator is deterministic, the oracle is clean at HEAD over a seed
   sweep, injected schedule corruptions are caught and minimized to
   tiny repros, and repro files round-trip. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- generator --- *)

let test_gen_deterministic () =
  for seed = 0 to 30 do
    let a = Cs_check.Gen.case ~seed and b = Cs_check.Gen.case ~seed in
    check_bool "label" true (a.Cs_check.Scenario.label = b.Cs_check.Scenario.label);
    check_bool "machine" true
      (Cs_check.Scenario.machine_name a.Cs_check.Scenario.machine
      = Cs_check.Scenario.machine_name b.Cs_check.Scenario.machine);
    check_bool "spec" true
      (Cs_check.Scenario.spec_to_string a.Cs_check.Scenario.spec
      = Cs_check.Scenario.spec_to_string b.Cs_check.Scenario.spec);
    check_int "n_instrs"
      (Cs_ddg.Region.n_instrs a.Cs_check.Scenario.region)
      (Cs_ddg.Region.n_instrs b.Cs_check.Scenario.region)
  done

let test_gen_regions_fit_machines () =
  for seed = 0 to 60 do
    let s = Cs_check.Gen.case ~seed in
    check_bool "fits" true
      (Cs_machine.Machine.validate_region s.Cs_check.Scenario.machine
         s.Cs_check.Scenario.region
      = Ok ());
    check_bool "nonempty" true (Cs_ddg.Region.n_instrs s.Cs_check.Scenario.region > 0)
  done

let test_gen_covers_shapes_and_machines () =
  let labels = Hashtbl.create 8 and machines = Hashtbl.create 8 in
  for seed = 0 to 120 do
    let s = Cs_check.Gen.case ~seed in
    Hashtbl.replace labels s.Cs_check.Scenario.label ();
    Hashtbl.replace machines
      (Cs_check.Scenario.machine_name s.Cs_check.Scenario.machine)
      ()
  done;
  check_bool "several shapes" true (Hashtbl.length labels >= 4);
  check_bool "several machines" true (Hashtbl.length machines >= 5)

let test_gen_degraded_extends_healthy () =
  let damaged = ref 0 and chaotic = ref 0 in
  for seed = 0 to 60 do
    let h = Cs_check.Gen.case ~seed and d = Cs_check.Gen.case_degraded ~seed in
    (* Same base draw: only faults and (possibly) a CHAOS pass differ. *)
    check_bool "same machine" true
      (Cs_check.Scenario.machine_name h.Cs_check.Scenario.machine
      = Cs_check.Scenario.machine_name d.Cs_check.Scenario.machine);
    check_int "same region"
      (Cs_ddg.Region.n_instrs h.Cs_check.Scenario.region)
      (Cs_ddg.Region.n_instrs d.Cs_check.Scenario.region);
    check_bool "healthy has no faults" true (h.Cs_check.Scenario.faults = []);
    if d.Cs_check.Scenario.faults <> [] then begin
      incr damaged;
      (* The plan applies, and the degraded machine still fits the region. *)
      let dm = Cs_check.Scenario.scheduling_machine d in
      check_bool "degraded machine valid" true
        (Cs_machine.Machine.validate_region dm d.Cs_check.Scenario.region = Ok ())
    end;
    (match d.Cs_check.Scenario.spec with
    | Cs_check.Scenario.Passes passes
      when List.exists (fun p -> p.Cs_core.Pass.name = "CHAOS") passes ->
      incr chaotic
    | _ -> ())
  done;
  check_bool "fault plans drawn" true (!damaged >= 20);
  check_bool "chaos spliced sometimes" true (!chaotic >= 1)

(* --- oracle at HEAD --- *)

let test_oracle_clean_at_head () =
  let stats, findings = Cs_check.Fuzz.run ~shrink:false ~seeds:(0, 80) () in
  check_int "cases" 81 stats.Cs_check.Fuzz.cases;
  (match findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d (%s) violated %s: %s" f.Cs_check.Fuzz.seed
      f.Cs_check.Fuzz.label f.Cs_check.Fuzz.check f.Cs_check.Fuzz.detail);
  check_int "violations" 0 stats.Cs_check.Fuzz.violations

let test_oracle_clean_degraded () =
  (* The fallback chain's promise, fuzzed: over degraded machines and
     sabotaged pass sequences, every schedule that comes back satisfies
     every judge (typed refusals are allowed, crashes are not). *)
  let stats, findings =
    Cs_check.Fuzz.run ~shrink:false ~degraded:true ~seeds:(0, 80) ()
  in
  check_int "cases" 81 stats.Cs_check.Fuzz.cases;
  (match findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "degraded seed %d (%s) violated %s: %s" f.Cs_check.Fuzz.seed
      f.Cs_check.Fuzz.label f.Cs_check.Fuzz.check f.Cs_check.Fuzz.detail);
  check_int "violations" 0 stats.Cs_check.Fuzz.violations

let test_fuzz_deterministic_across_domains () =
  let run domains =
    let _, findings =
      Cs_check.Fuzz.run ~domains ~shrink:false
        ~transform:(fun s -> { s with Cs_sched.Schedule.comms = [] })
        ~seeds:(0, 40) ()
    in
    List.map (fun f -> (f.Cs_check.Fuzz.seed, f.Cs_check.Fuzz.check)) findings
  in
  check_bool "same findings" true (run 1 = run 4)

(* --- injected bugs: caught and minimized --- *)

(* Dropping every synthesized transfer models a scheduler that forgets
   communication (or a validator whose comm checks were deleted). *)
let drop_comms s = { s with Cs_sched.Schedule.comms = [] }

let test_injected_bug_caught_and_minimized () =
  let tmp = Filename.temp_file "cs-corpus" "" in
  Sys.remove tmp;
  let stats, findings =
    Cs_check.Fuzz.run ~transform:drop_comms ~corpus_dir:tmp ~shrink_budget:200
      ~seeds:(0, 40) ()
  in
  check_bool "bug found" true (stats.Cs_check.Fuzz.violations > 0);
  List.iter
    (fun f ->
      (* Acceptance bar from the issue: auto-minimized to a tiny repro. *)
      check_bool
        (Printf.sprintf "seed %d shrunk to %d instrs" f.Cs_check.Fuzz.seed
           f.Cs_check.Fuzz.shrunk_instrs)
        true
        (f.Cs_check.Fuzz.shrunk_instrs <= 12);
      (* The written repro file parses and replays cleanly at HEAD (the
         "bug" lives in the transform, not the tree). *)
      match f.Cs_check.Fuzz.repro_path with
      | None -> Alcotest.fail "no repro written"
      | Some path ->
        (match Cs_check.Repro.load path with
        | Error msg -> Alcotest.failf "%s: %s" path msg
        | Ok r ->
          check_bool "records failing check" true (r.Cs_check.Repro.check <> None);
          check_bool "replays Ok at HEAD" true (Cs_check.Repro.replay r = Ok ())))
    findings;
  Array.iter (fun f -> Sys.remove (Filename.concat tmp f)) (Sys.readdir tmp);
  Sys.rmdir tmp

let test_oracle_catches_late_arrival () =
  (* Shaving a cycle off every transfer's arrival (a skipped hop) must
     trip the validator on any scenario that communicates. *)
  let shave s =
    {
      s with
      Cs_sched.Schedule.comms =
        List.map
          (fun c -> { c with Cs_sched.Schedule.arrive = c.Cs_sched.Schedule.arrive - 1 })
          s.Cs_sched.Schedule.comms;
    }
  in
  let stats, _ = Cs_check.Fuzz.run ~shrink:false ~transform:shave ~seeds:(0, 60) () in
  check_bool "caught" true (stats.Cs_check.Fuzz.violations > 0)

(* --- shrinker --- *)

let test_shrink_isolates_marked_instruction () =
  (* Predicate: the region still contains a store. ddmin should strip
     everything else. *)
  let scenario = Cs_check.Gen.case ~seed:3 in
  let region =
    Cs_workloads.Shapes.layered ~n:60 ~mem_fraction:0.2
      ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:2)
      ~seed:11 ()
  in
  let scenario = { scenario with Cs_check.Scenario.region } in
  let has_store s =
    Array.exists
      (fun ins -> ins.Cs_ddg.Instr.op = Cs_ddg.Opcode.Store)
      (Cs_ddg.Graph.instrs s.Cs_check.Scenario.region.Cs_ddg.Region.graph)
  in
  check_bool "precondition" true (has_store scenario);
  let outcome = Cs_check.Shrink.minimize ~test:has_store scenario in
  check_bool "minimized to the store alone" true
    (Cs_ddg.Region.n_instrs outcome.Cs_check.Shrink.scenario.Cs_check.Scenario.region <= 2);
  check_bool "still failing" true (has_store outcome.Cs_check.Shrink.scenario)

let test_shrink_keeps_regions_well_formed () =
  let scenario = Cs_check.Gen.case ~seed:17 in
  let outcome =
    Cs_check.Shrink.minimize
      ~test:(fun s ->
        Cs_machine.Machine.validate_region s.Cs_check.Scenario.machine
          s.Cs_check.Scenario.region
        = Ok ())
      scenario
  in
  check_bool "result fits machine" true
    (Cs_machine.Machine.validate_region
       outcome.Cs_check.Shrink.scenario.Cs_check.Scenario.machine
       outcome.Cs_check.Shrink.scenario.Cs_check.Scenario.region
    = Ok ())

(* --- repro round-trip --- *)

let test_repro_roundtrip () =
  for seed = 0 to 20 do
    let scenario = Cs_check.Gen.case ~seed in
    let r = { Cs_check.Repro.scenario; check = Some "validator"; note = Some "note" } in
    match Cs_check.Repro.of_string (Cs_check.Repro.to_string r) with
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
    | Ok r' ->
      check_bool "machine" true
        (Cs_check.Scenario.machine_name r'.Cs_check.Repro.scenario.Cs_check.Scenario.machine
        = Cs_check.Scenario.machine_name scenario.Cs_check.Scenario.machine);
      check_bool "spec" true
        (Cs_check.Scenario.spec_to_string r'.Cs_check.Repro.scenario.Cs_check.Scenario.spec
        = Cs_check.Scenario.spec_to_string scenario.Cs_check.Scenario.spec);
      check_int "seed" r'.Cs_check.Repro.scenario.Cs_check.Scenario.seed seed;
      check_int "n_instrs"
        (Cs_ddg.Region.n_instrs r'.Cs_check.Repro.scenario.Cs_check.Scenario.region)
        (Cs_ddg.Region.n_instrs scenario.Cs_check.Scenario.region);
      check_bool "check" true (r'.Cs_check.Repro.check = Some "validator")
  done

let test_repro_roundtrips_faults () =
  (* A degraded scenario's plan survives serialization; a healthy one
     writes no faults header (backward-compatible format). *)
  let rec degraded_seed seed =
    let s = Cs_check.Gen.case_degraded ~seed in
    if s.Cs_check.Scenario.faults <> [] then s else degraded_seed (seed + 1)
  in
  let scenario = degraded_seed 0 in
  let r = { Cs_check.Repro.scenario; check = None; note = None } in
  (match Cs_check.Repro.of_string (Cs_check.Repro.to_string r) with
  | Error msg -> Alcotest.failf "degraded round trip: %s" msg
  | Ok r' ->
    check_bool "faults preserved" true
      (Cs_resil.Fault.to_string r'.Cs_check.Repro.scenario.Cs_check.Scenario.faults
      = Cs_resil.Fault.to_string scenario.Cs_check.Scenario.faults));
  let healthy = Cs_check.Gen.case ~seed:5 in
  let text =
    Cs_check.Repro.to_string
      { Cs_check.Repro.scenario = healthy; check = None; note = None }
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "no faults header when healthy" false (contains text "faults ");
  (* A plan that does not fit the named machine is rejected. *)
  check_bool "bad plan rejected" true
    (Result.is_error
       (Cs_check.Repro.of_string
          "cs-check-repro v1\nmachine vliw-4c\nscheduler baseline:uas\nfaults link=0-1\nseed 0\nregion\nregion r\n"))

let test_repro_rejects_garbage () =
  check_bool "bad magic" true (Result.is_error (Cs_check.Repro.of_string "nonsense"));
  check_bool "bad machine" true
    (Result.is_error
       (Cs_check.Repro.of_string
          "cs-check-repro v1\nmachine warp9\nscheduler baseline:uas\nseed 0\nregion\nregion r\n"))

let test_findings_jsonl_parses () =
  let _, findings =
    Cs_check.Fuzz.run ~transform:drop_comms ~shrink:false ~seeds:(0, 30) ()
  in
  check_bool "has findings" true (findings <> []);
  String.split_on_char '\n' (Cs_check.Fuzz.findings_jsonl findings)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Cs_obs.Json.of_string line with
         | Error msg -> Alcotest.failf "bad JSONL line %S: %s" line msg
         | Ok json ->
           check_bool "has seed" true (Cs_obs.Json.member "seed" json <> None);
           check_bool "has check" true (Cs_obs.Json.member "check" json <> None))

let () =
  Alcotest.run "cs_check"
    [
      ( "gen",
        [ Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "regions fit machines" `Quick test_gen_regions_fit_machines;
          Alcotest.test_case "covers shapes and machines" `Quick
            test_gen_covers_shapes_and_machines;
          Alcotest.test_case "degraded extends healthy" `Quick
            test_gen_degraded_extends_healthy ] );
      ( "oracle",
        [ Alcotest.test_case "clean at HEAD (seeds 0..80)" `Slow test_oracle_clean_at_head;
          Alcotest.test_case "deterministic across domains" `Slow
            test_fuzz_deterministic_across_domains;
          Alcotest.test_case "dropped comms caught + minimized" `Slow
            test_injected_bug_caught_and_minimized;
          Alcotest.test_case "late arrival caught" `Slow test_oracle_catches_late_arrival;
          Alcotest.test_case "clean on degraded machines (seeds 0..80)" `Slow
            test_oracle_clean_degraded ] );
      ( "shrink",
        [ Alcotest.test_case "isolates marked instruction" `Quick
            test_shrink_isolates_marked_instruction;
          Alcotest.test_case "keeps regions well-formed" `Quick
            test_shrink_keeps_regions_well_formed ] );
      ( "repro",
        [ Alcotest.test_case "round-trips" `Quick test_repro_roundtrip;
          Alcotest.test_case "round-trips fault plans" `Quick test_repro_roundtrips_faults;
          Alcotest.test_case "rejects garbage" `Quick test_repro_rejects_garbage;
          Alcotest.test_case "findings export as JSONL" `Quick test_findings_jsonl_parses ] );
    ]
