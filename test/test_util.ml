(* Unit tests for Cs_util: RNG, heap, union-find, stats, table, bitset. *)

(* Seed QCheck's Random.State from Cs_util.Rng so `dune runtest` is
   bit-reproducible (to_alcotest's default state is self_init'd). *)
let to_alcotest test =
  let rng = Cs_util.Rng.create 0xB17_5EED in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make (Array.init 8 (fun _ -> Cs_util.Rng.int rng 0x3FFFFFFF)))
    test

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Cs_util.Rng.create 7 and b = Cs_util.Rng.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Cs_util.Rng.bits64 a = Cs_util.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Cs_util.Rng.create 1 and b = Cs_util.Rng.create 2 in
  check_bool "different seeds differ" false (Cs_util.Rng.bits64 a = Cs_util.Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Cs_util.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Cs_util.Rng.int rng 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Cs_util.Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Cs_util.Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Cs_util.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Cs_util.Rng.float rng 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_range () =
  let rng = Cs_util.Rng.create 11 in
  for _ = 1 to 200 do
    let v = Cs_util.Rng.range rng 5 9 in
    check_bool "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_range_covers_endpoints () =
  let rng = Cs_util.Rng.create 13 in
  let seen = Array.make 3 false in
  for _ = 1 to 300 do
    seen.(Cs_util.Rng.range rng 0 2) <- true
  done;
  Array.iter (fun b -> check_bool "endpoint hit" true b) seen

let test_rng_split_independent () =
  let parent = Cs_util.Rng.create 21 in
  let child = Cs_util.Rng.split parent in
  check_bool "split streams differ" false
    (Cs_util.Rng.bits64 parent = Cs_util.Rng.bits64 child)

let test_rng_copy () =
  let a = Cs_util.Rng.create 9 in
  ignore (Cs_util.Rng.bits64 a);
  let b = Cs_util.Rng.copy a in
  check_bool "copy replays" true (Cs_util.Rng.bits64 a = Cs_util.Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Cs_util.Rng.create 31 in
  let arr = Array.init 20 (fun i -> i) in
  Cs_util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_gaussian_moments () =
  let rng = Cs_util.Rng.create 43 in
  let n = 20000 in
  let samples = List.init n (fun _ -> Cs_util.Rng.gaussian rng) in
  let mean = Cs_util.Stats.mean samples in
  let sd = Cs_util.Stats.stddev samples in
  check_bool "mean near 0" true (Float.abs mean < 0.05);
  check_bool "sd near 1" true (Float.abs (sd -. 1.0) < 0.05)

(* --- Heap --- *)

let test_heap_sorted_drain () =
  let h = Cs_util.Heap.of_list ~cmp:Int.compare [ 5; 3; 8; 1; 9; 2; 7 ] in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Cs_util.Heap.to_sorted_list h)

let test_heap_empty () =
  let h = Cs_util.Heap.create ~cmp:Int.compare in
  check_bool "is_empty" true (Cs_util.Heap.is_empty h);
  check_bool "pop none" true (Cs_util.Heap.pop h = None);
  check_bool "peek none" true (Cs_util.Heap.peek h = None)

let test_heap_peek_does_not_remove () =
  let h = Cs_util.Heap.of_list ~cmp:Int.compare [ 4; 2 ] in
  check_bool "peek min" true (Cs_util.Heap.peek h = Some 2);
  check_int "length unchanged" 2 (Cs_util.Heap.length h)

let test_heap_duplicates () =
  let h = Cs_util.Heap.of_list ~cmp:Int.compare [ 3; 3; 1; 3 ] in
  Alcotest.(check (list int)) "dups kept" [ 1; 3; 3; 3 ] (Cs_util.Heap.to_sorted_list h)

let test_heap_custom_order () =
  let h = Cs_util.Heap.of_list ~cmp:(fun a b -> Int.compare b a) [ 1; 5; 3 ] in
  check_bool "max-heap via cmp" true (Cs_util.Heap.pop h = Some 5)

let test_heap_random_qcheck =
  let prop =
    QCheck.Test.make ~count:200 ~name:"heap drains sorted"
      QCheck.(list int)
      (fun xs ->
        let h = Cs_util.Heap.of_list ~cmp:Int.compare xs in
        Cs_util.Heap.to_sorted_list h = List.sort Int.compare xs)
  in
  to_alcotest prop

(* --- Union-find --- *)

let test_uf_initial () =
  let uf = Cs_util.Union_find.create 5 in
  check_int "five sets" 5 (Cs_util.Union_find.n_sets uf);
  check_bool "not same" false (Cs_util.Union_find.same uf 0 1)

let test_uf_union () =
  let uf = Cs_util.Union_find.create 5 in
  ignore (Cs_util.Union_find.union uf 0 1);
  ignore (Cs_util.Union_find.union uf 1 2);
  check_bool "transitively same" true (Cs_util.Union_find.same uf 0 2);
  check_int "three sets" 3 (Cs_util.Union_find.n_sets uf)

let test_uf_idempotent_union () =
  let uf = Cs_util.Union_find.create 3 in
  ignore (Cs_util.Union_find.union uf 0 1);
  ignore (Cs_util.Union_find.union uf 0 1);
  check_int "two sets" 2 (Cs_util.Union_find.n_sets uf)

let test_uf_groups () =
  let uf = Cs_util.Union_find.create 4 in
  ignore (Cs_util.Union_find.union uf 0 2);
  let groups = Cs_util.Union_find.groups uf in
  check_int "three groups" 3 (Hashtbl.length groups);
  let r = Cs_util.Union_find.find uf 0 in
  Alcotest.(check (list int)) "members ascending" [ 0; 2 ] (Hashtbl.find groups r)

(* --- Stats --- *)

let test_stats_mean () = check_float "mean" 2.0 (Cs_util.Stats.mean [ 1.0; 2.0; 3.0 ])
let test_stats_mean_empty () = check_float "empty mean" 0.0 (Cs_util.Stats.mean [])

let test_stats_geomean () =
  check_float "geomean of 4,1" 2.0 (Cs_util.Stats.geomean [ 4.0; 1.0 ]);
  check_float "geomean of 2,2,2" 2.0 (Cs_util.Stats.geomean [ 2.0; 2.0; 2.0 ])

let test_stats_geomean_rejects_nonpositive () =
  Alcotest.check_raises "geomean <= 0"
    (Invalid_argument "Stats.geomean: non-positive input") (fun () ->
      ignore (Cs_util.Stats.geomean [ 1.0; 0.0 ]))

let test_stats_median_odd () = check_float "median odd" 2.0 (Cs_util.Stats.median [ 3.0; 1.0; 2.0 ])
let test_stats_median_even () =
  check_float "median even" 2.5 (Cs_util.Stats.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_stats_stddev () =
  check_float "stddev" 2.0 (Cs_util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percent_change () =
  check_float "+21%" 21.0 (Cs_util.Stats.percent_change ~baseline:100.0 121.0)

let test_stats_ratio_summary () =
  check_float "avg ratio" 1.5 (Cs_util.Stats.ratio_summary [ (3.0, 2.0); (3.0, 3.0); (4.0, 2.0) ])

(* --- Table --- *)

let test_table_renders_cells () =
  let t = Cs_util.Table.create ~header:[ "a"; "b" ] in
  Cs_util.Table.add_row t [ "hello"; "1" ];
  let s = Cs_util.Table.render t in
  check_bool "has header" true (String.length s > 0);
  check_bool "contains hello" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "hello"))

let test_table_ragged_rows () =
  let t = Cs_util.Table.create ~header:[ "x"; "y"; "z" ] in
  Cs_util.Table.add_row t [ "1" ];
  let s = Cs_util.Table.render t in
  check_bool "renders" true (String.length s > 0)

let test_table_cell_float () =
  Alcotest.(check string) "two decimals" "3.14" (Cs_util.Table.cell_float 3.14159);
  Alcotest.(check string) "zero decimals" "3" (Cs_util.Table.cell_float ~decimals:0 3.14159)

let test_table_bar () =
  Alcotest.(check string) "full bar" "##########"
    (Cs_util.Table.bar ~width:10 ~max_value:2.0 2.0);
  Alcotest.(check string) "half bar" "#####" (Cs_util.Table.bar ~width:10 ~max_value:2.0 1.0);
  Alcotest.(check string) "empty on zero max" "" (Cs_util.Table.bar ~width:10 ~max_value:0.0 1.0)

(* --- Bitset --- *)

let test_bitset_add_mem () =
  let s = Cs_util.Bitset.create 100 in
  Cs_util.Bitset.add s 0;
  Cs_util.Bitset.add s 99;
  check_bool "mem 0" true (Cs_util.Bitset.mem s 0);
  check_bool "mem 99" true (Cs_util.Bitset.mem s 99);
  check_bool "not mem 50" false (Cs_util.Bitset.mem s 50);
  check_int "cardinal" 2 (Cs_util.Bitset.cardinal s)

let test_bitset_remove () =
  let s = Cs_util.Bitset.create 10 in
  Cs_util.Bitset.add s 3;
  Cs_util.Bitset.remove s 3;
  check_bool "removed" false (Cs_util.Bitset.mem s 3);
  check_int "cardinal 0" 0 (Cs_util.Bitset.cardinal s)

let test_bitset_double_add () =
  let s = Cs_util.Bitset.create 10 in
  Cs_util.Bitset.add s 4;
  Cs_util.Bitset.add s 4;
  check_int "counted once" 1 (Cs_util.Bitset.cardinal s)

let test_bitset_to_list () =
  let s = Cs_util.Bitset.create 16 in
  List.iter (Cs_util.Bitset.add s) [ 9; 1; 4 ];
  Alcotest.(check (list int)) "ascending" [ 1; 4; 9 ] (Cs_util.Bitset.to_list s)

let test_bitset_bounds () =
  let s = Cs_util.Bitset.create 4 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Cs_util.Bitset.add s 4)

let test_bitset_clear () =
  let s = Cs_util.Bitset.create 8 in
  List.iter (Cs_util.Bitset.add s) [ 0; 1; 2 ];
  Cs_util.Bitset.clear s;
  check_int "cleared" 0 (Cs_util.Bitset.cardinal s)

(* --- Wal --- *)

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "cs_wal_%s_%d_%d" name (Unix.getpid ()) !n)
    in
    (* a stale dir from a killed earlier run must not leak records in *)
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

let last_segment dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".log")
  |> List.sort compare |> List.rev |> List.hd |> Filename.concat dir

let test_wal_roundtrip () =
  let dir = fresh_dir "roundtrip" in
  let wal, rec0 = Cs_util.Wal.open_dir ~dir () in
  check_int "fresh log has no records" 0 (List.length rec0.Cs_util.Wal.records);
  let payloads = [ "alpha"; ""; "with\nnewline"; String.make 4096 'x' ] in
  List.iter (Cs_util.Wal.append wal) payloads;
  Cs_util.Wal.sync wal;
  Cs_util.Wal.append_sync wal "tail";
  Cs_util.Wal.close wal;
  let wal2, rec1 = Cs_util.Wal.open_dir ~dir () in
  Alcotest.(check (list string))
    "records recovered in append order" (payloads @ [ "tail" ])
    rec1.Cs_util.Wal.records;
  check_int "clean log truncates nothing" 0 rec1.Cs_util.Wal.truncated_bytes;
  Cs_util.Wal.close wal2

let test_wal_torn_tail_truncated () =
  let dir = fresh_dir "torn" in
  let wal, _ = Cs_util.Wal.open_dir ~dir () in
  Cs_util.Wal.append_sync wal "keep-1";
  Cs_util.Wal.append_sync wal "keep-2";
  Cs_util.Wal.close wal;
  (* simulate a crash mid-append: garbage after the last whole record *)
  let seg = last_segment dir in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc "CSW1\x40\x00\x00\x00torn";
  close_out oc;
  let wal2, recov = Cs_util.Wal.open_dir ~dir () in
  Alcotest.(check (list string))
    "whole records survive" [ "keep-1"; "keep-2" ] recov.Cs_util.Wal.records;
  check_bool "tear measured" true (recov.Cs_util.Wal.truncated_bytes > 0);
  (* the log must be writable again, and the truncation durable *)
  Cs_util.Wal.append_sync wal2 "after-recovery";
  Cs_util.Wal.close wal2;
  let wal3, recov2 = Cs_util.Wal.open_dir ~dir () in
  Alcotest.(check (list string))
    "recovered log appends cleanly"
    [ "keep-1"; "keep-2"; "after-recovery" ]
    recov2.Cs_util.Wal.records;
  check_int "second scan is clean" 0 recov2.Cs_util.Wal.truncated_bytes;
  Cs_util.Wal.close wal3

let test_wal_corrupt_record_cuts_suffix () =
  let dir = fresh_dir "corrupt" in
  let wal, _ = Cs_util.Wal.open_dir ~dir () in
  Cs_util.Wal.append_sync wal "good";
  Cs_util.Wal.append_sync wal "to-be-damaged";
  Cs_util.Wal.append_sync wal "doomed-suffix";
  Cs_util.Wal.close wal;
  (* flip one payload byte inside the middle record: its CRC fails, and
     everything after the first bad record is untrustworthy *)
  let seg = last_segment dir in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0o644 in
  let off = 12 + 4 + 12 + 2 (* rec1 frame+payload, rec2 header, 2 into payload *) in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  let wal2, recov = Cs_util.Wal.open_dir ~dir () in
  Alcotest.(check (list string))
    "prefix up to the first bad record" [ "good" ] recov.Cs_util.Wal.records;
  check_bool "bad suffix counted" true (recov.Cs_util.Wal.truncated_bytes > 0);
  Cs_util.Wal.close wal2

let test_wal_rotation_and_reset () =
  let dir = fresh_dir "rotate" in
  let wal, _ = Cs_util.Wal.open_dir ~segment_bytes:64 ~dir () in
  for i = 1 to 12 do
    Cs_util.Wal.append_sync wal (Printf.sprintf "record-%02d" i)
  done;
  Cs_util.Wal.close wal;
  let n_segments =
    Array.length
      (Array.of_list
         (List.filter
            (fun n -> Filename.check_suffix n ".log")
            (Array.to_list (Sys.readdir dir))))
  in
  check_bool "rotated into multiple segments" true (n_segments > 1);
  let wal2, recov = Cs_util.Wal.open_dir ~segment_bytes:64 ~dir () in
  check_int "all records span segments" 12 (List.length recov.Cs_util.Wal.records);
  check_int "segments reported" n_segments recov.Cs_util.Wal.segments;
  Cs_util.Wal.reset wal2;
  check_int "reset empties the log" 0 (Cs_util.Wal.size_bytes wal2);
  Cs_util.Wal.close wal2;
  let wal3, recov3 = Cs_util.Wal.open_dir ~dir () in
  check_int "nothing to recover after reset" 0
    (List.length recov3.Cs_util.Wal.records);
  Cs_util.Wal.close wal3

let test_wal_group_commit_concurrent () =
  let dir = fresh_dir "group" in
  let wal, _ = Cs_util.Wal.open_dir ~dir () in
  let per_domain = 50 in
  let writers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Cs_util.Wal.append_sync wal (Printf.sprintf "d%d-%03d" d i)
            done))
  in
  List.iter Domain.join writers;
  Cs_util.Wal.close wal;
  let wal2, recov = Cs_util.Wal.open_dir ~dir () in
  check_int "every concurrent append durable" (4 * per_domain)
    (List.length recov.Cs_util.Wal.records);
  (* per-writer record order must be preserved even across batches *)
  List.iteri
    (fun d _ ->
      let prefix = Printf.sprintf "d%d-" d in
      let mine =
        List.filter
          (fun r -> String.length r > 3 && String.sub r 0 3 = prefix)
          recov.Cs_util.Wal.records
      in
      Alcotest.(check (list string))
        (Printf.sprintf "writer %d in order" d)
        (List.init per_domain (fun i -> Printf.sprintf "%s%03d" prefix i))
        mine)
    [ 0; 1; 2; 3 ];
  Cs_util.Wal.close wal2

(* --- Fsio --- *)

let test_fsio_sweeps_orphan_temps () =
  let dir = fresh_dir "fsio" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir "artifact.json" in
  (* orphans from writers that crashed between create and rename *)
  let orphan1 = path ^ ".tmp.999999" and orphan2 = path ^ ".tmp.4242" in
  List.iter
    (fun p ->
      let oc = open_out p in
      output_string oc "half-written";
      close_out oc)
    [ orphan1; orphan2 ];
  Cs_util.Fsio.write_atomic ~path "fresh contents";
  Alcotest.(check (option string))
    "write lands" (Some "fresh contents") (Cs_util.Fsio.read_opt path);
  check_bool "orphan 1 swept" false (Sys.file_exists orphan1);
  check_bool "orphan 2 swept" false (Sys.file_exists orphan2);
  (* non-temp siblings must survive the sweep *)
  let sibling = Filename.concat dir "artifact.json.bak" in
  let oc = open_out sibling in
  output_string oc "keep";
  close_out oc;
  Cs_util.Fsio.write_atomic ~path "again";
  check_bool "unrelated sibling untouched" true (Sys.file_exists sibling)

let () =
  Alcotest.run "cs_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "range bounds" `Quick test_rng_range;
          Alcotest.test_case "range endpoints" `Quick test_rng_range_covers_endpoints;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek keeps" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "custom order" `Quick test_heap_custom_order;
          test_heap_random_qcheck;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "initial" `Quick test_uf_initial;
          Alcotest.test_case "union" `Quick test_uf_union;
          Alcotest.test_case "idempotent" `Quick test_uf_idempotent_union;
          Alcotest.test_case "groups" `Quick test_uf_groups;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "geomean rejects" `Quick test_stats_geomean_rejects_nonpositive;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percent change" `Quick test_stats_percent_change;
          Alcotest.test_case "ratio summary" `Quick test_stats_ratio_summary;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders_cells;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "cell float" `Quick test_table_cell_float;
          Alcotest.test_case "bar" `Quick test_table_bar;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "add/mem" `Quick test_bitset_add_mem;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          Alcotest.test_case "double add" `Quick test_bitset_double_add;
          Alcotest.test_case "to_list" `Quick test_bitset_to_list;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "clear" `Quick test_bitset_clear;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append/recover roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick test_wal_torn_tail_truncated;
          Alcotest.test_case "corrupt record cuts suffix" `Quick
            test_wal_corrupt_record_cuts_suffix;
          Alcotest.test_case "rotation + reset" `Quick test_wal_rotation_and_reset;
          Alcotest.test_case "concurrent group commit" `Quick
            test_wal_group_commit_concurrent;
        ] );
      ( "fsio",
        [ Alcotest.test_case "orphan temp sweep" `Quick test_fsio_sweeps_orphan_temps ] );
    ]
