(* Error-path tests for Cs_sim.Interp.of_schedule: the semantic oracle
   must reject schedules that read a value before the producer finishes,
   read on a cluster the value was never delivered to, or read a homed
   live-in away from its home without a transfer — and must accept the
   corrected schedule in each case. *)

open Cs_sched

let vliw2 = Cs_machine.Vliw.create ~n_clusters:2 ()

(* i0: a = mov x (x an un-homed live-in); i1: c = mov a. *)
let producer_consumer () =
  let b = Cs_ddg.Builder.create ~name:"interp-pc" () in
  let x = Cs_ddg.Builder.live_in b in
  let a = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Mov x in
  let c = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Mov a in
  Cs_ddg.Builder.mark_live_out b c;
  Cs_ddg.Builder.finish b

(* c = mov x, with x a live-in homed on cluster 0. *)
let homed_consumer () =
  let b = Cs_ddg.Builder.create ~name:"interp-homed" () in
  let x = Cs_ddg.Builder.live_in ~home:0 b in
  let c = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Mov x in
  Cs_ddg.Builder.mark_live_out b c;
  (Cs_ddg.Builder.finish b, x)

let entry ~cluster ~start ~finish = { Schedule.cluster; fu = 0; start; finish }

let make_sched region ?live_in_homes ~entries ~comms () =
  Schedule.make ~machine:vliw2 ~graph:region.Cs_ddg.Region.graph ?live_in_homes
    ~entries:(Array.of_list entries) ~comms ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_error part result =
  match result with
  | Ok _ -> Alcotest.failf "expected an error mentioning %S, got Ok" part
  | Error msg ->
    if not (contains ~sub:part msg) then
      Alcotest.failf "error %S does not mention %S" msg part

let test_same_cluster_ok () =
  let region = producer_consumer () in
  let sched =
    make_sched region
      ~entries:
        [ entry ~cluster:0 ~start:0 ~finish:1; entry ~cluster:0 ~start:1 ~finish:2 ]
      ~comms:[] ()
  in
  Alcotest.(check bool)
    "equivalent" true
    (Cs_sim.Interp.equivalent region sched = Ok ())

let test_operand_not_arrived () =
  let region = producer_consumer () in
  (* Consumer issues at cycle 0, before the producer's finish at 1. *)
  let sched =
    make_sched region
      ~entries:
        [ entry ~cluster:0 ~start:0 ~finish:1; entry ~cluster:0 ~start:0 ~finish:1 ]
      ~comms:[] ()
  in
  expect_error "arrives at" (Cs_sim.Interp.of_schedule sched)

let test_missing_comm () =
  let region = producer_consumer () in
  (* Consumer on the other cluster with no transfer at all. *)
  let sched =
    make_sched region
      ~entries:
        [ entry ~cluster:0 ~start:0 ~finish:1; entry ~cluster:1 ~start:2 ~finish:3 ]
      ~comms:[] ()
  in
  expect_error "no delivery" (Cs_sim.Interp.of_schedule sched)

let test_late_comm () =
  let region = producer_consumer () in
  (* Transfer exists but lands after the consumer's issue cycle. *)
  let sched =
    make_sched region
      ~entries:
        [ entry ~cluster:0 ~start:0 ~finish:1; entry ~cluster:1 ~start:2 ~finish:3 ]
      ~comms:[ { Schedule.producer = 0; src = 0; dst = 1; depart = 3; arrive = 4 } ]
      ()
  in
  expect_error "arrives at" (Cs_sim.Interp.of_schedule sched)

let test_timely_comm_ok () =
  let region = producer_consumer () in
  let sched =
    make_sched region
      ~entries:
        [ entry ~cluster:0 ~start:0 ~finish:1; entry ~cluster:1 ~start:2 ~finish:3 ]
      ~comms:[ { Schedule.producer = 0; src = 0; dst = 1; depart = 1; arrive = 2 } ]
      ()
  in
  Alcotest.(check bool)
    "equivalent" true
    (Cs_sim.Interp.equivalent region sched = Ok ())

let test_homed_live_in_missing_delivery () =
  let region, _x = homed_consumer () in
  (* The consumer runs on cluster 1 but x lives on cluster 0. *)
  let sched =
    make_sched region ~live_in_homes:region.Cs_ddg.Region.live_in_homes
      ~entries:[ entry ~cluster:1 ~start:0 ~finish:1 ]
      ~comms:[] ()
  in
  expect_error "no delivery" (Cs_sim.Interp.of_schedule sched)

let test_homed_live_in_delivered_ok () =
  let region, x = homed_consumer () in
  let sched =
    make_sched region ~live_in_homes:region.Cs_ddg.Region.live_in_homes
      ~entries:[ entry ~cluster:1 ~start:1 ~finish:2 ]
      ~comms:
        [ { Schedule.producer = Schedule.live_in_producer x;
            src = 0; dst = 1; depart = 0; arrive = 1 } ]
      ()
  in
  Alcotest.(check bool)
    "equivalent" true
    (Cs_sim.Interp.equivalent region sched = Ok ())

let test_homed_live_in_on_home_ok () =
  let region, _x = homed_consumer () in
  (* On the home cluster, no delivery is needed. *)
  let sched =
    make_sched region ~live_in_homes:region.Cs_ddg.Region.live_in_homes
      ~entries:[ entry ~cluster:0 ~start:0 ~finish:1 ]
      ~comms:[] ()
  in
  Alcotest.(check bool)
    "equivalent" true
    (Cs_sim.Interp.equivalent region sched = Ok ())

let () =
  Alcotest.run "cs_sim.interp"
    [
      ( "of_schedule",
        [ Alcotest.test_case "same-cluster dataflow accepted" `Quick test_same_cluster_ok;
          Alcotest.test_case "read before producer finish rejected" `Quick
            test_operand_not_arrived;
          Alcotest.test_case "cross-cluster read without comm rejected" `Quick
            test_missing_comm;
          Alcotest.test_case "late transfer rejected" `Quick test_late_comm;
          Alcotest.test_case "timely transfer accepted" `Quick test_timely_comm_ok ] );
      ( "homed live-ins",
        [ Alcotest.test_case "missing delivery off home rejected" `Quick
            test_homed_live_in_missing_delivery;
          Alcotest.test_case "delivered off home accepted" `Quick
            test_homed_live_in_delivered_ok;
          Alcotest.test_case "consumer on home accepted" `Quick
            test_homed_live_in_on_home_ok ] );
    ]
