(* Property-based tests over random regions: every scheduler produces a
   validator-clean schedule whose makespan respects lower bounds. *)

(* QCheck draws shrinking candidates from a Random.State; seeding it
   from Cs_util.Rng (instead of to_alcotest's Random.self_init default)
   makes `dune runtest` bit-reproducible. *)
let to_alcotest test =
  let rng = Cs_util.Rng.create 0xB17_5EED in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make (Array.init 8 (fun _ -> Cs_util.Rng.int rng 0x3FFFFFFF)))
    test

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()
let raw4 = Cs_machine.Raw.with_tiles 4

let region_gen =
  (* Seeds and sizes drive the deterministic layered generator. *)
  QCheck.Gen.(
    map2
      (fun seed n -> (seed, 20 + n))
      (int_bound 10_000) (int_bound 120))

let make_region ~banks (seed, n) =
  Cs_workloads.Shapes.layered ~n
    ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:banks)
    ~seed ()

let print_region (seed, n) = Printf.sprintf "seed=%d n=%d" seed n
let arbitrary_region = QCheck.make ~print:print_region region_gen

(* Shape-diverse generator: the paper's thin and fat archetypes and
   CFG-derived trace regions alongside the layered DAGs above. *)
type shape = Layered | Thin | Fat | Cfg

let shape_name = function
  | Layered -> "layered"
  | Thin -> "thin"
  | Fat -> "fat"
  | Cfg -> "cfg"

let shaped_gen =
  QCheck.Gen.(
    map2 (fun shape seed -> (shape, seed))
      (oneofl [ Layered; Thin; Fat; Cfg ])
      (int_bound 10_000))

let print_shaped (shape, seed) = Printf.sprintf "shape=%s seed=%d" (shape_name shape) seed

let arbitrary_shaped = QCheck.make ~print:print_shaped shaped_gen

(* Sizes are kept modest so the full scheduler matrix (including
   simulated annealing) stays fast. *)
let make_shaped ~banks (shape, seed) =
  match shape with
  | Layered ->
    Cs_workloads.Shapes.layered ~n:40
      ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:banks)
      ~seed ()
  | Thin -> Cs_workloads.Shapes.thin ~chains:4 ~length:8 ~cross_links:3 ~seed ()
  | Fat -> Cs_workloads.Shapes.fat ~width:6 ~depth:4 ~seed ()
  | Cfg ->
    let cfg =
      Cs_cfg.Generate.acyclic ~segments:3 ~instrs_per_block:4 ~variables:6 ~banks ~seed ()
    in
    (match
       List.filter (fun r -> Cs_ddg.Region.n_instrs r > 0) (Cs_cfg.Trace.regions cfg)
     with
    | r :: _ -> r
    | [] ->
      Cs_workloads.Shapes.layered ~n:20
        ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:banks)
        ~seed ())

let schedules_validate name machine scheduler =
  QCheck.Test.make ~count:40 ~name arbitrary_region (fun params ->
      let region = make_region ~banks:(Cs_machine.Machine.n_clusters machine) params in
      let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
      (* Pipeline.schedule already validates; re-check and test bounds. *)
      match Cs_sched.Validator.check sched with
      | Error _ -> false
      | Ok () ->
        let a =
          Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine)
            region.Cs_ddg.Region.graph
        in
        Cs_sched.Schedule.makespan sched >= Cs_ddg.Analysis.cpl a)

let prop_convergent_vliw = schedules_validate "convergent/vliw valid + cpl bound" vliw4 Cs_sim.Pipeline.Convergent
let prop_convergent_raw = schedules_validate "convergent/raw valid + cpl bound" raw4 Cs_sim.Pipeline.Convergent
let prop_uas_vliw = schedules_validate "uas/vliw valid + cpl bound" vliw4 Cs_sim.Pipeline.Uas
let prop_rawcc_raw = schedules_validate "rawcc/raw valid + cpl bound" raw4 Cs_sim.Pipeline.Rawcc
let prop_bug_vliw = schedules_validate "bug/vliw valid + cpl bound" vliw4 Cs_sim.Pipeline.Bug

(* The full differential matrix: every scheduler on both machine
   families, judged by the validator, the critical-path bound, and the
   semantic interpreter. This is the in-tree slice of what `csched
   fuzz` sweeps at scale. *)
let prop_scheduler_matrix =
  QCheck.Test.make ~count:10 ~name:"all schedulers x both machines: valid + bounds + semantics"
    arbitrary_shaped (fun params ->
      List.for_all
        (fun machine ->
          let region = make_shaped ~banks:(Cs_machine.Machine.n_clusters machine) params in
          let a =
            Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine)
              region.Cs_ddg.Region.graph
          in
          List.for_all
            (fun scheduler ->
              let sched = Cs_sim.Pipeline.schedule ~seed:7 ~scheduler ~machine region in
              Cs_sched.Validator.check sched = Ok ()
              && Cs_sched.Schedule.makespan sched >= Cs_ddg.Analysis.cpl a
              && Cs_sim.Interp.equivalent region sched = Ok ())
            Cs_sim.Pipeline.all_schedulers)
        [ vliw4; raw4 ])

let prop_single_tile_serializes =
  QCheck.Test.make ~count:25 ~name:"single tile >= instruction count" arbitrary_region
    (fun params ->
      let region = make_region ~banks:1 params in
      let machine = Cs_machine.Raw.with_tiles 1 in
      let sched = Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Rawcc ~machine region in
      Cs_sched.Schedule.makespan sched >= Cs_ddg.Region.n_instrs region)

let prop_assignment_respects_preplacement =
  QCheck.Test.make ~count:40 ~name:"convergent assignment respects preplacement"
    arbitrary_region (fun params ->
      let region = make_region ~banks:4 params in
      let result =
        Cs_core.Driver.run ~machine:raw4 region (Cs_core.Sequence.raw_default ())
      in
      List.for_all
        (fun (i, home) -> result.Cs_core.Driver.assignment.(i) = home)
        (Cs_ddg.Graph.preplaced region.Cs_ddg.Region.graph))

let prop_driver_weights_invariant =
  QCheck.Test.make ~count:25 ~name:"driver leaves matrix normalized" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let result =
        Cs_core.Driver.run ~machine:vliw4 region (Cs_core.Sequence.vliw_default ())
      in
      Cs_core.Weights.check_invariants result.Cs_core.Driver.weights = Ok ())

let prop_more_tiles_never_catastrophic =
  (* Adding tiles should never make the convergent schedule dramatically
     worse: 4 tiles within 3x of 1 tile (communication can cost, but a
     sane scheduler does not blow up). *)
  QCheck.Test.make ~count:15 ~name:"more tiles not catastrophic" arbitrary_region
    (fun params ->
      let region1 = make_region ~banks:1 params in
      let region4 = make_region ~banks:4 params in
      let m1 = Cs_machine.Raw.with_tiles 1 in
      let s1 = Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Convergent ~machine:m1 region1 in
      let s4 = Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Convergent ~machine:raw4 region4 in
      Cs_sched.Schedule.makespan s4 <= 3 * Cs_sched.Schedule.makespan s1)

let prop_estimator_positive =
  QCheck.Test.make ~count:25 ~name:"estimator positive and >= cpl" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let assignment = Cs_baselines.Rawcc.assign ~machine:vliw4 region in
      let a =
        Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw4)
          region.Cs_ddg.Region.graph
      in
      Cs_baselines.Estimator.schedule_length ~machine:vliw4 ~assignment region
      >= Cs_ddg.Analysis.cpl a)

let prop_pcc_components_partition =
  QCheck.Test.make ~count:25 ~name:"pcc components partition nodes" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let comps = Cs_baselines.Pcc.components ~machine:vliw4 ~theta:5 region in
      let members = List.concat comps |> List.sort Int.compare in
      members = List.init (Cs_ddg.Region.n_instrs region) (fun i -> i)
      && List.for_all (fun c -> List.length c <= 5) comps)

let prop_analysis_invariants =
  QCheck.Test.make ~count:50 ~name:"analysis invariants on random regions" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let graph = region.Cs_ddg.Region.graph in
      let a = Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw4) graph in
      let ok = ref true in
      for i = 0 to Cs_ddg.Graph.n graph - 1 do
        if Cs_ddg.Analysis.earliest a i > Cs_ddg.Analysis.latest a i then ok := false;
        if Cs_ddg.Analysis.slack a i < 0 then ok := false;
        (* depth counts edges; earliest sums latencies >= 1 per edge *)
        if Cs_ddg.Analysis.depth a i > Cs_ddg.Analysis.earliest a i then ok := false;
        if Cs_ddg.Analysis.earliest a i + Cs_ddg.Analysis.latency a i > Cs_ddg.Analysis.cpl a
        then ok := false;
        (* every predecessor finishes before the ASAP start *)
        List.iter
          (fun p ->
            if Cs_ddg.Analysis.earliest a p + Cs_ddg.Analysis.latency a p
               > Cs_ddg.Analysis.earliest a i
            then ok := false)
          (Cs_ddg.Graph.preds graph i)
      done;
      !ok)

let prop_distance_symmetric =
  QCheck.Test.make ~count:30 ~name:"undirected distances symmetric" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let graph = region.Cs_ddg.Region.graph in
      let a = Cs_ddg.Analysis.make ~latency:(fun _ -> 1) graph in
      let n = Cs_ddg.Graph.n graph in
      let ok = ref true in
      for k = 0 to min 20 (n - 1) do
        let i = k and j = n - 1 - k in
        if Cs_ddg.Analysis.distance a i j <> Cs_ddg.Analysis.distance a j i then ok := false
      done;
      !ok)

let prop_semantic_equivalence =
  (* The strongest property in the suite: for random regions, every
     scheduler's output computes exactly the same dataflow values as
     program-order execution (see Cs_sim.Interp). *)
  QCheck.Test.make ~count:25 ~name:"schedules semantically equivalent" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      List.for_all
        (fun (machine, scheduler) ->
          let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
          Cs_sim.Interp.equivalent region sched = Ok ())
        [ (raw4, Cs_sim.Pipeline.Convergent); (raw4, Cs_sim.Pipeline.Rawcc);
          (vliw4, Cs_sim.Pipeline.Convergent); (vliw4, Cs_sim.Pipeline.Uas);
          (vliw4, Cs_sim.Pipeline.Bug) ])

let prop_iterative_terminates =
  QCheck.Test.make ~count:15 ~name:"iterative driver terminates within bound" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let result, rounds =
        Cs_core.Driver.run_iterative ~max_rounds:4 ~machine:vliw4 region
          (Cs_core.Sequence.vliw_default ())
      in
      rounds >= 1 && rounds <= 4
      && Cs_core.Weights.check_invariants result.Cs_core.Driver.weights = Ok ())

let prop_textual_roundtrip =
  QCheck.Test.make ~count:40 ~name:"textual format round-trips" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      match Cs_ddg.Textual.of_string (Cs_ddg.Textual.to_string region) with
      | Error _ -> false
      | Ok region2 ->
        let g1 = region.Cs_ddg.Region.graph and g2 = region2.Cs_ddg.Region.graph in
        Cs_ddg.Graph.n g1 = Cs_ddg.Graph.n g2
        && Cs_ddg.Graph.n_edges g1 = Cs_ddg.Graph.n_edges g2
        && Cs_ddg.Graph.preplaced g1 = Cs_ddg.Graph.preplaced g2
        && Array.for_all2
             (fun (a : Cs_ddg.Instr.t) (b : Cs_ddg.Instr.t) -> a.op = b.op)
             (Cs_ddg.Graph.instrs g1) (Cs_ddg.Graph.instrs g2))

let prop_pressure_nonnegative =
  QCheck.Test.make ~count:25 ~name:"register pressure sane" arbitrary_region
    (fun params ->
      let region = make_region ~banks:4 params in
      let sched = Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Uas ~machine:vliw4 region in
      let peaks = Cs_regalloc.Pressure.peak sched in
      Array.for_all (fun p -> p >= 0) peaks
      && Cs_regalloc.Pressure.max_peak sched
         <= List.length (Cs_regalloc.Pressure.intervals sched))

let () =
  Alcotest.run "properties"
    [
      ( "schedulers",
        List.map to_alcotest
          [ prop_convergent_vliw; prop_convergent_raw; prop_uas_vliw; prop_rawcc_raw;
            prop_bug_vliw; prop_scheduler_matrix; prop_single_tile_serializes ] );
      ( "framework",
        List.map to_alcotest
          [ prop_assignment_respects_preplacement; prop_driver_weights_invariant;
            prop_more_tiles_never_catastrophic; prop_semantic_equivalence;
            prop_iterative_terminates ] );
      ( "analysis",
        List.map to_alcotest
          [ prop_analysis_invariants; prop_distance_symmetric; prop_textual_roundtrip ] );
      ( "baselines",
        List.map to_alcotest
          [ prop_estimator_positive; prop_pcc_components_partition; prop_pressure_nonnegative ] );
    ]
