(* csched: command-line driver for the convergent-scheduling library.

     csched list
     csched run -b jacobi -m raw16 -s convergent [--scale N] [--verbose] [--trace-out t.json]
     csched compare -b mxm -m vliw4
     csched trace -b jacobi -m raw16
     csched profile -b jacobi -m raw16 [--rounds 3] [--trace-out t.json] [--jsonl t.jsonl]
     csched dot -b sha -m vliw4 -o sha.dot [-s uas]
     csched faults -b sha -m raw16 [--plans 'tile=5;link=1-2'] [-o sweep.jsonl]
     csched fuzz [--seeds LO..HI] [--degraded] [--corpus DIR]
     csched passes *)

open Cmdliner

(* --- shared argument parsing --- *)

let machine_of_string s =
  match String.lowercase_ascii s with
  | "vliw" | "vliw4" -> Ok (Cs_machine.Vliw.create ~n_clusters:4 ())
  | "vliw1" -> Ok (Cs_machine.Vliw.single_cluster ())
  | other ->
    let parse_int prefix =
      let plen = String.length prefix in
      if String.length other > plen && String.sub other 0 plen = prefix then
        int_of_string_opt (String.sub other plen (String.length other - plen))
      else None
    in
    (match (parse_int "raw", parse_int "vliw") with
    | Some n, _ when n > 0 -> Ok (Cs_machine.Raw.with_tiles n)
    | _, Some n when n > 0 -> Ok (Cs_machine.Vliw.create ~n_clusters:n ())
    | _ -> Error (`Msg (Printf.sprintf "unknown machine %S (try raw16, raw4, vliw4)" s)))

let machine_conv =
  let printer fmt m = Format.fprintf fmt "%s" m.Cs_machine.Machine.name in
  Arg.conv (machine_of_string, printer)

let benchmark_conv =
  let parse s =
    match Cs_workloads.Suite.find s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown benchmark %S; try `csched list'" s))
  in
  let printer fmt e = Format.fprintf fmt "%s" e.Cs_workloads.Suite.name in
  Arg.conv (parse, printer)

let scheduler_conv =
  let parse s =
    match Cs_sim.Pipeline.scheduler_of_name s with
    | Some sch -> Ok sch
    | None -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  let printer fmt s = Format.fprintf fmt "%s" (Cs_sim.Pipeline.scheduler_name s) in
  Arg.conv (parse, printer)

let benchmark_arg =
  Arg.(required & opt (some benchmark_conv) None & info [ "b"; "benchmark" ] ~doc:"Benchmark name.")

let machine_arg =
  Arg.(value & opt machine_conv (Cs_machine.Raw.with_tiles 16) & info [ "m"; "machine" ] ~doc:"Target machine (raw<N>, vliw<N>).")

let scheduler_arg =
  Arg.(value & opt scheduler_conv Cs_sim.Pipeline.Convergent & info [ "s"; "scheduler" ] ~doc:"Scheduler: convergent, rawcc, uas, pcc, bug.")

let weights_impl_arg =
  let impl_conv =
    let parse s =
      match Cs_core.Weights.impl_of_string s with
      | Ok i -> Ok i
      | Error msg -> Error (`Msg msg)
    in
    let printer fmt i = Format.fprintf fmt "%s" (Cs_core.Weights.impl_name i) in
    Arg.conv (parse, printer)
  in
  Arg.(
    value
    & opt (some impl_conv) None
    & info [ "weights-impl" ] ~docv:"IMPL"
        ~doc:
          "Weight-matrix implementation: $(b,flat) (contiguous Bigarray kernels, the \
           default) or $(b,legacy) (the original float-array path, kept for one \
           release as the differential oracle and benchmark baseline). Overrides \
           CSCHED_WEIGHTS_IMPL.")

let set_weights_impl impl = Option.iter Cs_core.Weights.set_default_impl impl

let scale_arg = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Problem-size multiplier.")
let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full schedule.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable the observability sink and write the collected events as a Chrome \
           Trace Event file (load in chrome://tracing or ui.perfetto.dev).")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE"
        ~doc:"Also write the collected events as JSON Lines (one event per line).")

let write_exports ?jsonl ~trace_out events =
  Option.iter
    (fun path ->
      Cs_obs.Export.write_chrome path events;
      Printf.printf "wrote %s (%d events, Chrome Trace Event Format)\n" path
        (List.length events))
    trace_out;
  Option.iter
    (fun path ->
      Cs_obs.Export.write_jsonl path events;
      Printf.printf "wrote %s (%d events, JSON Lines)\n" path (List.length events))
    jsonl

(* Enable the sink around [f]; write the requested export files when it
   returns (or raises), so partial traces survive scheduler crashes.
   [events ()] drains the sink, so callers that read events themselves
   must not also use this wrapper. *)
let with_trace ?jsonl ~trace_out f =
  let active = trace_out <> None || jsonl <> None in
  if active then begin
    Cs_obs.Obs.reset ();
    Cs_obs.Obs.enable ()
  end;
  Fun.protect
    ~finally:(fun () ->
      if active then begin
        Cs_obs.Obs.disable ();
        write_exports ?jsonl ~trace_out (Cs_obs.Obs.events ())
      end)
    f

let region_of entry machine scale =
  entry.Cs_workloads.Suite.generate ~scale
    ~clusters:(Cs_machine.Machine.n_clusters machine) ()

(* --- fault plans --- *)

let faults_conv =
  let parse s =
    match Cs_resil.Fault.parse s with
    | Ok plan -> Ok plan
    | Error msg -> Error (`Msg msg)
  in
  let printer fmt plan = Format.fprintf fmt "%s" (Cs_resil.Fault.to_string plan) in
  Arg.conv (parse, printer)

let faults_opt_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Degrade the machine with a fault plan before scheduling (e.g. \
           'tile=5,link=2-3,fu=1:0,slow-link=4-8:x3') and schedule through the \
           resilient fallback chain.")

(* The stock sweep grids for the paper's two evaluation machines; other
   geometries get a small generic set derived from their shape. *)
let raw4x4_plans =
  [ "tile=5"; "link=1-2"; "slow-link=4-8:x3"; "fu=0:0"; "tile=0,tile=15";
    "link=0-1,link=4-5"; "slow-link=0-4:x2,slow-link=1-5:x4";
    "tile=5,link=9-10,slow-link=2-6:x3" ]

let vliw4_plans =
  [ "tile=1"; "fu=0:3"; "fu=0:0,fu=0:1"; "tile=2,tile=3"; "fu=1:2"; "tile=0,fu=1:3";
    "fu=3:0,fu=3:1,fu=3:2,fu=3:3"; "tile=1,tile=2" ]

let default_plans (machine : Cs_machine.Machine.t) =
  let n = Cs_machine.Machine.n_clusters machine in
  match machine.Cs_machine.Machine.topology with
  | Cs_machine.Topology.Mesh { rows = 4; cols = 4; _ } -> raw4x4_plans
  | Cs_machine.Topology.Mesh { cols; _ } ->
    let b = if cols > 1 then 1 else n / 2 in
    List.concat
      [ (if n > 1 then [ Printf.sprintf "tile=%d" (n - 1); "fu=0:0" ] else []);
        (if n > 1 then
           [ Printf.sprintf "link=0-%d" b;
             Printf.sprintf "slow-link=0-%d:x2" b;
             Printf.sprintf "slow-link=0-%d:x3" b ]
         else []) ]
  | Cs_machine.Topology.Crossbar _
    when n = 4 && Cs_machine.Machine.issue_width machine = 4 ->
    vliw4_plans
  | Cs_machine.Topology.Crossbar _ ->
    List.concat
      [ (if n > 1 then [ "tile=0"; Printf.sprintf "tile=%d" (n - 1) ] else []);
        (if Cs_machine.Machine.issue_width machine > 1 then [ "fu=0:0" ] else []) ]

(* --- subcommands --- *)

let list_cmd =
  let doc = "List available benchmarks." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-14s %s\n" e.Cs_workloads.Suite.name e.Cs_workloads.Suite.description)
      Cs_workloads.Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let passes_cmd =
  let doc = "List available convergent passes and default sequences." in
  let run () =
    Printf.printf "passes: %s\n" (String.concat ", " Cs_core.Sequence.available);
    Printf.printf "raw default:  %s\n"
      (String.concat " " (Cs_core.Sequence.names (Cs_core.Sequence.raw_default ())));
    Printf.printf "vliw default: %s\n"
      (String.concat " " (Cs_core.Sequence.names (Cs_core.Sequence.vliw_default ())))
  in
  Cmd.v (Cmd.info "passes" ~doc) Term.(const run $ const ())

let passes_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "passes" ]
        ~doc:
          "Comma-separated convergent pass sequence (e.g. \
           INITTIME,PLACE,PLACEPROP,COMM); overrides the machine default and \
           forces the convergent scheduler.")

let parse_passes spec =
  match Cs_core.Sequence.of_names (String.split_on_char ',' spec) with
  | Ok passes -> passes
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let run_cmd =
  let doc = "Schedule one benchmark and report cycles." in
  let run entry machine scheduler scale verbose passes_spec faults weights_impl trace_out =
    set_weights_impl weights_impl;
    with_trace ~trace_out (fun () ->
        let machine =
          match faults with
          | None -> machine
          | Some plan ->
            (match Cs_machine.Machine.degrade machine plan with
            | degraded -> degraded
            | exception Cs_resil.Error.Error e ->
              Printf.eprintf "bad fault plan for %s: %s\n"
                machine.Cs_machine.Machine.name (Cs_resil.Error.to_string e);
              exit 1)
        in
        let region = region_of entry machine scale in
        let passes = Option.map parse_passes passes_spec in
        let sched =
          match faults with
          | Some _ ->
            (* A degraded machine can defeat the requested scheduler, so
               route through the fallback chain and report the outcome. *)
            (match Cs_sim.Pipeline.schedule_resilient ?passes ~scheduler ~machine region with
            | Ok (sched, outcome) ->
              Printf.printf "resilience: %s\n" (Cs_resil.Outcome.to_string outcome);
              sched
            | Error e ->
              Printf.eprintf "unschedulable on %s: %s\n" machine.Cs_machine.Machine.name
                (Cs_resil.Error.to_string e);
              exit 1)
          | None ->
            (match passes with
            | Some passes -> fst (Cs_sim.Pipeline.convergent ~passes ~machine region)
            | None -> Cs_sim.Pipeline.schedule ~scheduler ~machine region)
        in
        Printf.printf "%s on %s with %s: %d instructions, makespan %d cycles, %d transfers\n"
          entry.Cs_workloads.Suite.name machine.Cs_machine.Machine.name
          (Cs_sim.Pipeline.scheduler_name scheduler)
          (Cs_ddg.Region.n_instrs region)
          (Cs_sched.Schedule.makespan sched)
          (Cs_sched.Schedule.n_comms sched);
        let alloc = Cs_regalloc.Linear_scan.run sched in
        Printf.printf "register pressure peak %d, spills (32 regs/cluster) %d\n"
          (Cs_regalloc.Pressure.max_peak sched)
          alloc.Cs_regalloc.Linear_scan.total_spills;
        if verbose then Format.printf "%a@." Cs_sched.Schedule.pp sched)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ benchmark_arg $ machine_arg $ scheduler_arg $ scale_arg $ verbose_arg
      $ passes_opt_arg $ faults_opt_arg $ weights_impl_arg $ trace_out_arg)

let run_file_cmd =
  let doc = "Schedule a region from a text file (see lib/ddg/textual.mli for the format)." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Region description.")
  in
  let run path machine scheduler verbose passes_spec =
    match Cs_ddg.Textual.load_file path with
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1
    | Ok region ->
      (match Cs_machine.Machine.validate_region machine region with
      | Error msg ->
        Printf.eprintf "%s does not fit %s: %s\n" path machine.Cs_machine.Machine.name msg;
        exit 1
      | Ok () ->
        let sched =
          match passes_spec with
          | Some spec ->
            fst (Cs_sim.Pipeline.convergent ~passes:(parse_passes spec) ~machine region)
          | None -> Cs_sim.Pipeline.schedule ~scheduler ~machine region
        in
        Printf.printf "%s on %s with %s: %d instructions, makespan %d cycles, %d transfers\n"
          path machine.Cs_machine.Machine.name
          (Cs_sim.Pipeline.scheduler_name scheduler)
          (Cs_ddg.Region.n_instrs region)
          (Cs_sched.Schedule.makespan sched)
          (Cs_sched.Schedule.n_comms sched);
        if verbose then Format.printf "%a@." Cs_sched.Schedule.pp sched)
  in
  Cmd.v (Cmd.info "run-file" ~doc)
    Term.(const run $ file_arg $ machine_arg $ scheduler_arg $ verbose_arg $ passes_opt_arg)

let compare_cmd =
  let doc = "Compare all schedulers on one benchmark." in
  let run entry machine scale =
    let region = region_of entry machine scale in
    let table = Cs_util.Table.create ~header:[ "scheduler"; "cycles"; "transfers"; "util%" ] in
    List.iter
      (fun scheduler ->
        let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
        Cs_util.Table.add_row table
          [ Cs_sim.Pipeline.scheduler_name scheduler;
            string_of_int (Cs_sched.Schedule.makespan sched);
            string_of_int (Cs_sched.Schedule.n_comms sched);
            Cs_util.Table.cell_float (100.0 *. Cs_sched.Schedule.utilization sched) ])
      Cs_sim.Pipeline.all_schedulers;
    Cs_util.Table.print table
  in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const run $ benchmark_arg $ machine_arg $ scale_arg)

let trace_cmd =
  let doc =
    "Show the convergent scheduler's per-pass convergence trace; or, with --merge, \
     assemble the JSONL traces dumped by several fleet processes (gateway, shards, \
     clients) into one Chrome Trace file with a lane per process."
  in
  let merge_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "merge" ] ~docv:"FILE1,FILE2,..."
          ~doc:
            "Merge these JSONL trace files (written by --jsonl) into a single Chrome \
             Trace document, one pid lane per recording process.")
  in
  let output_arg =
    Arg.(
      value & opt string "trace-merged.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path for the merged trace.")
  in
  let merge_traces spec out =
    let files =
      List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec)
    in
    if files = [] then begin
      Printf.eprintf "trace: --merge needs at least one file\n";
      exit 1
    end;
    let tagged =
      List.concat_map
        (fun path ->
          match Cs_obs.Export.load_jsonl path with
          | Ok events -> events
          | Error e ->
            Printf.eprintf "trace: %s\n" e;
            exit 1)
        files
    in
    Cs_util.Fsio.write_atomic ~path:out (Cs_obs.Export.chrome_merged tagged);
    let pids = List.sort_uniq compare (List.map fst tagged) in
    Printf.printf "wrote %s (%d events from %d files, %d process lanes)\n" out
      (List.length tagged) (List.length files) (List.length pids)
  in
  let opt_benchmark_arg =
    Arg.(
      value
      & opt (some benchmark_conv) None
      & info [ "b"; "benchmark" ] ~doc:"Benchmark name (required unless --merge).")
  in
  let run merge out entry machine scale =
    match (merge, entry) with
    | Some spec, _ -> merge_traces spec out
    | None, None ->
      Printf.eprintf "trace: required option --benchmark is missing\n";
      exit 1
    | None, Some entry ->
      let region = region_of entry machine scale in
      let _sched, trace = Cs_sim.Pipeline.convergent ~machine region in
      Format.printf "%a@." Cs_core.Trace.pp trace
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ merge_arg $ output_arg $ opt_benchmark_arg $ machine_arg $ scale_arg)

let dot_cmd =
  let doc = "Export a benchmark's dependence graph (colored by assignment) to Graphviz." in
  let output_arg =
    Arg.(value & opt string "graph.dot" & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let run entry machine scheduler scale path =
    let region = region_of entry machine scale in
    let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
    Cs_ddg.Dot.write_file ~assignment:(Cs_sched.Schedule.assignment sched) ~path
      region.Cs_ddg.Region.graph;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ benchmark_arg $ machine_arg $ scheduler_arg $ scale_arg $ output_arg)

let profile_cmd =
  let doc =
    "Profile the convergent scheduler: per-pass wall time plus convergence telemetry \
     (preferred-cluster churn, mean confidence, weight-row entropy) for every pass of \
     every round, then the list-scheduler and simulator counters. The per-round series \
     reproduce the paper's Fig. 4/7-style convergence curves; --trace-out dumps the \
     underlying events for chrome://tracing. With --connect, profile a live service \
     instead: one stats round trip against a running serve or gateway, or a periodic \
     re-poll with delta rates under --watch."
  in
  let rounds_arg =
    Arg.(
      value & opt int 3
      & info [ "rounds" ]
          ~doc:"Apply the whole pass sequence this many times (iterative driver).")
  in
  let live_connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Print live stats from the serve or gateway at $(docv) (HOST:PORT or Unix \
             socket path) instead of profiling locally.")
  in
  let watch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECS"
          ~doc:
            "With --connect: re-poll every $(docv) seconds and print delta rates \
             (jobs/s admitted, completed, refused) between polls. Runs until \
             interrupted, or for --iterations polls.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"With --watch: stop after $(docv) polls (0 = run until interrupted).")
  in
  let profile_live ~watch ~iterations spec =
    let addr =
      match Cs_svc.Transport.parse spec with
      | Ok a -> a
      | Error msg ->
        Printf.eprintf "profile: %s\n" msg;
        exit 1
    in
    let fetch () =
      match Cs_svc.Client.fetch_stats ~addr () with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "profile: %s: %s\n" (Cs_svc.Transport.to_string addr) e;
        exit 1
    in
    let print_stats ?prev ?dt (s : Cs_svc.Proto.server_stats) =
      Printf.printf "%s:\n" (Cs_svc.Transport.to_string addr);
      Printf.printf "  queue depth   %d\n" s.Cs_svc.Proto.queue_depth;
      Printf.printf "  workers       %d (%d busy, %.0f%% utilized)\n"
        s.Cs_svc.Proto.workers s.Cs_svc.Proto.busy
        (if s.Cs_svc.Proto.workers = 0 then 0.0
         else
           100.0 *. float_of_int s.Cs_svc.Proto.busy
           /. float_of_int s.Cs_svc.Proto.workers);
      Printf.printf "  admitted      %d\n" s.Cs_svc.Proto.admitted;
      Printf.printf "  completed     %d\n" s.Cs_svc.Proto.completed;
      Printf.printf "  shed          %d\n" s.Cs_svc.Proto.shed;
      Printf.printf "  refusals      %d\n" s.Cs_svc.Proto.refusals;
      List.iter
        (fun (k, v) -> Printf.printf "  %-13s %.0f\n" k v)
        s.Cs_svc.Proto.extra;
      (match (prev, dt) with
      | Some (p : Cs_svc.Proto.server_stats), Some dt when dt > 0.0 ->
        let rate cur prev = float_of_int (cur - prev) /. dt in
        Printf.printf "  rate          %+.1f/s admitted, %+.1f/s completed, %+.1f/s refused\n"
          (rate s.Cs_svc.Proto.admitted p.Cs_svc.Proto.admitted)
          (rate s.Cs_svc.Proto.completed p.Cs_svc.Proto.completed)
          (rate s.Cs_svc.Proto.refusals p.Cs_svc.Proto.refusals)
      | _ -> ());
      Printf.printf "%!"
    in
    match watch with
    | None -> print_stats (fetch ())
    | Some period ->
      let period = Float.max 0.05 period in
      let rec loop i prev prev_t =
        let s = fetch () in
        let now = Cs_obs.Clock.now () in
        if i > 0 then Printf.printf "\n";
        print_stats ?prev ?dt:(Option.map (fun t -> now -. t) prev_t) s;
        if iterations <= 0 || i + 1 < iterations then begin
          Unix.sleepf period;
          loop (i + 1) (Some s) (Some now)
        end
      in
      loop 0 None None
  in
  let opt_benchmark_arg =
    Arg.(
      value
      & opt (some benchmark_conv) None
      & info [ "b"; "benchmark" ] ~doc:"Benchmark name (required unless --connect).")
  in
  let run connect watch iterations entry machine scale passes_spec rounds weights_impl
      trace_out jsonl =
    set_weights_impl weights_impl;
    match (connect, entry) with
    | Some spec, _ -> profile_live ~watch ~iterations spec
    | None, None ->
      Printf.eprintf "profile: required option --benchmark is missing\n";
      exit 1
    | None, Some entry ->
    if rounds <= 0 then begin
      Printf.eprintf "profile: --rounds must be positive\n";
      exit 1
    end;
    let region = region_of entry machine scale in
    let passes =
      match passes_spec with
      | Some spec -> parse_passes spec
      | None -> Cs_sim.Pipeline.default_passes ~machine
    in
    (* The sink is always on for profiling; export files are optional.
       [events ()] drains the sink, so capture the list exactly once
       below and write the exports from it — not via [with_trace]. *)
    Cs_obs.Obs.reset ();
    Cs_obs.Obs.enable ();
    let result, rounds_run =
      (* epsilon 0 never triggers early exit, so exactly [rounds] rounds run
         and every round's telemetry is comparable. *)
      Cs_core.Driver.run_iterative ~max_rounds:rounds ~epsilon:0.0 ~machine region passes
    in
    let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
    let priority =
      if Cs_machine.Machine.is_mesh machine then Cs_sched.Priority.alap analysis
      else Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot
    in
    let sched =
      Cs_sched.List_scheduler.run ~machine ~assignment:result.Cs_core.Driver.assignment
        ~priority ~analysis region
    in
    Cs_obs.Obs.disable ();
    let events = Cs_obs.Obs.events () in
    write_exports ?jsonl ~trace_out events;
    let float_arg key ev =
      List.fold_left
        (fun acc (k, v) ->
          match v with Cs_obs.Obs.Float f when k = key -> Some f | _ -> acc)
        None ev.Cs_obs.Obs.args
    in
    (* apply_round records, per pass, a "pass" span then its "converge"
       counter; zipping the two filtered streams pairs them in order. *)
    let pass_spans =
      List.filter
        (fun e ->
          e.Cs_obs.Obs.cat = "pass"
          && match e.Cs_obs.Obs.ph with Cs_obs.Obs.Complete _ -> true | _ -> false)
        events
    in
    let converge =
      List.filter
        (fun e ->
          e.Cs_obs.Obs.cat = "converge" && e.Cs_obs.Obs.name <> "converge:round")
        events
    in
    Printf.printf "%s on %s: %d instructions, %d round%s of %d passes\n\n"
      entry.Cs_workloads.Suite.name machine.Cs_machine.Machine.name
      (Cs_ddg.Region.n_instrs region) rounds_run
      (if rounds_run = 1 then "" else "s")
      (List.length passes);
    let table =
      Cs_util.Table.create
        ~header:[ "round"; "pass"; "ms"; "churn"; "churn%"; "confidence"; "entropy" ]
    in
    List.iter2
      (fun span conv ->
        let dur =
          match span.Cs_obs.Obs.ph with Cs_obs.Obs.Complete d -> d | _ -> 0.0
        in
        let get key = Option.value ~default:0.0 (float_arg key conv) in
        Cs_util.Table.add_row table
          [ string_of_int (int_of_float (get "round"));
            span.Cs_obs.Obs.name;
            Printf.sprintf "%.3f" (1000.0 *. dur);
            string_of_int (int_of_float (get "churn"));
            Printf.sprintf "%.1f" (100.0 *. get "churn_fraction");
            Cs_util.Table.cell_float (get "mean_confidence");
            Cs_util.Table.cell_float (get "mean_entropy") ])
      pass_spans converge;
    Cs_util.Table.print table;
    Printf.printf "\n";
    List.iter
      (fun e ->
        if e.Cs_obs.Obs.cat = "sched" && e.Cs_obs.Obs.ph = Cs_obs.Obs.Counter then begin
          Printf.printf "list scheduler:";
          List.iter
            (fun (k, v) ->
              match v with
              | Cs_obs.Obs.Float f -> Printf.printf " %s %.0f" k f
              | _ -> ())
            e.Cs_obs.Obs.args;
          Printf.printf "\n"
        end)
      events;
    Printf.printf "schedule: makespan %d cycles, %d transfers, utilization %.1f%%\n"
      (Cs_sched.Schedule.makespan sched)
      (Cs_sched.Schedule.n_comms sched)
      (100.0 *. Cs_sched.Schedule.utilization sched)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ live_connect_arg $ watch_arg $ iterations_arg $ opt_benchmark_arg
      $ machine_arg $ scale_arg $ passes_opt_arg $ rounds_arg $ weights_impl_arg
      $ trace_out_arg $ jsonl_arg)

let tune_cmd =
  let doc =
    "Evolve a pass sequence for a machine (parallel genetic autotuner). The paper picked \
     Table 1 by trial-and-error (Sec. 4); this searches the same space automatically and \
     prints the best sequence found plus its geomean speedup vs the hand-tuned default."
  in
  let population_arg =
    Arg.(value & opt int 16 & info [ "population" ] ~doc:"Population size.")
  in
  let generations_arg =
    Arg.(value & opt int 10 & info [ "generations" ] ~doc:"Number of generations.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~doc:"Worker domains for parallel fitness evaluation.")
  in
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmarks" ]
          ~doc:"Comma-separated benchmark subset to tune on (default: the machine's suite).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget: stop starting new generations once $(docv) have \
             elapsed and report the best sequence so far (the summary records \
             budget_exhausted instead of completed).")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Save a crash-safe snapshot to $(docv) after every generation; a run \
             killed at any moment can continue with --resume.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the --checkpoint file if it exists. The continued run is \
             bit-identical to one that was never interrupted.")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Append-free JSON Lines run summary: status (completed or \
             budget_exhausted), generations run, best genome and fitness.")
  in
  let run machine population generations seed domains scale bench_spec budget checkpoint
      resume summary trace_out =
    if population <= 0 || generations <= 0 || domains <= 0 then begin
      Printf.eprintf "tune: --population, --generations, and --domains must be positive\n";
      exit 1
    end;
    if resume && checkpoint = None then begin
      Printf.eprintf "tune: --resume needs --checkpoint FILE\n";
      exit 1
    end;
    with_trace ~trace_out @@ fun () ->
    let suite =
      match bench_spec with
      | None ->
        if Cs_machine.Machine.is_mesh machine then Cs_workloads.Suite.raw_suite
        else Cs_workloads.Suite.vliw_suite
      | Some spec ->
        List.map
          (fun name ->
            match Cs_workloads.Suite.find name with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown benchmark %S; try `csched list'\n" name;
              exit 1)
          (String.split_on_char ',' spec)
    in
    let fit = Cs_tuner.Fitness.make ~scale ~machine suite in
    let params =
      { Cs_tuner.Ga.default_params with population; generations; seed; domains }
    in
    Printf.printf "tuning %s over %d benchmarks (pop %d x %d generations, seed %d, %d domain%s)\n%!"
      machine.Cs_machine.Machine.name (Cs_tuner.Fitness.n_cases fit) population generations
      seed domains (if domains = 1 then "" else "s");
    let deadline = Option.map (fun b -> Cs_obs.Clock.now () +. b) budget in
    let resume_snapshot =
      if not resume then None
      else
        Option.bind checkpoint (fun path ->
            match Cs_tuner.Checkpoint.load path with
            | Ok s ->
              Printf.printf "resuming from %s (generation %d done)\n%!" path
                s.Cs_tuner.Ga.gen_done;
              Some s
            | Error msg ->
              Printf.printf "fresh start: %s\n%!" msg;
              None)
    in
    let save_checkpoint =
      Option.map (fun path s -> Cs_tuner.Checkpoint.save ~path s) checkpoint
    in
    let t0 = Unix.gettimeofday () in
    let outcome =
      Cs_tuner.Ga.run
        ~on_generation:(fun p ->
          Printf.printf "  gen %2d: best %.4f  (%d evals, %d cache hits)\n%!"
            p.Cs_tuner.Ga.generation p.Cs_tuner.Ga.gen_best_fitness
            p.Cs_tuner.Ga.evaluations p.Cs_tuner.Ga.cache_hits)
        ?checkpoint:save_checkpoint ?resume:resume_snapshot ?deadline params fit
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let open Cs_tuner.Ga in
    Option.iter
      (fun path ->
        let json =
          Cs_obs.Json.Obj
            [ ("tool", Cs_obs.Json.Str "tune");
              ("status",
               Cs_obs.Json.Str
                 (if outcome.completed then "completed" else "budget_exhausted"));
              ("machine", Cs_obs.Json.Str machine.Cs_machine.Machine.name);
              ("generations_run", Cs_obs.Json.Num (float_of_int outcome.generations_run));
              ("generations_wanted", Cs_obs.Json.Num (float_of_int generations));
              ("best", Cs_obs.Json.Str (Cs_tuner.Genome.to_string outcome.best));
              ("best_fitness", Cs_obs.Json.Num outcome.best_fitness);
              ("default_fitness", Cs_obs.Json.Num outcome.default_fitness);
              ("evaluations", Cs_obs.Json.Num (float_of_int outcome.evaluations));
              ("elapsed_s", Cs_obs.Json.Num elapsed) ]
        in
        Cs_util.Fsio.write_atomic ~path (Cs_obs.Json.to_string json ^ "\n");
        Printf.printf "wrote %s\n" path)
      summary;
    if not outcome.completed then
      Printf.printf "budget exhausted after %d of %d generations\n"
        outcome.generations_run generations;
    Printf.printf "\ndefault (Table 1): %.4f geomean speedup\n" outcome.default_fitness;
    Printf.printf "  %s\n"
      (String.concat "," (Cs_core.Sequence.names
                            (match Cs_tuner.Genome.to_passes outcome.default_genome with
                            | Ok p -> p
                            | Error _ -> [])));
    Printf.printf "evolved:           %.4f geomean speedup (%+.1f%%)\n" outcome.best_fitness
      ((outcome.best_fitness /. outcome.default_fitness -. 1.0) *. 100.0);
    Printf.printf "  %s\n"
      (String.concat "," (Cs_core.Sequence.names
                            (match Cs_tuner.Genome.to_passes outcome.best with
                            | Ok p -> p
                            | Error _ -> [])));
    Printf.printf "canonical: %s\n" (Cs_tuner.Genome.to_string outcome.best);
    Printf.printf "%d candidates simulated, %d served from cache, %.2fs wall\n"
      outcome.evaluations outcome.cache_hits elapsed;
    Printf.printf "replay with: csched run -b <bench> -m <machine> -p '%s'\n"
      (String.concat "," (Cs_core.Sequence.names
                            (match Cs_tuner.Genome.to_passes outcome.best with
                            | Ok p -> p
                            | Error _ -> [])))
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ machine_arg $ population_arg $ generations_arg $ seed_arg $ domains_arg
      $ scale_arg $ bench_arg $ budget_arg $ checkpoint_arg $ resume_arg $ summary_arg
      $ trace_out_arg)

let faults_cmd =
  let doc =
    "Fault-injection sweep: schedule one benchmark healthy, then re-schedule it on the \
     machine degraded by each fault plan in a grid (dead tiles, dead links, dead \
     functional units, slow links), routing every degraded attempt through the \
     resilient fallback chain. Reports the winning rung and slowdown versus the \
     healthy machine per plan; exits non-zero if any plan is unschedulable."
  in
  let plans_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plans" ] ~docv:"P1;P2;..."
          ~doc:
            "Semicolon-separated fault plans to sweep (default: a stock grid for the \
             machine's geometry).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write one JSON object per plan (JSON Lines) to $(docv).")
  in
  let run entry machine scheduler scale plans_spec out trace_out jsonl =
    let plans =
      let specs =
        match plans_spec with
        | Some s ->
          List.filter (fun p -> String.trim p <> "") (String.split_on_char ';' s)
        | None -> default_plans machine
      in
      if specs = [] then begin
        Printf.eprintf "faults: no plans to sweep (single-cluster machine? pass --plans)\n";
        exit 1
      end;
      List.map
        (fun spec ->
          match Cs_resil.Fault.parse (String.trim spec) with
          | Ok plan -> plan
          | Error msg ->
            Printf.eprintf "faults: bad plan %S: %s\n" spec msg;
            exit 1)
        specs
    in
    with_trace ?jsonl ~trace_out @@ fun () ->
    let region = region_of entry machine scale in
    let healthy = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
    let healthy_cycles = Cs_sched.Schedule.makespan healthy in
    Printf.printf "%s on %s with %s: healthy makespan %d cycles\n\n"
      entry.Cs_workloads.Suite.name machine.Cs_machine.Machine.name
      (Cs_sim.Pipeline.scheduler_name scheduler)
      healthy_cycles;
    let table =
      Cs_util.Table.create
        ~header:[ "plan"; "rung"; "cycles"; "slowdown"; "transfers"; "quarantined" ]
    in
    let records, failures =
      List.fold_left
        (fun (records, failures) plan ->
          let spec = Cs_resil.Fault.to_string plan in
          match Cs_machine.Machine.degrade machine plan with
          | exception Cs_resil.Error.Error e ->
            Cs_util.Table.add_row table
              [ spec; "-"; "-"; "-"; "-"; Cs_resil.Error.kind e ];
            let record =
              Cs_obs.Json.Obj
                [ ("machine", Cs_obs.Json.Str machine.Cs_machine.Machine.name);
                  ("plan", Cs_obs.Json.Str spec);
                  ("error", Cs_obs.Json.Str (Cs_resil.Error.to_string e)) ]
            in
            (record :: records, failures + 1)
          | degraded ->
            (match Cs_sim.Pipeline.schedule_resilient ~scheduler ~machine:degraded region with
            | Ok (sched, outcome) ->
              let cycles = Cs_sched.Schedule.makespan sched in
              let slowdown = float_of_int cycles /. float_of_int healthy_cycles in
              Cs_util.Table.add_row table
                [ spec;
                  Cs_resil.Outcome.rung_to_string outcome.Cs_resil.Outcome.rung;
                  string_of_int cycles;
                  Printf.sprintf "%.2fx" slowdown;
                  string_of_int (Cs_sched.Schedule.n_comms sched);
                  string_of_int (List.length outcome.Cs_resil.Outcome.quarantined) ];
              let record =
                Cs_obs.Json.Obj
                  [ ("machine", Cs_obs.Json.Str machine.Cs_machine.Machine.name);
                    ("plan", Cs_obs.Json.Str spec);
                    ("rung",
                     Cs_obs.Json.Str
                       (Cs_resil.Outcome.rung_to_string outcome.Cs_resil.Outcome.rung));
                    ("cycles", Cs_obs.Json.Num (float_of_int cycles));
                    ("healthy_cycles", Cs_obs.Json.Num (float_of_int healthy_cycles));
                    ("slowdown", Cs_obs.Json.Num slowdown);
                    ("transfers",
                     Cs_obs.Json.Num (float_of_int (Cs_sched.Schedule.n_comms sched)));
                    ("attempts",
                     Cs_obs.Json.Num
                       (float_of_int (List.length outcome.Cs_resil.Outcome.attempts)));
                    ("quarantined",
                     Cs_obs.Json.Num
                       (float_of_int (List.length outcome.Cs_resil.Outcome.quarantined))) ]
              in
              (record :: records, failures)
            | Error e ->
              Cs_util.Table.add_row table
                [ spec; "FAILED"; "-"; "-"; "-"; Cs_resil.Error.kind e ];
              let record =
                Cs_obs.Json.Obj
                  [ ("machine", Cs_obs.Json.Str machine.Cs_machine.Machine.name);
                    ("plan", Cs_obs.Json.Str spec);
                    ("error", Cs_obs.Json.Str (Cs_resil.Error.to_string e)) ]
              in
              (record :: records, failures + 1)))
        ([], 0) plans
    in
    Cs_util.Table.print table;
    Option.iter
      (fun path ->
        Out_channel.with_open_text path (fun oc ->
            List.iter
              (fun record ->
                Out_channel.output_string oc (Cs_obs.Json.to_string record);
                Out_channel.output_char oc '\n')
              (List.rev records));
        Printf.printf "wrote %s (%d plans, JSON Lines)\n" path (List.length records))
      out;
    if failures > 0 then begin
      Printf.eprintf "%d plan%s unschedulable\n" failures (if failures = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ benchmark_arg $ machine_arg $ scheduler_arg $ scale_arg $ plans_arg
      $ out_arg $ trace_out_arg $ jsonl_arg)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: generate random regions (DAG shapes and CFG-derived \
     traces/superblocks/hyperblocks), schedule each with a randomly chosen scheduler or \
     pass sequence on a randomly chosen machine, and cross-check the result against the \
     validator, the semantic interpreter, analytic makespan bounds, and a \
     cluster-relabeling metamorphic invariant. Violations are minimized by delta \
     debugging and written as replayable repro files. Exits non-zero when any seed \
     produces a violation."
  in
  let seeds_conv =
    let parse s =
      match String.index_opt s '.' with
      | None ->
        (match int_of_string_opt s with
        | Some n when n >= 0 -> Ok (n, n)
        | _ -> Error (`Msg (Printf.sprintf "bad seed range %S (want N or LO..HI)" s)))
      | Some i ->
        let lo = String.sub s 0 i in
        let rest = String.sub s i (String.length s - i) in
        if String.length rest < 3 || String.sub rest 0 2 <> ".." then
          Error (`Msg (Printf.sprintf "bad seed range %S (want N or LO..HI)" s))
        else
          let hi = String.sub rest 2 (String.length rest - 2) in
          (match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when 0 <= lo && lo <= hi -> Ok (lo, hi)
          | _ -> Error (`Msg (Printf.sprintf "bad seed range %S (want N or LO..HI)" s)))
    in
    let printer fmt (lo, hi) = Format.fprintf fmt "%d..%d" lo hi in
    Arg.conv (parse, printer)
  in
  let seeds_arg =
    Arg.(
      value
      & opt seeds_conv (0, 200)
      & info [ "seeds" ] ~docv:"LO..HI" ~doc:"Inclusive seed range to fuzz.")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~doc:"Worker domains for the search.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Stop claiming new seeds after this much wall-clock time.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Write one minimized repro file per finding into $(docv).")
  in
  let findings_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "findings" ] ~docv:"FILE"
          ~doc:"Write findings as JSON Lines to $(docv).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report findings without minimizing them.")
  in
  let degraded_arg =
    Arg.(
      value & flag
      & info [ "degraded" ]
          ~doc:
            "Fuzz fault-injected scenarios: most cases additionally damage the machine \
             with a random fault plan (and sometimes sabotage the pass sequence), and \
             the oracle checks that the resilient fallback chain either refuses with a \
             typed error or returns a schedule passing every judge.")
  in
  let fuzz_checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal completed seed chunks to $(docv) (crash-safe); a run killed \
             mid-search can continue with --resume and produce bit-identical \
             findings.")
  in
  let fuzz_resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip the seeds already covered by the --checkpoint journal (falls back \
             to a fresh run when the journal does not match the seed range).")
  in
  let fuzz_summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "JSON Lines run summary: status (completed or budget_exhausted), cases, \
             violations, elapsed seconds.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:
            "Instead of fuzzing, replay a repro file (or every *.repro in a directory) \
             and report which still fail.")
  in
  let replay path =
    let repros =
      if Sys.file_exists path && Sys.is_directory path then Cs_check.Repro.load_dir path
      else [ (path, Cs_check.Repro.load path) ]
    in
    if repros = [] then begin
      Printf.eprintf "fuzz: no .repro files under %s\n" path;
      exit 1
    end;
    let failures =
      List.fold_left
        (fun acc (file, repro) ->
          match repro with
          | Error msg ->
            Printf.printf "ERROR %s: %s\n" file msg;
            acc + 1
          | Ok r ->
            (match Cs_check.Repro.replay r with
            | Ok () ->
              Printf.printf "ok    %s\n" file;
              acc
            | Error v ->
              Printf.printf "FAIL  %s: %s: %s\n" file v.Cs_check.Oracle.check
                v.Cs_check.Oracle.detail;
              acc + 1))
        0 repros
    in
    Printf.printf "%d repro%s, %d failing\n" (List.length repros)
      (if List.length repros = 1 then "" else "s")
      failures;
    if failures > 0 then exit 1
  in
  let run seeds domains budget corpus findings_file no_shrink degraded checkpoint resume
      summary replay_path weights_impl trace_out =
    set_weights_impl weights_impl;
    if domains <= 0 then begin
      Printf.eprintf "fuzz: --domains must be positive\n";
      exit 1
    end;
    if resume && checkpoint = None then begin
      Printf.eprintf "fuzz: --resume needs --checkpoint FILE\n";
      exit 1
    end;
    with_trace ~trace_out @@ fun () ->
    match replay_path with
    | Some path -> replay path
    | None ->
      let lo, hi = seeds in
      let journal =
        Option.map
          (fun path ->
            if resume then Cs_check.Journal.resume ~path ~degraded ~seeds ()
            else Cs_check.Journal.create ~path ~degraded ~seeds ())
          checkpoint
      in
      Printf.printf "fuzzing seeds %d..%d (%d domain%s%s%s)\n%!" lo hi domains
        (if domains = 1 then "" else "s")
        (match budget with
        | None -> ""
        | Some b -> Printf.sprintf ", budget %.0fs" b)
        (if degraded then ", degraded machines" else "");
      let stats, found =
        Cs_check.Fuzz.run ~domains ?time_budget_s:budget ?corpus_dir:corpus
          ~shrink:(not no_shrink) ~degraded ?journal
          ~on_finding:(fun f ->
            Printf.printf "  seed %d (%s): %s: %s [%d -> %d instrs]%s\n%!"
              f.Cs_check.Fuzz.seed f.Cs_check.Fuzz.label f.Cs_check.Fuzz.check
              f.Cs_check.Fuzz.detail f.Cs_check.Fuzz.n_instrs
              f.Cs_check.Fuzz.shrunk_instrs
              (match f.Cs_check.Fuzz.repro_path with
              | None -> ""
              | Some p -> " -> " ^ p))
          ~seeds ()
      in
      Option.iter
        (fun path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Cs_check.Fuzz.findings_jsonl found));
          Printf.printf "wrote %s (%d findings, JSON Lines)\n" path (List.length found))
        findings_file;
      Option.iter
        (fun path ->
          let json =
            Cs_obs.Json.Obj
              [ ("tool", Cs_obs.Json.Str "fuzz");
                ("status",
                 Cs_obs.Json.Str
                   (if stats.Cs_check.Fuzz.completed then "completed"
                    else "budget_exhausted"));
                ("seed_lo", Cs_obs.Json.Num (float_of_int lo));
                ("seed_hi", Cs_obs.Json.Num (float_of_int hi));
                ("cases", Cs_obs.Json.Num (float_of_int stats.Cs_check.Fuzz.cases));
                ("violations",
                 Cs_obs.Json.Num (float_of_int stats.Cs_check.Fuzz.violations));
                ("elapsed_s", Cs_obs.Json.Num stats.Cs_check.Fuzz.elapsed_s) ]
          in
          Cs_util.Fsio.write_atomic ~path (Cs_obs.Json.to_string json ^ "\n");
          Printf.printf "wrote %s\n" path)
        summary;
      Printf.printf "%d case%s in %.1fs: %d violation%s%s\n" stats.Cs_check.Fuzz.cases
        (if stats.Cs_check.Fuzz.cases = 1 then "" else "s")
        stats.Cs_check.Fuzz.elapsed_s stats.Cs_check.Fuzz.violations
        (if stats.Cs_check.Fuzz.violations = 1 then "" else "s")
        (if stats.Cs_check.Fuzz.completed then "" else " (budget exhausted)");
      if stats.Cs_check.Fuzz.violations > 0 then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seeds_arg $ domains_arg $ budget_arg $ corpus_arg $ findings_arg
      $ no_shrink_arg $ degraded_arg $ fuzz_checkpoint_arg $ fuzz_resume_arg
      $ fuzz_summary_arg $ replay_arg $ weights_impl_arg $ trace_out_arg)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/csched.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

(* serve/gateway bind here; submit/profile connect here. [--listen] /
   [--connect] accept either HOST:PORT (TCP) or a Unix socket path and
   win over the legacy [--socket]. *)
let addr_of ~flag ~listen socket =
  let spec = Option.value ~default:socket listen in
  match Cs_svc.Transport.parse spec with
  | Ok addr -> addr
  | Error msg ->
    Printf.eprintf "%s: %s\n" flag msg;
    exit 1

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: HOST:PORT for TCP (e.g. 127.0.0.1:7040, port 0 picks a free \
           port) or a Unix socket path. Overrides --socket.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Server address: HOST:PORT for TCP or a Unix socket path. Overrides --socket.")

let serve_cmd =
  let doc =
    "Run the batch scheduling service: accept jobs over a Unix-domain socket (one JSON \
     request per line), execute them on a worker-domain pool behind a bounded admission \
     queue, and answer every request with a schedule or a typed refusal. Per-job \
     deadlines are enforced end to end via the anytime driver; SIGTERM/SIGINT drain \
     gracefully (every admitted job is still answered)."
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker domains executing jobs.")
  in
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue" ]
          ~doc:"Admission-queue bound; excess jobs are shed with a typed overloaded reply.")
  in
  let default_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Deadline applied to jobs that do not carry one.")
  in
  let pass_budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "pass-budget-ms" ] ~docv:"MS"
          ~doc:
            "Per-pass time budget inside the convergent driver; overrunning passes are \
             rolled back and quarantined.")
  in
  let chaos_slow_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "chaos-slow-ms" ] ~docv:"MS"
          ~doc:
            "Fault drill: append a CHAOS pass stalling $(docv) ms to every convergent \
             job, to exercise deadlines and per-pass budgets under load.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:
            "Retry transient job failures up to this many extra attempts (exponential \
             backoff with deterministic jitter); 0 disables.")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "heartbeat" ] ~docv:"ADDR"
          ~doc:
            "Push a load heartbeat to the gateway at $(docv) every heartbeat period, \
             over a persistent connection.")
  in
  let heartbeat_period_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "heartbeat-period-ms" ] ~docv:"MS" ~doc:"Heartbeat push period.")
  in
  let advertise_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "advertise" ] ~docv:"NAME"
          ~doc:
            "Shard name carried on heartbeats — must match the address the gateway was \
             configured with for this shard; defaults to the bound address.")
  in
  let no_lanes_arg =
    Arg.(
      value & flag
      & info [ "no-lanes" ]
          ~doc:
            "Use the legacy single-queue engine instead of fair admission + \
             work-stealing lanes (the benchmark baseline).")
  in
  let split_threshold_arg =
    Arg.(
      value & opt int 16
      & info [ "split-threshold" ] ~docv:"SCALE"
          ~doc:
            "Split jobs whose scale exceeds $(docv) into stealable parts (lanes \
             engine only); 0 disables splitting.")
  in
  let tenant_quota_arg =
    Arg.(
      value & opt int 0
      & info [ "tenant-quota" ] ~docv:"N"
          ~doc:
            "Max queued jobs per tenant; a tenant over its quota gets a typed \
             quota-exceeded refusal while others are unaffected. 0 = no bound \
             tighter than --queue.")
  in
  let batch_share_arg =
    Arg.(
      value & opt int 4
      & info [ "batch-share" ] ~docv:"N"
          ~doc:
            "Guarantee the batch lane one admission pull in every $(docv) even under \
             interactive pressure.")
  in
  let brownout_flag_arg =
    Arg.(
      value & flag
      & info [ "brownout" ]
          ~doc:
            "Enable brownout degradation: when queue-wait burn crosses the watermark, \
             progressively tighten effective pass budgets (anytime best-so-far) \
             before shedding, recovering hysteretically.")
  in
  let run socket listen workers queue default_deadline_ms pass_budget_ms chaos_slow_ms
      retries heartbeat heartbeat_period_ms advertise no_lanes split_threshold
      tenant_quota batch_share brownout trace_out jsonl =
    if workers <= 0 || queue <= 0 then begin
      Printf.eprintf "serve: --workers and --queue must be positive\n";
      exit 1
    end;
    with_trace ?jsonl ~trace_out @@ fun () ->
    let retry =
      if retries <= 0 then None
      else Some { Cs_svc.Retry.default with max_attempts = retries + 1 }
    in
    let addr = addr_of ~flag:"serve" ~listen socket in
    let cfg =
      try
        Cs_svc.Server.config ~workers ~queue_capacity:queue ?default_deadline_ms
          ?pass_budget_s:(Option.map (fun ms -> ms /. 1000.0) pass_budget_ms)
          ?chaos_slow_ms ?retry ?heartbeat
          ~heartbeat_period_s:(heartbeat_period_ms /. 1000.0)
          ?advertise
          ~engine:
            (if no_lanes then Cs_svc.Server.Single_queue else Cs_svc.Server.Lanes)
          ~split_threshold ~tenant_quota ~batch_share
          ?brownout:(if brownout then Some Cs_svc.Brownout.default else None)
          (Cs_svc.Transport.to_string addr)
      with Invalid_argument msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit 1
    in
    let server =
      try Cs_svc.Server.create cfg
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "serve: cannot listen on %s: %s\n"
          (Cs_svc.Transport.to_string addr) (Unix.error_message e);
        exit 1
    in
    let stop _ = Cs_svc.Server.stop server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.printf "csched serve: listening on %s (%d workers, queue %d)\n%!"
      (Cs_svc.Transport.to_string (Cs_svc.Server.address server))
      workers queue;
    Cs_svc.Server.run server;
    let s = Cs_svc.Server.stats server in
    Printf.printf
      "drained: %d admitted, %d scheduled, %d refused (%d shed by admission)\n"
      s.Cs_svc.Server.admitted s.Cs_svc.Server.completed s.Cs_svc.Server.refused
      s.Cs_svc.Server.shed
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ listen_arg $ workers_arg $ queue_arg $ default_deadline_arg
      $ pass_budget_arg $ chaos_slow_arg $ retries_arg $ heartbeat_arg
      $ heartbeat_period_arg $ advertise_arg $ no_lanes_arg $ split_threshold_arg
      $ tenant_quota_arg $ batch_share_arg $ brownout_flag_arg $ trace_out_arg
      $ jsonl_arg)

let gateway_cmd =
  let doc =
    "Run the fleet gateway: one front door over N `csched serve' shards, speaking the \
     same JSON-lines protocol. Jobs are routed by consistent hash of their canonical \
     scenario (or by a load-aware policy fed by queue-depth gossip), repeat scenarios \
     are answered from a bounded LRU result cache without a shard hop, and a \
     health-checked failover replays in-flight jobs from a dead shard on a live one — \
     every client request is answered exactly once."
  in
  let shards_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "shards" ] ~docv:"ADDR1,ADDR2,..."
          ~doc:"Comma-separated shard addresses (HOST:PORT or Unix socket paths).")
  in
  let policy_arg =
    Arg.(
      value & opt string "hash"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Dispatch policy: $(b,hash), $(b,least-loaded) or $(b,wct).")
  in
  let cache_arg =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (LRU entries).")
  in
  let forwarders_arg =
    Arg.(
      value & opt int 4
      & info [ "forwarders" ] ~doc:"Concurrent forwarding workers.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~doc:"Gateway admission-queue bound; excess jobs are shed.")
  in
  let probe_period_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "probe-period-ms" ] ~docv:"MS"
          ~doc:"Health-probe period: every shard is pinged this often.")
  in
  let fail_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "fail-threshold" ]
          ~doc:
            "Consecutive transport failures before a shard is evicted (it re-enters \
             via backoff probes).")
  in
  let shard_timeout_arg =
    Arg.(
      value & opt float 30000.0
      & info [ "shard-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-read timeout on shard connections; a shard silent this long counts \
             as a transport failure (the job is replayed elsewhere).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Durable job journal directory: every admitted job is fsynced to a \
             write-ahead log before dispatch and marked done on reply, making \
             idempotency-keyed retries exactly-once across gateway restarts.")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Recover from an existing journal at startup: re-dispatch unacked jobs \
             and restore the dedup map. Without this flag an existing journal is \
             discarded.")
  in
  let run socket listen shards_spec policy_name cache forwarders queue probe_period_ms
      fail_threshold shard_timeout_ms journal_dir recover trace_out jsonl =
    let policy =
      match Cs_gateway.Policy.of_string policy_name with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "gateway: %s\n" msg;
        exit 1
    in
    let shards =
      List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' shards_spec)
    in
    with_trace ?jsonl ~trace_out @@ fun () ->
    let addr = addr_of ~flag:"gateway" ~listen socket in
    let cfg =
      try
        Cs_gateway.Gateway.config ~policy ~cache_capacity:cache ~forwarders
          ~queue_capacity:queue
          ~probe_period_s:(probe_period_ms /. 1000.0)
          ~fail_threshold
          ~shard_timeout_s:(shard_timeout_ms /. 1000.0)
          ?journal_dir ~recover ~shards
          (Cs_svc.Transport.to_string addr)
      with Invalid_argument msg ->
        Printf.eprintf "gateway: %s\n" msg;
        exit 1
    in
    let gw =
      try Cs_gateway.Gateway.create cfg
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "gateway: cannot listen on %s: %s\n"
          (Cs_svc.Transport.to_string addr) (Unix.error_message e);
        exit 1
    in
    let stop _ = Cs_gateway.Gateway.stop gw in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.printf "csched gateway: listening on %s (%d shards, %s policy, cache %d)\n%!"
      (Cs_svc.Transport.to_string (Cs_gateway.Gateway.address gw))
      (List.length shards) (Cs_gateway.Policy.to_string policy) cache;
    Cs_gateway.Gateway.run gw;
    let s = Cs_gateway.Gateway.stats gw in
    Printf.printf
      "drained: %d admitted, %d completed, %d refused (%d shed); %d forwarded, %d \
       replayed, cache %d/%d hit\n"
      s.Cs_gateway.Gateway.admitted s.Cs_gateway.Gateway.completed
      s.Cs_gateway.Gateway.refused s.Cs_gateway.Gateway.shed
      s.Cs_gateway.Gateway.forwarded s.Cs_gateway.Gateway.replayed
      s.Cs_gateway.Gateway.cache_hits
      (s.Cs_gateway.Gateway.cache_hits + s.Cs_gateway.Gateway.cache_misses)
  in
  Cmd.v (Cmd.info "gateway" ~doc)
    Term.(
      const run $ socket_arg $ listen_arg $ shards_arg $ policy_arg $ cache_arg
      $ forwarders_arg $ queue_arg $ probe_period_arg $ fail_threshold_arg
      $ shard_timeout_arg $ journal_arg $ recover_arg $ trace_out_arg $ jsonl_arg)

let submit_cmd =
  let doc =
    "Submit a batch of jobs to a running `csched serve' and print one line per reply. \
     Exits non-zero on transport errors or when --strict is set and any job was \
     refused."
  in
  let bench_list_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmarks" ] ~docv:"B1,B2,..."
          ~doc:"Comma-separated benchmarks to submit (one job each).")
  in
  let machine_name_arg =
    Arg.(
      value & opt string "raw16"
      & info [ "m"; "machine" ] ~doc:"Target machine name sent with each job.")
  in
  let scheduler_name_arg =
    Arg.(
      value & opt string "convergent"
      & info [ "s"; "scheduler" ] ~doc:"Scheduler name sent with each job.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-job deadline sent with each job.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~doc:"Submit each job this many times.")
  in
  let jobs_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jobs" ] ~docv:"FILE"
          ~doc:
            "Read requests from $(docv) (JSON Lines, same format as the wire protocol) \
             instead of building them from flags.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 60.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-read socket timeout.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero if any job in the batch was shed or refused, not only on \
             transport errors.")
  in
  let tenant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Tenant name sent with each job (fair-admission accounting).")
  in
  let class_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "class" ] ~docv:"CLASS"
          ~doc:
            "Priority class sent with each job: $(b,interactive) or $(b,batch) \
             (default: derived from the deadline).")
  in
  let run socket connect bench_spec machine scheduler scale deadline_ms repeat jobs_file
      timeout strict tenant job_class =
    let from_flags () =
      match bench_spec with
      | None ->
        Printf.eprintf "submit: pass --benchmarks or --jobs FILE\n";
        exit 1
      | Some spec ->
        let benches =
          List.filter (fun b -> String.trim b <> "") (String.split_on_char ',' spec)
        in
        List.concat_map
          (fun bench ->
            List.init (max 1 repeat) (fun i ->
                Cs_svc.Proto.request
                  ~id:(Printf.sprintf "%s-%d" bench i)
                  ~machine ~scheduler ~scale ?deadline_ms ?tenant ?job_class bench))
          benches
    in
    let requests =
      match jobs_file with
      | None -> from_flags ()
      | Some path ->
        (match Cs_util.Fsio.read_opt path with
        | None ->
          Printf.eprintf "submit: cannot read %s\n" path;
          exit 1
        | Some text ->
          String.split_on_char '\n' text
          |> List.filter (fun l -> String.trim l <> "")
          |> List.mapi (fun i line ->
                 match Cs_svc.Proto.request_of_line line with
                 | Ok r -> r
                 | Error e ->
                   Printf.eprintf "submit: %s line %d: %s\n" path (i + 1) e;
                   exit 1))
    in
    if requests = [] then begin
      Printf.eprintf "submit: nothing to submit\n";
      exit 1
    end;
    (* Each job gets its own trace unless the jobs file carried one, so a
       merged `csched trace --merge` can follow it gateway -> shard. *)
    let requests =
      List.map
        (fun (r : Cs_svc.Proto.request) ->
          if r.Cs_svc.Proto.trace_id = None then
            Cs_svc.Proto.with_trace ~ctx:(Cs_obs.Tracectx.root ()) r
          else r)
        requests
    in
    let print_reply (r : Cs_svc.Proto.reply) =
      let cached = if r.Cs_svc.Proto.cached then " [cached]" else "" in
      match r.Cs_svc.Proto.verdict with
      | Cs_svc.Proto.Scheduled s ->
        Printf.printf
          "ok      %-16s %5d cycles, %3d transfers, rung %s%s%s (%.1f ms)\n%!"
          r.Cs_svc.Proto.reply_id s.cycles s.transfers s.rung
          (if s.timed_out then " [anytime]" else "")
          cached r.Cs_svc.Proto.elapsed_ms
      | Cs_svc.Proto.Refused e ->
        Printf.printf "refused %-16s %s: %s%s (%.1f ms)\n%!" r.Cs_svc.Proto.reply_id
          e.kind e.message cached r.Cs_svc.Proto.elapsed_ms
    in
    match
      Cs_svc.Client.submit ~timeout_s:timeout ~on_reply:print_reply
        ~addr:(addr_of ~flag:"submit" ~listen:connect socket)
        requests
    with
    | Error msg ->
      Printf.eprintf "submit: %s\n" msg;
      exit 1
    | Ok replies ->
      (* Sheds are refusals too ([overloaded] / [quota-exceeded]); count
         them out separately so a --strict failure is attributable at a
         glance, and so the exit code provably covers both. *)
      let refused, shed =
        List.fold_left
          (fun (refused, shed) (r : Cs_svc.Proto.reply) ->
            match r.Cs_svc.Proto.verdict with
            | Cs_svc.Proto.Refused { kind; _ }
              when kind = "overloaded" || kind = "quota-exceeded" ->
              (refused + 1, shed + 1)
            | Cs_svc.Proto.Refused _ -> (refused + 1, shed)
            | Cs_svc.Proto.Scheduled _ -> (refused, shed))
          (0, 0) replies
      in
      Printf.printf "%d job%s: %d scheduled, %d refused (%d shed)\n"
        (List.length replies)
        (if List.length replies = 1 then "" else "s")
        (List.length replies - refused)
        refused shed;
      if List.length replies <> List.length requests then begin
        Printf.eprintf "submit: %d request%s went unanswered\n"
          (List.length requests - List.length replies)
          (if List.length requests - List.length replies = 1 then "" else "s");
        exit 1
      end;
      if strict && refused > 0 then begin
        Printf.eprintf "submit: --strict: %d of %d jobs shed or refused\n" refused
          (List.length replies);
        exit 1
      end
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ socket_arg $ connect_arg $ bench_list_arg $ machine_name_arg
      $ scheduler_name_arg $ scale_arg $ deadline_arg $ repeat_arg $ jobs_file_arg
      $ timeout_arg $ strict_arg $ tenant_arg $ class_arg)

let metrics_cmd =
  let doc =
    "Dump the metrics registry of a running serve or gateway: Prometheus text \
     exposition by default, or the mergeable JSON snapshot (the same document the \
     [metrics] control verb carries on the wire) with --format json."
  in
  let format_conv =
    Arg.enum
      [ ("prometheus", Cs_svc.Proto.Metrics_prometheus);
        ("prom", Cs_svc.Proto.Metrics_prometheus);
        ("json", Cs_svc.Proto.Metrics_json) ]
  in
  let format_arg =
    Arg.(
      value & opt format_conv Cs_svc.Proto.Metrics_prometheus
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,prometheus) (text exposition) or $(b,json) (mergeable \
             snapshot).")
  in
  let run socket connect format =
    let addr = addr_of ~flag:"metrics" ~listen:connect socket in
    match Cs_svc.Client.fetch_metrics ~format ~addr () with
    | Error e ->
      Printf.eprintf "metrics: %s: %s\n" (Cs_svc.Transport.to_string addr) e;
      exit 1
    | Ok (Cs_svc.Proto.Prom_text text) -> print_string text
    | Ok (Cs_svc.Proto.Snapshot snap) ->
      print_endline (Cs_obs.Json.to_string (Cs_obs.Metrics.snapshot_to_json snap))
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ socket_arg $ connect_arg $ format_arg)

let top_cmd =
  let doc =
    "Live fleet dashboard: poll the [metrics] verb of a gateway and/or its shards, \
     merge the snapshots into fleet totals, and render per-process queue depth, \
     throughput, latency quantiles (p50/p95/p99 from merged histogram buckets), cache \
     hit rate, and deadline-SLO burn over the rolling 60 s / 300 s windows."
  in
  let shards_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shards" ] ~docv:"ADDR1,ADDR2,..."
          ~doc:"Shard addresses to poll alongside (or instead of) --connect.")
  in
  let period_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "period-ms" ] ~docv:"MS" ~doc:"Polling period.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(docv) polls (0 = run until interrupted).")
  in
  let module M = Cs_obs.Metrics in
  let counter_of snap name =
    M.fold_name snap name ~init:0 ~f:(fun acc _ e ->
        match e with M.Counter_v n -> acc + n | _ -> acc)
  in
  let gauge_of ?labels snap name =
    match M.find snap ?labels name with Some (M.Gauge_v v) -> v | _ -> 0.0
  in
  let histo_of snap name =
    match M.find snap name with Some (M.Histo_v h) -> Some h | _ -> None
  in
  let quantiles snap name =
    match histo_of snap name with
    | None -> "-"
    | Some h when M.total h = 0 -> "-"
    | Some h ->
      Printf.sprintf "%.1f/%.1f/%.1f ms" (M.quantile h 50.0) (M.quantile h 95.0)
        (M.quantile h 99.0)
  in
  let run socket connect shards_spec period_ms iterations =
    let targets =
      let named flag spec =
        match Cs_svc.Transport.parse spec with
        | Ok a -> (spec, a)
        | Error msg ->
          Printf.eprintf "top: %s: %s\n" flag msg;
          exit 1
      in
      let shard_targets =
        match shards_spec with
        | None -> []
        | Some spec ->
          String.split_on_char ',' spec
          |> List.filter (fun s -> String.trim s <> "")
          |> List.map (named "--shards")
      in
      match (connect, shard_targets) with
      | None, [] -> [ named "--socket" socket ]
      | None, shards -> shards
      | Some spec, shards -> named "--connect" spec :: shards
    in
    let period_s = Float.max 0.05 (period_ms /. 1000.0) in
    let clear = Unix.isatty Unix.stdout && iterations <> 1 in
    (* (completed, ts) per target at the previous poll, for jobs/s. *)
    let prev = Hashtbl.create 8 in
    let poll_one (label, addr) =
      match Cs_svc.Client.fetch_metrics ~addr () with
      | Ok (Cs_svc.Proto.Snapshot snap) -> (label, Some snap)
      | Ok (Cs_svc.Proto.Prom_text _) | Error _ -> (label, None)
    in
    let render polled =
      if clear then print_string "\027[2J\027[H";
      let now = Cs_obs.Clock.now () in
      let table =
        Cs_util.Table.create
          ~header:
            [ "process"; "queue"; "busy"; "admitted"; "done"; "jobs/s";
              "p50/p95/p99"; "cache%" ]
      in
      let live = List.filter_map (fun (_, s) -> s) polled in
      let row label snap =
        let completed = counter_of snap "csched_jobs_completed_total" in
        let rate =
          match Hashtbl.find_opt prev label with
          | Some (c0, t0) when now > t0 ->
            Printf.sprintf "%.1f" (float_of_int (completed - c0) /. (now -. t0))
          | _ -> "-"
        in
        Hashtbl.replace prev label (completed, now);
        let hits = counter_of snap "csched_cache_hits_total" in
        let misses = counter_of snap "csched_cache_misses_total" in
        let cache =
          if hits + misses = 0 then "-"
          else Printf.sprintf "%.0f" (100.0 *. float_of_int hits /. float_of_int (hits + misses))
        in
        Cs_util.Table.add_row table
          [ label;
            Printf.sprintf "%.0f" (gauge_of snap "csched_queue_depth");
            Printf.sprintf "%.0f/%.0f"
              (gauge_of snap "csched_workers_busy")
              (gauge_of snap "csched_workers");
            string_of_int (counter_of snap "csched_jobs_admitted_total");
            string_of_int completed; rate;
            quantiles snap "csched_job_latency_ms"; cache ]
      in
      List.iter (fun (label, snap) ->
          match snap with
          | Some snap -> row label snap
          | None ->
            Cs_util.Table.add_row table
              [ label; "down"; "-"; "-"; "-"; "-"; "-"; "-" ])
        polled;
      if List.length polled > 1 then begin
        match live with
        | [] -> ()
        | _ -> row "FLEET" (M.merge_all live)
      end;
      Cs_util.Table.print table;
      (* SLO burn: windowed deadline hit/miss gauges from the merged view. *)
      let fleet = M.merge_all live in
      let burn window =
        let labels = [ ("window", window) ] in
        let h = gauge_of ~labels fleet "csched_deadline_hits" in
        let m = gauge_of ~labels fleet "csched_deadline_misses" in
        if h +. m <= 0.0 then "-"
        else Printf.sprintf "%.1f%%" (100.0 *. m /. (h +. m))
      in
      let dh = counter_of fleet "csched_deadline_hits_total" in
      let dm = counter_of fleet "csched_deadline_misses_total" in
      if dh + dm > 0 then
        Printf.printf "slo: %d/%d deadlines met; burn %s (60s) %s (300s)\n"
          dh (dh + dm) (burn "60s") (burn "300s");
      (* Per-tenant fairness view: fold csched_tenant_jobs_total by its
         tenant/outcome labels into one row per tenant. *)
      let tenants = Hashtbl.create 8 in
      ignore
        (M.fold_name fleet "csched_tenant_jobs_total" ~init:()
           ~f:(fun () key e ->
             match e with
             | M.Counter_v n ->
               let label k = Option.value ~default:"?" (List.assoc_opt k key.M.labels) in
               let tenant = label "tenant" in
               let adm, don, shd, quo =
                 Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt tenants tenant)
               in
               Hashtbl.replace tenants tenant
                 (match label "outcome" with
                 | "admitted" -> (adm + n, don, shd, quo)
                 | "completed" -> (adm, don + n, shd, quo)
                 | "shed" -> (adm, don, shd + n, quo)
                 | "quota" -> (adm, don, shd, quo + n)
                 | _ -> (adm, don, shd, quo))
             | _ -> ()));
      if Hashtbl.length tenants > 0 then begin
        let ttable =
          Cs_util.Table.create
            ~header:[ "tenant"; "admitted"; "done"; "shed"; "quota" ]
        in
        Hashtbl.fold (fun tenant row acc -> (tenant, row) :: acc) tenants []
        |> List.sort compare
        |> List.iter (fun (tenant, (adm, don, shd, quo)) ->
               Cs_util.Table.add_row ttable
                 [ tenant; string_of_int adm; string_of_int don;
                   string_of_int shd; string_of_int quo ]);
        Cs_util.Table.print ttable
      end;
      Printf.printf "%!"
    in
    let rec loop i =
      render (List.map poll_one targets);
      if iterations <= 0 || i + 1 < iterations then begin
        Unix.sleepf period_s;
        loop (i + 1)
      end
    in
    loop 0
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ socket_arg $ connect_arg $ shards_arg $ period_arg $ iterations_arg)

let chaos_cmd = Chaos.cmd

let () =
  (* Every networked subcommand writes to sockets whose peer may vanish
     mid-write; set once here instead of per-command. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let doc = "convergent scheduling for spatial architectures (MICRO-35 reproduction)" in
  let info = Cmd.info "csched" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; passes_cmd; run_cmd; run_file_cmd; compare_cmd; trace_cmd;
            profile_cmd; dot_cmd; tune_cmd; faults_cmd; fuzz_cmd; serve_cmd; submit_cmd;
            gateway_cmd; chaos_cmd; metrics_cmd; top_cmd ]))
