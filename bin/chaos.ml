(* csched chaos: a multi-process fleet drill.

   Unlike the in-process chaos experiments in bench/, this spawns a
   REAL fleet — N `csched serve` shards and one `csched gateway`, each
   its own OS process on loopback TCP — drives open-loop traffic at the
   gateway, and injects faults from a deterministic seeded schedule:

   - SIGKILL the gateway mid-batch, then restart it with
     `--journal DIR --recover` and re-submit whatever the client never
     heard back about, under the same idempotency keys;
   - SIGSTOP a shard for a whole wave (a hung-but-alive process: TCP
     accepts, nothing answers), then SIGCONT it;
   - clock-skewed deadlines: a slice of each wave carries a deadline
     that has already expired by the time the shard sees it.

   Invariants checked at the end, over every reply collected:

   - zero lost: every submitted key is eventually answered;
   - zero duplicated: no key ever yields two different schedules
     (replays and journal dedup must be verdict-stable);
   - validator-clean: every reply parses and every schedule carries
     positive cycle counts;
   - fleet metrics consistent: the journal drains to zero pending and
     push heartbeats actually flowed.

   Machine-readable output lands in BENCH_chaos.json (written
   atomically; CI parses it). Exit status 0 iff all invariants hold. *)

module Proto = Cs_svc.Proto
module Client = Cs_svc.Client
module Transport = Cs_svc.Transport
module Json = Cs_obs.Json
open Cmdliner

(* --- child processes ----------------------------------------------- *)

type child = { cname : string; mutable pid : int }

let children : child list ref = ref []

let kill_quiet pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* Last-resort cleanup so an exception never strands server processes. *)
let () =
  at_exit (fun () ->
      List.iter
        (fun c ->
          if c.pid > 0 then begin
            kill_quiet c.pid Sys.sigkill;
            (try ignore (Unix.waitpid [ Unix.WNOHANG ] c.pid)
             with Unix.Unix_error _ -> ())
          end)
        !children)

let spawn ~name args =
  let argv = Array.of_list (Sys.executable_name :: args) in
  let pid =
    Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout Unix.stderr
  in
  let c = { cname = name; pid } in
  children := c :: !children;
  c

let terminate c =
  if c.pid > 0 then begin
    kill_quiet c.pid Sys.sigterm;
    (* graceful drain first; SIGKILL stragglers after a grace period *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] c.pid with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          kill_quiet c.pid Sys.sigkill;
          reap c.pid
        end
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    wait ();
    c.pid <- 0
  end

(* --- plumbing ------------------------------------------------------ *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> failwith "chaos: loopback bind did not yield a port")

let wait_ready ~what addr =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Client.fetch_stats ~timeout_s:1.0 ~addr () with
    | Ok _ -> ()
    | Error _ ->
      if Unix.gettimeofday () > deadline then
        failwith (Printf.sprintf "chaos: %s not ready within 15s" what)
      else begin
        Unix.sleepf 0.1;
        go ()
      end
  in
  go ()

let extra_stat stats key =
  match List.assoc_opt key stats.Proto.extra with Some v -> v | None -> 0.0

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- the drill ----------------------------------------------------- *)

type results = {
  requests : (string, Proto.request) Hashtbl.t;
  replies : (string, Proto.reply list) Hashtbl.t;  (* key -> all replies seen *)
  mutable events : string list;  (* newest first *)
}

let event r fmt =
  Printf.ksprintf
    (fun msg ->
      r.events <- msg :: r.events;
      Printf.printf "chaos: %s\n%!" msg)
    fmt

let record_reply r reply =
  let key = reply.Proto.reply_id in
  let prev = Option.value ~default:[] (Hashtbl.find_opt r.replies key) in
  Hashtbl.replace r.replies key (reply :: prev)

(* Submit a batch and harvest whatever replies land before the
   connection dies; a SIGKILLed gateway surfaces here as a transport
   error with a partial harvest, which is exactly what a real client
   sees. *)
let submit_harvest r ~addr jobs =
  match Client.submit ~timeout_s:60.0 ~on_reply:(record_reply r) ~addr jobs with
  | Ok _ -> true
  | Error msg ->
    event r "submit interrupted: %s" msg;
    false

let unanswered r keys =
  List.filter (fun k -> not (Hashtbl.mem r.replies k)) keys

let scheduled_signature reply =
  match reply.Proto.verdict with
  | Proto.Scheduled { cycles; transfers; _ } ->
    Some (Printf.sprintf "scheduled:%d:%d" cycles transfers)
  | Proto.Refused _ -> None

let benches = [| "fir"; "jacobi"; "sha"; "life" |]

let make_wave rng ~wave ~jobs ~slow =
  List.init jobs (fun i ->
      let id = Printf.sprintf "w%d-%d" wave i in
      let bench = Cs_util.Rng.choose rng benches in
      let seed = (wave * 10_000) + i in
      (* clock-skew slice: ~10% of jobs carry a deadline that expired
         before the request even hit the wire *)
      let deadline_ms =
        if Cs_util.Rng.int rng 10 = 0 then Some 0.01 else None
      in
      let scale = if slow && i mod 2 = 0 then 2 else 1 in
      Proto.request ~id ~idem_key:id ~machine:"raw4" ~scale ?deadline_ms ~seed bench)

let run_drill ~shards:nshards ~waves ~jobs ~seed ~workers ~journal_dir ~out
    ~no_gateway_kill ~no_shard_stop =
  let rng = Cs_util.Rng.create seed in
  let r =
    { requests = Hashtbl.create 256; replies = Hashtbl.create 256; events = [] }
  in
  mkdir_p journal_dir;
  (* fleet topology: fixed ports picked up front so the gateway can be
     restarted at the same address the clients and shards already use *)
  let gw_port = free_port () in
  let gw_spec = Printf.sprintf "127.0.0.1:%d" gw_port in
  let gw_addr =
    match Transport.parse gw_spec with
    | Ok a -> a
    | Error m -> failwith ("chaos: " ^ m)
  in
  let shard_specs =
    List.init nshards (fun _ -> Printf.sprintf "127.0.0.1:%d" (free_port ()))
  in
  let shard_children =
    List.map
      (fun spec ->
        spawn ~name:("serve " ^ spec)
          [ "serve"; "--listen"; spec; "--workers"; string_of_int workers;
            "--queue"; "32"; "--heartbeat"; gw_spec; "--heartbeat-period-ms";
            "200"; "--advertise"; spec ])
      shard_specs
  in
  List.iter
    (fun spec ->
      match Transport.parse spec with
      | Ok a -> wait_ready ~what:("shard " ^ spec) a
      | Error m -> failwith ("chaos: " ^ m))
    shard_specs;
  let gateway_args recover =
    [ "gateway"; "--listen"; gw_spec; "--shards"; String.concat "," shard_specs;
      "--journal"; journal_dir; "--probe-period-ms"; "200";
      "--shard-timeout-ms"; "2000" ]
    @ (if recover then [ "--recover" ] else [])
  in
  let gw = ref (spawn ~name:"gateway" (gateway_args false)) in
  wait_ready ~what:"gateway" gw_addr;
  event r "fleet up: %d shards behind %s (journal %s, seed %d)" nshards gw_spec
    journal_dir seed;
  (* seeded fault schedule; the gateway kill is the headline drill and
     is always placed on a wave with traffic behind it *)
  let kill_wave =
    if no_gateway_kill || waves < 2 then -1 else 1 + Cs_util.Rng.int rng (waves - 1)
  in
  let stop_wave =
    if no_shard_stop || waves < 2 then -2
    else begin
      let rec pick () =
        let w = Cs_util.Rng.int rng waves in
        if w = kill_wave then pick () else w
      in
      pick ()
    end
  in
  let stop_shard =
    if nshards > 0 then Cs_util.Rng.int rng nshards else 0
  in
  let gateway_killed = ref false in
  for wave = 0 to waves - 1 do
    let batch = make_wave rng ~wave ~jobs ~slow:(wave = kill_wave) in
    List.iter (fun j -> Hashtbl.replace r.requests j.Proto.id j) batch;
    if wave = kill_wave then begin
      (* submit from a domain so the kill lands mid-flight *)
      let submitter =
        Domain.spawn (fun () -> submit_harvest r ~addr:gw_addr batch)
      in
      Unix.sleepf 0.08;
      event r "wave %d: SIGKILL gateway (pid %d) mid-batch" wave !gw.pid;
      kill_quiet !gw.pid Sys.sigkill;
      reap !gw.pid;
      !gw.pid <- 0;
      gateway_killed := true;
      ignore (Domain.join submitter);
      gw := spawn ~name:"gateway" (gateway_args true);
      wait_ready ~what:"recovered gateway" gw_addr;
      event r "wave %d: gateway restarted with --recover" wave
    end
    else if wave = stop_wave then begin
      let victim = List.nth shard_children stop_shard in
      event r "wave %d: SIGSTOP %s for the whole wave" wave victim.cname;
      kill_quiet victim.pid Sys.sigstop;
      ignore (submit_harvest r ~addr:gw_addr batch);
      kill_quiet victim.pid Sys.sigcont;
      event r "wave %d: SIGCONT %s" wave victim.cname
    end
    else ignore (submit_harvest r ~addr:gw_addr batch)
  done;
  (* close the loop: re-submit anything the client never heard about,
     same idempotency keys, until the ledger has no holes *)
  let all_keys = Hashtbl.fold (fun k _ acc -> k :: acc) r.requests [] in
  let rec settle_unanswered round =
    let missing = unanswered r all_keys in
    if missing <> [] && round < 5 then begin
      event r "retry round %d: %d unanswered keys" round (List.length missing);
      let jobs = List.filter_map (Hashtbl.find_opt r.requests) missing in
      ignore (submit_harvest r ~addr:gw_addr jobs);
      settle_unanswered (round + 1)
    end
  in
  settle_unanswered 0;
  (* dedup probe: re-submit scheduled keys verbatim; the journal (or
     cache) must answer with the identical verdict *)
  let scheduled_keys =
    List.filter
      (fun k ->
        match Hashtbl.find_opt r.replies k with
        | Some replies -> List.exists (fun x -> scheduled_signature x <> None) replies
        | None -> false)
      all_keys
  in
  let probe =
    List.filteri (fun i _ -> i < 8) scheduled_keys
    |> List.filter_map (Hashtbl.find_opt r.requests)
  in
  if probe <> [] then begin
    event r "dedup probe: re-submitting %d completed keys" (List.length probe);
    ignore (submit_harvest r ~addr:gw_addr probe)
  end;
  (* let replays drain and heartbeats tick, then read the fleet's view *)
  Unix.sleepf 0.6;
  let rec final_stats tries =
    match Client.fetch_stats ~timeout_s:2.0 ~addr:gw_addr () with
    | Ok st when extra_stat st "journal_pending" > 0.0 && tries > 0 ->
      Unix.sleepf 0.2;
      final_stats (tries - 1)
    | Ok st -> st
    | Error m -> failwith ("chaos: final stats fetch failed: " ^ m)
  in
  let st = final_stats 25 in
  terminate !gw;
  List.iter terminate shard_children;
  (* --- invariants -------------------------------------------------- *)
  let lost = unanswered r all_keys in
  let conflicts =
    List.filter
      (fun k ->
        match Hashtbl.find_opt r.replies k with
        | None -> false
        | Some replies ->
          let sigs =
            List.sort_uniq compare (List.filter_map scheduled_signature replies)
          in
          List.length sigs > 1)
      all_keys
  in
  let malformed =
    Hashtbl.fold
      (fun _ replies acc ->
        acc
        + List.length
            (List.filter
               (fun x ->
                 match x.Proto.verdict with
                 | Proto.Scheduled { cycles; _ } -> cycles <= 0
                 | Proto.Refused { kind; _ } -> kind = "")
               replies))
      r.replies 0
  in
  let count pred =
    Hashtbl.fold
      (fun _ replies acc ->
        acc + List.length (List.filter pred replies))
      r.replies 0
  in
  let n_replies = count (fun _ -> true) in
  let n_refused =
    count (fun x -> match x.Proto.verdict with Proto.Refused _ -> true | _ -> false)
  in
  let n_deadline =
    count (fun x ->
        match x.Proto.verdict with
        | Proto.Refused { kind; _ } -> kind = "deadline-exceeded"
        | _ -> false)
  in
  let journal_pending = extra_stat st "journal_pending" in
  let heartbeats = extra_stat st "heartbeats" in
  let journal_replays = extra_stat st "journal_replays" in
  let journal_hits = extra_stat st "journal_hits" in
  let checks =
    [ ("zero_lost", lost = []);
      ("zero_duplicated", conflicts = []);
      ("validator_clean", malformed = 0);
      ("journal_drained", journal_pending = 0.0);
      ("heartbeats_flowed", heartbeats > 0.0) ]
  in
  let pass = List.for_all snd checks in
  let num n = Json.Num (float_of_int n) in
  let json =
    Json.Obj
      [ ("experiment", Json.Str "chaos");
        ("seed", num seed);
        ("shards", num nshards);
        ("waves", num waves);
        ("jobs_per_wave", num jobs);
        ("jobs_total", num (Hashtbl.length r.requests));
        ("replies", num n_replies);
        ("refused", num n_refused);
        ("deadline_refused", num n_deadline);
        ("gateway_killed", Json.Bool !gateway_killed);
        ("lost", num (List.length lost));
        ("duplicated", num (List.length conflicts));
        ("malformed", num malformed);
        ("journal_replays", Json.Num journal_replays);
        ("journal_hits", Json.Num journal_hits);
        ("journal_pending_final", Json.Num journal_pending);
        ("heartbeats", Json.Num heartbeats);
        ("checks",
         Json.Obj (List.map (fun (k, ok) -> (k, Json.Bool ok)) checks));
        ("events", Json.List (List.rev_map (fun e -> Json.Str e) r.events));
        ("pass", Json.Bool pass) ]
  in
  Cs_util.Fsio.write_atomic ~path:out (Json.to_string json ^ "\n");
  Printf.printf
    "chaos: %d jobs, %d replies (%d refused, %d past-deadline), %d lost, %d \
     duplicated, %d malformed; journal: %.0f replays / %.0f dedup hits / %.0f \
     pending; %.0f heartbeats\n"
    (Hashtbl.length r.requests)
    n_replies n_refused n_deadline (List.length lost) (List.length conflicts)
    malformed journal_replays journal_hits journal_pending heartbeats;
  List.iter
    (fun (k, ok) -> Printf.printf "  %-18s %s\n" k (if ok then "ok" else "FAIL"))
    checks;
  Printf.printf "wrote %s\n%!" out;
  if not pass then exit 1

(* --- CLI ----------------------------------------------------------- *)

let cmd =
  let doc =
    "Run a multi-process fleet chaos drill: spawn N real `csched serve' shards and a \
     `csched gateway' (loopback TCP, each its own process), drive seeded traffic, \
     SIGKILL the gateway mid-batch and recover it from its durable journal, \
     SIGSTOP/SIGCONT a shard, and skew deadlines — then assert that no job was lost, \
     no job yielded two different schedules, and the journal drained. Writes \
     BENCH_chaos.json; exits non-zero when any invariant fails."
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Shard server processes to spawn.")
  in
  let waves_arg =
    Arg.(value & opt int 4 & info [ "waves" ] ~doc:"Traffic waves to submit.")
  in
  let jobs_arg =
    Arg.(value & opt int 24 & info [ "jobs" ] ~doc:"Jobs per wave.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Fault-schedule and workload seed (deterministic).")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker domains per shard.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Gateway journal directory (default: a fresh directory under the system \
             temp dir).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_chaos.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Machine-readable results file.")
  in
  let no_kill_arg =
    Arg.(
      value & flag
      & info [ "no-gateway-kill" ] ~doc:"Skip the gateway SIGKILL/recover drill.")
  in
  let no_stop_arg =
    Arg.(
      value & flag
      & info [ "no-shard-stop" ] ~doc:"Skip the shard SIGSTOP/SIGCONT drill.")
  in
  let run nshards waves jobs seed workers journal out no_kill no_stop =
    if nshards <= 0 || waves <= 0 || jobs <= 0 || workers <= 0 then begin
      Printf.eprintf "chaos: --shards, --waves, --jobs and --workers must be positive\n";
      exit 1
    end;
    let journal_dir =
      match journal with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "csched-chaos-%d" (Unix.getpid ()))
    in
    run_drill ~shards:nshards ~waves ~jobs ~seed ~workers ~journal_dir ~out
      ~no_gateway_kill:no_kill ~no_shard_stop:no_stop
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ shards_arg $ waves_arg $ jobs_arg $ seed_arg $ workers_arg
      $ journal_arg $ out_arg $ no_kill_arg $ no_stop_arg)
