(* Behavioural tests for every convergent pass. Each test constructs a
   small region where the pass's effect is unambiguous. *)

open Cs_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()

(* const -> fadd -> fadd chain, plus a preplaced load feeding the tail. *)
let anchored_chain ?(home = 2) () =
  let b = Cs_ddg.Builder.create ~name:"chain" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let v = Cs_ddg.Builder.load b ~preplace:home addr in
  let _tail = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd x v in
  Cs_ddg.Builder.finish b

let fresh region machine =
  let ctx = Context.make ~machine region in
  let w =
    Weights.create ~n:(Context.n_instrs ctx) ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt
  in
  (ctx, w)

let run_pass pass ctx w =
  pass.Pass.apply ctx w;
  Weights.normalize_all w

(* --- INITTIME --- *)

let test_inittime_squashes_infeasible () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (Inittime.pass ()) ctx w;
  let a = ctx.Context.analysis in
  for i = 0 to Weights.n w - 1 do
    let lo = Context.clamp_slot ctx (Cs_ddg.Analysis.earliest a i) in
    let hi = Context.clamp_slot ctx (Cs_ddg.Analysis.latest a i) in
    for t = 0 to Weights.nt w - 1 do
      if t < lo || t > hi then
        Alcotest.(check (float 1e-12)) "squashed" 0.0 (Weights.time_weight w i t)
    done;
    check_bool "feasible window kept" true (Weights.time_weight w i lo > 0.0)
  done

let test_inittime_critical_single_slot () =
  let b = Cs_ddg.Builder.create ~name:"serial" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add x in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Inittime.pass ()) ctx w;
  (* Every instruction of a pure chain is critical: one feasible slot. *)
  for i = 0 to 2 do
    let feasible = ref 0 in
    for t = 0 to Weights.nt w - 1 do
      if Weights.time_weight w i t > 0.0 then incr feasible
    done;
    check_int "single slot" 1 !feasible
  done

(* --- NOISE --- *)

let test_noise_breaks_symmetry () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (Noise.pass ()) ctx w;
  let distinct = ref false in
  for c = 0 to 3 do
    if Float.abs (Weights.cluster_weight w 0 c -. 0.25) > 1e-9 then distinct := true
  done;
  check_bool "weights perturbed" true !distinct;
  check_bool "invariants" true (Weights.check_invariants w = Ok ())

let test_noise_preserves_zeros () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (Inittime.pass ()) ctx w;
  let a = ctx.Context.analysis in
  run_pass (Noise.pass ()) ctx w;
  let i = 4 (* tail instruction, earliest > 0 *) in
  check_bool "tail starts late" true (Cs_ddg.Analysis.earliest a i > 0);
  Alcotest.(check (float 1e-12)) "slot 0 still zero" 0.0 (Weights.time_weight w i 0)

let test_noise_deterministic_per_seed () =
  let region = anchored_chain () in
  let run seed =
    let ctx = Context.make ~seed ~machine:vliw4 region in
    let w = Weights.create ~n:(Context.n_instrs ctx) ~nc:4 ~nt:ctx.Context.nt in
    run_pass (Noise.pass ()) ctx w;
    Weights.get w 0 0 0
  in
  Alcotest.(check (float 1e-15)) "same seed same noise" (run 5) (run 5);
  check_bool "different seed different noise" true (run 5 <> run 6)

(* --- PLACE --- *)

let test_place_boosts_home () =
  let region = anchored_chain ~home:2 () in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  check_int "load prefers home" 2 (Weights.preferred_cluster w 3);
  check_bool "strong confidence" true (Weights.confidence w 3 > 10.0)

let test_place_leaves_others_uniform () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  (* Instruction 0 (const) is unanchored: stays uniform. *)
  Alcotest.(check (float 1e-9)) "uniform" 0.25 (Weights.cluster_weight w 0 0)

let test_place_live_in_soft_boost () =
  let b = Cs_ddg.Builder.create ~name:"li" () in
  let x = Cs_ddg.Builder.live_in ~home:1 b in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  check_int "consumer leans home" 1 (Weights.preferred_cluster w 0)

(* --- FIRST --- *)

let test_first_prefers_cluster_zero () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (First.pass ()) ctx w;
  for i = 0 to Weights.n w - 1 do
    check_int "cluster 0 preferred" 0 (Weights.preferred_cluster w i)
  done

(* --- PATH --- *)

let test_path_keeps_critical_path_together () =
  let b = Cs_ddg.Builder.create ~name:"cp" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let c1 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fmul k in
  let c2 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fmul c1 in
  let _c3 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fmul c2 in
  let _side = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Mov k in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Path.pass ()) ctx w;
  let cp = Cs_ddg.Analysis.critical_path ctx.Context.analysis in
  check_bool "path nonempty" true (cp <> []);
  let target = Weights.preferred_cluster w (List.hd cp) in
  List.iter (fun i -> check_int "same cluster" target (Weights.preferred_cluster w i)) cp

let test_path_follows_anchor () =
  let region = anchored_chain ~home:3 () in
  let ctx, w = fresh region vliw4 in
  (* PLACE + PLACEPROP establish a confident bias toward the anchor;
     PATH then moves the whole critical path there. *)
  run_pass (Place.pass ()) ctx w;
  run_pass (Placeprop.pass ()) ctx w;
  run_pass (Path.pass ()) ctx w;
  let cp = Cs_ddg.Analysis.critical_path ctx.Context.analysis in
  List.iter
    (fun i -> check_int "path on anchor cluster" 3 (Weights.preferred_cluster w i))
    cp

(* --- COMM --- *)

let test_comm_pulls_toward_neighbors () =
  let region = anchored_chain ~home:1 () in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  run_pass (Comm.pass ()) ctx w;
  (* Tail (4) consumes the anchored load (3): should lean to cluster 1. *)
  check_int "tail follows neighbor" 1 (Weights.preferred_cluster w 4)

let test_comm_grand_reaches_two_hops () =
  let b = Cs_ddg.Builder.create ~name:"2hop" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let v = Cs_ddg.Builder.load b ~preplace:2 addr in
  let m = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd v in
  let _f = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd m in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  run_pass (Comm.pass ~grand:true ()) ctx w;
  check_int "grandchild pulled" 2 (Weights.preferred_cluster w 3)

let test_comm_per_slot_variant_runs () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (Comm.pass ~per_slot:true ()) ctx w;
  check_bool "invariants" true (Weights.check_invariants w = Ok ())

(* --- PLACEPROP --- *)

let test_placeprop_pulls_to_anchor_cluster () =
  let region = anchored_chain ~home:2 () in
  let ctx, w = fresh region vliw4 in
  run_pass (Placeprop.pass ()) ctx w;
  (* Tail (4) is at distance 1 of the anchor; its weight on cluster 2 is
     divided by 1, on others left alone only if they have no anchors —
     here only cluster 2 has anchors so the tail must lean to 2. *)
  check_int "tail pulled" 2 (Weights.preferred_cluster w 4)

let test_placeprop_weighted_majority () =
  (* One node between one anchor on cluster 0 and two anchors on 1. *)
  let b = Cs_ddg.Builder.create ~name:"maj" () in
  let a0 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let l0 = Cs_ddg.Builder.load b ~preplace:0 a0 in
  let a1 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let l1 = Cs_ddg.Builder.load b ~preplace:1 a1 in
  let a2 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let l2 = Cs_ddg.Builder.load b ~preplace:1 a2 in
  let _sum = Cs_ddg.Builder.op3 b Cs_ddg.Opcode.Select l0 l1 l2 in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Placeprop.pass ~mode:Placeprop.Weighted ()) ctx w;
  check_int "majority bank wins" 1 (Weights.preferred_cluster w 6)

let test_placeprop_no_anchors_noop () =
  let b = Cs_ddg.Builder.create ~name:"none" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Placeprop.pass ()) ctx w;
  Alcotest.(check (float 1e-9)) "still uniform" 0.25 (Weights.cluster_weight w 0 0)

(* --- LOAD --- *)

let test_load_rebalances () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  (* Pile everything on cluster 0 softly. *)
  for i = 0 to Weights.n w - 1 do
    Weights.scale_cluster w i 0 3.0
  done;
  Weights.normalize_all w;
  let before = Weights.cluster_weight w 0 0 in
  run_pass (Load.pass ()) ctx w;
  check_bool "cluster 0 deflated" true (Weights.cluster_weight w 0 0 < before)

(* --- LEVEL --- *)

let test_level_distributes_wide_layer () =
  let b = Cs_ddg.Builder.create ~name:"wide" () in
  for _ = 1 to 8 do
    let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
    ignore (Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k)
  done;
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Level.pass ~stride:4 ()) ctx w;
  let used = Array.make 4 false in
  for i = 0 to Weights.n w - 1 do
    used.(Weights.preferred_cluster w i) <- true
  done;
  check_bool "several clusters used" true (Array.to_list used |> List.filter Fun.id |> List.length >= 3)

let test_level_respects_confident_bins () =
  let region = anchored_chain ~home:1 () in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  let before = Weights.preferred_cluster w 3 in
  run_pass (Level.pass ()) ctx w;
  check_int "confident instr keeps bin" before (Weights.preferred_cluster w 3)

(* --- PATHPROP --- *)

let test_pathprop_propagates_downward () =
  let b = Cs_ddg.Builder.create ~name:"pp" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let v = Cs_ddg.Builder.load b ~preplace:3 addr in
  let d1 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd v in
  let _d2 = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd d1 in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  run_pass (Pathprop.pass ~confidence_threshold:1.5 ()) ctx w;
  check_int "child pulled" 3 (Weights.preferred_cluster w 2);
  check_int "grandchild pulled" 3 (Weights.preferred_cluster w 3)

let test_pathprop_noop_without_confidence () =
  let region = anchored_chain () in
  let ctx, w = fresh region vliw4 in
  run_pass (Pathprop.pass ()) ctx w;
  Alcotest.(check (float 1e-9)) "uniform stays" 0.25 (Weights.cluster_weight w 0 0)

(* --- EMPHCP --- *)

let test_emphcp_prefers_asap_slot () =
  let b = Cs_ddg.Builder.create ~name:"em" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add x in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Emphcp.pass ()) ctx w;
  check_int "instr 1 at its level" (Cs_ddg.Analysis.earliest ctx.Context.analysis 1)
    (Weights.preferred_time w 1)

(* --- FEASIBLE --- *)

let test_feasible_squashes_incapable_clusters () =
  (* A heterogeneous machine: cluster 0 integer-only, cluster 1 fp-only. *)
  let machine =
    Cs_machine.Machine.make ~name:"hetero"
      ~fus:[| [| Cs_machine.Fu.Int_alu; Cs_machine.Fu.Int_mem |];
              [| Cs_machine.Fu.Float_unit; Cs_machine.Fu.Int_mem |] |]
      ~topology:(Cs_machine.Topology.Crossbar { latency = 1 })
      ()
  in
  let b = Cs_ddg.Builder.create ~name:"het" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _f = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region machine in
  run_pass (Feasible.pass ()) ctx w;
  check_int "fadd forced to fp cluster" 1 (Weights.preferred_cluster w 1);
  Alcotest.(check (float 1e-12)) "cluster 0 squashed" 0.0 (Weights.cluster_weight w 1 0)

(* --- REGPRESS --- *)

let test_regpress_relieves_overloaded_cluster () =
  (* Many values defined and consumed late: pressure on one cluster. *)
  let b = Cs_ddg.Builder.create ~name:"rp" () in
  let defs = List.init 12 (fun _ -> Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const) in
  let _sum = Cs_workloads.Prog.reduce b Cs_ddg.Opcode.Fadd defs in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  (* Pile all defs on cluster 0 with moderate confidence. *)
  for i = 0 to 11 do
    Weights.scale_cluster w i 0 1.5
  done;
  Weights.normalize_all w;
  run_pass (Regpress.pass ~registers_per_cluster:4 ()) ctx w;
  let still_on_zero = ref 0 in
  for i = 0 to 11 do
    if Weights.preferred_cluster w i = 0 then incr still_on_zero
  done;
  check_bool "some moved off" true (!still_on_zero < 12)

(* --- CLUSTER (the paper's future-work clustering integration) --- *)

let test_cluster_groups_chains () =
  (* Two independent chains: each becomes one group. *)
  let b = Cs_ddg.Builder.create ~name:"chains" () in
  let mk () =
    let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
    let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd k in
    ignore (Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x)
  in
  mk (); mk ();
  let region = Cs_ddg.Builder.finish b in
  let ctx = Context.make ~machine:vliw4 region in
  let groups = Cluster.groups ctx in
  check_int "two groups" 2 (List.length groups);
  List.iter (fun g -> check_int "chain of three" 3 (List.length g)) groups

let test_cluster_pulls_group_to_consensus () =
  let b = Cs_ddg.Builder.create ~name:"pull" () in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let v = Cs_ddg.Builder.load b ~preplace:2 addr in
  let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd v in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  let region = Cs_ddg.Builder.finish b in
  let ctx, w = fresh region vliw4 in
  run_pass (Place.pass ()) ctx w;
  run_pass (Cluster.pass ()) ctx w;
  (* The whole chain (load + both adds) converges on the anchor's bank. *)
  check_int "x follows" 2 (Weights.preferred_cluster w 2);
  check_int "y follows" 2 (Weights.preferred_cluster w 3)

let test_cluster_never_merges_conflicting_homes () =
  let b = Cs_ddg.Builder.create ~name:"conf" () in
  let a0 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let l0 = Cs_ddg.Builder.load b ~preplace:0 a0 in
  let a1 = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let l1 = Cs_ddg.Builder.load b ~preplace:1 a1 in
  let _sum = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd l0 l1 in
  let region = Cs_ddg.Builder.finish b in
  let ctx = Context.make ~machine:vliw4 region in
  List.iter
    (fun group ->
      let homes =
        List.filter_map (fun i -> Context.home_of ctx i) group |> List.sort_uniq Int.compare
      in
      check_bool "single home per group" true (List.length homes <= 1))
    (Cluster.groups ctx)

let () =
  Alcotest.run "cs_core.passes"
    [
      ( "inittime",
        [
          Alcotest.test_case "squashes infeasible" `Quick test_inittime_squashes_infeasible;
          Alcotest.test_case "critical single slot" `Quick test_inittime_critical_single_slot;
        ] );
      ( "noise",
        [
          Alcotest.test_case "breaks symmetry" `Quick test_noise_breaks_symmetry;
          Alcotest.test_case "preserves zeros" `Quick test_noise_preserves_zeros;
          Alcotest.test_case "deterministic" `Quick test_noise_deterministic_per_seed;
        ] );
      ( "place",
        [
          Alcotest.test_case "boosts home" `Quick test_place_boosts_home;
          Alcotest.test_case "others uniform" `Quick test_place_leaves_others_uniform;
          Alcotest.test_case "live-in soft boost" `Quick test_place_live_in_soft_boost;
        ] );
      ("first", [ Alcotest.test_case "prefers cluster 0" `Quick test_first_prefers_cluster_zero ]);
      ( "path",
        [
          Alcotest.test_case "keeps path together" `Quick test_path_keeps_critical_path_together;
          Alcotest.test_case "follows anchor" `Quick test_path_follows_anchor;
        ] );
      ( "comm",
        [
          Alcotest.test_case "pulls to neighbors" `Quick test_comm_pulls_toward_neighbors;
          Alcotest.test_case "grand two hops" `Quick test_comm_grand_reaches_two_hops;
          Alcotest.test_case "per-slot variant" `Quick test_comm_per_slot_variant_runs;
        ] );
      ( "placeprop",
        [
          Alcotest.test_case "pulls to anchor" `Quick test_placeprop_pulls_to_anchor_cluster;
          Alcotest.test_case "weighted majority" `Quick test_placeprop_weighted_majority;
          Alcotest.test_case "no anchors noop" `Quick test_placeprop_no_anchors_noop;
        ] );
      ("load", [ Alcotest.test_case "rebalances" `Quick test_load_rebalances ]);
      ( "level",
        [
          Alcotest.test_case "distributes layer" `Quick test_level_distributes_wide_layer;
          Alcotest.test_case "respects bins" `Quick test_level_respects_confident_bins;
        ] );
      ( "pathprop",
        [
          Alcotest.test_case "propagates down" `Quick test_pathprop_propagates_downward;
          Alcotest.test_case "noop without confidence" `Quick test_pathprop_noop_without_confidence;
        ] );
      ("emphcp", [ Alcotest.test_case "asap slot" `Quick test_emphcp_prefers_asap_slot ]);
      ("feasible", [ Alcotest.test_case "squashes incapable" `Quick test_feasible_squashes_incapable_clusters ]);
      ("regpress", [ Alcotest.test_case "relieves pressure" `Quick test_regpress_relieves_overloaded_cluster ]);
      ( "cluster",
        [
          Alcotest.test_case "groups chains" `Quick test_cluster_groups_chains;
          Alcotest.test_case "pulls to consensus" `Quick test_cluster_pulls_group_to_consensus;
          Alcotest.test_case "no conflicting homes" `Quick test_cluster_never_merges_conflicting_homes;
        ] );
    ]
